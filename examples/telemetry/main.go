// Telemetry warehouse: a data-warehousing-style workload (§3.1 cites
// write-intensive warehousing systems [64]) mixing a continuous ingest
// stream with concurrent range analytics.
//
// Devices report time-stamped metrics; each report is an insert keyed by
// (device, timestamp) packed into a uint64. Dashboards concurrently scan
// recent windows per device. The example shows Sherman's range queries
// reading consistent leaves while half the threads insert, and how scans
// fetch several leaves per round trip via parallel RDMA_READs.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"sherman"
)

const (
	devices       = 64
	reportsPerDev = 1_000 // bulkloaded history per device
	ingestors     = 16
	dashboards    = 8
	ingestOps     = 500 // inserts per ingestor
	scanOps       = 100 // scans per dashboard
	scanWindow    = 50  // readings per scan
)

// key packs (device, sequence) so each device's readings are contiguous —
// range scans over one device never cross into another's keys.
func key(device, seq uint64) uint64 { return device<<32 | (seq + 1) }

func main() {
	cluster, err := sherman.NewCluster(sherman.ClusterConfig{
		MemoryServers:  4,
		ComputeServers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := cluster.CreateTree(sherman.DefaultTreeOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Bulkload each device's reporting history.
	var kvs []sherman.KV
	for d := uint64(0); d < devices; d++ {
		for s := uint64(0); s < reportsPerDev; s++ {
			kvs = append(kvs, sherman.KV{Key: key(d, s), Value: reading(d, s)})
		}
	}
	if err := tree.Bulkload(kvs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bulkloaded %d readings from %d devices\n", len(kvs), devices)

	// Per-device ingest cursors, claimed atomically so concurrent ingestors
	// never collide on a sequence number.
	cursors := make([]atomic.Uint64, devices)
	for d := range cursors {
		cursors[d].Store(reportsPerDev)
	}

	var wg sync.WaitGroup
	var scanned, inserted atomic.Int64

	// Ingest stream: each ingestor appends fresh readings for random devices.
	for w := 0; w < ingestors; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := tree.Session(w % cluster.ComputeServers())
			rng := rand.New(rand.NewPCG(uint64(w)+1, 0xabcdef))
			for i := 0; i < ingestOps; i++ {
				d := rng.Uint64N(devices)
				seq := cursors[d].Add(1) - 1
				s.Put(key(d, seq), reading(d, seq))
				inserted.Add(1)
			}
		}(w)
	}

	// Dashboards: scan the most recent window of a random device and verify
	// every returned reading decodes to the value its key implies.
	for w := 0; w < dashboards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := tree.Session(w % cluster.ComputeServers())
			rng := rand.New(rand.NewPCG(uint64(w)+100, 0x123456))
			for i := 0; i < scanOps; i++ {
				d := rng.Uint64N(devices)
				head := cursors[d].Load()
				start := uint64(0)
				if head > scanWindow {
					start = head - scanWindow
				}
				rows := s.Scan(key(d, start), scanWindow)
				for _, kv := range rows {
					if kv.Key>>32 != d {
						break // ran past this device's key range
					}
					seq := kv.Key&0xffffffff - 1
					if kv.Value != reading(d, seq) {
						log.Fatalf("device %d seq %d: got %d want %d",
							d, seq, kv.Value, reading(d, seq))
					}
					scanned.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	if err := tree.Validate(); err != nil {
		log.Fatalf("tree invariants violated: %v", err)
	}

	fmt.Printf("ingested %d new readings while dashboards verified %d scanned rows\n",
		inserted.Load(), scanned.Load())
	cs := tree.CacheStats(0)
	fmt.Printf("index cache on CS0: %d/%d entries (+%d pinned top), %.1f%% hit ratio, %d evictions, %d invalidations\n",
		cs.Entries, cs.Capacity, cs.PinnedEntries,
		100*float64(cs.Hits)/float64(max64(cs.Hits+cs.Misses, 1)),
		cs.Evictions, cs.Invalidations)
	fmt.Println("every scanned row matched its expected value: leaf-level consistency held under concurrent ingest")
}

// reading derives the deterministic metric value of (device, seq), so
// dashboards can verify what they scan.
func reading(d, s uint64) uint64 {
	v := (d<<40 ^ s) * 0x9e3779b97f4a7c15
	if v == 0 {
		v = 1
	}
	return v
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
