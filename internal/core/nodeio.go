package core

import (
	"fmt"

	"sherman/internal/cache"
	"sherman/internal/hocl"
	"sherman/internal/layout"
	"sherman/internal/rdma"
)

// This file is the shared node-I/O + traversal layer: every data path —
// point lookups, locked writes, parent-separator insertion, range scans and
// the batch executors — resolves tree nodes through the two loops below
// instead of carrying its own copy of the move-right / stale-steering /
// lock-coupling logic. The loops encode the B-link protocol of §4.2:
// a traversal may land left of its key after concurrent splits (follow the
// sibling chain right), on a freed or repurposed node (recover from stale
// steering), and — for writes — must hold at most one node lock at any time
// (unlock the current node before locking its sibling, §4.3 [52]).

// intent selects how seek interacts with the target node.
type intent int

const (
	// intentRead seeks lock-free: the node is fetched with a consistency-
	// validated read (version pair or checksum) and returned unlocked.
	intentRead intent = iota
	// intentWrite seeks under lock coupling: the target is locked before
	// the validating read, and moving right releases the current lock
	// before acquiring the sibling's.
	intentWrite
)

// seekResult is the node a seek landed on. The guard is the held lock for
// intentWrite seeks and the zero Guard for intentRead.
type seekResult struct {
	addr rdma.Addr
	n    layout.Node
	g    hocl.Guard
}

// seek drives the shared move-right / stale-steering loop at one level of
// the tree: starting from the steering hint addr (with ce the index-cache
// entry that produced it, nil otherwise), it locks (for intentWrite) and
// reads the node, validates liveness, level and fences, and either returns
// the covering node, follows the B-link sibling chain right, or recovers
// from stale steering.
//
// Stale recovery differs by level: level-0 seeks re-traverse from the root
// internally and always make progress, while level>0 seeks return ok=false
// so the caller can re-resolve its target from a fresh root (the parent
// level of a split is not known to the descent helper). ok=false at level 0
// happens only for read seeks whose sibling walk ran off the right edge —
// the key cannot exist. A level-0 write seek finding a finite upper fence
// with no sibling panics: the write-back protocol never produces that
// state, so it is structural corruption, not staleness.
//
// retries, when non-nil, accumulates consistency-check re-reads (the
// Figure 14(a) metric). hops, when non-nil, is the caller's sibling-hop
// budget — one logical operation keeps one counter across its seeks so the
// stale-top-cache flush heuristic (noteSiblingHop) sees the whole walk.
func (h *Handle) seek(key uint64, level uint8, in intent, addr rdma.Addr, ce *cache.Entry, buf []byte, retries, hops *int) (seekResult, bool) {
	var localHops int
	if hops == nil {
		hops = &localHops
	}
	for {
		var g hocl.Guard
		if in == intentWrite {
			g = h.t.locks.Lock(h.C, addr)
			if g.HandedOver() {
				h.Rec.Handovers++
			}
			if g.Reclaimed() {
				// The previous holder crashed mid-operation; the validating
				// read below re-establishes the node's consistency (the
				// two-level version pair or checksum) before any write.
				h.Rec.Reclaims++
			}
		}
		n, r := h.readNode(addr, buf)
		if retries != nil {
			*retries += r
		}
		if !n.Alive() || n.Level() != level || key < n.LowerFence() {
			// Stale steering: the node was freed, repurposed at another
			// level, migrated, or lies right of the key.
			if in == intentWrite {
				h.unlockWrite(g, nil)
			}
			if ce != nil {
				h.cache.Invalidate(ce)
				ce = nil
			}
			if !n.Alive() {
				if fwd, ok := h.chase(addr); ok {
					// The node migrated: retry at its relocated address.
					// One hop suffices unless that data has since migrated
					// again (each round of this loop then chases one more
					// chunk generation); a dead un-forwarded copy falls
					// through to the normal stale handling below.
					addr = fwd
					continue
				}
			}
			if level > 0 {
				return seekResult{}, false
			}
			addr = h.traverseToLeaf(key)
			continue
		}
		if n.UpperFence() != layout.NoUpperBound && key >= n.UpperFence() {
			sib := n.Sibling()
			if in == intentWrite {
				h.unlockWrite(g, nil)
			}
			if sib.IsNil() {
				if level == 0 && in == intentWrite {
					panic(fmt.Sprintf("core: rightmost leaf %v has finite upper fence", addr))
				}
				return seekResult{}, false
			}
			h.noteSiblingHop(hops)
			addr = sib
			if level > 0 {
				ce = nil
			}
			continue
		}
		return seekResult{addr: addr, n: n, g: g}, true
	}
}

// descend walks internal levels from the (cached) top of the tree down to
// the target level, following sibling pointers when a node's fences exclude
// the key and restarting from a fresh root when steering proves stale.
// Level-1 nodes crossed on the way are copied into the index cache
// (§4.2.3). descend returns the address of the level `target` node whose
// fence range covered the key at read time; the caller re-validates under
// its own intent via seek.
func (h *Handle) descend(key uint64, target uint8) rdma.Addr {
	root, rootLvl := h.top.Root()
	if root.IsNil() || rootLvl < target {
		root, rootLvl = h.refreshRoot()
	}
	for {
		addr, lvl := root, rootLvl
		ok := true
		for lvl > target {
			n, fromCache := h.readInternal(addr, lvl, rootLvl)
			if !n.Alive() || n.Level() != lvl || key < n.LowerFence() {
				// Freed, repurposed or migrated node, or we are left of its
				// range: chase a migrated node to its new home, otherwise
				// the steering was stale; restart from a fresh root.
				if fromCache {
					h.top.Drop(addr)
				}
				if !n.Alive() {
					if fwd, chased := h.chase(addr); chased {
						addr = fwd
						continue
					}
				}
				ok = false
				break
			}
			if n.UpperFence() != layout.NoUpperBound && key >= n.UpperFence() {
				// Move right along the B-link chain (level unchanged).
				sib := n.Sibling()
				if sib.IsNil() {
					ok = false
					break
				}
				addr = sib
				continue
			}
			if lvl == 1 {
				h.cacheLevel1(addr, n)
			}
			child, _ := layout.AsInternal(n).ChildFor(key)
			addr = child
			lvl--
		}
		if ok {
			return addr
		}
		root, rootLvl = h.refreshRoot()
	}
}

// traverseToLeaf resolves the leaf-level address covering key by a full
// descent from the root.
func (h *Handle) traverseToLeaf(key uint64) rdma.Addr {
	return h.descend(key, 0)
}

// locateLeaf resolves the leaf that should contain key: index-cache hit
// (type-1), else a descent from the (cached) top levels. The returned cache
// entry (nil on miss) lets the caller invalidate stale steering.
func (h *Handle) locateLeaf(key uint64) (rdma.Addr, *cache.Entry) {
	h.C.Step(h.C.F.P.LocalStepNS)
	if e := h.cache.Lookup(key); e != nil {
		h.Rec.CacheHits++
		child, _ := e.N.ChildFor(key)
		return child, e
	}
	h.Rec.CacheMisses++
	return h.traverseToLeaf(key), nil
}

// locateInternal finds the internal node at the target level covering key.
// Level-1 targets use the index cache (the entry's own address is the
// level-1 node).
func (h *Handle) locateInternal(key uint64, level uint8) (rdma.Addr, *cache.Entry) {
	if level == 1 {
		if e := h.cache.Lookup(key); e != nil {
			return e.Addr, e
		}
	}
	return h.descend(key, level), nil
}

// lockLeafForWrite locks and reads the leaf that must hold key, handling
// stale steering and B-link move-right under lock coupling (unlock current,
// lock sibling — Sherman holds at most one node lock at a time, §4.3 [52]).
func (h *Handle) lockLeafForWrite(key uint64) (rdma.Addr, hocl.Guard, layout.Leaf) {
	addr, ce := h.locateLeaf(key)
	r, _ := h.seek(key, 0, intentWrite, addr, ce, h.leafBuf, nil, nil)
	return r.addr, r.g, layout.AsLeaf(r.n)
}
