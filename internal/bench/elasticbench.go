package bench

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sherman/internal/cluster"
	"sherman/internal/core"
	"sherman/internal/layout"
	"sherman/internal/migrate"
	"sherman/internal/sim"
	"sherman/internal/stats"
	"sherman/internal/workload"
)

// This file is the elasticity experiment: a cluster serving a steady
// read-heavy workload scales from one memory server to two *while the
// measurement window runs* — the migration engine moves the hottest chunks
// onto the newcomer under live traffic. Reported: per-MS inbound-load skew
// before and after rebalancing, the rebalance's virtual duration, the
// throughput dip in the migration window, and the steady-state throughput
// against a control cluster bulkloaded at the larger size from the start
// (the price of having scaled out online rather than provisioned up
// front).

// ElasticExp configures one scale-out run.
type ElasticExp struct {
	Name string

	// NumMS is the starting memory-server count; AddMS servers join
	// mid-run. NumCS/ThreadsPerCS shape the client side.
	NumMS, AddMS int
	NumCS        int
	ThreadsPerCS int

	// Keys sizes the key space. The tree must span several 8 MB chunks per
	// server or chunk-granularity migration cannot split load; Defaults
	// raises small values.
	Keys uint64

	Mix  workload.Mix
	Dist workload.Dist

	Tree core.Config

	// MeasureNS is the per-phase virtual window.
	MeasureNS int64
	// MaxOpsPerThread bounds a worker's measured ops (wall-time valve).
	MaxOpsPerThread int

	Params sim.Params
}

// Defaults fills unset fields.
func (e ElasticExp) Defaults() ElasticExp {
	if e.NumMS == 0 {
		e.NumMS = 1
	}
	if e.AddMS == 0 {
		e.AddMS = 1
	}
	if e.NumCS == 0 {
		e.NumCS = 4
	}
	if e.ThreadsPerCS == 0 {
		e.ThreadsPerCS = 4
	}
	if e.Keys < 1<<20 {
		e.Keys = 1 << 20 // ~3 chunks of 1 KB nodes per starting server
	}
	if e.MeasureNS == 0 {
		e.MeasureNS = 3_000_000
	}
	if e.MaxOpsPerThread == 0 {
		e.MaxOpsPerThread = 1_000_000
	}
	if e.Params.RTTNS == 0 {
		e.Params = sim.DefaultParams()
	}
	return e
}

// ElasticResult is the outcome of one scale-out run.
type ElasticResult struct {
	Name string

	// BaselineMops is the window throughput at the original size;
	// UnbalancedMops the window after the servers joined but before any
	// data moved (new servers take only fresh allocations); MigrateMops
	// the window during which the rebalance ran (the dip); SteadyMops the
	// post-rebalance steady state; ControlMops the same workload on a
	// cluster bulkloaded at the larger size from the start.
	BaselineMops, UnbalancedMops, MigrateMops, SteadyMops, ControlMops float64

	// SkewBefore/SkewAfter are hottest/coldest per-MS inbound window loads
	// (stats.LoadMaxMin) over the final server set, before vs after the
	// rebalance. SkewMeanBefore/After are the max/mean variants.
	SkewBefore, SkewAfter         float64
	SkewMeanBefore, SkewMeanAfter float64

	// RebalanceNS is the migration's span on the migrating thread's
	// virtual clock; the Stats carry chunk/node/repoint counts.
	RebalanceNS int64
	Migration   migrate.Stats

	// ForwardHops counts reads that resolved through the forwarding map
	// during the migration window — traffic served mid-move.
	ForwardHops int64

	// ValidateErr is the post-run structural check.
	ValidateErr error
}

// RunElastic executes the scale-out experiment.
func RunElastic(e ElasticExp) ElasticResult {
	e = e.Defaults()
	if err := e.Mix.Validate(); err != nil {
		panic(err)
	}
	res := ElasticResult{Name: e.Name}

	cl := cluster.New(cluster.Config{
		NumMS: e.NumMS, NumCS: e.NumCS, MaxMS: e.NumMS + e.AddMS, Params: e.Params,
	})
	tr := core.New(cl, e.Tree)
	wcfg := workload.DefaultConfig(e.Mix, e.Dist, e.Keys)
	loaded := wcfg.LoadedKeys()
	kvs := make([]layout.KV, loaded)
	for i := range kvs {
		k := uint64(i + 1)
		kvs[i] = layout.KV{Key: k, Value: bulkValue(k)}
	}
	tr.Bulkload(kvs)

	baseGen := workload.NewGenerator(wcfg, 0x5eed)
	n := e.NumCS * e.ThreadsPerCS
	gens := make([]*workload.Generator, n)
	for i := range gens {
		gens[i] = workload.NewGeneratorFrom(baseGen, uint64(i)+1)
	}

	var startV int64
	seed := n
	window := func(coord func(h *core.Handle, gate *sim.Gate, slot int)) (float64, []stats.MSLoad, *stats.Recorder) {
		prev := migrate.Loads(cl.F)
		recs, maxV := runElasticWindow(e, cl, tr, gens, startV, seed, coord)
		seed += n + 1
		startV = maxV + 10_000
		var mops float64
		merged := stats.NewRecorder()
		for _, rec := range recs {
			merged.Merge(rec)
			// Per-thread rates over actual issuing intervals: the migration
			// window runs until the rebalance completes, so its length
			// varies per thread.
			if d := rec.FinishV - rec.StartV; d > 0 {
				mops += stats.ThroughputMops(rec.TotalOps(), d)
			}
		}
		return mops, stats.SubLoads(migrate.Loads(cl.F), prev), merged
	}

	// Warmup window (discarded), then the baseline at the original size.
	window(nil)
	res.BaselineMops, _, _ = window(nil)

	// Scale out: the servers join (lock tables wired, allocators aware) but
	// no data moves yet — the whole historical load still targets the old
	// servers, which is exactly the skew the next window measures.
	for i := 0; i < e.AddMS; i++ {
		if _, err := cl.AddMS(); err != nil {
			panic(err)
		}
	}
	var loadsBefore []stats.MSLoad
	res.UnbalancedMops, loadsBefore, _ = window(nil)
	res.SkewBefore = stats.LoadMaxMin(loadsBefore)
	res.SkewMeanBefore = stats.LoadSkew(loadsBefore)

	// Migration window: one third in, a coordinator thread rebalances the
	// hottest chunks onto the newcomers while the workers keep serving.
	baseline := migrate.Loads(cl.F)
	var migr migrate.Stats
	var migrErr error
	mops, _, rec := window(func(h *core.Handle, gate *sim.Gate, slot int) {
		h.SetClock(startV + e.MeasureNS/3)
		gate.Sync(slot, h.C.Now())
		eng := migrate.New(h, migrate.Options{
			Baseline: baseline,
			Pace:     func(v int64) { gate.Sync(slot, v) },
		})
		t0 := h.C.Now()
		migr, migrErr = eng.Rebalance()
		res.RebalanceNS = h.C.Now() - t0
	})
	res.MigrateMops = mops
	res.Migration = migr
	res.ForwardHops = rec.ForwardHops
	if migrErr != nil {
		panic(migrErr)
	}

	// Steady state after the move.
	var loadsAfter []stats.MSLoad
	res.SteadyMops, loadsAfter, _ = window(nil)
	res.SkewAfter = stats.LoadMaxMin(loadsAfter)
	res.SkewMeanAfter = stats.LoadSkew(loadsAfter)
	res.ValidateErr = tr.Validate()

	// Control: the same workload on a cluster bulkloaded at the larger
	// size from the start — what steady state must be compared against.
	res.ControlMops = elasticControl(e)
	return res
}

// elasticControl measures one window on a fresh cluster provisioned at the
// final size up front.
func elasticControl(e ElasticExp) float64 {
	r := RunTree(TreeExp{
		Name:            e.Name + "-control",
		NumMS:           e.NumMS + e.AddMS,
		NumCS:           e.NumCS,
		ThreadsPerCS:    e.ThreadsPerCS,
		Keys:            e.Keys,
		Mix:             e.Mix,
		Dist:            e.Dist,
		Tree:            e.Tree,
		MeasureNS:       e.MeasureNS,
		MaxOpsPerThread: e.MaxOpsPerThread,
		Params:          e.Params,
	})
	return r.Mops
}

// runElasticWindow runs one measurement window with fresh handles starting
// at startV. coord, when non-nil, runs as one extra gate participant — the
// migration coordinator — and the workers then keep serving until both the
// deadline has passed and the coordinator finished, so the entire
// migration happens under live traffic.
func runElasticWindow(e ElasticExp, cl *cluster.Cluster, tr *core.Tree, gens []*workload.Generator, startV int64, seed int, coord func(h *core.Handle, gate *sim.Gate, slot int)) ([]*stats.Recorder, int64) {
	n := e.NumCS * e.ThreadsPerCS
	parts := n
	if coord != nil {
		parts++
	}
	recs := make([]*stats.Recorder, n)
	ends := make([]int64, parts)
	gate := sim.NewGate(gateWindowNS, gateSlack, parts)
	deadline := startV + e.MeasureNS
	coordDone := &sync.WaitGroup{}
	running := func() bool { return false }
	if coord != nil {
		flag := &atomic.Bool{}
		running = flag.Load
		flag.Store(true)
		coordDone.Add(1)
		go func() {
			defer coordDone.Done()
			defer flag.Store(false)
			slot := parts - 1
			defer gate.Done(slot)
			h := tr.NewHandle(0, seed+n)
			h.SetClock(startV)
			coord(h, gate, slot)
			ends[slot] = h.C.Now()
		}()
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer gate.Done(i)
			h := tr.NewHandle(i%e.NumCS, seed+i)
			h.SetClock(startV + int64(i*9973%10_000))
			h.Pace = func(v int64) { gate.Sync(i, v) }
			rec := stats.NewRecorder()
			rec.StartV = h.C.Now()
			h.Rec = rec
			recs[i] = rec
			defer func() {
				rec.FinishV = h.C.Now()
				ends[i] = h.C.Now()
			}()
			g := gens[i]
			for j := 0; (h.C.Now() < deadline || running()) && j < e.MaxOpsPerThread; j++ {
				doOp(h, g.Next())
				gate.Sync(i, h.C.Now())
			}
		}(i)
	}
	wg.Wait()
	coordDone.Wait()
	var maxV int64
	for _, v := range ends {
		if v > maxV {
			maxV = v
		}
	}
	if maxV < deadline {
		maxV = deadline
	}
	return recs, maxV
}

func elasticExp(s Scale, name string) ElasticExp {
	keys := s.Keys
	if keys < 1<<20 {
		keys = 1 << 20
	}
	if keys > 2<<20 {
		keys = 2 << 20
	}
	return ElasticExp{
		Name:         name,
		Keys:         keys,
		ThreadsPerCS: min(s.ThreadsPerCS, 8),
		MeasureNS:    s.MeasureNS,
		Mix:          workload.ReadIntensive,
		Dist:         workload.Uniform,
		Tree:         core.ShermanConfig(),
	}
}

// Elastic runs the scale-out experiment and renders its trajectory. When c
// is non-nil, typed metrics land in the JSON report (BENCH_4.json).
func Elastic(s Scale, c *Collector) (*Table, ElasticResult) {
	e := elasticExp(s, "elastic")
	r := RunElastic(e)
	ed := e.Defaults()
	t := NewTable(fmt.Sprintf("Elastic: %d→%d memory servers mid-run (read-intensive uniform, %d CS x %d threads)",
		ed.NumMS, ed.NumMS+ed.AddMS, ed.NumCS, ed.ThreadsPerCS),
		"phase", "Mops", "skew max/min", "skew max/mean", "notes")
	t.Add("baseline (1 MS)", MopsString(r.BaselineMops), "-", "-", "original size")
	t.Add("added, unbalanced", MopsString(r.UnbalancedMops), f1(r.SkewBefore), f1(r.SkewMeanBefore), "server joined, no data moved")
	t.Add("migration window", MopsString(r.MigrateMops),
		"-", "-",
		fmt.Sprintf("rebalance %s us: %d chunks, %d nodes, %d hops",
			USString(r.RebalanceNS), r.Migration.ChunksMoved, r.Migration.NodesMoved, r.ForwardHops))
	t.Add("steady state", MopsString(r.SteadyMops), f1(r.SkewAfter), f1(r.SkewMeanAfter), "rebalanced")
	valid := "ok"
	if r.ValidateErr != nil {
		valid = r.ValidateErr.Error()
	}
	t.Add("control (2 MS)", MopsString(r.ControlMops), "-", "-", "bulkloaded at final size; validate "+valid)
	t.Note("skew is per-MS inbound NIC load over the window, hottest/coldest (and hottest/mean)")
	t.Note("the migration window starts its rebalance one third in; forwarding hops are reads served mid-move")

	c.Add(Metric{Exp: "elastic", Name: "elastic/baseline", Mops: r.BaselineMops})
	c.Add(Metric{Exp: "elastic", Name: "elastic/unbalanced", Mops: r.UnbalancedMops, Skew: r.SkewBefore})
	c.Add(Metric{Exp: "elastic", Name: "elastic/migration", Mops: r.MigrateMops, RecoveryNS: r.RebalanceNS})
	c.Add(Metric{Exp: "elastic", Name: "elastic/steady", Mops: r.SteadyMops, Skew: r.SkewAfter, Gate: true})
	c.Add(Metric{Exp: "elastic", Name: "elastic/control", Mops: r.ControlMops})
	return t, r
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// ElasticGate is the CI check behind `shermanbench -exp elastic -check`:
// after one memory server joins mid-run, rebalancing must cut the per-MS
// inbound-load skew by at least 2x, steady-state throughput must reach 95%
// of a cluster bulkloaded at the larger size, the migration window must
// have made progress, and the tree must validate.
func ElasticGate(r *ElasticResult) error {
	if r == nil {
		return fmt.Errorf("elastic gate: experiment did not run")
	}
	if r.ValidateErr != nil {
		return fmt.Errorf("elastic gate: tree invalid after rebalance: %w", r.ValidateErr)
	}
	if r.Migration.ChunksMoved == 0 || r.Migration.NodesMoved == 0 {
		return fmt.Errorf("elastic gate: rebalance moved nothing (%+v)", r.Migration)
	}
	if r.SkewAfter <= 0 || r.SkewBefore < 2*r.SkewAfter {
		return fmt.Errorf("elastic gate: skew only dropped %.1f -> %.1f (want >= 2x)", r.SkewBefore, r.SkewAfter)
	}
	if r.SteadyMops < 0.95*r.ControlMops {
		return fmt.Errorf("elastic gate: steady state %.2f Mops under 95%% of control %.2f",
			r.SteadyMops, r.ControlMops)
	}
	if r.MigrateMops <= 0 {
		return fmt.Errorf("elastic gate: no progress during the migration window")
	}
	return nil
}
