// Package stats provides the measurement machinery for the evaluation:
// log-bucketed latency histograms with percentile queries, linear counters
// for small-valued internal metrics (round trips, retries), and mergeable
// per-thread recorders so that hot paths never synchronize.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Hist is a log-linear histogram of non-negative int64 samples (virtual
// nanoseconds). Each power-of-two range is split into 16 sub-buckets, giving
// a worst-case quantile error of ~6% — ample for p50/p90/p99 reporting.
// Hist is not safe for concurrent use; keep one per thread and Merge.
type Hist struct {
	counts []int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

const subBucketBits = 4
const subBuckets = 1 << subBucketBits

// NewHist creates an empty histogram.
func NewHist() *Hist {
	return &Hist{counts: make([]int64, 64*subBuckets), min: math.MaxInt64}
}

func bucketOf(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := 63 - leadingZeros(uint64(v))
	// Top bit implied; next subBucketBits bits select the sub-bucket.
	sub := int(v>>(uint(exp)-subBucketBits)) & (subBuckets - 1)
	return (exp-subBucketBits+1)*subBuckets + sub
}

func leadingZeros(x uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if x&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

// bucketLow returns the smallest value mapping to bucket b (inverse of
// bucketOf, used to report percentiles).
func bucketLow(b int) int64 {
	if b < subBuckets {
		return int64(b)
	}
	exp := b/subBuckets + subBucketBits - 1
	sub := b % subBuckets
	return (int64(1) << uint(exp)) | int64(sub)<<(uint(exp)-subBucketBits)
}

// Record adds one sample.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	b := bucketOf(v)
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	h.counts[b]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.n }

// Mean returns the arithmetic mean of the samples (0 when empty).
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min and Max return the extreme samples (0 when empty).
func (h *Hist) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *Hist) Max() int64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Percentile returns the p-th percentile (p in (0,100]) as the lower bound
// of the containing bucket, clamped to the observed min/max.
func (h *Hist) Percentile(p float64) int64 {
	if h.n == 0 {
		return 0
	}
	target := int64(math.Ceil(p / 100 * float64(h.n)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for b, c := range h.counts {
		seen += c
		if seen >= target {
			v := bucketLow(b)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// CDF returns (value, cumulativeFraction) pairs for every non-empty bucket,
// used to report distributions like Figure 14(b).
func (h *Hist) CDF() []CDFPoint {
	var out []CDFPoint
	var seen int64
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		out = append(out, CDFPoint{Value: bucketLow(b), Fraction: float64(seen) / float64(h.n)})
	}
	return out
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Value    int64
	Fraction float64
}

// Counter is a small-domain exact histogram (e.g. retry counts 0..N, round
// trips per operation). Values beyond the domain clamp into the last bin.
type Counter struct {
	bins []int64
	n    int64
}

// NewCounter creates a counter over the domain [0, size).
func NewCounter(size int) *Counter { return &Counter{bins: make([]int64, size)} }

// Record adds one observation of value v.
func (c *Counter) Record(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(c.bins) {
		v = len(c.bins) - 1
	}
	c.bins[v]++
	c.n++
}

// Merge folds other into c.
func (c *Counter) Merge(other *Counter) {
	if other == nil {
		return
	}
	for i, v := range other.bins {
		if i < len(c.bins) {
			c.bins[i] += v
		} else {
			c.bins[len(c.bins)-1] += v
		}
	}
	c.n += other.n
}

// Count returns total observations.
func (c *Counter) Count() int64 { return c.n }

// Sum returns the total of all recorded values (observations beyond the
// domain contribute their clamped value).
func (c *Counter) Sum() int64 {
	var s int64
	for v, cnt := range c.bins {
		s += int64(v) * cnt
	}
	return s
}

// Mean returns the arithmetic mean of recorded values (0 when empty).
func (c *Counter) Mean() float64 {
	if c.n == 0 {
		return 0
	}
	return float64(c.Sum()) / float64(c.n)
}

// Fraction returns the share of observations equal to v.
func (c *Counter) Fraction(v int) float64 {
	if c.n == 0 || v < 0 || v >= len(c.bins) {
		return 0
	}
	return float64(c.bins[v]) / float64(c.n)
}

// Bins returns a copy of the raw bins.
func (c *Counter) Bins() []int64 {
	out := make([]int64, len(c.bins))
	copy(out, c.bins)
	return out
}

// PercentileValue returns the smallest v such that at least p% of
// observations are <= v.
func (c *Counter) PercentileValue(p float64) int {
	if c.n == 0 {
		return 0
	}
	target := int64(math.Ceil(p / 100 * float64(c.n)))
	var seen int64
	for v, cnt := range c.bins {
		seen += cnt
		if seen >= target {
			return v
		}
	}
	return len(c.bins) - 1
}

// SizeHist is an exact histogram over arbitrary int64 values (write sizes).
// Cardinality is tiny — a handful of distinct IO sizes — so it keeps two
// parallel arrays scanned linearly: after each distinct size has appeared
// once, Record touches no map and never allocates, keeping the hot-path
// recorders allocation-free in steady state.
type SizeHist struct {
	vals   []int64
	counts []int64
	n      int64
}

// NewSizeHist creates an empty size histogram.
func NewSizeHist() *SizeHist {
	return &SizeHist{vals: make([]int64, 0, 8), counts: make([]int64, 0, 8)}
}

// Record adds one observation.
func (s *SizeHist) Record(v int64) {
	s.n++
	for i, sv := range s.vals {
		if sv == v {
			s.counts[i]++
			return
		}
	}
	s.vals = append(s.vals, v)
	s.counts = append(s.counts, 1)
}

// add folds cnt observations of v into s.
func (s *SizeHist) add(v, cnt int64) {
	s.n += cnt
	for i, sv := range s.vals {
		if sv == v {
			s.counts[i] += cnt
			return
		}
	}
	s.vals = append(s.vals, v)
	s.counts = append(s.counts, cnt)
}

// Merge folds other into s.
func (s *SizeHist) Merge(other *SizeHist) {
	if other == nil {
		return
	}
	for i, v := range other.vals {
		s.add(v, other.counts[i])
	}
}

// Count returns total observations.
func (s *SizeHist) Count() int64 { return s.n }

// Points returns (value, fraction) sorted by value.
func (s *SizeHist) Points() []SizePoint {
	out := make([]SizePoint, 0, len(s.vals))
	for i, v := range s.vals {
		out = append(out, SizePoint{Value: v, Fraction: float64(s.counts[i]) / float64(s.n)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// SizePoint is one (value, fraction) pair of a SizeHist.
type SizePoint struct {
	Value    int64
	Fraction float64
}

// String renders the size histogram compactly for reports.
func (s *SizeHist) String() string {
	var b strings.Builder
	for i, p := range s.Points() {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%dB:%.2f%%", p.Value, p.Fraction*100)
	}
	return b.String()
}
