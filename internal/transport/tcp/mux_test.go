package tcp

import (
	"bufio"
	"net"
	"sync"
	"testing"
	"time"

	"sherman/internal/transport"
)

// muxDial connects a test mux to endpoint and registers its teardown.
func muxDial(t *testing.T, endpoint string, window int) *muxConn {
	t.Helper()
	m, err := dialMux(0, endpoint, window)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.fail)
	return m
}

// growOn grows one chunk on the mux's server and returns its base offset.
func growOn(t *testing.T, m *muxConn) uint64 {
	t.Helper()
	var base uint64
	if !m.roundTrip(opGrow, nil, func(resp []byte) { base = leU64(resp) }) {
		t.Fatal("grow round trip failed")
	}
	return base
}

// writeOn posts one write through the mux's WriteBatch opcode.
func writeOn(t *testing.T, m *muxConn, a transport.Addr, data []byte) {
	t.Helper()
	payload := appendU32(nil, 1)
	payload = appendU64(payload, uint64(a))
	payload = appendU32(payload, uint32(len(data)))
	payload = append(payload, data...)
	if !m.roundTrip(opWriteBatch, payload, nil) {
		t.Fatal("write round trip failed")
	}
}

func readPayload(a transport.Addr, n int) []byte {
	return appendU32(appendU64(nil, uint64(a)), uint32(n))
}

// TestMuxOutOfOrderDelivery posts a large read and a small read back to back
// on one multiplexed connection and awaits them in reverse issue order: the
// tag demux must route each response to its own slot no matter which the
// server finishes first.
func TestMuxOutOfOrderDelivery(t *testing.T) {
	endpoints := startServers(t, 1)
	m := muxDial(t, endpoints[0], 0)
	base := growOn(t, m)

	big := make([]byte, 64<<10)
	for i := range big {
		big[i] = byte(i * 7)
	}
	small := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	bigAddr := transport.MakeAddr(0, base)
	smallAddr := transport.MakeAddr(0, base+(1<<20))
	writeOn(t, m, bigAddr, big)
	writeOn(t, m, smallAddr, small)

	tagBig := m.issue(opRead, readPayload(bigAddr, len(big)))
	tagSmall := m.issue(opRead, readPayload(smallAddr, len(small)))
	if tagBig == tagSmall {
		t.Fatalf("issue reused tag %d while in flight", tagBig)
	}

	// Await the later-issued request first: completion order is the server's
	// business, delivery order is the awaiter's.
	resp, ok := m.await(tagSmall)
	if !ok {
		t.Fatal("small read failed")
	}
	if string(resp) != string(small) {
		t.Fatalf("small read = %v, want %v", resp, small)
	}
	m.release(tagSmall)

	resp, ok = m.await(tagBig)
	if !ok {
		t.Fatal("big read failed")
	}
	if len(resp) != len(big) {
		t.Fatalf("big read %d bytes, want %d", len(resp), len(big))
	}
	for i := range resp {
		if resp[i] != big[i] {
			t.Fatalf("big read byte %d = %d, want %d", i, resp[i], big[i])
		}
	}
	m.release(tagBig)
}

// TestMuxConcurrentSenders hammers one mux from several goroutines, each
// verifying its own distinct pattern — the shared-window, coalesced-writer,
// demuxed-reader path under real contention.
func TestMuxConcurrentSenders(t *testing.T) {
	endpoints := startServers(t, 1)
	m := muxDial(t, endpoints[0], 0)
	base := growOn(t, m)

	const workers = 8
	const rounds = 200
	for w := 0; w < workers; w++ {
		pat := make([]byte, 128)
		for i := range pat {
			pat[i] = byte(w*31 + i)
		}
		writeOn(t, m, transport.MakeAddr(0, base+uint64(w)*4096), pat)
	}
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := transport.MakeAddr(0, base+uint64(w)*4096)
			for r := 0; r < rounds; r++ {
				tag := m.issue(opRead, readPayload(a, 128))
				resp, ok := m.await(tag)
				if !ok {
					errs <- "read failed"
					return
				}
				for i := range resp {
					if resp[i] != byte(w*31+i) {
						m.release(tag)
						errs <- "cross-delivered response payload"
						return
					}
				}
				m.release(tag)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// fakeServer accepts one connection and hands it to fn.
func fakeServer(t *testing.T, fn func(c net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		fn(c)
	}()
	return ln.Addr().String()
}

// TestMuxBadTagKillsConnection pins the desynchronization rule: a response
// whose tag is out of range (or not in flight) kills the connection, and
// every pending and future request completes with the error path instead of
// hanging.
func TestMuxBadTagKillsConnection(t *testing.T) {
	ep := fakeServer(t, func(c net.Conn) {
		r := bufio.NewReader(c)
		tag, _, _, err := readFrame(r)
		if err != nil {
			return
		}
		writeFrame(c, tag+1000, statusOK, nil) // way out of the slot table
		// Hold the conn open: only the bad tag, not EOF, must kill it.
		time.Sleep(5 * time.Second)
	})
	m := muxDial(t, ep, 0)
	tag := m.issue(opPing, nil)
	if _, ok := m.await(tag); ok {
		t.Fatal("await succeeded on a desynchronized stream")
	}
	m.release(tag)
	// The mux is terminally dead: a later issue self-completes with err.
	tag = m.issue(opPing, nil)
	if _, ok := m.await(tag); ok {
		t.Fatal("await succeeded on a dead mux")
	}
	m.release(tag)
}

// TestMuxTornFrameFailsPending cuts the response stream mid-frame — once
// inside the header, once inside the payload — and checks that the pending
// request errors out instead of hanging on the torn read.
func TestMuxTornFrameFailsPending(t *testing.T) {
	cases := []struct {
		name string
		fn   func(c net.Conn, tag uint32)
	}{
		{"torn header", func(c net.Conn, tag uint32) {
			c.Write([]byte{42, 0, 0}) // 3 of 9 header bytes
		}},
		{"torn payload", func(c net.Conn, tag uint32) {
			full := appendFrame(nil, tag, statusOK, make([]byte, 100))
			c.Write(full[:frameHeader+10]) // header promises 100, delivers 10
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ep := fakeServer(t, func(c net.Conn) {
				r := bufio.NewReader(c)
				tag, _, _, err := readFrame(r)
				if err != nil {
					return
				}
				tc.fn(c, tag)
			})
			m := muxDial(t, ep, 0)
			tag := m.issue(opPing, nil)
			if _, ok := m.await(tag); ok {
				t.Fatal("await succeeded across a torn frame")
			}
			m.release(tag)
		})
	}
}

// TestPingBypassesFullDataWindow pins the heartbeat liveness property: the
// membership service pings on its own lockstep connection, so a data window
// completely full of requests stalled on a busy chunk cannot head-of-line
// block failure detection. The test wedges a tiny window behind a held
// server stripe lock, then round-trips a ping on a separate connection with
// a deadline.
func TestPingBypassesFullDataWindow(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)

	m := muxDial(t, srv.Addr(), 2)
	base := growOn(t, m)
	addr := transport.MakeAddr(0, base)
	writeOn(t, m, addr, make([]byte, 8))

	// Wedge chunk 0's stripe: both window slots fill with reads that block
	// inside server workers on the held lock.
	srv.st.locks[0].Lock()
	tagA := m.issue(opRead, readPayload(addr, 8))
	tagB := m.issue(opRead, readPayload(addr, 8))

	// A membership-style lockstep ping on its own connection must answer
	// while the data window is wedged.
	pc, err := net.DialTimeout("tcp", srv.Addr(), dialTimeout)
	if err != nil {
		srv.st.locks[0].Unlock()
		t.Fatal(err)
	}
	defer pc.Close()
	pc.SetDeadline(time.Now().Add(5 * time.Second))
	if err := writeFrame(pc, 0, opPing, nil); err != nil {
		srv.st.locks[0].Unlock()
		t.Fatalf("ping write: %v", err)
	}
	_, status, _, err := readFrame(bufio.NewReader(pc))
	if err != nil || status != statusOK {
		srv.st.locks[0].Unlock()
		t.Fatalf("ping while data window wedged: status %d, err %v", status, err)
	}

	srv.st.locks[0].Unlock()
	if _, ok := m.await(tagA); !ok {
		t.Fatal("wedged read A failed after unlock")
	}
	m.release(tagA)
	if _, ok := m.await(tagB); !ok {
		t.Fatal("wedged read B failed after unlock")
	}
	m.release(tagB)
}

// TestPreDialNoFirstOpHandshake pins the first-op latency fix: NewCluster
// pre-dials every server's mux at bring-up, so the first verb (and every
// later one) opens no new connection.
func TestPreDialNoFirstOpHandshake(t *testing.T) {
	srvs := make([]*Server, 2)
	endpoints := make([]string, 2)
	for i := range srvs {
		srv, err := NewServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve()
		t.Cleanup(srv.Close)
		srvs[i] = srv
		endpoints[i] = srv.Addr()
	}

	// Heartbeats disabled: their watcher conns would race the count.
	c, err := NewCluster(endpoints, 1, Options{HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	before := []int64{srvs[0].Accepted(), srvs[1].Accepted()}
	for i, n := range before {
		if n < 1 {
			t.Fatalf("server %d accepted %d conns at bring-up, want the pre-dialed mux", i, n)
		}
	}

	// Verbs against both servers: reads, writes, atomics.
	tr := c.NewTransport(0)
	for ms := uint16(0); ms < 2; ms++ {
		base := tr.GrowChunk(ms)
		a := transport.MakeAddr(ms, base)
		tr.Write(a, []byte{1, 2, 3, 4, 5, 6, 7, 8})
		buf := make([]byte, 8)
		tr.Read(a, buf)
		tr.FAA(a, 1)
	}

	for i, srv := range srvs {
		if got := srv.Accepted(); got != before[i] {
			t.Fatalf("server %d accepted %d new conns after first verbs (%d -> %d); pre-dial regressed",
				i, got-before[i], before[i], got)
		}
	}
}
