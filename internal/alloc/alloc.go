// Package alloc implements Sherman's two-stage memory allocation scheme
// (§4.2.4): client threads obtain fixed-length 8 MB chunks from memory
// servers' wimpy memory threads via RPC (stage one), then carve tree nodes
// out of their current chunk locally (stage two). Most allocations therefore
// cost zero network round trips, and the memory thread handles only one RPC
// per 8 MB.
package alloc

import (
	"fmt"
	"sync/atomic"

	"sherman/internal/rdma"
	"sherman/internal/transport"
)

// nodeAlign keeps every allocation 64-byte aligned so that node headers and
// trailing versions land at predictable line offsets.
const nodeAlign = 64

// Stats aggregates allocator activity across threads.
type Stats struct {
	// Chunks counts chunk-allocation RPCs issued to memory threads.
	Chunks atomic.Int64
	// Nodes counts local (stage-two) allocations served.
	Nodes atomic.Int64
}

// placement is the topology view chunk placement decisions run over: both a
// client Transport and a raw Grower satisfy it.
type placement interface {
	NumMS() int
	MSUsable(ms int) bool
}

// ThreadAllocator is the per-client-thread stage-two allocator. It selects
// memory servers round-robin per chunk (§4.2.4; the paper notes round-robin
// may imbalance accesses and leaves that for future work). The server set is
// re-read at every refill, so chunks start landing on scaled-out servers as
// soon as they join, and never on draining ones.
type ThreadAllocator struct {
	c      transport.Transport
	stats  *Stats
	nextMS int

	cur rdma.Addr
	rem uint64

	rep *ReplicaMap
	rf  int
}

// SetReplication makes every chunk this allocator grows carry factor-1
// replica copies, placed on distinct other servers and registered in rep
// before the first node is carved from the chunk.
func (a *ThreadAllocator) SetReplication(rep *ReplicaMap, factor int) {
	a.rep, a.rf = rep, factor
}

// NewThreadAllocator creates an allocator for client thread c. startMS
// staggers the round-robin origin so threads do not stampede one server;
// pass e.g. the thread index.
func NewThreadAllocator(c transport.Transport, stats *Stats, startMS int) *ThreadAllocator {
	numMS := c.NumMS()
	return &ThreadAllocator{
		c:      c,
		stats:  stats,
		nextMS: ((startMS % numMS) + numMS) % numMS,
	}
}

// Alloc returns the address of a fresh size-byte region of disaggregated
// memory. It falls back to a chunk RPC only when the current chunk is
// exhausted.
func (a *ThreadAllocator) Alloc(size int) rdma.Addr {
	if size <= 0 || size > rdma.DefaultChunkSize {
		panic(fmt.Sprintf("alloc: bad allocation size %d", size))
	}
	sz := (uint64(size) + nodeAlign - 1) &^ (nodeAlign - 1)
	if a.rem > 0 && !a.c.MSUsable(int(a.cur.MS())) {
		// The current chunk's server started draining or died: abandon
		// the remainder so no new node lands on a server being scaled in
		// (or on dead memory that discards every write).
		a.rem = 0
	}
	for a.rem < sz {
		// A refill can yield slightly less than a full chunk (the nil-address
		// carve-out on MS 0), so loop until a chunk fits.
		a.refill()
	}
	addr := a.cur
	a.cur = a.cur.Add(sz)
	a.rem -= sz
	a.stats.Nodes.Add(1)
	return addr
}

// refill obtains a new chunk from the next non-draining memory server in
// round-robin order via the memory thread RPC.
func (a *ThreadAllocator) refill() {
	ms := uint16(nextPlacement(a.c, &a.nextMS))
	base := a.c.GrowChunk(ms)
	if !a.c.MSAlive(int(ms)) {
		// The server died during (or just before) the growth RPC. A chunk
		// born on dead memory would discard every write, and the failover
		// sweep that promotes registered chunks has already run — so discard
		// it unregistered and grab a chunk elsewhere.
		a.rem = 0
		a.refill()
		return
	}
	a.cur, a.rem = chunkStart(ms, base)
	a.stats.Chunks.Add(1)
	if a.rep != nil && a.rf > 1 {
		ck := ChunkID{MS: ms, Index: base / rdma.DefaultChunkSize}
		a.rep.Register(ck, placeReplicas(a.c, ms, a.rf-1, a.c.GrowChunk)...)
		if !a.c.MSAlive(int(ms)) {
			// Died between the liveness check above and registration: the
			// failover sweep may have missed this chunk. Nothing was carved
			// from it yet — drop the registration (a no-op if the sweep did
			// see it and re-keyed it) and start over.
			a.rep.Drop(ck)
			a.rem = 0
			a.refill()
		}
	}
}

// placeReplicas grows want replica chunks for a primary on server ms, each
// on a distinct other live, non-draining server, walking round-robin from
// ms+1 so replica load spreads. grow performs the chunk growth on the
// chosen server (RPC-timed or raw, per caller). Fewer than want servers
// qualifying yields an under-replicated chunk the background re-replicator
// repairs once capacity appears.
func placeReplicas(view placement, ms uint16, want int, grow func(uint16) uint64) []rdma.Addr {
	var bases []rdma.Addr
	n := view.NumMS()
	cursor := (int(ms) + 1) % n
	for i := 0; i < n && len(bases) < want; i++ {
		rms := cursor
		cursor = (cursor + 1) % n
		if rms == int(ms) || !view.MSUsable(rms) {
			continue
		}
		bases = append(bases, rdma.MakeAddr(uint16(rms), grow(uint16(rms))))
	}
	return bases
}

// RegisterPlaced grows and registers want replica chunks for the primary
// chunk ck, placed like any allocator refill (distinct live, non-draining
// servers, never ck's own), growing each through grow so the caller controls
// RPC timing. No-op when rep is nil, want is zero, or ck is already
// registered — the migration engine calls this for fresh forwarding-target
// chunks, which bypass the allocators, and a reused target is already
// covered.
func RegisterPlaced(rep *ReplicaMap, view interface {
	NumMS() int
	MSUsable(ms int) bool
}, ck ChunkID, want int, grow func(uint16) uint64) {
	if rep == nil || want <= 0 || rep.Registered(ck) {
		return
	}
	rep.Register(ck, placeReplicas(view, ck.MS, want, grow)...)
}

// nextPlacement advances the round-robin cursor to the next server willing
// to accept allocations — live and not draining — falling back to plain
// round-robin when no server qualifies (scale-in must never wedge the
// allocator).
func nextPlacement(view placement, cursor *int) int {
	n := view.NumMS()
	*cursor %= n
	for i := 0; i < n; i++ {
		ms := *cursor
		*cursor = (*cursor + 1) % n
		if view.MSUsable(ms) {
			return ms
		}
	}
	ms := *cursor
	*cursor = (*cursor + 1) % n
	return ms
}

// chunkStart converts a freshly grown chunk into an allocation cursor. The
// very first bytes of memory server 0 would form address 0 — the nil
// pointer — so that region is skipped (deployments normally reserve it for
// the superblock anyway).
func chunkStart(ms uint16, base uint64) (rdma.Addr, uint64) {
	if ms == 0 && base == 0 {
		return rdma.MakeAddr(ms, nodeAlign), rdma.DefaultChunkSize - nodeAlign
	}
	return rdma.MakeAddr(ms, base), rdma.DefaultChunkSize
}

// Bulk is a setup-time allocator used for bulk loading: it grows server
// memory directly with no virtual-time accounting and no client context.
// It is not safe for concurrent use.
type Bulk struct {
	g     transport.Grower
	next  int
	cur   []rdma.Addr // per-MS open-chunk cursor
	rem   []uint64
	stats *Stats

	rep *ReplicaMap
	rf  int
}

// SetReplication mirrors ThreadAllocator.SetReplication for bulk loading:
// every chunk Bulk grows is registered with factor-1 replica copies so the
// bulkloaded tree is replicated from its first write.
func (b *Bulk) SetReplication(rep *ReplicaMap, factor int) {
	b.rep, b.rf = rep, factor
}

// NewBulk creates a bulk-load allocator over the cluster's raw growth view.
func NewBulk(g transport.Grower, stats *Stats) *Bulk {
	return &Bulk{
		g:     g,
		cur:   make([]rdma.Addr, g.NumMS()),
		rem:   make([]uint64, g.NumMS()),
		stats: stats,
	}
}

// Alloc carves a region with the same alignment and chunk discipline as the
// runtime allocator, striping consecutive allocations across memory servers
// (one open chunk per server) so the bulkloaded tree is balanced the way the
// paper's full-scale tree is: at a billion keys every server holds hundreds
// of chunks of every tree level, so reads spread evenly no matter which key
// range is hot. A scaled-down tree that fits in one 8 MB chunk would instead
// put every leaf behind a single NIC, making that NIC's inbound pipeline
// the whole fabric's bound — a placement artifact of the scaling, not a
// property of the system.
func (b *Bulk) Alloc(size int) rdma.Addr {
	if size <= 0 || size > rdma.DefaultChunkSize {
		panic(fmt.Sprintf("alloc: bad bulk allocation size %d", size))
	}
	sz := (uint64(size) + nodeAlign - 1) &^ (nodeAlign - 1)
	ms := nextPlacement(b.g, &b.next)
	for ms >= len(b.cur) {
		// The fabric grew since this Bulk was created.
		b.cur = append(b.cur, rdma.NilAddr)
		b.rem = append(b.rem, 0)
	}
	for b.rem[ms] < sz {
		base := b.g.GrowChunkRaw(uint16(ms))
		b.cur[ms], b.rem[ms] = chunkStart(uint16(ms), base)
		if b.stats != nil {
			b.stats.Chunks.Add(1)
		}
		if b.rep != nil && b.rf > 1 {
			ck := ChunkID{MS: uint16(ms), Index: base / rdma.DefaultChunkSize}
			b.rep.Register(ck, placeReplicas(b.g, uint16(ms), b.rf-1, b.g.GrowChunkRaw)...)
		}
	}
	addr := b.cur[ms]
	b.cur[ms] = b.cur[ms].Add(sz)
	b.rem[ms] -= sz
	if b.stats != nil {
		b.stats.Nodes.Add(1)
	}
	return addr
}
