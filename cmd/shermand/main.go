// Command shermand is a Sherman memory server: one OS process exposing
// host-memory chunks, NIC on-chip lock memory, and the atomic verbs over
// the TCP transport's length-prefixed binary protocol (see
// internal/transport/tcp).
//
// Run one process per memory server:
//
//	shermand -listen 127.0.0.1:0
//
// The process prints "LISTEN <addr>" once bound (with :0 the kernel picks
// the port) and serves until it receives a Shutdown frame, SIGINT, or
// SIGTERM.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"sherman/internal/transport/tcp"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on (:0 picks a free port)")
	flag.Parse()

	s, err := tcp.NewServer(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shermand:", err)
		os.Exit(1)
	}
	fmt.Printf("LISTEN %s\n", s.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		select {
		case <-sig:
			s.Close()
		case <-s.Done():
		}
	}()

	if err := s.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "shermand:", err)
		os.Exit(1)
	}
}
