package rdma

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"sherman/internal/sim"
)

// lineSize is the granularity at which simulated DMA is atomic. Real NICs
// read/write host memory in cacheline units in increasing address order
// (§3.2.3 footnote 5), so larger transfers can be observed torn at line
// boundaries — which is exactly what the index's consistency checks exist
// to detect.
const lineSize = 64

const (
	hostStripes   = 1 << 11
	onChipStripes = 1 << 6
)

// Server is one memory server: high-volume host DRAM carved into chunks, an
// RDMA NIC with on-chip device memory and internal atomic buckets, and a
// wimpy memory thread for allocation RPCs.
type Server struct {
	// ID is the server's 15-bit identifier used in Addr values.
	ID uint16

	// Inbound models the NIC's inbound command-processing pipeline.
	Inbound sim.Resource

	// AtomicUnit models the NIC's single atomic processing pipeline: every
	// RDMA_ATOMIC handled by this NIC occupies it for the per-command unit
	// time (PCIe-bound for host targets, §3.2.2; fast for on-chip targets,
	// §4.3). Saturating it — as a hot-lock retry storm does — stalls
	// atomics for unrelated addresses too.
	AtomicUnit sim.Resource

	// CPU models the wimpy memory thread that serves allocation RPCs.
	CPU sim.Resource

	chunkSize int64
	chunks    atomic.Pointer[[][]byte]
	growMu    sync.Mutex

	// draining marks a server that is being scaled in: allocators stop
	// placing new chunks (and nodes) on it, and the migration engine moves
	// its contents elsewhere. Existing addresses stay resolvable forever.
	draining atomic.Bool

	// dead marks a failed server. One-sided clients never learn of the
	// failure in-band — their verbs simply stop taking effect: reads
	// zero-fill (a zeroed buffer fails every consistency check, so readers
	// chase to a replica), writes and atomics are discarded (a CAS "returns"
	// 0, so lock paths proceed into a validating read that observes the
	// death). Addresses stay resolvable so in-flight verbs never fault.
	dead atomic.Bool

	// inboundOps counts client verbs serviced by this NIC (reads, writes,
	// atomics, RPCs) — the load signal the migration picker and the elastic
	// benchmark consume. chunkOps breaks host-memory traffic down by chunk
	// so the picker can select the hottest chunks; it is grown copy-on-write
	// alongside chunks.
	inboundOps atomic.Int64
	chunkOps   atomic.Pointer[[]*atomic.Int64]

	stripes [hostStripes]sync.Mutex

	onChip        []byte
	onChipStripes [onChipStripes]sync.Mutex

	buckets []sim.Resource
}

func newServer(id uint16, p sim.Params) *Server {
	s := &Server{
		ID:        id,
		chunkSize: DefaultChunkSize,
		onChip:    make([]byte, p.OnChipMemBytes),
		buckets:   make([]sim.Resource, p.AtomicBuckets),
	}
	empty := make([][]byte, 0)
	s.chunks.Store(&empty)
	counters := make([]*atomic.Int64, 0)
	s.chunkOps.Store(&counters)
	return s
}

// SetDraining marks (or unmarks) the server as scaling in; draining servers
// receive no new allocations.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is scaling in.
func (s *Server) Draining() bool { return s.draining.Load() }

// SetDead fails (or revives, in tests) the server's memory: subsequent
// reads zero-fill and writes/atomics discard. The fault injector's MS-death
// listener chain calls this before replica promotion runs.
func (s *Server) SetDead(v bool) { s.dead.Store(v) }

// Dead reports whether the server has failed.
func (s *Server) Dead() bool { return s.dead.Load() }

// InboundOps returns the number of client verbs this NIC has serviced.
func (s *Server) InboundOps() int64 { return s.inboundOps.Load() }

// ChunkOps returns a snapshot of per-chunk inbound verb counts for host
// memory (index = chunk number). On-chip traffic is counted only in
// InboundOps.
func (s *Server) ChunkOps() []int64 {
	counters := *s.chunkOps.Load()
	out := make([]int64, len(counters))
	for i, c := range counters {
		out[i] = c.Load()
	}
	return out
}

// NoteRPC books one memory-thread RPC against the NIC total (no chunk
// attribution: RPCs are control traffic, not data placement).
func (s *Server) NoteRPC() { s.inboundOps.Add(1) }

// NoteInbound books n inbound verbs against the NIC (and, for host-memory
// targets, against the chunk holding a). Client verbs call it; raw
// setup-time accesses do not, so load counters reflect served traffic only.
func (s *Server) NoteInbound(a Addr, n int64) {
	s.inboundOps.Add(n)
	if a.OnChip() {
		return
	}
	counters := *s.chunkOps.Load()
	if ci := a.Off() / uint64(s.chunkSize); ci < uint64(len(counters)) {
		counters[ci].Add(n)
	}
}

// Capacity returns the currently materialized host-memory size in bytes.
func (s *Server) Capacity() uint64 {
	return uint64(len(*s.chunks.Load())) * uint64(s.chunkSize)
}

// OnChipSize returns the NIC's on-chip device memory capacity in bytes.
func (s *Server) OnChipSize() int { return len(s.onChip) }

// Grow appends one fixed-length chunk of host memory and returns its base
// offset. It is invoked by the memory thread's allocation RPC handler; the
// virtual-time cost of the RPC is charged by the caller.
func (s *Server) Grow() uint64 {
	s.growMu.Lock()
	defer s.growMu.Unlock()
	old := *s.chunks.Load()
	base := uint64(len(old)) * uint64(s.chunkSize)
	grown := make([][]byte, len(old)+1)
	copy(grown, old)
	grown[len(old)] = make([]byte, s.chunkSize)
	oldCtr := *s.chunkOps.Load()
	ctrs := make([]*atomic.Int64, len(oldCtr)+1)
	copy(ctrs, oldCtr)
	ctrs[len(oldCtr)] = new(atomic.Int64)
	s.chunkOps.Store(&ctrs)
	s.chunks.Store(&grown)
	return base
}

// slice resolves [off, off+n) to the backing chunk memory. Objects never
// span chunks (the allocator guarantees it), so a single slice suffices.
func (s *Server) slice(off uint64, n int) []byte {
	chunks := *s.chunks.Load()
	ci := off / uint64(s.chunkSize)
	inner := off % uint64(s.chunkSize)
	if ci >= uint64(len(chunks)) || inner+uint64(n) > uint64(s.chunkSize) {
		panic(fmt.Sprintf("rdma: access [%#x,+%d) out of bounds on ms%d (cap %#x)",
			off, n, s.ID, s.Capacity()))
	}
	return chunks[ci][inner : inner+uint64(n)]
}

func (s *Server) region(a Addr, n int) (mem []byte, stripes []sync.Mutex, base uint64) {
	if a.OnChip() {
		off := a.Off()
		if off+uint64(n) > uint64(len(s.onChip)) {
			panic(fmt.Sprintf("rdma: on-chip access [%#x,+%d) out of bounds on ms%d", off, n, s.ID))
		}
		return s.onChip[off : off+uint64(n)], s.onChipStripes[:], off
	}
	return s.slice(a.Off(), n), s.stripes[:], a.Off()
}

// copyOut reads n = len(buf) bytes at a into buf with line-granular
// atomicity, in increasing address order.
func (s *Server) copyOut(a Addr, buf []byte) {
	if s.dead.Load() {
		clear(buf)
		return
	}
	mem, stripes, base := s.region(a, len(buf))
	forEachLine(base, len(buf), func(lo, hi int, stripe uint64) {
		mu := &stripes[stripe%uint64(len(stripes))]
		mu.Lock()
		copy(buf[lo:hi], mem[lo:hi])
		mu.Unlock()
	})
}

// copyIn writes data at a with line-granular atomicity, in increasing
// address order (real NIC DMA order, which Cell/NAM-DB and Sherman rely on).
func (s *Server) copyIn(a Addr, data []byte) {
	if s.dead.Load() {
		return
	}
	mem, stripes, base := s.region(a, len(data))
	forEachLine(base, len(data), func(lo, hi int, stripe uint64) {
		mu := &stripes[stripe%uint64(len(stripes))]
		mu.Lock()
		copy(mem[lo:hi], data[lo:hi])
		mu.Unlock()
	})
}

// forEachLine visits [0,n) split at 64-byte line boundaries of base+i,
// yielding buffer-relative [lo,hi) plus the global line index.
func forEachLine(base uint64, n int, fn func(lo, hi int, line uint64)) {
	lo := 0
	for lo < n {
		line := (base + uint64(lo)) / lineSize
		hi := int((line+1)*lineSize - base)
		if hi > n {
			hi = n
		}
		fn(lo, hi, line)
		lo = hi
	}
}

// atomic64 runs fn on the 8-byte little-endian word at a under the word's
// stripe lock, giving RDMA_ATOMIC semantics. The address must be 8-aligned.
func (s *Server) atomic64(a Addr, fn func(old uint64) (new uint64, write bool)) uint64 {
	if a.Off()%8 != 0 {
		panic(fmt.Sprintf("rdma: unaligned atomic at %v", a))
	}
	if s.dead.Load() {
		// Dead memory reads as zero and absorbs nothing: the atomic's
		// "previous value" response is fabricated from that zero (so a CAS
		// expecting 0 appears to succeed) and any write is discarded — the
		// acquiring client then proceeds into a validating read that
		// observes the death and chases to a replica.
		fn(0)
		return 0
	}
	mem, stripes, base := s.region(a, 8)
	mu := &stripes[(base/lineSize)%uint64(len(stripes))]
	mu.Lock()
	old := binary.LittleEndian.Uint64(mem)
	if nw, write := fn(old); write {
		binary.LittleEndian.PutUint64(mem, nw)
	}
	mu.Unlock()
	return old
}

// bucketFor returns the NIC-internal atomic bucket serializing commands that
// target a. Buckets are keyed by low destination-address bits (§3.2.2).
func (s *Server) bucketFor(a Addr) *sim.Resource {
	return &s.buckets[(a.Off()>>3)%uint64(len(s.buckets))]
}

// WriteAt stores data at host offset off without virtual-time accounting.
// It is intended for bulk loading before client threads start.
func (s *Server) WriteAt(off uint64, data []byte) {
	s.copyIn(MakeAddr(s.ID, off), data)
}

// ReadAt loads len(buf) bytes from host offset off without virtual-time
// accounting. Intended for tests and debugging.
func (s *Server) ReadAt(off uint64, buf []byte) {
	s.copyOut(MakeAddr(s.ID, off), buf)
}

// ResetTime rewinds all of the server's resource clocks to zero between
// experiments.
func (s *Server) ResetTime() {
	s.Inbound.Reset()
	s.AtomicUnit.Reset()
	s.CPU.Reset()
	for i := range s.buckets {
		s.buckets[i].Reset()
	}
}
