package sim

import "testing"

func TestFaultsKillAtVerb(t *testing.T) {
	f := NewFaults(2)
	for i := 0; i < 4; i++ {
		if _, _, ok := f.OnVerb(0, 0, int64(i)); !ok {
			t.Fatalf("verb %d refused with no fault armed", i)
		}
	}
	f.KillAtVerb(0, 3) // the 3rd verb from now
	for i := 0; i < 2; i++ {
		if _, _, ok := f.OnVerb(0, 0, 100); !ok {
			t.Fatalf("verb before the armed index refused")
		}
	}
	if _, _, ok := f.OnVerb(0, 0, 200); ok {
		t.Fatal("armed kill verb was allowed")
	}
	if !f.Dead(0) {
		t.Fatal("CS not dead after kill")
	}
	if f.DeathTime(0) != 200 {
		t.Fatalf("death anchor = %d, want 200", f.DeathTime(0))
	}
	if _, _, ok := f.OnVerb(0, 0, 300); ok {
		t.Fatal("dead CS issued a verb")
	}
	// The sibling CS is unaffected.
	if _, _, ok := f.OnVerb(1, 0, 0); !ok {
		t.Fatal("sibling CS refused")
	}
}

func TestFaultsKillAtTimeAndRestart(t *testing.T) {
	f := NewFaults(1)
	f.KillAtTime(0, 1000)
	if _, _, ok := f.OnVerb(0, 0, 999); !ok {
		t.Fatal("verb before the kill time refused")
	}
	if _, _, ok := f.OnVerb(0, 0, 1000); ok {
		t.Fatal("verb at the kill time allowed")
	}
	var deaths, restarts int
	f.OnDeath(func(cs int, deathV int64) { deaths++ })
	f.OnRestart(func(cs int) { restarts++ })
	f.Restart(0)
	if restarts != 1 {
		t.Fatalf("restart listeners ran %d times, want 1", restarts)
	}
	if f.Dead(0) {
		t.Fatal("CS dead after restart")
	}
	// Old-epoch clients stay dead; new-epoch clients work.
	if _, _, ok := f.OnVerb(0, 0, 2000); ok {
		t.Fatal("old-epoch client issued a verb after restart")
	}
	if _, _, ok := f.OnVerb(0, 1, 2000); !ok {
		t.Fatal("new-epoch client refused")
	}
	if !f.Alive(0, 1) || f.Alive(0, 0) {
		t.Fatal("epoch aliveness wrong after restart")
	}
	f.Kill(0, 5000)
	if deaths != 1 {
		t.Fatalf("death listeners ran %d times, want 1", deaths)
	}
}

func TestFaultsDegradeAndPartition(t *testing.T) {
	f := NewFaults(1)
	f.Degrade(0, 77)
	start, delay, ok := f.OnVerb(0, 0, 10)
	if !ok || start != 10 || delay != 77 {
		t.Fatalf("degraded verb = (%d,%d,%v), want (10,77,true)", start, delay, ok)
	}
	f.Partition(0, 500)
	start, _, ok = f.OnVerb(0, 0, 100)
	if !ok || start != 500 {
		t.Fatalf("partitioned verb starts at %d, want 500", start)
	}
	start, _, ok = f.OnVerb(0, 0, 600)
	if !ok || start != 600 {
		t.Fatalf("post-heal verb starts at %d, want 600", start)
	}
}
