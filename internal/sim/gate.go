package sim

import "sync"

// Gate keeps the virtual clocks of a set of worker threads within a bounded
// window of each other, the way wall time does on real hardware.
//
// Worker goroutines execute at unrelated real-time rates, so without pacing
// their virtual clocks drift arbitrarily far apart and cross-thread
// interactions (lock hold windows, resource queues) would mix unrelated
// virtual timelines. Each worker calls Sync between operations; a worker
// whose clock is more than `slack` windows ahead of the slowest active
// worker blocks (in real time) until the stragglers catch up. Blocking only
// ever happens between operations — never while holding a lock — so the
// gate cannot deadlock against the index's own synchronization.
type Gate struct {
	windowNS int64
	slack    int64

	mu     sync.Mutex
	cond   *sync.Cond
	clocks []int64
	done   []bool
	active int
}

// NewGate creates a gate for n workers (ids 0..n-1). windowNS is the pacing
// quantum; slack is how many windows a worker may run ahead.
func NewGate(windowNS, slack int64, n int) *Gate {
	g := &Gate{windowNS: windowNS, slack: slack, clocks: make([]int64, n), done: make([]bool, n), active: n}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Sync publishes the worker's clock and blocks while the worker is too far
// ahead of the slowest active worker.
func (g *Gate) Sync(id int, clock int64) {
	g.mu.Lock()
	g.clocks[id] = clock
	g.cond.Broadcast()
	limit := g.slack * g.windowNS
	for clock/g.windowNS*g.windowNS-g.minActiveLocked() > limit {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// Done removes a finished worker from pacing so stragglers cannot block on
// it forever.
func (g *Gate) Done(id int) {
	g.mu.Lock()
	if !g.done[id] {
		g.done[id] = true
		g.active--
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Park removes a worker from pacing while it waits at a real-time barrier
// (e.g. the warmup/measure alignment point). A parked worker's frozen clock
// must not hold back the rest, or workers whose operations are virtually
// expensive would block in Sync forever and deadlock against the barrier.
func (g *Gate) Park(id int) { g.Done(id) }

// Resume re-admits a parked worker at the given clock.
func (g *Gate) Resume(id int, clock int64) {
	g.mu.Lock()
	if g.done[id] {
		g.done[id] = false
		g.active++
	}
	g.clocks[id] = clock
	g.cond.Broadcast()
	g.mu.Unlock()
}

// minActiveLocked returns the slowest active worker's clock (or a huge value
// when none remain). Callers hold g.mu.
func (g *Gate) minActiveLocked() int64 {
	if g.active == 0 {
		return int64(1) << 62
	}
	min := int64(1) << 62
	for i, c := range g.clocks {
		if !g.done[i] && c < min {
			min = c
		}
	}
	return min
}
