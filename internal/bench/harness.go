// Package bench is the evaluation harness: one driver per table and figure
// of the paper's §5, runnable through cmd/shermanbench or the root-level
// testing.B benchmarks.
//
// Each driver builds a cluster, bulkloads a tree, runs a warmup phase to
// fill the index caches, aligns all thread clocks (with per-thread jitter),
// then measures over a fixed virtual-time window: threads issue operations
// until their clocks pass the deadline, and throughput is completed
// operations divided by the window — the same windowed measurement a real
// testbed uses, and the only form under which lock-convoy equilibria are
// visible. Latencies come from the merged per-thread recorders.
package bench

import (
	"fmt"
	"runtime/debug"
	"sync"

	"sherman/internal/cluster"
	"sherman/internal/core"
	"sherman/internal/layout"
	"sherman/internal/sim"
	"sherman/internal/stats"
	"sherman/internal/workload"
)

// Pacing parameters for sim.Gate: workers may run at most gateSlack windows
// of gateWindowNS virtual nanoseconds ahead of the slowest active worker.
const (
	gateWindowNS = 20_000
	gateSlack    = 2
)

// TreeExp is one tree benchmark configuration.
type TreeExp struct {
	Name string

	NumMS        int
	NumCS        int
	ThreadsPerCS int

	// Keys is the key-space size; the harness bulkloads 80% of it (the
	// paper's 1-billion-key space is scaled down by default, DESIGN.md §2).
	Keys uint64

	Mix       workload.Mix
	Dist      workload.Dist
	Theta     float64
	RangeSpan int

	// Workload, when non-nil, overrides the Mix/Dist/Theta/RangeSpan-derived
	// configuration entirely (used for the YCSB presets, whose semantics —
	// latest-biased reads, read-modify-write — go beyond those fields).
	Workload *workload.Config

	Tree core.Config

	// WarmupOps is executed per thread before measurement to fill index
	// caches and reach steady state.
	WarmupOps int

	// MeasureNS is the virtual-time measurement window. All threads start
	// it together (clocks aligned to the slowest warmup finisher) and issue
	// operations until their clocks pass the deadline; throughput is ops
	// completed divided by the window, exactly as a wall-clock-windowed
	// measurement on real hardware. A fixed per-thread op quota would
	// instead let the system drain as threads finish, hiding convoy
	// effects. 0 means 10 ms.
	MeasureNS int64

	// MaxOpsPerThread bounds a worker's measured operations as a wall-time
	// safety valve (0 = 1e6).
	MaxOpsPerThread int

	// BatchSize, when > 1, makes workers issue their operations through the
	// batch planner (core.Handle.Exec) in groups of this size; 0 or 1
	// issues operations one at a time.
	BatchSize int

	// PipelineDepth, when > 1, issues operations through the async
	// executor with that many outstanding operations per thread, so round
	// trips overlap on each worker's virtual timeline (latency hiding).
	// Composes with BatchSize: pipelined workers submit batches through
	// Async.Exec, overlapping the batch's leaf groups.
	PipelineDepth int

	Params sim.Params // zero = defaults
}

// Defaults fills unset fields with the paper's setup (8 MS, 8 CS, 22
// threads/CS) at a simulator-friendly scale.
func (e TreeExp) Defaults() TreeExp {
	if e.NumMS == 0 {
		e.NumMS = 8
	}
	if e.NumCS == 0 {
		e.NumCS = 8
	}
	if e.ThreadsPerCS == 0 {
		e.ThreadsPerCS = 22
	}
	if e.Keys == 0 {
		e.Keys = 2 << 20
	}
	if e.Theta == 0 {
		e.Theta = 0.99
	}
	if e.RangeSpan == 0 {
		e.RangeSpan = 100
	}
	if e.WarmupOps == 0 {
		e.WarmupOps = 300
	}
	if e.MeasureNS == 0 {
		e.MeasureNS = 10_000_000
	}
	if e.MaxOpsPerThread == 0 {
		e.MaxOpsPerThread = 1_000_000
	}
	if e.Params.RTTNS == 0 {
		e.Params = sim.DefaultParams()
	}
	return e
}

// TreeResult is the outcome of one tree experiment.
type TreeResult struct {
	Name string
	// Mops is throughput in million operations per second (virtual time).
	Mops float64
	// P50, P90, P99 are latency percentiles over all operations, in
	// virtual nanoseconds.
	P50, P90, P99 int64
	// Rec is the merged per-thread recorder with all internal metrics.
	Rec *stats.Recorder
	// HitRatio is the index-cache hit ratio during measurement.
	HitRatio float64
	// CacheEvictions totals budget-pressure evictions across every compute
	// server's cache (whole run, including warmup).
	CacheEvictions int64
	// Handovers is the number of lock acquisitions satisfied by handover.
	Handovers int64
	// LockAcquisitions, LockRetries and LockMaxWaiters expose the lock
	// manager's aggregate counters (whole run, including warmup).
	LockAcquisitions  int64
	LockRetries       int64
	LockMaxWaiters    int64
	LockGrants        int64
	LockGrantSpinners int64

	// MeasuredLockAcquisitions is the lock manager's acquisition count over
	// the measurement window only (the harness snapshots the counter at the
	// warmup barrier, when every thread is parked).
	MeasuredLockAcquisitions int64
	// RoundTripsPerOp and LockAcqPerOp are measured-window network round
	// trips and lock acquisitions per completed operation — the
	// amortization metrics of the batch pipeline.
	RoundTripsPerOp float64
	LockAcqPerOp    float64
}

// RunTree executes one tree experiment.
func RunTree(e TreeExp) TreeResult {
	// Each run materializes a whole cluster (tens of MB of simulated DRAM
	// plus per-thread state); sweeps run hundreds of these back-to-back,
	// so return the previous run's pages to the OS eagerly.
	defer debug.FreeOSMemory()
	e = e.Defaults()
	if err := e.Mix.Validate(); err != nil {
		panic(err)
	}

	cl := cluster.New(cluster.Config{NumMS: e.NumMS, NumCS: e.NumCS, Params: e.Params})
	tr := core.New(cl, e.Tree)

	// Bulkload keys 1..loaded with nonzero derived values.
	wcfg := workload.DefaultConfig(e.Mix, e.Dist, e.Keys)
	wcfg.Theta = e.Theta
	wcfg.RangeSpan = e.RangeSpan
	if e.Workload != nil {
		wcfg = *e.Workload
	}
	loaded := wcfg.LoadedKeys()
	kvs := make([]layout.KV, loaded)
	for i := range kvs {
		k := uint64(i + 1)
		kvs[i] = layout.KV{Key: k, Value: bulkValue(k)}
	}
	tr.Bulkload(kvs)

	baseGen := workload.NewGenerator(wcfg, 0x5eed)

	n := e.NumCS * e.ThreadsPerCS
	handles := make([]*core.Handle, n)
	gens := make([]*workload.Generator, n)
	for i := 0; i < n; i++ {
		handles[i] = tr.NewHandle(i%e.NumCS, i)
		gens[i] = workload.NewGeneratorFrom(baseGen, uint64(i)+1)
	}

	startV := make([]int64, n)
	recs := make([]*stats.Recorder, n)
	gate := sim.NewGate(gateWindowNS, gateSlack, n)

	var warmDone, measureDone sync.WaitGroup
	warmDone.Add(n)
	measureDone.Add(n)
	startCh := make(chan int64) // closed after carrying maxStart by value

	// issue runs one unit of work — a single operation or one batch,
	// synchronous or pipelined — and returns the number of operations it
	// completed.
	batchSize := e.BatchSize
	if batchSize < 1 {
		batchSize = 1
	}
	issue := func(h *core.Handle, as *core.Async, g *workload.Generator, sc *batchScratch) int {
		switch {
		case as != nil && batchSize > 1:
			sc.exec(h, as, g.NextBatch(batchSize))
			return batchSize
		case as != nil:
			doOpAsync(as, g.Next())
			return 1
		case batchSize > 1:
			sc.exec(h, nil, g.NextBatch(batchSize))
			return batchSize
		default:
			doOp(h, g.Next())
			return 1
		}
	}

	var maxStart int64
	for i := 0; i < n; i++ {
		go func(i int) {
			defer measureDone.Done()
			defer gate.Done(i)
			h, g := handles[i], gens[i]
			var sc batchScratch
			var as *core.Async
			if e.PipelineDepth > 1 {
				as = h.NewAsync(e.PipelineDepth)
			}
			// Batch executors pace between leaf groups so a long batch
			// cannot carry this thread's clock outside the gate window.
			h.Pace = func(v int64) { gate.Sync(i, v) }
			for j := 0; j < e.WarmupOps; j += issue(h, as, g, &sc) {
				gate.Sync(i, h.C.Now())
			}
			if as != nil {
				as.Flush()
			}
			startV[i] = h.C.Now()
			gate.Park(i) // frozen clock must not stall threads still warming up
			warmDone.Done()
			<-startCh // all threads aligned to the slowest warmup clock
			// Jitter each thread's start within ~one operation so the
			// window doesn't open with a thundering herd on the hottest
			// key — on real hardware threads are in arbitrary phases when
			// a measurement window opens.
			start := maxStart + int64(i*9973%10_000)
			h.C.AdvanceTo(start)
			gate.Resume(i, start)
			rec := stats.NewRecorder()
			rec.StartV = start
			h.Rec = rec
			rt0 := h.Metrics().RoundTrips
			deadline := maxStart + e.MeasureNS
			for j := 0; h.C.Now() < deadline && j < e.MaxOpsPerThread; j += issue(h, as, g, &sc) {
				// Pace workers so virtual clocks stay within a bounded
				// window of each other (see sim.Gate).
				gate.Sync(i, h.C.Now())
			}
			if as != nil {
				as.Flush() // fold outstanding completions into the makespan
			}
			rec.RoundTrips = h.Metrics().RoundTrips - rt0
			rec.FinishV = h.C.Now()
			recs[i] = rec
		}(i)
	}
	warmDone.Wait()
	// Every thread is parked at the warmup barrier: snapshot the lock
	// manager here so the result can report measurement-window deltas.
	warmupAcq := tr.LockStats().Acquisitions.Load()
	for _, v := range startV {
		if v > maxStart {
			maxStart = v
		}
	}
	close(startCh)
	measureDone.Wait()

	merged := stats.NewRecorder()
	// Throughput sums per-thread rates over each thread's actual issuing
	// interval. Threads stop issuing at the deadline but complete their
	// final unit of work — a whole batch when BatchSize > 1 — so dividing
	// total ops by the fixed window would credit the overshoot ops without
	// their time, biasing large-batch runs upward. Per-thread intervals
	// charge numerator and denominator together.
	var mops float64
	for _, r := range recs {
		merged.Merge(r)
		if d := r.FinishV - r.StartV; d > 0 {
			mops += stats.ThroughputMops(r.TotalOps(), d)
		}
	}
	var evictions int64
	for cs := 0; cs < e.NumCS; cs++ {
		evictions += tr.Cache(cs).Evictions()
	}
	ls := tr.LockStats()
	res := TreeResult{
		Name:              e.Name,
		Mops:              mops,
		CacheEvictions:    evictions,
		P50:               merged.AllLatency.Percentile(50),
		P90:               merged.AllLatency.Percentile(90),
		P99:               merged.AllLatency.Percentile(99),
		Rec:               merged,
		HitRatio:          merged.HitRatio(),
		Handovers:         merged.Handovers,
		LockAcquisitions:  ls.Acquisitions.Load(),
		LockRetries:       ls.GlobalRetries.Load(),
		LockMaxWaiters:    ls.MaxWaiters.Load(),
		LockGrants:        ls.Grants.Load(),
		LockGrantSpinners: ls.GrantSpinnersSum.Load(),

		MeasuredLockAcquisitions: ls.Acquisitions.Load() - warmupAcq,
	}
	if ops := merged.TotalOps(); ops > 0 {
		res.RoundTripsPerOp = float64(merged.RoundTrips) / float64(ops)
		res.LockAcqPerOp = float64(res.MeasuredLockAcquisitions) / float64(ops)
	}
	return res
}

// RunTreeN runs the experiment `runs` times and averages the headline
// metrics (the paper reports the average of 3 or more runs, §5.1.3). The
// returned result carries the last run's recorder for internal metrics.
func RunTreeN(e TreeExp, runs int) TreeResult {
	if runs <= 1 {
		return RunTree(e)
	}
	var acc TreeResult
	for i := 0; i < runs; i++ {
		r := RunTree(e)
		acc.Name = r.Name
		acc.Mops += r.Mops / float64(runs)
		acc.P50 += r.P50 / int64(runs)
		acc.P90 += r.P90 / int64(runs)
		acc.P99 += r.P99 / int64(runs)
		acc.HitRatio += r.HitRatio / float64(runs)
		acc.CacheEvictions += r.CacheEvictions / int64(runs)
		acc.Handovers += r.Handovers / int64(runs)
		acc.RoundTripsPerOp += r.RoundTripsPerOp / float64(runs)
		acc.LockAcqPerOp += r.LockAcqPerOp / float64(runs)
		acc.Rec = r.Rec
		acc.LockAcquisitions = r.LockAcquisitions
		acc.LockRetries = r.LockRetries
		acc.LockMaxWaiters = r.LockMaxWaiters
		acc.LockGrants = r.LockGrants
		acc.LockGrantSpinners = r.LockGrantSpinners
		acc.MeasuredLockAcquisitions = r.MeasuredLockAcquisitions
	}
	return acc
}

// batchScratch is one worker's recycled batch buffers: the translated op
// slice and the results slice ExecInto fills. Reusing them across every
// batch a worker issues keeps steady-state batch execution allocation-free,
// matching the zero-alloc discipline of the paths under measurement (a
// harness that allocates per batch would hide hot-path regressions behind
// its own GC noise).
type batchScratch struct {
	cops    []core.Op
	results []core.OpResult
}

// exec runs one generated batch through the mixed-op planner — pipelined
// when as is non-nil, synchronous otherwise — recycling the scratch buffers.
func (sc *batchScratch) exec(h *core.Handle, as *core.Async, ops []workload.Op) {
	sc.cops = appendCoreOps(sc.cops[:0], ops)
	if cap(sc.results) < len(sc.cops) {
		sc.results = make([]core.OpResult, 2*len(sc.cops))
	}
	sc.results = sc.results[:len(sc.cops)]
	if as != nil {
		as.ExecInto(sc.cops, sc.results)
	} else {
		h.ExecInto(sc.cops, sc.results)
	}
}

// appendCoreOps translates one generated batch to the unified operation
// model, appending to dst, expanding YCSB-F read-modify-writes into an
// explicit lookup ahead of each update (the planner's stable sort keeps the
// pair ordered on its key).
func appendCoreOps(out []core.Op, ops []workload.Op) []core.Op {
	for _, op := range ops {
		switch op.Kind {
		case workload.Lookup:
			out = append(out, core.Op{Kind: stats.OpLookup, Key: op.Key})
		case workload.Insert:
			if op.RMW {
				out = append(out, core.Op{Kind: stats.OpLookup, Key: op.Key})
			}
			out = append(out, core.Op{Kind: stats.OpInsert, Key: op.Key, Value: op.Value})
		case workload.Delete:
			out = append(out, core.Op{Kind: stats.OpDelete, Key: op.Key})
		case workload.Range:
			out = append(out, core.Op{Kind: stats.OpRange, Key: op.Key, Span: op.Span})
		}
	}
	return out
}

// doOpAsync submits one generated operation to the pipelined executor.
func doOpAsync(as *core.Async, op workload.Op) {
	switch op.Kind {
	case workload.Lookup:
		as.Submit(core.Op{Kind: stats.OpLookup, Key: op.Key})
	case workload.Insert:
		if op.RMW {
			// YCSB-F: the read pipelines ahead of its update; same-key
			// ordering in the executor keeps the pair dependent.
			as.Submit(core.Op{Kind: stats.OpLookup, Key: op.Key})
		}
		as.Submit(core.Op{Kind: stats.OpInsert, Key: op.Key, Value: op.Value})
	case workload.Delete:
		as.Submit(core.Op{Kind: stats.OpDelete, Key: op.Key})
	case workload.Range:
		as.Submit(core.Op{Kind: stats.OpRange, Key: op.Key, Span: op.Span})
	}
}

// doOp dispatches one generated operation to the handle.
func doOp(h *core.Handle, op workload.Op) {
	switch op.Kind {
	case workload.Lookup:
		h.Lookup(op.Key)
	case workload.Insert:
		if op.RMW {
			h.Lookup(op.Key) // YCSB-F: read the record before updating it
		}
		h.Insert(op.Key, op.Value)
	case workload.Delete:
		h.Delete(op.Key)
	case workload.Range:
		h.Range(op.Key, op.Span)
	}
}

// bulkValue derives the deterministic bulkloaded value of a key (used by
// correctness checks in tests).
func bulkValue(k uint64) uint64 {
	v := k * 0x9e3779b97f4a7c15
	if v == 0 {
		v = 1
	}
	return v
}

// MopsString formats a throughput for tables.
func MopsString(m float64) string { return fmt.Sprintf("%.2f", m) }

// USString formats a ns latency in microseconds for tables.
func USString(ns int64) string { return fmt.Sprintf("%.1f", float64(ns)/1000) }
