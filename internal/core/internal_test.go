package core

// White-box tests that need raw access to node memory (rawRoot, readRaw).
// Everything that drives the tree through its exported surface lives in the
// core_test package on the shared internal/testutil harness.

import (
	"testing"

	"sherman/internal/cluster"
	"sherman/internal/layout"
)

func internalConfigs() []Config {
	sherman := ShermanConfig()
	sherman.Format = layout.NewFormat(layout.TwoLevel, 8, 256)
	fg := FGPlusConfig()
	fg.Format = layout.NewFormat(layout.Checksum, 8, 256)
	return []Config{sherman, fg}
}

// TestTornNodeDetected injects a physically torn node image and checks the
// read path retries rather than returning garbage: we corrupt, verify the
// consistency check fails, then repair.
func TestTornNodeDetected(t *testing.T) {
	for _, cfg := range internalConfigs() {
		cl := cluster.New(cluster.Config{NumMS: 1, NumCS: 1})
		tr := New(cl, cfg)
		h := tr.NewHandle(0, 0)
		for k := uint64(1); k <= 50; k++ {
			h.Insert(k, k)
		}
		root, _ := tr.rawRoot()

		// Snapshot the node, then simulate a half-applied write: bump the
		// front version / flip a byte without updating the tail.
		buf := make([]byte, cfg.Format.NodeSize)
		cl.RawRead(root, buf)
		n := layout.ViewNode(cfg.Format, buf)
		if !n.Consistent() {
			t.Fatalf("%s: clean node reports inconsistent", cfg.Name())
		}
		if cfg.Format.Mode == layout.TwoLevel {
			buf[0]++ // front node version without rear
		} else {
			buf[40] ^= 0xff // payload byte without checksum update
		}
		if n.Consistent() {
			t.Fatalf("%s: torn node passed the consistency check", cfg.Name())
		}
	}
}

// TestCompactFreesOldNodes checks the old root carries a cleared alive bit
// after Compact, so stale steering fails validation and retraverses
// (§4.2.4).
func TestCompactFreesOldNodes(t *testing.T) {
	cfg := internalConfigs()[0]
	cl := cluster.New(cluster.Config{NumMS: 1, NumCS: 1})
	tr := New(cl, cfg)
	h := tr.NewHandle(0, 0)
	for k := uint64(1); k <= 3000; k++ {
		h.Insert(k, k)
	}
	oldRoot, _ := tr.rawRoot()
	tr.Compact()

	buf := make([]byte, cfg.Format.NodeSize)
	cl.RawRead(oldRoot, buf)
	if layout.ViewNode(cfg.Format, buf).Alive() {
		t.Error("old root still marked alive after compact")
	}
}
