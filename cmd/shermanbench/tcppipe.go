package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sherman"
	"sherman/internal/bench"
	"sherman/internal/transport"
	"sherman/internal/transport/tcp"
)

// runTCPPipe is the -exp tcppipe experiment: real-socket pipelining against
// 3 shermand processes, measured at two layers.
//
// The gated layer is the transport itself: a depth sweep (1/2/4/8) of
// pipelined leaf-sized read verbs through the multiplexed connections'
// async issue/complete path (ReadAsync/Await — exactly what the pipelined
// executor drives). Depth-8 must beat depth-1 by >= 3x: tagging, frame
// coalescing and out-of-order demux have to actually amortize the per-frame
// syscalls, or the whole v2 protocol is decoration. The ratio divides out
// host speed, so the gate holds on slow CI machines where the absolute
// numbers would be meaningless.
//
// The comparison layer is end-to-end: each worker streams Submits through
// depth-N sessions — futures held open across the executor's window, so
// depth-N sessions genuinely keep N operations in flight per memory
// server — and the same sweep runs at matched scale on the simulated
// fabric, giving the sim-vs-TCP rows ROADMAP asks for. TCP rows are honest
// wall-clock Mops; sim rows are virtual-time Mops on the same op mix. The
// session-level scaling is reported but not gated: a session op spends CPU
// on the B+tree client (seek, leaf scan, executor) that a small host
// cannot overlap with the wire, so its depth scaling is host-dependent in a
// way the verb layer's is not.

const (
	tpNumMS    = 3
	tpNumCS    = 2
	tpWorkers  = 2
	tpPreload  = 160000 // enough keys for a 4-level tree: one internal level below the always-cached top
	tpKeySpace = tpPreload * 2
	tpGetOps   = 6000 // per worker per depth
	tpMixedOps = 4000 // per worker per depth
	tpWarmup   = 300  // untimed per-worker ops before each depth's windows
	tpDrain    = 64   // streamed futures held open before a drain
	tpReps     = 3    // timed repetitions per depth; best rep is reported

	tpVerbOps   = 20000 // pipelined read verbs per depth per rep
	tpVerbSize  = 1024  // one default-node-sized read
	tpVerbSlots = 64    // distinct seeded offsets per server
)

var tpDepths = []int{1, 2, 4, 8}

// tcpPipeResult is the outcome runChecks gates on: per-depth pipelined verb
// throughput (the gate), plus session get-phase and mixed-phase throughput,
// TCP (wall) and sim (virtual), for the matched-scale comparison rows.
type tcpPipeResult struct {
	VerbMops     map[int]float64
	TCPGetMops   map[int]float64
	TCPMixedMops map[int]float64
	SimGetMops   map[int]float64
	SimMixedMops map[int]float64
}

// tpVerbSweep launches its own shermand trio and drives the depth sweep of
// pipelined read verbs through the transport's AsyncVerbs path: a window of
// depth in-flight reads, retiring the oldest before each issue, exactly the
// issue/complete pattern the real executor uses. Best of tpReps per depth.
func tpVerbSweep() (map[int]float64, error) {
	ls, err := tcp.LaunchLocal(tpNumMS)
	if err != nil {
		return nil, fmt.Errorf("tcppipe: launch: %w", err)
	}
	defer ls.Stop()
	cl, err := tcp.NewCluster(ls.Endpoints, 1, tcp.Options{})
	if err != nil {
		return nil, fmt.Errorf("tcppipe: dial: %w", err)
	}
	defer cl.Close()
	tr := cl.NewTransport(0)
	av, ok := tr.(transport.AsyncVerbs)
	if !ok {
		return nil, fmt.Errorf("tcppipe: tcp transport does not implement AsyncVerbs")
	}
	// One chunk per server, seeded with leaf-sized records so the reads
	// move real bytes.
	bases := make([]transport.Addr, tpNumMS)
	seed := make([]byte, tpVerbSize)
	for ms := 0; ms < tpNumMS; ms++ {
		bases[ms] = transport.MakeAddr(uint16(ms), tr.GrowChunk(uint16(ms)))
		for s := 0; s < tpVerbSlots; s++ {
			for i := range seed {
				seed[i] = byte(ms + s + i)
			}
			tr.Write(bases[ms].Add(uint64(s*tpVerbSize)), seed)
		}
	}
	// The window under test is the per-MS multiplexed connection's: depth-N
	// keeps N verbs in flight per memory server. Each shermand is streamed
	// in turn with a full depth-deep window on its connection (round-robin
	// would dilute the per-connection depth to depth/numMS), and the depth's
	// throughput aggregates all three servers' streams.
	res := make(map[int]float64)
	for _, depth := range tpDepths {
		pend := make([]transport.Pending, depth)
		bufs := make([][]byte, depth)
		for i := range bufs {
			bufs[i] = make([]byte, tpVerbSize)
		}
		var best float64
		for rep := 0; rep < tpReps; rep++ {
			var elapsed time.Duration
			for ms := 0; ms < tpNumMS; ms++ {
				start := time.Now()
				for i := 0; i < tpVerbOps; i++ {
					slot := i % depth
					if i >= depth {
						av.Await(pend[slot])
					}
					a := bases[ms].Add(uint64((i*7)%tpVerbSlots) * tpVerbSize)
					pend[slot] = av.ReadAsync(a, bufs[slot])
				}
				for s := 0; s < depth; s++ {
					av.Await(pend[s])
				}
				elapsed += time.Since(start)
			}
			if mops := float64(tpNumMS*tpVerbOps) / elapsed.Seconds() / 1e6; mops > best {
				best = mops
			}
		}
		res[depth] = best
	}
	return res, nil
}

// tpPhase drives one worker's streamed window: ops operations submitted
// through the session's pipeline with up to tpDrain futures open, mixed or
// get-only. Returns the first error any future carried.
func tpPhase(s *sherman.Session, r *rand.Rand, ops int, mixed bool) error {
	// Rolling FIFO of open futures: once full, retire only the oldest before
	// each submit, so the executor's window never drains — a stop-the-world
	// drain every tpDrain ops would bubble the pipeline at exactly the
	// depths the experiment is trying to measure.
	futs := make([]*sherman.Future, tpDrain)
	head, tail := 0, 0
	for i := 0; i < ops; i++ {
		key := uint64(r.Intn(tpKeySpace)) + 1
		var op sherman.Op
		switch v := r.Intn(100); {
		case !mixed || v >= 50:
			op = sherman.GetOp(key)
		case v < 40:
			op = sherman.PutOp(key, key*31+uint64(i))
		default:
			op = sherman.DeleteOp(key)
		}
		if tail-head >= tpDrain {
			if res := futs[head%tpDrain].Wait(); res.Err != nil {
				return res.Err
			}
			head++
		}
		futs[tail%tpDrain] = s.Submit(op)
		tail++
	}
	for ; head < tail; head++ {
		if res := futs[head%tpDrain].Wait(); res.Err != nil {
			return res.Err
		}
	}
	return s.Flush()
}

// tpSweep runs the full depth sweep on one tree. wall=true measures
// wall-clock seconds across the concurrent workers; wall=false measures the
// longest worker's virtual-time span (the simulator's makespan convention).
func tpSweep(tree *sherman.Tree, wall bool) (get, mixed map[int]float64, err error) {
	get, mixed = make(map[int]float64), make(map[int]float64)
	seed := int64(1)
	round := func(depth, ops int, isMixed bool, seed int64) (float64, error) {
		var spanMax int64 // sim: longest worker virtual span, ns
		var spanMu sync.Mutex
		var firstErr error
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < tpWorkers; w++ {
			wg.Add(1)
			go func(w int, seed int64) {
				defer wg.Done()
				s, err := tree.SessionAt(w%tpNumCS, sherman.PipelineDepth(depth))
				if err == nil {
					r := rand.New(rand.NewSource(seed))
					if err = tpPhase(s, r, tpWarmup, isMixed); err == nil {
						v0 := s.VirtualNow()
						if err = tpPhase(s, r, ops, isMixed); err == nil {
							span := s.VirtualNow() - v0
							spanMu.Lock()
							if span > spanMax {
								spanMax = span
							}
							spanMu.Unlock()
						}
					}
				}
				if err != nil {
					spanMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("tcppipe: depth %d worker %d: %w", depth, w, err)
					}
					spanMu.Unlock()
				}
			}(w, seed+int64(w))
		}
		wg.Wait()
		if firstErr != nil {
			return 0, firstErr
		}
		total := float64(ops * tpWorkers)
		if wall {
			return total / time.Since(start).Seconds() / 1e6, nil
		}
		return total / (float64(spanMax) / 1e9) / 1e6, nil
	}
	for _, depth := range tpDepths {
		for phase := 0; phase < 2; phase++ {
			isMixed := phase == 1
			ops := tpGetOps
			if isMixed {
				ops = tpMixedOps
			}
			// Best of tpReps timed rounds: wall-clock loopback throughput on
			// a shared host is noisy, and the per-depth best is the stable
			// estimate of what each depth can actually sustain.
			var best float64
			for rep := 0; rep < tpReps; rep++ {
				mops, err := round(depth, ops, isMixed, seed)
				if err != nil {
					return nil, nil, err
				}
				if mops > best {
					best = mops
				}
				seed += tpWorkers
			}
			if isMixed {
				mixed[depth] = best
			} else {
				get[depth] = best
			}
		}
	}
	return get, mixed, nil
}

func runTCPPipe(col *bench.Collector) ([]*bench.Table, *tcpPipeResult, error) {
	res := &tcpPipeResult{}

	// Gated half: pipelined read verbs through the multiplexed transport.
	{
		var err error
		if res.VerbMops, err = tpVerbSweep(); err != nil {
			return nil, nil, err
		}
	}

	// TCP session half: three real shermand processes.
	{
		c, err := sherman.NewCluster(sherman.ClusterConfig{
			MemoryServers:  tpNumMS,
			ComputeServers: tpNumCS,
			Transport:      sherman.TransportTCP,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("tcppipe: %w", err)
		}
		defer c.Close()
		tree, err := c.CreateTree(sherman.TreeOptions{CacheLevels: -1})
		if err != nil {
			return nil, nil, err
		}
		if err := tpBulkload(tree); err != nil {
			return nil, nil, err
		}
		if res.TCPGetMops, res.TCPMixedMops, err = tpSweep(tree, true); err != nil {
			return nil, nil, err
		}
	}

	// Sim half at matched scale: same servers, workers, op counts and mix.
	{
		c, err := sherman.NewCluster(sherman.ClusterConfig{
			MemoryServers:  tpNumMS,
			ComputeServers: tpNumCS,
		})
		if err != nil {
			return nil, nil, err
		}
		tree, err := c.CreateTree(sherman.TreeOptions{CacheLevels: -1})
		if err != nil {
			return nil, nil, err
		}
		if err := tpBulkload(tree); err != nil {
			return nil, nil, err
		}
		if res.SimGetMops, res.SimMixedMops, err = tpSweep(tree, false); err != nil {
			return nil, nil, err
		}
	}

	vt := bench.NewTable(fmt.Sprintf("TCP pipelined read verbs: depth sweep over %d shermand processes (the -check gate)", tpNumMS),
		"depth", "read verbs Mops", "us/verb", "vs depth-1")
	for _, d := range tpDepths {
		vt.Addf(fmt.Sprintf("%d", d),
			fmt.Sprintf("%.3f", res.VerbMops[d]),
			fmt.Sprintf("%.1f", 1/res.VerbMops[d]),
			fmt.Sprintf("%.2fx", res.VerbMops[d]/res.VerbMops[1]))
		col.Add(bench.Metric{Exp: "tcppipe", Name: fmt.Sprintf("tcppipe/verb_read_d%d", d),
			Mops: res.VerbMops[d], KopsPerThread: res.VerbMops[d] * 1e3})
	}
	vt.Note("%d-byte reads through ReadAsync/Await with a window of depth in flight; best of %d reps", tpVerbSize, tpReps)
	if d1, d8 := res.VerbMops[1], res.VerbMops[8]; d1 > 0 {
		vt.Note("verb scaling depth-8/depth-1: %.2fx (gate: >= 3x)", d8/d1)
	}

	t := bench.NewTable(fmt.Sprintf("TCP sessions: depth sweep over %d shermand processes, %d workers, vs sim at matched scale", tpNumMS, tpWorkers),
		"depth", "tcp get Mops", "tcp mixed Mops", "sim get Mops", "sim mixed Mops", "tcp get kops/thread")
	for _, d := range tpDepths {
		t.Addf(fmt.Sprintf("%d", d),
			fmt.Sprintf("%.3f", res.TCPGetMops[d]),
			fmt.Sprintf("%.3f", res.TCPMixedMops[d]),
			fmt.Sprintf("%.3f", res.SimGetMops[d]),
			fmt.Sprintf("%.3f", res.SimMixedMops[d]),
			fmt.Sprintf("%.1f", res.TCPGetMops[d]*1e3/tpWorkers))
		col.Add(bench.Metric{Exp: "tcppipe", Name: fmt.Sprintf("tcppipe/tcp_get_d%d", d),
			Mops: res.TCPGetMops[d], KopsPerThread: res.TCPGetMops[d] * 1e3 / tpWorkers})
		col.Add(bench.Metric{Exp: "tcppipe", Name: fmt.Sprintf("tcppipe/tcp_mixed_d%d", d),
			Mops: res.TCPMixedMops[d], KopsPerThread: res.TCPMixedMops[d] * 1e3 / tpWorkers})
		col.Add(bench.Metric{Exp: "tcppipe", Name: fmt.Sprintf("tcppipe/sim_get_d%d", d),
			Mops: res.SimGetMops[d], KopsPerThread: res.SimGetMops[d] * 1e3 / tpWorkers})
		col.Add(bench.Metric{Exp: "tcppipe", Name: fmt.Sprintf("tcppipe/sim_mixed_d%d", d),
			Mops: res.SimMixedMops[d], KopsPerThread: res.SimMixedMops[d] * 1e3 / tpWorkers})
	}
	if d1, d8 := res.TCPGetMops[1], res.TCPGetMops[8]; d1 > 0 {
		t.Note("session get scaling depth-8/depth-1: %.2fx (reported, not gated: session CPU is host-dependent)", d8/d1)
	}
	t.Note("cache-cold gets (2 dependent round trips); tcp rows are wall-clock over real sockets, sim rows virtual-time at the same scale")
	t.Note("futures stream through the executor window: depth-N sessions hold N ops physically in flight per server")
	return []*bench.Table{vt, t}, res, nil
}

// tpBulkload seeds the tree with the preload working set.
func tpBulkload(tree *sherman.Tree) error {
	kvs := make([]sherman.KV, 0, tpPreload)
	for k := uint64(1); k <= tpPreload; k++ {
		kvs = append(kvs, sherman.KV{Key: k * 2, Value: k * 31})
	}
	return tree.Bulkload(kvs)
}

// tcpPipeGate is the CI check behind `shermanbench -exp tcppipe -check`:
// genuine in-flight concurrency must pay — depth-8 pipelined read verbs
// over real sockets must reach at least 3x the depth-1 throughput, or the
// multiplexed protocol is not actually amortizing anything. The ratio
// divides out host speed, so the gate holds on slow CI machines where the
// absolute numbers would be meaningless. The gate also requires the
// matched-scale session comparison rows to exist: BENCH_9.json without the
// sim-vs-TCP rows would be gating a transport nobody measured end to end.
func tcpPipeGate(r *tcpPipeResult) error {
	if r == nil {
		return fmt.Errorf("tcppipe gate: experiment did not run")
	}
	d1, d8 := r.VerbMops[1], r.VerbMops[8]
	if d1 <= 0 || d8 <= 0 {
		return fmt.Errorf("tcppipe gate: missing verb depth rows (d1=%.3f d8=%.3f)", d1, d8)
	}
	if d8 < 3*d1 {
		return fmt.Errorf("tcppipe gate: depth-8 read verbs %.3f Mops is only %.2fx depth-1 (%.3f Mops), want >= 3x",
			d8, d8/d1, d1)
	}
	for _, d := range tpDepths {
		if r.TCPGetMops[d] <= 0 || r.SimGetMops[d] <= 0 {
			return fmt.Errorf("tcppipe gate: missing matched-scale comparison row for depth %d", d)
		}
	}
	return nil
}
