package core

import (
	"sherman/internal/alloc"
	"sherman/internal/hocl"
	"sherman/internal/rdma"
	"sherman/internal/transport"
)

// Backend is everything a Tree needs from the deployment hosting it, beyond
// the per-thread verb surface (transport.Transport) itself: thread and
// allocator construction, setup-time raw memory access, the compute-side
// shared state of migration and replication, and lock-manager wiring.
//
// Two implementations exist: *cluster.Cluster (the simulated deployment —
// the default) and the TCP cluster of internal/transport/tcp (real memory-
// server processes). Core code never type-switches on the backend; the few
// sim-only features (fault injection, migration orchestration) live behind
// Tree.Cluster(), which reports nil on a real network.
type Backend interface {
	// NewTransport creates one client thread's verb surface, bound to
	// compute server cs.
	NewTransport(cs int) transport.Transport
	// NewThreadAllocator pairs a client thread with its stage-two chunk
	// allocator (§4.2.4), wired for replica placement when replicating.
	NewThreadAllocator(c transport.Transport, seed int) *alloc.ThreadAllocator
	// NewBulk builds a setup-time bulk allocator.
	NewBulk() *alloc.Bulk
	// NewLockManager builds the HOCL lock manager over this deployment.
	NewLockManager(cfg hocl.Config) *hocl.Manager
	// NumCS is the compute-server count.
	NumCS() int

	// SetRoot stores the superblock root pointer and level without timing;
	// bulk load uses it before client threads start.
	SetRoot(root rdma.Addr, level uint8)
	// RawWrite stores data at a without timing, mirrored to a's chunk
	// replicas when replicating — setup-time writes (bulk load, compaction,
	// free bits) must be failover-covered like any client write.
	RawWrite(a rdma.Addr, data []byte)
	// RawRead loads len(buf) bytes at a without timing, chasing the
	// forwarding map when a's server is dead.
	RawRead(a rdma.Addr, buf []byte)

	// Forwarding is the chunk forwarding map shared by migration and
	// failover promotion.
	Forwarding() *alloc.Forwarding
	// Replicas is the chunk→replicas placement table; nil when replication
	// is off.
	Replicas() *alloc.ReplicaMap
	// ReplicationFactor is the configured copies per chunk (0/1 = off).
	ReplicationFactor() int
	// OnChunkInvalidate registers a hook run for every chunk failed over to
	// a replica, so trees can purge cached pointers into dead memory.
	OnChunkInvalidate(fn func(alloc.ChunkID))
	// MSAlive reports whether memory server ms is reachable.
	MSAlive(ms int) bool
	// NumMS is the current memory-server count.
	NumMS() int
	// MSUsable reports whether ms should receive new placements (alive and
	// not draining).
	MSUsable(ms int) bool

	// MigrationLock and MigrationUnlock bound the cluster-wide critical
	// section shared by migration and re-replication engines: two sweeps
	// must never relocate or repair the same chunk concurrently.
	MigrationLock()
	MigrationUnlock()
}
