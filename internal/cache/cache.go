package cache

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"sherman/internal/layout"
	"sherman/internal/rdma"
)

// Entry is one cached level-1 internal node: a client-local copy of the
// node's buffer plus bookkeeping for eviction.
type Entry struct {
	// Addr is the node's disaggregated-memory address; validation failures
	// on nodes fetched through this entry invalidate it.
	Addr rdma.Addr
	// N is the decoded copy. It is immutable after insertion — updates
	// replace the whole entry.
	N layout.Internal

	key     uint64 // lower fence, the skiplist key
	lastUse atomic.Int64
	dead    atomic.Bool
	node    *slNode
	poolIdx int // index in the sampling pool, guarded by IndexCache.poolMu
}

// IndexCache is one compute server's type-1 cache (§4.2.3): level-1 nodes in
// a lock-free-search skiplist, evicted by power-of-two-choices on a logical
// LRU clock. All client threads of the CS share it.
type IndexCache struct {
	sl    *skiplist
	limit int

	tick atomic.Int64

	poolMu sync.Mutex
	pool   []*Entry
	rnd    rand.Source // guarded by poolMu

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	invalids  atomic.Int64
}

// New creates a cache bounded to maxBytes of cached node copies with the
// given node size (the paper gives each CS a 500 MB index cache by default
// and sweeps 100–500 MB in Figure 15(c)).
func New(maxBytes int64, nodeSize int) *IndexCache {
	limit := int(maxBytes / int64(nodeSize))
	if limit < 1 {
		limit = 1
	}
	return &IndexCache{sl: newSkiplist(), limit: limit, rnd: rand.NewPCG(0x5eed, 0xfeed)}
}

// Len returns the number of live cached entries.
func (c *IndexCache) Len() int { return int(c.sl.size.Load()) }

// Limit returns the entry capacity.
func (c *IndexCache) Limit() int { return c.limit }

// Hits and Misses expose aggregate counters (Figure 15(c)'s hit ratio).
func (c *IndexCache) Hits() int64 { return c.hits.Load() }

// Misses returns the aggregate miss count.
func (c *IndexCache) Misses() int64 { return c.misses.Load() }

// Evictions returns the number of evicted entries.
func (c *IndexCache) Evictions() int64 { return c.evictions.Load() }

// Lookup returns the cached level-1 entry whose fence interval contains key,
// or nil on miss. The caller resolves the leaf via e.N.ChildFor(key) and
// must Invalidate(e) if the fetched leaf fails validation.
func (c *IndexCache) Lookup(key uint64) *Entry {
	e := c.sl.floor(key)
	if e != nil && e.N.Covers(key) {
		e.lastUse.Store(c.tick.Add(1))
		c.hits.Add(1)
		return e
	}
	c.misses.Add(1)
	return nil
}

// Insert caches a level-1 node copy fetched during traversal. The buffer is
// owned by the cache afterwards.
func (c *IndexCache) Insert(addr rdma.Addr, n layout.Internal) {
	e := &Entry{Addr: addr, N: n, key: n.LowerFence()}
	e.lastUse.Store(c.tick.Add(1))
	if old := c.sl.insert(e); old != nil {
		c.unpool(old)
	}
	c.poolMu.Lock()
	e.poolIdx = len(c.pool)
	c.pool = append(c.pool, e)
	c.poolMu.Unlock()
	for c.Len() > c.limit {
		c.evictOne()
	}
}

// Invalidate drops an entry that steered a client to a wrong or freed node.
func (c *IndexCache) Invalidate(e *Entry) {
	if e == nil || e.dead.Load() {
		return
	}
	c.invalids.Add(1)
	c.sl.remove(e)
	c.unpool(e)
}

// InvalidateMatching drops every entry the predicate selects and returns
// how many were dropped. The migration engine uses it to purge entries that
// live in (or steer into) a migrated chunk, so readers stop resolving
// leaves through addresses that are about to die.
func (c *IndexCache) InvalidateMatching(pred func(*Entry) bool) int {
	c.poolMu.Lock()
	victims := make([]*Entry, 0, 8)
	for _, e := range c.pool {
		if pred(e) {
			victims = append(victims, e)
		}
	}
	c.poolMu.Unlock()
	for _, e := range victims {
		c.Invalidate(e)
	}
	return len(victims)
}

// evictOne applies power-of-two-choices [48]: sample two entries uniformly
// and evict the one least recently used (§4.2.3).
func (c *IndexCache) evictOne() {
	c.poolMu.Lock()
	n := len(c.pool)
	if n == 0 {
		c.poolMu.Unlock()
		return
	}
	a := c.pool[int(c.rnd.Uint64()%uint64(n))]
	b := c.pool[int(c.rnd.Uint64()%uint64(n))]
	if b == a && n > 1 {
		// Degenerate sample: choosing the same entry twice would evict it
		// regardless of recency; resample the second choice.
		b = c.pool[int(c.rnd.Uint64()%uint64(n-1))]
		if b == a {
			b = c.pool[n-1]
		}
	}
	victim := a
	if b.lastUse.Load() < a.lastUse.Load() {
		victim = b
	}
	c.removePoolLocked(victim)
	c.poolMu.Unlock()
	c.sl.remove(victim)
	c.evictions.Add(1)
}

// unpool removes e from the sampling pool.
func (c *IndexCache) unpool(e *Entry) {
	c.poolMu.Lock()
	c.removePoolLocked(e)
	c.poolMu.Unlock()
}

func (c *IndexCache) removePoolLocked(e *Entry) {
	i := e.poolIdx
	if i < 0 || i >= len(c.pool) || c.pool[i] != e {
		return
	}
	last := len(c.pool) - 1
	c.pool[i] = c.pool[last]
	c.pool[i].poolIdx = i
	c.pool = c.pool[:last]
	e.poolIdx = -1
}

// TopCache is the type-2 cache: the root and the level just below it,
// "always cached" (§4.2.3) — never evicted, refreshed when validation fails.
// It also remembers the current root address and level.
type TopCache struct {
	mu    sync.RWMutex
	root  rdma.Addr
	level uint8
	nodes map[rdma.Addr]layout.Internal
}

// NewTop creates an empty top-level cache.
func NewTop() *TopCache { return &TopCache{nodes: make(map[rdma.Addr]layout.Internal)} }

// Root returns the cached root address and level (NilAddr when unknown).
func (t *TopCache) Root() (rdma.Addr, uint8) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.root, t.level
}

// SetRoot records a (re)fetched root.
func (t *TopCache) SetRoot(a rdma.Addr, level uint8) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if a != t.root {
		// New root: the old top nodes belong to a stale top structure.
		t.nodes = make(map[rdma.Addr]layout.Internal)
	}
	t.root, t.level = a, level
}

// Get returns the cached copy of a top node.
func (t *TopCache) Get(a rdma.Addr) (layout.Internal, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, ok := t.nodes[a]
	return n, ok
}

// Put caches a top node copy if it belongs to the top two levels.
func (t *TopCache) Put(a rdma.Addr, n layout.Internal) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.level > 0 && n.Level() >= t.level-1 {
		t.nodes[a] = n
	}
}

// Drop removes a stale top node copy.
func (t *TopCache) Drop(a rdma.Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.nodes, a)
}

// Flush discards every cached top-node copy but keeps the root pointer.
// Clients call it when excessive B-link sibling walking signals that a
// cached copy predates a split: the copy still passes fence/level
// validation (its fences were correct when taken) yet steers traversals
// one or more nodes left of their target.
func (t *TopCache) Flush() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes = make(map[rdma.Addr]layout.Internal)
}
