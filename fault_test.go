package sherman

import (
	"errors"
	"testing"

	"sherman/internal/testutil"
)

func faultTree(t *testing.T) (*Cluster, *Tree) {
	t.Helper()
	c := testCluster(t)
	tr := testTree(t, c, DefaultTreeOptions())
	kvs := make([]KV, 500)
	for i := range kvs {
		kvs[i] = KV{Key: uint64(i + 1), Value: uint64(i) + 100}
	}
	if err := tr.Bulkload(kvs); err != nil {
		t.Fatal(err)
	}
	return c, tr
}

func TestKilledSessionReportsErrSessionDead(t *testing.T) {
	c, tr := faultTree(t)
	s, err := tr.SessionAt(1, PipelineDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	s.Put(7, 77)
	if err := c.KillComputeServer(1); err != nil {
		t.Fatal(err)
	}
	if c.ComputeServerAlive(1) {
		t.Fatal("killed CS reports alive")
	}
	if !s.Dead() {
		t.Fatal("session on killed CS reports alive")
	}
	if r := s.Submit(GetOp(7)).Wait(); !errors.Is(r.Err, ErrSessionDead) {
		t.Fatalf("Submit on dead session: err = %v, want ErrSessionDead", r.Err)
	}
	// Locally-rejected ops keep their known error; fabric-bound ops get
	// ErrSessionDead.
	res := s.Exec([]Op{PutOp(0, 1), GetOp(7)})
	if !errors.Is(res[0].Err, ErrReservedKey) {
		t.Fatalf("Exec reserved-key slot: err = %v, want ErrReservedKey", res[0].Err)
	}
	if !errors.Is(res[1].Err, ErrSessionDead) {
		t.Fatalf("Exec on dead session: err = %v, want ErrSessionDead", res[1].Err)
	}
	if err := s.Flush(); !errors.Is(err, ErrSessionDead) {
		t.Fatalf("Flush on dead session: err = %v, want ErrSessionDead", err)
	}
	func() {
		defer func() {
			if r := recover(); !errors.Is(r.(error), ErrSessionDead) {
				t.Fatalf("legacy Get on dead session panicked with %v, want ErrSessionDead", r)
			}
		}()
		s.Get(7)
	}()

	// Survivors keep serving; the cluster recovers; restart revives the
	// server for new sessions (the old one stays dead).
	surv, err := tr.SessionAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := surv.Get(7); !ok || v != 77 {
		t.Fatalf("acked write lost after crash: (%d,%v)", v, ok)
	}
	if _, err := tr.Recover(0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartComputeServer(1); err != nil {
		t.Fatal(err)
	}
	if !s.Dead() {
		t.Fatal("pre-crash session revived by restart")
	}
	fresh, err := tr.SessionAt(1)
	if err != nil {
		t.Fatal(err)
	}
	fresh.Put(9, 99)
	if v, ok := fresh.Get(9); !ok || v != 99 {
		t.Fatalf("restarted CS session broken: (%d,%v)", v, ok)
	}
}

// TestMidFlightCrashResolvesFutures kills the compute server at a
// seed-varied verb index so operations die at different points of their
// pipelines; every in-flight future must resolve to ErrSessionDead and
// every killed put must be all-or-nothing.
func TestMidFlightCrashResolvesFutures(t *testing.T) {
	testutil.RunSeeds(t, 4, func(t *testing.T, seed uint64) {
		c, tr := faultTree(t)
		s, err := tr.SessionAt(1, PipelineDepth(4))
		if err != nil {
			t.Fatal(err)
		}
		// Kill at a seed-dependent verb index so an operation dies in
		// flight at a different verb each seed.
		if err := c.ScheduleCrash(1, int64(seed)*3+2); err != nil {
			t.Fatal(err)
		}
		if err := c.ScheduleCrash(1, 0); err == nil {
			t.Fatal("ScheduleCrash accepted n=0")
		}
		var last *Future
		for i := 0; i < 10; i++ {
			last = s.Submit(PutOp(uint64(600+i), 1))
		}
		if r := last.Wait(); !errors.Is(r.Err, ErrSessionDead) {
			t.Fatalf("in-flight op resolved to %+v, want ErrSessionDead", r)
		}
		if err := s.Flush(); !errors.Is(err, ErrSessionDead) {
			t.Fatalf("Flush after mid-flight crash: %v, want ErrSessionDead", err)
		}
		// Each killed put was all-or-nothing: present implies the full value.
		surv, err := tr.SessionAt(0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if v, ok := surv.Get(uint64(600 + i)); ok && v != 1 {
				t.Fatalf("torn write: key %d = %d", 600+i, v)
			}
		}
		if _, err := tr.Recover(0); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRecoverValidation(t *testing.T) {
	c, tr := faultTree(t)
	if _, err := tr.Recover(-1); !errors.Is(err, ErrBadComputeServer) {
		t.Fatalf("Recover(-1): %v, want ErrBadComputeServer", err)
	}
	if err := c.KillComputeServer(1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Recover(1); !errors.Is(err, ErrSessionDead) {
		t.Fatalf("Recover on dead CS: %v, want ErrSessionDead", err)
	}
	rs, err := tr.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if rs.VirtualNS <= 0 {
		t.Fatalf("recovery sweep took %d virtual ns, want > 0", rs.VirtualNS)
	}
	if err := c.KillComputeServer(99); !errors.Is(err, ErrBadComputeServer) {
		t.Fatalf("KillComputeServer(99): %v, want ErrBadComputeServer", err)
	}
}
