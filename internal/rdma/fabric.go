package rdma

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sherman/internal/sim"
)

// DefaultServerHeadroom is how many memory servers beyond the initial count
// a fabric can grow by default (AddServer). Lock managers and other
// per-server tables size themselves for MaxServers up front — capacity is
// cheap but not free, so the default is modest; declare more via
// NewFabricCap (cluster.Config.MaxMS) when planning a larger scale-out.
const DefaultServerHeadroom = 4

// Fabric wires a set of memory servers and compute servers together over a
// simulated RDMA network with the timing model in sim.Params.
//
// The memory-server set is elastic: AddServer attaches a new server while
// client threads run (scale-out), and Server.SetDraining marks one as
// leaving (scale-in). The server list is published through an atomic
// snapshot so concurrent verbs never observe a half-grown fabric.
type Fabric struct {
	P   sim.Params
	CSs []*ComputeServer

	// Faults is the fabric's deterministic fault injector. Every verb of
	// every client consults it; a dead compute server's clients abort with
	// sim.Crash at their next verb.
	Faults *sim.Faults

	serverMu   sync.Mutex                // guards growth
	servers    atomic.Pointer[[]*Server] // published snapshot
	maxServers int
	onAdd      []func(*Server) // growth hooks (lock managers), under serverMu

	clients atomic.Int64
}

// ClientCount returns the number of client threads created on the fabric —
// the physical bound on how many commands can be in flight from distinct
// spinners at once.
func (f *Fabric) ClientCount() int { return int(f.clients.Load()) }

// ComputeServer is one compute node: many client threads, a local cache and
// lock tables (owned by higher layers), and an RDMA NIC whose outbound
// pipeline is shared by all of its threads.
type ComputeServer struct {
	// ID identifies the compute server; it is also the value written into
	// global locks by RDMA_CAS (§4.3), offset by one so that 0 can mean
	// "unlocked".
	ID uint16

	// Outbound models the NIC's outbound command-processing pipeline.
	Outbound sim.Resource
}

// NewFabric builds a fabric with numMS memory servers and numCS compute
// servers, with room to grow by DefaultServerHeadroom more memory servers.
// Params are validated once here.
func NewFabric(p sim.Params, numMS, numCS int) *Fabric {
	return NewFabricCap(p, numMS, numMS+DefaultServerHeadroom, numCS)
}

// NewFabricCap is NewFabric with an explicit memory-server capacity:
// AddServer may grow the fabric up to maxMS servers.
func NewFabricCap(p sim.Params, numMS, maxMS, numCS int) *Fabric {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if numMS <= 0 || numCS <= 0 {
		panic(fmt.Sprintf("rdma: need at least one MS and one CS (got %d, %d)", numMS, numCS))
	}
	if maxMS < numMS {
		maxMS = numMS
	}
	if maxMS > 1<<15 {
		panic(fmt.Sprintf("rdma: max server count %d exceeds the 15-bit id space", maxMS))
	}
	f := &Fabric{P: p, Faults: sim.NewFaults(numCS), maxServers: maxMS}
	// First MS-death listener: gate the dead server's memory before any
	// later listener (replica promotion) or the triggering verb can run, so
	// no write lands on a server already declared dead.
	f.Faults.OnMSDeath(func(ms int, _ int64) {
		servers := *f.servers.Load()
		if ms >= 0 && ms < len(servers) {
			servers[ms].SetDead(true)
		}
	})
	servers := make([]*Server, 0, maxMS)
	for i := 0; i < numMS; i++ {
		servers = append(servers, newServer(uint16(i), p))
	}
	f.servers.Store(&servers)
	for i := 0; i < numCS; i++ {
		f.CSs = append(f.CSs, &ComputeServer{ID: uint16(i)})
	}
	return f
}

// Servers returns the current memory-server snapshot. The slice is
// append-only and never mutated in place, so callers may index and iterate
// it freely; it just may miss servers added after the call.
func (f *Fabric) Servers() []*Server { return *f.servers.Load() }

// NumServers returns the current memory-server count.
func (f *Fabric) NumServers() int { return len(*f.servers.Load()) }

// MaxServers returns the fabric's memory-server capacity — the bound
// per-server tables (lock managers) are sized for.
func (f *Fabric) MaxServers() int { return f.maxServers }

// OnAddServer registers a hook run (under the growth lock) for every server
// added after registration — lock managers use it to wire their tables
// before clients can address the newcomer.
func (f *Fabric) OnAddServer(fn func(*Server)) {
	f.serverMu.Lock()
	defer f.serverMu.Unlock()
	f.onAdd = append(f.onAdd, fn)
}

// AddServer attaches one new memory server to the running fabric and
// returns it. Registered growth hooks run before the server is published,
// so by the time any client can address it the lock tables (and any other
// per-server state) already cover it.
func (f *Fabric) AddServer() (*Server, error) {
	f.serverMu.Lock()
	defer f.serverMu.Unlock()
	old := *f.servers.Load()
	if len(old) >= f.maxServers {
		return nil, fmt.Errorf("rdma: fabric at capacity (%d memory servers); size MaxMS higher at cluster creation", f.maxServers)
	}
	s := newServer(uint16(len(old)), f.P)
	for _, fn := range f.onAdd {
		fn(s)
	}
	grown := make([]*Server, len(old), f.maxServers)
	copy(grown, old)
	grown = append(grown, s)
	f.servers.Store(&grown)
	return s, nil
}

// Server returns the memory server addressed by a.
func (f *Fabric) Server(a Addr) *Server {
	servers := *f.servers.Load()
	ms := a.MS()
	if int(ms) >= len(servers) {
		panic(fmt.Sprintf("rdma: address %v names unknown memory server", a))
	}
	return servers[ms]
}

// ResetTime rewinds every resource clock in the fabric to zero. Call only
// between experiments, with no client threads running.
func (f *Fabric) ResetTime() {
	for _, s := range f.Servers() {
		s.ResetTime()
	}
	for _, cs := range f.CSs {
		cs.Outbound.Reset()
	}
}
