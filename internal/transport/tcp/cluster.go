package tcp

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"sherman/internal/alloc"
	"sherman/internal/hocl"
	"sherman/internal/transport"
)

// Cluster is the client-side view of a set of shermand processes: the
// core.Backend of the TCP transport. It mirrors internal/cluster.Cluster's
// role for the simulator — transport factory, allocator wiring, lock
// manager construction, raw superblock access — against real sockets.
//
// Replication is not wired over TCP (Replicas returns nil, rf is 1): the
// mirror engine leans on virtual-time watermarks to bound ack lag, and a
// real deployment would use a real consensus/backup path instead. The
// forwarding map exists but stays empty until a live-migration driver runs.
type Cluster struct {
	endpoints []string
	numCS     int
	onChip    int

	// AllocStats aggregates allocator activity across all client threads.
	AllocStats alloc.Stats

	// Fwd is the chunk forwarding map (see internal/cluster); empty unless
	// a migration driver installs entries.
	Fwd *alloc.Forwarding

	// dead[ms] flips once when ms becomes unreachable; every Transport of
	// this cluster shares the view, so one thread's I/O error makes the
	// death visible to all (the fabric-manager gossip of §2 collapsed to a
	// process-local flag).
	dead []atomic.Bool

	// raw is the metadata client behind RawRead/RawWrite/SetRoot — unlike
	// per-thread Transports it is shared, hence the mutex.
	rawMu sync.Mutex
	raw   *Transport
}

// NewCluster dials the given shermand endpoints and prepares the cluster:
// every server is pinged (verifying protocol agreement and on-chip
// capacity) and memory server 0's first chunk is reserved for the
// superblock, exactly like the simulated cluster's setup.
func NewCluster(endpoints []string, numCS int) (*Cluster, error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("tcp: need at least one memory server endpoint")
	}
	if numCS <= 0 {
		return nil, fmt.Errorf("tcp: need at least one compute server")
	}
	c := &Cluster{
		endpoints: endpoints,
		numCS:     numCS,
		Fwd:       alloc.NewForwarding(),
		dead:      make([]atomic.Bool, len(endpoints)),
	}
	c.raw = c.newTransport(0)
	for ms := range endpoints {
		mc, ok := c.raw.conn(uint16(ms))
		if !ok {
			return nil, fmt.Errorf("tcp: memory server %d (%s) unreachable", ms, endpoints[ms])
		}
		resp, err := mc.request(opPing, nil)
		if err != nil {
			return nil, fmt.Errorf("tcp: ping to %s failed: %w", endpoints[ms], err)
		}
		p := payloadReader{b: resp}
		onChip := int(p.u32())
		if p.err != nil {
			return nil, fmt.Errorf("tcp: bad ping response from %s: %v", endpoints[ms], p.err)
		}
		if c.onChip == 0 || onChip < c.onChip {
			c.onChip = onChip
		}
	}
	// Reserve the superblock chunk: offset 0 of memory server 0 must be
	// grown before anything reads or CASes the root pointer, and must never
	// be handed to the allocator (growing it here guarantees both).
	if base := c.raw.GrowChunk(0); base != 0 {
		return nil, fmt.Errorf("tcp: memory server 0 is not fresh (superblock chunk at %#x)", base)
	}
	return c, nil
}

// Close drops the metadata client's connections. Per-thread Transports are
// closed by their owners; the server processes are owned by the launcher.
func (c *Cluster) Close() { c.raw.Close() }

// Shutdown asks every live memory server to exit (the orderly counterpart
// of killing the processes).
func (c *Cluster) Shutdown() {
	c.rawMu.Lock()
	defer c.rawMu.Unlock()
	for ms := range c.endpoints {
		c.raw.request(uint16(ms), opShutdown, nil)
	}
	c.raw.Close()
}

func (c *Cluster) isDead(ms int) bool { return c.dead[ms].Load() }
func (c *Cluster) markDead(ms int)    { c.dead[ms].Store(true) }

func (c *Cluster) newTransport(cs int) *Transport {
	return &Transport{cl: c, cs: uint16(cs), conns: make([]*msConn, len(c.endpoints))}
}

// --- core.Backend ----------------------------------------------------------

// NewTransport creates a client thread's transport bound to compute server
// cs. On TCP a "compute server" is a thread-group identity, not a process
// boundary — CSID still partitions the local lock tables.
func (c *Cluster) NewTransport(cs int) transport.Transport { return c.newTransport(cs) }

// NewThreadAllocator pairs a client thread with its stage-two allocator.
func (c *Cluster) NewThreadAllocator(cl transport.Transport, seed int) *alloc.ThreadAllocator {
	return alloc.NewThreadAllocator(cl, &c.AllocStats, seed)
}

// NewBulk builds a setup-time bulk allocator over the raw growth path.
func (c *Cluster) NewBulk() *alloc.Bulk {
	return alloc.NewBulk(c, &c.AllocStats)
}

// NewLockManager builds the remote lock manager: no fabric, no virtual-time
// arbitration — the physical lock word on the servers is the whole truth.
func (c *Cluster) NewLockManager(cfg hocl.Config) *hocl.Manager {
	return hocl.NewRemoteManager(cfg, len(c.endpoints), c.numCS, c.onChip, c.GrowChunkRaw)
}

// NumCS returns the compute-server (thread-group) count.
func (c *Cluster) NumCS() int { return c.numCS }

// SetRoot stores the root pointer and level without timing; used by bulk
// load before client threads start.
func (c *Cluster) SetRoot(root transport.Addr, level uint8) {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(root))
	binary.LittleEndian.PutUint64(buf[8:], uint64(level))
	c.RawWrite(transport.MakeAddr(0, 0), buf[:])
}

// RawWrite stores data at a without timing (no replication over TCP).
func (c *Cluster) RawWrite(a transport.Addr, data []byte) {
	c.rawMu.Lock()
	defer c.rawMu.Unlock()
	c.raw.Write(a, data)
}

// RawRead loads len(buf) bytes at a without timing, chasing the forwarding
// map when a's server is dead (the map is empty unless a migration driver
// populated it, so this normally reads a directly).
func (c *Cluster) RawRead(a transport.Addr, buf []byte) {
	c.rawMu.Lock()
	defer c.rawMu.Unlock()
	for hop := 0; hop < alloc.MaxReplicationFactor; hop++ {
		if !c.isDead(int(a.MS())) {
			break
		}
		fwd, ok := c.Fwd.Resolve(a)
		if !ok {
			break
		}
		a = fwd
	}
	c.raw.Read(a, buf)
}

// Forwarding is the chunk forwarding map.
func (c *Cluster) Forwarding() *alloc.Forwarding { return c.Fwd }

// Replicas returns nil: chunk replication is not wired over TCP.
func (c *Cluster) Replicas() *alloc.ReplicaMap { return nil }

// OnChunkInvalidate registers a chunk re-key listener. No failover
// promotion runs over TCP, so the callback is never invoked; accepting it
// keeps the Backend contract uniform.
func (c *Cluster) OnChunkInvalidate(fn func(alloc.ChunkID)) {}

// MSAlive reports whether memory server ms is reachable.
func (c *Cluster) MSAlive(ms int) bool { return !c.isDead(ms) }

// --- transport.Grower ------------------------------------------------------

// NumMS returns the memory-server count.
func (c *Cluster) NumMS() int { return len(c.endpoints) }

// MSUsable reports whether ms should receive new allocations.
func (c *Cluster) MSUsable(ms int) bool { return !c.isDead(ms) }

// GrowChunkRaw grows one chunk on ms with no timing accounting.
func (c *Cluster) GrowChunkRaw(ms uint16) uint64 {
	c.rawMu.Lock()
	defer c.rawMu.Unlock()
	return c.raw.GrowChunk(ms)
}

var _ transport.Grower = (*Cluster)(nil)
