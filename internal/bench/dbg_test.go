package bench

import (
	"fmt"
	"testing"
	"time"

	"sherman/internal/core"
	"sherman/internal/workload"
)

func TestDebugTable1(t *testing.T) {
	s := QuickScale()
	cells := []struct {
		name string
		mix  workload.Mix
		dist workload.Dist
	}{
		{"ri-uni", workload.ReadIntensive, workload.Uniform},
		{"ri-skew", workload.ReadIntensive, workload.Zipfian},
		{"wi-uni", workload.WriteIntensive, workload.Uniform},
		{"wi-skew", workload.WriteIntensive, workload.Zipfian},
	}
	for _, c := range cells {
		t0 := time.Now()
		r := RunTree(s.treeExp("FG+", c.mix, c.dist, core.FGPlusConfig()))
		fmt.Printf("%-8s Mops=%.2f p50=%d p90=%d p99=%d rtp99=%d wall=%v\n", c.name, r.Mops, r.P50, r.P90, r.P99,
			r.Rec.WriteRoundTrips.PercentileValue(99), time.Since(t0))
	}
}
