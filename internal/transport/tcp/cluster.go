package tcp

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sherman/internal/alloc"
	"sherman/internal/hocl"
	"sherman/internal/stats"
	"sherman/internal/transport"
)

// Options configures a TCP cluster beyond its endpoint list.
type Options struct {
	// ReplicationFactor is the number of copies each data chunk keeps,
	// including the primary (0/1 = off). At 2+ allocators place factor-1
	// mirror chunks on distinct other servers, client writes are mirrored
	// as coalesced WriteBatch frames, and a memory-server death promotes
	// each of its chunks to the freshest replica before the detecting verb
	// returns.
	ReplicationFactor int
	// HeartbeatInterval is the membership service's ping cadence; 0 means
	// the 50ms default, negative disables heartbeats (deaths are then
	// detected only by I/O errors on client verbs).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the per-ping deadline after which an unresponsive
	// server is declared dead; 0 means the 200ms default (one lease).
	HeartbeatTimeout time.Duration
	// Window is the per-server outstanding-request window of the
	// multiplexed connections (0 = the 64 default). Issues beyond it block
	// until responses drain — the cluster-wide backpressure bound.
	Window int
}

// Cluster is the client-side view of a set of shermand processes: the
// core.Backend of the TCP transport. It mirrors internal/cluster.Cluster's
// role for the simulator — transport factory, allocator wiring, lock
// manager construction, raw superblock access — against real sockets.
//
// Fault tolerance is real here: a membership service heartbeats every
// server on a wall-clock interval, I/O errors on any client verb feed the
// same death path, and under replication each death synchronously promotes
// the dead server's chunks to their freshest replicas (DESIGN.md §13).
// Elasticity and live migration remain sim-only.
type Cluster struct {
	endpoints []string
	numCS     int
	onChip    int
	rf        int // copies per chunk incl. primary (0/1 = off)

	// AllocStats aggregates allocator activity across all client threads.
	AllocStats alloc.Stats

	// Fwd is the chunk forwarding map (see internal/cluster): failover
	// promotions install permanent entries here.
	Fwd *alloc.Forwarding

	// Rep is the chunk→replicas placement table (nil when replication is
	// off), the same compute-side structure the simulator uses.
	Rep *alloc.ReplicaMap

	// clockOff shifts this process's monotonic clock onto the cluster
	// timeline anchored at memory server 0's Ping epoch (see Transport.Now).
	clockOff atomic.Int64

	// dead[ms] flips once when ms becomes unreachable; every Transport of
	// this cluster shares the view, so one thread's I/O error makes the
	// death visible to all (the fabric-manager gossip of §2 collapsed to a
	// process-local flag). deadOnce serializes the failover promotion that
	// must complete before the death is published.
	dead     []atomic.Bool
	deadOnce []sync.Once

	// muxes holds the one multiplexed connection per memory server, dialed
	// at bring-up (so the first measured op never pays a TCP handshake) and
	// shared by every client thread. Failover closes a server's mux, which
	// forces round trips blocked on a stalled (not closed) server to error
	// out.
	muxes []*muxConn

	invMu        sync.Mutex
	invalidators []func(alloc.ChunkID)

	failovers atomic.Int64

	// migMu serializes re-replication engines cluster-wide, mirroring the
	// simulator's migration critical section.
	migMu sync.Mutex

	hb *membership

	// raw is the metadata client behind RawRead/RawWrite/SetRoot — unlike
	// per-thread Transports it is shared, hence the mutex.
	rawMu sync.Mutex
	raw   *Transport
}

// NewCluster dials the given shermand endpoints and prepares the cluster:
// every server is pinged (verifying protocol agreement, on-chip capacity,
// and anchoring the cluster clock to server 0's epoch), memory server 0's
// first chunk is reserved for the superblock, and the membership service
// starts heartbeating — exactly the simulated cluster's setup plus the
// pieces a real network needs.
func NewCluster(endpoints []string, numCS int, opt Options) (*Cluster, error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("tcp: need at least one memory server endpoint")
	}
	if numCS <= 0 {
		return nil, fmt.Errorf("tcp: need at least one compute server")
	}
	rf := opt.ReplicationFactor
	if rf < 0 || rf > alloc.MaxReplicationFactor {
		return nil, fmt.Errorf("tcp: replication factor %d not in [0,%d]", rf, alloc.MaxReplicationFactor)
	}
	if rf > len(endpoints) {
		return nil, fmt.Errorf("tcp: replication factor %d exceeds %d memory servers", rf, len(endpoints))
	}
	c := &Cluster{
		endpoints: endpoints,
		numCS:     numCS,
		rf:        rf,
		Fwd:       alloc.NewForwarding(),
		dead:      make([]atomic.Bool, len(endpoints)),
		deadOnce:  make([]sync.Once, len(endpoints)),
		muxes:     make([]*muxConn, len(endpoints)),
	}
	if rf > 1 {
		c.Rep = alloc.NewReplicaMap()
	}
	// Pre-dial every server's multiplexed connection now, so the first
	// measured verb against each server pays no TCP handshake — bring-up
	// absorbs the dial latency, not the benchmark's first op.
	for ms := range endpoints {
		mx, err := dialMux(ms, endpoints[ms], opt.Window)
		if err != nil {
			for _, m := range c.muxes[:ms] {
				m.fail()
			}
			return nil, fmt.Errorf("tcp: memory server %d (%s) unreachable: %w", ms, endpoints[ms], err)
		}
		c.muxes[ms] = mx
	}
	c.raw = c.newTransport(0)
	for ms := range endpoints {
		var version, onChip uint32
		var serverNow uint64
		var perr error
		ok := c.muxes[ms].roundTrip(opPing, nil, func(resp []byte) {
			p := payloadReader{b: resp}
			version, onChip, serverNow = p.u32(), p.u32(), p.u64()
			perr = p.err
		})
		if !ok {
			return nil, fmt.Errorf("tcp: ping to %s failed", endpoints[ms])
		}
		if perr != nil {
			return nil, fmt.Errorf("tcp: bad ping response from %s: %v", endpoints[ms], perr)
		}
		if version != protocolVersion {
			return nil, fmt.Errorf("tcp: memory server %s speaks protocol v%d, want v%d",
				endpoints[ms], version, protocolVersion)
		}
		if ms == 0 {
			// Anchor the cluster clock: server 0's monotonic epoch becomes
			// the shared lease-time origin of every client process.
			c.clockOff.Store(int64(serverNow) - nowNS())
		}
		if c.onChip == 0 || int(onChip) < c.onChip {
			c.onChip = int(onChip)
		}
	}
	// Reserve the superblock chunk: offset 0 of memory server 0 must be
	// grown before anything reads or CASes the root pointer, and must never
	// be handed to the allocator (growing it here guarantees both).
	if base := c.raw.GrowChunk(0); base != 0 {
		return nil, fmt.Errorf("tcp: memory server 0 is not fresh (superblock chunk at %#x)", base)
	}
	if opt.HeartbeatInterval >= 0 {
		c.hb = startMembership(c, opt.HeartbeatInterval, opt.HeartbeatTimeout)
	}
	return c, nil
}

// Close stops the membership service and tears down the multiplexed
// connections. The server processes are owned by the launcher.
func (c *Cluster) Close() {
	if c.hb != nil {
		c.hb.stop()
	}
	for _, mx := range c.muxes {
		if mx != nil {
			mx.fail()
		}
	}
}

// Shutdown asks every live memory server to exit (the orderly counterpart
// of killing the processes).
func (c *Cluster) Shutdown() {
	if c.hb != nil {
		c.hb.stop()
	}
	for ms := range c.endpoints {
		if !c.isDead(ms) {
			c.muxes[ms].roundTrip(opShutdown, nil, nil)
		}
	}
	c.Close()
}

func (c *Cluster) isDead(ms int) bool { return c.dead[ms].Load() }

// markDead publishes the death of memory server ms. Under replication the
// failover promotion runs first, inside the sync.Once — a concurrent caller
// blocks until it finishes — so by the time any verb observes dead[ms] the
// forwarding map already redirects every promoted chunk: the same
// no-dark-window guarantee the simulator gets from its synchronous
// OnMSDeath listener. The promotion itself issues no network verbs (the
// replica copies are already on the live servers; only compute-side maps
// change), so running it inside the detecting verb cannot deadlock.
func (c *Cluster) markDead(ms int) {
	if ms < 0 || ms >= len(c.endpoints) {
		return
	}
	c.deadOnce[ms].Do(func() {
		if c.Rep != nil {
			alive := func(i int) bool { return i != ms && !c.dead[i].Load() }
			promoted := c.Rep.FailoverServer(uint16(ms), alive)
			for _, p := range promoted {
				c.Fwd.InstallReplica(p.Old, p.NewBase)
				c.invMu.Lock()
				invs := c.invalidators
				c.invMu.Unlock()
				for _, inv := range invs {
					inv(p.Old)
				}
			}
			c.failovers.Add(int64(len(promoted)))
		}
		c.dead[ms].Store(true)
		// Fail the mux: unblocks every goroutine stuck mid-round-trip on the
		// dead server (a SIGSTOPped process holds its sockets open without
		// answering) with dead-memory semantics.
		c.muxes[ms].fail()
	})
}

// MarkDead declares memory server ms dead, running failover promotion as if
// a verb had observed the death. The launcher's kill path calls it right
// after SIGKILL so tests don't wait out a heartbeat interval.
func (c *Cluster) MarkDead(ms int) { c.markDead(ms) }

// mux returns the multiplexed connection to ms, or alive=false when the
// server is dead (the caller applies dead-memory semantics).
func (c *Cluster) mux(ms uint16) (*muxConn, bool) {
	if c.isDead(int(ms)) {
		return nil, false
	}
	return c.muxes[ms], true
}

func (c *Cluster) newTransport(cs int) *Transport {
	return &Transport{cl: c, cs: uint16(cs)}
}

// --- core.Backend ----------------------------------------------------------

// NewTransport creates a client thread's transport bound to compute server
// cs. On TCP a "compute server" is a thread-group identity, not a process
// boundary — CSID still partitions the local lock tables.
func (c *Cluster) NewTransport(cs int) transport.Transport { return c.newTransport(cs) }

// NewThreadAllocator pairs a client thread with its stage-two allocator,
// wired for replica placement when the cluster replicates.
func (c *Cluster) NewThreadAllocator(cl transport.Transport, seed int) *alloc.ThreadAllocator {
	a := alloc.NewThreadAllocator(cl, &c.AllocStats, seed)
	if c.Rep != nil {
		a.SetReplication(c.Rep, c.rf)
	}
	return a
}

// NewBulk builds a setup-time bulk allocator over the raw growth path,
// wired for replica placement when the cluster replicates.
func (c *Cluster) NewBulk() *alloc.Bulk {
	b := alloc.NewBulk(c, &c.AllocStats)
	if c.Rep != nil {
		b.SetReplication(c.Rep, c.rf)
	}
	return b
}

// NewLockManager builds the remote lock manager: no fabric, no virtual-time
// arbitration — the physical lock word on the servers is the whole truth.
func (c *Cluster) NewLockManager(cfg hocl.Config) *hocl.Manager {
	return hocl.NewRemoteManager(cfg, len(c.endpoints), c.numCS, c.onChip, c.GrowChunkRaw)
}

// NumCS returns the compute-server (thread-group) count.
func (c *Cluster) NumCS() int { return c.numCS }

// SetRoot stores the root pointer and level without timing; used by bulk
// load before client threads start.
func (c *Cluster) SetRoot(root transport.Addr, level uint8) {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(root))
	binary.LittleEndian.PutUint64(buf[8:], uint64(level))
	c.RawWrite(transport.MakeAddr(0, 0), buf[:])
}

// RawWrite stores data at a without timing, mirrored to a's chunk replicas
// when the cluster replicates — setup-time writes (bulk load, free bits)
// must be failover-covered like any client write.
func (c *Cluster) RawWrite(a transport.Addr, data []byte) {
	c.rawMu.Lock()
	defer c.rawMu.Unlock()
	c.raw.Write(a, data)
	if c.Rep == nil {
		return
	}
	var ts alloc.TargetSet
	if c.Rep.Targets(alloc.ChunkOf(a), &ts) {
		inner := a.Off() % transport.DefaultChunkSize
		for i := 0; i < ts.N; i++ {
			c.raw.Write(ts.Bases[i].Add(inner), data)
		}
	}
}

// RawRead loads len(buf) bytes at a without timing, chasing the forwarding
// map when a's server is dead — so Validate and Stats keep working after a
// memory-server death, reading the promoted replicas instead.
func (c *Cluster) RawRead(a transport.Addr, buf []byte) {
	c.rawMu.Lock()
	defer c.rawMu.Unlock()
	for hop := 0; hop < alloc.MaxForwardHops; hop++ {
		if !c.isDead(int(a.MS())) {
			break
		}
		fwd, ok := c.Fwd.Resolve(a)
		if !ok {
			break
		}
		a = fwd
	}
	c.raw.Read(a, buf)
}

// Forwarding is the chunk forwarding map.
func (c *Cluster) Forwarding() *alloc.Forwarding { return c.Fwd }

// Replicas is the chunk→replicas placement table (nil when replication is
// off).
func (c *Cluster) Replicas() *alloc.ReplicaMap { return c.Rep }

// ReplicationFactor returns the configured copies per chunk (0/1 = off).
func (c *Cluster) ReplicationFactor() int { return c.rf }

// OnChunkInvalidate registers a hook the MS-death promotion path calls for
// every chunk it fails over, so trees drop cached pointers into the dead
// server.
func (c *Cluster) OnChunkInvalidate(fn func(alloc.ChunkID)) {
	c.invMu.Lock()
	c.invalidators = append(c.invalidators, fn)
	c.invMu.Unlock()
}

// Failovers returns the number of chunks promoted to a replica after a
// memory-server death.
func (c *Cluster) Failovers() int64 { return c.failovers.Load() }

// MigrationLock enters the cluster-wide re-replication critical section.
func (c *Cluster) MigrationLock() { c.migMu.Lock() }

// MigrationUnlock leaves the re-replication critical section.
func (c *Cluster) MigrationUnlock() { c.migMu.Unlock() }

// MSAlive reports whether memory server ms is reachable.
func (c *Cluster) MSAlive(ms int) bool { return !c.isDead(ms) }

// Loads polls every memory server's Stats opcode and returns per-server
// inbound-op counts with per-chunk breakdowns — the real-network analogue
// of the simulator's NIC load accounting, feeding the same stats.MSLoad
// aggregation (LoadSkew, SubLoads) the rebalancer uses. Dead servers report
// Dead with zero counts.
func (c *Cluster) Loads() []stats.MSLoad {
	out := make([]stats.MSLoad, len(c.endpoints))
	for ms := range c.endpoints {
		out[ms].MS = ms
		mx, alive := c.mux(uint16(ms))
		if !alive {
			out[ms].Dead = true
			continue
		}
		ok := mx.roundTrip(opStats, nil, func(resp []byte) {
			p := payloadReader{b: resp}
			total := int64(p.u64())
			n := int(p.u32())
			chunk := make([]int64, 0, n)
			for i := 0; i < n; i++ {
				chunk = append(chunk, int64(p.u64()))
			}
			if p.err == nil {
				out[ms].Ops = total
				out[ms].ChunkOps = chunk
			}
		})
		if !ok {
			c.markDead(ms)
			out[ms].Dead = true
		}
	}
	return out
}

// --- transport.Grower ------------------------------------------------------

// NumMS returns the memory-server count.
func (c *Cluster) NumMS() int { return len(c.endpoints) }

// MSUsable reports whether ms should receive new allocations.
func (c *Cluster) MSUsable(ms int) bool { return !c.isDead(ms) }

// GrowChunkRaw grows one chunk on ms with no timing accounting.
func (c *Cluster) GrowChunkRaw(ms uint16) uint64 {
	c.rawMu.Lock()
	defer c.rawMu.Unlock()
	return c.raw.GrowChunk(ms)
}

var _ transport.Grower = (*Cluster)(nil)
