package sherman

import (
	"fmt"

	"sherman/internal/migrate"
	"sherman/internal/sim"
	"sherman/internal/stats"
)

// This file is the public face of the elasticity subsystem: online
// memory-server scale-out and scale-in with live chunk migration. The
// protocol lives in internal/migrate (orchestration) and internal/core
// (locked node moves, forwarding chases, parent repointing); DESIGN.md §9
// documents it.

// AddMemoryServer attaches one new, empty memory server to the running
// cluster and returns its id — usable while sessions run. Lock tables are
// wired before the server becomes addressable, and allocators start
// placing new chunks on it immediately; existing data moves only when a
// Rebalance (or DrainMemoryServer) migrates it. The cluster's scale-out
// capacity is fixed at creation (MaxMemoryServers); beyond it an error is
// returned.
func (c *Cluster) AddMemoryServer() (int, error) {
	if c.cl == nil {
		return 0, fmt.Errorf("%w: AddMemoryServer", ErrSimOnly)
	}
	return c.cl.AddMS()
}

// Rebalance migrates hot chunks from overloaded memory servers to
// underloaded ones until per-server NIC inbound load is within the
// engine's slack band, driving the moves from compute server via. Sessions
// keep operating throughout: readers that land on a moved node chase its
// forwarding entry (one extra local step plus one read), writers contend
// on the ordinary node locks. Returns ErrSessionDead when via crashes
// mid-migration — the tree stays serviceable, and Recover completes any
// half-repointed moves.
func (t *Tree) Rebalance(via int) (MigrationStats, error) {
	var st migrate.Stats
	err := t.runMigration(via, func(e *migrate.Engine) error {
		var err error
		st, err = e.Rebalance()
		return err
	})
	return migrationStats(st), err
}

// DrainMemoryServer migrates every tree's data off memory server ms and
// marks it as draining, so allocators place nothing new there — the
// scale-in half of elasticity, driven from compute server via. The server
// remains addressable (migrated originals stay as forwarding tombstones)
// but holds no live data when the call returns.
func (c *Cluster) DrainMemoryServer(ms, via int) (MigrationStats, error) {
	if c.cl == nil {
		return MigrationStats{}, fmt.Errorf("%w: DrainMemoryServer", ErrSimOnly)
	}
	if ms < 0 || ms >= c.cl.NumMS() {
		return MigrationStats{}, fmt.Errorf("sherman: memory server %d not in [0,%d)", ms, c.cl.NumMS())
	}
	var total MigrationStats
	c.treeMu.Lock()
	trees := append([]*Tree(nil), c.trees...)
	c.treeMu.Unlock()
	if len(trees) == 0 {
		// No trees: just mark it; there is nothing to move.
		c.cl.SetDraining(ms, true)
		return total, nil
	}
	for _, t := range trees {
		var st migrate.Stats
		err := t.runMigration(via, func(e *migrate.Engine) error {
			var err error
			st, err = e.DrainServer(uint16(ms))
			return err
		})
		total = addMigrationStats(total, migrationStats(st))
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// runMigration runs fn over a fresh engine on compute server via,
// converting a mid-migration crash of via into ErrSessionDead.
func (t *Tree) runMigration(via int, fn func(*migrate.Engine) error) (err error) {
	if t.c.cl == nil {
		// Live migration leans on the simulator's load accounting and
		// failover hooks; over a real network it is future work.
		return fmt.Errorf("%w: migration", ErrSimOnly)
	}
	if via < 0 || via >= t.c.ComputeServers() {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrBadComputeServer, via, t.c.ComputeServers())
	}
	if !t.c.ComputeServerAlive(via) {
		return fmt.Errorf("%w: migration must run on a live compute server", ErrSessionDead)
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := sim.IsCrash(r); ok {
				err = ErrSessionDead
				return
			}
			panic(r)
		}
	}()
	h := t.tr.NewHandle(via, int(sessionSeq.Add(1)))
	// Anchor the clock at the cluster's latest verb time so the reported
	// VirtualNS measures the migration, not the cluster's age (see
	// Tree.Recover).
	t.c.anchorClock(h)
	return fn(migrate.New(h, migrate.Options{}))
}

// MigrationStats reports one Rebalance or DrainMemoryServer run.
type MigrationStats struct {
	// ChunksMoved counts chunks whose nodes were relocated; NodesMoved the
	// nodes, BytesCopied their payload.
	ChunksMoved, NodesMoved int
	BytesCopied             int64
	// Repoints counts parent (or root) pointers swung to relocated
	// addresses. RepointMisses counts moves whose pointer a racing
	// structural change owned; readers keep resolving those through the
	// forwarding map until a recovery sweep repairs them.
	Repoints, RepointMisses int
	// CacheDropped counts compute-side index-cache entries invalidated
	// because they lived in (or steered into) a migrated chunk.
	CacheDropped int
	// VirtualNS is the migration's span on the driving thread's virtual
	// clock — the rebalance time a real deployment would observe.
	VirtualNS int64
}

func migrationStats(s migrate.Stats) MigrationStats {
	return MigrationStats{
		ChunksMoved:   s.ChunksMoved,
		NodesMoved:    s.NodesMoved,
		BytesCopied:   s.BytesCopied,
		Repoints:      s.Repoints,
		RepointMisses: s.RepointMisses,
		CacheDropped:  s.CacheDropped,
		VirtualNS:     s.VirtualNS,
	}
}

func addMigrationStats(a, b MigrationStats) MigrationStats {
	a.ChunksMoved += b.ChunksMoved
	a.NodesMoved += b.NodesMoved
	a.BytesCopied += b.BytesCopied
	a.Repoints += b.Repoints
	a.RepointMisses += b.RepointMisses
	a.CacheDropped += b.CacheDropped
	a.VirtualNS += b.VirtualNS
	return a
}

// MemoryServerLoad is one memory server's cumulative NIC inbound load —
// the signal Rebalance equalizes. Diff two snapshots for a windowed view.
type MemoryServerLoad struct {
	MS int
	// InboundOps counts client verbs (reads, writes, atomics, RPCs) the
	// server's NIC has serviced since the cluster started.
	InboundOps int64
	// Draining marks a server being scaled in.
	Draining bool
	// Dead marks a server killed by KillMemoryServer; dead servers are
	// excluded from LoadSkew and from migration and replica placement.
	Dead bool
}

// MemoryServerLoads snapshots every memory server's inbound load. On the
// simulator the counts come from the NIC load accounting; over TCP each
// server reports its striped per-chunk op counters through the Stats opcode
// (dead servers are reported as Dead with their last-known count unknown,
// i.e. zero).
func (c *Cluster) MemoryServerLoads() []MemoryServerLoad {
	if c.cl == nil {
		if c.tc == nil {
			return nil
		}
		loads := c.tc.Loads()
		out := make([]MemoryServerLoad, len(loads))
		for i, l := range loads {
			out[i] = MemoryServerLoad{MS: l.MS, InboundOps: l.Ops, Draining: l.Draining, Dead: l.Dead}
		}
		return out
	}
	loads := migrate.Loads(c.cl.F)
	out := make([]MemoryServerLoad, len(loads))
	for i, l := range loads {
		out[i] = MemoryServerLoad{MS: l.MS, InboundOps: l.Ops, Draining: l.Draining, Dead: l.Dead}
	}
	return out
}

// LoadSkew summarizes a load snapshot as max/mean inbound ops: 1.0 is
// perfectly balanced, N means one of N servers carries everything.
func LoadSkew(loads []MemoryServerLoad) float64 {
	ls := make([]stats.MSLoad, len(loads))
	for i, l := range loads {
		ls[i] = stats.MSLoad{MS: l.MS, Ops: l.InboundOps, Draining: l.Draining, Dead: l.Dead}
	}
	return stats.LoadSkew(ls)
}

// ForwardingEntries returns the number of chunk forwarding entries
// currently installed — nonzero while (or after) migrations have moved
// data; entries of crashed migrations drain after Recover.
func (c *Cluster) ForwardingEntries() int {
	return c.be.Forwarding().Len()
}
