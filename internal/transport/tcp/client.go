package tcp

import (
	"encoding/binary"
	"time"

	"sherman/internal/transport"
)

const dialTimeout = 5 * time.Second

// clockBase anchors this process's monotonic clock. On its own it is NOT a
// valid lease-time origin — two client processes would stamp locks against
// different zeros — so Transport.Now() adds the cluster's clock offset,
// established against memory server 0's Ping epoch at NewCluster time.
// Every client process of one cluster thereby compares lease stamps on the
// same (server-anchored) timeline.
var clockBase = time.Now()

func nowNS() int64 { return time.Since(clockBase).Nanoseconds() }

// Transport is one client thread's view of the TCP fabric. It implements
// transport.Transport with real clocks: Now is monotonic wall time,
// Step/AdvanceTo are no-ops (local work takes whatever time it takes), and
// it deliberately does not implement transport.VirtualTimer — core code
// holding a nil VirtualTimer runs its timeline hooks synchronously. It does
// implement transport.AsyncVerbs: reads and doorbell write batches can be
// issued without waiting, so a pipelined executor keeps depth-N verbs in
// flight per memory server.
//
// Like every Transport it is owned by a single goroutine. The sockets
// themselves live in the cluster's per-server muxConns (dialed once at
// bring-up, shared by every thread); this struct is just the per-thread
// scratch — metrics, payload builders, pending-op slots — so creating one
// is cheap and thread counts don't multiply connections.
type Transport struct {
	cl      *Cluster
	cs      uint16
	m       transport.Metrics
	payload []byte // request payload scratch

	rmGroups []readGroup // ReadMulti per-server group scratch

	pend  []pendingOp // AsyncVerbs completion slots
	pfree []int32     // free indices into pend
}

var _ transport.Transport = (*Transport)(nil)
var _ transport.AsyncVerbs = (*Transport)(nil)

// readGroup is one per-server slice of a ReadMulti fan-out: the ReadBatch
// frame for ms was issued under tag (when issued; a server already dead at
// issue time yields an unissued group that zero-fills). head is the index
// of the group's first op; membership is every op addressed to ms.
type readGroup struct {
	ms     uint16
	tag    uint32
	head   int
	issued bool
}

// pendingOp is one in-flight AsyncVerbs operation awaiting completion.
type pendingOp struct {
	kind byte
	ms   uint16
	tag  uint32
	buf  []byte // read destination; nil for writes
}

const (
	pendDead  byte = iota // server was dead at issue; Await applies dead semantics
	pendRead              // opRead in flight; Await fills buf
	pendWrite             // opWriteBatch in flight
)

// Close releases the per-thread scratch. The sockets are cluster-owned
// (Cluster.Close tears them down), so this is a formality kept for the
// owner-calls-Close discipline the v1 pooled transport established.
func (t *Transport) Close() {}

// --- verbs -----------------------------------------------------------------

// Verbs against a dead server apply the dead-memory semantics every backend
// shares — reads zero-fill, writes are discarded, atomics fabricate success
// from zeroed memory so validating reads observe the death (DESIGN.md §12).
// markDead runs failover promotion synchronously before publishing the
// death, so by the time a verb reports a dead server the forwarding map
// already redirects its chunks.

func (t *Transport) Read(a transport.Addr, buf []byte) {
	t.m.Reads++
	ms := a.MS()
	mx, alive := t.cl.mux(ms)
	if !alive {
		clear(buf)
		return
	}
	t.payload = appendU32(appendU64(t.payload[:0], uint64(a)), uint32(len(buf)))
	tag := mx.issue(opRead, t.payload)
	resp, ok := mx.await(tag)
	if !ok {
		mx.release(tag)
		t.cl.markDead(int(ms))
		clear(buf)
		return
	}
	copy(buf, resp)
	mx.release(tag)
	t.m.RoundTrips++
	t.m.OpRoundTrips++
}

func (t *Transport) ReadMulti(ops []transport.ReadOp) {
	if len(ops) == 0 {
		return
	}
	// Group by memory server: each group is one ReadBatch frame — the
	// doorbell-batched post of the simulator mapped to one round trip. All
	// groups are issued before any is awaited, so a multi-server fan-out
	// overlaps its round trips instead of visiting servers sequentially.
	t.rmGroups = t.rmGroups[:0]
	for i := range ops {
		ms := ops[i].Addr.MS()
		grouped := false
		for _, g := range t.rmGroups {
			if g.ms == ms {
				grouped = true
				break
			}
		}
		if grouped {
			continue
		}
		t.payload = appendU32(t.payload[:0], 0)
		n := 0
		for j := i; j < len(ops); j++ {
			if ops[j].Addr.MS() != ms {
				continue
			}
			t.payload = appendU32(appendU64(t.payload, uint64(ops[j].Addr)), uint32(len(ops[j].Buf)))
			n++
		}
		binary.LittleEndian.PutUint32(t.payload[0:4], uint32(n))
		t.m.Reads += int64(n)
		if n > 1 {
			t.m.DoorbellBatches++
			t.m.DoorbellOps += int64(n)
		}
		g := readGroup{ms: ms, head: i}
		if mx, alive := t.cl.mux(ms); alive {
			g.tag = mx.issue(opReadBatch, t.payload)
			g.issued = true
		}
		t.rmGroups = append(t.rmGroups, g)
	}
	for _, g := range t.rmGroups {
		var resp []byte
		ok := false
		var mx *muxConn
		if g.issued {
			mx = t.cl.muxes[g.ms]
			resp, ok = mx.await(g.tag)
			if ok {
				t.m.RoundTrips++
				t.m.OpRoundTrips++
			}
		}
		off := 0
		for j := g.head; j < len(ops); j++ {
			if ops[j].Addr.MS() != g.ms {
				continue
			}
			if ok && off+len(ops[j].Buf) > len(resp) {
				// Truncated response: the server desynchronized mid-batch.
				// Treat it as a death — zero-fill the rest of the group
				// rather than slicing past the frame.
				ok = false
			}
			if ok {
				copy(ops[j].Buf, resp[off:off+len(ops[j].Buf)])
			} else {
				clear(ops[j].Buf)
			}
			off += len(ops[j].Buf)
		}
		if g.issued {
			mx.release(g.tag)
			if !ok {
				t.cl.markDead(int(g.ms))
			}
		}
	}
}

func (t *Transport) Write(a transport.Addr, data []byte) {
	t.m.Writes++
	t.m.WriteBytes += int64(len(data))
	t.m.OpWriteBytes += int64(len(data))
	ms := a.MS()
	mx, alive := t.cl.mux(ms)
	if !alive {
		return // dead: write discarded
	}
	t.payload = appendU32(t.payload[:0], 1)
	t.payload = appendU32(appendU64(t.payload, uint64(a)), uint32(len(data)))
	t.payload = append(t.payload, data...)
	tag := mx.issue(opWriteBatch, t.payload)
	_, ok := mx.await(tag)
	mx.release(tag)
	if !ok {
		t.cl.markDead(int(ms))
		return
	}
	t.m.RoundTrips++
	t.m.OpRoundTrips++
}

// buildWriteBatch assembles the WriteBatch payload for ops and books the
// write metrics — shared by the sync and async paths.
func (t *Transport) buildWriteBatch(ops []transport.WriteOp) {
	t.payload = appendU32(t.payload[:0], uint32(len(ops)))
	for _, op := range ops {
		t.payload = appendU32(appendU64(t.payload, uint64(op.Addr)), uint32(len(op.Data)))
		t.payload = append(t.payload, op.Data...)
		t.m.Writes++
		t.m.WriteBytes += int64(len(op.Data))
		t.m.OpWriteBytes += int64(len(op.Data))
	}
	if len(ops) > 1 {
		t.m.DoorbellBatches++
		t.m.DoorbellOps += int64(len(ops))
	}
}

func (t *Transport) PostWrites(ops ...transport.WriteOp) {
	if len(ops) == 0 {
		return
	}
	// Dependent writes to one server coalesce into a single WriteBatch
	// frame, applied in order under the target chunks' stripe locks: §4.5's
	// doorbell batch with strictly stronger (atomic per op) semantics.
	t.buildWriteBatch(ops)
	ms := ops[0].Addr.MS()
	mx, alive := t.cl.mux(ms)
	if !alive {
		return
	}
	tag := mx.issue(opWriteBatch, t.payload)
	_, ok := mx.await(tag)
	mx.release(tag)
	if !ok {
		t.cl.markDead(int(ms))
		return
	}
	t.m.RoundTrips++
	t.m.OpRoundTrips++
}

func (t *Transport) CAS(a transport.Addr, old, new uint64) (uint64, bool) {
	t.m.Atomics++
	ms := a.MS()
	mx, alive := t.cl.mux(ms)
	if alive {
		t.payload = appendU64(appendU64(appendU64(t.payload[:0], uint64(a)), old), new)
		tag := mx.issue(opCAS, t.payload)
		resp, ok := mx.await(tag)
		if ok {
			p := payloadReader{b: resp}
			prev := p.u64()
			swapped := p.u8() == 1
			mx.release(tag)
			t.m.RoundTrips++
			t.m.OpRoundTrips++
			if !swapped {
				t.m.CASFailures++
			}
			return prev, swapped
		}
		mx.release(tag)
		t.cl.markDead(int(ms))
	}
	// Dead memory fabricates the atomic from zeroed bytes, exactly as the
	// simulator does (DESIGN.md §12): a CAS expecting 0 "succeeds" so lock
	// acquisition proceeds into its validating read, which observes the
	// death and takes the chase/failover path — instead of spinning forever
	// on a false CAS.
	if old == 0 {
		return 0, true
	}
	t.m.CASFailures++
	return 0, false
}

func (t *Transport) CAS16(a transport.Addr, old, new uint16) (uint16, bool) {
	t.m.Atomics++
	ms := a.MS()
	mx, alive := t.cl.mux(ms)
	if alive {
		t.payload = appendU64(t.payload[:0], uint64(a))
		t.payload = append(t.payload, byte(old), byte(old>>8), byte(new), byte(new>>8))
		tag := mx.issue(opCAS16, t.payload)
		resp, ok := mx.await(tag)
		if ok {
			p := payloadReader{b: resp}
			prev := p.u16()
			swapped := p.u8() == 1
			mx.release(tag)
			t.m.RoundTrips++
			t.m.OpRoundTrips++
			if !swapped {
				t.m.CASFailures++
			}
			return prev, swapped
		}
		mx.release(tag)
		t.cl.markDead(int(ms))
	}
	// Same fabricated-from-zero contract as CAS above.
	if old == 0 {
		return 0, true
	}
	t.m.CASFailures++
	return 0, false
}

func (t *Transport) FAA(a transport.Addr, delta uint64) uint64 {
	t.m.Atomics++
	ms := a.MS()
	mx, alive := t.cl.mux(ms)
	if !alive {
		return 0
	}
	t.payload = appendU64(appendU64(t.payload[:0], uint64(a)), delta)
	tag := mx.issue(opFAA, t.payload)
	resp, ok := mx.await(tag)
	if !ok {
		mx.release(tag)
		t.cl.markDead(int(ms))
		return 0
	}
	p := payloadReader{b: resp}
	prev := p.u64()
	mx.release(tag)
	t.m.RoundTrips++
	t.m.OpRoundTrips++
	return prev
}

func (t *Transport) GrowChunk(ms uint16) uint64 {
	t.m.RPCs++
	mx, alive := t.cl.mux(ms)
	if !alive {
		return 0
	}
	tag := mx.issue(opGrow, nil)
	resp, ok := mx.await(tag)
	if !ok {
		mx.release(tag)
		t.cl.markDead(int(ms))
		return 0
	}
	p := payloadReader{b: resp}
	base := p.u64()
	mx.release(tag)
	t.m.RoundTrips++
	t.m.OpRoundTrips++
	return base
}

// --- transport.AsyncVerbs --------------------------------------------------

// newPending takes a completion slot off the freelist (growing the table on
// first use; steady state allocates nothing).
func (t *Transport) newPending() (transport.Pending, *pendingOp) {
	if n := len(t.pfree); n > 0 {
		idx := t.pfree[n-1]
		t.pfree = t.pfree[:n-1]
		return transport.Pending(idx), &t.pend[idx]
	}
	t.pend = append(t.pend, pendingOp{})
	return transport.Pending(len(t.pend) - 1), &t.pend[len(t.pend)-1]
}

// ReadAsync issues the read and returns without waiting. buf is filled (or
// zero-filled, on death) at Await time.
func (t *Transport) ReadAsync(a transport.Addr, buf []byte) transport.Pending {
	t.m.Reads++
	idx, p := t.newPending()
	p.ms = a.MS()
	p.buf = buf
	mx, alive := t.cl.mux(p.ms)
	if !alive {
		p.kind = pendDead
		return idx
	}
	t.payload = appendU32(appendU64(t.payload[:0], uint64(a)), uint32(len(buf)))
	p.kind = pendRead
	p.tag = mx.issue(opRead, t.payload)
	return idx
}

// PostWritesAsync issues one doorbell batch and returns without waiting.
// The data is captured into the frame at issue, so callers may reuse their
// op buffers immediately.
func (t *Transport) PostWritesAsync(ops ...transport.WriteOp) transport.Pending {
	idx, p := t.newPending()
	p.buf = nil
	if len(ops) == 0 {
		p.kind = pendDead
		return idx
	}
	t.buildWriteBatch(ops)
	p.ms = ops[0].Addr.MS()
	mx, alive := t.cl.mux(p.ms)
	if !alive {
		p.kind = pendDead
		return idx
	}
	p.kind = pendWrite
	p.tag = mx.issue(opWriteBatch, t.payload)
	return idx
}

// Await completes pd: blocks for the response, applies it (filling the read
// buffer, or dead-memory semantics), and releases the slot.
func (t *Transport) Await(pd transport.Pending) {
	p := &t.pend[pd]
	if p.kind == pendDead {
		if p.buf != nil {
			clear(p.buf)
		}
	} else {
		mx := t.cl.muxes[p.ms]
		resp, ok := mx.await(p.tag)
		if ok {
			if p.kind == pendRead {
				copy(p.buf, resp)
			}
			mx.release(p.tag)
			t.m.RoundTrips++
			t.m.OpRoundTrips++
		} else {
			mx.release(p.tag)
			t.cl.markDead(int(p.ms))
			if p.kind == pendRead {
				clear(p.buf)
			}
		}
	}
	p.buf = nil
	t.pfree = append(t.pfree, int32(pd))
}

// --- clock and topology ----------------------------------------------------

// Now returns cluster time: this process's monotonic clock shifted onto the
// timeline anchored at memory server 0's Ping epoch, so lease stamps are
// comparable across client processes.
func (t *Transport) Now() int64      { return nowNS() + t.cl.clockOff.Load() }
func (t *Transport) Step(int64)      {}
func (t *Transport) AdvanceTo(int64) {}

func (t *Transport) CSID() uint16 { return t.cs }
func (t *Transport) Epoch() int64 { return 0 }
func (t *Transport) Alive() bool  { return true }
func (t *Transport) CheckAlive()  {}

func (t *Transport) NumMS() int           { return len(t.cl.endpoints) }
func (t *Transport) MSAlive(ms int) bool  { return !t.cl.isDead(ms) }
func (t *Transport) MSUsable(ms int) bool { return !t.cl.isDead(ms) }

func (t *Transport) Metrics() *transport.Metrics { return &t.m }

func (t *Transport) Timing() transport.Timing {
	// Real clocks: no virtual cost constants. A zero WraparoundGuardNS
	// disables §4.4's wraparound heuristic (a real clock never re-reads the
	// same 4-bit version within a wrap window); the lease is a real
	// duration.
	return transport.Timing{LeaseNS: int64(200 * time.Millisecond)}
}
