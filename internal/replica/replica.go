// Package replica is the repair half of chunk-granularity replication: the
// background re-replicator that restores redundancy after a memory-server
// death (or after allocation on a cluster too small to place every replica).
//
// The write-side mechanism lives below it — allocators place and register
// replica chunks (internal/alloc), handles mirror every committed write to
// them (internal/core's mirror engine), and the MS-death listener promotes
// the freshest replica of each dead primary (internal/cluster). What is left
// over after a failover is under-replication: every promoted chunk lost one
// copy, and every chunk that kept its primary may have lost a replica. The
// Engine sweeps those chunks, hottest first, and rebuilds each missing copy
// on the coldest eligible server with a register-then-backfill protocol that
// loses no concurrent write:
//
//  1. Grow a fresh chunk on the target server (one memory-thread RPC).
//  2. AddPendingReplica publishes it as a mirror target: from this instant
//     every committed write reaches it. Promotion still prefers complete
//     replicas — the newcomer holds only recent mirrors.
//  3. CopyChunk backfills the chunk slot by slot under the per-node locks
//     writers hold while mirroring, so a slot copy can never overwrite a
//     fresher mirror with stale bytes.
//  4. CompleteReplica makes the copy a first-class failover candidate.
//
// A source server dying mid-copy aborts the backfill benignly: dead memory
// reads as zeros and CopyChunk never writes zero slots, the promotion
// re-keys the chunk, and the abandoned pending replica neither attracts
// promotion nor satisfies UnderReplicated, so a later sweep repairs the
// re-keyed chunk afresh.
package replica

import (
	"sort"

	"sherman/internal/alloc"
	"sherman/internal/core"
	"sherman/internal/rdma"
)

// Options tunes one engine.
type Options struct {
	// MaxChunks bounds chunks repaired by one ReReplicate call (0 = 16).
	MaxChunks int
	// Pace, when non-nil, is called between chunk repairs (no lock held)
	// with the engine's current virtual time; benchmark harnesses use it to
	// keep the re-replicator inside the simulation gate's window. It is also
	// installed as the engine handle's Pace so CopyChunk paces mid-chunk.
	Pace func(nowNS int64)
}

func (o Options) maxChunks() int {
	if o.MaxChunks == 0 {
		return 16
	}
	return o.MaxChunks
}

// Stats reports one re-replication sweep.
type Stats struct {
	// ChunksRepaired counts chunks brought back to full replication;
	// SlotsCopied the non-empty node slots their backfills moved.
	ChunksRepaired, SlotsCopied int
	// SkippedNoTarget counts under-replicated chunks left as-is because no
	// eligible server could host another copy (every live, non-draining
	// server already holds one, or the replica set is full of abandoned
	// pending copies).
	SkippedNoTarget int
	// VirtualNS is the sweep's span on the engine thread's virtual clock.
	VirtualNS int64
}

// Engine drives re-replication for one tree from one compute server's client
// thread. Like a migration engine it is owned by one goroutine and runs
// under the cluster-wide migration lock, so concurrent sweeps and rebalances
// never fight over a chunk.
type Engine struct {
	t   *core.Tree
	h   *core.Handle
	opt Options
}

// New creates an engine over handle h (which determines the compute server
// and virtual clock the repair traffic runs on).
func New(h *core.Handle, opt Options) *Engine {
	if opt.Pace != nil {
		h.Pace = opt.Pace
	}
	return &Engine{t: h.Tree(), h: h, opt: opt}
}

// ReReplicate sweeps the under-replicated chunks — hottest first, so the
// chunks whose loss would hurt most regain redundancy soonest — and repairs
// up to MaxChunks of them. Safe while client threads run; the repaired
// chunks serve reads and writes throughout.
func (e *Engine) ReReplicate() (Stats, error) {
	be := e.t.Backend()
	rep := be.Replicas()
	var st Stats
	if rep == nil {
		return st, nil
	}
	start := e.h.C.Now()
	be.MigrationLock()
	defer be.MigrationUnlock()
	queue := rep.UnderReplicated(be.ReplicationFactor())
	e.sortHottest(queue)
	for _, ck := range queue {
		if st.ChunksRepaired >= e.opt.maxChunks() {
			break
		}
		if !be.MSAlive(int(ck.MS)) {
			continue // raced a death; failover owns this chunk now
		}
		ms := e.pickTarget(ck)
		if ms < 0 {
			st.SkippedNoTarget++
			continue
		}
		dst := rdma.MakeAddr(uint16(ms), e.h.C.GrowChunk(uint16(ms)))
		if !rep.AddPendingReplica(ck, dst) {
			st.SkippedNoTarget++
			continue // re-keyed by a racing failover, or set full
		}
		copied := e.h.CopyChunk(ck, dst)
		if !be.MSAlive(int(ck.MS)) {
			continue // source died mid-copy; leave the backfill pending
		}
		rep.CompleteReplica(ck, dst)
		e.h.Rec.ReReplications++
		st.ChunksRepaired++
		st.SlotsCopied += copied
		if e.opt.Pace != nil {
			e.opt.Pace(e.h.C.Now())
		}
	}
	st.VirtualNS = e.h.C.Now() - start
	return st, nil
}

// sortHottest orders the repair queue by the chunks' inbound verb counts,
// hottest first, with the deterministic (server, index) order breaking ties
// so paced sweeps stay reproducible. Per-chunk heat counters are a
// simulator instrument; on a real network the queue keeps its deterministic
// order (repair priority is a policy refinement, not a correctness need).
func (e *Engine) sortHottest(cks []alloc.ChunkID) {
	cl := e.t.Cluster()
	if cl == nil {
		return
	}
	servers := cl.F.Servers()
	heat := make(map[alloc.ChunkID]int64, len(cks))
	for _, ck := range cks {
		if int(ck.MS) < len(servers) {
			if ops := servers[ck.MS].ChunkOps(); ck.Index < uint64(len(ops)) {
				heat[ck] = ops[ck.Index]
			}
		}
	}
	sort.SliceStable(cks, func(i, j int) bool { return heat[cks[i]] > heat[cks[j]] })
}

// pickTarget returns a usable server not already holding a copy of ck, or
// -1 when none qualifies. On the simulator it picks the coldest by inbound
// verb count; on a real network (no load counters) it walks round-robin
// from the primary's successor so repairs spread across the cluster.
func (e *Engine) pickTarget(ck alloc.ChunkID) int {
	be := e.t.Backend()
	var holders [alloc.MaxReplicationFactor]uint16
	nh := be.Replicas().Holders(ck, &holders)
	held := func(i int) bool {
		for j := 0; j < nh; j++ {
			if int(holders[j]) == i {
				return true
			}
		}
		return false
	}
	if cl := e.t.Cluster(); cl != nil {
		best, bestOps := -1, int64(0)
		for i, s := range cl.F.Servers() {
			if s.Dead() || s.Draining() || held(i) {
				continue
			}
			if ops := s.InboundOps(); best < 0 || ops < bestOps {
				best, bestOps = i, ops
			}
		}
		return best
	}
	n := be.NumMS()
	for d := 1; d <= n; d++ {
		i := (int(ck.MS) + d) % n
		if be.MSUsable(i) && !held(i) {
			return i
		}
	}
	return -1
}
