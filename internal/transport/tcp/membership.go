package tcp

import (
	"bufio"
	"net"
	"sync"
	"time"
)

// Membership defaults: pings every defaultHeartbeatInterval, and a server
// that fails to answer one within defaultHeartbeatTimeout is declared dead.
// The timeout matches the remote lock manager's lease (200ms): by the time
// a stalled server's locks become reclaimable, the membership service has
// also excised it, so lease reclamation and failover promotion observe the
// same death.
const (
	defaultHeartbeatInterval = 50 * time.Millisecond
	defaultHeartbeatTimeout  = 200 * time.Millisecond
)

// membership is the cluster's liveness service, replacing the simulator's
// synchronous kill listener: one goroutine per memory server pings it on a
// real-time interval over a dedicated connection with hard read/write
// deadlines. A missed deadline — connection refused, reset, or a process
// that holds its sockets open but stops answering (SIGSTOP) — feeds the
// same markDead path an I/O error on a client verb does, so deaths are
// detected even when no client verb happens to touch the dead server.
type membership struct {
	c        *Cluster
	interval time.Duration
	timeout  time.Duration

	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

func startMembership(c *Cluster, interval, timeout time.Duration) *membership {
	if interval <= 0 {
		interval = defaultHeartbeatInterval
	}
	if timeout <= 0 {
		timeout = defaultHeartbeatTimeout
	}
	m := &membership{c: c, interval: interval, timeout: timeout, done: make(chan struct{})}
	for ms := range c.endpoints {
		m.wg.Add(1)
		go m.watch(ms)
	}
	return m
}

func (m *membership) stop() {
	m.once.Do(func() { close(m.done) })
	m.wg.Wait()
}

// watch heartbeats one memory server until it dies or the service stops.
func (m *membership) watch(ms int) {
	defer m.wg.Done()
	var conn net.Conn
	var r *bufio.Reader
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	tick := time.NewTicker(m.interval)
	defer tick.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-tick.C:
		}
		if m.c.isDead(ms) {
			return
		}
		if conn == nil {
			c, err := net.DialTimeout("tcp", m.c.endpoints[ms], m.timeout)
			if err != nil {
				m.c.markDead(ms)
				return
			}
			conn, r = c, bufio.NewReader(c)
		}
		if !m.ping(conn, r) {
			m.c.markDead(ms)
			return
		}
	}
}

// ping sends one Ping frame under a hard deadline covering both directions.
func (m *membership) ping(conn net.Conn, r *bufio.Reader) bool {
	if err := conn.SetDeadline(time.Now().Add(m.timeout)); err != nil {
		return false
	}
	if err := writeFrame(conn, 0, opPing, nil); err != nil {
		return false
	}
	_, status, _, err := readFrame(r)
	return err == nil && status == statusOK
}
