package tcp

import (
	"bufio"
	"net"
	"time"

	"sherman/internal/transport"
)

const dialTimeout = 5 * time.Second

// clockBase anchors this process's monotonic clock. On its own it is NOT a
// valid lease-time origin — two client processes would stamp locks against
// different zeros — so Transport.Now() adds the cluster's clock offset,
// established against memory server 0's Ping epoch at NewCluster time.
// Every client process of one cluster thereby compares lease stamps on the
// same (server-anchored) timeline.
var clockBase = time.Now()

func nowNS() int64 { return time.Since(clockBase).Nanoseconds() }

// msConn is one pooled connection to one memory server. Frames are
// request/response in lockstep, so the connection needs no framing state
// beyond a buffered reader; the request is assembled into one scratch
// buffer and sent with a single Write.
type msConn struct {
	c   net.Conn
	r   *bufio.Reader
	buf []byte
}

// request sends one frame and waits for its response. An I/O error means
// the server (or the path to it) is gone and surfaces as (nil, err); a
// statusErr response is a protocol bug — out-of-range access, bad opcode —
// and panics, matching the simulator's treatment of verb misuse.
func (mc *msConn) request(op byte, payload []byte) ([]byte, error) {
	mc.buf = mc.buf[:0]
	mc.buf = appendU32(mc.buf, uint32(1+len(payload)))
	mc.buf = append(mc.buf, op)
	mc.buf = append(mc.buf, payload...)
	if _, err := mc.c.Write(mc.buf); err != nil {
		return nil, err
	}
	status, resp, err := readFrame(mc.r)
	if err != nil {
		return nil, err
	}
	if status != statusOK {
		panic("tcp: server rejected request: " + string(resp))
	}
	return resp, nil
}

// Transport is one client thread's connection pool over the TCP fabric. It
// implements transport.Transport with real clocks: Now is monotonic
// wall time, Step/AdvanceTo are no-ops (local work takes whatever time it
// takes), and it deliberately does not implement transport.VirtualTimer —
// core code holding a nil VirtualTimer degrades to synchronous execution.
//
// Like every Transport it is owned by a single goroutine; connections are
// dialed lazily per memory server on first use.
type Transport struct {
	cl      *Cluster
	cs      uint16
	m       transport.Metrics
	conns   []*msConn
	payload []byte // request payload scratch
}

var _ transport.Transport = (*Transport)(nil)

// conn returns the pooled connection to ms, dialing on first use. A dial
// failure marks the server dead cluster-wide.
func (t *Transport) conn(ms uint16) (*msConn, bool) {
	if t.cl.isDead(int(ms)) {
		return nil, false
	}
	if t.conns[ms] == nil {
		c, err := net.DialTimeout("tcp", t.cl.endpoints[ms], dialTimeout)
		if err != nil {
			t.cl.markDead(int(ms))
			return nil, false
		}
		t.conns[ms] = &msConn{c: c, r: bufio.NewReader(c)}
		// Register with the cluster so a failover (possibly detected by the
		// membership service while this goroutine is blocked mid-read on a
		// stalled server) can force our pending round trip to error out.
		t.cl.registerConn(int(ms), c)
	}
	return t.conns[ms], true
}

// request performs one round trip against ms. ok=false means the server is
// dead: the caller applies the dead-memory semantics every backend shares —
// reads zero-fill, writes are discarded, atomics fabricate success from
// zeroed memory so validating reads observe the death (DESIGN.md §12).
// markDead runs failover promotion synchronously before returning, so by
// the time a verb reports a dead server the forwarding map already
// redirects its chunks.
func (t *Transport) request(ms uint16, op byte, payload []byte) ([]byte, bool) {
	mc, ok := t.conn(ms)
	if !ok {
		return nil, false
	}
	resp, err := mc.request(op, payload)
	if err != nil {
		mc.c.Close()
		t.cl.unregisterConn(int(ms), mc.c)
		t.conns[ms] = nil
		t.cl.markDead(int(ms))
		return nil, false
	}
	t.m.RoundTrips++
	t.m.OpRoundTrips++
	return resp, true
}

// Close drops the pooled connections. The owning goroutine calls it when
// done; a Transport is not reusable afterwards.
func (t *Transport) Close() {
	for i, mc := range t.conns {
		if mc != nil {
			mc.c.Close()
			t.cl.unregisterConn(i, mc.c)
			t.conns[i] = nil
		}
	}
}

// --- verbs -----------------------------------------------------------------

func (t *Transport) Read(a transport.Addr, buf []byte) {
	t.m.Reads++
	t.payload = appendU32(appendU64(t.payload[:0], uint64(a)), uint32(len(buf)))
	resp, ok := t.request(a.MS(), opRead, t.payload)
	if !ok {
		clear(buf) // dead memory zero-fills
		return
	}
	copy(buf, resp)
}

func (t *Transport) ReadMulti(ops []transport.ReadOp) {
	if len(ops) == 0 {
		return
	}
	// Group by memory server: each group is one ReadBatch frame — the
	// doorbell-batched post of the simulator mapped to one round trip.
	// Groups go out sequentially; ops are order-preserved within a group.
	done := make([]bool, len(ops))
	for i := range ops {
		if done[i] {
			continue
		}
		ms := ops[i].Addr.MS()
		t.payload = appendU32(t.payload[:0], 0)
		n := 0
		for j := i; j < len(ops); j++ {
			if done[j] || ops[j].Addr.MS() != ms {
				continue
			}
			t.payload = appendU32(appendU64(t.payload, uint64(ops[j].Addr)), uint32(len(ops[j].Buf)))
			n++
		}
		t.payload[0] = byte(n) // count < 2^8 in practice; encode fully anyway
		t.payload[1], t.payload[2], t.payload[3] = byte(n>>8), byte(n>>16), byte(n>>24)
		t.m.Reads += int64(n)
		if n > 1 {
			t.m.DoorbellBatches++
			t.m.DoorbellOps += int64(n)
		}
		resp, ok := t.request(ms, opReadBatch, t.payload)
		off := 0
		for j := i; j < len(ops); j++ {
			if done[j] || ops[j].Addr.MS() != ms {
				continue
			}
			if ok && off+len(ops[j].Buf) > len(resp) {
				// Truncated response: the server died (or desynchronized)
				// mid-batch. Treat it as a death — zero-fill the rest of
				// the group rather than slicing past the frame.
				t.cl.markDead(int(ms))
				ok = false
			}
			if ok {
				copy(ops[j].Buf, resp[off:off+len(ops[j].Buf)])
			} else {
				clear(ops[j].Buf)
			}
			off += len(ops[j].Buf)
			done[j] = true
		}
	}
}

func (t *Transport) Write(a transport.Addr, data []byte) {
	t.m.Writes++
	t.m.WriteBytes += int64(len(data))
	t.m.OpWriteBytes += int64(len(data))
	t.payload = appendU32(t.payload[:0], 1)
	t.payload = appendU32(appendU64(t.payload, uint64(a)), uint32(len(data)))
	t.payload = append(t.payload, data...)
	t.request(a.MS(), opWriteBatch, t.payload) // dead: write discarded
}

func (t *Transport) PostWrites(ops ...transport.WriteOp) {
	if len(ops) == 0 {
		return
	}
	// Dependent writes to one server coalesce into a single WriteBatch
	// frame, applied in order under the store mutex: §4.5's doorbell batch
	// with strictly stronger (atomic) semantics.
	t.payload = appendU32(t.payload[:0], uint32(len(ops)))
	for _, op := range ops {
		t.payload = appendU32(appendU64(t.payload, uint64(op.Addr)), uint32(len(op.Data)))
		t.payload = append(t.payload, op.Data...)
		t.m.Writes++
		t.m.WriteBytes += int64(len(op.Data))
		t.m.OpWriteBytes += int64(len(op.Data))
	}
	if len(ops) > 1 {
		t.m.DoorbellBatches++
		t.m.DoorbellOps += int64(len(ops))
	}
	t.request(ops[0].Addr.MS(), opWriteBatch, t.payload)
}

func (t *Transport) CAS(a transport.Addr, old, new uint64) (uint64, bool) {
	t.m.Atomics++
	t.payload = appendU64(appendU64(appendU64(t.payload[:0], uint64(a)), old), new)
	resp, ok := t.request(a.MS(), opCAS, t.payload)
	if !ok {
		// Dead memory fabricates the atomic from zeroed bytes, exactly as
		// the simulator does (DESIGN.md §12): a CAS expecting 0 "succeeds"
		// so lock acquisition proceeds into its validating read, which
		// observes the death and takes the chase/failover path — instead of
		// spinning forever on a false CAS.
		if old == 0 {
			return 0, true
		}
		t.m.CASFailures++
		return 0, false
	}
	p := payloadReader{b: resp}
	prev := p.u64()
	swapped := p.u8() == 1
	if !swapped {
		t.m.CASFailures++
	}
	return prev, swapped
}

func (t *Transport) CAS16(a transport.Addr, old, new uint16) (uint16, bool) {
	t.m.Atomics++
	t.payload = appendU64(t.payload[:0], uint64(a))
	t.payload = append(t.payload, byte(old), byte(old>>8), byte(new), byte(new>>8))
	resp, ok := t.request(a.MS(), opCAS16, t.payload)
	if !ok {
		// Same fabricated-from-zero contract as CAS above.
		if old == 0 {
			return 0, true
		}
		t.m.CASFailures++
		return 0, false
	}
	p := payloadReader{b: resp}
	prev := p.u16()
	swapped := p.u8() == 1
	if !swapped {
		t.m.CASFailures++
	}
	return prev, swapped
}

func (t *Transport) FAA(a transport.Addr, delta uint64) uint64 {
	t.m.Atomics++
	t.payload = appendU64(appendU64(t.payload[:0], uint64(a)), delta)
	resp, ok := t.request(a.MS(), opFAA, t.payload)
	if !ok {
		return 0
	}
	p := payloadReader{b: resp}
	return p.u64()
}

func (t *Transport) GrowChunk(ms uint16) uint64 {
	t.m.RPCs++
	resp, ok := t.request(ms, opGrow, nil)
	if !ok {
		return 0
	}
	p := payloadReader{b: resp}
	return p.u64()
}

// --- clock and topology ----------------------------------------------------

// Now returns cluster time: this process's monotonic clock shifted onto the
// timeline anchored at memory server 0's Ping epoch, so lease stamps are
// comparable across client processes.
func (t *Transport) Now() int64      { return nowNS() + t.cl.clockOff.Load() }
func (t *Transport) Step(int64)      {}
func (t *Transport) AdvanceTo(int64) {}

func (t *Transport) CSID() uint16 { return t.cs }
func (t *Transport) Epoch() int64 { return 0 }
func (t *Transport) Alive() bool  { return true }
func (t *Transport) CheckAlive()  {}

func (t *Transport) NumMS() int           { return len(t.cl.endpoints) }
func (t *Transport) MSAlive(ms int) bool  { return !t.cl.isDead(ms) }
func (t *Transport) MSUsable(ms int) bool { return !t.cl.isDead(ms) }

func (t *Transport) Metrics() *transport.Metrics { return &t.m }

func (t *Transport) Timing() transport.Timing {
	// Real clocks: no virtual cost constants. A zero WraparoundGuardNS
	// disables §4.4's wraparound heuristic (a real clock never re-reads the
	// same 4-bit version within a wrap window); the lease is a real
	// duration.
	return transport.Timing{LeaseNS: int64(200 * time.Millisecond)}
}
