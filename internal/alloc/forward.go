package alloc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sherman/internal/rdma"
)

// ChunkID names one fixed-length chunk of a memory server's host memory —
// the granularity of both allocation (§4.2.4) and live migration.
type ChunkID struct {
	MS    uint16
	Index uint64
}

// ChunkOf returns the chunk holding the host-memory address a.
func ChunkOf(a rdma.Addr) ChunkID {
	return ChunkID{MS: a.MS(), Index: a.Off() / rdma.DefaultChunkSize}
}

// ChunkBase returns the address of the chunk's first byte.
func (c ChunkID) ChunkBase() rdma.Addr {
	return rdma.MakeAddr(c.MS, c.Index*rdma.DefaultChunkSize)
}

// Contains reports whether a lies inside the chunk.
func (c ChunkID) Contains(a rdma.Addr) bool {
	return !a.OnChip() && ChunkOf(a) == c
}

// MaxForwardHops bounds a forwarding chase: a chunk may be relocated many
// times over a cluster's life (migration, then failover of the target, ...),
// and each relocation adds at most one hop to the chase a reader performs
// after observing a dead node. The bound is a defensive cap on that chain —
// distinct from MaxReplicationFactor, which bounds copies of one chunk, not
// generations of relocation.
const MaxForwardHops = 8

// forwardEntry is one installed chunk relocation.
type forwardEntry struct {
	newBase rdma.Addr
	ownerCS int
	epoch   int64
}

// Forwarding is the cluster-wide chunk forwarding map of the live-migration
// protocol: while (and after) a chunk's nodes move from their home server
// to a fresh chunk elsewhere, an entry here redirects any address in the
// old chunk to the same offset in the new one. Traversals consult it only
// after observing a dead node, so a reader chases one hop per chunk
// generation. Entries are installed before the first node of a chunk is
// killed and stay installed for the life of the cluster — one small map
// entry per migrated chunk buys every late reference a resolution — except
// that entries owned by a crashed migrator are drained (DropDead) once a
// recovery sweep has repaired every parent pointer.
//
// The map is compute-side shared state (like the local lock tables), not
// fabric memory: it survives the crash of the installing compute server,
// whose identity each entry records so recovery can drain orphans.
type Forwarding struct {
	mu sync.RWMutex
	m  map[ChunkID]forwardEntry

	installed atomic.Int64
	dropped   atomic.Int64
}

// NewForwarding creates an empty forwarding map.
func NewForwarding() *Forwarding {
	return &Forwarding{m: make(map[ChunkID]forwardEntry)}
}

// Install publishes the relocation of chunk c to the chunk based at
// newBase, recorded as owned by compute server ownerCS at the given fault
// epoch. Must be called before the first node of c is killed. A chunk may
// only ever have one target — overwriting an entry would strand every
// reference to a first-generation original — so Install panics on a
// duplicate; migrate the stragglers of an already-forwarded chunk into its
// existing target via Reuse instead.
func (f *Forwarding) Install(c ChunkID, newBase rdma.Addr, ownerCS int, epoch int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if old, ok := f.m[c]; ok {
		panic(fmt.Sprintf("alloc: chunk (%d,%d) already forwarded to %v", c.MS, c.Index, old.newBase))
	}
	f.m[c] = forwardEntry{newBase: newBase, ownerCS: ownerCS, epoch: epoch}
	f.installed.Add(1)
}

// permanentOwner marks entries no compute server owns: failover promotions
// installed by the MS-death listener. They outlive every CS incarnation —
// the dead server's addresses stay resolvable for the life of the cluster —
// so DropDead never drains them.
const permanentOwner = -1

// InstallReplica publishes the failover of a dead server's chunk to its
// promoted replica, owned permanently. A chunk that already forwards
// somewhere (it was migrated off the dead server earlier) keeps its entry:
// the existing target holds the live data, the dead original only
// tombstones.
func (f *Forwarding) InstallReplica(c ChunkID, newBase rdma.Addr) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.m[c]; ok {
		return
	}
	f.m[c] = forwardEntry{newBase: newBase, ownerCS: permanentOwner}
	f.installed.Add(1)
}

// Reuse returns the installed target base of an already-forwarded chunk,
// re-stamping the entry's owner with the current migrator so a later crash
// of the original owner cannot drain an entry a live migration still
// relies on. ok=false means the chunk has no entry (first migration: grow
// a fresh target and Install). Source offsets are allocated monotonically
// and never recycled, so stragglers carved into the chunk after its first
// migration copy into untouched offsets of the same target chunk.
func (f *Forwarding) Reuse(c ChunkID, ownerCS int, epoch int64) (rdma.Addr, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.m[c]
	if !ok {
		return rdma.NilAddr, false
	}
	e.ownerCS, e.epoch = ownerCS, epoch
	f.m[c] = e
	return e.newBase, true
}

// Resolve maps an address in a migrated chunk to its relocated address
// (same offset within the new chunk). ok=false means the chunk has no
// forwarding entry — the address either never moved or its entry already
// drained (callers then re-traverse from the root).
func (f *Forwarding) Resolve(a rdma.Addr) (rdma.Addr, bool) {
	if a.OnChip() || a.IsNil() {
		return rdma.NilAddr, false
	}
	f.mu.RLock()
	e, ok := f.m[ChunkOf(a)]
	f.mu.RUnlock()
	if !ok {
		return rdma.NilAddr, false
	}
	return e.newBase.Add(a.Off() % rdma.DefaultChunkSize), true
}

// DropDead drains entries whose owning compute server is no longer at the
// recorded incarnation (it crashed mid-migration). The recovery sweep calls
// it after repairing every parent pointer, so nothing references the old
// addresses anymore. alive reports whether (cs, epoch) still names a live
// incarnation.
func (f *Forwarding) DropDead(alive func(cs int, epoch int64) bool) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for c, e := range f.m {
		if e.ownerCS == permanentOwner {
			continue
		}
		if !alive(e.ownerCS, e.epoch) {
			delete(f.m, c)
			n++
		}
	}
	f.dropped.Add(int64(n))
	return n
}

// Len returns the number of installed entries.
func (f *Forwarding) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.m)
}

// Installed and Dropped expose lifetime counters for stats and tests.
func (f *Forwarding) Installed() int64 { return f.installed.Load() }

// Dropped returns the number of entries removed so far.
func (f *Forwarding) Dropped() int64 { return f.dropped.Load() }
