package sim

import (
	"sync"

	"sherman/internal/transport"
)

// Crash is the panic value raised when a client thread of a failed compute
// server touches the fabric. The one-sided design makes the *client* the unit
// of failure (no memory-server CPU participates in the data path), so a
// compute-server crash is modeled as every one of its threads aborting at its
// next fabric verb: verbs issued before the crash point are fully applied,
// the crashing verb and everything after it have no effect. Higher layers
// (the session API, the bench harness) recover the panic at the thread
// boundary and surface a typed error.
//
// The type is shared with every other transport backend (an alias of
// transport.Crash), so crash recovery in the session layer works identically
// over a real network.
type Crash = transport.Crash

// IsCrash reports whether a recovered panic value is a compute-server crash.
func IsCrash(v any) (Crash, bool) {
	return transport.IsCrash(v)
}

// Faults is the deterministic fault injector of one fabric. All client
// threads consult it at every fabric verb; faults are armed by verb index or
// by virtual time, so a given schedule reproduces exactly on a
// single-threaded victim (and up to goroutine interleaving on a
// multi-threaded one).
//
// The zero-cost path (no fault armed, CS alive) is a single atomic-free
// mutex-guarded counter bump per verb; the simulator's verbs already
// serialize on resource mutexes far hotter than this one.
type Faults struct {
	mu        sync.Mutex
	cs        []csFault
	ms        []msFault
	msArmed   int // servers with an armed kill; keeps OnVerb's scan gated
	onDeath   []func(cs int, deathV int64)
	onMSDeath []func(ms int, deathV int64)
	onRestart []func(cs int)

	// lifecycle serializes a death (flag + listener sweep) against
	// restarts: without it, a restart racing an in-flight death sweep
	// could revive the server — and admit new-incarnation lock holders —
	// while the sweep is still orphaning slots it attributes to the dead
	// incarnation, letting it steal a live holder's lock.
	lifecycle sync.Mutex
}

// csFault is the fault state of one compute server.
type csFault struct {
	verbs     int64 // fabric verbs issued by this CS since creation
	killAtN   int64 // kill when verbs reaches this count (0 = disarmed)
	killAtV   int64 // kill at the first verb at/after this virtual time (0 = disarmed)
	dead      bool
	deathV    int64 // lease anchor: latest virtual time the CS could have issued a verb
	epoch     int64 // bumped by Restart; clients of older epochs stay dead
	degradeNS int64 // extra per-verb issue delay (degraded NIC)
	healAtV   int64 // partition: verbs before this virtual time stall until it
}

// msFault is the fault state of one memory server. Unlike a compute-server
// crash — which aborts the issuing threads — a memory-server death is
// silent on the client side: verbs targeting the dead server's memory
// simply stop taking effect (reads return zeros, writes and atomics are
// discarded), which is exactly what a one-sided client observes when the
// remote NIC vanishes. Death takes effect at verb granularity: the verb
// whose issue triggers an armed kill already sees the server dead.
type msFault struct {
	dead     bool
	deathV   int64 // latest virtual time any verb had reached when it died
	killAtCS int   // armed verb-indexed kill: trigger on this CS's counter
	killAtN  int64 // ... when it reaches this count (0 = disarmed)
	killAtV  int64 // kill at the first verb (any CS) at/after this time (0 = disarmed)
}

func (s *msFault) armed() bool { return s.killAtN != 0 || s.killAtV != 0 }

// NewFaults creates the injector for numCS compute servers, with no faults
// armed.
func NewFaults(numCS int) *Faults {
	return &Faults{cs: make([]csFault, numCS)}
}

// ensureMS grows the memory-server table to cover ms. Callers hold f.mu.
// The fabric adds servers dynamically (scale-out), so the table grows
// lazily rather than being sized at creation.
func (f *Faults) ensureMS(ms int) *msFault {
	for len(f.ms) <= ms {
		f.ms = append(f.ms, msFault{})
	}
	return &f.ms[ms]
}

// OnDeath registers a listener invoked synchronously (on the crashing
// thread, before it unwinds) when a compute server dies. Lock managers use
// it to mark orphaned lock slots and wake doomed waiters.
func (f *Faults) OnDeath(fn func(cs int, deathV int64)) {
	f.mu.Lock()
	f.onDeath = append(f.onDeath, fn)
	f.mu.Unlock()
}

// OnRestart registers a listener invoked when a compute server restarts.
func (f *Faults) OnRestart(fn func(cs int)) {
	f.mu.Lock()
	f.onRestart = append(f.onRestart, fn)
	f.mu.Unlock()
}

// KillAtVerb arms a crash at the CS's n-th fabric verb counted from now
// (n >= 1: the very next verb). The property tests sweep n across every verb
// of an operation.
func (f *Faults) KillAtVerb(cs int, n int64) {
	f.mu.Lock()
	f.cs[cs].killAtN = f.cs[cs].verbs + n
	f.mu.Unlock()
}

// KillAtTime arms a crash at the CS's first fabric verb at or after virtual
// time v. The fault benchmark uses it to land kills mid-window.
func (f *Faults) KillAtTime(cs int, v int64) {
	f.mu.Lock()
	f.cs[cs].killAtV = v
	f.mu.Unlock()
}

// Kill fails the CS immediately: its threads abort at their next fabric
// verb. nowV seeds the lease anchor (use the caller's best bound on the CS's
// clocks; the injector keeps the max of it and every verb time it has seen).
// Kill returns only after the death listeners (the lock managers' orphan
// sweeps) have completed.
func (f *Faults) Kill(cs int, nowV int64) {
	f.kill(cs, -1, nowV)
}

// kill marks the CS dead and runs the death listeners under the lifecycle
// lock. epoch >= 0 restricts the kill to that incarnation (armed kills must
// not fire on a restarted server they raced); -1 kills unconditionally.
func (f *Faults) kill(cs int, epoch int64, nowV int64) {
	f.lifecycle.Lock()
	defer f.lifecycle.Unlock()
	f.mu.Lock()
	s := &f.cs[cs]
	if s.dead || (epoch >= 0 && s.epoch != epoch) {
		f.mu.Unlock()
		return
	}
	s.dead = true
	s.killAtN, s.killAtV = 0, 0
	if nowV > s.deathV {
		s.deathV = nowV
	}
	deathV := s.deathV
	listeners := f.onDeath // header copy; registration appends never mutate it
	f.mu.Unlock()
	for _, fn := range listeners {
		fn(cs, deathV)
	}
}

// OnMSDeath registers a listener invoked synchronously when a memory server
// dies, before the triggering verb (if any) proceeds. The fabric uses the
// first slot to gate the dead server's memory; the cluster layer promotes
// replicas. Listeners run in registration order.
func (f *Faults) OnMSDeath(fn func(ms int, deathV int64)) {
	f.mu.Lock()
	f.onMSDeath = append(f.onMSDeath, fn)
	f.mu.Unlock()
}

// KillMS fails memory server ms immediately: every subsequent verb touching
// its memory is a no-op (reads zero-fill, writes and atomics discard).
// Returns only after the death listeners (memory gating, replica
// promotion) have completed.
func (f *Faults) KillMS(ms int, nowV int64) {
	f.killMS(ms, nowV)
}

// KillMSAtCSVerb arms a kill of memory server ms at compute server cs's
// n-th fabric verb counted from now (n >= 1: the very next verb). The verb
// that trips the arm already observes the server dead, so the property
// tests sweep n across every verb of an operation to probe each
// intermediate state.
func (f *Faults) KillMSAtCSVerb(ms, cs int, n int64) {
	f.mu.Lock()
	s := f.ensureMS(ms)
	if !s.armed() && !s.dead {
		f.msArmed++
	}
	s.killAtCS, s.killAtN = cs, f.cs[cs].verbs+n
	f.mu.Unlock()
}

// KillMSAtTime arms a kill of memory server ms at the first fabric verb
// (any compute server's) at or after virtual time v. The replica benchmark
// uses it to land a memory-server death mid-window.
func (f *Faults) KillMSAtTime(ms int, v int64) {
	f.mu.Lock()
	s := f.ensureMS(ms)
	if !s.armed() && !s.dead {
		f.msArmed++
	}
	s.killAtV = v
	f.mu.Unlock()
}

// killMS marks the server dead and runs the MS-death listeners under the
// lifecycle lock, serialized against CS death sweeps and restarts so
// promotion never interleaves with an orphan sweep.
func (f *Faults) killMS(ms int, nowV int64) {
	f.lifecycle.Lock()
	defer f.lifecycle.Unlock()
	f.mu.Lock()
	s := f.ensureMS(ms)
	if s.dead {
		f.mu.Unlock()
		return
	}
	if s.armed() {
		f.msArmed--
	}
	s.dead = true
	s.killAtCS, s.killAtN, s.killAtV = 0, 0, 0
	if nowV > s.deathV {
		s.deathV = nowV
	}
	deathV := s.deathV
	listeners := f.onMSDeath // header copy; registration appends never mutate it
	f.mu.Unlock()
	for _, fn := range listeners {
		fn(ms, deathV)
	}
}

// MSAlive reports whether memory server ms is live. Servers beyond the
// table (never killed) are live.
func (f *Faults) MSAlive(ms int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ms < 0 || ms >= len(f.ms) {
		return true
	}
	return !f.ms[ms].dead
}

// MSDeathTime returns the dead server's death anchor — the latest virtual
// time any verb had reached when it died (0 if alive).
func (f *Faults) MSDeathTime(ms int) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ms < 0 || ms >= len(f.ms) || !f.ms[ms].dead {
		return 0
	}
	return f.ms[ms].deathV
}

// Restart revives the CS under a new epoch. Clients created before the
// restart stay dead (their epoch no longer matches); the caller creates
// fresh ones. Restart listeners (lock managers resetting the CS's local
// tables) run synchronously, and the lifecycle lock orders the whole
// restart after any in-flight death sweep — no new-incarnation client can
// acquire anything while a sweep still attributes the server's locks to
// the dead incarnation.
func (f *Faults) Restart(cs int) {
	f.lifecycle.Lock()
	defer f.lifecycle.Unlock()
	f.mu.Lock()
	s := &f.cs[cs]
	s.dead = false
	s.deathV = 0
	s.killAtN, s.killAtV = 0, 0
	s.degradeNS, s.healAtV = 0, 0
	s.epoch++
	listeners := f.onRestart // header copy
	f.mu.Unlock()
	for _, fn := range listeners {
		fn(cs)
	}
}

// Degrade adds extraNS of issue delay to every subsequent verb of the CS — a
// NIC running hot or a flaky link retransmitting.
func (f *Faults) Degrade(cs int, extraNS int64) {
	f.mu.Lock()
	f.cs[cs].degradeNS = extraNS
	f.mu.Unlock()
}

// Partition stalls every verb the CS issues before virtual time healV until
// that time — a transient network partition that heals.
func (f *Faults) Partition(cs int, healV int64) {
	f.mu.Lock()
	f.cs[cs].healAtV = healV
	f.mu.Unlock()
}

// Epoch returns the CS's current incarnation.
func (f *Faults) Epoch(cs int) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cs[cs].epoch
}

// Dead reports whether the CS is currently failed.
func (f *Faults) Dead(cs int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cs[cs].dead
}

// DeathTime returns the failed CS's lease anchor — the latest virtual time
// at which it could have issued a verb (0 if alive).
func (f *Faults) DeathTime(cs int) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.cs[cs].dead {
		return 0
	}
	return f.cs[cs].deathV
}

// Alive reports whether a client of the given epoch on cs may issue verbs.
func (f *Faults) Alive(cs int, epoch int64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := &f.cs[cs]
	return !s.dead && s.epoch == epoch
}

// Verbs returns the CS's fabric-verb count (for arming verb-indexed kills
// relative to the present).
func (f *Faults) Verbs(cs int) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cs[cs].verbs
}

// LatestVerbV returns the latest virtual time any compute server has
// issued a verb at — a cluster-wide clock bound. Recovery anchors fresh
// client clocks here so measured recovery latency excludes catch-up
// through prior virtual activity.
func (f *Faults) LatestVerbV() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var max int64
	for i := range f.cs {
		if f.cs[i].deathV > max {
			max = f.cs[i].deathV
		}
	}
	return max
}

// OnVerb accounts one fabric verb issued by a client of the given epoch at
// virtual time nowV. It returns the virtual time the verb may start (>= nowV
// under partition) plus any degradation delay; ok=false means the client is
// dead (stale epoch, killed, or this very verb triggered an armed kill) and
// must abort by panicking with Crash — the verb has no effect.
func (f *Faults) OnVerb(cs int, epoch int64, nowV int64) (startV, delayNS int64, ok bool) {
	f.mu.Lock()
	s := &f.cs[cs]
	if s.dead || s.epoch != epoch {
		f.mu.Unlock()
		return 0, 0, false
	}
	s.verbs++
	if nowV > s.deathV {
		s.deathV = nowV // track the lease anchor while alive
	}
	if (s.killAtN != 0 && s.verbs >= s.killAtN) || (s.killAtV != 0 && nowV >= s.killAtV) {
		f.mu.Unlock()
		// The sweep runs under the lifecycle lock, pinned to this
		// incarnation (a racing Restart makes it a no-op; the thread still
		// aborts — its epoch is stale either way).
		f.kill(cs, epoch, nowV)
		return 0, 0, false
	}
	startV = nowV
	if s.healAtV > startV {
		startV = s.healAtV
	}
	delayNS = s.degradeNS
	var victims [4]int
	nv := 0
	if f.msArmed > 0 {
		// An armed memory-server kill trips on the verb that reaches its
		// trigger — this verb then already observes the server dead.
		for i := range f.ms {
			m := &f.ms[i]
			if m.dead || !m.armed() {
				continue
			}
			if (m.killAtN != 0 && m.killAtCS == cs && f.cs[cs].verbs >= m.killAtN) ||
				(m.killAtV != 0 && nowV >= m.killAtV) {
				if nv < len(victims) {
					victims[nv] = i
					nv++
				}
			}
		}
	}
	f.mu.Unlock()
	for i := 0; i < nv; i++ {
		// Unlike a CS crash, the issuing client survives: the verb proceeds
		// against the now-dead server and simply has no effect there.
		f.killMS(victims[i], nowV)
	}
	return startV, delayNS, true
}
