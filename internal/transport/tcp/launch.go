package tcp

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

// Signal delivers sig to server ms's process — SIGSTOP stalls it without
// closing its sockets (the silent-death case heartbeats must catch),
// SIGCONT resumes it.
func (ls *LocalServers) Signal(ms int, sig os.Signal) error {
	if ms < 0 || ms >= len(ls.procs) || ls.procs[ms].Process == nil {
		return fmt.Errorf("tcp: no server process %d", ms)
	}
	return ls.procs[ms].Process.Signal(sig)
}

// Kill SIGKILLs server ms's process — the real-world analogue of the
// simulator's KillMS, taking effect mid-doorbell if one is in flight. The
// process is reaped so it does not linger as a zombie; Stop remains safe to
// call afterwards.
func (ls *LocalServers) Kill(ms int) error {
	if ms < 0 || ms >= len(ls.procs) || ls.procs[ms].Process == nil {
		return fmt.Errorf("tcp: no server process %d", ms)
	}
	if err := ls.procs[ms].Process.Kill(); err != nil {
		return err
	}
	waited := make(chan struct{})
	go func(c *exec.Cmd) { c.Wait(); close(waited) }(ls.procs[ms])
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		return fmt.Errorf("tcp: server %d did not exit after SIGKILL", ms)
	}
	return nil
}

// LocalServers is a set of shermand processes launched on loopback for a
// local cluster (the README's 2-process quickstart, the differential
// oracle, the tcp bench experiment).
type LocalServers struct {
	// Endpoints are the servers' listen addresses, index = memory server id.
	Endpoints []string

	procs []*exec.Cmd
	dir   string
}

// LaunchLocal builds cmd/shermand (with the module's own toolchain — no
// binaries are shipped) and spawns n memory-server processes on loopback
// ports. Each prints "LISTEN <addr>" once bound; LaunchLocal returns when
// all n are accepting. Call Stop to tear the processes down.
func LaunchLocal(n int) (*LocalServers, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tcp: need at least one server")
	}
	dir, err := os.MkdirTemp("", "shermand")
	if err != nil {
		return nil, err
	}
	ls := &LocalServers{dir: dir}
	bin := filepath.Join(dir, "shermand")
	build := exec.Command("go", "build", "-o", bin, "sherman/cmd/shermand")
	if out, err := build.CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("tcp: building shermand: %v\n%s", err, out)
	}
	for i := 0; i < n; i++ {
		cmd := exec.Command(bin, "-listen", "127.0.0.1:0")
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			ls.Stop()
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			ls.Stop()
			return nil, fmt.Errorf("tcp: starting shermand %d: %w", i, err)
		}
		ls.procs = append(ls.procs, cmd)
		line, err := bufio.NewReader(stdout).ReadString('\n')
		if err != nil {
			ls.Stop()
			return nil, fmt.Errorf("tcp: shermand %d died before binding: %w", i, err)
		}
		addr, ok := strings.CutPrefix(strings.TrimSpace(line), "LISTEN ")
		if !ok {
			ls.Stop()
			return nil, fmt.Errorf("tcp: unexpected shermand %d banner %q", i, line)
		}
		ls.Endpoints = append(ls.Endpoints, addr)
	}
	return ls, nil
}

// Stop kills every server process and removes the scratch directory. Safe
// to call more than once and on a partially-launched set.
func (ls *LocalServers) Stop() {
	for _, p := range ls.procs {
		if p.Process != nil {
			p.Process.Kill()
		}
	}
	for _, p := range ls.procs {
		if p.Process != nil {
			waited := make(chan struct{})
			go func(c *exec.Cmd) { c.Wait(); close(waited) }(p)
			select {
			case <-waited:
			case <-time.After(5 * time.Second):
			}
		}
	}
	ls.procs = nil
	if ls.dir != "" {
		os.RemoveAll(ls.dir)
		ls.dir = ""
	}
}
