package core

import (
	"errors"

	"sherman/internal/alloc"
	"sherman/internal/cluster"
	"sherman/internal/layout"
	"sherman/internal/rdma"
)

// This file is the tree side of live chunk migration (internal/migrate is
// the orchestration engine on top). A chunk migrates node by node under the
// ordinary HOCL node locks:
//
//  1. The whole chunk's forwarding entry is installed first (old chunk →
//     fresh chunk on the target server, offsets preserved), so a reader that
//     observes any killed node can chase to its copy in one hop.
//  2. MoveNode locks the node, writes its image to the target address, and
//     kills the original in the same combined doorbell that releases the
//     lock — the kill write is the commit point: before it, readers and
//     writers use the original; after it, they observe a dead node, consult
//     the forwarding map, and land on the copy.
//  3. Repoint swings the parent's child pointer (or the superblock root
//     pointer) to the new address through the ordinary locked write path, so
//     steady-state traversals stop paying the forwarding hop.
//  4. The engine invalidates the compute-side index/top caches. The
//     forwarding entry stays installed — one map entry per migrated chunk —
//     so references still in flight, and the stale sibling pointers of the
//     chunk's left neighbors, keep resolving no matter how late they are
//     consulted (old addresses stay dead forever — chunks are never
//     reused). Entries of a migration whose owning compute server crashed
//     are drained by the recovery sweep once it has repaired every parent
//     pointer (DrainDeadForwarding).
//
// Crash safety: a migrating compute server can die between any two verbs.
// Before the kill write the original is intact (its lock reclaims by lease
// expiry, like any crashed writer's); after it the forwarding entry — which
// is compute-side shared state that survives the crash — keeps the node
// reachable in one hop until the recovery sweep repairs the parent pointer
// and drains the entry (see recover.go).

// ErrMoved reports that the node at a migration source address was already
// dead — concurrently migrated, or freed — so there is nothing to move; the
// node-I/O layer's retry on a forwarded address is the read-side analogue.
var ErrMoved = errors.New("core: node moved")

// ErrLostTarget reports that a migration target chunk lost its memory server
// before the node copy became durable; the original stays live at its source
// and the engine skips (or re-plans) the move.
var ErrLostTarget = errors.New("core: migration target lost its server")

// chase resolves an address that turned out dead through the cluster's
// forwarding map: ok=true means the node migrated and now lives at the
// returned address (same offset in the relocated chunk). A traversal
// chases one hop per chunk generation — entries are installed before the
// first kill of a chunk, so the copy is always reachable, and steady-state
// repointing makes even the single hop transient.
func (h *Handle) chase(addr rdma.Addr) (rdma.Addr, bool) {
	fwd, ok := h.fwd.Resolve(addr)
	if !ok {
		return rdma.NilAddr, false
	}
	h.C.Step(h.tm.LocalStepNS)
	h.Rec.ForwardHops++
	return fwd, true
}

// MovedNode describes a node MoveNode relocated, with what Repoint needs.
type MovedNode struct {
	Level      uint8
	LowerFence uint64
}

// MoveNode relocates the live node at src to dst: lock, validated read,
// one-sided copy to dst, then kill-and-release in one combined doorbell.
// The caller must have installed the chunk's forwarding entry first, and
// owns dst (a fresh, never-referenced address). Returns ErrMoved when src
// is already dead.
func (h *Handle) MoveNode(src, dst rdma.Addr) (MovedNode, error) {
	g := h.t.locks.Lock(h.C, src)
	if g.Reclaimed() {
		h.Rec.Reclaims++
		if h.cache.InvalidateAddr(src) {
			h.Rec.CacheInvalidations++
		}
	}
	n, _ := h.readNode(src, h.nodeBuf)
	if !n.Alive() {
		h.unlockWrite(g, nil)
		return MovedNode{}, ErrMoved
	}
	mv := MovedNode{Level: n.Level(), LowerFence: n.LowerFence()}
	// The copy must be durable at dst before the original dies; dst is
	// unreachable until then (no forwarding consumer sees a live original).
	// Under replication the copy mirrors to dst's chunk replicas too, so the
	// relocated node is failover-covered from its first instant.
	h.writeMirrored(dst, n.B)
	if h.takeRedo() {
		// dst's chunk was re-keyed by a failover mid-copy: the image never
		// became durable, so the original must stay alive and authoritative.
		h.unlockWrite(g, nil)
		return MovedNode{}, ErrLostTarget
	}
	if h.t.cfg.Format.Mode == layout.Checksum {
		// A checksum node must stay internally consistent even when dead,
		// or lock-free readers would spin on the torn image instead of
		// noticing the free bit: kill by rewriting the whole node.
		n.SetAlive(false)
		n.UpdateChecksum()
		h.unlockWrite(g, []rdma.WriteOp{{Addr: src, Data: n.B}})
	} else {
		h.unlockWrite(g, []rdma.WriteOp{{Addr: src.Add(layout.AliveOffset), Data: []byte{0}}})
	}
	return mv, nil
}

// maxRepointRetries bounds how often Repoint re-resolves the parent under
// racing splits before giving up; an unrepointed parent only costs readers
// the forwarding hop (and is repaired by the recovery sweep if the entry
// must drain).
const maxRepointRetries = 8

// Repoint swings the pointer referencing the moved node from old to new:
// the superblock root pointer when the node was the root, otherwise the
// covering parent's child slot, through the ordinary locked write path.
// Returns true when the reference now names new (even if another thread got
// there first).
func (h *Handle) Repoint(mv MovedNode, old, new rdma.Addr) bool {
	for attempt := 0; attempt < maxRepointRetries; attempt++ {
		// Read the superblock pointer raw — refreshRoot would chase the
		// forwarding hop and hide exactly the staleness we came to repair.
		sbRoot, _ := cluster.ReadRoot(h.C)
		if sbRoot == old {
			if cluster.CASRoot(h.C, old, new, mv.Level) {
				h.cache.SetRoot(new, mv.Level)
				return true
			}
			continue // root raced (grew, or someone repointed already)
		}
		if sbRoot == new {
			return true
		}
		_, rootLvl := h.refreshRoot()
		if rootLvl <= mv.Level {
			// The tree shrank below the node's level — only transiently
			// possible while the root swings; retry.
			continue
		}
		switch h.repointChild(mv.Level+1, mv.LowerFence, old, new) {
		case repointDone:
			return true
		case repointStale:
			continue
		case repointLost:
			// The covering parent references neither old nor new: a racing
			// structural change owns this edge now. Leave it to forwarding
			// and the recovery sweep.
			return false
		}
	}
	return false
}

// repointOutcome is repointChild's tri-state result.
type repointOutcome int

const (
	repointDone  repointOutcome = iota // parent now references new
	repointStale                       // steering went stale; re-resolve
	repointLost                        // parent references something else
)

// repointChild locks the internal node at parentLevel covering key and
// swaps its child pointer old → new.
func (h *Handle) repointChild(parentLevel uint8, key uint64, old, new rdma.Addr) repointOutcome {
	addr, ce := h.locateInternal(key, parentLevel)
	r, ok := h.seek(key, parentLevel, intentWrite, addr, ce, h.nodeBuf, nil, nil)
	if !ok {
		return repointStale
	}
	in := layout.AsInternal(r.n)
	h.C.Step(h.tm.LocalStepNS)
	child, idx := in.ChildFor(key)
	switch child {
	case old:
		in.SetChild(idx, new)
		if h.t.cfg.Format.Mode == layout.TwoLevel {
			in.BumpNodeVersions()
		} else {
			in.UpdateChecksum()
		}
		h.unlockWrite(r.g, []rdma.WriteOp{{Addr: r.addr, Data: in.B}})
		if h.takeRedo() {
			// The parent's chunk was re-keyed mid-commit: re-resolve and
			// retry at the promoted parent.
			return repointStale
		}
		h.cacheNode(r.addr, in.Node)
		return repointDone
	case new:
		h.unlockWrite(r.g, nil)
		return repointDone
	default:
		h.unlockWrite(r.g, nil)
		return repointLost
	}
}

// ChunkNode is one reachable node CollectChunk found inside a chunk.
type ChunkNode struct {
	Addr       rdma.Addr
	Level      uint8
	LowerFence uint64
}

// CollectChunk is CollectChunks for a single chunk.
func (h *Handle) CollectChunk(ck alloc.ChunkID) []ChunkNode {
	return h.CollectChunks(map[alloc.ChunkID]bool{ck: true})[ck]
}

// CollectChunks walks the tree once with timed reads and buckets every
// parent-referenced node homed in one of the requested chunks, parents
// before children within each bucket (so migrating in order repoints
// through already-moved ancestors naturally). One walk serves a whole
// migration plan — the walk costs a read per reachable node, so doing it
// per chunk would make a plan quadratic in tree size.
//
// Only nodes reachable through parent edges are collected — deliberately
// not fresh split halves reachable only via a sibling pointer: their
// writer's insertParent is still in flight holding the original address,
// and migrating such a node would let that racing insert install a pointer
// to the killed original. Once the separator lands (or a recovery sweep
// completes the split), the next collection pass sees the node — drains
// loop until a walk comes back empty.
func (h *Handle) CollectChunks(cks map[alloc.ChunkID]bool) map[alloc.ChunkID][]ChunkNode {
	w := &chunkWalk{
		h:    h,
		cks:  cks,
		seen: make(map[rdma.Addr]bool),
		out:  make(map[alloc.ChunkID][]ChunkNode, len(cks)),
		buf:  make([]byte, h.t.cfg.Format.NodeSize),
	}
	root, _ := h.refreshRoot()
	w.visit(root)
	return w.out
}

// chunkWalk carries the collection state; one read buffer serves the whole
// walk (children are copied out before recursing).
type chunkWalk struct {
	h    *Handle
	cks  map[alloc.ChunkID]bool
	seen map[rdma.Addr]bool
	out  map[alloc.ChunkID][]ChunkNode
	buf  []byte
}

func (w *chunkWalk) visit(addr rdma.Addr) {
	if addr.IsNil() || w.seen[addr] {
		return
	}
	w.seen[addr] = true
	n, _ := w.h.readNode(addr, w.buf)
	if !n.Alive() {
		return
	}
	if ck := alloc.ChunkOf(addr); w.cks[ck] {
		w.out[ck] = append(w.out[ck], ChunkNode{Addr: addr, Level: n.Level(), LowerFence: n.LowerFence()})
	}
	if n.Level() == 0 {
		return
	}
	in := layout.AsInternal(n)
	children := make([]rdma.Addr, 0, in.Count()+1)
	children = append(children, in.Leftmost())
	for _, s := range in.Separators() {
		children = append(children, s.Child)
	}
	for _, c := range children {
		w.visit(c)
	}
}

// copyPaceStride is how many chunk slots CopyChunk copies between Pace
// callbacks, so a re-replication sweep inside a paced benchmark window keeps
// its clock inside the gate like any other worker.
const copyPaceStride = 64

// CopyChunk copies every node slot of chunk src onto the same offsets of the
// chunk at dstBase, and returns the number of non-empty slots copied. It is
// the bulk-copy half of re-replication: the caller registers dstBase's chunk
// as a mirror target of src first (so writes committed during the copy reach
// it as mirrors), then CopyChunk backfills everything older.
//
// Each slot is copied under its node lock — the same lock every writer holds
// while mirroring — so a slot's copy can never overwrite a fresher mirror
// with stale bytes. The scan is a raw grid walk at node-size strides rather
// than a tree walk: it also reaches freed nodes and fresh split halves that
// are only sibling-reachable (which CollectChunks deliberately skips), and a
// replica must replicate those bytes too. All-zero slots (never-carved tail
// of a partially filled chunk, or reads off a just-died source server, which
// zero-fill) are skipped, never written — so a racing source death degrades
// the copy to a no-op instead of clobbering mirrored data on the target.
func (h *Handle) CopyChunk(src alloc.ChunkID, dstBase rdma.Addr) int {
	nodeSize := h.t.cfg.Format.NodeSize
	base := src.ChunkBase()
	copied := 0
	for off, slot := uint64(0), 0; off+uint64(nodeSize) <= rdma.DefaultChunkSize; off, slot = off+uint64(nodeSize), slot+1 {
		if slot%copyPaceStride == 0 {
			if !h.t.cl.MSAlive(int(src.MS)) {
				break // source died; its failover owns the chunk now
			}
			if h.Pace != nil {
				h.Pace(h.C.Now())
			}
		}
		a := base.Add(off)
		g := h.t.locks.Lock(h.C, a)
		h.C.Read(a, h.nodeBuf)
		if !allZero(h.nodeBuf) {
			h.C.Write(dstBase.Add(off), h.nodeBuf)
			copied++
		}
		h.unlockWrite(g, nil)
	}
	return copied
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// Cluster exposes the tree's simulated cluster (fabric, fault injector,
// migration orchestration) to the migration engine and benchmarks. It
// returns nil on a real-network backend: fault injection and live
// migration are simulation features, so their callers are sim-only.
func (t *Tree) Cluster() *cluster.Cluster {
	cl, _ := t.cl.(*cluster.Cluster)
	return cl
}

// Backend exposes the tree's deployment interface.
func (t *Tree) Backend() Backend { return t.cl }

// InvalidateChunk purges every compute server's cache of entries located
// in — or steering into — the migrated chunk, so steady-state traversals
// stop resolving through addresses that just died. The per-chunk index
// makes each purge O(affected entries) — pinned top entries included — so
// migration no longer pays a predicate scan over the whole cache (or a
// wholesale top flush) per chunk. Returns the number of entries dropped.
func (t *Tree) InvalidateChunk(ck alloc.ChunkID) int {
	dropped := 0
	for _, ic := range t.caches {
		dropped += ic.InvalidateChunk(ck)
	}
	return dropped
}

// DrainDeadForwarding removes forwarding entries installed by compute
// servers that have since crashed. Call only after a complete recovery
// sweep: the sweep repaired every parent pointer, so nothing references the
// old addresses anymore.
func (t *Tree) DrainDeadForwarding() int {
	cl := t.Cluster()
	if cl == nil {
		return 0
	}
	return cl.Fwd.DropDead(cl.Faults().Alive)
}
