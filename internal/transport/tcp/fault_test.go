package tcp

import (
	"bytes"
	"syscall"
	"testing"
	"time"

	"sherman/internal/alloc"
	"sherman/internal/hocl"
	"sherman/internal/rdma"
	"sherman/internal/sim"
	"sherman/internal/transport"
)

// startServers runs n in-process memory servers on loopback and returns
// their endpoints. In-process servers exercise the full wire protocol
// without building cmd/shermand.
func startServers(t *testing.T, n int) []string {
	t.Helper()
	endpoints := make([]string, n)
	for i := 0; i < n; i++ {
		srv, err := NewServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve()
		t.Cleanup(srv.Close)
		endpoints[i] = srv.Addr()
	}
	return endpoints
}

// TestDeadVerbsMatchSimulator is the cross-backend contract test for dead
// memory (DESIGN.md §12): reads zero-fill, writes are discarded, and atomics
// fabricate their response from zeroed memory — a CAS expecting 0 appears to
// succeed so lock acquisition proceeds into its validating read, which
// observes the death. The same verb script runs against a simulated fabric
// and a TCP cluster with a server marked dead; every response must match.
func TestDeadVerbsMatchSimulator(t *testing.T) {
	type outcome struct {
		readZero             bool
		casZeroPrev, casPrev uint64
		casZeroOK, casOK     bool
		cas16Prev            uint16
		cas16ZeroOK, cas16OK bool
		faa                  uint64
	}

	script := func(c transport.Transport, base uint64, kill func()) outcome {
		a := transport.MakeAddr(1, base+64)
		c.Write(a, []byte{9, 9, 9, 9, 9, 9, 9, 9})
		kill()
		var o outcome
		buf := []byte{1, 2, 3, 4, 5, 6, 7, 8}
		c.Read(a, buf)
		o.readZero = bytes.Equal(buf, make([]byte, 8))
		o.casZeroPrev, o.casZeroOK = c.CAS(a, 0, 42) // expecting zero: fabricated success
		o.casPrev, o.casOK = c.CAS(a, 9, 42)         // expecting the old bytes: failure
		_, o.cas16ZeroOK = c.CAS16(transport.MakeOnChipAddr(1, 2), 0, 7)
		o.cas16Prev, o.cas16OK = c.CAS16(transport.MakeOnChipAddr(1, 2), 3, 7)
		o.faa = c.FAA(a, 5)
		c.Write(a, []byte{8, 8, 8, 8, 8, 8, 8, 8}) // discarded, must not panic
		return o
	}

	f := rdma.NewFabric(sim.DefaultParams(), 2, 1)
	simClient := f.NewClient(0)
	simOut := script(simClient, simClient.GrowChunk(1), func() {
		f.Faults.KillMS(1, 0)
	})

	c, err := NewCluster(startServers(t, 2), 1, Options{HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tr := c.NewTransport(0)
	defer tr.(*Transport).Close()
	tcpOut := script(tr, tr.GrowChunk(1), func() {
		c.MarkDead(1)
	})

	if simOut != tcpOut {
		t.Fatalf("dead-verb semantics diverge:\n  sim %+v\n  tcp %+v", simOut, tcpOut)
	}
	// Pin the contract itself, not just the agreement.
	if !tcpOut.readZero {
		t.Error("dead read did not zero-fill")
	}
	if !tcpOut.casZeroOK || tcpOut.casZeroPrev != 0 {
		t.Errorf("dead CAS(old=0) = %d,%v; want fabricated 0,true", tcpOut.casZeroPrev, tcpOut.casZeroOK)
	}
	if tcpOut.casOK || tcpOut.casPrev != 0 {
		t.Errorf("dead CAS(old=9) = %d,%v; want 0,false", tcpOut.casPrev, tcpOut.casOK)
	}
	if !tcpOut.cas16ZeroOK || tcpOut.cas16OK || tcpOut.cas16Prev != 0 {
		t.Errorf("dead CAS16 = (%d, zeroOK=%v, ok=%v); want 0, true, false",
			tcpOut.cas16Prev, tcpOut.cas16ZeroOK, tcpOut.cas16OK)
	}
	if tcpOut.faa != 0 {
		t.Errorf("dead FAA = %d, want 0", tcpOut.faa)
	}
}

// TestForwardingChaseTwoHops pins the RawRead forwarding chase across a
// chain of deaths: a chunk failed over from ms1 to ms2, then from ms2 to
// ms0, must resolve through two hops (the hop bound is MaxForwardHops, a
// constant that once was silently conflated with the replication-factor
// cap).
func TestForwardingChaseTwoHops(t *testing.T) {
	c, err := NewCluster(startServers(t, 3), 1, Options{HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tr := c.NewTransport(0)
	defer tr.(*Transport).Close()

	base1 := tr.GrowChunk(1)
	base2 := tr.GrowChunk(2)
	base0 := tr.GrowChunk(0)
	data := []byte("surviving copy on ms0")
	// Only the final holder has the bytes; the intermediates stay empty, as
	// after real promotions (the data moved by mirroring, not by the map).
	tr.Write(transport.MakeAddr(0, base0+128), data)

	a1 := transport.MakeAddr(1, base1+128)
	c.Fwd.InstallReplica(alloc.ChunkOf(a1), transport.MakeAddr(2, base2))
	c.Fwd.InstallReplica(alloc.ChunkOf(transport.MakeAddr(2, base2)), transport.MakeAddr(0, base0))
	c.MarkDead(1)
	c.MarkDead(2)

	buf := make([]byte, len(data))
	c.RawRead(a1, buf)
	if !bytes.Equal(buf, data) {
		t.Fatalf("RawRead through 2 hops = %q, want %q", buf, data)
	}
}

// TestLeaseReclaimRealClock exercises lease-expiry lock reclamation on the
// real clock: a client thread acquires a lock and vanishes without
// releasing; a second thread's acquisition must spin out the full lease
// (200ms of wall time) and then steal the word, reporting Reclaimed so the
// caller re-validates the protected object.
func TestLeaseReclaimRealClock(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a real 200ms lease")
	}
	c, err := NewCluster(startServers(t, 1), 2, Options{HeartbeatInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := c.NewLockManager(hocl.Config{Mode: hocl.Baseline()})

	dead := c.NewTransport(1)
	defer dead.(*Transport).Close()
	g := m.LockIdx(dead, 0, 3)
	if g.Reclaimed() {
		t.Fatal("first acquisition reclaimed")
	}
	// The holder "crashes": never unlocks, never pings again.

	tr := c.NewTransport(0)
	defer tr.(*Transport).Close()
	start := time.Now()
	g2 := m.LockIdx(tr, 0, 3)
	waited := time.Since(start)
	if !g2.Reclaimed() {
		t.Fatal("second acquisition did not report Reclaimed")
	}
	lease := time.Duration(tr.Timing().LeaseNS)
	if waited < lease/2 {
		t.Fatalf("stole after %v, before the %v lease could plausibly expire", waited, lease)
	}
	m.Unlock(tr, g2, nil, false)

	// A third acquisition after a clean release is an ordinary fast one.
	start = time.Now()
	g3 := m.LockIdx(tr, 0, 3)
	if g3.Reclaimed() || time.Since(start) > lease/2 {
		t.Fatalf("post-release acquisition: reclaimed=%v after %v", g3.Reclaimed(), time.Since(start))
	}
	m.Unlock(tr, g3, nil, false)
}

// TestHeartbeatDetectsSIGSTOP pins the failure mode that only a deadline
// can catch: a SIGSTOPped server keeps its sockets open (the kernel ACKs
// writes) but never answers, so death shows up as a heartbeat read timeout,
// not an I/O error. Spawns real shermand processes.
func TestHeartbeatDetectsSIGSTOP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and builds cmd/shermand")
	}
	ls, err := LaunchLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Stop()
	c, err := NewCluster(ls.Endpoints, 1, Options{
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := ls.Signal(1, syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}
	// SIGCONT before reaping: Stop's SIGKILL reaps stopped processes too,
	// but resuming keeps the teardown path uniform.
	defer ls.Signal(1, syscall.SIGCONT)

	deadline := time.Now().Add(5 * time.Second)
	for c.MSAlive(1) {
		if time.Now().After(deadline) {
			t.Fatal("membership service never declared the SIGSTOPped server dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !c.MSAlive(0) {
		t.Fatal("healthy server was declared dead")
	}
}
