// Replication: run a factor-2 cluster, kill a memory server mid-workload,
// watch every acknowledged write survive through the promoted replicas,
// then bring a replacement in and repair redundancy online.
//
// With ClusterConfig.ReplicationFactor set, every 8 MB data chunk keeps
// copies on distinct memory servers (DESIGN.md §12). Writes mirror onto the
// replicas over detached doorbells — the primary commit path pays nothing —
// and a server death promotes each of its chunks to its freshest complete
// replica before the kill even returns: zero lost acked writes, no dark
// window. Tree.ReReplicate then rebuilds the missing copies in the
// background, hottest chunks first, onto the coldest eligible server.
package main

import (
	"fmt"
	"log"

	"sherman"
)

func main() {
	cluster, err := sherman.NewCluster(sherman.ClusterConfig{
		MemoryServers:     3,
		ComputeServers:    2,
		MaxMemoryServers:  4, // room for the replacement server
		ReplicationFactor: 2, // every chunk: primary + one replica
	})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := cluster.CreateTree(sherman.DefaultTreeOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Bulkload stripes chunks across all three servers, each registered
	// with a replica on a different server before its first write.
	const n = 100_000
	kvs := make([]sherman.KV, n)
	for i := range kvs {
		kvs[i] = sherman.KV{Key: uint64(i + 1), Value: uint64(i)}
	}
	if err := tree.Bulkload(kvs); err != nil {
		log.Fatal(err)
	}
	rs := cluster.ReplicationStats()
	fmt.Printf("factor %d: %d chunks registered, %d under-replicated\n",
		rs.ReplicationFactor, rs.RegisteredChunks, rs.UnderReplicated)

	// A session acknowledges writes; each one was mirrored to its chunk's
	// replica before the primary commit doorbell.
	s, err := tree.SessionAt(0)
	if err != nil {
		log.Fatal(err)
	}
	for k := uint64(1); k <= 1000; k++ {
		s.Put(k, k*1000)
	}
	st := s.Stats()
	fmt.Printf("1000 puts mirrored as %d replica writes, max lag %.1f us virtual\n",
		st.ReplicaWrites, float64(st.ReplicaLagMaxNS)/1000)

	// Kill server 1. The failover is synchronous: by the time the call
	// returns, every chunk it hosted has been promoted to its replica and
	// the forwarding map redirects readers — no recovery step needed to
	// keep serving.
	if err := cluster.KillMemoryServer(1); err != nil {
		log.Fatal(err)
	}
	rs = cluster.ReplicationStats()
	fmt.Printf("killed MS 1: %d chunks failed over, %d replicas dropped, %d chunks lost\n",
		rs.Failovers, rs.DroppedReplicas, rs.LostChunks)
	if rs.LostChunks != 0 {
		log.Fatal("replication factor 2 must not lose chunks to one death")
	}

	// Every acked write reads back through the promoted replicas, and the
	// session keeps writing — new mirrors target the survivors.
	for k := uint64(1); k <= 1000; k++ {
		v, ok := s.Get(k)
		if !ok || v != k*1000 {
			log.Fatalf("acked write lost: key %d = (%d,%v)", k, v, ok)
		}
	}
	fmt.Println("all 1000 acked writes survived the death")
	s.Put(500, 42)
	if v, _ := s.Get(500); v != 42 {
		log.Fatal("post-failover write misread")
	}

	// The survivors are now the only copy of the failed-over chunks. Bring
	// a replacement server in and repair redundancy online — each sweep
	// backfills a bounded batch of the hottest under-replicated chunks
	// onto the coldest eligible server, safe under concurrent writes.
	if _, err := cluster.AddMemoryServer(); err != nil {
		log.Fatal(err)
	}
	var repaired, slots int
	var virtualNS int64
	for cluster.ReplicationStats().UnderReplicated > 0 {
		st, err := tree.ReReplicate(0)
		if err != nil {
			log.Fatal(err)
		}
		repaired += st.ChunksRepaired
		slots += st.SlotsCopied
		virtualNS += st.VirtualNS
	}
	fmt.Printf("re-replicated %d chunks (%d slots) in %.1f ms virtual\n",
		repaired, slots, float64(virtualNS)/1e6)

	rs = cluster.ReplicationStats()
	fmt.Printf("steady again: %d chunks registered, %d under-replicated, %d promotions total\n",
		rs.RegisteredChunks, rs.UnderReplicated, rs.Promotions)
	if err := tree.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tree validates: full redundancy restored")
}
