package core_test

import (
	"math/rand/v2"
	"sync"
	"testing"

	"sherman/internal/cluster"
	core "sherman/internal/core"
	"sherman/internal/layout"
	"sherman/internal/testutil"
)

// batchConfigsUnderTest spans the ablation axes the batch pipeline must be
// equivalent under: both node layouts crossed with command combination on
// and off (batching must not depend on combining being available).
func batchConfigsUnderTest() []core.Config {
	var out []core.Config
	for _, mode := range []layout.Mode{layout.TwoLevel, layout.Checksum} {
		for _, combine := range []bool{true, false} {
			cfg := core.ShermanConfig()
			if mode == layout.Checksum {
				cfg = core.FGPlusConfig()
			}
			cfg.Format = testutil.SmallFormat(mode)
			cfg.Combine = combine
			out = append(out, cfg)
		}
	}
	return out
}

// TestBatchEquivalenceProperty checks, for deterministic seeds, that a random operation
// sequence applied through the batch API leaves the tree in a state
// observably equivalent to applying the same operations sequentially:
// same per-key answers along the way, same final contents, and a valid
// structure. Small leaves make every non-trivial batch straddle splits,
// and the delete mix targets absent keys too.
func TestBatchEquivalenceProperty(t *testing.T) {
	for _, cfg := range batchConfigsUnderTest() {
		cfg := cfg
		testutil.RunSeeds(t, 12, func(t *testing.T, seed uint64) {
			rng := testutil.RNG(seed)
			seqTree := core.New(cluster.New(cluster.Config{NumMS: 2, NumCS: 1}), cfg)
			batTree := core.New(cluster.New(cluster.Config{NumMS: 2, NumCS: 1}), cfg)
			seqH := seqTree.NewHandle(0, 0)
			batH := batTree.NewHandle(0, 0)

			const keySpace = 400
			for round := 0; round < 6; round++ {
				n := int(rng.Uint64N(60)) + 1
				switch rng.Uint64N(3) {
				case 0: // puts, with duplicate keys (last wins)
					kvs := make([]layout.KV, n)
					for i := range kvs {
						kvs[i] = layout.KV{Key: rng.Uint64N(keySpace) + 1, Value: rng.Uint64() | 1}
					}
					for _, kv := range kvs {
						seqH.Insert(kv.Key, kv.Value)
					}
					batH.InsertBatch(kvs)
				case 1: // deletes, including absent keys
					keys := make([]uint64, n)
					for i := range keys {
						keys[i] = rng.Uint64N(keySpace) + 1
					}
					want := make([]bool, n)
					for i, k := range keys {
						want[i] = seqH.Delete(k)
					}
					got := batH.DeleteBatch(keys)
					for i := range keys {
						if got[i] != want[i] {
							t.Fatalf("%s seed %d: DeleteBatch[%d] key %d = %v, sequential %v",
								cfg.Name(), seed, i, keys[i], got[i], want[i])
						}
					}
				default: // lookups
					keys := make([]uint64, n)
					for i := range keys {
						keys[i] = rng.Uint64N(keySpace) + 1
					}
					vals, found := batH.LookupBatch(keys)
					for i, k := range keys {
						wv, wok := seqH.Lookup(k)
						if found[i] != wok || (wok && vals[i] != wv) {
							t.Fatalf("%s seed %d: GetBatch[%d] key %d = (%d,%v), sequential (%d,%v)",
								cfg.Name(), seed, i, k, vals[i], found[i], wv, wok)
						}
					}
				}
			}
			// Final contents must match key by key.
			for k := uint64(1); k <= keySpace; k++ {
				wv, wok := seqH.Lookup(k)
				gv, gok := batH.Lookup(k)
				if wok != gok || (wok && wv != gv) {
					t.Fatalf("%s seed %d: final key %d = (%d,%v), sequential (%d,%v)",
						cfg.Name(), seed, k, gv, gok, wv, wok)
				}
			}
			if err := seqTree.Validate(); err != nil {
				t.Fatal(err)
			}
			if err := batTree.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBatchConcurrentChurnValidate drives concurrent batch churn — mixed
// PutBatch/DeleteBatch/GetBatch on per-thread stripes — then checks the
// structure with Validate and the contents against per-thread references.
func TestBatchConcurrentChurnValidate(t *testing.T) {
	for _, cfg := range batchConfigsUnderTest() {
		cl := testutil.NewCluster(t, 2, 2)
		tr := core.New(cl, cfg)
		const threads, rounds = 6, 40
		refs := make([]map[uint64]uint64, threads)

		var wg sync.WaitGroup
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				h := tr.NewHandle(th%2, th)
				rng := rand.New(rand.NewPCG(uint64(th)+1, 0xfeed))
				ref := make(map[uint64]uint64)
				base := uint64(th) * 1_000_000
				for r := 0; r < rounds; r++ {
					n := int(rng.Uint64N(50)) + 1
					switch rng.Uint64N(4) {
					case 0:
						keys := make([]uint64, n)
						for i := range keys {
							keys[i] = base + rng.Uint64N(600) + 1
						}
						found := h.DeleteBatch(keys)
						for i, k := range keys {
							if _, exists := ref[k]; exists != found[i] {
								t.Errorf("thread %d: DeleteBatch(%d) = %v, reference %v", th, k, found[i], exists)
								return
							}
							delete(ref, k)
						}
					case 1:
						keys := make([]uint64, n)
						for i := range keys {
							keys[i] = base + rng.Uint64N(600) + 1
						}
						vals, found := h.LookupBatch(keys)
						// Duplicate keys in one batch see the same state.
						for i, k := range keys {
							want, exists := ref[k]
							if found[i] != exists || (exists && vals[i] != want) {
								t.Errorf("thread %d: GetBatch(%d) = (%d,%v), reference (%d,%v)",
									th, k, vals[i], found[i], want, exists)
								return
							}
						}
					default:
						kvs := make([]layout.KV, n)
						for i := range kvs {
							kvs[i] = layout.KV{Key: base + rng.Uint64N(600) + 1, Value: rng.Uint64() | 1}
						}
						h.InsertBatch(kvs)
						for _, kv := range kvs {
							ref[kv.Key] = kv.Value
						}
					}
				}
				refs[th] = ref
			}(th)
		}
		wg.Wait()
		if t.Failed() {
			t.Fatalf("%s combine=%v: batch churn failures", cfg.Name(), cfg.Combine)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s combine=%v: validate after batch churn: %v", cfg.Name(), cfg.Combine, err)
		}
		h := tr.NewHandle(0, 99)
		for th, ref := range refs {
			for k, v := range ref {
				if got, ok := h.Lookup(k); !ok || got != v {
					t.Fatalf("%s: thread %d key %d = (%d,%v), want (%d,true)", cfg.Name(), th, k, got, ok, v)
				}
			}
		}
	}
}

// TestBatchGuardReuseChains forces lock-slot aliasing with a single-slot
// GLT on a single memory server: every leaf shares one lock, so a batch
// walking many leaves must chain under the held guard instead of paying
// release + re-acquire per leaf — and stay correct doing so.
func TestBatchGuardReuseChains(t *testing.T) {
	for _, cfg := range batchConfigsUnderTest() {
		cfg.LocksPerMS = 1
		cl := testutil.NewCluster(t, 1, 1)
		tr := core.New(cl, cfg)
		h := tr.NewHandle(0, 0)

		const n = 500
		kvs := make([]layout.KV, n)
		for i := range kvs {
			kvs[i] = layout.KV{Key: uint64(i + 1), Value: uint64(i + 1000)}
		}
		h.InsertBatch(kvs)
		// A fresh fill ends every group in a split (which releases the
		// guard); an update pass over the now-populated tree ends groups at
		// fence boundaries, where the single-slot GLT forces chaining.
		for i := range kvs {
			kvs[i].Value = kvs[i].Key + 2000
		}
		h.InsertBatch(kvs)
		if h.Rec.BatchChainedLeaves == 0 {
			t.Errorf("%s combine=%v: no chained leaves despite single-slot GLT", cfg.Name(), cfg.Combine)
		}
		for k := uint64(1); k <= n; k++ {
			if v, ok := h.Lookup(k); !ok || v != k+2000 {
				t.Fatalf("%s: Lookup(%d) = (%d,%v), want (%d,true)", cfg.Name(), k, v, ok, k+2000)
			}
		}
		// Delete half through the chained path too.
		var del []uint64
		for k := uint64(2); k <= n; k += 2 {
			del = append(del, k)
		}
		found := h.DeleteBatch(del)
		for i, ok := range found {
			if !ok {
				t.Fatalf("%s: DeleteBatch missed present key %d", cfg.Name(), del[i])
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: validate: %v", cfg.Name(), err)
		}
	}
}

// TestBatchAmortizesRoundTripsAndLocks is the headline claim at unit scale:
// updating K keys that share leaves must cost measurably fewer round trips
// and lock acquisitions through InsertBatch than through sequential Insert.
func TestBatchAmortizesRoundTripsAndLocks(t *testing.T) {
	run := func(batched bool) (roundTrips, lockAcq int64) {
		cfg := core.ShermanConfig()
		cfg.Format = testutil.SmallFormat(layout.TwoLevel)
		cl := testutil.NewCluster(t, 1, 1)
		tr := core.New(cl, cfg)
		kvs := make([]layout.KV, 200)
		for i := range kvs {
			kvs[i] = layout.KV{Key: uint64(i + 1), Value: 1}
		}
		tr.Bulkload(kvs)
		h := tr.NewHandle(0, 0)
		h.Lookup(1) // warm the caches
		h.Lookup(200)

		upd := make([]layout.KV, 120)
		for i := range upd {
			upd[i] = layout.KV{Key: uint64(i + 1), Value: 7}
		}
		rt0, acq0 := h.Metrics().RoundTrips, tr.LockStats().Acquisitions.Load()
		if batched {
			h.InsertBatch(upd)
		} else {
			for _, kv := range upd {
				h.Insert(kv.Key, kv.Value)
			}
		}
		return h.Metrics().RoundTrips - rt0, tr.LockStats().Acquisitions.Load() - acq0
	}
	seqRT, seqAcq := run(false)
	batRT, batAcq := run(true)
	if batRT*2 >= seqRT {
		t.Errorf("batched updates took %d round trips vs %d sequential; want < half", batRT, seqRT)
	}
	if batAcq*2 >= seqAcq {
		t.Errorf("batched updates took %d lock acquisitions vs %d sequential; want < half", batAcq, seqAcq)
	}
}
