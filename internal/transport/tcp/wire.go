// Package tcp is the real-network transport: memory servers are OS
// processes (cmd/shermand) serving chunks, locks and atomics over a
// length-prefixed binary protocol, and clients implement
// transport.Transport over multiplexed per-server connections with real
// clocks.
//
// Wire protocol (version 2). Every message is one frame:
//
//	[u32 length][u32 tag][u8 opcode][payload]
//
// little-endian, where length covers the tag, the opcode byte and the
// payload. Requests carry an operation opcode and a caller-chosen tag;
// the response echoes the tag and reuses the opcode slot as a status byte
// (statusOK with a result payload, statusErr with a UTF-8 message). Tags
// let many requests share one connection with responses returning in
// completion order, not request order: the client keeps a bounded window
// of tagged slots per server, a writer path coalesces queued frames into
// single flushes, and a reader goroutine demuxes responses by tag (see
// mux.go). A doorbell batch of dependent writes still coalesces into a
// single WriteBatch frame — one network round trip, the §4.5 batching
// mapped onto TCP.
//
// The server applies each operation under striped per-chunk locks, so
// concurrent tagged requests to different chunks proceed in parallel.
// Each individual verb — and each op of a batch, applied in posted
// order — is atomic under its stripe, which is exactly the per-verb
// atomicity RDMA provides; see DESIGN.md §13 for why the tree protocol
// needs nothing stronger.
package tcp

import (
	"encoding/binary"
	"fmt"
	"io"
)

// protocolVersion is checked during the Ping handshake: a v1 peer (5-byte
// headers) would silently desynchronize a v2 reader, so the version rides
// first in the Ping response and a mismatch fails cluster bring-up.
const protocolVersion = 2

// Request opcodes.
const (
	opPing       byte = 1  // () -> u32 version, u32 onChipSize, u64 serverNowNS (clock epoch)
	opRead       byte = 2  // addr u64, n u32 -> n bytes
	opReadBatch  byte = 3  // count u32, (addr u64, n u32)* -> concatenated bytes
	opWriteBatch byte = 4  // count u32, (addr u64, n u32, data)* applied in order -> ()
	opCAS        byte = 5  // addr u64, old u64, new u64 -> prev u64, swapped u8
	opCAS16      byte = 6  // addr u64, old u16, new u16 -> prev u16, swapped u8
	opFAA        byte = 7  // addr u64, delta u64 -> old u64
	opGrow       byte = 8  // () -> base u64
	opShutdown   byte = 9  // () -> (), then the server exits
	opStats      byte = 10 // () -> total u64, count u32, (chunkOps u64)*
)

// Response status bytes (the opcode slot of a response frame).
const (
	statusOK  byte = 0
	statusErr byte = 1
)

// frameHeader is the fixed prefix of every frame: length, tag, opcode.
const frameHeader = 9

// maxFrame bounds a frame's length field: one chunk plus batching slack.
// A reader that sees a bigger length is desynchronized (or under attack)
// and errors out instead of allocating unboundedly.
const maxFrame = 64 << 20

// appendFrame appends one whole frame to b — the coalescing building block:
// the mux writer path appends several frames to one buffer and flushes them
// with a single Write.
func appendFrame(b []byte, tag uint32, op byte, payload []byte) []byte {
	b = appendU32(b, uint32(5+len(payload)))
	b = appendU32(b, tag)
	b = append(b, op)
	return append(b, payload...)
}

// writeFrame emits one frame with a single Write. payload may be nil.
func writeFrame(w io.Writer, tag uint32, op byte, payload []byte) error {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(5+len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], tag)
	hdr[8] = op
	if len(payload) == 0 {
		_, err := w.Write(hdr[:])
		return err
	}
	buf := make([]byte, 0, frameHeader+len(payload))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame, returning its tag, opcode (or status) byte and
// payload. A torn or truncated frame — the peer died mid-write — surfaces
// as io.ErrUnexpectedEOF; a length outside [5, maxFrame] as a framing
// error.
func readFrame(r io.Reader) (tag uint32, op byte, payload []byte, err error) {
	var hdr [frameHeader]byte
	tag, op, payload, err = readFrameInto(r, nil, &hdr)
	return
}

// readFrameInto is readFrame reusing buf for the payload when it has the
// capacity — the allocation-free variant the server's request loop runs on.
// The returned payload aliases buf (possibly grown); it is valid until the
// next reuse. hdr is caller-owned header scratch: passed through the
// io.Reader interface it would escape, so a stack-local here costs one heap
// allocation per frame — the caller hoists it out of its loop instead.
func readFrameInto(r io.Reader, buf []byte, hdr *[frameHeader]byte) (tag uint32, op byte, payload []byte, err error) {
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, 0, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n < 5 || n > maxFrame {
		return 0, 0, buf, fmt.Errorf("tcp: bad frame length %d", n)
	}
	if _, err := io.ReadFull(r, hdr[4:frameHeader]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, buf, err
	}
	tag = binary.LittleEndian.Uint32(hdr[4:8])
	op = hdr[8]
	plen := int(n) - 5
	if cap(buf) < plen {
		buf = make([]byte, plen)
	}
	payload = buf[:plen]
	if plen > 0 {
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, 0, payload, err
		}
	}
	return tag, op, payload, nil
}

// appendU64/appendU32 are the payload builders shared by client and server.
func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// payloadReader decodes a request/response payload field by field.
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (p *payloadReader) u64() uint64 {
	if p.err != nil || p.off+8 > len(p.b) {
		p.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(p.b[p.off:])
	p.off += 8
	return v
}

func (p *payloadReader) u32() uint32 {
	if p.err != nil || p.off+4 > len(p.b) {
		p.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(p.b[p.off:])
	p.off += 4
	return v
}

func (p *payloadReader) u16() uint16 {
	if p.err != nil || p.off+2 > len(p.b) {
		p.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(p.b[p.off:])
	p.off += 2
	return v
}

func (p *payloadReader) u8() uint8 {
	if p.err != nil || p.off+1 > len(p.b) {
		p.fail()
		return 0
	}
	v := p.b[p.off]
	p.off++
	return v
}

func (p *payloadReader) bytes(n int) []byte {
	if p.err != nil || n < 0 || p.off+n > len(p.b) {
		p.fail()
		return nil
	}
	v := p.b[p.off : p.off+n]
	p.off += n
	return v
}

func (p *payloadReader) fail() {
	if p.err == nil {
		p.err = fmt.Errorf("tcp: short payload (%d bytes, need more at offset %d)", len(p.b), p.off)
	}
}
