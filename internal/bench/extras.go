package bench

import (
	"fmt"
	"sync"

	"sherman/internal/core"
	"sherman/internal/hocl"
	"sherman/internal/rdma"
	"sherman/internal/rpcindex"
	"sherman/internal/sim"
	"sherman/internal/stats"
	"sherman/internal/workload"
)

// The experiments in this file are not figures from the paper: they ablate
// design constants the paper fixes without sweeping — the handover depth
// bound (MAX_DEPTH = 4, §4.3), the global-lock-table size (131,072 locks,
// §4.3), the NIC's atomic bucket count (§3.2.2), and the decision to cache
// level-1 nodes at all (§4.2.3). DESIGN.md lists them as open design
// choices worth quantifying.

// ExtraHandoverDepth sweeps HOCL's consecutive-handover bound on the raw
// lock workload. Depth 0 disables handover; unbounded depth starves remote
// compute servers (visible as cross-CS p99).
func ExtraHandoverDepth(s Scale) *Table {
	t := NewTable("Extra: handover depth bound (skewed locks, theta=0.99)",
		"max depth", "Mops", "p50(us)", "p99(us)", "handovers")
	for _, depth := range []int{1, 2, 4, 16, 64} {
		r := RunLocks(LockExp{
			Name:        fmt.Sprintf("depth=%d", depth),
			Theta:       0.99,
			Mode:        hocl.Sherman(),
			MaxHandover: depth,
			MeasureNS:   s.MeasureNS,
		})
		t.Add(fmt.Sprint(depth), MopsString(r.Mops), USString(r.P50), USString(r.P99),
			fmt.Sprint(r.Handovers))
	}
	t.Note("paper fixes MAX_DEPTH=4; deeper handover chains trade cross-CS fairness for locality")
	return t
}

// ExtraGLTSize sweeps the number of global locks per memory server: fewer
// locks mean more false sharing between unrelated tree nodes hashed onto
// one lock.
func ExtraGLTSize(s Scale) *Table {
	t := NewTable("Extra: global lock table size (write-intensive, skewed)",
		"locks/MS", "Mops", "p99(us)")
	for _, locks := range []int{64, 1024, 16384, 131072} {
		cfg := core.ShermanConfig()
		cfg.LocksPerMS = locks
		r := RunTreeN(s.treeExp(fmt.Sprintf("locks=%d", locks),
			workload.WriteIntensive, workload.Zipfian, cfg), s.runs())
		t.Add(fmt.Sprint(locks), MopsString(r.Mops), USString(r.P99))
	}
	t.Note("paper uses 131,072 (256 KB on-chip / 16-bit locks); small tables alias hot and cold nodes")
	return t
}

// ExtraCacheOff steps the unified cache's budgeted depth — off (pinned top
// levels only), the paper's flat level-1-only cache, and the multi-level
// default — under the uniform write-intensive workload, surfacing the
// speculation and invalidation counters alongside throughput.
func ExtraCacheOff(s Scale) *Table {
	t := NewTable("Extra: index cache contribution (uniform write-intensive)",
		"config", "Mops", "p50(us)", "hit ratio", "spec ok", "inval", "evictions")
	for _, c := range []struct {
		name   string
		levels int
	}{
		{"top levels only (levels=off)", -1},
		{"flat level-1 (levels=1)", 1},
		{"unified multi-level (default)", 0},
	} {
		cfg := core.ShermanConfig()
		cfg.CacheLevels = c.levels
		r := RunTreeN(s.treeExp(c.name, workload.WriteIntensive, workload.Uniform, cfg), s.runs())
		t.Add(c.name, MopsString(r.Mops), USString(r.P50),
			fmt.Sprintf("%.1f%%", r.HitRatio*100),
			fmt.Sprintf("%.1f%%", r.Rec.SpecSuccessRate()*100),
			fmt.Sprint(r.Rec.CacheInvalidations),
			fmt.Sprint(r.CacheEvictions))
	}
	t.Note("without budgeted copies every operation pays the lower-level reads on top of the leaf read")
	t.Note("spec ok: speculative leaf-direct reads validating first try; inval: stale entries dropped")
	return t
}

// ExtraBuckets sweeps the NIC's internal atomic bucket count on the
// baseline lock workload: fewer buckets mean unrelated locks collide inside
// the NIC's concurrency control (§3.2.2).
func ExtraBuckets(s Scale) *Table {
	t := NewTable("Extra: NIC atomic buckets (baseline host locks, theta=0.8)",
		"buckets", "Mops", "p99(us)")
	for _, buckets := range []int{16, 256, 4096} {
		p := sim.DefaultParams()
		p.AtomicBuckets = buckets
		r := RunLocks(LockExp{
			Name:      fmt.Sprintf("buckets=%d", buckets),
			Theta:     0.8,
			Mode:      hocl.Baseline(),
			MeasureNS: s.MeasureNS,
			Params:    p,
		})
		t.Add(fmt.Sprint(buckets), MopsString(r.Mops), USString(r.P99))
	}
	t.Note("the paper cites ~4096 buckets keyed by low address bits; collisions serialize unrelated atomics")
	return t
}

// ExtraCombineSplit isolates command combination on the split path: with a
// same-MS sibling, three WRITEs (sibling, node, release) combine into one
// doorbell batch; cross-MS siblings cost an extra round trip.
func ExtraCombineSplit(s Scale) *Table {
	t := NewTable("Extra: round trips per insert (write-only, uniform)",
		"config", "rt p50", "rt p99", "Mops")
	for _, c := range []struct {
		name    string
		combine bool
	}{{"combined", true}, {"separate", false}} {
		cfg := core.ShermanConfig()
		cfg.Combine = c.combine
		r := RunTreeN(s.treeExp(c.name, workload.WriteOnly, workload.Uniform, cfg), s.runs())
		t.Add(c.name,
			fmt.Sprint(r.Rec.WriteRoundTrips.PercentileValue(50)),
			fmt.Sprint(r.Rec.WriteRoundTrips.PercentileValue(99)),
			MopsString(r.Mops))
	}
	t.Note("combination saves one round trip per write and two on same-MS splits (§4.5)")
	return t
}

// Extras returns all design-choice ablations.
func Extras(s Scale) []*Table {
	return []*Table{
		ExtraHandoverDepth(s),
		ExtraGLTSize(s),
		ExtraCacheOff(s),
		ExtraBuckets(s),
		ExtraCombineSplit(s),
		ExtraRPCBaseline(s),
	}
}

// ExtraRPCBaseline measures the RPC-write index design of Cell/FaRM-Tree
// on disaggregated memory: writes ship to the 1-2 wimpy cores of the
// memory servers and throughput saturates at numMS / RPC-service-time no
// matter how many clients are added — the reason Table 2 marks those
// designs as unable to ride disaggregated memory (§3.1). Sherman's
// one-sided writes keep scaling on the same fabric.
func ExtraRPCBaseline(s Scale) *Table {
	t := NewTable("Extra: RPC-write index vs Sherman (uniform write-only)",
		"threads", "RPC-index(Mops)", "Sherman(Mops)")
	for _, tpc := range []int{2, 8, 22, 44} {
		rpc := runRPCWrites(tpc, s)
		e := s.treeExp("sherman", workload.WriteOnly, workload.Uniform, core.ShermanConfig())
		e.ThreadsPerCS = tpc
		sherman := RunTree(e).Mops
		t.Add(fmt.Sprint(tpc*8), MopsString(rpc), MopsString(sherman))
	}
	t.Note("RPC writes cap at numMS/rpc-service (~4 Mops at 8 MS); one-sided writes keep scaling")
	return t
}

// runRPCWrites drives the RPC index with the harness's windowed
// measurement (no warmup needed: there is no client cache to fill).
func runRPCWrites(threadsPerCS int, s Scale) float64 {
	f := rdma.NewFabric(sim.DefaultParams(), 8, 8)
	ix := rpcindex.New(f)
	n := 8 * threadsPerCS
	gate := sim.NewGate(gateWindowNS, gateSlack, n)
	ops := make([]int64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer gate.Done(i)
			h := ix.NewHandle(i % 8)
			rng := newRand(uint64(i) + 1)
			deadline := s.MeasureNS
			for h.C.Now() < deadline {
				h.Put(rng.Uint64N(1<<20)+1, 1)
				ops[i]++
				gate.Sync(i, h.C.Now())
			}
		}(i)
	}
	wg.Wait()
	var total int64
	for _, v := range ops {
		total += v
	}
	return stats.ThroughputMops(total, s.MeasureNS)
}
