package core

import (
	"sort"

	"sherman/internal/hocl"
	"sherman/internal/layout"
	"sherman/internal/rdma"
	"sherman/internal/stats"
)

// This file is the batch execution pipeline on top of the shared node-I/O
// layer (nodeio.go). A batch executor sorts its operations by key, locates
// each target leaf once, applies every operation that leaf covers, and
// emits a single combined doorbell post per leaf — write-backs plus lock
// release in one round trip (§4.5) — where sequential execution pays a
// traversal, a lock acquisition and a doorbell per operation. When the
// right sibling's lock hashes onto the very GLT slot the executor already
// holds, the guard is reused across the leaf boundary too (hocl.SameSlot).

// batchOp pairs one batched operation with its position in the caller's
// slice so results map back to submission order.
type batchOp struct {
	key, value uint64
	pos        int
}

// sortBatchOps orders ops by key, stable in submission order, so the
// executor visits each leaf exactly once per run and same-key operations
// apply in the order the caller issued them (last Put wins, like the
// sequential path).
func sortBatchOps(ops []batchOp) {
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].key < ops[j].key })
}

// leafCovers reports whether key falls inside the node's fence range.
func leafCovers(n layout.Node, key uint64) bool {
	return key >= n.LowerFence() && (n.UpperFence() == layout.NoUpperBound || key < n.UpperFence())
}

// pace yields to the harness's clock gate between leaf groups (no lock is
// held at these points, so blocking in real time is safe).
func (h *Handle) pace() {
	if h.Pace != nil {
		h.Pace(h.C.Now())
	}
}

// appendCopiedWrite queues one write-back with a private copy of data:
// batch executors defer their writes until the group's single doorbell
// post, by which time the shared node buffer may hold a different node.
func appendCopiedWrite(ops []rdma.WriteOp, a rdma.Addr, data []byte) []rdma.WriteOp {
	return append(ops, rdma.WriteOp{Addr: a, Data: append([]byte(nil), data...)})
}

// InsertBatch stores every pair in kvs, observably equivalent to calling
// Insert for each pair in submission order. Keys sharing a leaf share one
// traversal, one lock acquisition and one combined write-back+release
// doorbell. Key 0 is reserved and panics.
func (h *Handle) InsertBatch(kvs []layout.KV) {
	if len(kvs) == 0 {
		return
	}
	h.C.M.BeginOp()
	t0 := h.C.Now()
	h.insertBatchInner(kvs)
	h.Rec.RecordBatch(stats.OpInsert, len(kvs), h.C.Now()-t0, h.C.M.OpRoundTrips)
}

func (h *Handle) insertBatchInner(kvs []layout.KV) {
	ops := make([]batchOp, len(kvs))
	for i, kv := range kvs {
		if kv.Key == 0 {
			panic("core: key 0 is reserved")
		}
		ops[i] = batchOp{key: kv.Key, value: kv.Value, pos: i}
	}
	sortBatchOps(ops)
	h.walkWriteBatch(ops, h.applyBatchInsert)
}

// applyBatchInsert applies one insert to the locked leaf. A full leaf
// splits: the split writes whole nodes, carrying every entry already
// applied to the local image, and writes queued for earlier slots or
// chained leaves ride along in the same doorbell ahead of the split's
// write-backs.
func (h *Handle) applyBatchInsert(addr rdma.Addr, g hocl.Guard, leaf layout.Leaf, op batchOp, pending []rdma.WriteOp) ([]rdma.WriteOp, bool, bool) {
	if h.t.cfg.Format.Mode == layout.TwoLevel {
		slot, found := leaf.Find(op.key)
		if !found {
			slot = leaf.FindFree()
		}
		if found || slot >= 0 {
			// Entry-level modification; the write-back is queued for the
			// group's combined post.
			leaf.SetEntry(slot, op.key, op.value)
			off, sz := leaf.EntrySpan(slot)
			return appendCopiedWrite(pending, addr.Add(uint64(off)), leaf.B[off:off+sz]), false, false
		}
	} else if leaf.InsertSorted(op.key, op.value) {
		return pending, true, false
	}
	h.splitLeaf(addr, g, leaf, op.key, op.value, pending)
	return nil, false, true
}

// batchApply applies one operation to the locked leaf at addr, returning
// the (possibly extended) pending write set, whether the whole node is now
// dirty (Checksum mode's deferred write-back), and whether the op was
// consumed by a split — which releases the guard and ends the group.
type batchApply func(addr rdma.Addr, g hocl.Guard, leaf layout.Leaf, op batchOp, pending []rdma.WriteOp) (newPending []rdma.WriteOp, dirty, split bool)

// walkWriteBatch drives the shared leaf-group walk of a write batch: lock
// the leaf covering the next operation, apply every consecutive operation
// it covers, chain into aliased siblings where the lock slot allows, and
// release each group with one combined write-backs+release doorbell.
func (h *Handle) walkWriteBatch(ops []batchOp, apply batchApply) {
	f := h.t.cfg.Format
	i := 0
	for i < len(ops) {
		h.pace()
		addr, g, leaf := h.lockLeafForWrite(ops[i].key)
		h.Rec.BatchLeafGroups++
		var pending []rdma.WriteOp
	group:
		for {
			h.C.Step(h.C.F.P.LocalStepNS)
			dirty := false
			for i < len(ops) && leafCovers(leaf.Node, ops[i].key) {
				var d, split bool
				pending, d, split = apply(addr, g, leaf, ops[i], pending)
				dirty = dirty || d
				i++
				if split {
					break group // the split released the guard
				}
			}
			if f.Mode == layout.Checksum && dirty {
				leaf.UpdateChecksum()
				pending = appendCopiedWrite(pending, addr, leaf.B)
			}
			if i < len(ops) {
				if sib, sibLeaf, ok := h.chainToSibling(g, leaf, ops[i].key); ok {
					addr, leaf = sib, sibLeaf
					continue group
				}
			}
			h.unlockWrite(g, pending)
			break
		}
	}
}

// chainToSibling attempts to continue a write group into the right sibling
// without releasing the guard: possible when the next operation's key lives
// in the sibling and the sibling's lock hashes onto the GLT slot the guard
// already holds (§4.3's table hashing aliases distinct nodes, and a held
// slot excludes writers from every node it covers). The sibling is read
// into the shared leaf buffer, so the caller's queued writes must already
// be private copies — appendCopiedWrite guarantees that.
func (h *Handle) chainToSibling(g hocl.Guard, leaf layout.Leaf, nextKey uint64) (rdma.Addr, layout.Leaf, bool) {
	sib := leaf.Sibling()
	if sib.IsNil() || !h.t.locks.SameSlot(g, sib) {
		return rdma.NilAddr, layout.Leaf{}, false
	}
	n, _ := h.readNode(sib, h.leafBuf)
	if !n.Alive() || !n.IsLeaf() || !leafCovers(n, nextKey) {
		return rdma.NilAddr, layout.Leaf{}, false
	}
	h.Rec.BatchChainedLeaves++
	return sib, layout.AsLeaf(n), true
}

// DeleteBatch removes every key, reporting per key (in submission order)
// whether it was present — observably equivalent to calling Delete for
// each key in order. Absent keys cost no write-back. Key 0 panics.
func (h *Handle) DeleteBatch(keys []uint64) []bool {
	found := make([]bool, len(keys))
	if len(keys) == 0 {
		return found
	}
	h.C.M.BeginOp()
	t0 := h.C.Now()
	h.deleteBatchInner(keys, found)
	h.Rec.RecordBatch(stats.OpDelete, len(keys), h.C.Now()-t0, h.C.M.OpRoundTrips)
	return found
}

func (h *Handle) deleteBatchInner(keys []uint64, found []bool) {
	ops := make([]batchOp, len(keys))
	for i, k := range keys {
		if k == 0 {
			panic("core: key 0 is reserved")
		}
		ops[i] = batchOp{key: k, pos: i}
	}
	sortBatchOps(ops)
	h.walkWriteBatch(ops, func(addr rdma.Addr, _ hocl.Guard, leaf layout.Leaf, op batchOp, pending []rdma.WriteOp) ([]rdma.WriteOp, bool, bool) {
		if h.t.cfg.Format.Mode == layout.TwoLevel {
			if slot, ok := leaf.Find(op.key); ok {
				leaf.ClearEntry(slot)
				off, sz := leaf.EntrySpan(slot)
				pending = appendCopiedWrite(pending, addr.Add(uint64(off)), leaf.B[off:off+sz])
				found[op.pos] = true
			}
			return pending, false, false
		}
		if leaf.DeleteSorted(op.key) {
			found[op.pos] = true
			return pending, true, false
		}
		return pending, false, false
	})
}

// LookupBatch returns the value stored under each key, in submission
// order — observably equivalent to calling Lookup per key, but reading
// each target leaf once for all the keys it covers.
func (h *Handle) LookupBatch(keys []uint64) (values []uint64, found []bool) {
	values = make([]uint64, len(keys))
	found = make([]bool, len(keys))
	if len(keys) == 0 {
		return values, found
	}
	h.C.M.BeginOp()
	t0 := h.C.Now()
	h.lookupBatchInner(keys, values, found)
	h.Rec.RecordBatch(stats.OpLookup, len(keys), h.C.Now()-t0, h.C.M.OpRoundTrips)
	return values, found
}

func (h *Handle) lookupBatchInner(keys []uint64, values []uint64, found []bool) {
	ops := make([]batchOp, len(keys))
	for i, k := range keys {
		ops[i] = batchOp{key: k, pos: i}
	}
	sortBatchOps(ops)

	// Keys whose entry-level check failed mid-group fall back to the
	// sequential path after the batch walk (the walk shares one leaf buffer
	// that a re-read would clobber).
	var torn []batchOp

	i := 0
	for i < len(ops) {
		h.pace()
		retries := 0
		addr, ce := h.locateLeaf(ops[i].key)
		r, ok := h.seek(ops[i].key, 0, intentRead, addr, ce, h.leafBuf, &retries, nil)
		if !ok {
			h.Rec.ReadRetries.Record(retries)
			i++ // ran off the right edge: the key cannot exist
			continue
		}
		h.Rec.BatchLeafGroups++
		leaf := layout.AsLeaf(r.n)
		h.C.Step(h.C.F.P.LocalStepNS) // scan the leaf locally for the group
		for i < len(ops) && leafCovers(r.n, ops[i].key) {
			op := ops[i]
			if slot, hit := leaf.Find(op.key); hit {
				if h.t.cfg.Format.Mode == layout.TwoLevel && !leaf.EntryConsistent(slot) {
					torn = append(torn, op) // §4.4: re-read required
				} else {
					values[op.pos], found[op.pos] = leaf.Value(slot), true
				}
			}
			// Every lookup the group serves shares its validated read, so
			// each records the group's retry count — keeping the per-lookup
			// retry distribution (Figure 14a) comparable to the sequential
			// path. Torn entries record again via their lookupInner re-read.
			h.Rec.ReadRetries.Record(retries)
			i++
		}
	}
	for _, op := range torn {
		values[op.pos], found[op.pos] = h.lookupInner(op.key)
	}
}
