package sherman_test

import (
	"fmt"
	"log"

	"sherman"
)

// The basic lifecycle: a cluster, a tree, a session, point operations.
func Example() {
	cluster, err := sherman.NewCluster(sherman.ClusterConfig{
		MemoryServers:  2,
		ComputeServers: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := cluster.CreateTree(sherman.DefaultTreeOptions())
	if err != nil {
		log.Fatal(err)
	}

	s := tree.Session(0)
	s.Put(7, 700)
	if v, ok := s.Get(7); ok {
		fmt.Println("got", v)
	}
	s.Delete(7)
	_, ok := s.Get(7)
	fmt.Println("after delete:", ok)
	// Output:
	// got 700
	// after delete: false
}

// Scans return key-ordered rows starting at the given key.
func ExampleSession_Scan() {
	cluster, _ := sherman.NewCluster(sherman.ClusterConfig{MemoryServers: 1, ComputeServers: 1})
	tree, _ := cluster.CreateTree(sherman.DefaultTreeOptions())
	s := tree.Session(0)
	for k := uint64(1); k <= 10; k++ {
		s.Put(k, k*k)
	}
	for _, kv := range s.Scan(4, 3) {
		fmt.Println(kv.Key, kv.Value)
	}
	// Output:
	// 4 16
	// 5 25
	// 6 36
}

// Bulkload builds a packed tree from sorted pairs before sessions start.
func ExampleTree_Bulkload() {
	cluster, _ := sherman.NewCluster(sherman.ClusterConfig{MemoryServers: 1, ComputeServers: 1})
	tree, _ := cluster.CreateTree(sherman.DefaultTreeOptions())
	kvs := []sherman.KV{{Key: 10, Value: 1}, {Key: 20, Value: 2}, {Key: 30, Value: 3}}
	if err := tree.Bulkload(kvs); err != nil {
		log.Fatal(err)
	}
	v, _ := tree.Session(0).Get(20)
	fmt.Println(v)
	// Output: 2
}

// The FG+ baseline runs on the same API: only the options differ.
func ExampleFGPlusTreeOptions() {
	cluster, _ := sherman.NewCluster(sherman.ClusterConfig{MemoryServers: 1, ComputeServers: 1})
	tree, _ := cluster.CreateTree(sherman.FGPlusTreeOptions())
	s := tree.Session(0)
	s.Put(1, 100)
	v, _ := s.Get(1)
	fmt.Println(v)
	// Output: 100
}

// Advanced options enable each of Sherman's techniques individually, which
// is how the paper's ablation studies are built.
func ExampleAdvancedOptions() {
	cluster, _ := sherman.NewCluster(sherman.ClusterConfig{MemoryServers: 1, ComputeServers: 1})
	// FG's layout plus command combination only — the paper's "+Combine"
	// ablation step.
	tree, err := cluster.CreateTree(sherman.TreeOptions{
		Advanced: &sherman.AdvancedOptions{CombineCommands: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	s := tree.Session(0)
	s.Put(5, 50)
	v, _ := s.Get(5)
	fmt.Println(v)
	// Output: 50
}

// Stats and Compact support offline maintenance of delete-heavy trees.
func ExampleTree_Compact() {
	cluster, _ := sherman.NewCluster(sherman.ClusterConfig{MemoryServers: 1, ComputeServers: 1})
	tree, _ := cluster.CreateTree(sherman.DefaultTreeOptions())
	s := tree.Session(0)
	for k := uint64(1); k <= 2000; k++ {
		s.Put(k, k)
	}
	for k := uint64(1); k <= 2000; k++ {
		if k%10 != 0 {
			s.Delete(k)
		}
	}
	res := tree.Compact()
	fmt.Println("kept", res.EntriesKept, "shrunk:", res.NodesAfter < res.NodesBefore)
	// Output: kept 200 shrunk: true
}
