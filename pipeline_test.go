package sherman

import (
	"errors"
	"sync"
	"testing"

	"sherman/internal/testutil"
)

// pipelineDepthsUnderTest spans the depths the async API must be
// sequential-equivalent at.
var pipelineDepthsUnderTest = []int{1, 2, 4, 8}

// TestPipelineSequentialEquivalenceProperty checks, for deterministic
// seeds, through the public API, that a random Submit stream at every
// pipeline depth is observably equivalent to the same operations applied
// sequentially — including puts that split small leaves mid-pipeline,
// interleaved deletes of absent keys, and occasional scans — across the
// shared harness's ablation grid.
func TestPipelineSequentialEquivalenceProperty(t *testing.T) {
	for _, opts := range gridOptions() {
		opts := opts
		t.Run(opts.Advanced.name(), func(t *testing.T) {
			testutil.RunSeeds(t, 5, func(t *testing.T, seed uint64) {
				rng := testutil.RNG(seed)
				depth := pipelineDepthsUnderTest[rng.Uint64N(uint64(len(pipelineDepthsUnderTest)))]
				mk := func(d int) *Session {
					c, err := NewCluster(ClusterConfig{MemoryServers: 2, ComputeServers: 1})
					if err != nil {
						t.Fatal(err)
					}
					s, err := testTree(t, c, opts).SessionAt(0, PipelineDepth(d))
					if err != nil {
						t.Fatal(err)
					}
					return s
				}
				seq, pipe := mk(1), mk(depth)

				const keySpace = 250
				var futures []*Future
				var wants []Result
				for i := 0; i < 400; i++ {
					k := rng.Uint64N(keySpace) + 1
					var op Op
					switch rng.Uint64N(8) {
					case 0, 1, 2:
						op = PutOp(k, rng.Uint64()|1)
					case 3:
						op = DeleteOp(rng.Uint64N(2*keySpace) + 1) // half absent
					case 4:
						op = ScanOp(k, int(rng.Uint64N(10))+1)
					default:
						op = GetOp(k)
					}
					var want Result
					switch op.Kind {
					case OpPut:
						seq.Put(op.Key, op.Value)
					case OpDelete:
						want.Found = seq.Delete(op.Key)
					case OpScan:
						want.KVs = seq.Scan(op.Key, op.Span)
					default:
						want.Value, want.Found = seq.Get(op.Key)
					}
					futures = append(futures, pipe.Submit(op))
					wants = append(wants, want)
				}
				if err := pipe.Flush(); err != nil {
					t.Fatal(err)
				}
				for i, f := range futures {
					got, want := f.Wait(), wants[i]
					if got.Err != nil || got.Found != want.Found || got.Value != want.Value || len(got.KVs) != len(want.KVs) {
						t.Fatalf("depth %d: op %d = %+v, sequential %+v", depth, i, got, want)
					}
					for j := range want.KVs {
						if got.KVs[j] != want.KVs[j] {
							t.Fatalf("depth %d: op %d scan row %d mismatch", depth, i, j)
						}
					}
				}
				for k := uint64(1); k <= keySpace; k++ {
					wv, wok := seq.Get(k)
					gv, gok := pipe.Get(k)
					if wok != gok || (wok && wv != gv) {
						t.Fatalf("depth %d: final key %d mismatch", depth, k)
					}
				}
			})
		})
	}
}

// TestExecMixedEquivalenceProperty checks that mixed Exec batches — puts,
// gets, deletes and scans in one call — match sequential execution at
// every depth across the grid, including same-key read-after-write chains
// inside one batch.
func TestExecMixedEquivalenceProperty(t *testing.T) {
	for _, opts := range gridOptions() {
		opts := opts
		t.Run(opts.Advanced.name(), func(t *testing.T) {
			testutil.RunSeeds(t, 5, func(t *testing.T, seed uint64) {
				rng := testutil.RNG(seed)
				depth := pipelineDepthsUnderTest[rng.Uint64N(uint64(len(pipelineDepthsUnderTest)))]
				c, err := NewCluster(ClusterConfig{MemoryServers: 2, ComputeServers: 1})
				if err != nil {
					t.Fatal(err)
				}
				pipe, err := testTree(t, c, opts).SessionAt(0, PipelineDepth(depth))
				if err != nil {
					t.Fatal(err)
				}
				c2, err := NewCluster(ClusterConfig{MemoryServers: 2, ComputeServers: 1})
				if err != nil {
					t.Fatal(err)
				}
				seq := testTree(t, c2, opts).Session(0)

				const keySpace = 200
				for round := 0; round < 4; round++ {
					n := int(rng.Uint64N(80)) + 1
					ops := make([]Op, n)
					for i := range ops {
						k := rng.Uint64N(keySpace) + 1
						switch rng.Uint64N(6) {
						case 0, 1:
							ops[i] = PutOp(k, rng.Uint64()|1)
						case 2:
							ops[i] = DeleteOp(k)
						case 3:
							ops[i] = ScanOp(k, int(rng.Uint64N(8))+1)
						default:
							ops[i] = GetOp(k)
						}
					}
					got := pipe.Exec(ops)
					for i, op := range ops {
						var want Result
						switch op.Kind {
						case OpPut:
							seq.Put(op.Key, op.Value)
						case OpDelete:
							want.Found = seq.Delete(op.Key)
						case OpScan:
							want.KVs = seq.Scan(op.Key, op.Span)
						default:
							want.Value, want.Found = seq.Get(op.Key)
						}
						g := got[i]
						if g.Err != nil || g.Found != want.Found || g.Value != want.Value || len(g.KVs) != len(want.KVs) {
							t.Fatalf("depth %d: batch op %d (%+v) = %+v, sequential %+v", depth, i, op, g, want)
						}
						for j := range want.KVs {
							if g.KVs[j] != want.KVs[j] {
								t.Fatalf("depth %d: batch op %d scan row %d mismatch", depth, i, j)
							}
						}
					}
				}
				for k := uint64(1); k <= keySpace; k++ {
					wv, wok := seq.Get(k)
					gv, gok := pipe.Get(k)
					if wok != gok || (wok && wv != gv) {
						t.Fatalf("final key %d mismatch", k)
					}
				}
			})
		})
	}
}

// TestPipelineConcurrentSessions races pipelined sessions on per-worker key
// stripes — splits and deletes mid-pipeline included — then validates the
// tree and checks contents. Run under -race this is the pipelined
// counterpart of the concurrent batch churn test.
func TestPipelineConcurrentSessions(t *testing.T) {
	c, err := NewCluster(ClusterConfig{MemoryServers: 2, ComputeServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tree := testTree(t, c, TreeOptions{NodeSize: testutil.SmallNodeSize})

	const workers = 8
	refs := make([]map[uint64]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := tree.SessionAt(w%c.ComputeServers(), PipelineDepth(1+w%4*2))
			if err != nil {
				t.Error(err)
				return
			}
			rng := testutil.RNG(uint64(w) + 1)
			ref := make(map[uint64]uint64)
			base := uint64(w)*100_000 + 1
			for i := 0; i < 900; i++ {
				k := base + rng.Uint64N(500)
				switch rng.Uint64N(5) {
				case 0:
					s.Submit(DeleteOp(k))
					delete(ref, k)
				case 1:
					got := s.Submit(GetOp(k)).Wait()
					want, exists := ref[k]
					if got.Found != exists || (exists && got.Value != want) {
						t.Errorf("worker %d: pipelined Get(%d) = (%d,%v), reference (%d,%v)",
							w, k, got.Value, got.Found, want, exists)
						return
					}
				default:
					v := rng.Uint64() | 1
					s.Submit(PutOp(k, v))
					ref[k] = v
				}
			}
			if err := s.Flush(); err != nil {
				t.Error(err)
			}
			refs[w] = ref
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate after concurrent pipelined churn: %v", err)
	}
	s := tree.Session(0)
	for w, ref := range refs {
		for k, v := range ref {
			if got, ok := s.Get(k); !ok || got != v {
				t.Fatalf("worker %d key %d = (%d,%v), want (%d,true)", w, k, got, ok, v)
			}
		}
	}
}

// TestSessionAtAndTypedErrors covers the typed-error surface: out-of-range
// compute servers, reserved-key writes via Submit and Exec, and the
// preserved legacy panic contracts.
func TestSessionAtAndTypedErrors(t *testing.T) {
	c := testCluster(t)
	tree := testTree(t, c, DefaultTreeOptions())

	for _, cs := range []int{-1, c.ComputeServers(), 99} {
		if _, err := tree.SessionAt(cs); !errors.Is(err, ErrBadComputeServer) {
			t.Errorf("SessionAt(%d) error = %v, want ErrBadComputeServer", cs, err)
		}
	}
	s, err := tree.SessionAt(0, PipelineDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.PipelineDepth() != 4 {
		t.Errorf("PipelineDepth() = %d, want 4", s.PipelineDepth())
	}

	if r := s.Submit(PutOp(0, 1)).Wait(); !errors.Is(r.Err, ErrReservedKey) {
		t.Errorf("Submit(PutOp(0)) err = %v, want ErrReservedKey", r.Err)
	}
	if r := s.Submit(DeleteOp(0)).Wait(); !errors.Is(r.Err, ErrReservedKey) {
		t.Errorf("Submit(DeleteOp(0)) err = %v, want ErrReservedKey", r.Err)
	}
	if r := s.Submit(Op{Kind: OpKind(99)}).Wait(); r.Err == nil {
		t.Error("Submit of unknown kind reported no error")
	}
	if r := s.Submit(ScanOp(1, 0)).Wait(); r.Err != nil || r.KVs != nil {
		t.Errorf("Submit(ScanOp span 0) = %+v, want empty", r)
	}

	// A bad op inside Exec errors in place; the rest of the batch applies.
	res := s.Exec([]Op{PutOp(11, 110), PutOp(0, 1), PutOp(12, 120)})
	if !errors.Is(res[1].Err, ErrReservedKey) || res[0].Err != nil || res[2].Err != nil {
		t.Errorf("Exec partial errors = [%v %v %v]", res[0].Err, res[1].Err, res[2].Err)
	}
	if v, ok := s.Get(12); !ok || v != 120 {
		t.Errorf("Get(12) after partial-error Exec = (%d,%v), want (120,true)", v, ok)
	}

	// Legacy contracts: Session panics on a bad cs, Put panics on key 0.
	for name, fn := range map[string]func(){
		"Session(-1)": func() { tree.Session(-1) },
		"Put(0)":      func() { s.Put(0, 1) },
		"Delete(0)":   func() { s.Delete(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestCursor checks the Scan convenience: full iteration matches one big
// Scan, resumes across leaf boundaries, and terminates on empty ranges.
func TestCursor(t *testing.T) {
	c := testCluster(t)
	tree := testTree(t, c, TreeOptions{NodeSize: testutil.SmallNodeSize}) // small leaves: many refills
	s := tree.Session(0)
	kvs := make([]KV, 500)
	for i := range kvs {
		kvs[i] = KV{Key: uint64(i+1) * 3, Value: uint64(i + 7)}
	}
	if err := tree.Bulkload(kvs); err != nil {
		t.Fatal(err)
	}

	cur := s.Cursor(100)
	want := s.Scan(100, len(kvs))
	for i, w := range want {
		kv, ok := cur.Next()
		if !ok || kv != w {
			t.Fatalf("cursor row %d = (%+v,%v), want %+v", i, kv, ok, w)
		}
	}
	if kv, ok := cur.Next(); ok {
		t.Errorf("cursor returned %+v past the end", kv)
	}
	if _, ok := s.Cursor(10_000_000).Next(); ok {
		t.Error("cursor on empty range returned a row")
	}
}

// TestPipelineVirtualTime: Submit must not block the session's virtual
// clock on completions — only Wait and Flush do — and pipelined sessions
// report hiding stats.
func TestPipelineVirtualTime(t *testing.T) {
	c := testCluster(t)
	tree := testTree(t, c, DefaultTreeOptions())
	kvs := make([]KV, 5000)
	for i := range kvs {
		kvs[i] = KV{Key: uint64(i + 1), Value: 1}
	}
	if err := tree.Bulkload(kvs); err != nil {
		t.Fatal(err)
	}
	s, _ := tree.SessionAt(0, PipelineDepth(4))
	s.Get(1) // warm the cache

	before := s.VirtualNow()
	var fs []*Future
	for i := 0; i < 4; i++ {
		fs = append(fs, s.Submit(GetOp(uint64(1+i*1000))))
	}
	submitted := s.VirtualNow()
	if adv := submitted - before; adv >= fs[0].CompleteAtV()-before {
		t.Errorf("4 submits advanced the clock %d ns, past the first completion", adv)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	flushed := s.VirtualNow()
	for _, f := range fs {
		if f.CompleteAtV() > flushed {
			t.Errorf("completion %d after Flush clock %d", f.CompleteAtV(), flushed)
		}
	}
	st := s.Stats()
	if st.PipelinedOps != 5 { // the warming Get pipelines too
		t.Errorf("PipelinedOps = %d, want 5", st.PipelinedOps)
	}
	if st.LatencyHidingRatio <= 1 {
		t.Errorf("LatencyHidingRatio = %.2f, want > 1", st.LatencyHidingRatio)
	}
}
