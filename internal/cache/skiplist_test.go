package cache

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"

	"sherman/internal/layout"
	"sherman/internal/rdma"
)

func slEntry(key uint64) *Entry {
	n := layout.NewInternal(testFormat, 1, key, key+100)
	return &Entry{Addr: rdma.MakeAddr(0, 0x1000+key), N: n, key: key}
}

// TestSkiplistFloorAgainstReference compares floor queries against a sorted
// reference across random insert/remove sequences.
func TestSkiplistFloorAgainstReference(t *testing.T) {
	s := newSkiplist()
	ref := map[uint64]*Entry{}
	rng := rand.New(rand.NewPCG(7, 8))

	refFloor := func(target uint64) *Entry {
		var best *Entry
		for k, e := range ref {
			if k <= target && (best == nil || k > best.key) {
				best = e
			}
		}
		return best
	}

	for i := 0; i < 5000; i++ {
		k := rng.Uint64N(500) * 10
		switch rng.Uint64N(4) {
		case 0:
			if e, exists := ref[k]; exists {
				s.remove(e)
				delete(ref, k)
			}
		default:
			e := slEntry(k)
			s.insert(e)
			ref[k] = e
		}
		probe := rng.Uint64N(5200)
		got := s.floor(probe)
		want := refFloor(probe)
		switch {
		case got == nil && want == nil:
		case got == nil || want == nil:
			t.Fatalf("step %d: floor(%d) = %v, want %v", i, probe, got, want)
		case got.key != want.key:
			t.Fatalf("step %d: floor(%d) = key %d, want %d", i, probe, got.key, want.key)
		}
	}
	if int(s.size.Load()) != len(ref) {
		t.Errorf("size %d, reference %d", s.size.Load(), len(ref))
	}
}

// TestSkiplistInsertReplace: inserting at an existing key returns the
// displaced entry exactly once.
func TestSkiplistInsertReplace(t *testing.T) {
	s := newSkiplist()
	a := slEntry(100)
	if old := s.insert(a); old != nil {
		t.Fatalf("first insert displaced %v", old)
	}
	b := slEntry(100)
	if old := s.insert(b); old != a {
		t.Fatalf("replacement displaced %v, want the original", old)
	}
	if got := s.floor(150); got != b {
		t.Fatalf("floor returns %v, want the replacement", got)
	}
	if s.size.Load() != 1 {
		t.Fatalf("size = %d, want 1", s.size.Load())
	}
	// Removing the displaced (stale) entry must not unlink the replacement.
	s.remove(a)
	if got := s.floor(150); got != b {
		t.Fatal("removing a stale entry unlinked its replacement")
	}
}

// TestSkiplistRemoveIdempotent: double-removal is harmless.
func TestSkiplistRemoveIdempotent(t *testing.T) {
	s := newSkiplist()
	e := slEntry(5)
	s.insert(e)
	s.remove(e)
	s.remove(e)
	if got := s.floor(10); got != nil {
		t.Fatalf("floor after removal = %v", got)
	}
	if s.size.Load() != 0 {
		t.Fatalf("size = %d, want 0", s.size.Load())
	}
}

// TestSkiplistConcurrentReadersWriters: lock-free readers must always see a
// consistent structure while writers insert and remove.
func TestSkiplistConcurrentReadersWriters(t *testing.T) {
	s := newSkiplist()
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup

	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 3))
			entries := map[uint64]*Entry{}
			for i := 0; i < 4000; i++ {
				k := (rng.Uint64N(200)*2 + uint64(w)) * 10
				if e, ok := entries[k]; ok && rng.Uint64N(3) == 0 {
					s.remove(e)
					delete(entries, k)
				} else {
					e := slEntry(k)
					s.insert(e)
					entries[k] = e
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewPCG(uint64(r)+100, 4))
			for {
				select {
				case <-stop:
					return
				default:
				}
				probe := rng.Uint64N(4200)
				if e := s.floor(probe); e != nil && e.key > probe {
					t.Errorf("floor(%d) returned larger key %d", probe, e.key)
					return
				}
			}
		}(r)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}

// TestSkiplistHeightDistribution sanity-checks that tower heights are
// geometric-ish (no degenerate all-height-1 lists, which would make seeks
// linear).
func TestSkiplistHeightDistribution(t *testing.T) {
	s := newSkiplist()
	for i := uint64(0); i < 4096; i++ {
		s.insert(slEntry(i * 10))
	}
	tall := 0
	x := s.head.next[3].Load() // nodes with height >= 4
	for x != nil {
		tall++
		x = x.next[3].Load()
	}
	// Expected ~4096/8 = 512; accept a broad band.
	if tall < 128 || tall > 1500 {
		t.Errorf("height>=4 nodes = %d, want roughly 512", tall)
	}
}

// Property: after any insert sequence, floor(k) for every inserted k
// returns an entry with that exact key.
func TestSkiplistFloorExactProperty(t *testing.T) {
	fn := func(keysRaw []uint16) bool {
		s := newSkiplist()
		seen := map[uint64]bool{}
		for _, kr := range keysRaw {
			k := uint64(kr)
			s.insert(slEntry(k))
			seen[k] = true
		}
		for k := range seen {
			e := s.floor(k)
			if e == nil || e.key != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
