package core_test

import (
	"fmt"
	"testing"

	"sherman/internal/cluster"
	core "sherman/internal/core"
	"sherman/internal/hocl"
	"sherman/internal/layout"
	"sherman/internal/sim"
	"sherman/internal/testutil"
)

// faultConfigs is the TwoLevel/Checksum x Combine grid, covering both lock
// word formats (16-bit on-chip under Sherman locks, 64-bit host under the
// baseline) and both write-back shapes (combined doorbell vs separate
// signaled writes).
func faultConfigs() []core.Config {
	grid := []struct {
		mode    layout.Mode
		combine bool
		locks   hocl.Mode
	}{
		{layout.TwoLevel, true, hocl.Sherman()},
		{layout.TwoLevel, false, hocl.Sherman()},
		{layout.Checksum, true, hocl.Baseline()},
		{layout.Checksum, false, hocl.Baseline()},
	}
	var out []core.Config
	for _, g := range grid {
		out = append(out, core.Config{
			Format:     testutil.SmallFormat(g.mode),
			Combine:    g.combine,
			Locks:      g.locks,
			LocksPerMS: 1024, // keep per-cluster lock state small: many clusters below
		})
	}
	return out
}

func faultCfgName(cfg core.Config) string {
	return fmt.Sprintf("%v/combine=%v/onchip=%v", cfg.Format.Mode, cfg.Combine, cfg.Locks.OnChip)
}

// faultScenario is one scripted operation whose every fabric verb gets a
// crash injected in turn.
type faultScenario struct {
	name string
	// keys bulkloaded (BulkFill 1.0: every leaf exactly full); nil means
	// one exactly-full leaf (computed from the format's LeafCap), which
	// makes the split op grow a new root.
	load []uint64
	// prefix ops acknowledged before the crash op (must survive).
	prefix func(h *core.Handle)
	// op is the operation under crash injection; retried by the survivor.
	op func(h *core.Handle)
	// key/old/new describe the op's effect for the invisible-or-applied
	// check. deleted marks ops whose "new" state is absence.
	key      uint64
	old, new uint64
	deleted  bool
	present  bool // key exists before the op
}

// The prefix key is odd so it never collides with the (even) bulkloaded
// keys; inserting it is itself an acked pre-crash write.
const faultPrefixKey, faultPrefixVal = 31, 0xacced

func faultScenarios() []faultScenario {
	evens := func(n int) []uint64 {
		out := make([]uint64, n)
		for i := range out {
			out[i] = uint64(2 * (i + 1))
		}
		return out
	}
	many := evens(120) // ~10 full leaves with 256 B nodes
	prefix := func(h *core.Handle) { h.Insert(faultPrefixKey, faultPrefixVal) }
	return []faultScenario{
		{
			name: "update-inplace", load: many, prefix: prefix,
			op:  func(h *core.Handle) { h.Insert(120, 0xbeef) },
			key: 120, old: faultVal(120), new: 0xbeef, present: true,
		},
		{
			name: "delete-inplace", load: many, prefix: prefix,
			op:  func(h *core.Handle) { h.Delete(120) },
			key: 120, old: faultVal(120), deleted: true, present: true,
		},
		{
			name: "insert-split", load: many, prefix: prefix,
			op:  func(h *core.Handle) { h.Insert(121, 0xcafe) },
			key: 121, new: 0xcafe,
		},
		{
			// A full single-leaf tree (load nil: sized to LeafCap): the
			// split grows a new root, covering the CASRoot path too.
			name: "root-split",
			op:   func(h *core.Handle) { h.Insert(13, 0xd00d) },
			key:  13, new: 0xd00d,
		},
	}
}

func faultVal(k uint64) uint64 { return k*7 + 1 }

// buildFaultTree builds a deterministic cluster+tree for one scenario run,
// returning the bulkloaded keys.
func buildFaultTree(cfg core.Config, sc faultScenario) (*cluster.Cluster, *core.Tree, []uint64) {
	cl := cluster.New(cluster.Config{NumMS: 2, NumCS: 2})
	c := cfg
	c.BulkFill = 1.0
	tr := core.New(cl, c)
	load := sc.load
	if load == nil {
		load = make([]uint64, c.Format.LeafCap)
		for i := range load {
			load[i] = uint64(2 * (i + 1))
		}
	}
	kvs := make([]layout.KV, len(load))
	for i, k := range load {
		kvs[i] = layout.KV{Key: k, Value: faultVal(k)}
	}
	tr.Bulkload(kvs)
	return cl, tr, load
}

// runCrashing runs fn and reports whether it aborted with a compute-server
// crash.
func runCrashing(fn func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := sim.IsCrash(r); ok {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	fn()
	return false
}

// TestCrashAtEveryVerb is the fault-model property test: for every scripted
// operation, every configuration of the consistency x combine grid, and
// every fabric-verb index of the operation, a compute-server crash injected
// at that verb must leave the tree recoverable — the survivor's retry is
// idempotent (reclaiming the dead session's lock if held), the structural
// sweep completes any half-done split, Validate passes, and every
// acknowledged write (bulkload + prefix) is durable. The in-flight
// operation itself must be invisible or fully applied, never torn.
func TestCrashAtEveryVerb(t *testing.T) {
	for _, cfg := range faultConfigs() {
		for _, sc := range faultScenarios() {
			t.Run(faultCfgName(cfg)+"/"+sc.name, func(t *testing.T) {
				// Dry run: count the operation's fabric verbs.
				cl, tr, load := buildFaultTree(cfg, sc)
				victim := tr.NewHandle(1, 1)
				if sc.prefix != nil {
					sc.prefix(victim)
				}
				v0 := cl.Faults().Verbs(1)
				sc.op(victim)
				verbs := int(cl.Faults().Verbs(1) - v0)
				if verbs < 2 {
					t.Fatalf("implausible verb count %d", verbs)
				}
				if err := tr.Validate(); err != nil {
					t.Fatalf("dry run left invalid tree: %v", err)
				}

				for i := 1; i <= verbs; i++ {
					cl, tr, load = buildFaultTree(cfg, sc)
					victim = tr.NewHandle(1, 1)
					if sc.prefix != nil {
						sc.prefix(victim)
					}
					cl.Faults().KillAtVerb(1, int64(i))
					if !runCrashing(func() { sc.op(victim) }) {
						t.Fatalf("verb %d/%d: victim survived its armed kill", i, verbs)
					}

					surv := tr.NewHandle(0, 2)
					surv.SetClock(victim.C.Now())

					// Invisible or fully applied, never torn.
					got, ok := surv.Lookup(sc.key)
					switch {
					case sc.deleted:
						if ok && got != sc.old {
							t.Fatalf("verb %d: delete left torn value %#x", i, got)
						}
					case sc.present:
						if !ok || (got != sc.old && got != sc.new) {
							t.Fatalf("verb %d: update left (%#x,%v), want old %#x or new %#x", i, got, ok, sc.old, sc.new)
						}
					default:
						if ok && got != sc.new {
							t.Fatalf("verb %d: insert left torn value %#x", i, got)
						}
					}

					// The survivor's retry is idempotent and reclaims the
					// dead session's lock when the crash left it held.
					sc.op(surv)
					if _, complete := surv.RecoverStructure(); !complete {
						t.Fatalf("verb %d: recovery pass budget exhausted", i)
					}

					if err := tr.Validate(); err != nil {
						t.Fatalf("verb %d/%d: post-recovery validate: %v", i, verbs, err)
					}
					// Acked writes are durable; the retried op is applied.
					for _, k := range load {
						want, wantOK := faultVal(k), true
						if k == sc.key {
							want, wantOK = sc.new, !sc.deleted
						}
						got, ok := surv.Lookup(k)
						if ok != wantOK || (ok && got != want) {
							t.Fatalf("verb %d: key %d = (%#x,%v), want (%#x,%v)", i, k, got, ok, want, wantOK)
						}
					}
					if sc.prefix != nil {
						if got, ok := surv.Lookup(faultPrefixKey); !ok || got != faultPrefixVal {
							t.Fatalf("verb %d: acked prefix write lost: (%#x,%v)", i, got, ok)
						}
					}
					if !sc.deleted && !sc.present {
						if got, ok := surv.Lookup(sc.key); !ok || got != sc.new {
							t.Fatalf("verb %d: retried insert missing: (%#x,%v)", i, got, ok)
						}
					}
				}
			})
		}
	}
}

// TestReclaimCountsAndLeaseExpiry pins the lock-layer accounting: a victim
// killed at its commit verb leaves exactly one orphaned lock, and the
// survivor's conflicting write reclaims it (observable in the manager's
// counters and the survivor's recorder).
func TestReclaimCountsAndLeaseExpiry(t *testing.T) {
	for _, cfg := range faultConfigs() {
		sc := faultScenarios()[0] // update-inplace
		cl, tr, _ := buildFaultTree(cfg, sc)
		victim := tr.NewHandle(1, 1)
		v0 := cl.Faults().Verbs(1)
		victim.Insert(sc.key, 1)
		verbs := int(cl.Faults().Verbs(1) - v0)

		cl, tr, _ = buildFaultTree(cfg, sc)
		victim = tr.NewHandle(1, 1)
		cl.Faults().KillAtVerb(1, int64(verbs)) // the commit verb: lock held
		if !runCrashing(func() { victim.Insert(sc.key, 1) }) {
			t.Fatalf("%s: victim survived", faultCfgName(cfg))
		}
		if got := tr.LockStats().LeaseExpiries.Load(); got != 1 {
			t.Fatalf("%s: lease expiries = %d, want 1", faultCfgName(cfg), got)
		}
		surv := tr.NewHandle(0, 2)
		surv.SetClock(victim.C.Now())
		surv.Insert(sc.key, 2)
		if got := tr.LockStats().Reclaims.Load(); got != 1 {
			t.Fatalf("%s: reclaims = %d, want 1", faultCfgName(cfg), got)
		}
		if surv.Rec.Reclaims != 1 {
			t.Fatalf("%s: recorder reclaims = %d, want 1", faultCfgName(cfg), surv.Rec.Reclaims)
		}
		if v, ok := surv.Lookup(sc.key); !ok || v != 2 {
			t.Fatalf("%s: post-reclaim value (%d,%v), want (2,true)", faultCfgName(cfg), v, ok)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: validate: %v", faultCfgName(cfg), err)
		}
	}
}
