package bench

import (
	"fmt"

	"sherman/internal/core"
	"sherman/internal/layout"
	"sherman/internal/workload"
)

// This file is the unified-index-cache experiment: a cache-size ×
// levels-cached × workload-skew sweep over the multi-level cache, reporting
// throughput, round trips per operation, per-level hit shares, speculative
// leaf-direct success, and invalidation traffic. Its results resolve the
// DESIGN.md §6 open question — is caching level-1 nodes worth the
// invalidation traffic vs caching only the top two levels — with measured
// numbers (see DESIGN.md §10), and CacheGate turns the two headline
// comparisons into CI assertions.
//
// The sweep uses small (256 B) nodes so the quick-scale tree is deep
// (root level 5 at 256 Ki keys): a descent that starts at the pinned top
// still pays several internal reads, which is exactly the regime where
// cached lower levels and leaf-direct speculation pay off — at the paper's
// billion-key scale every tree looks like this.

// cacheNodeSize keeps the sweep's tree deep at bench scale.
const cacheNodeSize = 256

// CacheExp configures one cell of the cache sweep.
type CacheExp struct {
	Name string

	// Keys sizes the key space; Dist/theta shape the skew.
	Keys uint64
	Dist workload.Dist

	// CachePct sizes the budgeted region as a percentage of the level-1
	// working set. Ignored when Levels < 0 (cache off).
	CachePct int
	// Levels is the budgeted caching depth (core.Config.CacheLevels):
	// -1 = off (pinned top only), 1 = the paper's flat level-1 cache,
	// 2 = the unified default, 3 = one more level.
	Levels int

	ThreadsPerCS int
	MeasureNS    int64
	WarmupOps    int
}

// CacheCellResult is one measured cell.
type CacheCellResult struct {
	Name string
	// Mops and RTPerOp are the headline trade-off: round trips per
	// operation is what the cache exists to cut.
	Mops    float64
	RTPerOp float64
	// HitRatio is the leaf-direct (level-1) hit ratio; LevelShare[l] is the
	// fraction of leaf locations answered at cache level l (l >= 2 means
	// the descent resumed there instead of the root).
	HitRatio   float64
	SpecRate   float64
	L2Share    float64
	InvalPerOp float64
	Evictions  int64
	P50, P99   int64
}

// runCacheCell executes one sweep cell.
func runCacheCell(e CacheExp) CacheCellResult {
	cfg := core.ShermanConfig()
	cfg.Format = layout.NewFormat(layout.TwoLevel, 8, cacheNodeSize)
	cfg.CacheLevels = e.Levels
	if e.Levels < 0 {
		cfg.CacheBytes = 1 // budget is irrelevant; top levels stay pinned
	} else {
		ws := Level1WorkingSetBytes(e.Keys, cfg)
		cfg.CacheBytes = ws * int64(e.CachePct) / 100
		if cfg.CacheBytes < int64(cacheNodeSize) {
			cfg.CacheBytes = int64(cacheNodeSize)
		}
	}
	r := RunTree(TreeExp{
		Name:         e.Name,
		Keys:         e.Keys,
		ThreadsPerCS: e.ThreadsPerCS,
		MeasureNS:    e.MeasureNS,
		WarmupOps:    e.WarmupOps,
		Mix:          workload.ReadIntensive,
		Dist:         e.Dist,
		Tree:         cfg,
	})
	ops := r.Rec.TotalOps()
	out := CacheCellResult{
		Name:      e.Name,
		Mops:      r.Mops,
		RTPerOp:   r.RoundTripsPerOp,
		HitRatio:  r.HitRatio,
		SpecRate:  r.Rec.SpecSuccessRate(),
		Evictions: r.CacheEvictions,
		P50:       r.P50,
		P99:       r.P99,
	}
	if locates := r.Rec.CacheHits + r.Rec.CacheMisses; locates > 0 {
		out.L2Share = float64(sumLevelHitsFrom(r, 2)) / float64(locates)
	}
	if ops > 0 {
		out.InvalPerOp = float64(r.Rec.CacheInvalidations) / float64(ops)
	}
	return out
}

// sumLevelHitsFrom totals descent-resume hits at cache level minLvl and
// above (the pinned top levels included).
func sumLevelHitsFrom(r TreeResult, minLvl int) int64 {
	var n int64
	for l := minLvl; l < len(r.Rec.CacheLevelHits); l++ {
		n += r.Rec.CacheLevelHits[l]
	}
	return n
}

// CacheResult carries the cells CacheGate asserts on.
type CacheResult struct {
	// Off / Default compare no budgeted cache against the default unified
	// configuration (levels=2) at the full level-1 working-set budget.
	Off, Default CacheCellResult
	// FlatSmall / UnifiedSmall compare the paper's flat level-1-only cache
	// against the unified multi-level cache at the same constrained budget
	// (a quarter of the level-1 working set) — the regime where the
	// architecture, not the budget, decides.
	FlatSmall, UnifiedSmall CacheCellResult
}

// cacheExpBase derives the sweep's shared shape from the scale.
func cacheExpBase(s Scale, name string, dist workload.Dist, pct, levels int) CacheExp {
	keys := s.Keys
	if keys < 1<<18 {
		keys = 1 << 18 // keep the 256 B-node tree at root level >= 5
	}
	return CacheExp{
		Name:         name,
		Keys:         keys,
		Dist:         dist,
		CachePct:     pct,
		Levels:       levels,
		ThreadsPerCS: min(s.ThreadsPerCS, 8),
		MeasureNS:    s.MeasureNS,
		WarmupOps:    s.WarmupOps,
	}
}

// CacheSweep runs the cache-size × levels-cached × skew sweep and renders
// it; typed metrics land in the collector (the BENCH_*.json artifact). The
// returned result feeds CacheGate.
func CacheSweep(s Scale, c *Collector) (*Table, *CacheResult) {
	t := NewTable("Cache: unified multi-level index cache (read-intensive, 256 B nodes)",
		"dist", "cache", "levels", "Mops", "RT/op", "L1 hit", "spec ok", "L2+ resume", "inval/op", "p50(us)")
	res := &CacheResult{}

	type cell struct {
		dist   workload.Dist
		pct    int
		levels int
		keep   **CacheCellResult
	}
	var offP, defP, flatP, uniP *CacheCellResult
	cells := []cell{
		{workload.Uniform, 0, -1, &offP},
		{workload.Uniform, 25, 1, &flatP},
		{workload.Uniform, 25, 2, &uniP},
		{workload.Uniform, 25, 3, nil},
		{workload.Uniform, 100, 1, nil},
		{workload.Uniform, 100, 2, &defP},
		{workload.Zipfian, 25, 1, nil},
		{workload.Zipfian, 25, 2, nil},
	}
	distName := func(d workload.Dist) string {
		if d == workload.Zipfian {
			return "zipf-0.99"
		}
		return "uniform"
	}
	for _, cl := range cells {
		lvlName := fmt.Sprint(cl.levels)
		sizeName := fmt.Sprintf("%d%%", cl.pct)
		if cl.levels < 0 {
			lvlName, sizeName = "off", "-"
		}
		name := fmt.Sprintf("cache/%s/size=%s/levels=%s", distName(cl.dist), sizeName, lvlName)
		r := runCacheCell(cacheExpBase(s, name, cl.dist, cl.pct, cl.levels))
		if cl.keep != nil {
			*cl.keep = &r
		}
		t.Add(distName(cl.dist), sizeName, lvlName, MopsString(r.Mops),
			fmt.Sprintf("%.2f", r.RTPerOp),
			fmt.Sprintf("%.1f%%", r.HitRatio*100),
			fmt.Sprintf("%.1f%%", r.SpecRate*100),
			fmt.Sprintf("%.1f%%", r.L2Share*100),
			fmt.Sprintf("%.4f", r.InvalPerOp),
			USString(r.P50))
		c.Add(Metric{
			Exp: "cache", Name: name,
			// The two headline cells are stable enough to regression-gate;
			// the constrained-budget cells sit on an eviction knife edge and
			// are reported for trajectory only.
			Gate:       cl.levels == 2 && cl.pct == 100 || cl.levels < 0,
			Mops:       r.Mops,
			P50NS:      r.P50,
			P99NS:      r.P99,
			RTPerOp:    r.RTPerOp,
			HitRatio:   r.HitRatio,
			SpecRate:   r.SpecRate,
			InvalPerOp: r.InvalPerOp,
			Evictions:  r.Evictions,
		})
	}
	res.Off, res.Default = *offP, *defP
	res.FlatSmall, res.UnifiedSmall = *flatP, *uniP
	t.Note("RT/op: network round trips per completed operation over the measured window")
	t.Note("L1 hit: leaf locations answered leaf-direct from a cached level-1 parent; spec ok: those validating first try")
	t.Note("L2+ resume: leaf locations whose descent resumed at a cached level >= 2 instead of the root")
	t.Note("levels=off caches only the pinned top two levels; levels=1 is the paper's flat type-1 cache")
	return t, res
}

// CacheGate is the CI check behind `shermanbench -exp cache -check`: at the
// default configuration (levels=2, full level-1 working-set budget),
// speculative leaf-direct reads must cut round trips per operation well
// below the cache-off baseline and speculation must almost always validate;
// and at a constrained budget the unified multi-level cache must beat the
// flat level-1-only baseline on RT/op — the measured answer to DESIGN.md
// §6's "is caching level-1 nodes worth it" question.
func CacheGate(r *CacheResult) error {
	if r == nil {
		return fmt.Errorf("cache gate: experiment did not run")
	}
	if r.Default.RTPerOp <= 0 || r.Off.RTPerOp <= 0 {
		return fmt.Errorf("cache gate: no round trips measured (default %.2f, off %.2f)",
			r.Default.RTPerOp, r.Off.RTPerOp)
	}
	if r.Default.RTPerOp > 0.6*r.Off.RTPerOp {
		return fmt.Errorf("cache gate: default config RT/op %.2f not under 60%% of cache-off %.2f",
			r.Default.RTPerOp, r.Off.RTPerOp)
	}
	if r.Default.SpecRate < 0.9 {
		return fmt.Errorf("cache gate: speculation success %.1f%% below 90%% at the default config",
			r.Default.SpecRate*100)
	}
	if r.UnifiedSmall.RTPerOp >= r.FlatSmall.RTPerOp {
		return fmt.Errorf("cache gate: unified cache RT/op %.2f not under flat level-1-only %.2f at the constrained budget",
			r.UnifiedSmall.RTPerOp, r.FlatSmall.RTPerOp)
	}
	return nil
}
