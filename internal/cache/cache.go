// Package cache implements the compute-server-side index cache as one
// unified, level-aware structure (§4.2.3 generalized): copies of internal
// nodes at every tree level, kept in per-level concurrent skiplists with
// lock-free search. The top two tree levels (the root and the level below
// it) are pinned — always admitted, never evicted, outside the byte budget —
// exactly the paper's type-2 "always cached" region; the levels below are
// the budgeted region: admission is frequency-gated under pressure, the
// byte budget is split across levels, and eviction weighs hit recency
// against level (an evicted level-1 entry costs a near-full descent to
// replace, an evicted level-3 entry one extra round trip, so deeper —
// lower-level — entries earn proportionally more protection).
//
// The cache needs no coherence protocol: internal nodes only carry location
// information, and every fetched node is validated against its fence keys
// and level — a stale entry steers the client to a node whose fences reject
// the key, which invalidates the poisoned path suffix and retraverses.
// Invalidation is O(affected), never a predicate scan: entries are indexed
// by their own address (reclaimed-lock repairs, split refreshes) and by
// every 8 MB chunk they reference (live migration drops exactly the entries
// that steer into a migrated chunk).
package cache

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"sherman/internal/alloc"
	"sherman/internal/layout"
	"sherman/internal/rdma"
)

// MaxLevels bounds the tree levels the cache indexes (level 0 — leaves — is
// never cached; real trees stay far below this).
const MaxLevels = 15

// DefaultLevels is the default budgeted caching depth: levels 1 and 2. The
// paper's type-1 cache is level 1 only; the second level lets a level-1 miss
// restart one read above the leaves instead of at the top (see DESIGN.md
// §10 for the measured trade-off).
const DefaultLevels = 2

// admission-filter geometry: a tiny decaying touch-count sketch gates
// admission to a full level, so one-shot traversals cannot thrash entries
// that earn repeated hits.
const (
	freqBuckets       = 1024
	freqDecayInterval = 4096
	freqAdmitMin      = 2
)

// Config sizes one compute server's cache.
type Config struct {
	// MaxBytes bounds the budgeted (non-pinned) entries; the pinned top
	// levels ride outside it, as in the paper.
	MaxBytes int64
	// NodeSize converts the byte budget to an entry budget.
	NodeSize int
	// Levels is the budgeted caching depth: tree levels 1..Levels are
	// cacheable. 0 means DefaultLevels; negative disables the budgeted
	// region entirely (top levels stay pinned).
	Levels int
}

// Entry is one cached internal node: a client-local copy of the node's
// buffer plus bookkeeping for eviction and targeted invalidation.
type Entry struct {
	// Addr is the node's disaggregated-memory address; validation failures
	// on nodes fetched through this entry invalidate it.
	Addr rdma.Addr
	// N is the decoded copy. It is immutable after insertion — updates
	// replace the whole entry.
	N layout.Internal

	level  uint8
	pinned bool
	key    uint64 // lower fence, the skiplist key
	// chunks are the 8 MB chunks this entry references — its own node plus
	// every child — the index InvalidateChunk drops it through. The slice
	// views chunkStore when the refs fit inline (the common case: children
	// stripe across few servers), so admission allocates only the Entry.
	chunks     []alloc.ChunkID
	chunkStore [8]alloc.ChunkID

	lastUse atomic.Int64
	dead    atomic.Bool
	node    *slNode
	poolIdx int // index in the eviction pool, guarded by Cache.mu
}

// Level returns the tree level of the cached node.
func (e *Entry) Level() uint8 { return e.level }

// Cache is one compute server's unified index cache. All client threads of
// the CS share it; lookups are lock-free, mutations serialize on one mutex.
type Cache struct {
	levels int // budgeted depth (0 = none)
	limit  int // budgeted entry capacity

	sl [MaxLevels + 1]*skiplist

	tick atomic.Int64

	mu      sync.Mutex
	pools   [MaxLevels + 1][]*Entry // evictable (budgeted) entries, per level
	total   int                     // budgeted entries across all levels
	pinned  []*Entry                // top-level entries, flushed wholesale on root change
	byAddr  map[rdma.Addr]*Entry
	byChunk map[alloc.ChunkID]map[*Entry]struct{}
	freq    [freqBuckets]uint8
	touches int
	rnd     rand.Source // guarded by mu

	rootMu    sync.RWMutex
	root      rdma.Addr
	rootLevel uint8

	hits         atomic.Int64
	misses       atomic.Int64
	evictions    atomic.Int64
	invalids     atomic.Int64
	admitRejects atomic.Int64
}

// New creates a cache per the config.
func New(cfg Config) *Cache {
	limit := int(cfg.MaxBytes / int64(cfg.NodeSize))
	if limit < 1 {
		limit = 1
	}
	levels := cfg.Levels
	if levels == 0 {
		levels = DefaultLevels
	}
	if levels < 0 {
		levels = 0
	}
	if levels > MaxLevels {
		levels = MaxLevels
	}
	c := &Cache{
		levels:  levels,
		limit:   limit,
		byAddr:  make(map[rdma.Addr]*Entry),
		byChunk: make(map[alloc.ChunkID]map[*Entry]struct{}),
		rnd:     rand.NewPCG(0x5eed, 0xfeed),
	}
	for i := range c.sl {
		c.sl[i] = newSkiplist()
	}
	return c
}

// Len returns the number of live budgeted entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// PinnedLen returns the number of pinned top-level entries.
func (c *Cache) PinnedLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pinned)
}

// Limit returns the budgeted entry capacity.
func (c *Cache) Limit() int { return c.limit }

// Levels returns the budgeted caching depth.
func (c *Cache) Levels() int { return c.levels }

// Hits returns the aggregate lookup-hit count.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns the aggregate lookup-miss count.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Evictions returns the number of budget-pressure evictions.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }

// Invalidations returns the number of entries dropped for staleness
// (validation failures, chunk migration, reclaimed-lock repairs).
func (c *Cache) Invalidations() int64 { return c.invalids.Load() }

// AdmissionRejects returns the number of inserts the frequency gate turned
// away under level pressure.
func (c *Cache) AdmissionRejects() int64 { return c.admitRejects.Load() }

// Root returns the cached root address and level (NilAddr when unknown).
func (c *Cache) Root() (rdma.Addr, uint8) {
	c.rootMu.RLock()
	defer c.rootMu.RUnlock()
	return c.root, c.rootLevel
}

// SetRoot records a (re)fetched root. A root change drops the pinned top
// entries — they belong to a stale top structure.
func (c *Cache) SetRoot(a rdma.Addr, level uint8) {
	c.rootMu.Lock()
	changed := a != c.root
	c.root, c.rootLevel = a, level
	c.rootMu.Unlock()
	if changed {
		c.FlushTop()
	}
}

// FlushTop discards every pinned top-level entry but keeps the root pointer.
// Clients call it when excessive B-link sibling walking signals that a
// pinned copy predates a split: the copy still passes fence/level validation
// (its fences were correct when taken) yet steers traversals one or more
// nodes left of their target.
func (c *Cache) FlushTop() {
	c.mu.Lock()
	victims := append([]*Entry(nil), c.pinned...)
	c.mu.Unlock()
	for _, e := range victims {
		c.drop(e, false)
	}
}

// Lookup returns the cached entry at the given tree level whose fence
// interval contains key, or nil on a miss at that level. The caller resolves
// the next hop via e.N.ChildFor(key) and must invalidate the entry (or the
// path through it) if the fetched node fails validation.
func (c *Cache) Lookup(key uint64, level uint8) *Entry {
	if level > MaxLevels {
		return nil
	}
	e := c.sl[level].floor(key)
	if e != nil && e.N.Covers(key) {
		e.lastUse.Store(c.tick.Add(1))
		c.hits.Add(1)
		return e
	}
	c.misses.Add(1)
	return nil
}

// Deepest returns the covering entry at the lowest tree level in
// [lo, hi] — the deepest cached point of the key's root-to-leaf path, where
// a traversal can resume. It does not touch the aggregate hit/miss
// counters: a descent consults it after its Lookup already counted the
// locate's outcome, and double counting would distort CacheStats' hit
// ratio (the per-level recorder counters credit resumes instead).
func (c *Cache) Deepest(key uint64, lo, hi uint8) *Entry {
	if hi > MaxLevels {
		hi = MaxLevels
	}
	for lvl := lo; lvl <= hi; lvl++ {
		if e := c.sl[lvl].floor(key); e != nil && e.N.Covers(key) {
			e.lastUse.Store(c.tick.Add(1))
			return e
		}
	}
	return nil
}

// Admissible reports whether a node at the given tree level can possibly
// be cached under rootLevel (pinned region or budgeted depth) — the cheap
// structural pre-check callers use to skip copying node buffers the cache
// would discard unseen. The frequency gate is not consulted: it must see
// the insert attempt to count the touch.
func (c *Cache) Admissible(level, rootLevel uint8) bool {
	if level == 0 || level > MaxLevels {
		return false
	}
	if rootLevel > 0 && level+1 >= rootLevel {
		return true
	}
	return int(level) <= c.levels
}

// share returns level lvl's slice of the budget: level 1 — whose misses
// cost a near-full descent — gets the largest share, each level above half
// the previous (2^(levels-lvl) weighting, normalized).
func (c *Cache) share(lvl uint8) int {
	if c.levels <= 0 || int(lvl) > c.levels {
		return 0
	}
	num := 1 << (c.levels - int(lvl))
	den := (1 << c.levels) - 1
	s := c.limit * num / den
	if s < 1 {
		s = 1
	}
	return s
}

// Insert caches an internal-node copy fetched during traversal. The buffer
// is owned by the cache afterwards. rootLevel (the level of the traversal's
// root) defines the pinned region: nodes at rootLevel-1 and above are always
// admitted and never evicted; nodes at budgeted levels pass the admission
// gate. Inserting over an existing fence key replaces the old entry — a
// split's parent update refreshes the cached copy in O(1).
func (c *Cache) Insert(addr rdma.Addr, n layout.Internal, rootLevel uint8) {
	lvl := n.Level()
	if lvl == 0 || lvl > MaxLevels {
		return
	}
	pinned := rootLevel > 0 && lvl+1 >= rootLevel
	if !pinned && int(lvl) > c.levels {
		return // below the pinned region, beyond the budgeted depth
	}
	e := &Entry{Addr: addr, N: n, level: lvl, pinned: pinned, key: n.LowerFence(), poolIdx: -1}
	e.chunks = appendRefChunks(e.chunkStore[:0], addr, n)
	e.lastUse.Store(c.tick.Add(1))

	// Replacing an existing entry at the same fence key (a split shrank the
	// node, a separator landed, a repoint swung a child) does not grow the
	// cache, so it bypasses the admission gate — refreshes must never lose
	// to a stale copy.
	replacing := false
	if ex := c.sl[lvl].floor(e.key); ex != nil && ex.key == e.key && !ex.dead.Load() {
		replacing = true
	}
	if !pinned && !replacing {
		c.mu.Lock()
		full := len(c.pools[lvl]) >= c.share(lvl)
		admit := !full || c.admitLocked(e.key)
		c.mu.Unlock()
		if !admit {
			c.admitRejects.Add(1)
			return
		}
	}

	if old := c.sl[lvl].insert(e); old != nil {
		c.unindex(old)
	}
	c.mu.Lock()
	c.index(e)
	c.mu.Unlock()
	if pinned {
		return
	}
	// The level's budget share is a hard cap (within-level recency
	// eviction), and the total budget is the cross-level backstop
	// (level-weighted eviction).
	for c.overShare(lvl) {
		c.evictFrom(lvl, lvl)
	}
	for c.overBudget() {
		c.evictFrom(1, uint8(c.levels))
	}
}

// admitLocked is the frequency gate: a decaying touch-count sketch over
// lower-fence keys; an entry is admitted into a full level only once its key
// region has been inserted (i.e. traversed) repeatedly within the decay
// window, so one-shot traversals cannot thrash entries earning steady hits.
func (c *Cache) admitLocked(key uint64) bool {
	b := (key * 0x9e3779b97f4a7c15) >> 54 % freqBuckets
	if c.freq[b] < 0xff {
		c.freq[b]++
	}
	c.touches++
	if c.touches >= freqDecayInterval {
		c.touches = 0
		for i := range c.freq {
			c.freq[i] /= 2
		}
	}
	return c.freq[b] >= freqAdmitMin
}

// index registers e in its level's eviction pool (or the pinned list) and
// the address/chunk indexes. Caller holds mu. The entry became visible to
// lock-free readers at the skiplist insert, so a concurrent validation
// failure may already have dropped it — sl.remove marked it dead before its
// (no-op) unindex, both ends serialized on mu — and registering the corpse
// would leak a budget slot and shadow live byAddr entries.
func (c *Cache) index(e *Entry) {
	if e.dead.Load() {
		return
	}
	if e.pinned {
		e.poolIdx = len(c.pinned)
		c.pinned = append(c.pinned, e)
	} else {
		e.poolIdx = len(c.pools[e.level])
		c.pools[e.level] = append(c.pools[e.level], e)
		c.total++
	}
	c.byAddr[e.Addr] = e
	for _, ck := range e.chunks {
		set := c.byChunk[ck]
		if set == nil {
			set = make(map[*Entry]struct{})
			c.byChunk[ck] = set
		}
		set[e] = struct{}{}
	}
}

// unindex removes e from the pool/pinned list and the address/chunk
// indexes.
func (c *Cache) unindex(e *Entry) {
	c.mu.Lock()
	c.unindexLocked(e)
	c.mu.Unlock()
}

func (c *Cache) unindexLocked(e *Entry) {
	list := &c.pools[e.level]
	if e.pinned {
		list = &c.pinned
	}
	i := e.poolIdx
	if i < 0 || i >= len(*list) || (*list)[i] != e {
		return
	}
	last := len(*list) - 1
	(*list)[i] = (*list)[last]
	(*list)[i].poolIdx = i
	*list = (*list)[:last]
	e.poolIdx = -1
	if !e.pinned {
		c.total--
	}
	if c.byAddr[e.Addr] == e {
		delete(c.byAddr, e.Addr)
	}
	for _, ck := range e.chunks {
		if set := c.byChunk[ck]; set != nil {
			delete(set, e)
			if len(set) == 0 {
				delete(c.byChunk, ck)
			}
		}
	}
}

// appendRefChunks appends the distinct chunks an entry references — its own
// node plus every child pointer (the bulkload allocator stripes children
// across servers, so a node's children span few — but more than one —
// chunks). Walking ChildAt directly instead of materializing Separators
// keeps admission free of per-node slice allocations.
func appendRefChunks(dst []alloc.ChunkID, addr rdma.Addr, n layout.Internal) []alloc.ChunkID {
	dst = addChunk(dst, addr)
	dst = addChunk(dst, n.Leftmost())
	for i, cnt := 0, n.Count(); i < cnt; i++ {
		dst = addChunk(dst, n.ChildAt(i))
	}
	return dst
}

// addChunk appends a's chunk to dst unless already present.
func addChunk(dst []alloc.ChunkID, a rdma.Addr) []alloc.ChunkID {
	ck := alloc.ChunkOf(a)
	for _, have := range dst {
		if have == ck {
			return dst
		}
	}
	return append(dst, ck)
}

// overShare reports whether level lvl exceeds its budget share.
func (c *Cache) overShare(lvl uint8) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pools[lvl]) > c.share(lvl)
}

// overBudget reports whether the budgeted entries exceed the byte budget.
func (c *Cache) overBudget() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total > c.limit
}

// sampleLocked picks one budgeted entry uniformly from levels [lo, hi].
// Caller holds mu and guarantees at least one entry exists there.
func (c *Cache) sampleLocked(lo, hi uint8) *Entry {
	n := 0
	for lvl := lo; lvl <= hi; lvl++ {
		n += len(c.pools[lvl])
	}
	i := int(c.rnd.Uint64() % uint64(n))
	for lvl := lo; lvl <= hi; lvl++ {
		if i < len(c.pools[lvl]) {
			return c.pools[lvl][i]
		}
		i -= len(c.pools[lvl])
	}
	return nil
}

// evictFrom applies power-of-two-choices over levels [lo, hi]: sample two
// budgeted entries uniformly and evict the one with the lower protection
// score — logical-LRU recency plus a per-level bonus of one full clock round
// per level of depth below the budgeted top, so a level-1 entry (a near-full
// descent to replace) outlives an equally-recent level-2 entry (one extra
// round trip). Within-level evictions (lo == hi) reduce to plain
// two-choice LRU.
func (c *Cache) evictFrom(lo, hi uint8) {
	c.mu.Lock()
	n := 0
	for lvl := lo; lvl <= hi; lvl++ {
		n += len(c.pools[lvl])
	}
	if n == 0 {
		c.mu.Unlock()
		return
	}
	a := c.sampleLocked(lo, hi)
	b := c.sampleLocked(lo, hi)
	if b == a && n > 1 {
		// Degenerate sample: choosing the same entry twice would evict it
		// regardless of recency; resample until distinct (n > 1 bounds the
		// expected tries at 2).
		for b == a {
			b = c.sampleLocked(lo, hi)
		}
	}
	victim := a
	if c.score(b) < c.score(a) {
		victim = b
	}
	c.unindexLocked(victim)
	c.mu.Unlock()
	c.sl[victim.level].remove(victim)
	c.evictions.Add(1)
}

// score is the eviction-protection score: recency plus level protection —
// one clock round (limit ticks, plus one so the bonus never ties away at
// tiny budgets) per level of depth below the budgeted top.
func (c *Cache) score(e *Entry) int64 {
	depth := int64(c.levels) - int64(e.level)
	if depth < 0 {
		depth = 0
	}
	return e.lastUse.Load() + depth*int64(c.limit+1)
}

// drop removes an entry, optionally counting it as a staleness
// invalidation; reports whether the entry was live.
func (c *Cache) drop(e *Entry, invalid bool) bool {
	if e == nil || e.dead.Load() {
		return false
	}
	if invalid {
		c.invalids.Add(1)
	}
	c.sl[e.level].remove(e)
	c.unindex(e)
	return true
}

// Invalidate drops an entry that steered a client to a wrong or freed node,
// reporting whether it was still live.
func (c *Cache) Invalidate(e *Entry) bool { return c.drop(e, true) }

// InvalidateAddr drops the entry caching the node at a, if any — the O(1)
// hook for targeted repairs: a reclaimed lock's holder may have died
// mid-write, so the post-reclaim validated read drops the possibly-stale
// copy instead of scanning for it.
func (c *Cache) InvalidateAddr(a rdma.Addr) bool {
	c.mu.Lock()
	e := c.byAddr[a]
	c.mu.Unlock()
	if e == nil {
		return false
	}
	c.drop(e, true)
	return true
}

// InvalidatePath drops the poisoned path suffix after a speculative read
// failed validation: the failing entry itself (any level, pinned included —
// a stale pinned entry must not survive to re-steer the retry) plus the
// covering entries at the budgeted levels above it, which are suspects for
// the same staleness. O(levels), not a scan. Returns the number of entries
// dropped.
func (c *Cache) InvalidatePath(key uint64, failed *Entry) int {
	dropped := 0
	if c.Invalidate(failed) {
		dropped++
	}
	for lvl := failed.level + 1; int(lvl) <= c.levels && lvl <= MaxLevels; lvl++ {
		if e := c.sl[lvl].floor(key); e != nil && !e.dead.Load() && e.N.Covers(key) {
			if c.drop(e, true) {
				dropped++
			}
		}
	}
	return dropped
}

// InvalidateChunk drops every entry that lives in — or steers into — the
// given chunk, in O(affected) through the chunk index: the migration engine
// calls it after moving a chunk so readers stop resolving through addresses
// that just died. Returns the number of entries dropped.
func (c *Cache) InvalidateChunk(ck alloc.ChunkID) int {
	c.mu.Lock()
	set := c.byChunk[ck]
	victims := make([]*Entry, 0, len(set))
	for e := range set {
		victims = append(victims, e)
	}
	c.mu.Unlock()
	for _, e := range victims {
		c.drop(e, true)
	}
	return len(victims)
}
