package sherman

import (
	"sync"
	"testing"

	"sherman/internal/testutil"
)

func testCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{MemoryServers: 2, ComputeServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// testTree creates a tree and registers Validate-on-exit, the public-API
// mirror of testutil.NewTree: a suite cannot pass while quietly corrupting
// the structure.
func testTree(t *testing.T, c *Cluster, opts TreeOptions) *Tree {
	t.Helper()
	tree, err := c.CreateTree(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if t.Failed() {
			return
		}
		if err := tree.Validate(); err != nil {
			t.Errorf("Validate on exit: %v", err)
		}
	})
	return tree
}

// gridOptions maps the shared harness matrix (testutil.Matrix) onto public
// TreeOptions: the TwoLevel cells run the full Sherman lock stack, the
// Checksum cells the FG-style baseline, so both lock-word formats ride
// along exactly as in the core-level grids.
func gridOptions() []TreeOptions {
	var out []TreeOptions
	for _, ax := range testutil.Matrix() {
		adv := &AdvancedOptions{TwoLevelVersions: ax.TwoLevel, CombineCommands: ax.Combine}
		if ax.TwoLevel {
			adv.OnChipLocks = true
			adv.LocalLockTables = true
			adv.WaitQueues = true
			adv.Handover = true
		}
		out = append(out, TreeOptions{NodeSize: testutil.SmallNodeSize, LocksPerMS: 1024, Advanced: adv})
	}
	return out
}

func TestNewClusterValidation(t *testing.T) {
	cases := []ClusterConfig{
		{},
		{MemoryServers: 1},
		{ComputeServers: 1},
		{MemoryServers: -1, ComputeServers: 1},
		{MemoryServers: 1 << 16, ComputeServers: 1},
	}
	for _, cfg := range cases {
		if _, err := NewCluster(cfg); err == nil {
			t.Errorf("NewCluster(%+v) succeeded, want error", cfg)
		}
	}
}

func TestTreeOptionsValidation(t *testing.T) {
	c := testCluster(t)
	bad := []TreeOptions{
		{KeySize: 4},
		{BulkFill: 1.5},
		{Advanced: &AdvancedOptions{WaitQueues: true}},
		{Advanced: &AdvancedOptions{LocalLockTables: true, Handover: true}},
	}
	for _, opts := range bad {
		if _, err := c.CreateTree(opts); err == nil {
			t.Errorf("CreateTree(%+v) succeeded, want error", opts)
		}
	}
}

func TestPutGetDeleteScan(t *testing.T) {
	for _, engine := range []Engine{EngineSherman, EngineFGPlus} {
		t.Run(engine.String(), func(t *testing.T) {
			c := testCluster(t)
			tree := testTree(t, c, TreeOptions{Engine: engine})
			s := tree.Session(0)

			if _, ok := s.Get(1); ok {
				t.Fatal("Get on empty tree found a value")
			}
			for k := uint64(1); k <= 500; k++ {
				s.Put(k, k*3)
			}
			for k := uint64(1); k <= 500; k++ {
				if v, ok := s.Get(k); !ok || v != k*3 {
					t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, v, ok, k*3)
				}
			}
			s.Put(42, 999) // update
			if v, _ := s.Get(42); v != 999 {
				t.Fatalf("updated Get(42) = %d, want 999", v)
			}
			if !s.Delete(42) {
				t.Fatal("Delete(42) = false")
			}
			if s.Delete(42) {
				t.Fatal("double Delete(42) = true")
			}
			if _, ok := s.Get(42); ok {
				t.Fatal("Get(42) after delete found a value")
			}

			kvs := s.Scan(40, 5)
			want := []uint64{40, 41, 43, 44, 45} // 42 deleted
			if len(kvs) != len(want) {
				t.Fatalf("Scan returned %d rows, want %d", len(kvs), len(want))
			}
			for i, kv := range kvs {
				if kv.Key != want[i] || kv.Value != want[i]*3 {
					t.Fatalf("Scan[%d] = %+v, want key %d", i, kv, want[i])
				}
			}
			if got := s.Scan(40, 0); got != nil {
				t.Fatalf("Scan span 0 = %v, want nil", got)
			}

		})
	}
}

func TestBulkloadValidation(t *testing.T) {
	c := testCluster(t)
	tree := testTree(t, c, DefaultTreeOptions())
	if err := tree.Bulkload([]KV{{Key: 0, Value: 1}}); err == nil {
		t.Error("Bulkload accepted key 0")
	}
	if err := tree.Bulkload([]KV{{Key: 5, Value: 1}, {Key: 5, Value: 2}}); err == nil {
		t.Error("Bulkload accepted duplicate keys")
	}
	if err := tree.Bulkload([]KV{{Key: 5, Value: 1}, {Key: 3, Value: 2}}); err == nil {
		t.Error("Bulkload accepted unsorted keys")
	}
	if err := tree.Bulkload([]KV{{Key: 1, Value: 10}, {Key: 2, Value: 20}}); err != nil {
		t.Errorf("valid Bulkload failed: %v", err)
	}
	s := tree.Session(0)
	if v, ok := s.Get(2); !ok || v != 20 {
		t.Errorf("Get(2) after bulkload = (%d,%v), want (20,true)", v, ok)
	}
}

func TestKeyZeroPanics(t *testing.T) {
	c := testCluster(t)
	tree := testTree(t, c, DefaultTreeOptions())
	s := tree.Session(0)
	for name, fn := range map[string]func(){
		"Put":    func() { s.Put(0, 1) },
		"Delete": func() { s.Delete(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with key 0 did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSessionOutOfRangePanics(t *testing.T) {
	c := testCluster(t)
	tree := testTree(t, c, DefaultTreeOptions())
	for _, cs := range []int{-1, 2, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Session(%d) did not panic", cs)
				}
			}()
			tree.Session(cs)
		}()
	}
}

// TestConcurrentSessionsAgainstReference runs concurrent random operations
// on disjoint key stripes — seeded through the shared harness, so a failure
// names the seed — and compares the final tree contents against a
// per-stripe reference map. Validate-on-exit rides on testTree.
func TestConcurrentSessionsAgainstReference(t *testing.T) {
	testutil.RunSeeds(t, 2, func(t *testing.T, seed uint64) {
		c := testCluster(t)
		tree := testTree(t, c, DefaultTreeOptions())

		const workers = 8
		const opsPerWorker = 400
		refs := make([]map[uint64]uint64, workers)

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s := tree.Session(w % c.ComputeServers())
				ref := make(map[uint64]uint64)
				rng := testutil.RNG(seed<<8 | uint64(w))
				base := uint64(w)*100_000 + 1
				for i := 0; i < opsPerWorker; i++ {
					k := base + rng.Uint64N(200)
					switch rng.Uint64N(10) {
					case 0, 1: // delete
						s.Delete(k)
						delete(ref, k)
					default: // put
						v := rng.Uint64() | 1
						s.Put(k, v)
						ref[k] = v
					}
				}
				refs[w] = ref
			}(w)
		}
		wg.Wait()

		s := tree.Session(0)
		for w, ref := range refs {
			for k, v := range ref {
				got, ok := s.Get(k)
				if !ok || got != v {
					t.Fatalf("worker %d key %d: Get = (%d,%v), want (%d,true)", w, k, got, ok, v)
				}
			}
		}
	})
}

func TestStatsSurface(t *testing.T) {
	c := testCluster(t)
	tree := testTree(t, c, DefaultTreeOptions())
	s := tree.Session(0)
	for k := uint64(1); k <= 100; k++ {
		s.Put(k, k)
	}
	for k := uint64(1); k <= 100; k++ {
		s.Get(k)
	}
	s.Scan(1, 10)
	s.Delete(50)

	st := s.Stats()
	if st.Inserts != 100 || st.Lookups != 100 || st.Scans != 1 || st.Deletes != 1 {
		t.Errorf("op counts = %+v", st)
	}
	if st.RoundTrips == 0 || st.WriteBytes == 0 {
		t.Errorf("verb counters empty: %+v", st)
	}
	if st.P50LatencyNS <= 0 || st.P99LatencyNS < st.P50LatencyNS {
		t.Errorf("latencies inconsistent: p50=%d p99=%d", st.P50LatencyNS, st.P99LatencyNS)
	}
	if s.VirtualNow() <= 0 {
		t.Error("virtual clock did not advance")
	}
	if s.ComputeServer() != 0 {
		t.Errorf("ComputeServer = %d, want 0", s.ComputeServer())
	}

	ls := tree.LockStats()
	// 100 puts + 1 delete, plus parent-node locks taken by leaf splits.
	if ls.Acquisitions < 101 {
		t.Errorf("lock acquisitions = %d, want >= 101", ls.Acquisitions)
	}
	if cs := tree.CacheStats(0); cs.Capacity <= 0 || cs.Levels <= 0 {
		t.Errorf("cache capacity/levels = %d/%d", cs.Capacity, cs.Levels)
	}
	if st.SpeculativeReads == 0 || st.SpeculativeReads < st.SpeculativeFails {
		t.Errorf("speculation counters inconsistent: reads=%d fails=%d",
			st.SpeculativeReads, st.SpeculativeFails)
	}
	as := c.AllocStats()
	if as.Nodes == 0 || as.ChunkRPCs == 0 {
		t.Errorf("alloc stats empty: %+v", as)
	}
	if c.MemoryUsage() == 0 {
		t.Error("memory usage zero after inserts")
	}
}

// TestAdvancedOptionsMatrix creates a tree for every consistent ablation
// combination and smoke-tests it.
func TestAdvancedOptionsMatrix(t *testing.T) {
	combos := []AdvancedOptions{
		{},
		{CombineCommands: true},
		{OnChipLocks: true},
		{TwoLevelVersions: true},
		{CombineCommands: true, OnChipLocks: true},
		{LocalLockTables: true},
		{LocalLockTables: true, WaitQueues: true},
		{LocalLockTables: true, WaitQueues: true, Handover: true},
		{TwoLevelVersions: true, CombineCommands: true, OnChipLocks: true,
			LocalLockTables: true, WaitQueues: true, Handover: true},
	}
	for _, adv := range combos {
		adv := adv
		c := testCluster(t)
		tree := testTree(t, c, TreeOptions{Advanced: &adv})
		s := tree.Session(0)
		for k := uint64(1); k <= 50; k++ {
			s.Put(k, k+7)
		}
		for k := uint64(1); k <= 50; k++ {
			if v, ok := s.Get(k); !ok || v != k+7 {
				t.Fatalf("%+v: Get(%d) = (%d,%v)", adv, k, v, ok)
			}
		}
	}
}

func TestKeySizeOption(t *testing.T) {
	c := testCluster(t)
	tree := testTree(t, c, TreeOptions{KeySize: 64, NodeSize: 4096})
	s := tree.Session(0)
	for k := uint64(1); k <= 200; k++ {
		s.Put(k, k*2)
	}
	for k := uint64(1); k <= 200; k++ {
		if v, ok := s.Get(k); !ok || v != k*2 {
			t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
		}
	}
}

func TestFabricParamOverrides(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		MemoryServers:  1,
		ComputeServers: 1,
		Fabric: FabricParams{
			RTTNS:          5000,
			AtomicBuckets:  64,
			OnChipMemBytes: 128 << 10,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tree := testTree(t, c, DefaultTreeOptions())
	s := tree.Session(0)
	s.Put(1, 2)
	if v, ok := s.Get(1); !ok || v != 2 {
		t.Fatalf("Get(1) = (%d,%v)", v, ok)
	}
	// A 5 us RTT means even one round trip exceeds 5000 virtual ns.
	if s.VirtualNow() < 5000 {
		t.Errorf("virtual clock %d too small for RTT override", s.VirtualNow())
	}
}

func TestStatsAndCompact(t *testing.T) {
	c := testCluster(t)
	tree := testTree(t, c, DefaultTreeOptions())
	s := tree.Session(0)
	const n = 4000
	for k := uint64(1); k <= n; k++ {
		s.Put(k, k)
	}
	st := tree.Stats()
	if st.Entries != n || st.Height < 2 || st.LeafNodes == 0 {
		t.Fatalf("stats after inserts: %+v", st)
	}
	for k := uint64(1); k <= n; k++ {
		if k%8 != 0 {
			s.Delete(k)
		}
	}
	res := tree.Compact()
	if res.EntriesKept != n/8 || res.BytesReclaimed <= 0 || res.NodesAfter >= res.NodesBefore {
		t.Fatalf("compact: %+v", res)
	}
	// Sessions opened after Compact see exactly the survivors.
	s2 := tree.Session(1)
	for k := uint64(8); k <= n; k += 8 {
		if v, ok := s2.Get(k); !ok || v != k {
			t.Fatalf("survivor %d = (%d,%v)", k, v, ok)
		}
	}
	if _, ok := s2.Get(3); ok {
		t.Fatal("deleted key resurrected")
	}
	after := tree.Stats()
	if after.LeafFill <= st.LeafFill-0.2 {
		t.Fatalf("fill did not recover: %.2f -> %.2f", st.LeafFill, after.LeafFill)
	}
}
