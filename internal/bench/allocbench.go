package bench

import (
	"fmt"
	"runtime"
	"time"

	"sherman/internal/cluster"
	"sherman/internal/core"
	"sherman/internal/layout"
	"sherman/internal/stats"
	"sherman/internal/transport/tcp"
)

// This file is the heap-discipline experiment: single-goroutine probes that
// measure steady-state allocations per operation with runtime.ReadMemStats
// deltas, the in-harness twin of `go test -bench=Probe -benchmem` in
// internal/core. The probes deliberately run on one goroutine with no
// sim.Gate pacing — the quantity under test is the allocator's behavior on
// the hot path, not throughput — so the numbers are exact counts, not
// samples, and the AllocGate can demand literal zero.

// allocProbeOps is the measured-loop length of each probe. Large enough that
// any per-op allocation dominates one-time noise (a lazily grown map bucket,
// a pool refill after GC), small enough to keep the quick CI run cheap.
const allocProbeOps = 16384

// allocProbeKeys is the bulkloaded key count; probes cycle keys 1..allocProbeKeys.
const allocProbeKeys = 4096

// execBatchSize is the mixed-batch probe's ops per Exec call.
const execBatchSize = 16

// allocProbe is one steady-state measurement: name is the Metric row key
// (alloc/<name>), depth the pipeline depth, and run the measured loop. run
// is called once for warmup (which must also fully warm the index cache and
// any lazily sized scratch) and once, after a forced GC, for measurement.
type allocProbe struct {
	name  string
	depth int
	ops   int // logical operations per run() (for the per-op division)
	run   func(h *core.Handle, as *core.Async)
	// setup overrides the default fixture (allocSetup) — the replicated
	// probe builds a factor-2 cluster so the mirror engine is on the path.
	setup func(depth int) (*core.Handle, *core.Async)
}

// allocProbes is the probe set. get_cached and put_steady are the tentpole
// claims (zero allocs in steady state); the pipelined and mixed-batch
// variants pin down the async executor and planner scratch.
func allocProbes() []allocProbe {
	return []allocProbe{
		{
			name: "get_cached", depth: 1, ops: allocProbeOps,
			run: func(h *core.Handle, as *core.Async) {
				for i := 0; i < allocProbeOps; i++ {
					h.Lookup(uint64(i%allocProbeKeys + 1))
				}
			},
		},
		{
			name: "get_pipelined_d8", depth: 8, ops: allocProbeOps,
			run: func(h *core.Handle, as *core.Async) {
				for i := 0; i < allocProbeOps; i++ {
					as.Submit(core.Op{Kind: stats.OpLookup, Key: uint64(i%allocProbeKeys + 1)})
				}
				as.Flush()
			},
		},
		{
			name: "put_steady", depth: 1, ops: allocProbeOps,
			run: func(h *core.Handle, as *core.Async) {
				for i := 0; i < allocProbeOps; i++ {
					h.Insert(uint64(i%allocProbeKeys+1), uint64(i+1))
				}
			},
		},
		{
			// The steady put with factor-2 replication: every commit is
			// preceded by a mirror doorbell, which must ride the pooled
			// replica scratch and add zero allocations of its own.
			name: "put_steady_rf2", depth: 1, ops: allocProbeOps,
			setup: allocSetupRF2,
			run: func(h *core.Handle, as *core.Async) {
				for i := 0; i < allocProbeOps; i++ {
					h.Insert(uint64(i%allocProbeKeys+1), uint64(i+1))
				}
			},
		},
		{
			name: "put_pipelined_d8", depth: 8, ops: allocProbeOps,
			run: func(h *core.Handle, as *core.Async) {
				for i := 0; i < allocProbeOps; i++ {
					as.Submit(core.Op{Kind: stats.OpInsert, Key: uint64(i%allocProbeKeys + 1), Value: uint64(i + 1)})
				}
				as.Flush()
			},
		},
		{
			// The cached get over real sockets: in-process wire-v2 servers
			// share the probe's heap, so the deltas cover the whole round
			// trip — mux issue/await, the server's pooled request contexts,
			// its coalescing writer and the inline-read fast path.
			name: "get_tcp", depth: 1, ops: allocProbeOps,
			setup: allocSetupTCP,
			run: func(h *core.Handle, as *core.Async) {
				for i := 0; i < allocProbeOps; i++ {
					h.Lookup(uint64(i%allocProbeKeys + 1))
				}
			},
		},
		{
			name: "exec_mixed_d4", depth: 4, ops: allocProbeOps,
			run: func(h *core.Handle, as *core.Async) {
				ops := make([]core.Op, execBatchSize)
				results := make([]core.OpResult, execBatchSize)
				for i := 0; i < allocProbeOps/execBatchSize; i++ {
					for j := range ops {
						k := uint64((i*execBatchSize+j)%allocProbeKeys + 1)
						if j%2 == 0 {
							ops[j] = core.Op{Kind: stats.OpLookup, Key: k}
						} else {
							ops[j] = core.Op{Kind: stats.OpInsert, Key: k, Value: k}
						}
					}
					as.ExecInto(ops, results)
				}
			},
		},
	}
}

// allocSetup builds the probe fixture: a small bulkloaded Sherman tree on a
// 2-MS/1-CS cluster with the index cache warmed by one full key sweep, so
// the measured loops run entirely in the cached steady state the tentpole
// targets.
func allocSetup(depth int) (*core.Handle, *core.Async) {
	return allocSetupCluster(depth, cluster.Config{NumMS: 2, NumCS: 1})
}

// allocSetupRF2 is allocSetup on a replicated cluster: three memory servers
// at ReplicationFactor 2, so every bulk chunk has a live replica and every
// measured put mirrors before committing.
func allocSetupRF2(depth int) (*core.Handle, *core.Async) {
	return allocSetupCluster(depth, cluster.Config{NumMS: 3, NumCS: 1, ReplicationFactor: 2})
}

// allocSetupTCP is allocSetup over real sockets: two in-process wire-v2
// servers (the same demux / inline-read / coalescing-writer path shermand
// runs) and a TCP cluster client with heartbeats disabled, so the measured
// deltas include both ends of every round trip in one heap. The servers are
// deliberately leaked — probes have no teardown hook, and the measurement
// process exits right after.
func allocSetupTCP(depth int) (*core.Handle, *core.Async) {
	endpoints := make([]string, 2)
	for i := range endpoints {
		s, err := tcp.NewServer("127.0.0.1:0")
		if err != nil {
			panic("bench: alloc tcp server: " + err.Error())
		}
		go s.Serve()
		endpoints[i] = s.Addr()
	}
	tc, err := tcp.NewCluster(endpoints, 1, tcp.Options{HeartbeatInterval: -1})
	if err != nil {
		panic("bench: alloc tcp cluster: " + err.Error())
	}
	return allocSetupTree(depth, tc)
}

func allocSetupCluster(depth int, ccfg cluster.Config) (*core.Handle, *core.Async) {
	return allocSetupTree(depth, cluster.New(ccfg))
}

func allocSetupTree(depth int, cl core.Backend) (*core.Handle, *core.Async) {
	cfg := core.ShermanConfig()
	cfg.Format = layout.NewFormat(layout.TwoLevel, 8, 256)
	cfg.LocksPerMS = 1024
	tr := core.New(cl, cfg)
	kvs := make([]layout.KV, allocProbeKeys)
	for i := range kvs {
		k := uint64(i + 1)
		kvs[i] = layout.KV{Key: k, Value: k * 3}
	}
	tr.Bulkload(kvs)
	h := tr.NewHandle(0, 0)
	as := h.NewAsync(depth)
	for i := 0; i < allocProbeKeys; i++ {
		h.Lookup(uint64(i + 1))
	}
	return h, as
}

// measureAlloc runs one probe to steady state and returns its ReadMemStats
// deltas: allocations and heap bytes per operation, and the GC pause share
// of the measured wall time.
func measureAlloc(p allocProbe) (allocsPerOp, bytesPerOp, gcPauseFrac float64) {
	setup := p.setup
	if setup == nil {
		setup = allocSetup
	}
	h, as := setup(p.depth)
	// Warmup run: populates handle scratch, pools, and the tree's value
	// overwrites so the measured run sees only steady-state work.
	p.run(h, as)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	p.run(h, as)
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)
	ops := float64(p.ops)
	allocsPerOp = float64(after.Mallocs-before.Mallocs) / ops
	bytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / ops
	if wall > 0 {
		gcPauseFrac = float64(after.PauseTotalNs-before.PauseTotalNs) / float64(wall.Nanoseconds())
	}
	return allocsPerOp, bytesPerOp, gcPauseFrac
}

// AllocTables reports the zero-allocation experiment: exact ReadMemStats
// deltas for the steady-state hot paths. When c is non-nil, typed metrics
// (HasAlloc rows) are recorded for the JSON report, the baseline regression
// band, and the hard AllocGate.
func AllocTables(s Scale, c *Collector) []*Table {
	t := NewTable("Alloc: steady-state heap traffic per op (ReadMemStats deltas)",
		"probe", "depth", "allocs/op", "B/op", "gc-pause-frac")
	for _, p := range allocProbes() {
		allocs, bytes, pause := measureAlloc(p)
		t.Add(p.name, fmt.Sprint(p.depth),
			fmt.Sprintf("%.4f", allocs), fmt.Sprintf("%.1f", bytes), fmt.Sprintf("%.5f", pause))
		c.Add(Metric{
			Exp:  "alloc",
			Name: "alloc/" + p.name,
			Gate: true,
			// Mops deliberately 0: probes are unpaced single-goroutine loops,
			// so throughput is meaningless and the Mops gate must skip them.
			HasAlloc:    true,
			AllocsPerOp: allocs,
			BytesPerOp:  bytes,
			GCPauseFrac: pause,
		})
	}
	t.Note("single goroutine, %d ops per probe after a warmup pass and forced GC", allocProbeOps)
	t.Note("exec_mixed's residual allocs/op is the caller-owned results slice of Exec-without-Into callers: the probe itself recycles")
	t.Note("get_tcp runs client and in-process wire-v2 servers in one heap: the delta covers both ends of every real round trip")
	return []*Table{t}
}

// allocBudgets is the hard per-op ceiling of each probe, enforced by
// AllocGate independent of the baseline band. The steady-state paths must
// measure exactly zero; 0.01 absorbs sub-one-per-hundred-ops noise (e.g. a
// pool refill after a background GC) without admitting any real per-op
// allocation. exec_mixed_d4 has no steady per-op allocs either — its
// results buffer is recycled via ExecInto — so it shares the zero budget.
var allocBudgets = map[string]float64{
	"alloc/get_cached":       0.01,
	"alloc/get_pipelined_d8": 0.01,
	"alloc/put_steady":       0.01,
	"alloc/put_steady_rf2":   0.01,
	"alloc/put_pipelined_d8": 0.01,
	"alloc/get_tcp":          0.01,
	"alloc/exec_mixed_d4":    0.01,
}

// AllocGate is the CI check behind `shermanbench -exp alloc -check`: every
// probe must come in under its hard budget — cached gets and steady puts at
// zero allocations per operation. Unlike the baseline regression band, these
// ceilings are absolute: a baseline refresh cannot ratchet them upward.
func AllocGate(ms []Metric) error {
	seen := 0
	for _, m := range ms {
		if !m.HasAlloc {
			continue
		}
		budget, ok := allocBudgets[m.Name]
		if !ok {
			return fmt.Errorf("alloc gate: %s has no budget — add it to allocBudgets", m.Name)
		}
		seen++
		if m.AllocsPerOp > budget {
			return fmt.Errorf("alloc gate: %s measured %.4f allocs/op, budget %.2f",
				m.Name, m.AllocsPerOp, budget)
		}
	}
	if seen != len(allocBudgets) {
		return fmt.Errorf("alloc gate: %d of %d probes present in the run", seen, len(allocBudgets))
	}
	return nil
}
