// Package core implements the Sherman distributed B+Tree (§4): a B-link
// tree spread across memory servers, manipulated purely with one-sided RDMA
// verbs — lock-free reads validated by versions, exclusive-locked writes via
// HOCL, command combination on write-backs, and the two-level version layout
// that shrinks non-structural write-backs to a single entry.
//
// The same engine, reconfigured, is the FG+ baseline the paper compares
// against (§5.1.2): sorted checksum-protected nodes, host-memory spin locks,
// no command combination — which makes the ablation of Figures 10/11 a
// matter of flipping Config fields one at a time.
package core

import (
	"sherman/internal/hocl"
	"sherman/internal/layout"
)

// Config selects the tree variant.
type Config struct {
	// Format is the node geometry and consistency mode.
	Format layout.Format

	// Combine posts dependent WRITEs (write-back + lock release, split
	// sibling + node + release) as one doorbell batch (§4.5).
	Combine bool

	// Locks configures HOCL (§4.3); hocl.Baseline() gives FG-style host
	// memory spin locks.
	Locks hocl.Mode

	// LocksPerMS sizes each global lock table (0 = hocl default).
	LocksPerMS int

	// CacheBytes bounds each compute server's budgeted index-cache region
	// (§4.2.3). The paper gives each CS 500 MB; scale with the tree. 0
	// means 64 MB; the pinned top two levels ride outside the budget.
	CacheBytes int64

	// CacheLevels is the budgeted caching depth: tree levels 1..CacheLevels
	// are cacheable below the always-pinned top two levels. 0 means the
	// default (2); 1 reproduces the paper's flat level-1-only type-1 cache;
	// negative disables the budgeted region entirely (top levels only).
	CacheLevels int

	// BulkFill is the bulkload fill factor (the paper loads 80% full).
	// 0 means 0.8.
	BulkFill float64

	// MaxWrapRetries bounds consecutive wraparound-guard retries of a
	// lock-free read (§4.4's 8 us rule); 0 means 3.
	MaxWrapRetries int

	// Poison fills recycled hot-path scratch (the per-handle arena and the
	// pooled write-op lists) with 0xDB when released, so a reuse-after-free —
	// code retaining a buffer past its operation — reads deterministic
	// garbage instead of a stale-but-plausible node image. Debug aid for the
	// differential oracle suite; costs a memset per operation.
	Poison bool
}

// Name returns a short label for reports.
func (c Config) Name() string {
	switch {
	case c.Format.Mode == layout.TwoLevel && c.Combine && c.Locks == hocl.Sherman():
		return "Sherman"
	case c.Format.Mode == layout.Checksum && !c.Combine && c.Locks == hocl.Baseline():
		return "FG+"
	default:
		return "custom"
	}
}

func (c Config) bulkFill() float64 {
	if c.BulkFill == 0 {
		return 0.8
	}
	return c.BulkFill
}

func (c Config) maxWrapRetries() int {
	if c.MaxWrapRetries == 0 {
		return 3
	}
	return c.MaxWrapRetries
}

// ShermanConfig is the full system: two-level versions, command combination,
// hierarchical on-chip locks.
func ShermanConfig() Config {
	return Config{
		Format:  layout.DefaultFormat(layout.TwoLevel),
		Combine: true,
		Locks:   hocl.Sherman(),
	}
}

// FGPlusConfig is the strengthened baseline of §5.1.2: FG's design (sorted
// checksum nodes, one-sided spin locks) plus the fairness optimizations the
// authors added (index cache, WRITE-based lock release).
func FGPlusConfig() Config {
	return Config{
		Format:  layout.DefaultFormat(layout.Checksum),
		Combine: false,
		Locks:   hocl.Baseline(),
	}
}

// AblationStep identifies one bar group of Figures 10 and 11; each step adds
// one technique on top of the previous.
type AblationStep int

// Ablation steps, in the paper's order.
const (
	StepFGPlus AblationStep = iota
	StepCombine
	StepOnChip
	StepHierarchical
	StepTwoLevelVer
)

// String names the step as the figures do.
func (s AblationStep) String() string {
	return [...]string{"FG+", "+Combine", "+On-Chip", "+Hierarchical", "+2-Level Ver"}[s]
}

// AblationConfig returns the tree configuration for a step.
func AblationConfig(s AblationStep) Config {
	c := FGPlusConfig()
	if s >= StepCombine {
		c.Combine = true
	}
	if s >= StepOnChip {
		c.Locks.OnChip = true
	}
	if s >= StepHierarchical {
		c.Locks.Local = true
		c.Locks.WaitQueue = true
		c.Locks.Handover = true
	}
	if s >= StepTwoLevelVer {
		c.Format = layout.DefaultFormat(layout.TwoLevel)
	}
	return c
}

// AblationSteps lists all steps in order.
func AblationSteps() []AblationStep {
	return []AblationStep{StepFGPlus, StepCombine, StepOnChip, StepHierarchical, StepTwoLevelVer}
}
