package core

import (
	"fmt"
	"sort"

	"sherman/internal/cache"
	"sherman/internal/cluster"
	"sherman/internal/hocl"
	"sherman/internal/layout"
	"sherman/internal/rdma"
	"sherman/internal/stats"
)

// Insert stores (key, value), updating in place when key exists (the paper
// folds updates into insert, §1). Key 0 is reserved.
func (h *Handle) Insert(key, value uint64) {
	if key == 0 {
		panic("core: key 0 is reserved")
	}
	h.C.M.BeginOp()
	t0 := h.C.Now()
	dataBytes := h.insertInner(key, value)
	h.Rec.RecordOp(stats.OpInsert, h.C.Now()-t0)
	h.Rec.WriteRoundTrips.Record(int(h.C.M.OpRoundTrips))
	h.Rec.WriteSizes.Record(dataBytes)
}

// Delete removes key, reporting whether it was present. Non-structural
// deletes clear the entry in place (§4.4); underfull leaves are tolerated
// rather than merged (see DESIGN.md §5).
func (h *Handle) Delete(key uint64) bool {
	if key == 0 {
		panic("core: key 0 is reserved")
	}
	h.C.M.BeginOp()
	t0 := h.C.Now()
	found, dataBytes := h.deleteInner(key)
	h.Rec.RecordOp(stats.OpDelete, h.C.Now()-t0)
	h.Rec.WriteRoundTrips.Record(int(h.C.M.OpRoundTrips))
	if found {
		h.Rec.WriteSizes.Record(dataBytes)
	}
	return found
}

// unlockWrite releases g, flushing pending dependent writes per the tree's
// command-combination setting.
func (h *Handle) unlockWrite(g hocl.Guard, pending []rdma.WriteOp) {
	h.t.locks.Unlock(h.C, g, pending, h.t.cfg.Combine)
}

// lockLeafForWrite locks and reads the leaf that must hold key, handling
// stale steering and B-link move-right under lock coupling (unlock current,
// lock sibling — Sherman holds at most one node lock at a time, §4.3 [52]).
func (h *Handle) lockLeafForWrite(key uint64) (rdma.Addr, hocl.Guard, layout.Leaf) {
	addr, ce := h.locateLeaf(key)
	hops := 0
	for {
		g := h.t.locks.Lock(h.C, addr)
		if g.HandedOver() {
			h.Rec.Handovers++
		}
		n, _ := h.readNode(addr, h.leafBuf)
		if !n.Alive() || !n.IsLeaf() || key < n.LowerFence() {
			h.unlockWrite(g, nil)
			if ce != nil {
				h.cache.Invalidate(ce)
				ce = nil
			}
			addr = h.traverseToLeaf(key)
			continue
		}
		if n.UpperFence() != layout.NoUpperBound && key >= n.UpperFence() {
			sib := n.Sibling()
			h.unlockWrite(g, nil)
			if sib.IsNil() {
				panic(fmt.Sprintf("core: rightmost leaf %v has finite upper fence", addr))
			}
			h.noteSiblingHop(&hops)
			addr = sib
			continue
		}
		return addr, g, layout.AsLeaf(n)
	}
}

func (h *Handle) insertInner(key, value uint64) (dataBytes int64) {
	addr, g, leaf := h.lockLeafForWrite(key)
	f := h.t.cfg.Format
	h.C.Step(h.C.F.P.LocalStepNS)
	if f.Mode == layout.TwoLevel {
		i, found := leaf.Find(key)
		if !found {
			i = leaf.FindFree()
		}
		if found || i >= 0 {
			// Entry-level modification: bump FEV/REV and write back only the
			// entry (Figure 7 lines 11-17) — the write-amplification fix.
			leaf.SetEntry(i, key, value)
			off, sz := leaf.EntrySpan(i)
			h.unlockWrite(g, []rdma.WriteOp{{Addr: addr.Add(uint64(off)), Data: leaf.B[off : off+sz]}})
			return int64(sz)
		}
		return h.splitLeaf(addr, g, leaf, key, value)
	}
	if leaf.InsertSorted(key, value) {
		leaf.UpdateChecksum()
		h.unlockWrite(g, []rdma.WriteOp{{Addr: addr, Data: leaf.B}})
		return int64(f.NodeSize)
	}
	return h.splitLeaf(addr, g, leaf, key, value)
}

func (h *Handle) deleteInner(key uint64) (bool, int64) {
	addr, g, leaf := h.lockLeafForWrite(key)
	f := h.t.cfg.Format
	h.C.Step(h.C.F.P.LocalStepNS)
	if f.Mode == layout.TwoLevel {
		i, found := leaf.Find(key)
		if !found {
			h.unlockWrite(g, nil)
			return false, 0
		}
		leaf.ClearEntry(i)
		off, sz := leaf.EntrySpan(i)
		h.unlockWrite(g, []rdma.WriteOp{{Addr: addr.Add(uint64(off)), Data: leaf.B[off : off+sz]}})
		return true, int64(sz)
	}
	if !leaf.DeleteSorted(key) {
		h.unlockWrite(g, nil)
		return false, 0
	}
	leaf.UpdateChecksum()
	h.unlockWrite(g, []rdma.WriteOp{{Addr: addr, Data: leaf.B}})
	return true, int64(f.NodeSize)
}

// splitLeaf splits the locked full leaf, inserting (key, value) into the
// proper half, and propagates the separator to the parent (Figure 7 lines
// 18-39). It returns the data bytes written back.
func (h *Handle) splitLeaf(addr rdma.Addr, g hocl.Guard, leaf layout.Leaf, key, value uint64) int64 {
	f := h.t.cfg.Format
	kvs := leaf.Entries() // sorts the unsorted leaf (Figure 7 line 21)
	i := sort.Search(len(kvs), func(i int) bool { return kvs[i].Key >= key })
	kvs = append(kvs, layout.KV{})
	copy(kvs[i+1:], kvs[i:])
	kvs[i] = layout.KV{Key: key, Value: value}

	mid := len(kvs) / 2
	sep := kvs[mid].Key

	sibAddr := h.alloc.Alloc(f.NodeSize)
	sib := layout.NewLeaf(f, sep, leaf.UpperFence())
	sib.SetSibling(leaf.Sibling())
	sib.SetEntries(kvs[mid:])

	leaf.SetEntries(kvs[:mid])
	leaf.SetUpperFence(sep)
	leaf.SetSibling(sibAddr)
	if f.Mode == layout.TwoLevel {
		leaf.BumpNodeVersions() // node-level modification (Figure 7 lines 26-28)
	} else {
		sib.UpdateChecksum()
		leaf.UpdateChecksum()
	}

	dataBytes := int64(2 * f.NodeSize)
	// Sibling write-back, node write-back and lock release combine when the
	// new sibling landed on the same MS (Figure 7 lines 29-35).
	if sibAddr.MS() == addr.MS() {
		h.unlockWrite(g, []rdma.WriteOp{
			{Addr: sibAddr, Data: sib.B},
			{Addr: addr, Data: leaf.B},
		})
	} else {
		h.C.Write(sibAddr, sib.B)
		h.unlockWrite(g, []rdma.WriteOp{{Addr: addr, Data: leaf.B}})
	}
	h.insertParent(sep, sibAddr, 1)
	return dataBytes
}

// insertParent inserts (sepKey -> child) into the internal node at the given
// level, creating a new root when the tree grows (insert_internal of
// Figure 7 line 39).
func (h *Handle) insertParent(sepKey uint64, child rdma.Addr, level uint8) {
	f := h.t.cfg.Format
	for {
		root, rootLvl := h.top.Root()
		if root.IsNil() {
			root, rootLvl = h.refreshRoot()
		}
		if rootLvl < level {
			// The split node was the root: grow the tree.
			newRootAddr := h.alloc.Alloc(f.NodeSize)
			nr := layout.NewInternal(f, level, 0, layout.NoUpperBound)
			nr.SetLeftmost(root)
			nr.Insert(sepKey, child)
			if f.Mode == layout.Checksum {
				nr.UpdateChecksum()
			}
			h.C.Write(newRootAddr, nr.B)
			if cluster.CASRoot(h.C, root, newRootAddr, level) {
				h.top.SetRoot(newRootAddr, level)
				return
			}
			// Lost the root race: deallocate (clear the free bit, §4.2.4)
			// and retry against the winner's root.
			h.C.Write(newRootAddr.Add(layout.AliveOffset), []byte{0})
			h.refreshRoot()
			continue
		}
		addr, ce := h.locateInternal(sepKey, level)
		done, ok := h.tryInsertAt(addr, ce, sepKey, child, level)
		if done {
			return
		}
		if !ok {
			continue // stale steering; retry from a fresh root
		}
	}
}

// locateInternal finds the internal node at the target level covering key.
// Level-1 targets use the index cache (the entry's own address is the
// level-1 node).
func (h *Handle) locateInternal(key uint64, level uint8) (rdma.Addr, *cache.Entry) {
	if level == 1 {
		if e := h.cache.Lookup(key); e != nil {
			return e.Addr, e
		}
	}
	root, rootLvl := h.top.Root()
	if root.IsNil() || rootLvl < level {
		root, rootLvl = h.refreshRoot()
	}
	addr, lvl := root, rootLvl
	for lvl > level {
		n, fromCache := h.readInternal(addr, lvl, rootLvl)
		if !n.Alive() || n.Level() != lvl || key < n.LowerFence() {
			if fromCache {
				h.top.Drop(addr)
			}
			root, rootLvl = h.refreshRoot()
			addr, lvl = root, rootLvl
			continue
		}
		if n.UpperFence() != layout.NoUpperBound && key >= n.UpperFence() {
			addr = n.Sibling()
			continue
		}
		c, _ := layout.AsInternal(n).ChildFor(key)
		addr = c
		lvl--
	}
	return addr, nil
}

// tryInsertAt locks the internal node at addr and inserts or splits.
// done=true means the separator was placed (possibly after recursing up);
// ok=false means steering was stale and the caller should retry.
func (h *Handle) tryInsertAt(addr rdma.Addr, ce *cache.Entry, sepKey uint64, child rdma.Addr, level uint8) (done, ok bool) {
	f := h.t.cfg.Format
	hops := 0
	for {
		g := h.t.locks.Lock(h.C, addr)
		if g.HandedOver() {
			h.Rec.Handovers++
		}
		n, _ := h.readNode(addr, h.nodeBuf)
		if !n.Alive() || n.Level() != level || sepKey < n.LowerFence() {
			h.unlockWrite(g, nil)
			if ce != nil {
				h.cache.Invalidate(ce)
			}
			return false, false
		}
		if n.UpperFence() != layout.NoUpperBound && sepKey >= n.UpperFence() {
			sib := n.Sibling()
			h.unlockWrite(g, nil)
			if sib.IsNil() {
				return false, false
			}
			h.noteSiblingHop(&hops)
			addr = sib
			ce = nil
			continue
		}
		in := layout.AsInternal(n)
		h.C.Step(h.C.F.P.LocalStepNS)
		if in.Insert(sepKey, child) {
			if f.Mode == layout.TwoLevel {
				in.BumpNodeVersions()
			} else {
				in.UpdateChecksum()
			}
			h.unlockWrite(g, []rdma.WriteOp{{Addr: addr, Data: in.B}})
			if level == 1 {
				h.cacheLevel1(addr, in.Node)
			}
			return true, true
		}
		// Full: split the internal node and push the median up.
		rightAddr := h.alloc.Alloc(f.NodeSize)
		right := layout.NewInternal(f, level, 0, layout.NoUpperBound)
		upSep := in.SplitInto(right, rightAddr)
		switch {
		case sepKey < upSep:
			in.Insert(sepKey, child)
		default:
			right.Insert(sepKey, child)
		}
		if f.Mode == layout.TwoLevel {
			in.BumpNodeVersions()
		} else {
			right.UpdateChecksum()
			in.UpdateChecksum()
		}
		if rightAddr.MS() == addr.MS() {
			h.unlockWrite(g, []rdma.WriteOp{
				{Addr: rightAddr, Data: right.B},
				{Addr: addr, Data: in.B},
			})
		} else {
			h.C.Write(rightAddr, right.B)
			h.unlockWrite(g, []rdma.WriteOp{{Addr: addr, Data: in.B}})
		}
		if level == 1 {
			h.cacheLevel1(addr, in.Node)
			h.cacheLevel1(rightAddr, right.Node)
		}
		h.insertParent(upSep, rightAddr, level+1)
		return true, true
	}
}
