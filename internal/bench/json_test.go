package bench

import (
	"strings"
	"testing"
)

func gateReport(mops float64) *Report {
	return &Report{
		Schema: ReportSchema, Keys: 1000, ThreadsPerCS: 4, WindowMS: 3,
		Metrics: []Metric{
			{Exp: "batch", Name: "batch/x", Gate: true, Mops: mops},
			{Exp: "faults", Name: "faults/round=0", Mops: 1}, // ungated
		},
	}
}

func TestCheckRegression(t *testing.T) {
	base := gateReport(10)
	if err := CheckRegression(base, gateReport(9), 0.15); err != nil {
		t.Fatalf("within-band run failed the gate: %v", err)
	}
	err := CheckRegression(base, gateReport(8), 0.15)
	if err == nil || !strings.Contains(err.Error(), "batch/x") {
		t.Fatalf("20%% regression not caught: %v", err)
	}
	// Ungated rows never fail the gate even when they collapse.
	fresh := gateReport(10)
	fresh.Metrics[1].Mops = 0.01
	if err := CheckRegression(base, fresh, 0.15); err != nil {
		t.Fatalf("ungated row failed the gate: %v", err)
	}
	// Scale mismatch is an error, not a silent cross-scale comparison.
	off := gateReport(10)
	off.WindowMS = 10
	if err := CheckRegression(base, off, 0.15); err == nil || !strings.Contains(err.Error(), "scale mismatch") {
		t.Fatalf("scale mismatch not caught: %v", err)
	}
	// A fresh run matching no gated baseline rows is an error.
	none := gateReport(10)
	none.Metrics[0].Name = "batch/renamed"
	if err := CheckRegression(base, none, 0.15); err == nil || !strings.Contains(err.Error(), "matched no baseline") {
		t.Fatalf("empty join not caught: %v", err)
	}
}
