package sim

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidateRejectsBad(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.RTTNS = 0 },
		func(p *Params) { p.NSPerByte = 0 },
		func(p *Params) { p.AtomicBuckets = 0 },
		func(p *Params) { p.OnChipMemBytes = 0 },
		func(p *Params) { p.HostAtomicNS = p.OnChipAtomicNS - 1 },
		func(p *Params) { p.HostAtomicUnitNS = p.OnChipAtomicUnitNS - 1 },
	}
	for i, mod := range cases {
		p := DefaultParams()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestPayloadNS(t *testing.T) {
	p := DefaultParams()
	if got := p.PayloadNS(16, 10); got != 10 {
		t.Errorf("small payload should hit floor, got %d", got)
	}
	if got := p.PayloadNS(4096, 10); got != int64(4096*p.NSPerByte) {
		t.Errorf("large payload should be bandwidth-bound, got %d", got)
	}
}

func TestResourceIdleStart(t *testing.T) {
	var r Resource
	if fin := r.Acquire(100, 50); fin != 150 {
		t.Fatalf("idle acquire: got %d want 150", fin)
	}
	// A second arrival inside the busy window claims the banked idle gap
	// [0,100) once, then further arrivals queue at the horizon.
	if fin := r.Acquire(100, 50); fin != 150 {
		t.Fatalf("credited acquire: got %d want 150", fin)
	}
	if fin := r.Acquire(100, 100); fin != 250 {
		t.Fatalf("saturated acquire: got %d want 250", fin)
	}
}

func TestResourceCreditCap(t *testing.T) {
	var r Resource
	// An enormous idle gap banks at most CreditCapNS of credit.
	r.Acquire(100*CreditCapNS, 10)
	claimed := int64(0)
	for {
		fin := r.Acquire(0, 1000)
		if fin != 1000 { // queued at the horizon instead of backfilled
			break
		}
		claimed += 1000
		if claimed > 2*CreditCapNS {
			t.Fatal("credit not capped")
		}
	}
	if claimed > CreditCapNS {
		t.Fatalf("claimed %d exceeds cap %d", claimed, CreditCapNS)
	}
}

func TestResourceBackfill(t *testing.T) {
	var r Resource
	// Leading thread runs far ahead, leaving idle capacity behind.
	r.Acquire(1_000_000, 10)
	// Laggard at t=0 must not queue behind the leader's future.
	if fin := r.Acquire(0, 10); fin != 10 {
		t.Fatalf("backfill: got %d want 10", fin)
	}
}

func TestResourceSaturationQueues(t *testing.T) {
	var r Resource
	// Fill all capacity from time 0.
	var last int64
	for i := 0; i < 100; i++ {
		last = r.Acquire(0, 10)
	}
	if last != 1000 {
		t.Fatalf("expected serialized horizon 1000, got %d", last)
	}
	// A new arrival at t=500 has no idle credit: queues at the horizon.
	if fin := r.Acquire(500, 10); fin != 1010 {
		t.Fatalf("saturated arrival: got %d want 1010", fin)
	}
}

func TestResourceUtilization(t *testing.T) {
	var r Resource
	r.Acquire(0, 50)
	r.Acquire(50, 50)
	if u := r.Utilization(); u != 1.0 {
		t.Fatalf("utilization = %v, want 1.0", u)
	}
	r.Reset()
	if r.Peek() != 0 {
		t.Fatal("reset did not rewind")
	}
}

func TestResourceConcurrent(t *testing.T) {
	var r Resource
	const n = 16
	const each = 1000
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				r.Acquire(int64(j), 3)
			}
		}()
	}
	wg.Wait()
	// Total busy time must be conserved regardless of interleaving.
	if got := r.Peek(); got < 3*each { // at least one thread's worth serialized
		t.Fatalf("horizon %d too small", got)
	}
}

func TestResourceMonotoneFinish(t *testing.T) {
	// Property: Acquire never finishes before now+service.
	var r Resource
	f := func(now int64, svc int64) bool {
		if now < 0 {
			now = -now
		}
		svc %= 1000
		if svc < 0 {
			svc = -svc
		}
		fin := r.Acquire(now%1_000_000, svc)
		return fin >= now%1_000_000+svc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(10)
	c.Advance(-5) // ignored
	if c.Now() != 10 {
		t.Fatalf("clock = %d want 10", c.Now())
	}
	c.AdvanceTo(5) // backwards ignored
	if c.Now() != 10 {
		t.Fatalf("clock moved backwards: %d", c.Now())
	}
	c.AdvanceTo(20)
	if c.Now() != 20 {
		t.Fatalf("clock = %d want 20", c.Now())
	}
	c.Set(3)
	if c.Now() != 3 {
		t.Fatalf("set failed: %d", c.Now())
	}
}

func TestGatePacing(t *testing.T) {
	g := NewGate(100, 2, 2)
	done := make(chan struct{})
	go func() {
		// Fast worker: runs to t=10000, should block until slow catches up.
		g.Sync(0, 10_000)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("fast worker was not paced")
	default:
	}
	g.Sync(1, 9_900) // slow worker catches up
	<-done
}

func TestGateDoneUnblocks(t *testing.T) {
	g := NewGate(100, 1, 2)
	done := make(chan struct{})
	go func() {
		g.Sync(0, 50_000)
		close(done)
	}()
	g.Done(1) // the laggard finishes; fast worker must not wait on it
	<-done
}
