package workload

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMixValidate(t *testing.T) {
	good := []Mix{WriteOnly, WriteIntensive, ReadIntensive, RangeOnly, RangeWrite,
		{LookupPct: 25, InsertPct: 25, DeletePct: 25, RangePct: 25}}
	for _, m := range good {
		if err := m.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", m, err)
		}
	}
	bad := []Mix{
		{},
		{LookupPct: 99},
		{LookupPct: 50, InsertPct: 51},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", m)
		}
	}
}

// TestGeneratorMixProportions draws many operations and checks each class
// appears in roughly its configured proportion.
func TestGeneratorMixProportions(t *testing.T) {
	cfg := DefaultConfig(Mix{LookupPct: 50, InsertPct: 30, DeletePct: 15, RangePct: 5}, Uniform, 10_000)
	g := NewGenerator(cfg, 1)
	const n = 100_000
	var counts [4]int
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	want := [4]float64{0.50, 0.30, 0.15, 0.05}
	for k, w := range want {
		got := float64(counts[k]) / n
		if math.Abs(got-w) > 0.01 {
			t.Errorf("%v: proportion %.3f, want %.2f +- 0.01", Kind(k), got, w)
		}
	}
}

// TestKeysInRange checks every generated key is in [1, Keys] for both
// distributions (key 0 is the reserved sentinel).
func TestKeysInRange(t *testing.T) {
	for _, dist := range []Dist{Uniform, Zipfian} {
		cfg := DefaultConfig(WriteIntensive, dist, 1000)
		g := NewGenerator(cfg, 7)
		for i := 0; i < 50_000; i++ {
			op := g.Next()
			if op.Key == 0 || op.Key > cfg.Keys {
				t.Fatalf("dist %v: key %d outside [1,%d]", dist, op.Key, cfg.Keys)
			}
		}
	}
}

// TestZipfSkew verifies the Zipfian generator concentrates mass on few keys:
// with theta=0.99 the hottest key should receive a few percent of draws, and
// higher theta must concentrate more than lower theta.
func TestZipfSkew(t *testing.T) {
	const n, draws = 10_000, 200_000
	rng := rand.New(rand.NewPCG(1, 2))
	topShare := func(theta float64) float64 {
		z := NewZipfGen(n, theta)
		hot := 0
		for i := 0; i < draws; i++ {
			if z.Next(rng) == 0 {
				hot++
			}
		}
		return float64(hot) / draws
	}
	s99 := topShare(0.99)
	s80 := topShare(0.80)
	// zeta(10000, 0.99) ~ 10.75, so rank 0 gets ~9.3% of draws.
	if s99 < 0.06 || s99 > 0.14 {
		t.Errorf("theta=0.99 top-rank share %.3f, want ~0.093", s99)
	}
	if s99 <= s80 {
		t.Errorf("skew ordering violated: share(0.99)=%.3f <= share(0.80)=%.3f", s99, s80)
	}
}

// TestZipfRankDecreasing checks that lower ranks (hotter) receive at least
// as many draws as higher ranks, in aggregate buckets.
func TestZipfRankDecreasing(t *testing.T) {
	const n, draws = 1000, 300_000
	z := NewZipfGen(n, 0.99)
	rng := rand.New(rand.NewPCG(3, 4))
	var buckets [10]int // rank deciles
	for i := 0; i < draws; i++ {
		r := z.Next(rng)
		buckets[r*10/n]++
	}
	for i := 1; i < len(buckets); i++ {
		// Allow small noise between adjacent deciles but require the first
		// decile to dominate the last decisively.
		if buckets[i] > buckets[i-1]*2 {
			t.Errorf("decile %d (%d draws) more than double decile %d (%d)", i, buckets[i], i-1, buckets[i-1])
		}
	}
	if buckets[0] < buckets[9]*5 {
		t.Errorf("first decile %d not dominant over last %d", buckets[0], buckets[9])
	}
}

// TestZetaApproximation checks the large-n zeta path agrees with direct
// summation at the crossover boundary.
func TestZetaApproximation(t *testing.T) {
	theta := 0.99
	// Just above the exact limit, the approximation must be close to an
	// exact sum extended by brute force over the tail.
	n := uint64(zetaExactLimit + 1000)
	exact := zeta(zetaExactLimit, theta)
	for i := uint64(zetaExactLimit + 1); i <= n; i++ {
		exact += 1 / math.Pow(float64(i), theta)
	}
	approx := zeta(n, theta)
	if rel := math.Abs(approx-exact) / exact; rel > 1e-6 {
		t.Errorf("zeta(%d): approx %.9f vs exact %.9f (rel err %.2e)", n, approx, exact, rel)
	}
}

// TestScrambleBijectionish: scramble must be deterministic and spread ranks
// across the space without heavy collisions at small scales.
func TestScrambleBijectionish(t *testing.T) {
	const keys = 1 << 16
	seen := make(map[uint64]int)
	for r := uint64(0); r < keys; r++ {
		k := scramble(r, keys)
		if k == 0 || k > keys {
			t.Fatalf("scramble(%d) = %d outside [1,%d]", r, k, keys)
		}
		seen[k]++
	}
	// mix64 is a bijection on 64 bits; modding by keys introduces collisions
	// at the birthday level. With 65536 ranks into 65536 slots we expect
	// ~63.2% distinct (balls in bins), not a degenerate clustering.
	if len(seen) < keys/2 {
		t.Errorf("scramble hits only %d/%d distinct keys", len(seen), keys)
	}
	if scramble(42, keys) != scramble(42, keys) {
		t.Error("scramble not deterministic")
	}
}

// TestFreshKeyTargetsUnloadedTail: inserts flagged as "new key" must land in
// the unloaded tail (above LoadedKeys) so they are genuine inserts.
func TestFreshKeyTargetsUnloadedTail(t *testing.T) {
	cfg := DefaultConfig(WriteOnly, Uniform, 1000)
	cfg.UpdateFraction = 0 // every insert is a fresh key
	g := NewGenerator(cfg, 9)
	loaded := cfg.LoadedKeys()
	for i := 0; i < 10_000; i++ {
		op := g.Next()
		if op.Kind != Insert {
			t.Fatalf("write-only mix generated %v", op.Kind)
		}
		if op.Key <= loaded {
			t.Fatalf("fresh key %d inside loaded prefix [1,%d]", op.Key, loaded)
		}
	}
}

// TestUpdateFractionRespected: with UpdateFraction=1 inserts keep the drawn
// key (updates may target any existing key in [1, Keys]); with
// UpdateFraction=0 every insert is redirected into the unloaded tail. The
// fraction therefore shows up as the share of inserts inside the loaded
// prefix being roughly the prefix's natural probability.
func TestUpdateFractionRespected(t *testing.T) {
	cfg := DefaultConfig(WriteOnly, Uniform, 1000)
	cfg.UpdateFraction = 1
	g := NewGenerator(cfg, 11)
	loaded := cfg.LoadedKeys()
	inPrefix := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		if op := g.Next(); op.Key <= loaded {
			inPrefix++
		}
	}
	// With UpdateFraction=1 keys are drawn uniformly over [1,1000], so ~80%
	// land in the loaded prefix; with redirection (fraction 0) it would be 0%.
	if got := float64(inPrefix) / n; got < 0.75 || got > 0.85 {
		t.Errorf("loaded-prefix share %.3f, want ~0.80", got)
	}
}

// TestRangeSpanPropagated: range operations carry the configured span.
func TestRangeSpanPropagated(t *testing.T) {
	cfg := DefaultConfig(RangeOnly, Uniform, 1000)
	cfg.RangeSpan = 123
	g := NewGenerator(cfg, 13)
	for i := 0; i < 100; i++ {
		op := g.Next()
		if op.Kind != Range || op.Span != 123 {
			t.Fatalf("op = %+v, want range with span 123", op)
		}
	}
}

// TestGeneratorDeterminism: same seed, same sequence; different seeds,
// different sequences.
func TestGeneratorDeterminism(t *testing.T) {
	cfg := DefaultConfig(WriteIntensive, Zipfian, 100_000)
	a := NewGenerator(cfg, 42)
	b := NewGenerator(cfg, 42)
	c := NewGenerator(cfg, 43)
	sameAsC := 0
	for i := 0; i < 1000; i++ {
		oa, ob, oc := a.Next(), b.Next(), c.Next()
		if oa != ob {
			t.Fatalf("same-seed generators diverged at %d: %+v vs %+v", i, oa, ob)
		}
		if oa == oc {
			sameAsC++
		}
	}
	if sameAsC > 100 {
		t.Errorf("different seeds produced %d/1000 identical ops", sameAsC)
	}
}

// TestNewGeneratorFromSharesTables: a derived generator draws from the same
// distribution (same config) but its own stream.
func TestNewGeneratorFromSharesTables(t *testing.T) {
	cfg := DefaultConfig(WriteIntensive, Zipfian, 10_000)
	base := NewGenerator(cfg, 1)
	d1 := NewGeneratorFrom(base, 2)
	d2 := NewGeneratorFrom(base, 2)
	if d1.zipf != base.zipf {
		t.Error("derived generator did not share the zipf tables")
	}
	for i := 0; i < 100; i++ {
		if d1.Next() != d2.Next() {
			t.Fatal("same-seed derived generators diverged")
		}
	}
}

// TestInvalidConfigsPanic: constructor contract violations panic loudly.
func TestInvalidConfigsPanic(t *testing.T) {
	cases := []func(){
		func() { NewGenerator(Config{Mix: Mix{LookupPct: 10}, Keys: 10}, 1) }, // bad mix
		func() { NewGenerator(DefaultConfig(WriteOnly, Uniform, 0), 1) },      // no keys
		func() { NewZipfGen(0, 0.99) },                                        // empty domain
		func() { NewZipfGen(10, 0) },                                          // theta out of range
		func() { NewZipfGen(10, 1) },                                          // theta out of range
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: mix64 is a bijection (it has a known inverse structure; here we
// just check injectivity on random samples via quick).
func TestMix64Injective(t *testing.T) {
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return mix64(a) != mix64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10_000}); err != nil {
		t.Error(err)
	}
}

// Property: NextKey always lands in [1, Keys] across random key-space sizes.
func TestNextKeyRangeProperty(t *testing.T) {
	f := func(seed uint64, keysRaw uint16) bool {
		keys := uint64(keysRaw)%100_000 + 1
		cfg := DefaultConfig(ReadIntensive, Zipfian, keys)
		g := NewGenerator(cfg, seed)
		for i := 0; i < 64; i++ {
			k := g.NextKey()
			if k == 0 || k > keys {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestYCSBConfigs(t *testing.T) {
	for _, w := range AllYCSB() {
		cfg := YCSBConfig(w, 10_000)
		if err := cfg.Mix.Validate(); err != nil {
			t.Errorf("%v: %v", w, err)
		}
		g := NewGenerator(cfg, 3)
		for i := 0; i < 1000; i++ {
			op := g.Next()
			if op.Key == 0 || op.Key > cfg.Keys {
				t.Fatalf("%v: key %d out of range", w, op.Key)
			}
		}
	}
	if YCSBA.String() != "YCSB-A" {
		t.Errorf("String = %q", YCSBA.String())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown workload did not panic")
			}
		}()
		YCSBConfig(YCSB('Z'), 10)
	}()
}

// TestYCSBCharacter checks each preset's defining property.
func TestYCSBCharacter(t *testing.T) {
	const keys = 10_000
	draw := func(w YCSB, n int) (lookups, inserts, ranges, rmw, latestReads int) {
		g := NewGenerator(YCSBConfig(w, keys), 5)
		loaded := YCSBConfig(w, keys).LoadedKeys()
		for i := 0; i < n; i++ {
			op := g.Next()
			switch op.Kind {
			case Lookup:
				lookups++
				if op.Key > loaded {
					latestReads++
				}
			case Insert:
				inserts++
				if op.RMW {
					rmw++
				}
			case Range:
				ranges++
			}
		}
		return
	}
	const n = 20_000
	if l, _, _, _, _ := draw(YCSBC, n); l != n {
		t.Errorf("C: %d lookups of %d ops, want all", l, n)
	}
	if _, ins, _, rmw, _ := draw(YCSBF, n); rmw != ins || ins == 0 {
		t.Errorf("F: %d of %d inserts flagged RMW", rmw, ins)
	}
	if _, _, r, _, _ := draw(YCSBE, n); r < n*9/10 {
		t.Errorf("E: only %d scans of %d ops", r, n)
	}
	// D biases reads toward the fresh tail; A's reads land there only at
	// the scrambled distribution's natural ~20% rate.
	_, _, _, _, dLatest := draw(YCSBD, n)
	_, _, _, _, aLatest := draw(YCSBA, n)
	if dLatest < n/10 {
		t.Errorf("D: only %d latest-biased reads", dLatest)
	}
	if dLatest < aLatest*2 {
		t.Errorf("D latest reads (%d) not clearly above A's natural rate (%d)", dLatest, aLatest)
	}
}
