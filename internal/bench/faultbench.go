package bench

import (
	"fmt"
	"sync"

	"sherman/internal/cluster"
	"sherman/internal/core"
	"sherman/internal/layout"
	"sherman/internal/sim"
	"sherman/internal/stats"
	"sherman/internal/workload"
)

// This file is the partial-failure experiment: compute servers crash and
// restart mid-measurement while the survivors keep serving. It is not a
// paper figure — conf_sigmod_WangLS22 evaluates the failure-free path — but
// the one-sided design makes the client the unit of failure, so the
// interesting questions are all on the recovery side: how deep the
// throughput dips when a compute server dies holding locks, how long lease
// reclamation and the structural REDO sweep take, and whether the tree is
// Validate-clean afterwards.

// FaultExp configures one crash/restart churn run.
type FaultExp struct {
	Name string

	NumMS        int
	NumCS        int
	ThreadsPerCS int

	Keys  uint64
	Mix   workload.Mix
	Dist  workload.Dist
	Theta float64

	Tree core.Config

	// MeasureNS is the per-round virtual measurement window.
	MeasureNS int64
	// MaxOpsPerThread bounds a worker's measured ops (wall-time valve).
	MaxOpsPerThread int

	// Rounds is the number of faulted rounds after the fault-free baseline
	// round. In faulted round r, compute server r % NumCS is killed one
	// third into the window and restarted after recovery.
	Rounds int

	Params sim.Params
}

// Defaults fills unset fields (smaller than TreeExp's: each round is a full
// window and the per-round recovery sweep reads the whole tree).
func (e FaultExp) Defaults() FaultExp {
	if e.NumMS == 0 {
		e.NumMS = 4
	}
	if e.NumCS == 0 {
		e.NumCS = 4
	}
	if e.ThreadsPerCS == 0 {
		e.ThreadsPerCS = 4
	}
	if e.Keys == 0 {
		e.Keys = 256 << 10
	}
	if e.Theta == 0 {
		e.Theta = 0.99
	}
	if e.MeasureNS == 0 {
		e.MeasureNS = 3_000_000
	}
	if e.MaxOpsPerThread == 0 {
		e.MaxOpsPerThread = 1_000_000
	}
	if e.Rounds == 0 {
		e.Rounds = 3
	}
	if e.Params.RTTNS == 0 {
		e.Params = sim.DefaultParams()
	}
	return e
}

// FaultRound is one measurement window of the churn run.
type FaultRound struct {
	// Victim is the compute server killed mid-window (-1: fault-free
	// baseline round).
	Victim int
	// Mops is whole-cluster throughput over the round; SurvivorMops counts
	// only threads of surviving compute servers.
	Mops, SurvivorMops float64
	// LeaseExpiries and Reclaims are the lock manager's deltas over the
	// round including recovery: locks orphaned by the crash, and orphaned
	// locks survivors freed by expired-lease reclamation.
	LeaseExpiries, Reclaims int64
	// Repairs is the number of half-done splits the post-round recovery
	// sweep completed; RecoveryNS is the sweep's virtual duration.
	Repairs    int
	RecoveryNS int64
	// ValidateErr is the post-recovery structural check's result.
	ValidateErr error
}

// FaultResult is the outcome of one churn run.
type FaultResult struct {
	Name   string
	Rounds []FaultRound
}

// RunFaults executes the crash/restart churn experiment: a fault-free
// baseline round, then Rounds rounds that each kill one compute server one
// third into the window, run recovery from a survivor, validate the tree,
// and restart the victim before the next round.
func RunFaults(e FaultExp) FaultResult {
	e = e.Defaults()
	if err := e.Mix.Validate(); err != nil {
		panic(err)
	}
	cl := cluster.New(cluster.Config{NumMS: e.NumMS, NumCS: e.NumCS, Params: e.Params})
	tr := core.New(cl, e.Tree)

	wcfg := workload.DefaultConfig(e.Mix, e.Dist, e.Keys)
	wcfg.Theta = e.Theta
	loaded := wcfg.LoadedKeys()
	kvs := make([]layout.KV, loaded)
	for i := range kvs {
		k := uint64(i + 1)
		kvs[i] = layout.KV{Key: k, Value: bulkValue(k)}
	}
	tr.Bulkload(kvs)

	baseGen := workload.NewGenerator(wcfg, 0x5eed)
	n := e.NumCS * e.ThreadsPerCS
	gens := make([]*workload.Generator, n)
	for i := range gens {
		gens[i] = workload.NewGeneratorFrom(baseGen, uint64(i)+1)
	}

	res := FaultResult{Name: e.Name}
	var startV int64
	seed := n
	// Round -2 warms the index caches and is discarded; round -1 is the
	// fault-free baseline; rounds 0.. each kill one compute server.
	for round := -2; round < e.Rounds; round++ {
		victim := -1
		if round >= 0 {
			victim = round % e.NumCS
		}
		ls := tr.LockStats()
		expiries0, reclaims0 := ls.LeaseExpiries.Load(), ls.Reclaims.Load()

		if victim >= 0 {
			cl.Faults().KillAtTime(victim, startV+e.MeasureNS/3)
		}
		recs, maxV := runFaultRound(e, cl, tr, gens, startV, seed)
		seed += n
		if round == -2 {
			startV = maxV + 10_000
			continue
		}

		// Throughput is completed operations over the fixed round window —
		// the aggregation under which a mid-window crash shows as a dip: a
		// dead server's silence lowers the cluster total even while the
		// survivors' per-thread rates rise with the lightened contention.
		r := FaultRound{Victim: victim}
		for i, rec := range recs {
			if rec == nil {
				continue
			}
			m := stats.ThroughputMops(rec.TotalOps(), e.MeasureNS)
			r.Mops += m
			if i%e.NumCS != victim {
				r.SurvivorMops += m
			}
		}

		// Recovery runs from the first surviving compute server: complete
		// any splits the dead clients left half-done. Orphaned locks are
		// reclaimed on demand (mostly already during the round, by
		// survivors landing on the victim's leaves).
		recCS := 0
		if victim == 0 {
			recCS = 1 % e.NumCS
		}
		recH := tr.NewHandle(recCS, seed)
		seed++
		recH.SetClock(maxV)
		r.Repairs, _ = recH.RecoverStructure()
		r.RecoveryNS = recH.C.Now() - maxV
		r.ValidateErr = tr.Validate()

		ls = tr.LockStats()
		r.LeaseExpiries = ls.LeaseExpiries.Load() - expiries0
		r.Reclaims = ls.Reclaims.Load() - reclaims0
		res.Rounds = append(res.Rounds, r)

		if victim >= 0 {
			cl.Restart(victim)
		}
		startV = recH.C.Now() + 10_000
	}
	return res
}

// runFaultRound runs one measurement window with fresh handles whose clocks
// start at startV, returning the per-thread recorders (nil entries are
// threads that never started) and the latest clock observed.
func runFaultRound(e FaultExp, cl *cluster.Cluster, tr *core.Tree, gens []*workload.Generator, startV int64, seed int) ([]*stats.Recorder, int64) {
	n := e.NumCS * e.ThreadsPerCS
	recs := make([]*stats.Recorder, n)
	ends := make([]int64, n)
	gate := sim.NewGate(gateWindowNS, gateSlack, n)
	deadline := startV + e.MeasureNS
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer gate.Done(i)
			h := tr.NewHandle(i%e.NumCS, seed+i)
			h.SetClock(startV + int64(i*9973%10_000))
			h.Pace = func(v int64) { gate.Sync(i, v) }
			rec := stats.NewRecorder()
			rec.StartV = h.C.Now()
			h.Rec = rec
			recs[i] = rec
			defer func() {
				rec.FinishV = h.C.Now()
				ends[i] = h.C.Now()
				if r := recover(); r != nil {
					if _, ok := sim.IsCrash(r); ok {
						return // the injector killed this thread's CS
					}
					panic(r)
				}
			}()
			g := gens[i]
			for j := 0; h.C.Now() < deadline && j < e.MaxOpsPerThread; j++ {
				doOp(h, g.Next())
				gate.Sync(i, h.C.Now())
			}
		}(i)
	}
	wg.Wait()
	var maxV int64
	for _, v := range ends {
		if v > maxV {
			maxV = v
		}
	}
	if maxV < deadline {
		maxV = deadline
	}
	return recs, maxV
}

func faultExp(s Scale, name string) FaultExp {
	rounds := 3
	if s.Keys >= FullScale().Keys { // full scale: more churn
		rounds = 6
	}
	return FaultExp{
		Name:         name,
		Keys:         s.Keys,
		ThreadsPerCS: s.ThreadsPerCS,
		MeasureNS:    s.MeasureNS,
		Mix:          workload.WriteIntensive,
		Dist:         workload.Zipfian,
		Tree:         core.ShermanConfig(),
		Rounds:       rounds,
	}
}

// FaultChurn runs the churn experiment and renders the per-round
// trajectory, also returning the raw result so `-check` can assert on the
// very rounds it rendered instead of re-running the churn. Round -1 is the
// fault-free baseline; each later round kills one compute server a third
// into its window. When c is non-nil, typed per-round metrics are recorded
// for the JSON report.
func FaultChurn(s Scale, c *Collector) (*Table, FaultResult) {
	e := faultExp(s, "faults")
	r := RunFaults(e)
	t := NewTable(fmt.Sprintf("Faults: crash/restart churn (write-intensive, zipfian, %d CS x %d threads)", e.Defaults().NumCS, e.Defaults().ThreadsPerCS),
		"round", "victim", "Mops", "survivor Mops", "lease exp", "reclaims", "repairs", "recovery(us)", "validate")
	for i, round := range r.Rounds {
		label, victim := fmt.Sprint(i-1), "-"
		if round.Victim < 0 {
			label = "base"
		} else {
			victim = fmt.Sprintf("cs%d", round.Victim)
		}
		valid := "ok"
		if round.ValidateErr != nil {
			valid = round.ValidateErr.Error()
		}
		t.Add(label, victim, MopsString(round.Mops), MopsString(round.SurvivorMops),
			fmt.Sprint(round.LeaseExpiries), fmt.Sprint(round.Reclaims),
			fmt.Sprint(round.Repairs), USString(round.RecoveryNS), valid)
		c.Add(Metric{
			Exp: "faults", Name: fmt.Sprintf("faults/round=%s", label),
			Mops: round.Mops, Reclaims: round.Reclaims, RecoveryNS: round.RecoveryNS,
		})
	}
	t.Note("victims are killed one third into the window and restarted after recovery")
	t.Note("reclaims free orphaned locks after the lease expires; repairs complete half-done splits")
	return t, r
}

// FaultGate is the CI check behind `shermanbench -exp faults -check`. It
// asserts the deterministic heart of the failure model: a compute server
// killed at the final verb of a put — the commit doorbell, with the leaf
// lock held — leaves a lock a survivor must reclaim, after which the tree
// validates and the acked data is intact; and every round of the churn the
// same invocation already ran (churn; run a short one when nil) ended
// Validate-clean and made progress.
func FaultGate(s Scale, churn *FaultResult) error {
	for _, cfg := range []core.Config{core.ShermanConfig(), core.FGPlusConfig()} {
		if err := midWriteCrashCheck(cfg); err != nil {
			return fmt.Errorf("fault gate (%s): %w", cfg.Name(), err)
		}
	}
	if churn == nil {
		e := faultExp(s, "faults")
		e.Rounds = 2
		r := RunFaults(e)
		churn = &r
	}
	for i, round := range churn.Rounds {
		if round.ValidateErr != nil {
			return fmt.Errorf("fault gate: churn round %d left an invalid tree: %w", i-1, round.ValidateErr)
		}
		if round.Mops <= 0 {
			return fmt.Errorf("fault gate: churn round %d made no progress", i-1)
		}
	}
	return nil
}

// midWriteCrashCheck kills a single-threaded victim at the last fabric verb
// of an in-place put — dropping the commit (and in Combine mode the
// combined lock release) while the HOCL slot is held — then drives
// recovery from a survivor and checks every invariant the fault model
// promises.
func midWriteCrashCheck(cfg core.Config) error {
	build := func() (*cluster.Cluster, *core.Tree) {
		cl := cluster.New(cluster.Config{NumMS: 2, NumCS: 2})
		tr := core.New(cl, cfg)
		kvs := make([]layout.KV, 64)
		for i := range kvs {
			kvs[i] = layout.KV{Key: uint64(i + 1), Value: bulkValue(uint64(i + 1))}
		}
		tr.Bulkload(kvs)
		return cl, tr
	}

	// Dry run: count the verbs of the put on an identical cluster.
	key, val := uint64(7), uint64(0xfa011)
	cl, tr := build()
	victim := tr.NewHandle(1, 1)
	v0 := cl.Faults().Verbs(1)
	victim.Insert(key, val)
	putVerbs := cl.Faults().Verbs(1) - v0
	if putVerbs < 2 {
		return fmt.Errorf("implausible verb count %d for a put", putVerbs)
	}

	// Measured run: kill the victim at the put's final verb.
	cl, tr = build()
	victim = tr.NewHandle(1, 1)
	cl.Faults().KillAtVerb(1, putVerbs)
	crashed := func() (crashed bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := sim.IsCrash(r); ok {
					crashed = true
					return
				}
				panic(r)
			}
		}()
		victim.Insert(key, val)
		return false
	}()
	if !crashed {
		return fmt.Errorf("victim survived its armed kill (verb %d)", putVerbs)
	}

	// A survivor writing the same leaf must find the orphaned lock and
	// reclaim it after the lease expires.
	surv := tr.NewHandle(0, 2)
	surv.SetClock(victim.C.Now())
	surv.Insert(key, val+1)
	if got := tr.LockStats().Reclaims.Load(); got < 1 {
		return fmt.Errorf("survivor write did not reclaim the orphaned lock (reclaims=%d)", got)
	}
	if _, complete := surv.RecoverStructure(); !complete {
		return fmt.Errorf("recovery pass budget exhausted")
	}
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("post-recovery validate failed: %w", err)
	}
	if v, ok := surv.Lookup(key); !ok || v != val+1 {
		return fmt.Errorf("acked write lost: got (%d,%v), want (%d,true)", v, ok, val+1)
	}
	if v, ok := surv.Lookup(1); !ok || v != bulkValue(1) {
		return fmt.Errorf("bulkloaded key lost: got (%d,%v)", v, ok)
	}
	return nil
}
