package bench

import (
	"fmt"
	"sync"

	"sherman/internal/cluster"
	"sherman/internal/core"
	"sherman/internal/layout"
	"sherman/internal/replica"
	"sherman/internal/sim"
	"sherman/internal/stats"
	"sherman/internal/workload"
)

// This file is the replication experiment (DESIGN.md §12): a factor-2
// cluster serves a write-intensive workload through a steady window, a kill
// window in which one memory server dies a third of the way in, an online
// repair (replacement server + re-replication sweep), and a recovered
// window — against an unreplicated control cluster of the same shape.
// Reported: the replication tax in steady state (mirrored writes ride
// detached doorbells, so it should be small), write amplification and the
// bounded replica lag, the dip and the repair time, and the experiment's
// reason to exist: acknowledged writes tracked per worker through the kill
// window, every one of which must survive the failover, exactly once.

// Stripe keys live far above any workload key and give each worker a
// private, contiguous, conflict-free range: worker i's j-th tracked write
// is stripeKeyBase(i)+j, acked strictly in order, so the post-repair check
// knows exactly which keys the tree owes it.
const (
	stripeStart = uint64(1) << 32
	stripeSpan  = uint64(1) << 20
	stripeEvery = 4 // every 4th kill-window op is a tracked write
)

func stripeKeyBase(worker int) uint64 {
	return stripeStart + uint64(worker)*stripeSpan
}

// ReplicaExp configures one replication run.
type ReplicaExp struct {
	Name string

	// NumMS is the starting memory-server count (one more may join as the
	// victim's replacement); Victim is the server killed mid-window (never
	// 0, which holds the superblock).
	NumMS  int
	Victim int

	NumCS        int
	ThreadsPerCS int

	Keys  uint64
	Mix   workload.Mix
	Dist  workload.Dist
	Theta float64

	Tree core.Config

	// MeasureNS is the per-window virtual measurement span.
	MeasureNS int64
	// MaxOpsPerThread bounds a worker's measured ops (wall-time valve).
	MaxOpsPerThread int

	Params sim.Params
}

// Defaults fills unset fields.
func (e ReplicaExp) Defaults() ReplicaExp {
	if e.NumMS == 0 {
		e.NumMS = 4
	}
	if e.Victim == 0 {
		e.Victim = 1
	}
	if e.NumCS == 0 {
		e.NumCS = 4
	}
	if e.ThreadsPerCS == 0 {
		e.ThreadsPerCS = 4
	}
	if e.Keys == 0 {
		e.Keys = 256 << 10
	}
	if e.Theta == 0 {
		e.Theta = 0.99
	}
	if e.MeasureNS == 0 {
		e.MeasureNS = 3_000_000
	}
	if e.MaxOpsPerThread == 0 {
		e.MaxOpsPerThread = 1_000_000
	}
	if e.Params.RTTNS == 0 {
		e.Params = sim.DefaultParams()
	}
	return e
}

// ReplicaResult is the outcome of one replication run.
type ReplicaResult struct {
	Name   string
	Victim int

	// SteadyMops is replicated fault-free throughput; ControlMops the same
	// workload on an unreplicated cluster of the same shape (the replication
	// tax is their ratio). KillMops is the window in which the victim dies a
	// third in; RecoveredMops the steady state after repair.
	SteadyMops, KillMops, RecoveredMops, ControlMops float64

	// ReplicaWritesPerWrite is mirror WRITEs per write op over the steady
	// window — the replication write amplification. ReplicaLagMaxNS is the
	// worst observed commit-to-mirror-completion gap.
	ReplicaWritesPerWrite float64
	ReplicaLagMaxNS       int64

	// FailedOver counts chunks promoted to their replica by the death;
	// RepairedChunks the chunks the re-replication sweep rebuilt, over
	// RecoveryNS of virtual time on the repairing thread.
	FailedOver     int64
	RepairedChunks int
	RecoveryNS     int64

	// AckedWrites counts tracked writes acknowledged during the kill
	// window; LostAcked how many of them were unreadable (or misvalued)
	// after failover + repair, and DupOrPhantom how many stripe keys the
	// post-repair scan saw more than once or never acked at all. The gate
	// demands both stay zero.
	AckedWrites, LostAcked, DupOrPhantom int64

	// LostChunks counts chunks whose primary died with no replica — data
	// loss, must be zero. UnderReplicated is the post-repair count.
	LostChunks      int64
	UnderReplicated int

	ValidateErr error
}

// replicaFixture is one cluster + tree + per-worker generators.
type replicaFixture struct {
	cl   *cluster.Cluster
	tr   *core.Tree
	gens []*workload.Generator
}

func buildReplicaFixture(e ReplicaExp, factor int) replicaFixture {
	cl := cluster.New(cluster.Config{
		NumMS: e.NumMS, NumCS: e.NumCS, MaxMS: e.NumMS + 1,
		ReplicationFactor: factor, Params: e.Params,
	})
	tr := core.New(cl, e.Tree)
	wcfg := workload.DefaultConfig(e.Mix, e.Dist, e.Keys)
	wcfg.Theta = e.Theta
	loaded := wcfg.LoadedKeys()
	kvs := make([]layout.KV, loaded)
	for i := range kvs {
		k := uint64(i + 1)
		kvs[i] = layout.KV{Key: k, Value: bulkValue(k)}
	}
	tr.Bulkload(kvs)
	baseGen := workload.NewGenerator(wcfg, 0x5eed)
	n := e.NumCS * e.ThreadsPerCS
	gens := make([]*workload.Generator, n)
	for i := range gens {
		gens[i] = workload.NewGeneratorFrom(baseGen, uint64(i)+1)
	}
	return replicaFixture{cl: cl, tr: tr, gens: gens}
}

// RunReplica executes the replication experiment.
func RunReplica(e ReplicaExp) ReplicaResult {
	e = e.Defaults()
	if err := e.Mix.Validate(); err != nil {
		panic(err)
	}
	res := ReplicaResult{Name: e.Name, Victim: e.Victim}

	fx := buildReplicaFixture(e, 2)
	n := e.NumCS * e.ThreadsPerCS
	var startV int64
	seed := n

	window := func(acked []int64) (float64, *stats.Recorder) {
		recs, maxV := runReplicaWindow(e, fx, startV, seed, acked)
		seed += n
		startV = maxV + 10_000
		merged := stats.NewRecorder()
		var mops float64
		for _, rec := range recs {
			merged.Merge(rec)
			mops += stats.ThroughputMops(rec.TotalOps(), e.MeasureNS)
		}
		return mops, merged
	}

	// Warmup window (discarded), then the replicated fault-free steady state.
	window(nil)
	var steadyRec *stats.Recorder
	res.SteadyMops, steadyRec = window(nil)
	if w := steadyRec.Ops[stats.OpInsert] + steadyRec.Ops[stats.OpDelete]; w > 0 {
		res.ReplicaWritesPerWrite = float64(steadyRec.ReplicaWrites) / float64(w)
	}
	res.ReplicaLagMaxNS = steadyRec.ReplicaLagMaxNS

	// Kill window: the victim dies one third in, while every worker tracks
	// its acked writes on a private key stripe. Memory-server death is
	// invisible to the clients beyond latency — every op completes.
	fx.cl.Faults().KillMSAtTime(e.Victim, startV+e.MeasureNS/3)
	acked := make([]int64, n)
	res.KillMops, _ = window(acked)
	if fx.cl.MSAlive(e.Victim) {
		// Nothing tripped the armed kill (a degenerate window); fire it so
		// the rest of the run still measures failover + repair.
		fx.cl.Faults().KillMS(e.Victim, fx.cl.Faults().LatestVerbV())
	}
	res.FailedOver = fx.cl.Failovers()
	res.LostChunks = fx.cl.Rep.Lost()
	for _, a := range acked {
		res.AckedWrites += a
	}

	// Repair: a replacement server joins, then a re-replication sweep
	// rebuilds every missing copy. RecoveryNS is the sweep's virtual span.
	if _, err := fx.cl.AddMS(); err != nil {
		panic(err)
	}
	rh := fx.tr.NewHandle(0, seed)
	seed++
	rh.SetClock(fx.cl.Faults().LatestVerbV())
	t0 := rh.C.Now()
	for i := 0; ; i++ {
		st, err := replica.New(rh, replica.Options{MaxChunks: 1 << 20}).ReReplicate()
		if err != nil {
			panic(err)
		}
		res.RepairedChunks += st.ChunksRepaired
		if len(fx.cl.Rep.UnderReplicated(2)) == 0 || i >= 64 {
			break
		}
	}
	res.RecoveryNS = rh.C.Now() - t0
	res.UnderReplicated = len(fx.cl.Rep.UnderReplicated(2))
	startV = rh.C.Now() + 10_000

	// Zero lost acked writes, exactly once: every tracked key a worker got
	// an ack for must read back with its exact value through the promoted
	// replicas, and a stripe scan must see each exactly once and nothing
	// the worker never acked.
	ch := fx.tr.NewHandle(0, seed)
	seed++
	ch.SetClock(startV)
	for i, cnt := range acked {
		base := stripeKeyBase(i)
		for j := int64(0); j < cnt; j++ {
			k := base + uint64(j)
			if v, ok := ch.Lookup(k); !ok || v != bulkValue(k) {
				res.LostAcked++
			}
		}
		for _, kv := range ch.Range(base, int(cnt)+8) {
			if kv.Key < base || kv.Key >= base+stripeSpan {
				continue
			}
			if kv.Key >= base+uint64(cnt) {
				res.DupOrPhantom++ // never acked, yet reachable in-stripe
			}
		}
		// A duplicated key would displace a later one out of the scan's
		// ordered prefix; recheck the prefix is exactly the acked range.
		kvs := ch.Range(base, int(cnt))
		for j := int64(0); j < cnt; j++ {
			if int(j) >= len(kvs) || kvs[j].Key != base+uint64(j) {
				res.DupOrPhantom++
				break
			}
		}
	}
	startV = ch.C.Now() + 10_000

	// Steady state after repair, then the structural check.
	res.RecoveredMops, _ = window(nil)
	res.ValidateErr = fx.tr.Validate()

	// Control: the same shape and workload, replication off.
	ctl := buildReplicaFixture(e, 0)
	ctlFx, ctlStart, ctlSeed := ctl, int64(0), n
	ctlWindow := func() float64 {
		recs, maxV := runReplicaWindow(e, ctlFx, ctlStart, ctlSeed, nil)
		ctlSeed += n
		ctlStart = maxV + 10_000
		var mops float64
		for _, rec := range recs {
			mops += stats.ThroughputMops(rec.TotalOps(), e.MeasureNS)
		}
		return mops
	}
	ctlWindow()
	res.ControlMops = ctlWindow()
	return res
}

// runReplicaWindow runs one fixed measurement window with fresh handles
// whose clocks start at startV. When acked is non-nil, every worker issues a
// tracked write on its private stripe as every stripeEvery-th op, bumping
// its acked counter only after the insert returns.
func runReplicaWindow(e ReplicaExp, fx replicaFixture, startV int64, seed int, acked []int64) ([]*stats.Recorder, int64) {
	n := e.NumCS * e.ThreadsPerCS
	recs := make([]*stats.Recorder, n)
	ends := make([]int64, n)
	gate := sim.NewGate(gateWindowNS, gateSlack, n)
	deadline := startV + e.MeasureNS
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer gate.Done(i)
			h := fx.tr.NewHandle(i%e.NumCS, seed+i)
			h.SetClock(startV + int64(i*9973%10_000))
			h.Pace = func(v int64) { gate.Sync(i, v) }
			rec := stats.NewRecorder()
			rec.StartV = h.C.Now()
			h.Rec = rec
			recs[i] = rec
			defer func() {
				rec.FinishV = h.C.Now()
				ends[i] = h.C.Now()
			}()
			g := fx.gens[i]
			for j := 0; h.C.Now() < deadline && j < e.MaxOpsPerThread; j++ {
				if acked != nil && j%stripeEvery == 0 {
					k := stripeKeyBase(i) + uint64(acked[i])
					h.Insert(k, bulkValue(k))
					acked[i]++
				} else {
					doOp(h, g.Next())
				}
				gate.Sync(i, h.C.Now())
			}
		}(i)
	}
	wg.Wait()
	var maxV int64
	for _, v := range ends {
		if v > maxV {
			maxV = v
		}
	}
	if maxV < deadline {
		maxV = deadline
	}
	return recs, maxV
}

func replicaExp(s Scale, name string) ReplicaExp {
	return ReplicaExp{
		Name:         name,
		Keys:         s.Keys,
		ThreadsPerCS: min(s.ThreadsPerCS, 8),
		MeasureNS:    s.MeasureNS,
		Mix:          workload.WriteIntensive,
		Dist:         workload.Zipfian,
		Tree:         core.ShermanConfig(),
	}
}

// Replica runs the replication experiment and renders its trajectory. When c
// is non-nil, typed metrics land in the JSON report (BENCH_7.json).
func Replica(s Scale, c *Collector) (*Table, *ReplicaResult) {
	e := replicaExp(s, "replica")
	r := RunReplica(e)
	ed := e.Defaults()
	t := NewTable(fmt.Sprintf("Replica: factor-2 vs none, MS killed mid-window (write-intensive zipfian, %d MS, %d CS x %d threads)",
		ed.NumMS, ed.NumCS, ed.ThreadsPerCS),
		"phase", "Mops", "notes")
	t.Add("control (no replication)", MopsString(r.ControlMops), "same cluster shape, factor 0")
	t.Add("steady (factor 2)", MopsString(r.SteadyMops),
		fmt.Sprintf("%.2f mirror writes/write, max lag %s us", r.ReplicaWritesPerWrite, USString(r.ReplicaLagMaxNS)))
	t.Add("kill window", MopsString(r.KillMops),
		fmt.Sprintf("ms%d dies 1/3 in: %d chunks failed over, %d lost", r.Victim, r.FailedOver, r.LostChunks))
	t.Add("repair", "-",
		fmt.Sprintf("%d chunks re-replicated in %s us; %d under-replicated left", r.RepairedChunks, USString(r.RecoveryNS), r.UnderReplicated))
	valid := "ok"
	if r.ValidateErr != nil {
		valid = r.ValidateErr.Error()
	}
	t.Add("recovered", MopsString(r.RecoveredMops),
		fmt.Sprintf("acked writes %d, lost %d, dup/phantom %d; validate %s",
			r.AckedWrites, r.LostAcked, r.DupOrPhantom, valid))
	t.Note("every kill-window worker tracks acked writes on a private key stripe; all must survive, exactly once")
	t.Note("mirrors ride detached doorbells, so steady-state cost is NIC load on the replicas, not commit latency")

	c.Add(Metric{Exp: "replica", Name: "replica/control", Mops: r.ControlMops})
	c.Add(Metric{Exp: "replica", Name: "replica/steady", Mops: r.SteadyMops, Gate: true})
	c.Add(Metric{Exp: "replica", Name: "replica/kill", Mops: r.KillMops})
	c.Add(Metric{Exp: "replica", Name: "replica/recovered", Mops: r.RecoveredMops, RecoveryNS: r.RecoveryNS})
	return t, &r
}

// ReplicaGate is the CI check behind `shermanbench -exp replica -check`: the
// mid-window memory-server death must lose zero acknowledged writes (each
// tracked key reachable exactly once after failover + re-replication), the
// failover must actually have promoted chunks with none lost outright,
// repair must restore full redundancy on a Validate-clean tree, and
// replicated steady-state throughput must stay within 90% of the
// unreplicated control.
func ReplicaGate(r *ReplicaResult) error {
	if r == nil {
		return fmt.Errorf("replica gate: experiment did not run")
	}
	if r.AckedWrites == 0 {
		return fmt.Errorf("replica gate: kill window acknowledged no tracked writes")
	}
	if r.LostAcked != 0 {
		return fmt.Errorf("replica gate: %d of %d acked writes lost to the failover", r.LostAcked, r.AckedWrites)
	}
	if r.DupOrPhantom != 0 {
		return fmt.Errorf("replica gate: %d stripe keys not reachable exactly once", r.DupOrPhantom)
	}
	if r.FailedOver == 0 {
		return fmt.Errorf("replica gate: the kill promoted no chunks (victim empty?)")
	}
	if r.LostChunks != 0 {
		return fmt.Errorf("replica gate: %d chunks lost every copy", r.LostChunks)
	}
	if r.UnderReplicated != 0 {
		return fmt.Errorf("replica gate: %d chunks still under-replicated after repair", r.UnderReplicated)
	}
	if r.ValidateErr != nil {
		return fmt.Errorf("replica gate: tree invalid after repair: %w", r.ValidateErr)
	}
	if r.SteadyMops < 0.90*r.ControlMops {
		return fmt.Errorf("replica gate: replicated steady state %.2f Mops under 90%% of control %.2f",
			r.SteadyMops, r.ControlMops)
	}
	if r.KillMops <= 0 || r.RecoveredMops <= 0 {
		return fmt.Errorf("replica gate: no progress in the kill or recovered window")
	}
	return nil
}
