package core_test

import (
	"math/rand/v2"
	"sync"
	"testing"

	core "sherman/internal/core"
	"sherman/internal/layout"
	"sherman/internal/testutil"
)

func TestEmptyTreeLookup(t *testing.T) {
	for _, cfg := range testutil.Configs() {
		cl := testutil.NewCluster(t, 2, 1)
		tr := core.New(cl, cfg)
		h := tr.NewHandle(0, 0)
		if _, ok := h.Lookup(42); ok {
			t.Errorf("%s: lookup on empty tree found a value", cfg.Name())
		}
	}
}

func TestInsertLookupSingleThread(t *testing.T) {
	for _, cfg := range testutil.Configs() {
		cl := testutil.NewCluster(t, 2, 1)
		tr := core.New(cl, cfg)
		h := tr.NewHandle(0, 0)

		const n = 5000
		rng := rand.New(rand.NewPCG(1, 2))
		oracle := make(map[uint64]uint64)
		for i := 0; i < n; i++ {
			k := rng.Uint64N(3*n) + 1
			v := rng.Uint64() | 1
			h.Insert(k, v)
			oracle[k] = v
		}
		for k, v := range oracle {
			got, ok := h.Lookup(k)
			if !ok || got != v {
				t.Fatalf("%s: lookup(%d) = %d,%v want %d,true", cfg.Name(), k, got, ok, v)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: validate: %v", cfg.Name(), err)
		}
	}
}

func TestBulkloadAndLookup(t *testing.T) {
	for _, cfg := range testutil.Configs() {
		cl := testutil.NewCluster(t, 4, 1)
		tr := core.New(cl, cfg)

		const n = 20000
		kvs := make([]layout.KV, n)
		for i := range kvs {
			kvs[i] = layout.KV{Key: uint64(i + 1), Value: uint64(i+1) * 7}
		}
		tr.Bulkload(kvs)
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: validate after bulkload: %v", cfg.Name(), err)
		}

		h := tr.NewHandle(0, 0)
		for _, probe := range []uint64{1, 2, n / 2, n - 1, n} {
			got, ok := h.Lookup(probe)
			if !ok || got != probe*7 {
				t.Fatalf("%s: lookup(%d) = %d,%v want %d,true", cfg.Name(), probe, got, ok, probe*7)
			}
		}
		if _, ok := h.Lookup(n + 100); ok {
			t.Fatalf("%s: found key beyond bulkloaded range", cfg.Name())
		}
	}
}

func TestDelete(t *testing.T) {
	for _, cfg := range testutil.Configs() {
		cl := testutil.NewCluster(t, 2, 1)
		tr := core.New(cl, cfg)
		h := tr.NewHandle(0, 0)

		for k := uint64(1); k <= 2000; k++ {
			h.Insert(k, k*3)
		}
		for k := uint64(2); k <= 2000; k += 2 {
			if !h.Delete(k) {
				t.Fatalf("%s: delete(%d) reported missing", cfg.Name(), k)
			}
		}
		if h.Delete(99999) {
			t.Fatalf("%s: delete of absent key reported found", cfg.Name())
		}
		for k := uint64(1); k <= 2000; k++ {
			v, ok := h.Lookup(k)
			if k%2 == 0 && ok {
				t.Fatalf("%s: deleted key %d still present", cfg.Name(), k)
			}
			if k%2 == 1 && (!ok || v != k*3) {
				t.Fatalf("%s: surviving key %d wrong: %d,%v", cfg.Name(), k, v, ok)
			}
		}
	}
}

func TestRangeQuery(t *testing.T) {
	for _, cfg := range testutil.Configs() {
		cl := testutil.NewCluster(t, 2, 1)
		tr := core.New(cl, cfg)
		const n = 10000
		kvs := make([]layout.KV, n)
		for i := range kvs {
			kvs[i] = layout.KV{Key: uint64(i+1) * 2, Value: uint64(i + 1)}
		}
		tr.Bulkload(kvs)
		h := tr.NewHandle(0, 0)

		got := h.Range(1000, 500)
		if len(got) != 500 {
			t.Fatalf("%s: range returned %d results, want 500", cfg.Name(), len(got))
		}
		want := uint64(1000)
		for i, kv := range got {
			if kv.Key != want {
				t.Fatalf("%s: range[%d].Key = %d, want %d", cfg.Name(), i, kv.Key, want)
			}
			if kv.Value != want/2 {
				t.Fatalf("%s: range[%d].Value = %d, want %d", cfg.Name(), i, kv.Value, want/2)
			}
			want += 2
		}

		// Range off the right edge returns only what exists.
		tail := h.Range(uint64(n)*2-10, 100)
		if len(tail) != 6 {
			t.Fatalf("%s: tail range returned %d results, want 6", cfg.Name(), len(tail))
		}
	}
}

func TestConcurrentInsertLookup(t *testing.T) {
	for _, cfg := range testutil.Configs() {
		cl := testutil.NewCluster(t, 4, 2)
		tr := core.New(cl, cfg)

		const threads = 8
		const perThread = 2000
		var wg sync.WaitGroup
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				h := tr.NewHandle(th%2, th)
				base := uint64(th) * 1_000_000
				for i := uint64(1); i <= perThread; i++ {
					h.Insert(base+i, base+i*2)
					if i%7 == 0 {
						if v, ok := h.Lookup(base + i); !ok || v != base+i*2 {
							t.Errorf("thread %d: lookup(%d) = %d,%v", th, base+i, v, ok)
							return
						}
					}
				}
			}(th)
		}
		wg.Wait()
		if t.Failed() {
			t.Fatalf("%s: concurrent failures", cfg.Name())
		}
		h := tr.NewHandle(0, 99)
		for th := 0; th < threads; th++ {
			base := uint64(th) * 1_000_000
			for i := uint64(1); i <= perThread; i += 97 {
				if v, ok := h.Lookup(base + i); !ok || v != base+i*2 {
					t.Fatalf("%s: post-hoc lookup(%d) = %d,%v", cfg.Name(), base+i, v, ok)
				}
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: validate: %v", cfg.Name(), err)
		}
	}
}

func TestConcurrentHotKeyContention(t *testing.T) {
	for _, cfg := range testutil.Configs() {
		cl := testutil.NewCluster(t, 2, 2)
		tr := core.New(cl, cfg)
		// A handful of hot keys hammered by many threads: exercises lock
		// queueing, handover, and entry-version torn-read detection.
		const threads = 12
		const rounds = 1500
		var wg sync.WaitGroup
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				h := tr.NewHandle(th%2, th)
				rng := rand.New(rand.NewPCG(uint64(th), 99))
				for i := 0; i < rounds; i++ {
					k := rng.Uint64N(8) + 1
					if rng.Uint64N(2) == 0 {
						h.Insert(k, k*10000+uint64(i))
					} else if v, ok := h.Lookup(k); ok && v/10000 != k {
						// Every value ever written for k is k*10000+i with
						// i < rounds, so any other reading is a torn read.
						t.Errorf("torn value for key %d: %d", k, v)
						return
					}
				}
			}(th)
		}
		wg.Wait()
		if t.Failed() {
			t.Fatalf("%s: hot-key contention failures", cfg.Name())
		}
	}
}
