// Package hocl implements Sherman's hierarchical on-chip lock (§4.3): global
// lock tables (GLTs) stored in the on-chip device memory of memory-server
// NICs, and per-compute-server local lock tables (LLTs) with FIFO wait
// queues and a bounded lock-handover mechanism.
//
// The package also implements every degraded configuration the paper
// ablates (Figure 16 and the +On-Chip / +Hierarchical steps of Figures 10
// and 11): host-memory lock tables, lockless-local spinning, local tables
// without wait queues, and wait queues without handover.
package hocl

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sherman/internal/rdma"
)

// DefaultLocksPerMS is the default GLT size. The paper packs 131,072
// 16-bit locks into the 256 KB of ConnectX-5 on-chip memory; the simulator
// defaults lower to keep per-CS local tables small in-process (see
// DESIGN.md §2), and accepts the full value via Config.
const DefaultLocksPerMS = 16384

// DefaultMaxHandover bounds consecutive intra-CS handovers so remote
// compute servers cannot starve (§4.3: MAX_DEPTH = 4).
const DefaultMaxHandover = 4

// Mode selects which parts of HOCL are active; the zero value is the FG-like
// baseline (host-memory locks, global CAS spinning, no local coordination).
type Mode struct {
	// OnChip stores GLTs in NIC on-chip device memory (16-bit masked-CAS
	// locks) instead of host memory (64-bit CAS locks behind PCIe).
	OnChip bool
	// Local enables per-CS local lock tables: a thread acquires the local
	// lock before issuing any remote CAS, eliminating intra-CS retry storms.
	Local bool
	// WaitQueue adds FIFO wait queues to local locks, providing
	// first-come-first-served fairness within a CS. Requires Local.
	WaitQueue bool
	// Handover lets a releasing thread pass the *global* lock directly to
	// the next local waiter, saving that waiter's remote acquisition round
	// trip. Requires WaitQueue.
	Handover bool
}

// Sherman is the full HOCL configuration.
func Sherman() Mode {
	return Mode{OnChip: true, Local: true, WaitQueue: true, Handover: true}
}

// Baseline is the FG-style RDMA spin lock: 64-bit CAS on host memory,
// release by WRITE, no CS-side coordination.
func Baseline() Mode { return Mode{} }

func (m Mode) validate() error {
	if m.WaitQueue && !m.Local {
		return fmt.Errorf("hocl: WaitQueue requires Local")
	}
	if m.Handover && !m.WaitQueue {
		return fmt.Errorf("hocl: Handover requires WaitQueue")
	}
	return nil
}

// Stats aggregates lock activity across all threads of a Manager.
type Stats struct {
	// Acquisitions counts successful lock acquisitions.
	Acquisitions atomic.Int64
	// Handovers counts acquisitions satisfied by intra-CS handover, which
	// skip the remote CAS entirely.
	Handovers atomic.Int64
	// GlobalRetries counts failed remote CAS attempts.
	GlobalRetries atomic.Int64
	// LocalWaits counts acquisitions that had to wait for a local holder.
	LocalWaits atomic.Int64
	// MaxWaiters is the high-water mark of threads queued on one global
	// lock — the depth of the worst convoy (diagnostic for the §3.2.2
	// collapse).
	MaxWaiters atomic.Int64
	// Grants counts lock handoffs to queued waiters; GrantSpinnersSum sums
	// the queue depth at those handoffs (diagnostics: their ratio is the
	// average convoy depth a winner's CAS must traverse).
	Grants           atomic.Int64
	GrantSpinnersSum atomic.Int64
}

func (s *Stats) noteWaiters(n int) {
	v := int64(n)
	for {
		old := s.MaxWaiters.Load()
		if v <= old || s.MaxWaiters.CompareAndSwap(old, v) {
			return
		}
	}
}

// Config sizes a lock manager.
type Config struct {
	Mode Mode
	// LocksPerMS is the GLT size per memory server; 0 means
	// DefaultLocksPerMS.
	LocksPerMS int
	// MaxHandover is the consecutive-handover bound; 0 means
	// DefaultMaxHandover.
	MaxHandover int
}

// Manager owns the global lock tables of every memory server and the local
// lock tables of every compute server.
type Manager struct {
	mode        Mode
	locksPerMS  int
	maxHandover int
	f           *rdma.Fabric

	// gltHostBase[ms] is the host-memory base offset of ms's lock table
	// when !mode.OnChip. On-chip GLTs start at on-chip offset 0.
	gltHostBase []uint64

	llts []*localTable // indexed by CS id; nil when !mode.Local

	// slots[ms*locksPerMS+idx] serializes each global lock in virtual time.
	// Worker goroutines execute at unrelated real-time rates, so a raw
	// real-time CAS race would let a thread whose virtual clock is far in
	// the future snatch a lock from virtually-earlier waiters, dragging the
	// lock's timeline forward and billing laggards phantom retry storms.
	// Instead each slot tracks its holder and grants releases to the
	// virtually-earliest waiter, while the waiters pay — against the NIC
	// pipelines and atomic buckets — for every spin retry real hardware
	// would have issued during their wait (§3.2.2). Real mutual exclusion
	// and faithful virtual-time ordering both hold, independent of
	// goroutine scheduling.
	slots []gslot

	// Stats is safe to read after threads quiesce.
	Stats Stats
}

// gslot is the simulation state of one global lock.
type gslot struct {
	mu      sync.Mutex
	held    bool
	relV    int64      // virtual time of the most recent release
	waiters []*gwaiter // threads blocked on the held lock

	// Arrival history for convoy-depth estimation. Client goroutines run at
	// unrelated real-time speeds, so at any real instant the queue holds
	// only a few waiters even when — in virtual time — dozens of clients
	// are spinning on this lock (their wait windows overlap the lock's
	// timeline, which runs far ahead of the client population under
	// contention). The virtual convoy depth is therefore estimated from
	// the observed arrival rate: V = queued + rate x (lock lead over the
	// newest arrival).
	arrivals    [16]int64 // ring of recent arrival clocks
	ai          int       // next ring index
	acount      int       // samples recorded (saturates at ring size)
	lastArrival int64     // newest arrival clock seen
}

// noteArrival records a waiter's clock for rate estimation. Caller holds mu.
func (s *gslot) noteArrival(clock int64) {
	s.arrivals[s.ai] = clock
	s.ai = (s.ai + 1) % len(s.arrivals)
	if s.acount < len(s.arrivals) {
		s.acount++
	}
	if clock > s.lastArrival {
		s.lastArrival = clock
	}
}

// convoyDepth estimates how many clients are virtually spinning on the lock
// at virtual time rel, bounded by the client population (each client has at
// most one command in flight). Caller holds mu.
func (s *gslot) convoyDepth(rel int64, maxClients int) int {
	v := len(s.waiters)
	if s.acount == len(s.arrivals) {
		oldest := s.arrivals[s.ai] // ring is full: next slot holds the oldest
		if span := s.lastArrival - oldest; span > 0 {
			rate := float64(s.acount-1) / float64(span) // arrivals per virtual ns
			if lead := rel - s.lastArrival; lead > 0 {
				v += int(rate * float64(lead))
			}
		}
	}
	if maxClients > 0 && v > maxClients {
		v = maxClients
	}
	return v
}

// gwaiter is one thread waiting for a global lock.
type gwaiter struct {
	clock int64      // the waiter's virtual clock at arrival
	ch    chan grant // receives the releaser's virtual release time
}

// grant is the message a releaser passes to the waiter it wakes.
type grant struct {
	rel int64 // releaser's virtual release time
	// spinners is the number of threads still waiting at handoff. On real
	// hardware every spinner keeps one CAS permanently in flight, so the
	// NIC's atomic unit carries a backlog of ~spinners * service-time that
	// the winner's CAS must traverse before it can observe the released
	// lock (§3.2.2) — the mechanism behind Figure 2's collapse.
	spinners int
}

// NewManager builds the lock tables over fabric f. Host-memory GLTs reserve
// one chunk per memory server at setup time.
func NewManager(f *rdma.Fabric, cfg Config) *Manager {
	if err := cfg.Mode.validate(); err != nil {
		panic(err)
	}
	n := cfg.LocksPerMS
	if n == 0 {
		n = DefaultLocksPerMS
	}
	maxHO := cfg.MaxHandover
	if maxHO == 0 {
		maxHO = DefaultMaxHandover
	}
	m := &Manager{mode: cfg.Mode, locksPerMS: n, maxHandover: maxHO, f: f}
	if cfg.Mode.OnChip {
		for _, s := range f.Servers {
			if need := n * 2; need > s.OnChipSize() {
				panic(fmt.Sprintf("hocl: %d locks need %d B on-chip, NIC has %d B", n, need, s.OnChipSize()))
			}
		}
	} else {
		for _, s := range f.Servers {
			if n*8 > rdma.DefaultChunkSize {
				panic(fmt.Sprintf("hocl: host GLT of %d locks exceeds one chunk", n))
			}
			m.gltHostBase = append(m.gltHostBase, s.Grow())
		}
	}
	if cfg.Mode.Local {
		for range f.CSs {
			m.llts = append(m.llts, newLocalTable(len(f.Servers)*n))
		}
	}
	m.slots = make([]gslot, len(f.Servers)*n)
	return m
}

// LocksPerMS returns the GLT size per memory server.
func (m *Manager) LocksPerMS() int { return m.locksPerMS }

// index hashes a protected object's address into its GLT slot (§4.3, line 5
// of Figure 6). splitmix64 finalizer — fast and well mixed.
func (m *Manager) index(a rdma.Addr) int {
	x := uint64(a)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(m.locksPerMS))
}

// gltAddr returns the global address of lock slot idx on server ms.
func (m *Manager) gltAddr(ms uint16, idx int) rdma.Addr {
	if m.mode.OnChip {
		return rdma.MakeOnChipAddr(ms, uint64(idx)*2)
	}
	return rdma.MakeAddr(ms, m.gltHostBase[ms]+uint64(idx)*8)
}

// Guard is an acquired lock; pass it back to Unlock.
type Guard struct {
	m         *Manager
	ms        uint16
	idx       int
	slot      int
	gaddr     rdma.Addr
	ll        *localLock
	handedOff bool // acquired via handover: global lock still held by this CS
}

// HandedOver reports whether this acquisition skipped the remote CAS.
func (g Guard) HandedOver() bool { return g.handedOff }

// SameSlot reports whether the lock protecting the object at a is the very
// GLT slot g holds — the slot hashing of §4.3 maps every object of one
// memory server into a fixed table, so distinct nodes can alias. A holder
// may then modify the object at a under g without a second acquisition;
// batch executors use this to keep one guard across sibling leaves whose
// locks collide instead of paying release + re-acquire at the boundary.
func (m *Manager) SameSlot(g Guard, a rdma.Addr) bool {
	return g.m == m && int(a.MS())*m.locksPerMS+m.index(a) == g.slot
}

// Lock acquires the exclusive lock protecting the object at addr, per the
// HOCL_Lock pseudo-code (Figure 6): local lock first (queueing locally under
// contention), then the remote lock in the GLT unless it was handed over.
func (m *Manager) Lock(c *rdma.Client, addr rdma.Addr) Guard {
	idx := m.index(addr)
	return m.LockIdx(c, addr.MS(), idx)
}

// LockIdx acquires GLT slot idx on server ms directly, bypassing hashing.
// The lock microbenchmarks (Figures 2 and 16) use it to place exactly N
// distinct locks.
func (m *Manager) LockIdx(c *rdma.Client, ms uint16, idx int) Guard {
	slot := int(ms)*m.locksPerMS + idx
	g := Guard{m: m, ms: ms, idx: idx, slot: slot, gaddr: m.gltAddr(ms, idx)}
	if m.mode.Local {
		ll := m.llts[c.CS.ID].lock(slot)
		g.ll = ll
		g.handedOff = ll.acquire(c, m.mode.WaitQueue, &m.Stats)
		if g.handedOff {
			m.Stats.Handovers.Add(1)
			m.Stats.Acquisitions.Add(1)
			return g
		}
	}
	m.acquireGlobal(c, g.gaddr, slot)
	m.Stats.Acquisitions.Add(1)
	return g
}

// acquireGlobal acquires the GLT slot: it claims the slot's simulation state
// (queueing behind the current holder when necessary), pays the spin retries
// real hardware would have issued while the lock was held, and then flips
// the physical lock word from 0 to this CS's identifier (+1 so an id of zero
// is distinguishable from "unlocked") with one RDMA_CAS.
func (m *Manager) acquireGlobal(c *rdma.Client, gaddr rdma.Addr, slot int) {
	s := &m.slots[slot]
	svc := c.AtomicSvcNS(gaddr)
	var spinners int
	var rel int64
	s.mu.Lock()
	if s.held {
		// Queue on the slot; the releaser grants to the virtually-earliest
		// waiter and passes its release timestamp along.
		w := &gwaiter{clock: c.Now(), ch: make(chan grant, 1)}
		s.waiters = append(s.waiters, w)
		s.noteArrival(w.clock)
		m.Stats.noteWaiters(len(s.waiters))
		s.mu.Unlock()
		g := <-w.ch
		rel, spinners = g.rel, g.spinners
		m.Stats.Grants.Add(1)
		m.Stats.GrantSpinnersSum.Add(int64(g.spinners))
	} else {
		rel = s.relV
		s.held = true
		s.mu.Unlock()
		// The lock is free in real time, but the previous virtual hold
		// window may extend past our clock; spin through the remainder.
	}
	// Pay the spin retries of the wait: one CAS in flight at all times,
	// each completing only after the convoy's queued commands drain
	// (§3.2.2), so the retry cadence stretches with the convoy.
	backlog := int64(spinners) * svc
	n := c.ChargeSpin(gaddr, c.Now(), rel, c.F.P.RTTNS+svc+backlog)
	m.Stats.GlobalRetries.Add(int64(n))

	id := uint64(c.CS.ID) + 1
	var ok bool
	if m.mode.OnChip {
		_, ok = c.CAS16Backlog(gaddr, 0, uint16(id), backlog)
	} else {
		_, ok = c.CASBacklog(gaddr, 0, uint64(id), backlog)
	}
	if !ok {
		panic("hocl: winning CAS failed despite slot serialization")
	}
}

// releaseSlot records the virtual release time and hands the slot to the
// virtually-earliest waiter, if any. The physical lock word was already
// cleared by the caller's release WRITE, so the woken waiter's CAS finds it
// free.
func (m *Manager) releaseSlot(slot int, now int64) {
	s := &m.slots[slot]
	s.mu.Lock()
	s.relV = now
	if len(s.waiters) > 0 {
		min := 0
		for i, w := range s.waiters {
			if w.clock < s.waiters[min].clock {
				min = i
			}
		}
		w := s.waiters[min]
		s.waiters[min] = s.waiters[len(s.waiters)-1]
		s.waiters = s.waiters[:len(s.waiters)-1]
		spinners := s.convoyDepth(now, m.f.ClientCount())
		s.mu.Unlock() // the slot stays held; ownership passes to w
		w.ch <- grant{rel: now, spinners: spinners}
		return
	}
	s.held = false
	s.mu.Unlock()
}

// releaseOp returns the WRITE command that clears the GLT slot (lock release
// by RDMA_WRITE, which is cheaper than RDMA_FAA — §5.1.2, [68]).
func (m *Manager) releaseOp(gaddr rdma.Addr) rdma.WriteOp {
	if m.mode.OnChip {
		return rdma.WriteOp{Addr: gaddr, Data: []byte{0, 0}}
	}
	return rdma.WriteOp{Addr: gaddr, Data: make([]byte, 8)}
}

// Unlock releases the lock, flushing the caller's pending dependent writes.
//
// When combine is true, the write-backs and (if no handover happens) the
// lock-release WRITE are posted as one doorbell batch on the node's QP — one
// round trip total (§4.5). When combine is false the writes are issued as
// separate signaled commands, each costing a round trip (the FG+ behavior).
//
// All writes in pending must target the same memory server as the lock;
// PostWrites enforces this. Writes to *other* servers (cross-MS split
// siblings) must be issued by the caller before Unlock, as in Figure 7.
func (m *Manager) Unlock(c *rdma.Client, g Guard, pending []rdma.WriteOp, combine bool) {
	if g.ll != nil {
		g.ll.mu.Lock()
		handover := m.mode.Handover && len(g.ll.queue) > 0 && g.ll.depth < int32(m.maxHandover)
		if handover {
			g.ll.depth++
		} else {
			g.ll.depth = 0
		}
		m.flush(c, g, pending, combine, !handover)
		g.ll.releaseLocked(c.Now())
		return
	}
	m.flush(c, g, pending, combine, true)
}

// flush issues the dependent writes and, when releaseGlobal is set, the GLT
// clear.
func (m *Manager) flush(c *rdma.Client, g Guard, pending []rdma.WriteOp, combine, releaseGlobal bool) {
	if combine {
		ops := pending
		if releaseGlobal {
			ops = append(ops, m.releaseOp(g.gaddr))
		}
		if len(ops) > 0 {
			c.PostWrites(ops...)
		}
	} else {
		for _, op := range pending {
			c.Write(op.Addr, op.Data)
		}
		if releaseGlobal {
			op := m.releaseOp(g.gaddr)
			c.Write(op.Addr, op.Data)
		}
	}
	if releaseGlobal {
		m.releaseSlot(g.slot, c.Now())
	}
}
