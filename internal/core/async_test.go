package core_test

import (
	"testing"

	"sherman/internal/cluster"
	core "sherman/internal/core"
	"sherman/internal/layout"
	"sherman/internal/stats"
	"sherman/internal/testutil"
)

// asyncTestTree builds a bulkloaded tree with n keys (key i+1 -> i+1) and
// one handle, caches warmed.
func asyncTestTree(t *testing.T, n int) (*core.Tree, *core.Handle) {
	t.Helper()
	cl := cluster.New(cluster.Config{NumMS: 4, NumCS: 1})
	tr := core.New(cl, core.ShermanConfig())
	kvs := make([]layout.KV, n)
	for i := range kvs {
		kvs[i] = layout.KV{Key: uint64(i + 1), Value: uint64(i + 1)}
	}
	tr.Bulkload(kvs)
	h := tr.NewHandle(0, 0)
	for k := uint64(1); k <= uint64(n); k += 61 {
		h.Lookup(k)
	}
	return tr, h
}

// TestAsyncOverlapsIndependentOps: the acceptance criterion at unit scale —
// a depth-4 pipeline must execute independent gets in well under the
// sequential virtual time, with a measured hiding ratio above 1.5x.
func TestAsyncOverlapsIndependentOps(t *testing.T) {
	const n = 50_000
	const ops = 500
	span := func(depth int) (int64, *core.Handle) {
		_, h := asyncTestTree(t, n)
		a := h.NewAsync(depth)
		t0 := h.C.Now()
		key := uint64(7)
		for i := 0; i < ops; i++ {
			key = key*6364136223846793005 + 1442695040888963407
			a.Submit(core.Op{Kind: stats.OpLookup, Key: key%n + 1})
		}
		a.Flush()
		return h.C.Now() - t0, h
	}
	seq, _ := span(1)
	pipe, h := span(4)
	if pipe*2 >= seq {
		t.Errorf("depth-4 span %d not under half the sequential span %d", pipe, seq)
	}
	if hr := h.Rec.HidingRatio(); hr <= 1.5 {
		t.Errorf("depth-4 hiding ratio %.2f, want > 1.5", hr)
	}
	if h.Rec.PipelinedOps != ops {
		t.Errorf("PipelinedOps = %d, want %d", h.Rec.PipelinedOps, ops)
	}
	if mean := h.Rec.PipelineDepths.Mean(); mean < 3 {
		t.Errorf("mean outstanding depth %.2f, want close to 4", mean)
	}
}

// TestAsyncSameKeyOrdering: dependent operations must not overlap — a get
// of key k starts after an outstanding put to k completes (and returns its
// value), and a put after an outstanding get starts after the get.
func TestAsyncSameKeyOrdering(t *testing.T) {
	_, h := asyncTestTree(t, 10_000)
	a := h.NewAsync(8)

	// put(k) then get(k): the get must see the put's value and complete
	// after it.
	_, putDone := a.Submit(core.Op{Kind: stats.OpInsert, Key: 42, Value: 9999})
	res, getDone := a.Submit(core.Op{Kind: stats.OpLookup, Key: 42})
	if !res.Found || res.Value != 9999 {
		t.Fatalf("pipelined get after put = (%d,%v), want (9999,true)", res.Value, res.Found)
	}
	if getDone <= putDone {
		t.Errorf("dependent get completed at %d, not after its put at %d", getDone, putDone)
	}

	// get(k) then put(k): the later put must not virtually complete before
	// the read it would otherwise clobber.
	_, rDone := a.Submit(core.Op{Kind: stats.OpLookup, Key: 77})
	_, wDone := a.Submit(core.Op{Kind: stats.OpInsert, Key: 77, Value: 1})
	if wDone <= rDone {
		t.Errorf("write-after-read completed at %d, not after the read at %d", wDone, rDone)
	}

	// Independent keys do overlap: with 8 lanes, two fresh gets on cold
	// keys complete within one RTT of each other in either order.
	a.Flush()
	_, d1 := a.Submit(core.Op{Kind: stats.OpLookup, Key: 101})
	_, d2 := a.Submit(core.Op{Kind: stats.OpLookup, Key: 5003})
	gap := d2 - d1
	if gap < 0 {
		gap = -gap
	}
	if gap > h.Timing().RTTNS {
		t.Errorf("independent gets completed %d ns apart, want overlap (< 1 RTT)", gap)
	}
}

// TestAsyncScanBarrier: a scan orders after every outstanding write and
// bars later writes until it completes, so pipelined streams stay
// observably sequential around range queries.
func TestAsyncScanBarrier(t *testing.T) {
	_, h := asyncTestTree(t, 10_000)
	a := h.NewAsync(8)

	var writeDones []int64
	for i := uint64(0); i < 4; i++ {
		_, d := a.Submit(core.Op{Kind: stats.OpInsert, Key: 2000 + i, Value: 1})
		writeDones = append(writeDones, d)
	}
	res, scanDone := a.Submit(core.Op{Kind: stats.OpRange, Key: 1999, Span: 8})
	for _, d := range writeDones {
		if scanDone <= d {
			t.Errorf("scan completed at %d, before an outstanding write at %d", scanDone, d)
		}
	}
	// The scan sees all four writes (sequential semantics).
	found := 0
	for _, kv := range res.KVs {
		if kv.Key >= 2000 && kv.Key < 2004 {
			found++
		}
	}
	if found != 4 {
		t.Errorf("scan observed %d of the 4 writes submitted before it", found)
	}
	_, wDone := a.Submit(core.Op{Kind: stats.OpInsert, Key: 2500, Value: 1})
	if wDone <= scanDone {
		t.Errorf("write after scan completed at %d, before the scan at %d", wDone, scanDone)
	}
}

// TestAsyncDepth1MatchesSync: a depth-1 executor is the synchronous client —
// identical results, clock advance, and round-trip counts, no pipeline
// metrics.
func TestAsyncDepth1MatchesSync(t *testing.T) {
	_, hs := asyncTestTree(t, 10_000)
	_, ha := asyncTestTree(t, 10_000)
	a := ha.NewAsync(1)

	s0, a0 := hs.C.Now(), ha.C.Now()
	srt, art := hs.Metrics().RoundTrips, ha.Metrics().RoundTrips
	keys := []uint64{5, 500, 5000, 9999, 123, 456}
	for _, k := range keys {
		hs.Insert(k, k*3)
		r, _ := a.Submit(core.Op{Kind: stats.OpInsert, Key: k, Value: k * 3})
		_ = r
	}
	for _, k := range keys {
		wv, wok := hs.Lookup(k)
		r, _ := a.Submit(core.Op{Kind: stats.OpLookup, Key: k})
		if r.Found != wok || r.Value != wv {
			t.Errorf("depth-1 Submit lookup(%d) = (%d,%v), sync (%d,%v)", k, r.Value, r.Found, wv, wok)
		}
	}
	a.Flush()
	if sd, ad := hs.C.Now()-s0, ha.C.Now()-a0; sd != ad {
		t.Errorf("depth-1 pipeline consumed %d virtual ns, sync path %d", ad, sd)
	}
	if sr, ar := hs.Metrics().RoundTrips-srt, ha.Metrics().RoundTrips-art; sr != ar {
		t.Errorf("depth-1 pipeline used %d round trips, sync path %d", ar, sr)
	}
	if ha.Rec.PipelinedOps != 0 {
		t.Errorf("depth-1 executor recorded %d pipelined ops, want 0", ha.Rec.PipelinedOps)
	}
}

// TestAsyncExecOverlapsGroups: Async.Exec pipelines the planner's leaf
// groups, so a scattered batch completes in less virtual time at depth 4
// than at depth 1 while returning identical results.
func TestAsyncExecOverlapsGroups(t *testing.T) {
	const n = 50_000
	run := func(depth int) (int64, []core.OpResult) {
		_, h := asyncTestTree(t, n)
		a := h.NewAsync(depth)
		var ops []core.Op
		key := uint64(3)
		for i := 0; i < 64; i++ {
			key = key*6364136223846793005 + 1442695040888963407
			k := key%n + 1
			if i%3 == 0 {
				ops = append(ops, core.Op{Kind: stats.OpInsert, Key: k, Value: k * 7})
			} else {
				ops = append(ops, core.Op{Kind: stats.OpLookup, Key: k})
			}
		}
		t0 := h.C.Now()
		res := a.Exec(ops)
		return h.C.Now() - t0, res
	}
	seqSpan, seqRes := run(1)
	pipeSpan, pipeRes := run(4)
	for i := range seqRes {
		if seqRes[i].Found != pipeRes[i].Found || seqRes[i].Value != pipeRes[i].Value {
			t.Fatalf("Exec result %d differs: depth1 %+v, depth4 %+v", i, seqRes[i], pipeRes[i])
		}
	}
	if pipeSpan >= seqSpan {
		t.Errorf("depth-4 Exec span %d not under depth-1 span %d", pipeSpan, seqSpan)
	}
}

// TestAsyncMixedChurnEquivalence: a long pipelined stream of mixed ops at
// several depths — including inserts that split small leaves mid-pipeline
// and interleaved deletes — stays observably equivalent to the sequential
// path, and the tree stays valid.
func TestAsyncMixedChurnEquivalence(t *testing.T) {
	for _, mode := range []layout.Mode{layout.TwoLevel, layout.Checksum} {
		for _, depth := range []int{2, 4, 8} {
			cfg := core.ShermanConfig()
			if mode == layout.Checksum {
				cfg = core.FGPlusConfig()
			}
			cfg.Format = testutil.SmallFormat(mode)
			seqTree := core.New(cluster.New(cluster.Config{NumMS: 2, NumCS: 1}), cfg)
			pipeTree := core.New(cluster.New(cluster.Config{NumMS: 2, NumCS: 1}), cfg)
			seqH := seqTree.NewHandle(0, 0)
			pipeH := pipeTree.NewHandle(0, 0)
			a := pipeH.NewAsync(depth)

			const keySpace = 300
			key := uint64(mode)*17 + uint64(depth)
			for i := 0; i < 1200; i++ {
				key = key*6364136223846793005 + 1442695040888963407
				k := key%keySpace + 1
				switch key % 5 {
				case 0, 1:
					seqH.Insert(k, key|1)
					a.Submit(core.Op{Kind: stats.OpInsert, Key: k, Value: key | 1})
				case 2:
					want := seqH.Delete(k)
					got, _ := a.Submit(core.Op{Kind: stats.OpDelete, Key: k})
					if got.Found != want {
						t.Fatalf("%v depth %d: delete(%d) = %v, sequential %v", mode, depth, k, got.Found, want)
					}
				case 3:
					wv, wok := seqH.Lookup(k)
					got, _ := a.Submit(core.Op{Kind: stats.OpLookup, Key: k})
					if got.Found != wok || got.Value != wv {
						t.Fatalf("%v depth %d: get(%d) = (%d,%v), sequential (%d,%v)",
							mode, depth, k, got.Value, got.Found, wv, wok)
					}
				default:
					want := seqH.Range(k, 7)
					got, _ := a.Submit(core.Op{Kind: stats.OpRange, Key: k, Span: 7})
					if len(got.KVs) != len(want) {
						t.Fatalf("%v depth %d: scan(%d) returned %d rows, sequential %d",
							mode, depth, k, len(got.KVs), len(want))
					}
					for j := range want {
						if got.KVs[j] != want[j] {
							t.Fatalf("%v depth %d: scan(%d) row %d = %+v, sequential %+v",
								mode, depth, k, j, got.KVs[j], want[j])
						}
					}
				}
			}
			a.Flush()
			for k := uint64(1); k <= keySpace; k++ {
				wv, wok := seqH.Lookup(k)
				gv, gok := pipeH.Lookup(k)
				if wok != gok || (wok && wv != gv) {
					t.Fatalf("%v depth %d: final key %d = (%d,%v), sequential (%d,%v)", mode, depth, k, gv, gok, wv, wok)
				}
			}
			if err := pipeTree.Validate(); err != nil {
				t.Fatalf("%v depth %d: validate: %v", mode, depth, err)
			}
		}
	}
}
