package core

// arena is a per-Handle bump allocator for byte buffers whose lifetime is
// bounded by one top-level operation: split sibling nodes, new roots, the
// private copies batch executors queue behind a leaf lock, and the parallel
// read buffers of a range scan. Handles are single-goroutine, so the arena
// needs no synchronization; it is reset at operation boundaries (insertInner,
// deleteInner, rangeInner, each batch write group) and grows monotonically to
// the high-water mark of the deepest operation seen — after warmup, a steady
// workload bump-allocates from the retained slab and never touches the heap.
//
// Ownership rule: an arena buffer is valid until the handle's next top-level
// operation begins. Anything that outlives the operation — cache entries,
// results returned to callers — must be copied out (cacheInternal and the
// scan result slice already do). Verbs copy their payloads synchronously, so
// posting an arena buffer to the fabric never extends its lifetime.
type arena struct {
	slab []byte
	off  int
	// poison fills released bytes with 0xDB at reset (Config.Poison), so a
	// retained reference into recycled arena memory reads garbage
	// deterministically instead of a stale-but-plausible node image.
	poison bool
	// spill holds slabs abandoned mid-operation by grow; they stay reachable
	// until reset so outstanding buffers remain valid, then drop at once.
	spill [][]byte
}

// poisonByte is the fill pattern of poison mode — an odd, non-zero value that
// fails node liveness and version checks loudly.
const poisonByte = 0xDB

// reset recycles the whole arena; outstanding buffers from the previous
// operation become invalid (and read poison when enabled).
func (a *arena) reset() {
	if a.poison {
		for i := range a.slab[:a.off] {
			a.slab[i] = poisonByte
		}
		for _, s := range a.spill {
			for i := range s {
				s[i] = poisonByte
			}
		}
	}
	a.off = 0
	a.spill = nil
}

// bytes bump-allocates n bytes. The returned slice has full capacity n, so an
// append past its end never silently bleeds into a neighboring allocation.
func (a *arena) bytes(n int) []byte {
	if a.off+n > len(a.slab) {
		a.grow(n)
	}
	b := a.slab[a.off : a.off+n : a.off+n]
	a.off += n
	if a.poison {
		// The region may hold a previous operation's poisoned bytes; callers
		// (node Init, verb reads) overwrite fully, but clear anyway so poison
		// means exactly "read after release", never "read before init".
		clear(b)
	}
	return b
}

// grow replaces the slab with one at least double the current size and large
// enough for n; the old slab parks in spill so buffers handed out earlier in
// this operation stay valid until reset.
func (a *arena) grow(n int) {
	size := 2 * len(a.slab)
	const minSlab = 4096
	if size < minSlab {
		size = minSlab
	}
	if size < n {
		size = n
	}
	if len(a.slab) > 0 {
		a.spill = append(a.spill, a.slab)
	}
	a.slab = make([]byte, size)
	a.off = 0
}
