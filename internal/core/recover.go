package core

import (
	"sherman/internal/cluster"
	"sherman/internal/layout"
	"sherman/internal/rdma"
)

// This file is the structural half of crash recovery. A compute-server crash
// can strand a B-link split half-done: the node write-backs committed (the
// split is visible through sibling pointers) but the client died before
// inserting the new separator into the parent — or, for a root split, before
// swinging the superblock's root pointer. The tree stays fully functional in
// that state (every traversal reaches the orphan half by moving right, the
// B-link invariant), but it is permanently degraded and Validate rejects it.
// RecoverStructure is the REDO pass that completes those splits: it walks
// the internal levels top-down, reads each node's children, and re-inserts
// any separator a sibling chain proves missing, through the ordinary locked
// insertParent path — idempotent, so racing with a live splitter is safe
// (Internal.Insert overwrites duplicate keys in place).
//
// The lock half of recovery — freeing the dead client's HOCL locks — needs
// no sweep: orphaned locks are reclaimed on demand by whoever next needs
// them, after the lease expires (see hocl.Guard.Reclaimed).

// maxRecoverPasses bounds re-sweeps under concurrent splits; each pass
// either repairs something or proves the structure complete. Each pass
// fixes at least one broken parent, so the cap is also the most distinct
// half-done splits one call can complete.
const maxRecoverPasses = 64

// RecoverStructure completes every half-done split reachable from the root
// and returns the number of separator (and root) repairs performed, with
// complete=false when the pass budget ran out before a clean sweep (more
// pending repairs than maxRecoverPasses, or live splitters racing the walk
// indefinitely) — the caller should run it again. It issues ordinary timed
// verbs on the handle's clock, so its virtual duration is the recovery time
// a real deployment would observe; run it from any live compute server
// after a crash is detected (lease expiry). Safe, though wasteful, to run
// when nothing crashed.
func (h *Handle) RecoverStructure() (repaired int, complete bool) {
	for pass := 0; pass < maxRecoverPasses; pass++ {
		n, rescan := h.recoverPass()
		repaired += n
		h.Rec.SplitRepairs += int64(n)
		if n == 0 && !rescan {
			return repaired, true
		}
	}
	return repaired, false
}

// recoverPass performs one top-down sweep, returning the repairs made and
// whether another sweep is needed (a repair invalidated the parent images
// already read, or a concurrent writer raced the walk). Only genuine
// separator/root re-inserts count as repairs; races force a rescan without
// inflating the count.
func (h *Handle) recoverPass() (int, bool) {
	// One validated read resolves both the root image and its
	// authoritative level (the superblock's level field is only a hint).
	root, _ := cluster.ReadRoot(h.C)
	buf := make([]byte, h.t.cfg.Format.NodeSize)
	n, _ := h.readNode(root, buf)
	if !n.Alive() {
		if fwd, ok := h.chase(root); ok {
			// The root migrated but the migrator died before repointing the
			// superblock: follow the forwarding hop and repair the pointer,
			// or the sweep would rescan this dead root forever.
			fn, _ := h.readNode(fwd, buf)
			if fn.Alive() && cluster.CASRoot(h.C, root, fwd, fn.Level()) {
				h.cache.SetRoot(fwd, fn.Level())
				return 1, true
			}
		}
		// Raced a root change; the next pass re-resolves it.
		return 0, true
	}
	rootLvl := n.Level()
	h.cache.SetRoot(root, rootLvl)
	if !n.Sibling().IsNil() {
		// Half-done root split: the old root was split but the new root was
		// never installed. insertParent grows the tree above it.
		h.insertParent(n.UpperFence(), n.Sibling(), n.Level()+1)
		return 1, true
	}
	if rootLvl == 0 {
		return 0, false
	}
	return h.recoverNode(layout.AsInternal(n), rootLvl)
}

// recoverNode checks one internal node's children against their claimed key
// ranges: a child whose upper fence falls short of the range the parent
// assigns it has split, and every chain node up to the claimed bound must
// appear as a separator. Missing ones are re-inserted; intact children are
// recursed into.
func (h *Handle) recoverNode(in layout.Internal, level uint8) (int, bool) {
	f := h.t.cfg.Format
	seps := in.Separators()
	children := make([]rdma.Addr, 0, len(seps)+1)
	uppers := make([]uint64, 0, len(seps)+1)
	children = append(children, in.Leftmost())
	for _, s := range seps {
		children = append(children, s.Child)
		uppers = append(uppers, s.Key)
	}
	uppers = append(uppers, in.UpperFence())

	// One doorbell post fetches every child (§4.4's parallel-read pattern);
	// torn reads fall back to the validating single-node path.
	bufs := make([][]byte, len(children))
	reqs := make([]rdma.ReadOp, len(children))
	for i, a := range children {
		bufs[i] = make([]byte, f.NodeSize)
		reqs[i] = rdma.ReadOp{Addr: a, Buf: bufs[i]}
	}
	h.C.ReadMulti(reqs)

	repaired := 0
	for i, a := range children {
		n := layout.ViewNode(f, bufs[i])
		if !n.Consistent() {
			n, _ = h.readNode(a, bufs[i])
		}
		if !n.Alive() {
			if fwd, ok := h.chase(a); ok {
				// The child migrated; if its migrator died before swinging
				// the parent pointer, repair it here (follow the one hop,
				// then rewrite the parent through the locked path) so
				// forwarding entries can drain after the sweep.
				fn, _ := h.readNode(fwd, bufs[i])
				lower := in.LowerFence()
				if i > 0 {
					lower = uppers[i-1]
				}
				if fn.Alive() && fn.Level() == level-1 &&
					h.repointChild(level, lower, a, fwd) == repointDone {
					return repaired + 1, true
				}
			}
			// The parent image went stale under us; re-sweep.
			return repaired, true
		}
		if n.Level() != level-1 {
			return repaired, true
		}
		// Follow the child's sibling chain up to the bound the parent
		// claims; every hop crosses a separator the parent is missing. A
		// sibling that migrated is resolved through forwarding first, so
		// the re-inserted separator names the live copy, not the corpse.
		cur := n
		for fenceBefore(cur.UpperFence(), uppers[i]) {
			// Capture before reading the sibling: cur views bufs[i], which
			// the sibling read below overwrites.
			sepKey := cur.UpperFence()
			sib := cur.Sibling()
			if sib.IsNil() {
				break // structurally off; leave it to Validate to report
			}
			sn, _ := h.readNode(sib, bufs[i])
			if !sn.Alive() {
				if fwd, ok := h.chase(sib); ok {
					if fn, _ := h.readNode(fwd, bufs[i]); fn.Alive() {
						sib, sn = fwd, fn
					}
				}
			}
			if !sn.Alive() || sn.Level() != level-1 {
				return repaired, true
			}
			h.insertParent(sepKey, sib, level)
			repaired++
			cur = sn
		}
		if repaired > 0 {
			// The parent image no longer matches reality; re-sweep rather
			// than descending through stale steering.
			return repaired, true
		}
		if level-1 >= 1 {
			if r, rescan := h.recoverNode(layout.AsInternal(n), level-1); r > 0 || rescan {
				return repaired + r, true
			}
		}
	}
	return repaired, false
}

// fenceBefore reports whether fence a ends strictly before bound b, treating
// layout.NoUpperBound as +infinity.
func fenceBefore(a, b uint64) bool {
	if a == layout.NoUpperBound {
		return false
	}
	return b == layout.NoUpperBound || a < b
}
