package sim

import "testing"

func TestLanes(t *testing.T) {
	l := NewLanes(3)
	if l.N() != 3 {
		t.Fatalf("N = %d, want 3", l.N())
	}
	if lane, done := l.Min(); lane != 0 || done != 0 {
		t.Fatalf("Min of fresh lanes = (%d,%d), want (0,0)", lane, done)
	}
	l.Set(0, 100)
	l.Set(1, 50)
	l.Set(2, 200)
	if lane, done := l.Min(); lane != 1 || done != 50 {
		t.Errorf("Min = (%d,%d), want (1,50)", lane, done)
	}
	if m := l.Max(); m != 200 {
		t.Errorf("Max = %d, want 200", m)
	}
	if b := l.Busy(50); b != 2 {
		t.Errorf("Busy(50) = %d, want 2 (completions at exactly now are idle)", b)
	}
	if b := l.Busy(200); b != 0 {
		t.Errorf("Busy(200) = %d, want 0", b)
	}
	if NewLanes(0).N() != 1 {
		t.Error("NewLanes(0) not clamped to 1")
	}
}
