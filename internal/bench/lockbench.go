package bench

import (
	"sync"

	"sherman/internal/hocl"
	"sherman/internal/rdma"
	"sherman/internal/sim"
	"sherman/internal/stats"
	"sherman/internal/workload"
)

// LockExp is the raw lock microbenchmark of Figures 2 and 16: threads across
// several compute servers acquire and release a set of locks on one memory
// server under a (possibly skewed) access pattern.
type LockExp struct {
	Name string

	NumCS        int
	ThreadsPerCS int
	// Locks is the number of distinct locks, all on memory server 0
	// (10240 in the paper's experiments).
	Locks int
	// Theta is the Zipfian skewness; 0 means uniform.
	Theta float64
	// HoldNS is the local critical-section time between acquire and
	// release.
	HoldNS int64

	Mode hocl.Mode
	// MaxHandover overrides HOCL's consecutive-handover bound (0 = the
	// paper's MAX_DEPTH of 4).
	MaxHandover int

	// WarmupOps is executed per thread before measurement.
	WarmupOps int
	// MeasureNS is the virtual measurement window (see TreeExp.MeasureNS);
	// 0 means 10 ms.
	MeasureNS int64
	// MaxOpsPerThread is the wall-time safety valve (0 = 1e6).
	MaxOpsPerThread int

	Params sim.Params
}

// Defaults fills unset fields with the Figure 16 setup (176 threads across
// 8 CSs, 10240 locks, skew 0.99).
func (e LockExp) Defaults() LockExp {
	if e.NumCS == 0 {
		e.NumCS = 8
	}
	if e.ThreadsPerCS == 0 {
		e.ThreadsPerCS = 22
	}
	if e.Locks == 0 {
		e.Locks = 10240
	}
	if e.HoldNS == 0 {
		e.HoldNS = 200
	}
	if e.WarmupOps == 0 {
		e.WarmupOps = 200
	}
	if e.MeasureNS == 0 {
		e.MeasureNS = 10_000_000
	}
	if e.MaxOpsPerThread == 0 {
		e.MaxOpsPerThread = 1_000_000
	}
	if e.Params.RTTNS == 0 {
		e.Params = sim.DefaultParams()
	}
	return e
}

// LockResult is the outcome of one lock experiment.
type LockResult struct {
	Name          string
	Mops          float64
	P50, P99      int64
	Handovers     int64
	GlobalRetries int64
}

// RunLocks executes one lock microbenchmark.
func RunLocks(e LockExp) LockResult {
	e = e.Defaults()
	f := rdma.NewFabric(e.Params, 1, e.NumCS)
	mgr := hocl.NewManager(f, hocl.Config{Mode: e.Mode, LocksPerMS: e.Locks, MaxHandover: e.MaxHandover})

	n := e.NumCS * e.ThreadsPerCS
	clients := make([]*rdma.Client, n)
	for i := range clients {
		clients[i] = f.NewClient(i % e.NumCS)
	}
	var zipf *workload.ZipfGen
	if e.Theta > 0 {
		zipf = workload.NewZipfGen(uint64(e.Locks), e.Theta)
	}

	startV := make([]int64, n)
	recs := make([]*stats.Recorder, n)
	gate := sim.NewGate(gateWindowNS, gateSlack, n)
	var warmDone, measureDone sync.WaitGroup
	warmDone.Add(n)
	measureDone.Add(n)
	startCh := make(chan struct{})
	var maxStart int64

	for i := 0; i < n; i++ {
		go func(i int) {
			defer measureDone.Done()
			defer gate.Done(i)
			c := clients[i]
			rng := newRand(uint64(i) + 1)
			next := func() int {
				if zipf != nil {
					return int(zipf.Next(rng))
				}
				return int(rng.Uint64N(uint64(e.Locks)))
			}
			lockOnce := func(rec *stats.Recorder) {
				idx := next()
				t0 := c.Now()
				g := mgr.LockIdx(c, 0, idx)
				c.Step(e.HoldNS)
				mgr.Unlock(c, g, nil, true)
				if rec != nil {
					rec.RecordOp(stats.OpInsert, c.Now()-t0)
				}
			}
			for j := 0; j < e.WarmupOps; j++ {
				lockOnce(nil)
				gate.Sync(i, c.Now())
			}
			startV[i] = c.Now()
			gate.Park(i) // frozen clock must not stall threads still warming up
			warmDone.Done()
			<-startCh
			// Jittered start; see RunTree.
			start := maxStart + int64(i*9973%10_000)
			c.Clk.AdvanceTo(start)
			gate.Resume(i, start)
			rec := stats.NewRecorder()
			deadline := maxStart + e.MeasureNS
			for j := 0; c.Now() < deadline && j < e.MaxOpsPerThread; j++ {
				lockOnce(rec)
				gate.Sync(i, c.Now())
			}
			rec.FinishV = c.Now()
			recs[i] = rec
		}(i)
	}
	warmDone.Wait()
	for _, v := range startV {
		if v > maxStart {
			maxStart = v
		}
	}
	close(startCh)
	measureDone.Wait()

	merged := stats.NewRecorder()
	for _, r := range recs {
		merged.Merge(r)
	}
	return LockResult{
		Name:          e.Name,
		Mops:          stats.ThroughputMops(merged.TotalOps(), e.MeasureNS),
		P50:           merged.AllLatency.Percentile(50),
		P99:           merged.AllLatency.Percentile(99),
		Handovers:     mgr.Stats.Handovers.Load(),
		GlobalRetries: mgr.Stats.GlobalRetries.Load(),
	}
}
