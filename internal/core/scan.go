package core

import (
	"fmt"

	"sherman/internal/layout"
	"sherman/internal/rdma"
	"sherman/internal/stats"
)

// maxParallelReads caps one ReadMulti batch of a range query.
const maxParallelReads = 16

// maxScanRestarts bounds full-scan restarts so a steering bug can never
// livelock a client silently; the bound is far above anything concurrent
// splits can cause.
const maxScanRestarts = 1 << 20

// Range returns up to span key-value pairs with key >= from, in ascending
// key order. Like FG, Sherman's range query is not atomic with concurrent
// writes (§4.4): each leaf is read consistently, but the scan as a whole is
// not a snapshot.
func (h *Handle) Range(from uint64, span int) []layout.KV {
	h.m.BeginOp()
	t0 := h.C.Now()
	out := h.rangeInner(from, span)
	h.Rec.RecordOp(stats.OpRange, h.C.Now()-t0)
	return out
}

func (h *Handle) rangeInner(from uint64, span int) []layout.KV {
	out := make([]layout.KV, 0, span) // caller-owned result, never recycled
	cursor := from
	restarts := 0
	for len(out) < span {
		if restarts > maxScanRestarts {
			panic(fmt.Sprintf("core: range scan livelocked at cursor %d (from %d, %d rows)",
				cursor, from, len(out)))
		}
		// Each steered batch's scratch — target addresses, parallel read
		// buffers — dies with the batch, so resetting the arena here keeps
		// its high-water mark at one batch regardless of span.
		h.arena.reset()
		// Collect the addresses of the next run of leaves. A cached level-1
		// node yields many at once, fetched with parallel RDMA_READs; a
		// cache miss falls back to a single traversal.
		addrs := h.scanAddrs[:0]
		h.C.Step(h.tm.LocalStepNS)
		e := h.cache.Lookup(cursor, 1)
		if e != nil {
			h.Rec.CacheHits++
			h.Rec.CacheLevelHits[stats.CacheLevelIdx(1)]++
			// The whole steered batch is one speculative leaf-direct
			// resolution: it either validates or fails (and restarts) as a
			// unit, matching the one SpecFail a failure records below.
			h.Rec.SpecReads++
			addrs = e.N.AppendChildrenFrom(addrs, cursor)
			if len(addrs) > maxParallelReads {
				addrs = addrs[:maxParallelReads]
			}
		} else {
			h.Rec.CacheMisses++
			var leaf rdma.Addr
			leaf, e = h.traverseToLeaf(cursor)
			addrs = append(addrs, leaf)
		}
		h.scanAddrs = addrs[:0]

		bufs := h.scanBufs[:0]
		reqs := h.scanReqs[:0]
		for _, a := range addrs {
			buf := h.arena.bytes(h.t.cfg.Format.NodeSize)
			bufs = append(bufs, buf)
			reqs = append(reqs, rdma.ReadOp{Addr: a, Buf: buf})
		}
		h.scanBufs, h.scanReqs = bufs[:0], reqs[:0]
		h.C.ReadMulti(reqs)

		restart := false
		for i := range addrs {
			n := layout.ViewNode(h.t.cfg.Format, bufs[i])
			if !n.Consistent() {
				// Inconsistent snapshot: re-read this leaf alone.
				n, _ = h.readNode(addrs[i], bufs[i])
			}
			// A migrated leaf reads dead while its parent pointer is stale:
			// chase the forwarding chain (one hop per chunk generation) to
			// the live copy — restarting would re-resolve the same stale
			// parent pointer forever.
			for !n.Alive() {
				fwd, ok := h.chase(addrs[i])
				if !ok {
					break
				}
				addrs[i] = fwd
				n, _ = h.readNode(fwd, bufs[i])
			}
			if !n.Alive() || !n.IsLeaf() || cursor < n.LowerFence() {
				// Freed or repurposed node, or steering overshot the
				// cursor: a failed speculative validation — drop the
				// poisoned path suffix exactly like the point-op path and
				// retraverse from cursor.
				if e != nil {
					h.specFail(cursor, 0, e)
					e = nil
				}
				restart = true
				break
			}
			if n.UpperFence() != layout.NoUpperBound && cursor >= n.UpperFence() {
				// The leaf is left of the cursor — it split since the
				// steering copy was made (possibly a stale top-cache copy
				// whose separators predate the split). Walk the B-link
				// sibling chain rightward, exactly like the lookup path;
				// restarting instead would re-consult the same stale
				// steering forever. The walk advances the cursor, so the
				// rest of this batch is stale: re-steer afterwards.
				var done, ok bool
				done, ok, cursor = h.scanWalkRight(n, bufs[i], cursor, span, &out)
				if done {
					return out
				}
				if !ok && e != nil {
					if h.cache.Invalidate(e) {
						h.Rec.CacheInvalidations++
					}
					e = nil
				}
				restart = true
				break
			}
			kvs, ok := h.leafEntriesConsistent(addrs[i], n, bufs[i])
			if !ok {
				restart = true
				break
			}
			h.C.Step(h.tm.LocalStepNS) // local sort/scan of the leaf
			for _, kv := range kvs {
				if kv.Key >= cursor {
					out = append(out, kv)
					if len(out) == span {
						return out
					}
				}
			}
			if n.UpperFence() == layout.NoUpperBound {
				return out // reached the right edge of the tree
			}
			cursor = n.UpperFence()
		}
		if restart {
			restarts++
			continue
		}
	}
	return out
}

// scanWalkRight walks the B-link sibling chain from leaf n (which lies left
// of the cursor) until reaching the leaf covering the cursor, appending
// that leaf's rows. done=true means the scan is complete (span filled or
// right edge reached); ok=false means a torn node interrupted the walk.
// newCursor is where the scan should continue steering from.
func (h *Handle) scanWalkRight(n layout.Node, buf []byte, cursor uint64, span int, out *[]layout.KV) (done, ok bool, newCursor uint64) {
	sib := n.Sibling()
	if sib.IsNil() {
		return true, true, cursor // right edge: nothing at the cursor
	}
	// The jump to the sibling is this walk's first hop; the shared seek
	// handles the rest of the chain — further move-rights, freed nodes
	// (stale steering recovery) and fence validation — and lands on the
	// leaf covering the cursor, counting its hops into the same budget.
	hops := 0
	h.noteSiblingHop(&hops)
	r, okSeek := h.seek(cursor, 0, intentRead, sib, nil, buf, nil, &hops)
	if !okSeek {
		return true, true, cursor // ran off the right edge
	}
	n = r.n
	kvs, okc := h.leafEntriesConsistent(r.addr, n, buf)
	if !okc {
		return false, false, cursor
	}
	h.C.Step(h.tm.LocalStepNS)
	for _, kv := range kvs {
		if kv.Key >= cursor {
			*out = append(*out, kv)
			if len(*out) == span {
				return true, true, cursor
			}
		}
	}
	if n.UpperFence() == layout.NoUpperBound {
		return true, true, cursor
	}
	return false, true, n.UpperFence()
}

// leafEntriesConsistent extracts the leaf's live entries, re-reading the
// leaf when an entry-level version check fails (§4.4). addr may be NilAddr
// when the caller cannot cheaply re-read (sibling walks); the caller then
// restarts from steering instead.
func (h *Handle) leafEntriesConsistent(addr rdma.Addr, n layout.Node, buf []byte) ([]layout.KV, bool) {
	for attempt := 0; attempt < 8; attempt++ {
		leaf := layout.AsLeaf(n)
		if h.t.cfg.Format.Mode != layout.TwoLevel {
			return h.leafEntries(leaf), true
		}
		torn := false
		for i := 0; i < leaf.Cap(); i++ {
			if leaf.Key(i) != 0 && !leaf.EntryConsistent(i) {
				torn = true
				break
			}
		}
		if !torn {
			return h.leafEntries(leaf), true
		}
		if addr.IsNil() {
			return nil, false
		}
		n, _ = h.readNode(addr, buf)
		if !n.Alive() || !n.IsLeaf() {
			return nil, false
		}
	}
	return nil, false
}

// leafEntries sorts the leaf's live entries into the handle's KV scratch.
// The returned slice is valid only until the scratch's next use — scan
// callers copy the rows into their result slice immediately.
func (h *Handle) leafEntries(leaf layout.Leaf) []layout.KV {
	kvs := leaf.AppendEntries(h.kvs[:0])
	h.kvs = kvs[:0]
	return kvs
}
