package alloc

import (
	"sync"
	"testing"
	"testing/quick"

	"sherman/internal/rdma"
	"sherman/internal/sim"
)

func newTestFabric(numMS int) *rdma.Fabric {
	return rdma.NewFabric(sim.DefaultParams(), numMS, 2)
}

func TestThreadAllocatorAlignmentAndDistinctness(t *testing.T) {
	f := newTestFabric(2)
	var st Stats
	a := NewThreadAllocator(f.NewClient(0), &st, 0)

	seen := map[rdma.Addr]bool{}
	for i := 0; i < 1000; i++ {
		addr := a.Alloc(1024)
		if addr.Off()%64 != 0 {
			t.Fatalf("allocation %d at %v not 64-byte aligned", i, addr)
		}
		if seen[addr] {
			t.Fatalf("allocation %d at %v overlaps a previous one", i, addr)
		}
		seen[addr] = true
	}
	if st.Nodes.Load() != 1000 {
		t.Errorf("node count = %d, want 1000", st.Nodes.Load())
	}
}

// TestChunkRPCRate: allocations within one chunk must not trigger RPCs; a
// fresh chunk is one RPC.
func TestChunkRPCRate(t *testing.T) {
	f := newTestFabric(1)
	var st Stats
	c := f.NewClient(0)
	a := NewThreadAllocator(c, &st, 0)

	// The first chunk on MS 0 loses 64 B to the nil-address carve-out, so
	// one fewer full node fits.
	perChunk := rdma.DefaultChunkSize/1024 - 1
	for i := 0; i < perChunk; i++ {
		a.Alloc(1024)
	}
	if got := st.Chunks.Load(); got != 1 {
		t.Fatalf("chunk RPCs after one chunk's worth of nodes = %d, want 1", got)
	}
	if got := c.M.RPCs; got != 1 {
		t.Fatalf("client RPC count = %d, want 1", got)
	}
	a.Alloc(1024)
	if got := st.Chunks.Load(); got != 2 {
		t.Fatalf("chunk RPCs after spill = %d, want 2", got)
	}
}

// TestRoundRobinAcrossServers: consecutive chunk refills rotate across
// memory servers, staggered by the seed.
func TestRoundRobinAcrossServers(t *testing.T) {
	f := newTestFabric(4)
	var st Stats
	a := NewThreadAllocator(f.NewClient(0), &st, 1)

	var order []uint16
	for i := 0; i < 9; i++ {
		// One max-size allocation consumes a whole chunk. (MS 0's very first
		// chunk is 64 B short because of the nil-address carve-out, so the
		// rotation skips it once.)
		addr := a.Alloc(rdma.DefaultChunkSize)
		order = append(order, addr.MS())
	}
	hit := map[uint16]int{}
	for i, ms := range order {
		hit[ms]++
		if i > 0 && order[i] == order[i-1] {
			t.Fatalf("consecutive refills both hit ms%d (order %v)", ms, order)
		}
	}
	if len(hit) != 4 {
		t.Fatalf("rotation covered %d servers, want 4 (order %v)", len(hit), order)
	}
	if order[0] != 1 {
		t.Fatalf("seed 1 should start at ms1, got ms%d", order[0])
	}
}

// TestAllocationsNeverSpanChunks: an object must fit entirely inside its
// chunk, or Server.slice would panic on access.
func TestAllocationsNeverSpanChunks(t *testing.T) {
	f := newTestFabric(1)
	var st Stats
	a := NewThreadAllocator(f.NewClient(0), &st, 0)
	sizes := []int{1024, 4096, 64, 8128, 333, 1 << 20}
	for round := 0; round < 200; round++ {
		size := sizes[round%len(sizes)]
		addr := a.Alloc(size)
		start := addr.Off() / rdma.DefaultChunkSize
		end := (addr.Off() + uint64(size) - 1) / rdma.DefaultChunkSize
		if start != end {
			t.Fatalf("allocation of %d B at %v spans chunks %d and %d", size, addr, start, end)
		}
		// The memory must actually be addressable.
		buf := make([]byte, size)
		f.Servers()[addr.MS()].WriteAt(addr.Off(), buf)
	}
}

func TestAllocBadSizesPanic(t *testing.T) {
	f := newTestFabric(1)
	var st Stats
	a := NewThreadAllocator(f.NewClient(0), &st, 0)
	for _, size := range []int{0, -1, rdma.DefaultChunkSize + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Alloc(%d) did not panic", size)
				}
			}()
			a.Alloc(size)
		}()
	}
}

// TestConcurrentAllocatorsDisjoint: allocators on different threads hand out
// disjoint regions (each owns its chunks).
func TestConcurrentAllocatorsDisjoint(t *testing.T) {
	f := newTestFabric(2)
	var st Stats
	const threads, allocs = 8, 300

	results := make([][]rdma.Addr, threads)
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			a := NewThreadAllocator(f.NewClient(th%2), &st, th)
			for i := 0; i < allocs; i++ {
				results[th] = append(results[th], a.Alloc(1024))
			}
		}(th)
	}
	wg.Wait()

	seen := map[rdma.Addr]int{}
	for th, addrs := range results {
		for _, a := range addrs {
			if prev, dup := seen[a]; dup {
				t.Fatalf("threads %d and %d both got %v", prev, th, a)
			}
			seen[a] = th
		}
	}
	if got := st.Nodes.Load(); got != threads*allocs {
		t.Errorf("node count = %d, want %d", got, threads*allocs)
	}
}

// TestBulkSpreadsServers: bulk allocation rotates chunks across servers so a
// bulkloaded tree lands spread out.
func TestBulkSpreadsServers(t *testing.T) {
	f := newTestFabric(4)
	b := NewBulk(f, nil)
	perChunk := rdma.DefaultChunkSize / 1024
	hit := map[uint16]bool{}
	for i := 0; i < 4*perChunk; i++ {
		hit[b.Alloc(1024).MS()] = true
	}
	if len(hit) != 4 {
		t.Errorf("bulk allocation touched %d servers, want 4", len(hit))
	}
}

// TestBulkNoTimeAccounting: bulk allocation must not consume virtual time or
// client metrics (it models pre-experiment setup).
func TestBulkNoTimeAccounting(t *testing.T) {
	f := newTestFabric(1)
	var st Stats
	b := NewBulk(f, &st)
	for i := 0; i < 100; i++ {
		b.Alloc(2048)
	}
	if got := f.Servers()[0].Inbound.Peek(); got != 0 {
		t.Errorf("bulk allocation advanced the inbound pipeline to %d", got)
	}
	if st.Nodes.Load() != 100 {
		t.Errorf("stats nodes = %d, want 100", st.Nodes.Load())
	}
}

// Property: any legal size sequence yields aligned, in-bounds, non-nil
// addresses.
func TestAllocPropertyAligned(t *testing.T) {
	f := newTestFabric(2)
	var st Stats
	a := NewThreadAllocator(f.NewClient(0), &st, 0)
	fn := func(raw uint16) bool {
		size := int(raw)%8192 + 1
		addr := a.Alloc(size)
		return !addr.IsNil() && addr.Off()%64 == 0 &&
			addr.Off()+uint64(size) <= f.Servers()[addr.MS()].Capacity()
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestForwardingSingleTarget pins the one-target-per-chunk contract: a
// second migration of the same source chunk must reuse the installed
// target (so first-generation references keep resolving) — installing a
// fresh one is a protocol violation and panics.
func TestForwardingSingleTarget(t *testing.T) {
	fwd := NewForwarding()
	ck := ChunkID{MS: 1, Index: 3}
	base := rdma.MakeAddr(2, 5*rdma.DefaultChunkSize)
	if _, ok := fwd.Reuse(ck, 0, 1); ok {
		t.Fatal("Reuse found an entry before Install")
	}
	fwd.Install(ck, base, 0, 1)
	got, ok := fwd.Reuse(ck, 1, 7)
	if !ok || got != base {
		t.Fatalf("Reuse = (%v,%v), want (%v,true)", got, ok, base)
	}
	src := ck.ChunkBase().Add(640)
	if r, ok := fwd.Resolve(src); !ok || r != base.Add(640) {
		t.Fatalf("Resolve(%v) = (%v,%v)", src, r, ok)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate Install did not panic")
			}
		}()
		fwd.Install(ck, base.Add(rdma.DefaultChunkSize), 0, 1)
	}()
	// The re-stamped owner (cs 1, epoch 7) governs draining.
	if n := fwd.DropDead(func(cs int, epoch int64) bool { return cs == 1 && epoch == 7 }); n != 0 {
		t.Fatalf("DropDead removed %d live-owner entries", n)
	}
	if n := fwd.DropDead(func(cs int, epoch int64) bool { return false }); n != 1 || fwd.Len() != 0 {
		t.Fatalf("DropDead = %d, len %d; want 1, 0", n, fwd.Len())
	}
}
