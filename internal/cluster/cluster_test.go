package cluster

import (
	"sync"
	"testing"

	"sherman/internal/rdma"
)

func TestNewClusterReservesSuperblock(t *testing.T) {
	c := New(Config{NumMS: 2, NumCS: 2})
	if c.NumMS() != 2 || c.NumCS() != 2 {
		t.Fatalf("sizes = %d MS / %d CS, want 2/2", c.NumMS(), c.NumCS())
	}
	// MS 0 must already own the superblock chunk, so the first allocator
	// chunk cannot be offset 0 (Addr 0 is the nil pointer).
	if got := c.F.Servers()[0].Capacity(); got != rdma.DefaultChunkSize {
		t.Fatalf("MS0 capacity = %d, want one chunk", got)
	}
	base := c.F.Servers()[0].Grow()
	if base == 0 {
		t.Fatal("allocator chunk landed on the superblock")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, cfg := range []Config{{NumMS: 0, NumCS: 1}, {NumMS: 1, NumCS: 0}, {NumMS: -1, NumCS: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestRootRoundTrip(t *testing.T) {
	c := New(Config{NumMS: 2, NumCS: 1})
	root := rdma.MakeAddr(1, 0x4000)
	c.SetRoot(root, 3)

	cl := c.NewClient(0)
	gotRoot, gotLevel := ReadRoot(cl)
	if gotRoot != root || gotLevel != 3 {
		t.Fatalf("ReadRoot = (%v, %d), want (%v, 3)", gotRoot, gotLevel, root)
	}
	if cl.M.Reads != 1 {
		t.Errorf("ReadRoot issued %d READs, want 1", cl.M.Reads)
	}
}

func TestCASRoot(t *testing.T) {
	c := New(Config{NumMS: 1, NumCS: 1})
	oldRoot := rdma.MakeAddr(0, 0x1000)
	c.SetRoot(oldRoot, 0)
	cl := c.NewClient(0)

	newRoot := rdma.MakeAddr(0, 0x2000)
	if !CASRoot(cl, oldRoot, newRoot, 1) {
		t.Fatal("CASRoot with correct old value failed")
	}
	if r, lvl := ReadRoot(cl); r != newRoot || lvl != 1 {
		t.Fatalf("root after CAS = (%v, %d), want (%v, 1)", r, lvl, newRoot)
	}
	// A stale CAS must fail and leave the root untouched.
	if CASRoot(cl, oldRoot, rdma.MakeAddr(0, 0x3000), 2) {
		t.Fatal("CASRoot with stale old value succeeded")
	}
	if r, _ := ReadRoot(cl); r != newRoot {
		t.Fatalf("failed CAS modified the root to %v", r)
	}
}

// TestCASRootRace: of N concurrent root swaps from the same old value,
// exactly one wins.
func TestCASRootRace(t *testing.T) {
	c := New(Config{NumMS: 1, NumCS: 4})
	oldRoot := rdma.MakeAddr(0, 0x1000)
	c.SetRoot(oldRoot, 0)

	const racers = 16
	wins := make([]bool, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := c.NewClient(i % 4)
			wins[i] = CASRoot(cl, oldRoot, rdma.MakeAddr(0, uint64(0x2000+i*64)), 1)
		}(i)
	}
	wg.Wait()

	winners := 0
	winner := -1
	for i, w := range wins {
		if w {
			winners++
			winner = i
		}
	}
	if winners != 1 {
		t.Fatalf("%d CAS winners, want exactly 1", winners)
	}
	cl := c.NewClient(0)
	r, _ := ReadRoot(cl)
	if r != rdma.MakeAddr(0, uint64(0x2000+winner*64)) {
		t.Fatalf("root %v does not match winner %d", r, winner)
	}
}

func TestThreadAllocatorIntegration(t *testing.T) {
	c := New(Config{NumMS: 2, NumCS: 1})
	cl := c.NewClient(0)
	a := c.NewThreadAllocator(cl, 0)
	addr := a.Alloc(1024)
	if addr.IsNil() {
		t.Fatal("nil allocation")
	}
	if c.AllocStats.Chunks.Load() != 1 || c.AllocStats.Nodes.Load() != 1 {
		t.Errorf("alloc stats = %d chunks / %d nodes, want 1/1",
			c.AllocStats.Chunks.Load(), c.AllocStats.Nodes.Load())
	}
}

func TestDefaultParamsApplied(t *testing.T) {
	c := New(Config{NumMS: 1, NumCS: 1})
	if c.P.RTTNS == 0 {
		t.Fatal("zero params were not replaced with defaults")
	}
}
