package tcp

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"testing"
)

// TestFrameRoundTrip encodes frames of assorted opcodes, tags and payload
// sizes and decodes them back, including several frames back to back on one
// stream (the pipelining case). Tags must echo exactly — they are the demux
// key of protocol v2.
func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0xAB},
		bytes.Repeat([]byte{0x5A}, 1024),
		bytes.Repeat([]byte{0xFF}, 1<<20),
	}
	tags := []uint32{0, 1, 63, 0xFFFFFFFF, 7}
	var buf bytes.Buffer
	for i, p := range payloads {
		op := byte(i + 1)
		if err := writeFrame(&buf, tags[i], op, p); err != nil {
			t.Fatalf("writeFrame(tag=%d, op=%d, %d bytes): %v", tags[i], op, len(p), err)
		}
	}
	for i, p := range payloads {
		tag, op, got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame #%d: %v", i, err)
		}
		if tag != tags[i] {
			t.Fatalf("readFrame #%d: tag %d, want %d", i, tag, tags[i])
		}
		if op != byte(i+1) {
			t.Fatalf("readFrame #%d: opcode %d, want %d", i, op, i+1)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("readFrame #%d: payload %d bytes, want %d", i, len(got), len(p))
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("stream not fully consumed: %d bytes left", buf.Len())
	}
}

// TestFrameAppendMatchesWrite pins that the coalescing builder (appendFrame,
// the mux writer's path) produces byte-identical wire output to writeFrame.
func TestFrameAppendMatchesWrite(t *testing.T) {
	payload := bytes.Repeat([]byte{3}, 37)
	var w bytes.Buffer
	if err := writeFrame(&w, 42, opCAS, payload); err != nil {
		t.Fatal(err)
	}
	if got := appendFrame(nil, 42, opCAS, payload); !bytes.Equal(got, w.Bytes()) {
		t.Fatalf("appendFrame diverges from writeFrame:\n  %v\n  %v", got, w.Bytes())
	}
}

// TestFrameTorn truncates an encoded frame at every possible byte boundary:
// a clean cut before any bytes is EOF, and any mid-frame cut — inside the
// tag, the opcode, or the payload — is ErrUnexpectedEOF: the peer died
// mid-frame, never a silent short payload.
func TestFrameTorn(t *testing.T) {
	var full bytes.Buffer
	if err := writeFrame(&full, 9, opCAS, bytes.Repeat([]byte{7}, 24)); err != nil {
		t.Fatal(err)
	}
	whole := full.Bytes()
	for cut := 0; cut < len(whole); cut++ {
		_, _, _, err := readFrame(bytes.NewReader(whole[:cut]))
		if err == nil {
			t.Fatalf("cut at %d of %d: no error", cut, len(whole))
		}
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("cut at 0: err = %v, want EOF", err)
			}
			continue
		}
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestFrameBadLength rejects length fields below the tag+opcode minimum and
// above maxFrame instead of blocking on (or allocating for) a
// desynchronized stream.
func TestFrameBadLength(t *testing.T) {
	for _, n := range []uint32{0, 1, 4, maxFrame + 1, 1 << 31} {
		raw := appendU32(nil, n)
		raw = appendU32(raw, 0) // tag
		raw = append(raw, opPing)
		if _, _, _, err := readFrame(bytes.NewReader(raw)); err == nil {
			t.Fatalf("length %d: no error", n)
		}
	}
}

// TestPayloadReaderShortRead checks that every accessor fails cleanly past
// the end of the payload and that the error sticks.
func TestPayloadReaderShortRead(t *testing.T) {
	b := appendU64(nil, 0xDEADBEEF)
	b = appendU32(b, 42)

	p := payloadReader{b: b}
	if v := p.u64(); v != 0xDEADBEEF || p.err != nil {
		t.Fatalf("u64 = %#x, err %v", v, p.err)
	}
	if v := p.u32(); v != 42 || p.err != nil {
		t.Fatalf("u32 = %d, err %v", v, p.err)
	}
	if v := p.u16(); v != 0 || p.err == nil {
		t.Fatalf("u16 past end = %d, err %v — want 0 and an error", v, p.err)
	}
	first := p.err
	if v := p.u8(); v != 0 || p.err != first {
		t.Fatalf("error did not stick: u8 = %d, err %v", v, p.err)
	}
	if v := p.bytes(8); v != nil {
		t.Fatalf("bytes past end = %v, want nil", v)
	}

	// A negative count must fail, not panic or wrap.
	q := payloadReader{b: b}
	if v := q.bytes(-1); v != nil || q.err == nil {
		t.Fatalf("bytes(-1) = %v, err %v", v, q.err)
	}
}

// rawClient is a lockstep test harness speaking raw v2 frames on one
// socket — deliberately below the mux, so server behavior (tag echo,
// status frames, payload layout) is pinned at the wire level.
type rawClient struct {
	t    *testing.T
	c    net.Conn
	r    *bufio.Reader
	next uint32
}

func dialRaw(t *testing.T, addr string) *rawClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawClient{t: t, c: conn, r: bufio.NewReader(conn)}
}

// req sends one frame with a fresh tag and returns the response payload,
// failing the test unless the response echoes the tag with statusOK.
func (rc *rawClient) req(op byte, payload []byte) []byte {
	rc.t.Helper()
	rc.next++
	tag := rc.next
	if err := writeFrame(rc.c, tag, op, payload); err != nil {
		rc.t.Fatalf("op %d: write: %v", op, err)
	}
	gotTag, status, resp, err := readFrame(rc.r)
	if err != nil {
		rc.t.Fatalf("op %d: read: %v", op, err)
	}
	if gotTag != tag {
		rc.t.Fatalf("op %d: response tag %d, want %d", op, gotTag, tag)
	}
	if status != statusOK {
		rc.t.Fatalf("op %d: status %d, payload %q", op, status, resp)
	}
	return resp
}

// TestServerFrames drives one in-process Server over a real socket with raw
// v2 frames: ping, write/read round trip, batches, atomics, stats, on-chip
// addressing and the error path, verifying each response payload byte for
// byte.
func TestServerFrames(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	rc := dialRaw(t, srv.Addr())

	// Ping reports the protocol version and the on-chip size.
	p := payloadReader{b: rc.req(opPing, nil)}
	if got := p.u32(); got != protocolVersion {
		t.Fatalf("ping: version %d, want %d", got, protocolVersion)
	}
	if got := p.u32(); got != OnChipBytes || p.err != nil {
		t.Fatalf("ping: on-chip %d, want %d (err %v)", got, OnChipBytes, p.err)
	}

	// Grow a chunk, write into it, read it back.
	p = payloadReader{b: rc.req(opGrow, nil)}
	base := p.u64()
	if p.err != nil {
		t.Fatalf("grow: %v", p.err)
	}
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	w := appendU32(nil, 1)
	w = appendU64(w, base+16)
	w = appendU32(w, uint32(len(data)))
	w = append(w, data...)
	rc.req(opWriteBatch, w)

	r := appendU64(nil, base+16)
	r = appendU32(r, uint32(len(data)))
	if got := rc.req(opRead, r); !bytes.Equal(got, data) {
		t.Fatalf("read back %v, want %v", got, data)
	}

	// ReadBatch returns the concatenation in request order.
	rb := appendU32(nil, 2)
	rb = appendU64(rb, base+16)
	rb = appendU32(rb, 4)
	rb = appendU64(rb, base+20)
	rb = appendU32(rb, 4)
	if got := rc.req(opReadBatch, rb); !bytes.Equal(got, data) {
		t.Fatalf("read batch %v, want %v", got, data)
	}

	// CAS: success then failure, previous value reported both ways.
	cas := func(addr, old, new uint64) (uint64, bool) {
		c := appendU64(nil, addr)
		c = appendU64(c, old)
		c = appendU64(c, new)
		p := payloadReader{b: rc.req(opCAS, c)}
		prev, swapped := p.u64(), p.u8()
		if p.err != nil {
			t.Fatalf("cas: %v", p.err)
		}
		return prev, swapped != 0
	}
	if prev, ok := cas(base, 0, 99); !ok || prev != 0 {
		t.Fatalf("cas(0->99) = %d, %v", prev, ok)
	}
	if prev, ok := cas(base, 0, 7); ok || prev != 99 {
		t.Fatalf("cas(0->7) on 99 = %d, %v", prev, ok)
	}

	// FAA returns the old value and adds.
	f := appendU64(nil, base)
	f = appendU64(f, 1)
	p = payloadReader{b: rc.req(opFAA, f)}
	if old := p.u64(); old != 99 || p.err != nil {
		t.Fatalf("faa old = %d (err %v), want 99", old, p.err)
	}

	// CAS16 against on-chip device memory (top address bit).
	onChip := uint64(1) << 63
	c16 := appendU64(nil, onChip+2)
	c16 = append(c16, 0, 0)       // old u16
	c16 = append(c16, 0x34, 0x12) // new u16
	p = payloadReader{b: rc.req(opCAS16, c16)}
	prev16, swapped := p.u16(), p.u8()
	if p.err != nil || prev16 != 0 || swapped == 0 {
		t.Fatalf("cas16 = prev %#x swapped %d (err %v)", prev16, swapped, p.err)
	}

	// Stats reports the inbound op totals with a per-chunk breakdown. By
	// here the single grown chunk has absorbed: 1 write, 1 read, 2 batched
	// reads, 2 CAS, 1 FAA = 7 chunk ops; plus 1 on-chip CAS16 and the Grow
	// RPC in the total. Stats itself is control traffic and not counted.
	p = payloadReader{b: rc.req(opStats, nil)}
	total := p.u64()
	nchunks := p.u32()
	chunk0 := p.u64()
	if p.err != nil {
		t.Fatalf("stats: %v", p.err)
	}
	if nchunks != 1 || chunk0 != 7 || total != 9 {
		t.Fatalf("stats = total %d, %d chunks, chunk0 %d; want 9, 1, 7", total, nchunks, chunk0)
	}

	// A read beyond grown memory is an error frame that still echoes the
	// tag, and the connection stays usable afterwards.
	bad := appendU64(nil, uint64(1)<<40)
	bad = appendU32(bad, 8)
	if err := writeFrame(rc.c, 7777, opRead, bad); err != nil {
		t.Fatal(err)
	}
	tag, status, msg, err := readFrame(rc.r)
	if err != nil {
		t.Fatal(err)
	}
	if tag != 7777 || status != statusErr || len(msg) == 0 {
		t.Fatalf("out-of-range read: tag %d, status %d, msg %q", tag, status, msg)
	}
	rc.req(opPing, nil) // still alive
}

// TestServerOutOfOrderCompletion pins the server's out-of-order delivery:
// two requests posted back to back on one connection may complete in either
// order, and the tags — not the arrival order — say which response is
// which. A slow (big) read is posted first and a tiny read second; both
// responses must carry the right payload for their tag regardless of order.
func TestServerOutOfOrderCompletion(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	rc := dialRaw(t, srv.Addr())
	p := payloadReader{b: rc.req(opGrow, nil)}
	base := p.u64()

	pattern := bytes.Repeat([]byte{0xA5}, 4096)
	w := appendU32(nil, 1)
	w = appendU64(w, base)
	w = appendU32(w, uint32(len(pattern)))
	w = append(w, pattern...)
	rc.req(opWriteBatch, w)

	// Post both reads without reading a single response byte.
	big := appendU32(appendU64(nil, base), 4096)
	small := appendU32(appendU64(nil, base), 1)
	if err := writeFrame(rc.c, 100, opRead, big); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(rc.c, 200, opRead, small); err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]int{}
	for i := 0; i < 2; i++ {
		tag, status, resp, err := readFrame(rc.r)
		if err != nil || status != statusOK {
			t.Fatalf("response %d: status %d err %v", i, status, err)
		}
		switch tag {
		case 100:
			if len(resp) != 4096 || !bytes.Equal(resp, pattern) {
				t.Fatalf("tag 100: wrong payload (%d bytes)", len(resp))
			}
		case 200:
			if len(resp) != 1 || resp[0] != 0xA5 {
				t.Fatalf("tag 200: payload %v", resp)
			}
		default:
			t.Fatalf("unknown response tag %d", tag)
		}
		seen[tag]++
	}
	if seen[100] != 1 || seen[200] != 1 {
		t.Fatalf("responses per tag = %v, want one each", seen)
	}
}
