package sherman

import (
	"errors"
	"fmt"

	"sherman/internal/core"
	"sherman/internal/hocl"
	"sherman/internal/layout"
	"sherman/internal/sim"
)

// Engine selects which index design a tree runs.
type Engine int

// Engines.
const (
	// EngineSherman is the full system: two-level versions, command
	// combination, hierarchical on-chip locks.
	EngineSherman Engine = iota
	// EngineFGPlus is the strengthened FG baseline of §5.1.2: sorted
	// checksum-protected nodes, host-memory spin locks, no combining.
	EngineFGPlus
)

// String names the engine.
func (e Engine) String() string {
	if e == EngineFGPlus {
		return "FG+"
	}
	return "Sherman"
}

// TreeOptions configures one tree.
type TreeOptions struct {
	// Engine picks the overall design; Advanced (if non-nil) overrides
	// individual techniques for ablation studies.
	Engine Engine

	// KeySize is the on-wire key size in bytes (>= 8; the logical key is a
	// uint64, larger sizes model wider keys as the paper's §5.6.1 sweep
	// does). 0 means 8.
	KeySize int

	// NodeSize is the tree-node size in bytes (the paper uses 1 KB). 0
	// means 1024.
	NodeSize int

	// CacheBytes bounds each compute server's budgeted index-cache region
	// (§4.2.3; the paper gives each CS 500 MB). 0 means 64 MB. The top two
	// tree levels are always cached outside this budget.
	CacheBytes int64

	// CacheLevels is the budgeted caching depth: tree levels 1..CacheLevels
	// (level 1 = the parents of leaves) are cacheable below the
	// always-cached top. 0 means the default (2); 1 reproduces the paper's
	// flat level-1-only cache; negative disables the budgeted region
	// entirely (top levels only).
	CacheLevels int

	// LocksPerMS sizes each global lock table (§4.3; the paper packs
	// 131,072 16-bit locks into 256 KB of NIC memory). 0 means 16384.
	LocksPerMS int

	// BulkFill is the leaf fill factor used by Bulkload (the paper loads
	// trees 80% full). 0 means 0.8.
	BulkFill float64

	// Poison fills recycled hot-path scratch (per-session arenas, pooled
	// write-op slices, lock-wait structs) with 0xDB on release, so any
	// use-after-release of a recycled buffer corrupts data deterministically
	// instead of silently reading stale bytes. A debugging/CI mode: the
	// differential oracle runs once under it (with -race) to prove the
	// zero-allocation recycling never aliases live data.
	Poison bool

	// Advanced enables per-technique control for ablations; nil uses the
	// Engine's standard configuration.
	Advanced *AdvancedOptions
}

// AdvancedOptions toggles Sherman's individual techniques, mirroring the
// ablation axes of Figures 10, 11 and 16.
type AdvancedOptions struct {
	// TwoLevelVersions selects the unsorted-leaf entry+node version layout
	// (§4.4); false selects FG's sorted checksum layout.
	TwoLevelVersions bool
	// CombineCommands posts dependent writes as one doorbell batch (§4.5).
	CombineCommands bool
	// OnChipLocks stores global lock tables in NIC on-chip memory (§4.3).
	OnChipLocks bool
	// LocalLockTables coordinates conflicting acquisitions within a CS.
	LocalLockTables bool
	// WaitQueues adds FIFO fairness to local lock tables; requires
	// LocalLockTables.
	WaitQueues bool
	// Handover passes the global lock to the next local waiter directly;
	// requires WaitQueues.
	Handover bool
}

// DefaultTreeOptions returns the paper's default Sherman configuration.
func DefaultTreeOptions() TreeOptions { return TreeOptions{Engine: EngineSherman} }

// FGPlusTreeOptions returns the FG+ baseline configuration.
func FGPlusTreeOptions() TreeOptions { return TreeOptions{Engine: EngineFGPlus} }

func (o TreeOptions) toCore() (core.Config, error) {
	keySize := o.KeySize
	if keySize == 0 {
		keySize = 8
	}
	if keySize < 8 {
		return core.Config{}, fmt.Errorf("sherman: KeySize %d below the 8-byte minimum", keySize)
	}
	nodeSize := o.NodeSize
	if nodeSize == 0 {
		nodeSize = 1024
	}

	var cfg core.Config
	switch {
	case o.Advanced != nil:
		a := o.Advanced
		mode := layout.Checksum
		if a.TwoLevelVersions {
			mode = layout.TwoLevel
		}
		cfg.Format = layout.NewFormat(mode, keySize, nodeSize)
		cfg.Combine = a.CombineCommands
		cfg.Locks = hocl.Mode{
			OnChip:    a.OnChipLocks,
			Local:     a.LocalLockTables,
			WaitQueue: a.WaitQueues,
			Handover:  a.Handover,
		}
		if a.WaitQueues && !a.LocalLockTables {
			return core.Config{}, errors.New("sherman: WaitQueues requires LocalLockTables")
		}
		if a.Handover && !a.WaitQueues {
			return core.Config{}, errors.New("sherman: Handover requires WaitQueues")
		}
	case o.Engine == EngineFGPlus:
		cfg = core.FGPlusConfig()
		cfg.Format = layout.NewFormat(layout.Checksum, keySize, nodeSize)
	default:
		cfg = core.ShermanConfig()
		cfg.Format = layout.NewFormat(layout.TwoLevel, keySize, nodeSize)
	}
	cfg.CacheBytes = o.CacheBytes
	cfg.CacheLevels = o.CacheLevels
	cfg.LocksPerMS = o.LocksPerMS
	cfg.BulkFill = o.BulkFill
	cfg.Poison = o.Poison
	if cfg.BulkFill < 0 || cfg.BulkFill > 1 {
		return core.Config{}, fmt.Errorf("sherman: BulkFill %v outside [0,1]", cfg.BulkFill)
	}
	return cfg, nil
}

// Tree is one distributed B+Tree living in a cluster's disaggregated
// memory. Tree methods are setup-time only; concurrent index operations go
// through Sessions.
type Tree struct {
	c  *Cluster
	tr *core.Tree
}

// CreateTree creates an empty tree in the cluster.
func (c *Cluster) CreateTree(opts TreeOptions) (*Tree, error) {
	cfg, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	t := &Tree{c: c, tr: core.New(c.be, cfg)}
	c.treeMu.Lock()
	c.trees = append(c.trees, t)
	c.treeMu.Unlock()
	return t, nil
}

// KV is one key-value pair. Key 0 is reserved as the tree's empty sentinel
// (the paper deletes by setting an entry's key to null).
type KV = layout.KV

// Bulkload replaces the tree's contents with the given pairs, which must be
// sorted by strictly increasing key, none zero. Leaves are packed to the
// configured fill factor and spread across memory servers. Call before
// opening Sessions; it is not concurrent-safe with live operations.
func (t *Tree) Bulkload(kvs []KV) error {
	for i := range kvs {
		if kvs[i].Key == 0 {
			return errors.New("sherman: key 0 is reserved")
		}
		if i > 0 && kvs[i].Key <= kvs[i-1].Key {
			return fmt.Errorf("sherman: bulkload keys not strictly increasing at index %d", i)
		}
	}
	t.tr.Bulkload(kvs)
	return nil
}

// Validate walks the whole tree checking structural invariants (fence
// nesting, sorted separators, sibling linkage, level consistency). Intended
// for tests and debugging; not concurrent-safe with writers.
func (t *Tree) Validate() error { return t.tr.Validate() }

// Stats walks the tree and reports structural statistics (height, node
// counts, fill factors, footprint). Not concurrent-safe with writers.
func (t *Tree) Stats() TreeStats {
	s := t.tr.Stats()
	return TreeStats{
		Height:        s.Height,
		InternalNodes: s.InternalNodes,
		LeafNodes:     s.LeafNodes,
		Entries:       s.Entries,
		LeafFill:      s.LeafFill,
		MinLeafFill:   s.MinLeafFill,
		BytesUsed:     s.BytesUsed,
	}
}

// TreeStats is a structural snapshot of a tree.
type TreeStats struct {
	// Height is the number of levels (a lone leaf is height 1).
	Height int
	// InternalNodes and LeafNodes count reachable nodes.
	InternalNodes, LeafNodes int
	// Entries is the number of live key-value pairs.
	Entries int
	// LeafFill is the mean leaf occupancy in [0,1]; MinLeafFill is the
	// emptiest leaf's occupancy — low values signal delete fragmentation.
	LeafFill, MinLeafFill float64
	// BytesUsed is the footprint of reachable nodes.
	BytesUsed int64
}

// Compact rebuilds the tree at the bulkload fill factor, reclaiming
// fragmentation left by deletes. It is an offline maintenance operation:
// quiesce all sessions first (sessions opened before Compact must not be
// used afterwards). Old nodes are freed via the §4.2.4 free bit. Structural
// merging is deliberately not done on the hot path — matching the paper —
// so Compact is the offline counterpart that restores packing.
func (t *Tree) Compact() CompactStats {
	r := t.tr.Compact()
	return CompactStats{
		EntriesKept:    r.EntriesKept,
		NodesBefore:    r.NodesBefore,
		NodesAfter:     r.NodesAfter,
		BytesReclaimed: r.BytesReclaimed,
	}
}

// CompactStats reports the effect of a Compact call.
type CompactStats struct {
	EntriesKept             int
	NodesBefore, NodesAfter int
	BytesReclaimed          int64
}

// LockStats reports aggregate HOCL activity.
func (t *Tree) LockStats() LockStats {
	s := t.tr.LockStats()
	return LockStats{
		Acquisitions:  s.Acquisitions.Load(),
		Handovers:     s.Handovers.Load(),
		GlobalRetries: s.GlobalRetries.Load(),
		LocalWaits:    s.LocalWaits.Load(),
		LeaseExpiries: s.LeaseExpiries.Load(),
		Reclaims:      s.Reclaims.Load(),
	}
}

// LockStats summarizes lock-manager activity (§4.3): Handovers are
// acquisitions that skipped the remote CAS entirely; GlobalRetries are
// failed remote CAS attempts (the retry traffic HOCL exists to suppress);
// LocalWaits are acquisitions that queued behind another thread of the same
// compute server. LeaseExpiries counts locks orphaned by compute-server
// crashes; Reclaims counts the expired-lease reclamations survivors
// performed to free them.
type LockStats struct {
	Acquisitions  int64
	Handovers     int64
	GlobalRetries int64
	LocalWaits    int64
	LeaseExpiries int64
	Reclaims      int64
}

// Recover completes crash recovery from compute server cs: it sweeps the
// tree for splits that crashed clients left half-done (committed node
// write-backs whose parent separator — or new root — was never installed)
// and re-inserts them through the ordinary locked write path. Orphaned
// locks need no sweep; they are reclaimed on demand once the dead holder's
// lease expires. Call after KillComputeServer (from any surviving server)
// to restore the tree to a Validate-clean state; running it when nothing
// crashed is safe and repairs nothing.
func (t *Tree) Recover(cs int) (rs RecoveryStats, err error) {
	if cs < 0 || cs >= t.c.ComputeServers() {
		return RecoveryStats{}, fmt.Errorf("%w: %d not in [0,%d)", ErrBadComputeServer, cs, t.c.ComputeServers())
	}
	if !t.c.ComputeServerAlive(cs) {
		return RecoveryStats{}, fmt.Errorf("%w: recovery must run on a live compute server", ErrSessionDead)
	}
	defer func() {
		// The recovering server can itself crash mid-sweep.
		if r := recover(); r != nil {
			if _, ok := sim.IsCrash(r); ok {
				err = ErrSessionDead
				return
			}
			panic(r)
		}
	}()
	h := t.tr.NewHandle(cs, int(sessionSeq.Add(1)))
	// Anchor the fresh handle's clock at the cluster's latest verb time:
	// otherwise the sweep's first contended acquisition would spend virtual
	// time catching up through all prior activity and the reported latency
	// would measure the cluster's age, not the recovery.
	t.c.anchorClock(h)
	t0 := h.C.Now()
	repairs, complete := h.RecoverStructure()
	rs = RecoveryStats{SplitRepairs: repairs, VirtualNS: h.C.Now() - t0}
	if !complete {
		return rs, fmt.Errorf("sherman: recovery pass budget exhausted with repairs pending (%d done); run Recover again", repairs)
	}
	// The forwarding map is cluster-wide: a dead migrator's entries may be
	// the only thing keeping *any* tree's stale parent pointers resolvable,
	// so every tree must be swept clean before the entries can drain.
	t.c.treeMu.Lock()
	trees := append([]*Tree(nil), t.c.trees...)
	t.c.treeMu.Unlock()
	for _, other := range trees {
		if other == t {
			continue
		}
		oh := other.tr.NewHandle(cs, int(sessionSeq.Add(1)))
		oh.SetClock(h.C.Now())
		n, ok := oh.RecoverStructure()
		rs.SplitRepairs += n
		if !ok {
			return rs, fmt.Errorf("sherman: recovery pass budget exhausted on a sibling tree (%d repairs done); run Recover again", rs.SplitRepairs)
		}
	}
	rs.ForwardingDrained = t.tr.DrainDeadForwarding()
	return rs, nil
}

// RecoveryStats reports one Tree.Recover run: the number of half-done
// splits completed (which includes parent/root pointers repaired at
// migrated addresses), the forwarding entries of crashed migrations
// drained after the sweep, and the virtual time the sweep took — the
// recovery latency a real deployment would observe.
type RecoveryStats struct {
	SplitRepairs      int
	ForwardingDrained int
	VirtualNS         int64
}

// CacheStats reports compute server cs's index-cache effectiveness.
func (t *Tree) CacheStats(cs int) CacheStats {
	ic := t.tr.Cache(cs)
	return CacheStats{
		Entries:          ic.Len(),
		PinnedEntries:    ic.PinnedLen(),
		Capacity:         ic.Limit(),
		Levels:           ic.Levels(),
		Hits:             ic.Hits(),
		Misses:           ic.Misses(),
		Evictions:        ic.Evictions(),
		Invalidations:    ic.Invalidations(),
		AdmissionRejects: ic.AdmissionRejects(),
	}
}

// CacheStats summarizes one compute server's unified index cache (§4.2.3):
// the budgeted entries and their capacity, the pinned top-level entries
// riding outside the budget, hit/miss aggregates, budget-pressure
// evictions, staleness invalidations (failed speculative validations,
// migrated chunks, reclaimed-lock repairs), and inserts the frequency gate
// turned away under level pressure.
type CacheStats struct {
	Entries          int
	PinnedEntries    int
	Capacity         int
	Levels           int
	Hits             int64
	Misses           int64
	Evictions        int64
	Invalidations    int64
	AdmissionRejects int64
}
