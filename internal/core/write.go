package core

import (
	"sort"

	"sherman/internal/cache"
	"sherman/internal/cluster"
	"sherman/internal/hocl"
	"sherman/internal/layout"
	"sherman/internal/rdma"
	"sherman/internal/stats"
)

// Insert stores (key, value), updating in place when key exists (the paper
// folds updates into insert, §1). Key 0 is reserved.
func (h *Handle) Insert(key, value uint64) {
	if key == 0 {
		panic("core: key 0 is reserved")
	}
	h.m.BeginOp()
	t0 := h.C.Now()
	dataBytes := h.insertInner(key, value)
	for h.takeRedo() {
		// A failover swallowed the commit (see mirror): retry through the
		// promoted chunk; the insert is an idempotent upsert.
		dataBytes = h.insertInner(key, value)
	}
	h.Rec.RecordOp(stats.OpInsert, h.C.Now()-t0)
	h.Rec.WriteRoundTrips.Record(int(h.m.OpRoundTrips))
	h.Rec.WriteSizes.Record(dataBytes)
}

// Delete removes key, reporting whether it was present. Non-structural
// deletes clear the entry in place (§4.4); underfull leaves are tolerated
// rather than merged (see DESIGN.md §5).
func (h *Handle) Delete(key uint64) bool {
	if key == 0 {
		panic("core: key 0 is reserved")
	}
	h.m.BeginOp()
	t0 := h.C.Now()
	found, dataBytes := h.deleteInner(key)
	for h.takeRedo() {
		// A failover swallowed the commit: nothing durable changed, so the
		// retry sees the key again (keeping found truthful) and re-deletes.
		f, db := h.deleteInner(key)
		found, dataBytes = found || f, db
	}
	h.Rec.RecordOp(stats.OpDelete, h.C.Now()-t0)
	h.Rec.WriteRoundTrips.Record(int(h.m.OpRoundTrips))
	if found {
		h.Rec.WriteSizes.Record(dataBytes)
	}
	return found
}

// unlockWrite releases g, flushing pending dependent writes per the tree's
// command-combination setting. nil pending releases through the dedicated
// release scratch, so even a bare unlock (failed probes, move-rights) posts
// its GLT-clear WRITE without allocating.
func (h *Handle) unlockWrite(g hocl.Guard, pending []rdma.WriteOp) {
	if pending == nil {
		pending = h.relWops[:0]
	}
	// Mirror the pending write-backs to their chunks' replicas before the
	// primary commit below: once Unlock returns (and the op can ack), every
	// replica already carries the write, so a memory-server death at any
	// later verb boundary loses nothing acked.
	h.mirror(pending)
	h.t.locks.Unlock(h.C, g, pending, h.t.cfg.Combine)
	h.noteMirrorLag()
}

// unlockWith releases g after posting exactly the given write-backs, built in
// the handle's write-op scratch — the steady-state (non-split) write path,
// allocation-free.
func (h *Handle) unlockWith(g hocl.Guard, ops ...rdma.WriteOp) {
	w := append(h.takeWops(), ops...)
	h.unlockWrite(g, w)
	h.keepWops(w)
}

func (h *Handle) insertInner(key, value uint64) (dataBytes int64) {
	h.arena.reset()
	addr, g, leaf := h.lockLeafForWrite(key)
	f := h.t.cfg.Format
	h.C.Step(h.tm.LocalStepNS)
	if f.Mode == layout.TwoLevel {
		i, found := leaf.Find(key)
		if !found {
			i = leaf.FindFree()
		}
		if found || i >= 0 {
			// Entry-level modification: bump FEV/REV and write back only the
			// entry (Figure 7 lines 11-17) — the write-amplification fix.
			leaf.SetEntry(i, key, value)
			off, sz := leaf.EntrySpan(i)
			h.unlockWith(g, rdma.WriteOp{Addr: addr.Add(uint64(off)), Data: leaf.B[off : off+sz]})
			return int64(sz)
		}
		return h.splitLeaf(addr, g, leaf, key, value, nil)
	}
	if leaf.InsertSorted(key, value) {
		leaf.UpdateChecksum()
		h.unlockWith(g, rdma.WriteOp{Addr: addr, Data: leaf.B})
		return int64(f.NodeSize)
	}
	return h.splitLeaf(addr, g, leaf, key, value, nil)
}

func (h *Handle) deleteInner(key uint64) (bool, int64) {
	h.arena.reset()
	addr, g, leaf := h.lockLeafForWrite(key)
	f := h.t.cfg.Format
	h.C.Step(h.tm.LocalStepNS)
	if f.Mode == layout.TwoLevel {
		i, found := leaf.Find(key)
		if !found {
			h.unlockWrite(g, nil)
			return false, 0
		}
		leaf.ClearEntry(i)
		off, sz := leaf.EntrySpan(i)
		h.unlockWith(g, rdma.WriteOp{Addr: addr.Add(uint64(off)), Data: leaf.B[off : off+sz]})
		return true, int64(sz)
	}
	if !leaf.DeleteSorted(key) {
		h.unlockWrite(g, nil)
		return false, 0
	}
	leaf.UpdateChecksum()
	h.unlockWith(g, rdma.WriteOp{Addr: addr, Data: leaf.B})
	return true, int64(f.NodeSize)
}

// splitLeaf splits the locked full leaf, inserting (key, value) into the
// proper half, and propagates the separator to the parent (Figure 7 lines
// 18-39). It returns the data bytes written back. carry holds writes a
// batch executor accumulated under g before the split filled the leaf; they
// target g's memory server and are posted ahead of the split's write-backs
// in the same doorbell batch.
func (h *Handle) splitLeaf(addr rdma.Addr, g hocl.Guard, leaf layout.Leaf, key, value uint64, carry []rdma.WriteOp) int64 {
	f := h.t.cfg.Format
	kvs := leaf.AppendEntries(h.kvs[:0]) // sorts the unsorted leaf (Figure 7 line 21)
	i := sort.Search(len(kvs), func(i int) bool { return kvs[i].Key >= key })
	kvs = append(kvs, layout.KV{})
	copy(kvs[i+1:], kvs[i:])
	kvs[i] = layout.KV{Key: key, Value: value}
	h.kvs = kvs[:0] // retain any growth; consumed fully before the next use

	mid := len(kvs) / 2
	sep := kvs[mid].Key

	sibAddr := h.alloc.Alloc(f.NodeSize)
	sib := layout.NewLeafIn(f, h.arena.bytes(f.NodeSize), sep, leaf.UpperFence())
	sib.SetSibling(leaf.Sibling())
	sib.SetEntries(kvs[mid:])

	leaf.SetEntries(kvs[:mid])
	leaf.SetUpperFence(sep)
	leaf.SetSibling(sibAddr)
	if f.Mode == layout.TwoLevel {
		leaf.BumpNodeVersions() // node-level modification (Figure 7 lines 26-28)
	} else {
		sib.UpdateChecksum()
		leaf.UpdateChecksum()
	}

	dataBytes := int64(2 * f.NodeSize)
	if carry == nil {
		carry = h.takeWops()
	}
	// Sibling write-back, node write-back and lock release combine when the
	// new sibling landed on the same MS (Figure 7 lines 29-35).
	if sibAddr.MS() == addr.MS() {
		carry = append(carry,
			rdma.WriteOp{Addr: sibAddr, Data: sib.B},
			rdma.WriteOp{Addr: addr, Data: leaf.B},
		)
	} else {
		h.writeMirrored(sibAddr, sib.B)
		if h.redo {
			// The sibling's chunk lost its server before the copy became
			// durable: abandon the split with a bare release (nothing has
			// committed) and leave the flag for the op-level retry.
			h.unlockWrite(g, nil)
			h.keepWops(carry)
			return 0
		}
		carry = append(carry, rdma.WriteOp{Addr: addr, Data: leaf.B})
	}
	h.unlockWrite(g, carry)
	h.keepWops(carry)
	if h.redo {
		// The leaf's chunk was re-keyed mid-split: the whole doorbell
		// (earlier queued writes included) vanished, so no separator must be
		// installed; the op-level retry redoes the split at the promoted leaf.
		return 0
	}
	h.insertParent(sep, sibAddr, 1)
	return dataBytes
}

// insertParent inserts (sepKey -> child) into the internal node at the given
// level, creating a new root when the tree grows (insert_internal of
// Figure 7 line 39).
func (h *Handle) insertParent(sepKey uint64, child rdma.Addr, level uint8) {
	f := h.t.cfg.Format
	for {
		root, rootLvl := h.cache.Root()
		if root.IsNil() {
			root, rootLvl = h.refreshRoot()
		}
		if rootLvl < level {
			// The split node was the root: grow the tree.
			newRootAddr := h.alloc.Alloc(f.NodeSize)
			nr := layout.NewInternalIn(f, h.arena.bytes(f.NodeSize), level, 0, layout.NoUpperBound)
			nr.SetLeftmost(root)
			nr.Insert(sepKey, child)
			if f.Mode == layout.Checksum {
				nr.UpdateChecksum()
			}
			h.writeMirrored(newRootAddr, nr.B)
			if h.takeRedo() {
				// The new root's chunk died before the image became durable:
				// grow it again from a fresh chunk (the allocator abandons
				// chunks on dead servers).
				h.refreshRoot()
				continue
			}
			if cluster.CASRoot(h.C, root, newRootAddr, level) {
				h.cache.SetRoot(newRootAddr, level)
				return
			}
			// Lost the root race: deallocate (clear the free bit, §4.2.4)
			// and retry against the winner's root. A failover eating the
			// free-bit write only orphans an already-garbage node.
			h.writeMirrored(newRootAddr.Add(layout.AliveOffset), []byte{0})
			h.takeRedo()
			h.refreshRoot()
			continue
		}
		addr, ce := h.locateInternal(sepKey, level)
		if h.tryInsertAt(addr, ce, sepKey, child, level) {
			return
		}
		// Stale steering; retry from a fresh root.
	}
}

// tryInsertAt seeks the internal node at addr under lock coupling and
// inserts or splits. false means steering was stale and the caller should
// re-resolve the target from a fresh root.
func (h *Handle) tryInsertAt(addr rdma.Addr, ce *cache.Entry, sepKey uint64, child rdma.Addr, level uint8) bool {
	f := h.t.cfg.Format
	r, ok := h.seek(sepKey, level, intentWrite, addr, ce, h.nodeBuf, nil, nil)
	if !ok {
		return false
	}
	addr, g := r.addr, r.g
	in := layout.AsInternal(r.n)
	h.C.Step(h.tm.LocalStepNS)
	if in.Insert(sepKey, child) {
		if f.Mode == layout.TwoLevel {
			in.BumpNodeVersions()
		} else {
			in.UpdateChecksum()
		}
		h.unlockWith(g, rdma.WriteOp{Addr: addr, Data: in.B})
		if h.takeRedo() {
			// The parent's chunk was re-keyed mid-commit: nothing durable
			// changed; re-resolve and retry at the promoted parent.
			return false
		}
		// Refresh the cached copy with the post-insert image (replacement by
		// fence key is O(1)) so the split's parent update never leaves a
		// stale cached parent behind.
		h.cacheNode(addr, in.Node)
		return true
	}
	// Full: split the internal node and push the median up.
	rightAddr := h.alloc.Alloc(f.NodeSize)
	right := layout.NewInternalIn(f, h.arena.bytes(f.NodeSize), level, 0, layout.NoUpperBound)
	upSep := in.SplitInto(right, rightAddr)
	switch {
	case sepKey < upSep:
		in.Insert(sepKey, child)
	default:
		right.Insert(sepKey, child)
	}
	if f.Mode == layout.TwoLevel {
		in.BumpNodeVersions()
	} else {
		right.UpdateChecksum()
		in.UpdateChecksum()
	}
	if rightAddr.MS() == addr.MS() {
		h.unlockWith(g,
			rdma.WriteOp{Addr: rightAddr, Data: right.B},
			rdma.WriteOp{Addr: addr, Data: in.B},
		)
	} else {
		h.writeMirrored(rightAddr, right.B)
		if h.takeRedo() {
			// Right half's chunk died before the copy was durable: abandon
			// the split (nothing committed) and retry from fresh steering.
			h.unlockWrite(g, nil)
			return false
		}
		h.unlockWith(g, rdma.WriteOp{Addr: addr, Data: in.B})
	}
	if h.takeRedo() {
		// The split's commit vanished with its chunk: no durable change;
		// retry from fresh steering against the promoted node.
		return false
	}
	// Replace the split node's cached copy (its fence range shrank) and
	// admit the new right half, so traversals steered by the cache see the
	// post-split structure immediately.
	h.cacheNode(addr, in.Node)
	h.cacheNode(rightAddr, right.Node)
	h.insertParent(upSep, rightAddr, level+1)
	return true
}
