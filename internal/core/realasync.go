package core

import (
	"sync"
	"sync/atomic"

	"sherman/internal/stats"
	"sherman/internal/transport"
)

// This file is the real-clock half of the pipelined executor. On the
// simulator, Async overlaps round trips by virtual-time accounting: ops run
// sequentially and lanes only bookkeep when each would have completed. On a
// real transport there is no virtual time to account with — overlap must be
// physical — so an Async whose handle has no VirtualTimer (and depth > 1)
// attaches a realExec: every submitted op runs on a persistent runner
// goroutine against that runner's own worker Handle, keeping up to depth
// operations genuinely in flight per memory server through the transport's
// multiplexed connections.
//
// The observable contract is the sim executor's, enforced conservatively
// with real waits: before submitting an op on key k the owner drains the
// outstanding write to k, before a write it drains outstanding ops on k and
// the last scan, and a scan drains everything. Draining a conflict is
// strictly stronger than ordering after it, and conflicts are rare by
// design (a session hammering one key has no latency to hide); independent
// operations overlap freely, which is the whole point.
//
// The hot path is deliberately lean — the executor's own cost is client CPU
// that a 1-core host cannot overlap with anything. Runners are persistent
// (no goroutine spawn per op, no handle pool handoff), tickets and their
// completion channels recycle through an owner-side free list, and conflict
// detection is a scan of the ≤ depth outstanding tickets instead of a map.
// Completion is a one-token send on a buffered channel, received exactly
// once (immediately before harvest) by whichever owner-side path retires
// the ticket, so the channel is always drained by recycle time.

// realSeed staggers worker-handle allocators across all sessions.
var realSeed atomic.Int64

// ticket is one submitted operation in flight: its completion signal and
// the results the owner harvests.
type ticket struct {
	op   Op
	done chan struct{} // buffered cap 1; runner sends one token on completion

	// Filled by the runner, read by the owner after the token.
	res            OpResult
	crash          any
	startNS, endNS int64
	rtrips         int64
	dataBytes      int64
	depthAtIssue   int
	harvested      bool // owner-only: folded into the session's recorder
}

// realExec drives an Async's submissions with genuine concurrency. All
// fields except tasks/workers are owned by the session goroutine; runners
// touch only their own ticket and handle.
type realExec struct {
	a     *Async
	depth int
	cs    int

	// tasks feeds submitted tickets to the runners. Capacity depth: the
	// window reap bounds in-flight tickets to depth, so a send never blocks.
	tasks chan *ticket
	nrun  int // runners started; grown lazily up to depth

	mu      sync.Mutex
	workers []*Handle // runner handles, for stats folding

	out    []*ticket // outstanding tickets in issue order
	freeTk []*ticket // owner-side ticket pool; refilled by wait()

	// busyLo/busyHi accumulate the merged busy interval for the
	// latency-hiding ratio, as in the sim executor but on the wall clock.
	busyLo, busyHi int64
}

func newRealExec(a *Async, depth int) *realExec {
	return &realExec{
		a:     a,
		depth: depth,
		cs:    int(a.h.C.CSID()),
		tasks: make(chan *ticket, depth),
	}
}

// getTicket recycles a pooled ticket or allocates one. The done channel is
// reusable: its single token was received before the ticket was recycled.
func (re *realExec) getTicket(op Op) *ticket {
	var tk *ticket
	if n := len(re.freeTk); n > 0 {
		tk = re.freeTk[n-1]
		re.freeTk = re.freeTk[:n-1]
		done := tk.done
		*tk = ticket{op: op, done: done}
	} else {
		tk = &ticket{op: op, done: make(chan struct{}, 1)}
	}
	return tk
}

// submit issues op to the runners and returns its ticket. When the window
// is full it first retires the oldest outstanding op — the backpressure
// that bounds the session to depth in-flight operations — and before that
// it drains whatever outstanding tickets conflict with op.
func (re *realExec) submit(op Op) *ticket {
	switch op.Kind {
	case stats.OpLookup:
		// A read must observe the last write to its key: drain it.
		re.consumeConflicts(op.Key, true)
	case stats.OpInsert, stats.OpDelete:
		if op.Key == 0 {
			panic("core: key 0 is reserved")
		}
		// A write orders after everything on its key and after the last
		// scan: drain both.
		re.consumeConflicts(op.Key, false)
	case stats.OpRange:
		// A scan orders after everything outstanding.
		for len(re.out) > 0 {
			re.consume(re.out[0])
		}
	}
	if len(re.out) >= re.depth {
		re.consume(re.out[0])
	}
	tk := re.getTicket(op)
	tk.depthAtIssue = len(re.out) + 1
	re.out = append(re.out, tk)
	if re.nrun < re.depth && re.nrun < len(re.out) {
		re.nrun++
		go re.runner()
	}
	re.tasks <- tk
	return tk
}

// consumeConflicts drains the outstanding tickets that conflict with an op
// on key: for a lookup (readOnly) the outstanding writes to key, for a
// write every outstanding op on key plus the last scan. The scan is over at
// most depth tickets; consume removes the ticket from out, so the loop
// restarts its index after each hit.
func (re *realExec) consumeConflicts(key uint64, readOnly bool) {
	for i := 0; i < len(re.out); {
		tk := re.out[i]
		k := tk.op.Kind
		hit := false
		switch k {
		case stats.OpInsert, stats.OpDelete:
			hit = tk.op.Key == key
		case stats.OpLookup:
			hit = !readOnly && tk.op.Key == key
		case stats.OpRange:
			hit = !readOnly
		}
		if hit {
			re.consume(tk) // removes out[i]; re-check the same index
		} else {
			i++
		}
	}
}

// consume retires one outstanding ticket: receive its completion token,
// harvest it, re-panic a compute-server crash in the owner goroutine.
func (re *realExec) consume(tk *ticket) {
	<-tk.done
	re.harvest(tk)
	if tk.crash != nil {
		panic(tk.crash)
	}
}

// wait blocks until tk completes, harvests it, and returns its result. A
// compute-server crash re-panics here, in the owner goroutine, where the
// session layer's recovery converts it to ErrSessionDead. wait is the one
// place a ticket returns to the pool: nothing else can still hold it — it
// is out of the ordering state, off the runners, and the caller is the
// future that owned it.
func (re *realExec) wait(tk *ticket) (OpResult, int64) {
	if !tk.harvested {
		re.consume(tk)
	} else if tk.crash != nil {
		panic(tk.crash)
	}
	res, end := tk.res, tk.endNS
	re.freeTk = append(re.freeTk, tk)
	return res, end
}

// flush drains every outstanding ticket. The first crash observed re-panics
// after the drain, so the pool is quiescent when the session goes dead.
func (re *realExec) flush() {
	var crash any
	for len(re.out) > 0 {
		tk := re.out[0]
		<-tk.done
		re.harvest(tk)
		if tk.crash != nil && crash == nil {
			crash = tk.crash
		}
	}
	if crash != nil {
		panic(crash)
	}
}

// harvest folds a completed ticket into the session's recorder and drops it
// from the outstanding window. Owner-only; called exactly once per ticket,
// immediately after its completion token is received. The ticket is NOT
// recycled here — a Future may still hold it (wait recycles).
func (re *realExec) harvest(tk *ticket) {
	tk.harvested = true
	for i, o := range re.out {
		if o == tk {
			re.out = append(re.out[:i], re.out[i+1:]...)
			break
		}
	}
	if tk.crash != nil {
		return // a crashed op records nothing; the session is about to die
	}
	rec := re.a.h.Rec
	lat := tk.endNS - tk.startNS
	switch tk.op.Kind {
	case stats.OpLookup:
		rec.RecordOp(stats.OpLookup, lat)
	case stats.OpInsert:
		rec.RecordOp(stats.OpInsert, lat)
		rec.WriteRoundTrips.Record(int(tk.rtrips))
		rec.WriteSizes.Record(tk.dataBytes)
	case stats.OpDelete:
		rec.RecordOp(stats.OpDelete, lat)
		rec.WriteRoundTrips.Record(int(tk.rtrips))
		if tk.res.Found {
			rec.WriteSizes.Record(tk.dataBytes)
		}
	case stats.OpRange:
		rec.RecordOp(stats.OpRange, lat)
	}
	re.recordPipeline(tk)
}

// recordPipeline is the sim executor's merged-interval busy union on the
// wall clock (tickets harvest in issue order, so intervals arrive mostly
// ordered and the single merged window stays a good union estimate).
func (re *realExec) recordPipeline(tk *ticket) {
	start, done := tk.startNS, tk.endNS
	var busy int64
	switch {
	case start > re.busyHi || re.busyHi == 0:
		busy = done - start
		re.busyLo, re.busyHi = start, done
	default:
		if start < re.busyLo {
			busy += re.busyLo - start
			re.busyLo = start
		}
		if done > re.busyHi {
			busy += done - re.busyHi
			re.busyHi = done
		}
	}
	re.a.h.Rec.RecordPipelineOp(tk.depthAtIssue, done-start, busy)
}

// runner is one persistent worker goroutine with its own transport handle.
// Runners are spawned lazily up to depth as the window fills, so a chain of
// dependent ops never pays for transports it cannot use. Deadlock-free by
// construction: every submitted ticket is conflict-free (the owner drained
// its conflicts first), runners never wait on other tickets, and in-flight
// tickets never exceed started runners.
func (re *realExec) runner() {
	h := re.a.h.t.NewHandle(re.cs, int(realSeed.Add(1)))
	re.mu.Lock()
	re.workers = append(re.workers, h)
	re.mu.Unlock()
	for tk := range re.tasks {
		re.runTicket(h, tk)
	}
}

// runTicket executes one ticket on h: run the op with the synchronous
// path's accounting, publish the completion token. A compute-server crash
// is captured into the ticket (the owner re-panics it); any other panic is
// a protocol bug and propagates.
func (re *realExec) runTicket(h *Handle, tk *ticket) {
	tk.startNS = h.C.Now()
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := transport.IsCrash(r); ok {
					tk.crash = r
					return
				}
				panic(r)
			}
		}()
		h.m.BeginOp()
		switch tk.op.Kind {
		case stats.OpLookup:
			v, found := h.lookupInner(tk.op.Key)
			tk.res = OpResult{Value: v, Found: found}
		case stats.OpInsert:
			tk.dataBytes = h.insertInner(tk.op.Key, tk.op.Value)
		case stats.OpDelete:
			found, dataBytes := h.deleteInner(tk.op.Key)
			tk.res = OpResult{Found: found}
			tk.dataBytes = dataBytes
		case stats.OpRange:
			if tk.op.Span > 0 {
				tk.res = OpResult{KVs: h.rangeInner(tk.op.Key, tk.op.Span)}
			}
		}
		tk.rtrips = h.m.OpRoundTrips
	}()
	tk.endNS = h.C.Now()
	tk.done <- struct{}{}
}
