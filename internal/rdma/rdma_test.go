package rdma

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"sherman/internal/sim"
)

func testFabric(numMS, numCS int) *Fabric {
	return NewFabric(sim.DefaultParams(), numMS, numCS)
}

func TestAddrEncoding(t *testing.T) {
	a := MakeAddr(7, 0x123456789a)
	if a.MS() != 7 || a.Off() != 0x123456789a || a.OnChip() || a.IsNil() {
		t.Fatalf("addr round trip failed: %v", a)
	}
	oc := MakeOnChipAddr(3, 64)
	if !oc.OnChip() || oc.MS() != 3 || oc.Off() != 64 {
		t.Fatalf("on-chip addr round trip failed: %v", oc)
	}
	if !NilAddr.IsNil() {
		t.Fatal("NilAddr not nil")
	}
	if a.Add(16).Off() != a.Off()+16 {
		t.Fatal("Add failed")
	}
}

func TestAddrEncodingProperty(t *testing.T) {
	fn := func(ms uint16, off uint64) bool {
		ms &= 0x7fff
		off &= (uint64(1) << 48) - 1
		a := MakeAddr(ms, off)
		return a.MS() == ms && a.Off() == off && !a.OnChip()
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrPanics(t *testing.T) {
	assertPanics(t, func() { MakeAddr(0, 1<<48) })
	assertPanics(t, func() { MakeAddr(1<<15, 0) })
	assertPanics(t, func() { NilAddr.Add(1) })
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestReadWriteRoundTrip(t *testing.T) {
	f := testFabric(2, 1)
	base := f.Servers()[1].Grow()
	c := f.NewClient(0)
	data := []byte("hello disaggregated memory")
	addr := MakeAddr(1, base+128)
	c.Write(addr, data)
	got := make([]byte, len(data))
	c.Read(addr, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q", got)
	}
	if c.M.RoundTrips != 2 {
		t.Fatalf("round trips = %d, want 2", c.M.RoundTrips)
	}
}

func TestPostWritesInOrderSingleTrip(t *testing.T) {
	f := testFabric(1, 1)
	base := f.Servers()[0].Grow()
	c := f.NewClient(0)
	c.M.BeginOp()
	c.PostWrites(
		WriteOp{Addr: MakeAddr(0, base), Data: []byte{1, 2, 3}},
		WriteOp{Addr: MakeAddr(0, base+64), Data: []byte{4, 5}},
		WriteOp{Addr: MakeAddr(0, base+128), Data: []byte{6}},
	)
	if c.M.OpRoundTrips != 1 {
		t.Fatalf("combined post cost %d round trips, want 1", c.M.OpRoundTrips)
	}
	if c.M.Writes != 3 {
		t.Fatalf("writes = %d", c.M.Writes)
	}
	buf := make([]byte, 1)
	c.Read(MakeAddr(0, base+128), buf)
	if buf[0] != 6 {
		t.Fatal("combined write not applied")
	}
}

func TestPostWritesRejectsCrossServer(t *testing.T) {
	f := testFabric(2, 1)
	f.Servers()[0].Grow()
	f.Servers()[1].Grow()
	c := f.NewClient(0)
	assertPanics(t, func() {
		c.PostWrites(
			WriteOp{Addr: MakeAddr(0, 0), Data: []byte{1}},
			WriteOp{Addr: MakeAddr(1, 0), Data: []byte{2}},
		)
	})
}

func TestCAS(t *testing.T) {
	f := testFabric(1, 2)
	base := f.Servers()[0].Grow()
	c := f.NewClient(0)
	a := MakeAddr(0, base)
	if _, ok := c.CAS(a, 0, 42); !ok {
		t.Fatal("CAS from zero failed")
	}
	prev, ok := c.CAS(a, 0, 99)
	if ok || prev != 42 {
		t.Fatalf("CAS should fail with prev=42, got %d,%v", prev, ok)
	}
	if c.M.CASFailures != 1 {
		t.Fatalf("failures = %d", c.M.CASFailures)
	}
	if _, ok := c.CAS(a, 42, 7); !ok {
		t.Fatal("CAS with correct expected failed")
	}
}

func TestCAS16MaskedSemantics(t *testing.T) {
	f := testFabric(1, 1)
	base := f.Servers()[0].Grow()
	c := f.NewClient(0)
	word := MakeAddr(0, base)
	// Set the full word, then CAS only the middle 16-bit lane.
	c.Write(word, []byte{0x11, 0x11, 0x22, 0x22, 0x33, 0x33, 0x44, 0x44})
	lane := MakeAddr(0, base+2)
	prev, ok := c.CAS16(lane, 0x2222, 0xbeef)
	if !ok || prev != 0x2222 {
		t.Fatalf("CAS16 = %#x,%v", prev, ok)
	}
	got := make([]byte, 8)
	c.Read(word, got)
	want := []byte{0x11, 0x11, 0xef, 0xbe, 0x33, 0x33, 0x44, 0x44}
	if !bytes.Equal(got, want) {
		t.Fatalf("word after CAS16 = %x, want %x", got, want)
	}
}

func TestFAA(t *testing.T) {
	f := testFabric(1, 1)
	base := f.Servers()[0].Grow()
	c := f.NewClient(0)
	a := MakeAddr(0, base+8)
	if prev := c.FAA(a, 5); prev != 0 {
		t.Fatalf("FAA prev = %d", prev)
	}
	if prev := c.FAA(a, 3); prev != 5 {
		t.Fatalf("FAA prev = %d", prev)
	}
}

func TestOnChipMemoryIsolated(t *testing.T) {
	f := testFabric(1, 1)
	base := f.Servers()[0].Grow()
	c := f.NewClient(0)
	host := MakeAddr(0, base)
	chip := MakeOnChipAddr(0, 0)
	c.Write(host, []byte{0xaa})
	c.Write(chip, []byte{0xbb})
	h := make([]byte, 1)
	ch := make([]byte, 1)
	c.Read(host, h)
	c.Read(chip, ch)
	if h[0] != 0xaa || ch[0] != 0xbb {
		t.Fatal("host and on-chip spaces interfere")
	}
}

func TestAtomicTimingOnChipVsHost(t *testing.T) {
	p := sim.DefaultParams()
	f := NewFabric(p, 2, 2)
	base := f.Servers()[0].Grow()
	f.Servers()[1].Grow()

	cHost := f.NewClient(0)
	cChip := f.NewClient(1)
	// Same bucket hammered: host atomics must be much slower than on-chip.
	hostA := MakeAddr(0, base)
	chipA := MakeOnChipAddr(1, 0)
	const n = 200
	for i := 0; i < n; i++ {
		cHost.CAS(hostA, 1, 1) // always fails; timing is what matters
		cChip.CAS16(chipA, 1, 1)
	}
	if cHost.Now() < cChip.Now()+(p.HostAtomicNS-p.OnChipAtomicNS)*n/2 {
		t.Fatalf("host atomics (%d) not sufficiently slower than on-chip (%d)",
			cHost.Now(), cChip.Now())
	}
}

func TestBandwidthBoundWrites(t *testing.T) {
	p := sim.DefaultParams()
	f := NewFabric(p, 1, 1)
	base := f.Servers()[0].Grow()
	c := f.NewClient(0)
	big := make([]byte, 4096)
	t0 := c.Now()
	c.Write(MakeAddr(0, base), big)
	perOp := c.Now() - t0
	// 4 KB at 0.08 ns/B = ~327 ns of service beyond the RTT.
	if perOp < p.RTTNS+int64(4096*p.NSPerByte) {
		t.Fatalf("large write too cheap: %d ns", perOp)
	}
}

func TestTornReadAt64ByteGranularity(t *testing.T) {
	f := testFabric(1, 2)
	base := f.Servers()[0].Grow()
	w := f.NewClient(0)
	r := f.NewClient(1)
	// Two 128-byte patterns; a reader racing a writer must only ever see
	// 64-byte-aligned mixtures of them, never intra-line shears.
	pa := bytes.Repeat([]byte{0xaa}, 128)
	pb := bytes.Repeat([]byte{0xbb}, 128)
	addr := MakeAddr(0, base)
	w.Write(addr, pa)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				w.Write(addr, pb)
			} else {
				w.Write(addr, pa)
			}
		}
	}()
	buf := make([]byte, 128)
	for i := 0; i < 3000; i++ {
		r.Read(addr, buf)
		for line := 0; line < 2; line++ {
			seg := buf[line*64 : line*64+64]
			first := seg[0]
			if first != 0xaa && first != 0xbb {
				t.Fatalf("byte neither pattern: %#x", first)
			}
			for _, b := range seg {
				if b != first {
					t.Fatal("intra-line shear observed")
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestGrowAndBounds(t *testing.T) {
	f := testFabric(1, 1)
	s := f.Servers()[0]
	if s.Capacity() != 0 {
		t.Fatal("fresh server has capacity")
	}
	b0 := s.Grow()
	b1 := s.Grow()
	if b0 != 0 || b1 != DefaultChunkSize {
		t.Fatalf("chunk bases %d, %d", b0, b1)
	}
	if s.Capacity() != 2*DefaultChunkSize {
		t.Fatal("capacity wrong")
	}
	c := f.NewClient(0)
	assertPanics(t, func() { c.Read(MakeAddr(0, 2*DefaultChunkSize), make([]byte, 8)) })
	// Objects must not span chunks.
	assertPanics(t, func() { c.Read(MakeAddr(0, DefaultChunkSize-4), make([]byte, 8)) })
}

func TestRPCChargesMemoryThread(t *testing.T) {
	p := sim.DefaultParams()
	f := NewFabric(p, 1, 1)
	c := f.NewClient(0)
	ran := false
	t0 := c.Now()
	c.Call(0, func() { ran = true })
	if !ran {
		t.Fatal("handler did not run")
	}
	if c.Now()-t0 < p.RTTNS+p.MemThreadRPCNS {
		t.Fatalf("RPC too cheap: %d", c.Now()-t0)
	}
	if c.M.RPCs != 1 {
		t.Fatal("RPC not counted")
	}
}

func TestReadMultiParallel(t *testing.T) {
	p := sim.DefaultParams()
	f := NewFabric(p, 4, 1)
	var addrs []Addr
	for ms := 0; ms < 4; ms++ {
		base := f.Servers()[ms].Grow()
		addrs = append(addrs, MakeAddr(uint16(ms), base))
	}
	c := f.NewClient(0)
	var reqs []ReadOp
	for _, a := range addrs {
		reqs = append(reqs, ReadOp{Addr: a, Buf: make([]byte, 1024)})
	}
	c.M.BeginOp()
	t0 := c.Now()
	c.ReadMulti(reqs)
	elapsed := c.Now() - t0
	if c.M.OpRoundTrips != 1 {
		t.Fatalf("parallel reads cost %d round trips", c.M.OpRoundTrips)
	}
	// Four parallel 1 KB reads must cost far less than four serial ones.
	serial := 4 * (p.RTTNS + int64(1024*p.NSPerByte))
	if elapsed >= serial {
		t.Fatalf("ReadMulti not parallel: %d >= %d", elapsed, serial)
	}
}

func TestConcurrentAtomicsLinearize(t *testing.T) {
	f := testFabric(1, 4)
	base := f.Servers()[0].Grow()
	a := MakeAddr(0, base)
	const threads = 8
	const each = 500
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(cs int) {
			defer wg.Done()
			c := f.NewClient(cs % 4)
			for j := 0; j < each; j++ {
				c.FAA(a, 1)
			}
		}(i)
	}
	wg.Wait()
	c := f.NewClient(0)
	buf := make([]byte, 8)
	c.Read(a, buf)
	var got uint64
	for i := 7; i >= 0; i-- {
		got = got<<8 | uint64(buf[i])
	}
	if got != threads*each {
		t.Fatalf("FAA lost updates: %d, want %d", got, threads*each)
	}
}
