package sherman

import (
	"fmt"
	"sync"
	"testing"

	"sherman/internal/testutil"
)

// This file is the model-based differential oracle: random mixed operation
// streams — puts, gets, deletes, scans, submitted singly and in Exec
// batches at pipeline depths 1–8 — run against the tree while being
// replayed into testutil.Model, the obviously-correct in-memory map. Every
// result must match the model's, at every grid cell, and (in the
// migrating variant) while the elasticity engine concurrently adds,
// rebalances onto, and drains memory servers under the stream.

// oracleStream drives one session against the model for n steps.
func oracleStream(t *testing.T, s *Session, model *testutil.Model, rng interface {
	Uint64N(uint64) uint64
	Uint64() uint64
}, keySpace uint64, n int) {
	t.Helper()
	type pending struct {
		op   Op
		f    *Future
		want Result
	}
	var inflight []pending
	settle := func() {
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		for _, p := range inflight {
			got := p.f.Wait()
			if got.Err != nil {
				t.Fatalf("op %+v errored: %v", p.op, got.Err)
			}
			if got.Found != p.want.Found || got.Value != p.want.Value {
				t.Fatalf("op %+v = (%d,%v), model (%d,%v)", p.op, got.Value, got.Found, p.want.Value, p.want.Found)
			}
			if len(got.KVs) != len(p.want.KVs) {
				t.Fatalf("scan %+v returned %d rows, model %d", p.op, len(got.KVs), len(p.want.KVs))
			}
			for j := range p.want.KVs {
				if got.KVs[j] != p.want.KVs[j] {
					t.Fatalf("scan %+v row %d = %+v, model %+v", p.op, j, got.KVs[j], p.want.KVs[j])
				}
			}
		}
		inflight = inflight[:0]
	}
	modelApply := func(op Op) Result {
		var want Result
		switch op.Kind {
		case OpPut:
			model.Put(op.Key, op.Value)
		case OpDelete:
			want.Found = model.Delete(op.Key)
		case OpScan:
			want.KVs = model.Scan(op.Key, op.Span)
		default:
			want.Value, want.Found = model.Get(op.Key)
		}
		return want
	}
	randOp := func() Op {
		k := rng.Uint64N(keySpace) + 1
		switch rng.Uint64N(10) {
		case 0, 1, 2, 3:
			return PutOp(k, rng.Uint64()|1)
		case 4:
			return DeleteOp(rng.Uint64N(keySpace*2) + 1) // half absent
		case 5:
			return ScanOp(k, int(rng.Uint64N(12))+1)
		default:
			return GetOp(k)
		}
	}
	for i := 0; i < n; i++ {
		if rng.Uint64N(6) == 0 {
			// One mixed Exec batch; results are plain values.
			settle()
			ops := make([]Op, rng.Uint64N(30)+1)
			for j := range ops {
				ops[j] = randOp()
			}
			got := s.Exec(ops)
			for j, op := range ops {
				want := modelApply(op)
				g := got[j]
				if g.Err != nil || g.Found != want.Found || g.Value != want.Value || len(g.KVs) != len(want.KVs) {
					t.Fatalf("Exec op %d (%+v) = %+v, model %+v", j, op, g, want)
				}
				for r := range want.KVs {
					if g.KVs[r] != want.KVs[r] {
						t.Fatalf("Exec op %d scan row %d mismatch", j, r)
					}
				}
			}
			continue
		}
		op := randOp()
		// A scan's model answer must be computed when the pipeline is
		// drained up to it; the executor orders scans after outstanding
		// writes, so replaying the model at submit time is exact.
		want := modelApply(op)
		inflight = append(inflight, pending{op: op, f: s.Submit(op), want: want})
		if len(inflight) >= 64 {
			settle()
		}
	}
	settle()
}

// checkFinalState compares the whole tree against the model, key by key.
func checkFinalState(t *testing.T, s *Session, model *testutil.Model, keySpace uint64) {
	t.Helper()
	for k := uint64(1); k <= 2*keySpace; k++ {
		wv, wok := model.Get(k)
		gv, gok := s.Get(k)
		if wok != gok || (wok && wv != gv) {
			t.Fatalf("final key %d = (%d,%v), model (%d,%v)", k, gv, gok, wv, wok)
		}
	}
}

// TestDifferentialOracle runs the oracle per grid cell at every pipeline
// depth 1–8 (one depth per seed), with no migrations — the baseline the
// migrating variant strengthens.
func TestDifferentialOracle(t *testing.T) {
	depths := []int{1, 2, 4, 8}
	for _, opts := range gridOptions() {
		opts := opts
		t.Run(opts.Advanced.name(), func(t *testing.T) {
			testutil.RunSeeds(t, 4, func(t *testing.T, seed uint64) {
				rng := testutil.RNG(seed)
				depth := depths[(seed-1)%uint64(len(depths))]
				c, err := NewCluster(ClusterConfig{MemoryServers: 2, ComputeServers: 1})
				if err != nil {
					t.Fatal(err)
				}
				s, err := testTree(t, c, opts).SessionAt(0, PipelineDepth(depth))
				if err != nil {
					t.Fatal(err)
				}
				model := testutil.NewModel()
				const keySpace = 400
				oracleStream(t, s, model, rng, keySpace, 500)
				checkFinalState(t, s, model, keySpace)
			})
		})
	}
}

// TestDifferentialOraclePoison re-runs the baseline oracle once per grid
// cell with TreeOptions.Poison set: every recycled hot-path buffer — the
// per-session arena, the pooled write-op slices, the lock waiters — is
// filled with 0xDB the moment its lifetime ends, so an operation that
// reads scratch past its release returns poisoned garbage and fails the
// model comparison deterministically. Under -race (the CI configuration)
// this run doubles as the reuse-after-release detector of the
// zero-allocation recycling.
func TestDifferentialOraclePoison(t *testing.T) {
	depths := []int{1, 2, 4, 8}
	for i, opts := range gridOptions() {
		opts := opts
		opts.Poison = true
		depth := depths[i%len(depths)]
		t.Run(opts.Advanced.name(), func(t *testing.T) {
			rng := testutil.RNG(uint64(i) + 101)
			c, err := NewCluster(ClusterConfig{MemoryServers: 2, ComputeServers: 1})
			if err != nil {
				t.Fatal(err)
			}
			s, err := testTree(t, c, opts).SessionAt(0, PipelineDepth(depth))
			if err != nil {
				t.Fatal(err)
			}
			model := testutil.NewModel()
			const keySpace = 400
			oracleStream(t, s, model, rng, keySpace, 500)
			checkFinalState(t, s, model, keySpace)
		})
	}
}

// TestDifferentialOracleTinyCache is the cache-staleness oracle: the same
// random streams (depths 1–8) run with a deliberately tiny 2-entry index
// cache, so eviction churn is constant and nearly every speculative
// leaf-direct read races the stream's own splits — while a writer session
// on the other compute server forces extra splits, and (for odd seeds) the
// elasticity engine concurrently adds, rebalances onto, and drains memory
// servers. Every speculative read must either validate or fall back
// through the poisoned-path invalidation without ever returning a stale
// value: any miss shows up as a model mismatch.
func TestDifferentialOracleTinyCache(t *testing.T) {
	depths := []int{1, 2, 4, 8}
	for _, opts := range gridOptions() {
		opts := opts
		opts.CacheBytes = 2 * testutil.SmallNodeSize // a 2-entry budget
		t.Run(opts.Advanced.name(), func(t *testing.T) {
			testutil.RunSeeds(t, 4, func(t *testing.T, seed uint64) {
				rng := testutil.RNG(seed)
				depth := depths[(seed-1)%uint64(len(depths))]
				migrate := seed%2 == 1
				c, err := NewCluster(ClusterConfig{
					MemoryServers: 2, ComputeServers: 2, MaxMemoryServers: 4,
				})
				if err != nil {
					t.Fatal(err)
				}
				tree := testTree(t, c, opts)
				s, err := tree.SessionAt(0, PipelineDepth(depth))
				if err != nil {
					t.Fatal(err)
				}

				// A fence band of known keys separates the oracle keyspace
				// from the churn writer's stripe: scans running off the
				// oracle region land on fence rows (identical in tree and
				// model) instead of the writer's racing keys. The band is
				// wide enough to push the root past level 2, so level-1
				// entries are budgeted (evictable), not pinned — a 2-entry
				// cache then churns on every traversal.
				const keySpace = 400
				model := testutil.NewModel()
				fence := make([]KV, 3000)
				for i := range fence {
					k := uint64(2*keySpace + 1 + i)
					fence[i] = KV{Key: k, Value: testutil.BulkValue(k)}
					model.Put(k, fence[i].Value)
				}
				if err := tree.Bulkload(fence); err != nil {
					t.Fatal(err)
				}

				// Concurrent churn: a writer splitting leaves all over a
				// disjoint stripe, plus (odd seeds) rebalance/drain cycles —
				// the two sources of cache staleness under live traffic.
				stop := make(chan struct{})
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					w := tree.Session(1)
					churnRng := testutil.RNG(seed + 1000)
					added := false
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						for j := 0; j < 50; j++ {
							w.Put(1_000_000+churnRng.Uint64N(5000)+1, churnRng.Uint64()|1)
						}
						if !migrate {
							continue
						}
						if !added {
							if _, err := c.AddMemoryServer(); err != nil {
								t.Error(err)
								return
							}
							added = true
						}
						if _, err := tree.Rebalance(1); err != nil {
							t.Error(err)
							return
						}
					}
				}()

				oracleStream(t, s, model, rng, keySpace, 600)
				close(stop)
				wg.Wait()
				if t.Failed() {
					t.FailNow()
				}
				checkFinalState(t, s, model, keySpace)
				st := s.Stats()
				if st.SpeculativeReads == 0 {
					t.Error("tiny-cache stream issued no speculative reads")
				}
				if st.CacheEvictions == 0 {
					t.Error("2-entry cache saw no evictions")
				}
			})
		})
	}
}

// runFailoverOracle drives one oracle stream on compute server 0 while a
// churn goroutine on compute server 1 repeatedly kills a memory server,
// brings a replacement in, and re-replicates back to full redundancy. Every
// in-flight operation may therefore land mid-failover — its chunk re-keyed
// to a promoted replica between the validating read and the commit — and
// must still return exactly the model's answer.
func runFailoverOracle(t *testing.T, opts TreeOptions, seed uint64, depth int) {
	rng := testutil.RNG(seed)
	c, err := NewCluster(ClusterConfig{
		MemoryServers: 3, ComputeServers: 2, MaxMemoryServers: 6,
		ReplicationFactor: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tree := testTree(t, c, opts)
	s, err := tree.SessionAt(0, PipelineDepth(depth))
	if err != nil {
		t.Fatal(err)
	}

	// A bulkloaded band above the oracle keyspace stripes primary chunks
	// across every memory server (the bulk allocator round-robins chunk
	// placement), so each victim hosts data whose failover must actually
	// promote replicas — a bare CreateTree could leave the victims empty.
	// The band is in the model, so scans running off the oracle region
	// still compare exactly.
	const keySpace = 400
	model := testutil.NewModel()
	band := make([]KV, 3000)
	for i := range band {
		k := uint64(2*keySpace + 1 + i)
		band[i] = KV{Key: k, Value: testutil.BulkValue(k)}
		model.Put(k, band[i].Value)
	}
	if err := tree.Bulkload(band); err != nil {
		t.Fatal(err)
	}

	reReplicateAll := func() error {
		for i := 0; i < 64; i++ {
			if _, err := tree.ReReplicate(1); err != nil {
				return err
			}
			if c.ReplicationStats().UnderReplicated == 0 {
				return nil
			}
		}
		return fmt.Errorf("re-replication never drained: %d chunks still under-replicated",
			c.ReplicationStats().UnderReplicated)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Kill a server, add a replacement, repair to full redundancy,
		// repeat. The first cycle runs unconditionally so every run
		// exercises at least one failover; MS 0 (superblock) is never a
		// victim, and each kill is fully repaired before the next, so no
		// chunk ever loses its last copy.
		for kill := 0; kill < 3; kill++ {
			victim := kill + 1 // replacements appear as MS 3, 4, 5
			if err := c.KillMemoryServer(victim); err != nil {
				t.Error(err)
				return
			}
			if _, err := c.AddMemoryServer(); err != nil {
				t.Error(err)
				return
			}
			if err := reReplicateAll(); err != nil {
				t.Error(err)
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	oracleStream(t, s, model, rng, keySpace, 600)
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	checkFinalState(t, s, model, keySpace)
	if err := tree.Validate(); err != nil {
		t.Fatalf("validate after failovers: %v", err)
	}
	st := c.ReplicationStats()
	if st.LostChunks != 0 {
		t.Fatalf("%d chunks lost every copy", st.LostChunks)
	}
	if st.Failovers < 1 {
		t.Fatal("no failover ever fired")
	}
	if st.UnderReplicated != 0 {
		t.Fatalf("%d chunks left under-replicated", st.UnderReplicated)
	}
}

// TestDifferentialOracleUnderFailover is the replicated differential oracle:
// random mixed streams at factor 2 while memory servers die, get replaced,
// and re-replicate underneath — the model must agree on every result, the
// final state must match key by key, and no chunk may ever lose both copies.
func TestDifferentialOracleUnderFailover(t *testing.T) {
	for _, opts := range gridOptions() {
		opts := opts
		t.Run(opts.Advanced.name(), func(t *testing.T) {
			testutil.RunSeeds(t, 3, func(t *testing.T, seed uint64) {
				runFailoverOracle(t, opts, seed, []int{1, 4, 8}[(seed-1)%3])
			})
		})
	}
}

// TestDifferentialOracleUnderFailoverPoison re-runs the failover oracle once
// per grid cell with buffer poisoning on, so a mirror or redo path holding a
// recycled buffer past its release fails the model comparison
// deterministically (and the -race CI run doubles as the reuse detector).
func TestDifferentialOracleUnderFailoverPoison(t *testing.T) {
	for i, opts := range gridOptions() {
		opts := opts
		opts.Poison = true
		i := i
		t.Run(opts.Advanced.name(), func(t *testing.T) {
			runFailoverOracle(t, opts, uint64(i)+201, []int{1, 4, 8}[i%3])
		})
	}
}

// TestDifferentialOracleUnderMigration is the elastic differential oracle:
// the same streams run while a migration goroutine adds memory servers,
// rebalances onto them, and drains old ones — so every operation may land
// mid-chunk-migration and resolve through forwarding. The model must still
// agree on every single result.
func TestDifferentialOracleUnderMigration(t *testing.T) {
	for _, opts := range gridOptions() {
		opts := opts
		t.Run(opts.Advanced.name(), func(t *testing.T) {
			testutil.RunSeeds(t, 3, func(t *testing.T, seed uint64) {
				rng := testutil.RNG(seed)
				depth := []int{1, 4, 8}[(seed-1)%3]
				c, err := NewCluster(ClusterConfig{
					MemoryServers: 2, ComputeServers: 2, MaxMemoryServers: 6,
				})
				if err != nil {
					t.Fatal(err)
				}
				tree := testTree(t, c, opts)
				s, err := tree.SessionAt(0, PipelineDepth(depth))
				if err != nil {
					t.Fatal(err)
				}

				stop := make(chan struct{})
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Scale out, rebalance, scale in, repeatedly, until the
					// stream finishes. Driven from the other compute server.
					drained := 0
					for added := 2; ; added++ {
						select {
						case <-stop:
							return
						default:
						}
						if added < 6 {
							if _, err := c.AddMemoryServer(); err != nil {
								t.Error(err)
								return
							}
						}
						if _, err := tree.Rebalance(1); err != nil {
							t.Error(err)
							return
						}
						select {
						case <-stop:
							return
						default:
						}
						if drained < 3 {
							if _, err := c.DrainMemoryServer(drained, 1); err != nil {
								t.Error(err)
								return
							}
							drained++
						}
					}
				}()

				model := testutil.NewModel()
				const keySpace = 400
				oracleStream(t, s, model, rng, keySpace, 700)
				close(stop)
				wg.Wait()
				if t.Failed() {
					t.FailNow()
				}
				checkFinalState(t, s, model, keySpace)
				// The stream's data survived every migration; Validate runs
				// once more in the testTree cleanup.
				if err := tree.Validate(); err != nil {
					t.Fatalf("validate after migrations: %v", err)
				}
			})
		})
	}
}
