package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

// TestHistPercentileAccuracy compares histogram percentiles against exact
// percentiles of the same samples; the log-linear layout guarantees <= ~6%
// relative error per bucket.
func TestHistPercentileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	h := NewHist()
	samples := make([]int64, 0, 50_000)
	for i := 0; i < 50_000; i++ {
		// Log-uniform samples spanning ns to tens of ms, like latencies.
		v := int64(math.Exp(rng.Float64() * 17))
		h.Record(v)
		samples = append(samples, v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{50, 90, 99, 99.9} {
		exact := samples[int(math.Ceil(p/100*float64(len(samples))))-1]
		got := h.Percentile(p)
		rel := math.Abs(float64(got-exact)) / float64(exact)
		if rel > 0.10 {
			t.Errorf("p%.1f: hist %d vs exact %d (rel err %.3f)", p, got, exact, rel)
		}
	}
}

func TestHistBasics(t *testing.T) {
	h := NewHist()
	if h.Count() != 0 || h.Percentile(50) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Record(10)
	h.Record(20)
	h.Record(30)
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}
	if h.Min() != 10 || h.Max() != 30 {
		t.Errorf("min/max = %d/%d, want 10/30", h.Min(), h.Max())
	}
	if h.Mean() != 20 {
		t.Errorf("mean = %v, want 20", h.Mean())
	}
	if got := h.Percentile(100); got != 30 {
		t.Errorf("p100 = %d, want 30", got)
	}
	if got := h.Percentile(1); got != 10 {
		t.Errorf("p1 = %d, want 10", got)
	}
	h.Record(-5) // clamps to 0
	if h.Min() != 0 {
		t.Errorf("min after negative record = %d, want 0", h.Min())
	}
}

func TestHistMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	whole, a, b := NewHist(), NewHist(), NewHist()
	for i := 0; i < 10_000; i++ {
		v := int64(rng.Uint64N(1 << 30))
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(b)
	a.Merge(nil)       // no-op
	a.Merge(NewHist()) // empty no-op
	if a.Count() != whole.Count() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merge mismatch: count %d/%d min %d/%d max %d/%d",
			a.Count(), whole.Count(), a.Min(), whole.Min(), a.Max(), whole.Max())
	}
	for _, p := range []float64{50, 90, 99} {
		if a.Percentile(p) != whole.Percentile(p) {
			t.Errorf("p%v: merged %d, whole %d", p, a.Percentile(p), whole.Percentile(p))
		}
	}
}

// TestBucketRoundTrip: bucketLow(bucketOf(v)) <= v for all v, and bucketOf
// is monotone non-decreasing.
func TestBucketRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		v := int64(raw)
		b := bucketOf(v)
		return bucketLow(b) <= v && bucketOf(v+1) >= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20_000}); err != nil {
		t.Error(err)
	}
}

func TestHistCDF(t *testing.T) {
	h := NewHist()
	for i := 1; i <= 100; i++ {
		h.Record(int64(i))
	}
	cdf := h.CDF()
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	last := 0.0
	for _, pt := range cdf {
		if pt.Fraction < last {
			t.Fatalf("CDF not monotone at value %d", pt.Value)
		}
		last = pt.Fraction
	}
	if math.Abs(last-1.0) > 1e-9 {
		t.Errorf("CDF ends at %v, want 1.0", last)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter(8)
	for v := 0; v < 12; v++ { // values 8..11 clamp into bin 7
		c.Record(v)
	}
	c.Record(-3) // clamps to 0
	if c.Count() != 13 {
		t.Errorf("count = %d, want 13", c.Count())
	}
	if got := c.Fraction(0); math.Abs(got-2.0/13) > 1e-9 {
		t.Errorf("fraction(0) = %v, want 2/13", got)
	}
	if got := c.Fraction(7); math.Abs(got-5.0/13) > 1e-9 {
		t.Errorf("fraction(7) = %v (clamped bin), want 5/13", got)
	}
	if got := c.Fraction(99); got != 0 {
		t.Errorf("fraction out of domain = %v, want 0", got)
	}
	if got := c.PercentileValue(1); got != 0 {
		t.Errorf("p1 = %d, want 0", got)
	}
	if got := c.PercentileValue(100); got != 7 {
		t.Errorf("p100 = %d, want 7", got)
	}

	d := NewCounter(4)
	d.Record(3)
	c.Merge(d)
	c.Merge(nil)
	if c.Count() != 14 {
		t.Errorf("merged count = %d, want 14", c.Count())
	}

	// Merging a wider counter into a narrower one clamps the tail.
	narrow := NewCounter(2)
	wide := NewCounter(8)
	wide.Record(5)
	narrow.Merge(wide)
	if narrow.Fraction(1) != 1 {
		t.Error("wide bin did not clamp into narrow tail")
	}
}

func TestSizeHist(t *testing.T) {
	s := NewSizeHist()
	s.Record(17)
	s.Record(17)
	s.Record(1024)
	pts := s.Points()
	if len(pts) != 2 || pts[0].Value != 17 || pts[1].Value != 1024 {
		t.Fatalf("points = %+v", pts)
	}
	if math.Abs(pts[0].Fraction-2.0/3) > 1e-9 {
		t.Errorf("fraction(17) = %v, want 2/3", pts[0].Fraction)
	}
	other := NewSizeHist()
	other.Record(17)
	s.Merge(other)
	s.Merge(nil)
	if s.Count() != 4 {
		t.Errorf("count = %d, want 4", s.Count())
	}
	if str := s.String(); str == "" {
		t.Error("String() empty")
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.RecordOp(OpLookup, 1000)
	r.RecordOp(OpInsert, 2000)
	r.RecordOp(OpInsert, 3000)
	r.RecordOp(OpRange, 4000)
	if r.TotalOps() != 4 {
		t.Errorf("total ops = %d, want 4", r.TotalOps())
	}
	if r.Ops[OpInsert] != 2 {
		t.Errorf("inserts = %d, want 2", r.Ops[OpInsert])
	}
	if r.AllLatency.Count() != 4 {
		t.Errorf("all-latency count = %d, want 4", r.AllLatency.Count())
	}

	r.CacheHits, r.CacheMisses = 3, 1
	if got := r.HitRatio(); got != 0.75 {
		t.Errorf("hit ratio = %v, want 0.75", got)
	}
	empty := NewRecorder()
	if empty.HitRatio() != 0 {
		t.Error("empty recorder hit ratio should be 0")
	}

	o := NewRecorder()
	o.RecordOp(OpDelete, 500)
	o.FinishV = 99
	o.Handovers = 2
	r.Merge(o)
	r.Merge(nil)
	if r.TotalOps() != 5 || r.FinishV != 99 || r.Handovers != 2 {
		t.Errorf("merge: ops=%d finish=%d handovers=%d", r.TotalOps(), r.FinishV, r.Handovers)
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpLookup: "lookup", OpInsert: "insert", OpDelete: "delete", OpRange: "range",
		OpKind(99): "unknown",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !OpInsert.IsWrite() || !OpDelete.IsWrite() || OpLookup.IsWrite() || OpRange.IsWrite() {
		t.Error("IsWrite classification wrong")
	}
}

func TestThroughputMops(t *testing.T) {
	if got := ThroughputMops(1000, 1_000_000); got != 1.0 {
		t.Errorf("1000 ops / 1ms = %v Mops, want 1", got)
	}
	if got := ThroughputMops(100, 0); got != 0 {
		t.Errorf("zero makespan = %v, want 0", got)
	}
	if got := ThroughputMops(100, -5); got != 0 {
		t.Errorf("negative makespan = %v, want 0", got)
	}
}

func TestLeadingZeros(t *testing.T) {
	cases := map[uint64]int{1: 63, 2: 62, 1 << 63: 0, 0: 64, 0xff: 56}
	for v, want := range cases {
		if got := leadingZeros(v); got != want {
			t.Errorf("leadingZeros(%#x) = %d, want %d", v, got, want)
		}
	}
}
