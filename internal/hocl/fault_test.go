package hocl

import (
	"runtime"
	"sync"
	"testing"

	"sherman/internal/sim"
)

// lockCrashing runs fn, reporting whether it aborted with a CS crash.
func lockCrashing(fn func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := sim.IsCrash(r); ok {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	fn()
	return false
}

// TestReclaimOrphanedLock kills a lock holder and checks that a later
// arrival steals the lock after the lease expires, in every mode (covering
// both the 16-bit on-chip and 64-bit host lock word formats).
func TestReclaimOrphanedLock(t *testing.T) {
	for _, m := range allModes() {
		t.Run(m.name, func(t *testing.T) {
			f := testFabric(t, 1, 2)
			mgr := NewManager(f, Config{Mode: m.mode, LocksPerMS: 64})
			victim := f.NewClient(0)
			_ = mgr.LockIdx(victim, 0, 7) // acquired, never released
			f.Faults.Kill(0, victim.Now())
			if got := mgr.Stats.LeaseExpiries.Load(); got != 1 {
				t.Fatalf("lease expiries = %d, want 1", got)
			}
			// The dead client aborts at its next verb.
			if !lockCrashing(func() { victim.Read(0, make([]byte, 8)) }) {
				t.Fatal("dead client's verb did not abort")
			}

			surv := f.NewClient(1)
			g := mgr.LockIdx(surv, 0, 7)
			if !g.Reclaimed() {
				t.Fatal("survivor acquisition did not report reclamation")
			}
			if got := mgr.Stats.Reclaims.Load(); got != 1 {
				t.Fatalf("reclaims = %d, want 1", got)
			}
			if surv.Now() < f.P.LeaseNS {
				t.Fatalf("reclaim completed at %d ns, before the %d ns lease expired", surv.Now(), f.P.LeaseNS)
			}
			// The reclaimed lock must work normally afterwards.
			mgr.Unlock(surv, g, nil, true)
			g2 := mgr.LockIdx(surv, 0, 7)
			if g2.Reclaimed() {
				t.Fatal("clean re-acquisition reported reclamation")
			}
			mgr.Unlock(surv, g2, nil, true)
		})
	}
}

// TestReclaimPromotesQueuedWaiter kills a holder while a survivor is
// already queued on the lock: the death sweep must hand the orphan to the
// waiter rather than leaving it blocked forever.
func TestReclaimPromotesQueuedWaiter(t *testing.T) {
	f := testFabric(t, 1, 2)
	mgr := NewManager(f, Config{Mode: Baseline(), LocksPerMS: 64})
	victim := f.NewClient(0)
	_ = mgr.LockIdx(victim, 0, 3)

	type res struct {
		g  Guard
		ok bool
	}
	done := make(chan res, 1)
	var started sync.WaitGroup
	started.Add(1)
	go func() {
		surv := f.NewClient(1)
		started.Done()
		g := mgr.LockIdx(surv, 0, 3) // blocks behind the held lock
		done <- res{g, true}
		mgr.Unlock(surv, g, nil, true)
	}()
	started.Wait()
	// Wait until the survivor queues, then kill the holder.
	for mgr.Stats.MaxWaiters.Load() == 0 {
		runtime.Gosched()
	}
	f.Faults.Kill(0, victim.Now())
	r := <-done
	if !r.ok || !r.g.Reclaimed() {
		t.Fatalf("queued waiter not promoted to reclaimer (reclaimed=%v)", r.g.Reclaimed())
	}
}

// TestDeadWaitersAreAborted kills a CS whose thread is queued on a lock
// held by a survivor: the waiter must wake and abort instead of blocking
// the queue.
func TestDeadWaitersAreAborted(t *testing.T) {
	f := testFabric(t, 1, 2)
	mgr := NewManager(f, Config{Mode: Baseline(), LocksPerMS: 64})
	holder := f.NewClient(1)
	g := mgr.LockIdx(holder, 0, 5)

	crashed := make(chan bool, 1)
	go func() {
		doomed := f.NewClient(0)
		crashed <- lockCrashing(func() { _ = mgr.LockIdx(doomed, 0, 5) })
	}()
	// Wait until the doomed thread queues, then kill its CS.
	for mgr.Stats.MaxWaiters.Load() == 0 {
		runtime.Gosched()
	}
	f.Faults.Kill(0, 0)
	if !<-crashed {
		t.Fatal("dead waiter did not abort")
	}
	if got := mgr.Stats.DeadWaiterKills.Load(); got != 1 {
		t.Fatalf("dead waiter kills = %d, want 1", got)
	}
	mgr.Unlock(holder, g, nil, true)
}
