// Package rdma simulates the RDMA fabric of a disaggregated-memory cluster:
// memory servers exposing host memory and NIC on-chip device memory, compute
// servers with client threads, and the one-sided verbs (READ, WRITE, CAS,
// FAA, masked CAS) plus doorbell-batched posts and a two-sided RPC path for
// the wimpy memory thread.
//
// Every operation really executes against shared process memory — with 64-byte
// access atomicity, matching cacheline-granular NIC DMA — so lock-free readers
// observe genuine torn data that the index's version/checksum machinery must
// catch. Performance is accounted in virtual time via internal/sim; see
// DESIGN.md §3 for the model.
package rdma

import "fmt"

// Addr is a 64-bit global pointer into disaggregated memory, matching the
// paper's pointer format (§4.2.1): a 16-bit memory-server identifier and a
// 48-bit offset within that server. The top bit of the MS field is borrowed
// to address NIC on-chip device memory (used only for lock tables, never for
// tree nodes, so it can never be confused with a tree pointer).
//
// The zero Addr is the nil pointer; offset 0 of MS 0 holds the cluster
// superblock and is never handed out by the allocator.
type Addr uint64

const (
	onChipBit  = uint64(1) << 63
	offsetMask = (uint64(1) << 48) - 1
)

// NilAddr is the null pointer.
const NilAddr Addr = 0

// MakeAddr builds a host-memory address on memory server ms at offset off.
func MakeAddr(ms uint16, off uint64) Addr {
	if off&^offsetMask != 0 {
		panic(fmt.Sprintf("rdma: offset %#x exceeds 48 bits", off))
	}
	if ms&0x8000 != 0 {
		panic(fmt.Sprintf("rdma: ms id %d exceeds 15 bits", ms))
	}
	return Addr(uint64(ms)<<48 | off)
}

// MakeOnChipAddr builds an address into the on-chip device memory of memory
// server ms's NIC.
func MakeOnChipAddr(ms uint16, off uint64) Addr {
	return Addr(uint64(MakeAddr(ms, off)) | onChipBit)
}

// MS returns the memory-server identifier.
func (a Addr) MS() uint16 { return uint16(uint64(a)>>48) &^ 0x8000 }

// Off returns the 48-bit offset within the server (or within the NIC's
// on-chip memory for on-chip addresses).
func (a Addr) Off() uint64 { return uint64(a) & offsetMask }

// OnChip reports whether the address targets NIC on-chip device memory.
func (a Addr) OnChip() bool { return uint64(a)&onChipBit != 0 }

// IsNil reports whether the address is the null pointer.
func (a Addr) IsNil() bool { return a == NilAddr }

// Add returns the address displaced by d bytes within the same server and
// memory space.
func (a Addr) Add(d uint64) Addr {
	if a.IsNil() {
		panic("rdma: Add on nil address")
	}
	return Addr(uint64(a) + d)
}

// String formats the address for diagnostics.
func (a Addr) String() string {
	if a.IsNil() {
		return "nil"
	}
	space := "mem"
	if a.OnChip() {
		space = "chip"
	}
	return fmt.Sprintf("ms%d/%s+%#x", a.MS(), space, a.Off())
}
