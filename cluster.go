package sherman

import (
	"errors"
	"fmt"
	"sync"

	"sherman/internal/alloc"
	"sherman/internal/cluster"
	"sherman/internal/sim"
)

// ClusterConfig sizes a simulated disaggregated-memory cluster.
type ClusterConfig struct {
	// MemoryServers is the number of memory servers (MSs). The paper's
	// testbed emulates 8.
	MemoryServers int

	// ComputeServers is the number of compute servers (CSs). The paper's
	// testbed emulates 8; each runs many client threads.
	ComputeServers int

	// MaxMemoryServers caps online scale-out (AddMemoryServer): lock tables
	// and other per-server state are sized for it at creation. 0 means
	// MemoryServers plus a small headroom.
	MaxMemoryServers int

	// ReplicationFactor is the number of copies of every data chunk,
	// including the primary. 0 or 1 disables replication (the default: no
	// redundancy, matching the paper's single-copy design). At factor k every
	// chunk's writes are mirrored to k-1 replica chunks on distinct other
	// memory servers, and a memory-server death promotes the freshest replica
	// of each lost chunk with zero lost acknowledged writes (see DESIGN.md
	// §12). Must not exceed MemoryServers.
	ReplicationFactor int

	// Fabric overrides the simulated network timing model. The zero value
	// uses defaults calibrated to the paper's 100 Gbps ConnectX-5 testbed.
	Fabric FabricParams
}

// FabricParams exposes the tunable constants of the simulated RDMA fabric.
// All times are virtual nanoseconds. Zero fields take the calibrated
// defaults (see DESIGN.md §3).
type FabricParams struct {
	// RTTNS is the one-sided verb round-trip time (paper: <= 2 us).
	RTTNS int64
	// HostAtomicNS is the in-NIC service time of an RDMA_ATOMIC targeting
	// host memory (two PCIe transactions, §3.2.2).
	HostAtomicNS int64
	// OnChipAtomicNS is the service time of an RDMA_ATOMIC targeting NIC
	// on-chip device memory (§4.3).
	OnChipAtomicNS int64
	// AtomicBuckets is the number of NIC-internal buckets serializing
	// conflicting atomics (§3.2.2; e.g. 4096).
	AtomicBuckets int
	// OnChipMemBytes is the NIC device-memory capacity (256 KB on
	// ConnectX-5).
	OnChipMemBytes int
}

func (p FabricParams) toSim() sim.Params {
	d := sim.DefaultParams()
	if p.RTTNS != 0 {
		d.RTTNS = p.RTTNS
	}
	if p.HostAtomicNS != 0 {
		d.HostAtomicNS = p.HostAtomicNS
	}
	if p.OnChipAtomicNS != 0 {
		d.OnChipAtomicNS = p.OnChipAtomicNS
	}
	if p.AtomicBuckets != 0 {
		d.AtomicBuckets = p.AtomicBuckets
	}
	if p.OnChipMemBytes != 0 {
		d.OnChipMemBytes = p.OnChipMemBytes
	}
	return d
}

// Cluster is a running simulated deployment: memory servers, compute
// servers, and the RDMA fabric between them. Create trees with CreateTree.
type Cluster struct {
	cl *cluster.Cluster

	treeMu sync.Mutex
	trees  []*Tree // registered by CreateTree, for DrainMemoryServer
}

// NewCluster builds and starts a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.MemoryServers <= 0 {
		return nil, errors.New("sherman: MemoryServers must be positive")
	}
	if cfg.ComputeServers <= 0 {
		return nil, errors.New("sherman: ComputeServers must be positive")
	}
	if cfg.MemoryServers > 1<<15 {
		return nil, fmt.Errorf("sherman: MemoryServers %d exceeds the 15-bit server id space", cfg.MemoryServers)
	}
	if cfg.MaxMemoryServers != 0 && (cfg.MaxMemoryServers < cfg.MemoryServers || cfg.MaxMemoryServers > 1<<15) {
		return nil, fmt.Errorf("sherman: MaxMemoryServers %d outside [%d, %d]", cfg.MaxMemoryServers, cfg.MemoryServers, 1<<15)
	}
	if cfg.ReplicationFactor < 0 || cfg.ReplicationFactor > alloc.MaxReplicationFactor {
		return nil, fmt.Errorf("sherman: ReplicationFactor %d outside [0, %d]", cfg.ReplicationFactor, alloc.MaxReplicationFactor)
	}
	if cfg.ReplicationFactor > cfg.MemoryServers {
		return nil, fmt.Errorf("sherman: ReplicationFactor %d exceeds MemoryServers %d", cfg.ReplicationFactor, cfg.MemoryServers)
	}
	p := cfg.Fabric.toSim()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Cluster{cl: cluster.New(cluster.Config{
		NumMS:             cfg.MemoryServers,
		NumCS:             cfg.ComputeServers,
		MaxMS:             cfg.MaxMemoryServers,
		ReplicationFactor: cfg.ReplicationFactor,
		Params:            p,
	})}, nil
}

// MemoryServers returns the memory-server count.
func (c *Cluster) MemoryServers() int { return c.cl.NumMS() }

// ComputeServers returns the compute-server count.
func (c *Cluster) ComputeServers() int { return c.cl.NumCS() }

// KillComputeServer simulates the crash of compute server cs: every session
// bound to it fails — in-flight operations abort with no effect at their
// next fabric verb, and all further calls on those sessions report
// ErrSessionDead. Locks the dead sessions held become reclaimable by
// survivors once the liveness lease expires, and splits they left half-done
// are completed by Tree.Recover. The memory servers are untouched: in the
// one-sided design the client is the unit of failure.
func (c *Cluster) KillComputeServer(cs int) error {
	if cs < 0 || cs >= c.cl.NumCS() {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrBadComputeServer, cs, c.cl.NumCS())
	}
	c.cl.Kill(cs, 0)
	return nil
}

// ScheduleCrash arms a deterministic crash for fault-injection tests:
// compute server cs fails at its n-th subsequent fabric operation (n >= 1
// counts verbs issued by any of the server's sessions from now). The crash
// then behaves exactly like KillComputeServer — in particular, an
// operation mid-flight at that verb is dropped with no effect, which is
// how tests place a crash inside a write's critical section.
func (c *Cluster) ScheduleCrash(cs int, n int64) error {
	if cs < 0 || cs >= c.cl.NumCS() {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrBadComputeServer, cs, c.cl.NumCS())
	}
	if n < 1 {
		return fmt.Errorf("sherman: ScheduleCrash needs n >= 1, got %d", n)
	}
	c.cl.Faults().KillAtVerb(cs, n)
	return nil
}

// RestartComputeServer revives a killed compute server under a fresh
// incarnation. Sessions opened before the crash stay dead — open new ones.
func (c *Cluster) RestartComputeServer(cs int) error {
	if cs < 0 || cs >= c.cl.NumCS() {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrBadComputeServer, cs, c.cl.NumCS())
	}
	c.cl.Restart(cs)
	return nil
}

// ComputeServerAlive reports whether compute server cs is currently up.
func (c *Cluster) ComputeServerAlive(cs int) bool {
	return cs >= 0 && cs < c.cl.NumCS() && !c.cl.Faults().Dead(cs)
}

// KillMemoryServer simulates the permanent death of memory server ms: its
// NIC stops answering, reads of its memory return zeros, and writes to it
// are lost. With replication enabled the cluster fails over synchronously —
// the freshest complete replica of every chunk the server owned is promoted
// and all acknowledged writes remain readable; run Tree.ReReplicate
// afterwards to restore full redundancy. Without replication the server's
// data is simply gone (the call still succeeds; it models the failure the
// replication subsystem exists to survive). Memory server 0 holds the
// cluster superblock and cannot be killed, and a dead server cannot be
// killed twice.
func (c *Cluster) KillMemoryServer(ms int) error {
	return c.cl.KillMS(ms)
}

// MemoryServerAlive reports whether memory server ms is currently up.
func (c *Cluster) MemoryServerAlive(ms int) bool {
	return ms >= 0 && ms < c.cl.NumMS() && c.cl.MSAlive(ms)
}

// MemoryUsage returns the total host memory currently materialized across
// all memory servers, in bytes.
func (c *Cluster) MemoryUsage() uint64 {
	var n uint64
	for _, s := range c.cl.F.Servers() {
		n += s.Capacity()
	}
	return n
}

// AllocStats reports allocator activity since the cluster started.
func (c *Cluster) AllocStats() AllocStats {
	return AllocStats{
		ChunkRPCs: c.cl.AllocStats.Chunks.Load(),
		Nodes:     c.cl.AllocStats.Nodes.Load(),
	}
}

// AllocStats summarizes the two-stage allocator (§4.2.4): ChunkRPCs is the
// number of 8 MB chunk allocations that reached a memory thread; Nodes is
// the number of node allocations served, almost all of them locally.
type AllocStats struct {
	ChunkRPCs int64
	Nodes     int64
}
