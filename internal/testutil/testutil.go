// Package testutil is the shared deterministic test harness: the
// TwoLevel/Checksum × Combine configuration matrix, seeded RNG streams,
// cluster/tree setup with Validate-on-exit, and the in-memory model map the
// differential oracle suites check the tree against. Before it existed,
// every property suite (batch, pipeline, fault, core) carried its own copy
// of this grid-runner; they all run on this one now, so a new suite is a
// function body, not another scaffold.
package testutil

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"sherman/internal/cluster"
	"sherman/internal/core"
	"sherman/internal/hocl"
	"sherman/internal/layout"
)

// SmallNodeSize is the node size the grids default to: tiny nodes force
// deep trees and frequent splits at test scale.
const SmallNodeSize = 256

// Axes is one cell of the ablation matrix every equivalence property must
// hold across: the consistency layout (two-level versions vs checksum) ×
// command combination on or off. The lock mode rides along with the layout
// — Sherman's on-chip hierarchical locks with the two-level layout, the
// FG-style host-memory baseline with checksums — so both lock-word formats
// are exercised too.
type Axes struct {
	TwoLevel bool
	Combine  bool
}

// Matrix returns all four cells.
func Matrix() []Axes {
	return []Axes{
		{TwoLevel: true, Combine: true},
		{TwoLevel: true, Combine: false},
		{TwoLevel: false, Combine: true},
		{TwoLevel: false, Combine: false},
	}
}

// Name renders the cell for subtest names.
func (a Axes) Name() string {
	mode := "checksum"
	if a.TwoLevel {
		mode = "two-level"
	}
	return fmt.Sprintf("%s/combine=%v", mode, a.Combine)
}

// Config builds the cell's core configuration at the given node size (0 =
// SmallNodeSize), with a deliberately small lock table so grid tests that
// build many clusters stay light.
func (a Axes) Config(nodeSize int) core.Config {
	if nodeSize == 0 {
		nodeSize = SmallNodeSize
	}
	mode, locks := layout.Checksum, hocl.Baseline()
	if a.TwoLevel {
		mode, locks = layout.TwoLevel, hocl.Sherman()
	}
	return core.Config{
		Format:     layout.NewFormat(mode, 8, nodeSize),
		Combine:    a.Combine,
		Locks:      locks,
		LocksPerMS: 1024,
	}
}

// SmallFormat is the classic small-node format used across core tests.
func SmallFormat(mode layout.Mode) layout.Format {
	return layout.NewFormat(mode, 8, SmallNodeSize)
}

// Configs returns the two standard full-system configurations — Sherman and
// FG+ — at the small test geometry (the historic configsUnderTest pair).
func Configs() []core.Config {
	sherman := core.ShermanConfig()
	sherman.Format = SmallFormat(layout.TwoLevel)
	fg := core.FGPlusConfig()
	fg.Format = SmallFormat(layout.Checksum)
	return []core.Config{sherman, fg}
}

// RunMatrix runs fn once per matrix cell, as named subtests.
func RunMatrix(t *testing.T, fn func(t *testing.T, ax Axes)) {
	t.Helper()
	for _, ax := range Matrix() {
		t.Run(ax.Name(), func(t *testing.T) { fn(t, ax) })
	}
}

// RunConfigs runs fn once per standard configuration, as named subtests.
func RunConfigs(t *testing.T, fn func(t *testing.T, cfg core.Config)) {
	t.Helper()
	for _, cfg := range Configs() {
		t.Run(cfg.Name(), func(t *testing.T) { fn(t, cfg) })
	}
}

// RunSeeds runs fn for seeds 1..n as named subtests — the deterministic
// replacement for testing/quick: a failure names the seed, and re-running
// the same binary reproduces it exactly.
func RunSeeds(t *testing.T, n int, fn func(t *testing.T, seed uint64)) {
	t.Helper()
	for seed := uint64(1); seed <= uint64(n); seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { fn(t, seed) })
	}
}

// RNG returns the deterministic random stream for a seed. All harness users
// derive their randomness here so a test's behavior is a pure function of
// its seed.
func RNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x7e57ab1e))
}

// NewCluster builds a test cluster (with scale-out headroom, so elastic
// suites can add servers without special setup).
func NewCluster(tb testing.TB, numMS, numCS int) *cluster.Cluster {
	tb.Helper()
	return cluster.New(cluster.Config{NumMS: numMS, NumCS: numCS, MaxMS: numMS + 4})
}

// NewTree creates a tree and registers Validate-on-exit: when the test (and
// every goroutine it waited for) is done, the tree's structural invariants
// are checked once more, so a suite cannot pass while quietly corrupting
// the tree. Skipped when the test already failed — the original failure is
// the interesting one.
func NewTree(tb testing.TB, cl *cluster.Cluster, cfg core.Config) *core.Tree {
	tb.Helper()
	tr := core.New(cl, cfg)
	tb.Cleanup(func() {
		if tb.Failed() {
			return
		}
		if err := tr.Validate(); err != nil {
			tb.Errorf("Validate on exit: %v", err)
		}
	})
	return tr
}

// Bulk loads n sequential keys (1..n) with the harness's derived values
// (BulkValue) and returns them.
func Bulk(tb testing.TB, tr *core.Tree, n int) []layout.KV {
	tb.Helper()
	kvs := make([]layout.KV, n)
	for i := range kvs {
		k := uint64(i + 1)
		kvs[i] = layout.KV{Key: k, Value: BulkValue(k)}
	}
	tr.Bulkload(kvs)
	return kvs
}

// BulkValue derives the deterministic bulkloaded value of a key.
func BulkValue(k uint64) uint64 {
	v := k * 0x9e3779b97f4a7c15
	if v == 0 {
		v = 1
	}
	return v
}

// Model is the in-memory reference map of the differential oracle: the
// obviously-correct single-threaded implementation of the tree's contract
// that random operation streams are checked against.
type Model struct {
	m map[uint64]uint64
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{m: make(map[uint64]uint64)} }

// Put stores (k, v).
func (m *Model) Put(k, v uint64) { m.m[k] = v }

// Get returns the stored value.
func (m *Model) Get(k uint64) (uint64, bool) {
	v, ok := m.m[k]
	return v, ok
}

// Delete removes k, reporting whether it was present.
func (m *Model) Delete(k uint64) bool {
	_, ok := m.m[k]
	delete(m.m, k)
	return ok
}

// Scan returns up to span pairs with key >= from in ascending order.
func (m *Model) Scan(from uint64, span int) []layout.KV {
	keys := make([]uint64, 0, len(m.m))
	for k := range m.m {
		if k >= from {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if len(keys) > span {
		keys = keys[:span]
	}
	out := make([]layout.KV, len(keys))
	for i, k := range keys {
		out[i] = layout.KV{Key: k, Value: m.m[k]}
	}
	return out
}

// Len returns the number of live keys.
func (m *Model) Len() int { return len(m.m) }

// Each calls fn for every (k, v) pair in unspecified order.
func (m *Model) Each(fn func(k, v uint64)) {
	for k, v := range m.m {
		fn(k, v)
	}
}
