package sherman

import (
	"errors"
	"fmt"
	"sync"

	"sherman/internal/alloc"
	"sherman/internal/cluster"
	"sherman/internal/core"
	"sherman/internal/sim"
	"sherman/internal/transport/tcp"
)

// Transport backends selectable via ClusterConfig.Transport.
const (
	// TransportSim runs the virtual-time RDMA simulator in-process: full
	// fault injection, replication, elasticity, and calibrated timing. The
	// default.
	TransportSim = "sim"
	// TransportTCP runs against real memory-server processes (cmd/shermand)
	// over TCP with real clocks. Replication and memory-server failover are
	// real here — a membership service heartbeats the servers, and
	// KillMemoryServer SIGKILLs a launched process. Compute-side fault
	// injection, elasticity, and live migration are sim-only; their methods
	// return ErrSimOnly.
	TransportTCP = "tcp"
)

var (
	// ErrBadFabricParams rejects a FabricParams field that is out of range
	// for the selected transport; the error message names the field.
	ErrBadFabricParams = errors.New("sherman: bad fabric parameter")
	// ErrSimOnly rejects an operation (fault injection, replication,
	// elasticity) on a cluster whose transport is a real network.
	ErrSimOnly = errors.New("sherman: operation requires the simulated transport")
)

// ClusterConfig sizes a disaggregated-memory cluster.
type ClusterConfig struct {
	// MemoryServers is the number of memory servers (MSs). The paper's
	// testbed emulates 8.
	MemoryServers int

	// ComputeServers is the number of compute servers (CSs). The paper's
	// testbed emulates 8; each runs many client threads.
	ComputeServers int

	// Transport selects the fabric backend: "" or TransportSim for the
	// in-process virtual-time simulator, TransportTCP for real shermand
	// memory-server processes over TCP.
	Transport string

	// Endpoints lists the shermand addresses ("host:port", index = memory
	// server id) when Transport is TransportTCP. Empty means NewCluster
	// launches MemoryServers shermand processes on loopback and owns them
	// (Close tears them down); non-empty means the servers are external,
	// and MemoryServers must be 0 or match len(Endpoints).
	Endpoints []string

	// MaxMemoryServers caps online scale-out (AddMemoryServer): lock tables
	// and other per-server state are sized for it at creation. 0 means
	// MemoryServers plus a small headroom. Sim-only.
	MaxMemoryServers int

	// ReplicationFactor is the number of copies of every data chunk,
	// including the primary. 0 or 1 disables replication (the default: no
	// redundancy, matching the paper's single-copy design). At factor k every
	// chunk's writes are mirrored to k-1 replica chunks on distinct other
	// memory servers, and a memory-server death promotes the freshest replica
	// of each lost chunk with zero lost acknowledged writes (see DESIGN.md
	// §12; §13 for the TCP backend's membership-driven variant). Must not
	// exceed MemoryServers.
	ReplicationFactor int

	// Fabric overrides the simulated network timing model. The zero value
	// uses defaults calibrated to the paper's 100 Gbps ConnectX-5 testbed.
	// Setting any field on a TransportTCP cluster is an error — a real
	// network's timing is not configurable.
	Fabric FabricParams
}

// FabricParams exposes the tunable constants of the simulated RDMA fabric.
// All times are virtual nanoseconds. Zero fields take the calibrated
// defaults (see DESIGN.md §3); negative values are rejected with
// ErrBadFabricParams naming the field.
type FabricParams struct {
	// RTTNS is the one-sided verb round-trip time (paper: <= 2 us).
	RTTNS int64
	// HostAtomicNS is the in-NIC service time of an RDMA_ATOMIC targeting
	// host memory (two PCIe transactions, §3.2.2).
	HostAtomicNS int64
	// OnChipAtomicNS is the service time of an RDMA_ATOMIC targeting NIC
	// on-chip device memory (§4.3).
	OnChipAtomicNS int64
	// AtomicBuckets is the number of NIC-internal buckets serializing
	// conflicting atomics (§3.2.2; e.g. 4096).
	AtomicBuckets int
	// OnChipMemBytes is the NIC device-memory capacity (256 KB on
	// ConnectX-5).
	OnChipMemBytes int
}

// validate rejects out-of-range fields with a typed error naming the
// offender, instead of silently clamping or deferring to a generic
// simulator error.
func (p FabricParams) validate() error {
	switch {
	case p.RTTNS < 0:
		return fmt.Errorf("%w: RTTNS = %d, must be >= 0 (0 means default)", ErrBadFabricParams, p.RTTNS)
	case p.HostAtomicNS < 0:
		return fmt.Errorf("%w: HostAtomicNS = %d, must be >= 0 (0 means default)", ErrBadFabricParams, p.HostAtomicNS)
	case p.OnChipAtomicNS < 0:
		return fmt.Errorf("%w: OnChipAtomicNS = %d, must be >= 0 (0 means default)", ErrBadFabricParams, p.OnChipAtomicNS)
	case p.AtomicBuckets < 0:
		return fmt.Errorf("%w: AtomicBuckets = %d, must be >= 0 (0 means default)", ErrBadFabricParams, p.AtomicBuckets)
	case p.OnChipMemBytes < 0:
		return fmt.Errorf("%w: OnChipMemBytes = %d, must be >= 0 (0 means default)", ErrBadFabricParams, p.OnChipMemBytes)
	}
	return nil
}

// firstSet names the first non-zero field, for rejecting fabric overrides
// on a transport that has no simulated fabric.
func (p FabricParams) firstSet() string {
	switch {
	case p.RTTNS != 0:
		return "RTTNS"
	case p.HostAtomicNS != 0:
		return "HostAtomicNS"
	case p.OnChipAtomicNS != 0:
		return "OnChipAtomicNS"
	case p.AtomicBuckets != 0:
		return "AtomicBuckets"
	case p.OnChipMemBytes != 0:
		return "OnChipMemBytes"
	}
	return ""
}

func (p FabricParams) toSim() sim.Params {
	d := sim.DefaultParams()
	if p.RTTNS != 0 {
		d.RTTNS = p.RTTNS
	}
	if p.HostAtomicNS != 0 {
		d.HostAtomicNS = p.HostAtomicNS
	}
	if p.OnChipAtomicNS != 0 {
		d.OnChipAtomicNS = p.OnChipAtomicNS
	}
	if p.AtomicBuckets != 0 {
		d.AtomicBuckets = p.AtomicBuckets
	}
	if p.OnChipMemBytes != 0 {
		d.OnChipMemBytes = p.OnChipMemBytes
	}
	return d
}

// Cluster is a running deployment: memory servers, compute servers, and the
// fabric between them — simulated in-process or real shermand processes
// over TCP, selected by ClusterConfig.Transport. Create trees with
// CreateTree.
type Cluster struct {
	be core.Backend      // the active backend, whichever transport is selected
	cl *cluster.Cluster  // simulated deployment; nil on TransportTCP
	tc *tcp.Cluster      // TCP deployment; nil on TransportSim
	ts *tcp.LocalServers // shermand processes this cluster launched and owns

	treeMu sync.Mutex
	trees  []*Tree // registered by CreateTree, for DrainMemoryServer
}

// NewCluster builds and starts a cluster on the configured transport.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.ComputeServers <= 0 {
		return nil, errors.New("sherman: ComputeServers must be positive")
	}
	if err := cfg.Fabric.validate(); err != nil {
		return nil, err
	}
	switch cfg.Transport {
	case "", TransportSim:
		return newSimCluster(cfg)
	case TransportTCP:
		return newTCPCluster(cfg)
	default:
		return nil, fmt.Errorf("sherman: unknown Transport %q (want %q or %q)", cfg.Transport, TransportSim, TransportTCP)
	}
}

func newSimCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.MemoryServers <= 0 {
		return nil, errors.New("sherman: MemoryServers must be positive")
	}
	if cfg.MemoryServers > 1<<15 {
		return nil, fmt.Errorf("sherman: MemoryServers %d exceeds the 15-bit server id space", cfg.MemoryServers)
	}
	if len(cfg.Endpoints) != 0 {
		return nil, fmt.Errorf("sherman: Endpoints are TransportTCP-only (transport is %q)", TransportSim)
	}
	if cfg.MaxMemoryServers != 0 && (cfg.MaxMemoryServers < cfg.MemoryServers || cfg.MaxMemoryServers > 1<<15) {
		return nil, fmt.Errorf("sherman: MaxMemoryServers %d outside [%d, %d]", cfg.MaxMemoryServers, cfg.MemoryServers, 1<<15)
	}
	if cfg.ReplicationFactor < 0 || cfg.ReplicationFactor > alloc.MaxReplicationFactor {
		return nil, fmt.Errorf("sherman: ReplicationFactor %d outside [0, %d]", cfg.ReplicationFactor, alloc.MaxReplicationFactor)
	}
	if cfg.ReplicationFactor > cfg.MemoryServers {
		return nil, fmt.Errorf("sherman: ReplicationFactor %d exceeds MemoryServers %d", cfg.ReplicationFactor, cfg.MemoryServers)
	}
	p := cfg.Fabric.toSim()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cl := cluster.New(cluster.Config{
		NumMS:             cfg.MemoryServers,
		NumCS:             cfg.ComputeServers,
		MaxMS:             cfg.MaxMemoryServers,
		ReplicationFactor: cfg.ReplicationFactor,
		Params:            p,
	})
	return &Cluster{be: cl, cl: cl}, nil
}

func newTCPCluster(cfg ClusterConfig) (*Cluster, error) {
	if f := cfg.Fabric.firstSet(); f != "" {
		return nil, fmt.Errorf("%w: %s is set, but Transport %q has no simulated fabric to tune", ErrBadFabricParams, f, TransportTCP)
	}
	if cfg.ReplicationFactor < 0 || cfg.ReplicationFactor > alloc.MaxReplicationFactor {
		return nil, fmt.Errorf("sherman: ReplicationFactor %d outside [0, %d]", cfg.ReplicationFactor, alloc.MaxReplicationFactor)
	}
	if cfg.MaxMemoryServers != 0 {
		return nil, fmt.Errorf("%w: MaxMemoryServers (online scale-out)", ErrSimOnly)
	}
	endpoints := cfg.Endpoints
	var ts *tcp.LocalServers
	if len(endpoints) == 0 {
		if cfg.MemoryServers <= 0 {
			return nil, errors.New("sherman: MemoryServers must be positive when no Endpoints are given")
		}
		var err error
		ts, err = tcp.LaunchLocal(cfg.MemoryServers)
		if err != nil {
			return nil, err
		}
		endpoints = ts.Endpoints
	} else if cfg.MemoryServers != 0 && cfg.MemoryServers != len(endpoints) {
		return nil, fmt.Errorf("sherman: MemoryServers %d does not match %d Endpoints", cfg.MemoryServers, len(endpoints))
	}
	if cfg.ReplicationFactor > len(endpoints) {
		if ts != nil {
			ts.Stop()
		}
		return nil, fmt.Errorf("sherman: ReplicationFactor %d exceeds %d memory servers", cfg.ReplicationFactor, len(endpoints))
	}
	tc, err := tcp.NewCluster(endpoints, cfg.ComputeServers, tcp.Options{
		ReplicationFactor: cfg.ReplicationFactor,
	})
	if err != nil {
		if ts != nil {
			ts.Stop()
		}
		return nil, err
	}
	return &Cluster{be: tc, tc: tc, ts: ts}, nil
}

// Close releases the cluster's external resources: on TransportTCP it shuts
// down the shermand processes the cluster launched (external Endpoints are
// left running) and drops the metadata connections. A simulated cluster
// holds no external resources and Close is a no-op.
func (c *Cluster) Close() {
	if c.tc != nil {
		if c.ts != nil {
			c.tc.Shutdown()
		} else {
			c.tc.Close()
		}
	}
	if c.ts != nil {
		c.ts.Stop()
	}
}

// numMS returns the current memory-server count on either backend.
func (c *Cluster) numMS() int {
	if c.cl != nil {
		return c.cl.NumMS()
	}
	return c.tc.NumMS()
}

// anchorClock aligns a fresh handle's clock with the cluster's latest
// virtual verb time, so maintenance sweeps (Recover, migration,
// re-replication) report their own span rather than the cluster's age. Real
// clocks are already aligned and need no anchoring.
func (c *Cluster) anchorClock(h *core.Handle) {
	if c.cl != nil {
		h.SetClock(c.cl.Faults().LatestVerbV())
	}
}

// MemoryServers returns the memory-server count.
func (c *Cluster) MemoryServers() int { return c.numMS() }

// ComputeServers returns the compute-server count.
func (c *Cluster) ComputeServers() int { return c.be.NumCS() }

// KillComputeServer simulates the crash of compute server cs: every session
// bound to it fails — in-flight operations abort with no effect at their
// next fabric verb, and all further calls on those sessions report
// ErrSessionDead. Locks the dead sessions held become reclaimable by
// survivors once the liveness lease expires, and splits they left half-done
// are completed by Tree.Recover. The memory servers are untouched: in the
// one-sided design the client is the unit of failure. Sim-only.
func (c *Cluster) KillComputeServer(cs int) error {
	if c.cl == nil {
		return fmt.Errorf("%w: KillComputeServer", ErrSimOnly)
	}
	if cs < 0 || cs >= c.cl.NumCS() {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrBadComputeServer, cs, c.cl.NumCS())
	}
	c.cl.Kill(cs, 0)
	return nil
}

// ScheduleCrash arms a deterministic crash for fault-injection tests:
// compute server cs fails at its n-th subsequent fabric operation (n >= 1
// counts verbs issued by any of the server's sessions from now). The crash
// then behaves exactly like KillComputeServer — in particular, an
// operation mid-flight at that verb is dropped with no effect, which is
// how tests place a crash inside a write's critical section. Sim-only.
func (c *Cluster) ScheduleCrash(cs int, n int64) error {
	if c.cl == nil {
		return fmt.Errorf("%w: ScheduleCrash", ErrSimOnly)
	}
	if cs < 0 || cs >= c.cl.NumCS() {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrBadComputeServer, cs, c.cl.NumCS())
	}
	if n < 1 {
		return fmt.Errorf("sherman: ScheduleCrash needs n >= 1, got %d", n)
	}
	c.cl.Faults().KillAtVerb(cs, n)
	return nil
}

// RestartComputeServer revives a killed compute server under a fresh
// incarnation. Sessions opened before the crash stay dead — open new ones.
// Sim-only.
func (c *Cluster) RestartComputeServer(cs int) error {
	if c.cl == nil {
		return fmt.Errorf("%w: RestartComputeServer", ErrSimOnly)
	}
	if cs < 0 || cs >= c.cl.NumCS() {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrBadComputeServer, cs, c.cl.NumCS())
	}
	c.cl.Restart(cs)
	return nil
}

// ComputeServerAlive reports whether compute server cs is currently up.
func (c *Cluster) ComputeServerAlive(cs int) bool {
	if cs < 0 || cs >= c.be.NumCS() {
		return false
	}
	if c.cl == nil {
		return true // real compute servers are this process; it is running
	}
	return !c.cl.Faults().Dead(cs)
}

// KillMemoryServer fails memory server ms permanently: reads of its memory
// return zeros, and writes to it are lost. On the simulator its NIC stops
// answering; on TransportTCP the shermand process this cluster launched is
// SIGKILLed for real (external Endpoints are not this process's to kill and
// return ErrSimOnly). With replication enabled the cluster fails over
// synchronously — the freshest complete replica of every chunk the server
// owned is promoted and all acknowledged writes remain readable; run
// Tree.ReReplicate afterwards to restore full redundancy. Without
// replication the server's data is simply gone (the call still succeeds; it
// models the failure the replication subsystem exists to survive). Memory
// server 0 holds the cluster superblock and cannot be killed, and a dead
// server cannot be killed twice.
func (c *Cluster) KillMemoryServer(ms int) error {
	if c.cl != nil {
		return c.cl.KillMS(ms)
	}
	if c.ts == nil {
		return fmt.Errorf("%w: KillMemoryServer on external Endpoints (this process does not own the servers)", ErrSimOnly)
	}
	if ms <= 0 || ms >= c.numMS() {
		return fmt.Errorf("sherman: cannot kill memory server %d (valid: 1..%d; server 0 holds the superblock)", ms, c.numMS()-1)
	}
	if !c.tc.MSAlive(ms) {
		return fmt.Errorf("sherman: memory server %d is already dead", ms)
	}
	if err := c.ts.Kill(ms); err != nil {
		return err
	}
	// Publish the death (and run failover promotion) immediately rather
	// than waiting for a heartbeat or client verb to trip over the corpse.
	c.tc.MarkDead(ms)
	return nil
}

// MemoryServerAlive reports whether memory server ms is currently up. On
// TransportTCP a server is considered dead once any connection to it
// fails.
func (c *Cluster) MemoryServerAlive(ms int) bool {
	return ms >= 0 && ms < c.numMS() && c.be.MSAlive(ms)
}

// MemoryUsage returns the total host memory currently materialized across
// all memory servers, in bytes. On TransportTCP the memory lives in other
// processes and is not tracked; the call returns 0.
func (c *Cluster) MemoryUsage() uint64 {
	if c.cl == nil {
		return 0
	}
	var n uint64
	for _, s := range c.cl.F.Servers() {
		n += s.Capacity()
	}
	return n
}

// AllocStats reports allocator activity since the cluster started.
func (c *Cluster) AllocStats() AllocStats {
	var st *alloc.Stats
	if c.cl != nil {
		st = &c.cl.AllocStats
	} else {
		st = &c.tc.AllocStats
	}
	return AllocStats{
		ChunkRPCs: st.Chunks.Load(),
		Nodes:     st.Nodes.Load(),
	}
}

// AllocStats summarizes the two-stage allocator (§4.2.4): ChunkRPCs is the
// number of 8 MB chunk allocations that reached a memory thread; Nodes is
// the number of node allocations served, almost all of them locally.
type AllocStats struct {
	ChunkRPCs int64
	Nodes     int64
}
