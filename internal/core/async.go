package core

import (
	"sherman/internal/sim"
	"sherman/internal/stats"
)

// Async is one session's pipelined executor: it interleaves up to depth
// logical coroutines ("lanes") over one Handle so that the round trips of
// independent operations overlap on the client's virtual timeline instead
// of serializing, the way Sherman's real clients run multiple coroutines
// per thread to hide RDMA latency.
//
// The handle's clock plays the role of the coroutine scheduler ("driver"):
// between operations it advances only by the per-op issue cost, plus — when
// all depth lanes are busy — to the earliest lane's completion, exactly like
// a scheduler that regains control at the next completion event. Each
// operation executes on the earliest-free lane's timeline (rdma.Client.
// OnTimeline), so its verbs' latencies overlap the other lanes' while the
// issue-side NIC costs still serialize on the shared sim.Resources.
//
// Real execution stays strictly sequential in submission order — lanes are
// virtual-time bookkeeping, not goroutines — so results are sequential by
// construction and no new lock-interleaving states exist. To keep the
// *timing* honest too, the executor orders dependent operations the way a
// real pipelined client must: an operation on key k starts no earlier than
// the completion of an outstanding write to k (and a write waits for
// outstanding reads of k, which would otherwise observe it early), and a
// scan orders after every outstanding write and bars later writes until it
// completes. Independent operations overlap freely.
//
// Async is owned by one goroutine, like the Handle it wraps.
type Async struct {
	h       *Handle
	lanes   *sim.Lanes
	issueNS int64

	// deps orders same-key operations; entries become inert once the driver
	// clock passes them and are swept lazily.
	deps map[uint64]keyDep
	// lastWriteDone is the latest completion horizon of any write issued so
	// far; scans start after it.
	lastWriteDone int64
	// barrier is the completion horizon of the latest scan: later writes
	// and scans start after it (later reads may overlap — a scan writes
	// nothing they could observe).
	barrier int64
	// busyLo/busyHi bound the current merged busy interval, used to
	// accumulate the union of execution intervals (the latency-hiding
	// denominator). Tracking both ends keeps the union exact when a
	// dependency-stalled op raises the high mark past a later op's
	// earlier start.
	busyLo, busyHi int64

	// runOp/runIssueV/runRes frame the operation runFn executes. runFn is
	// bound once at construction so Submit passes no per-op closure through
	// the VirtualTimer interface — an escaping closure would cost an
	// allocation per pipelined operation (see the alloc gate).
	runOp     Op
	runIssueV int64
	runRes    OpResult
	runFn     func()

	// real drives physical concurrency when the transport has no virtual
	// timer (see realasync.go); nil on the simulator and at depth 1.
	real *realExec
}

// keyDep is the outstanding-op ordering state of one key.
type keyDep struct {
	write int64 // completion horizon of the last write to the key
	any   int64 // completion horizon of the last op of any kind on the key
}

// NewAsync wraps h in a pipelined executor bounded to depth outstanding
// operations (clamped to >= 1). Depth 1 is the synchronous client: ops run
// back-to-back on the handle's own clock with no issue overhead and no
// pipeline accounting, so legacy callers are unchanged.
func (h *Handle) NewAsync(depth int) *Async {
	a := &Async{h: h, lanes: sim.NewLanes(depth), deps: make(map[uint64]keyDep)}
	if a.lanes.N() > 1 {
		a.issueNS = h.tm.PipelineIssueNS
	}
	a.runFn = func() { a.runRes = a.run(a.runOp, a.runIssueV) }
	if depth > 1 && h.vt == nil {
		a.real = newRealExec(a, depth)
	}
	return a
}

// Pending is one submitted operation. On the simulator the result is already
// materialized (Submit runs the op inline on the virtual timeline) and Wait
// merely advances the driver clock; on a real transport at depth > 1 the op
// runs on a worker goroutine and Wait genuinely blocks for it.
type Pending struct {
	a    *Async
	tk   *ticket
	res  OpResult
	done int64
}

// Deferred reports whether the result is still in flight on a worker
// goroutine (real transport, depth > 1). When false, Result is already
// materialized.
func (p Pending) Deferred() bool { return p.tk != nil }

// Result returns the materialized result of a non-deferred Pending without
// touching the driver clock.
func (p Pending) Result() (OpResult, int64) { return p.res, p.done }

// Wait blocks until the operation completes and returns its result and
// completion time (virtual on the simulator, wall-clock nanos on a real
// transport). Owner-goroutine only, like every Async method.
func (p Pending) Wait() (OpResult, int64) {
	if p.tk != nil {
		return p.a.real.wait(p.tk)
	}
	p.a.WaitUntil(p.done)
	return p.res, p.done
}

// SubmitOp submits op through whichever executor is active and returns its
// Pending. This is the entry point the session layer uses; Submit remains
// the simulator-only path with materialized results.
func (a *Async) SubmitOp(op Op) Pending {
	if a.real != nil {
		return Pending{a: a, tk: a.real.submit(op)}
	}
	res, done := a.Submit(op)
	return Pending{a: a, res: res, done: done}
}

// ForEachWorker visits the worker handles of the real executor (no-op on
// the simulator). Call after Flush: workers must be quiescent, since their
// per-handle counters are read without synchronization.
func (a *Async) ForEachWorker(fn func(*Handle)) {
	if a.real == nil {
		return
	}
	a.real.mu.Lock()
	ws := append([]*Handle(nil), a.real.workers...)
	a.real.mu.Unlock()
	for _, h := range ws {
		fn(h)
	}
}

// Depth returns the pipeline depth (the bound on outstanding operations).
func (a *Async) Depth() int { return a.lanes.N() }

// Submit executes op with its round trips overlapping the other outstanding
// operations', returning its result and virtual completion time. The
// driver clock (h.C.Now() between calls) does not wait for the completion —
// use Flush or advance to the returned time (Future.Wait at the session
// layer) to observe it.
func (a *Async) Submit(op Op) (OpResult, int64) {
	h := a.h
	// Claim the earliest-free lane, waiting for its completion when all
	// depth lanes are busy.
	lane, laneDone := a.lanes.Min()
	h.C.AdvanceTo(laneDone)
	depthAtIssue := a.lanes.Busy(h.C.Now()) + 1
	h.C.Step(a.issueNS)
	issueV := h.C.Now()

	start := issueV
	switch op.Kind {
	case stats.OpLookup:
		if d, ok := a.deps[op.Key]; ok && d.write > start {
			start = d.write
		}
	case stats.OpInsert, stats.OpDelete:
		if op.Key == 0 {
			panic("core: key 0 is reserved")
		}
		if d, ok := a.deps[op.Key]; ok && d.any > start {
			start = d.any
		}
		if a.barrier > start {
			start = a.barrier
		}
	case stats.OpRange:
		if a.lastWriteDone > start {
			start = a.lastWriteDone
		}
		if a.barrier > start {
			start = a.barrier
		}
	}

	a.runOp, a.runIssueV = op, issueV
	done := h.onTimeline(start, a.runFn)
	res := a.runRes
	a.runRes = OpResult{} // don't pin a scan's KVs past its submission
	a.lanes.Set(lane, done)
	a.noteCompletion(op, done)
	a.recordPipeline(depthAtIssue, start, done)
	return res, done
}

// run executes one operation on the current (lane) timeline, with the same
// per-op accounting as the synchronous entry points. issueV is the driver
// clock at issue; the recorded latency is issue-to-completion, the latency
// a pipelined client observes (at depth 1 it equals the execution latency).
func (a *Async) run(op Op, issueV int64) OpResult {
	h := a.h
	h.m.BeginOp()
	switch op.Kind {
	case stats.OpLookup:
		v, found := h.lookupInner(op.Key)
		h.Rec.RecordOp(stats.OpLookup, h.C.Now()-issueV)
		return OpResult{Value: v, Found: found}
	case stats.OpInsert:
		dataBytes := h.insertInner(op.Key, op.Value)
		h.Rec.RecordOp(stats.OpInsert, h.C.Now()-issueV)
		h.Rec.WriteRoundTrips.Record(int(h.m.OpRoundTrips))
		h.Rec.WriteSizes.Record(dataBytes)
		return OpResult{}
	case stats.OpDelete:
		found, dataBytes := h.deleteInner(op.Key)
		h.Rec.RecordOp(stats.OpDelete, h.C.Now()-issueV)
		h.Rec.WriteRoundTrips.Record(int(h.m.OpRoundTrips))
		if found {
			h.Rec.WriteSizes.Record(dataBytes)
		}
		return OpResult{Found: found}
	case stats.OpRange:
		if op.Span <= 0 {
			return OpResult{}
		}
		out := h.rangeInner(op.Key, op.Span)
		h.Rec.RecordOp(stats.OpRange, h.C.Now()-issueV)
		return OpResult{KVs: out}
	}
	return OpResult{}
}

// noteCompletion updates the ordering state with op's completion horizon.
func (a *Async) noteCompletion(op Op, done int64) {
	switch op.Kind {
	case stats.OpLookup:
		d := a.deps[op.Key]
		if done > d.any {
			d.any = done
		}
		a.deps[op.Key] = d
	case stats.OpInsert, stats.OpDelete:
		d := a.deps[op.Key]
		if done > d.write {
			d.write = done
		}
		if done > d.any {
			d.any = done
		}
		a.deps[op.Key] = d
		if done > a.lastWriteDone {
			a.lastWriteDone = done
		}
	case stats.OpRange:
		if done > a.barrier {
			a.barrier = done
		}
	}
	a.sweepDeps()
}

// sweepDeps lazily drops ordering entries the driver clock has passed —
// they can no longer delay anything, since every start is at least the
// driver clock.
func (a *Async) sweepDeps() {
	if len(a.deps) <= 8*a.lanes.N()+16 {
		return
	}
	now := a.h.C.Now()
	for k, d := range a.deps {
		if d.any <= now {
			delete(a.deps, k)
		}
	}
}

// recordPipeline accumulates the depth sample and latency-hiding terms for
// one executed unit. Depth-1 executors skip it so synchronous sessions
// report clean (empty) pipeline metrics. The busy union is maintained as
// one merged interval [busyLo, busyHi]: issue order keeps execution
// intervals overlapping or adjacent, so extending either end counts
// exactly the uncovered part of each new interval.
func (a *Async) recordPipeline(depth int, start, done int64) {
	if a.lanes.N() <= 1 {
		return
	}
	var busy int64
	switch {
	case start > a.busyHi || a.busyHi == 0:
		busy = done - start
		a.busyLo, a.busyHi = start, done
	default:
		if start < a.busyLo {
			busy += a.busyLo - start
			a.busyLo = start
		}
		if done > a.busyHi {
			busy += done - a.busyHi
			a.busyHi = done
		}
	}
	a.h.Rec.RecordPipelineOp(depth, done-start, busy)
}

// Flush drains the pipeline: the driver clock advances to the last
// outstanding completion, after which every submitted result is in the
// session's past.
func (a *Async) Flush() {
	if a.real != nil {
		a.real.flush()
	}
	a.h.C.AdvanceTo(a.lanes.Max())
	clear(a.deps)
}

// WaitUntil advances the driver clock to the given completion horizon —
// the timing half of waiting on one future without draining the rest.
func (a *Async) WaitUntil(done int64) { a.h.C.AdvanceTo(done) }

// Exec applies a mixed batch through the planner (see batch.go) with each
// planned unit — a leaf group or a scan — running on a lane timeline, so
// the batch combines per-leaf amortization with cross-group latency
// hiding. Exec orders after everything already outstanding and returns
// fully drained, so its results are plain values, not futures.
func (a *Async) Exec(ops []Op) []OpResult {
	if len(ops) == 0 {
		return nil
	}
	results := make([]OpResult, len(ops))
	a.ExecInto(ops, results)
	return results
}

// ExecInto is Exec writing its results into the caller's slice (len must
// equal len(ops)) — the allocation-free variant for callers that recycle a
// results buffer across batches.
func (a *Async) ExecInto(ops []Op, results []OpResult) {
	if len(ops) == 0 {
		return
	}
	if len(results) != len(ops) {
		panic("core: ExecInto results length mismatch")
	}
	clear(results) // a recycled buffer must not leak stale slots (not-found lookups never write theirs)
	a.Flush()
	h := a.h
	h.m.BeginOp()
	t0 := h.C.Now()
	scanNS := h.execOps(ops, a, results)
	a.Flush()
	if counts, points := opCounts(ops); points > 0 {
		// Scans record their own latency in execScan; exclude their
		// execution time from the drained window amortized over the
		// point operations.
		lat := h.C.Now() - t0 - scanNS
		if lat < 0 {
			lat = 0
		}
		h.Rec.RecordMixedBatch(counts, lat, h.m.OpRoundTrips)
	}
}

// unit runs one planned group on the earliest-free lane and returns its
// completion horizon. Groups of one Exec have disjoint key ranges except
// where a read group stops at a covered write — the planner floors that
// write unit at the read's completion — so otherwise only scans need
// cross-unit ordering.
func (a *Async) unit(write bool, floor int64, fn func()) int64 {
	h := a.h
	lane, laneDone := a.lanes.Min()
	h.C.AdvanceTo(laneDone)
	depthAtIssue := a.lanes.Busy(h.C.Now()) + 1
	h.C.Step(a.issueNS)
	start := h.C.Now()
	if floor > start {
		start = floor
	}
	if write && a.barrier > start {
		start = a.barrier
	}
	done := h.onTimeline(start, fn)
	a.lanes.Set(lane, done)
	if write && done > a.lastWriteDone {
		a.lastWriteDone = done
	}
	a.recordPipeline(depthAtIssue, start, done)
	return done
}

func (a *Async) readUnit(fn func()) int64               { return a.unit(false, 0, fn) }
func (a *Async) writeUnit(floor int64, fn func()) int64 { return a.unit(true, floor, fn) }

// scanUnit runs a scan ordered after every outstanding unit, and bars later
// writes until it completes — a scan must observe exactly the writes
// submitted before it.
func (a *Async) scanUnit(fn func()) {
	h := a.h
	lane, _ := a.lanes.Min()
	h.C.AdvanceTo(a.lanes.Max())
	depthAtIssue := 1
	h.C.Step(a.issueNS)
	start := h.C.Now()
	if a.barrier > start {
		start = a.barrier
	}
	done := h.onTimeline(start, fn)
	a.lanes.Set(lane, done)
	a.barrier = done
	a.recordPipeline(depthAtIssue, start, done)
}
