package core_test

import (
	"testing"

	core "sherman/internal/core"
	"sherman/internal/layout"
	"sherman/internal/testutil"
)

func TestStatsEmptyTree(t *testing.T) {
	for _, cfg := range testutil.Configs() {
		cl := testutil.NewCluster(t, 1, 1)
		tr := core.New(cl, cfg)
		st := tr.Stats()
		if st.Height != 1 || st.LeafNodes != 1 || st.InternalNodes != 0 || st.Entries != 0 {
			t.Errorf("%s: empty tree stats %+v", cfg.Name(), st)
		}
	}
}

func TestStatsAfterBulkload(t *testing.T) {
	for _, cfg := range testutil.Configs() {
		cl := testutil.NewCluster(t, 2, 1)
		tr := core.New(cl, cfg)
		const n = 10000
		kvs := make([]layout.KV, n)
		for i := range kvs {
			kvs[i] = layout.KV{Key: uint64(i + 1), Value: 7}
		}
		tr.Bulkload(kvs)
		st := tr.Stats()
		if st.Entries != n {
			t.Errorf("%s: entries = %d, want %d", cfg.Name(), st.Entries, n)
		}
		if st.Height < 2 {
			t.Errorf("%s: height = %d, want >= 2", cfg.Name(), st.Height)
		}
		// Bulkload packs to 80%: mean fill should be near that.
		if st.LeafFill < 0.7 || st.LeafFill > 0.9 {
			t.Errorf("%s: mean leaf fill %.2f, want ~0.8", cfg.Name(), st.LeafFill)
		}
		if st.BytesUsed != int64(st.LeafNodes+st.InternalNodes)*int64(cfg.Format.NodeSize) {
			t.Errorf("%s: bytes %d inconsistent with node counts", cfg.Name(), st.BytesUsed)
		}
		if st.String() == "" {
			t.Error("empty String()")
		}
	}
}

func TestCompactReclaimsFragmentation(t *testing.T) {
	for _, cfg := range testutil.Configs() {
		cl := testutil.NewCluster(t, 2, 1)
		tr := core.New(cl, cfg)
		h := tr.NewHandle(0, 0)
		const n = 8000
		for k := uint64(1); k <= n; k++ {
			h.Insert(k, k*3)
		}
		// Delete 90%: leaves become mostly empty but are not merged.
		for k := uint64(1); k <= n; k++ {
			if k%10 != 0 {
				h.Delete(k)
			}
		}
		frag := tr.Stats()

		res := tr.Compact()
		if res.EntriesKept != n/10 {
			t.Fatalf("%s: compact kept %d entries, want %d", cfg.Name(), res.EntriesKept, n/10)
		}
		if res.NodesAfter >= res.NodesBefore {
			t.Errorf("%s: compact did not shrink the tree: %d -> %d nodes",
				cfg.Name(), res.NodesBefore, res.NodesAfter)
		}
		if res.BytesReclaimed <= 0 {
			t.Errorf("%s: reclaimed %d bytes", cfg.Name(), res.BytesReclaimed)
		}

		packed := tr.Stats()
		if packed.LeafFill <= frag.LeafFill {
			t.Errorf("%s: fill did not improve: %.2f -> %.2f", cfg.Name(), frag.LeafFill, packed.LeafFill)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: validate after compact: %v", cfg.Name(), err)
		}

		// Fresh sessions see exactly the surviving data and can keep writing.
		h2 := tr.NewHandle(0, 1)
		for k := uint64(1); k <= n; k++ {
			v, ok := h2.Lookup(k)
			if k%10 == 0 {
				if !ok || v != k*3 {
					t.Fatalf("%s: survivor %d = (%d,%v)", cfg.Name(), k, v, ok)
				}
			} else if ok {
				t.Fatalf("%s: deleted key %d resurrected by compact", cfg.Name(), k)
			}
		}
		h2.Insert(n+1, 42)
		if v, ok := h2.Lookup(n + 1); !ok || v != 42 {
			t.Fatalf("%s: post-compact insert lost", cfg.Name())
		}
	}
}

func TestCompactEmptyTree(t *testing.T) {
	cfg := testutil.Configs()[0]
	cl := testutil.NewCluster(t, 1, 1)
	tr := core.New(cl, cfg)
	res := tr.Compact()
	if res.EntriesKept != 0 {
		t.Fatalf("compact of empty tree kept %d entries", res.EntriesKept)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	h := tr.NewHandle(0, 0)
	h.Insert(5, 50)
	if v, ok := h.Lookup(5); !ok || v != 50 {
		t.Fatalf("insert after empty compact = (%d,%v)", v, ok)
	}
}
