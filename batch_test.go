package sherman

import (
	"sync"
	"testing"

	"sherman/internal/testutil"
)

// TestBatchSequentialEquivalenceProperty checks, for deterministic seeds,
// through the public API, that PutBatch/GetBatch/DeleteBatch are observably
// equivalent to the same operations applied sequentially — including
// batches that straddle leaf splits and deletes of absent keys — across
// the shared harness's ablation grid.
func TestBatchSequentialEquivalenceProperty(t *testing.T) {
	for _, opts := range gridOptions() {
		opts := opts
		t.Run(opts.Advanced.name(), func(t *testing.T) {
			testutil.RunSeeds(t, 6, func(t *testing.T, seed uint64) {
				rng := testutil.RNG(seed)
				mk := func() *Session {
					c, err := NewCluster(ClusterConfig{MemoryServers: 2, ComputeServers: 1})
					if err != nil {
						t.Fatal(err)
					}
					return testTree(t, c, opts).Session(0)
				}
				seq, bat := mk(), mk()

				const keySpace = 300
				for round := 0; round < 5; round++ {
					n := int(rng.Uint64N(80)) + 1
					switch rng.Uint64N(3) {
					case 0:
						kvs := make([]KV, n)
						for i := range kvs {
							kvs[i] = KV{Key: rng.Uint64N(keySpace) + 1, Value: rng.Uint64() | 1}
						}
						for _, kv := range kvs {
							seq.Put(kv.Key, kv.Value)
						}
						bat.PutBatch(kvs)
					case 1:
						keys := make([]uint64, n)
						for i := range keys {
							keys[i] = rng.Uint64N(2*keySpace) + 1 // half absent
						}
						got := bat.DeleteBatch(keys)
						for i, k := range keys {
							if want := seq.Delete(k); got[i] != want {
								t.Fatalf("DeleteBatch(%d) = %v, want %v", k, got[i], want)
							}
						}
					default:
						keys := make([]uint64, n)
						for i := range keys {
							keys[i] = rng.Uint64N(keySpace) + 1
						}
						vals, found := bat.GetBatch(keys)
						for i, k := range keys {
							wv, wok := seq.Get(k)
							if found[i] != wok || (wok && vals[i] != wv) {
								t.Fatalf("GetBatch(%d) = (%d,%v), want (%d,%v)", k, vals[i], found[i], wv, wok)
							}
						}
					}
				}
				for k := uint64(1); k <= keySpace; k++ {
					wv, wok := seq.Get(k)
					gv, gok := bat.Get(k)
					if wok != gok || (wok && wv != gv) {
						t.Fatalf("final key %d mismatch: batch (%d,%v), sequential (%d,%v)", k, gv, gok, wv, wok)
					}
				}
			})
		})
	}
}

// name renders the ablation cell for subtest names.
func (a *AdvancedOptions) name() string {
	mode := "checksum"
	if a.TwoLevelVersions {
		mode = "two-level"
	}
	if a.CombineCommands {
		return mode + "/combine"
	}
	return mode + "/nocombine"
}

// TestBatchConcurrentSessions runs concurrent batched writers on disjoint
// stripes, then validates the tree and checks contents — the public-API
// face of the concurrent-batch-churn acceptance criterion.
func TestBatchConcurrentSessions(t *testing.T) {
	c, err := NewCluster(ClusterConfig{MemoryServers: 2, ComputeServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tree := testTree(t, c, TreeOptions{NodeSize: testutil.SmallNodeSize})

	const workers = 8
	refs := make([]map[uint64]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := tree.Session(w % c.ComputeServers())
			rng := testutil.RNG(uint64(w) + 1)
			ref := make(map[uint64]uint64)
			base := uint64(w)*100_000 + 1
			for round := 0; round < 25; round++ {
				n := int(rng.Uint64N(40)) + 1
				if rng.Uint64N(4) == 0 {
					keys := make([]uint64, n)
					for i := range keys {
						keys[i] = base + rng.Uint64N(400)
					}
					s.DeleteBatch(keys)
					for _, k := range keys {
						delete(ref, k)
					}
				} else {
					kvs := make([]KV, n)
					for i := range kvs {
						kvs[i] = KV{Key: base + rng.Uint64N(400), Value: rng.Uint64() | 1}
					}
					s.PutBatch(kvs)
					for _, kv := range kvs {
						ref[kv.Key] = kv.Value
					}
				}
			}
			refs[w] = ref
		}(w)
	}
	wg.Wait()

	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate after concurrent batch churn: %v", err)
	}
	s := tree.Session(0)
	for w, ref := range refs {
		keys := make([]uint64, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		vals, found := s.GetBatch(keys)
		for i, k := range keys {
			if !found[i] || vals[i] != ref[k] {
				t.Fatalf("worker %d key %d: GetBatch = (%d,%v), want (%d,true)", w, k, vals[i], found[i], ref[k])
			}
		}
	}

	st := s.Stats()
	if st.Batches == 0 || st.BatchedOps == 0 || st.BatchLeafGroups == 0 {
		t.Errorf("batch counters empty: %+v", st)
	}
	if st.BatchedOps < st.BatchLeafGroups {
		t.Errorf("BatchedOps %d < BatchLeafGroups %d: grouping never amortized", st.BatchedOps, st.BatchLeafGroups)
	}
}

// TestBatchEmptyAndKeyZero covers the degenerate inputs.
func TestBatchEmptyAndKeyZero(t *testing.T) {
	c := testCluster(t)
	tree := testTree(t, c, DefaultTreeOptions())
	s := tree.Session(0)
	s.PutBatch(nil)
	if v, f := s.GetBatch(nil); len(v) != 0 || len(f) != 0 {
		t.Error("GetBatch(nil) returned non-empty slices")
	}
	if f := s.DeleteBatch(nil); len(f) != 0 {
		t.Error("DeleteBatch(nil) returned non-empty slice")
	}
	for name, fn := range map[string]func(){
		"PutBatch":    func() { s.PutBatch([]KV{{Key: 0, Value: 1}}) },
		"DeleteBatch": func() { s.DeleteBatch([]uint64{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with key 0 did not panic", name)
				}
			}()
			fn()
		}()
	}
}
