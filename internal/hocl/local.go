package hocl

import (
	"runtime"
	"sync"

	"sherman/internal/transport"
)

// localTable is one compute server's local lock table (LLT): one local lock
// per GLT slot of every memory server (§4.3). It coordinates conflicting
// acquisitions *within* a CS so that at most one thread per CS ever spins on
// the remote lock.
type localTable struct {
	locks []localLock
}

func newLocalTable(n int) *localTable {
	return &localTable{locks: make([]localLock, n)}
}

func (t *localTable) lock(i int) *localLock { return &t.locks[i] }

// localLock is one LLT entry. The mutex only guards the entry's own state;
// waiting happens on per-waiter channels so the FIFO order is explicit and
// the releaser can hand both the virtual release time and the handover flag
// to its successor.
type localLock struct {
	mu    sync.Mutex
	held  bool
	queue []chan wake
	depth int32
	// relV is the holder's virtual clock at the most recent release; late
	// spinners inherit it so local waiting consumes virtual time.
	relV int64
}

// wake is the message a releaser passes to the next FIFO waiter.
type wake struct {
	v        int64 // releaser's virtual time
	handover bool  // true: the global lock comes with it
	killed   bool  // the waiter's own compute server died: abort
}

// acquire takes the local lock on behalf of client c, blocking (FIFO when
// waitQueue, barging spin otherwise) until this thread holds it. It returns
// true when the *global* lock was handed over along with the local one.
// Local tables are per compute server, so every thread touching l belongs
// to c's CS; when that CS dies the death sweep (killAll) aborts every
// queued waiter, and the alive checks below keep doomed threads from
// queueing after the sweep or spinning forever on verb-free paths.
func (l *localLock) acquire(c transport.Transport, waitQueue bool, st *Stats) bool {
	l.mu.Lock()
	if !c.Alive() {
		l.mu.Unlock()
		panic(transport.Crash{CS: int(c.CSID())})
	}
	if !l.held {
		l.held = true
		rel := l.relV
		l.mu.Unlock()
		// The previous virtual hold window may extend past our clock even
		// though the lock is free in real time.
		c.AdvanceTo(rel)
		return false
	}
	st.LocalWaits.Add(1)
	if waitQueue {
		ch := make(chan wake, 1)
		l.queue = append(l.queue, ch)
		l.mu.Unlock()
		w := <-ch
		if w.killed {
			panic(transport.Crash{CS: int(c.CSID())})
		}
		// Ownership transferred by the releaser; account the wait.
		c.AdvanceTo(w.v)
		c.Step(c.Timing().LocalSpinNS)
		return w.handover
	}
	// No wait queue: unfair local spinning (the "+Hierarchical structure
	// only" configuration of Figure 16).
	l.mu.Unlock()
	for {
		c.CheckAlive()
		c.Step(c.Timing().LocalSpinNS)
		runtime.Gosched()
		l.mu.Lock()
		if !l.held {
			l.held = true
			rel := l.relV
			l.mu.Unlock()
			c.AdvanceTo(rel)
			return false
		}
		l.mu.Unlock()
	}
}

// releaseLocked finishes a release whose decisions were made by the caller
// (Manager.Unlock) while holding l.mu: it records the virtual release time,
// wakes the FIFO successor if any, and unlocks the entry. The caller has
// already flushed its dependent RDMA writes, so a woken successor observes
// fully written memory.
func (l *localLock) releaseLocked(now int64) {
	l.relV = now
	if len(l.queue) > 0 {
		ch := l.queue[0]
		l.queue = l.queue[1:]
		handover := l.depth > 0 // Manager set depth>0 iff handing over
		l.mu.Unlock()
		ch <- wake{v: now, handover: handover}
		return
	}
	l.held = false
	l.mu.Unlock()
}

// killAll aborts every queued waiter of the table's compute server after it
// died, so their goroutines unwind instead of blocking forever. The table is
// replaced wholesale on restart (Manager.resetCS).
func (t *localTable) killAll() {
	for i := range t.locks {
		l := &t.locks[i]
		l.mu.Lock()
		q := l.queue
		l.queue = nil
		l.mu.Unlock()
		for _, ch := range q {
			ch <- wake{killed: true}
		}
	}
}
