package sherman

import (
	"fmt"
	"sync/atomic"

	"sherman/internal/core"
	"sherman/internal/stats"
)

// Session is one client thread's interface to a tree, bound to one compute
// server. Sessions are not safe for concurrent use — they model exactly one
// client thread of the paper — so open one per goroutine. Any number of
// sessions may operate on the same tree concurrently.
type Session struct {
	h  *core.Handle
	cs int
}

var sessionSeq atomic.Int64

// Session opens a session on compute server cs (0 <= cs < ComputeServers).
func (t *Tree) Session(cs int) *Session {
	if cs < 0 || cs >= t.c.ComputeServers() {
		panic(fmt.Sprintf("sherman: compute server %d out of range [0,%d)", cs, t.c.ComputeServers()))
	}
	return &Session{h: t.tr.NewHandle(cs, int(sessionSeq.Add(1))), cs: cs}
}

// ComputeServer returns the compute server this session runs on.
func (s *Session) ComputeServer() int { return s.cs }

// Put stores value under key, inserting or updating in place. Key 0 is
// reserved and panics (it is the tree's deleted-entry sentinel, §4.4).
func (s *Session) Put(key, value uint64) {
	s.h.Insert(key, value)
}

// Get returns the value stored under key.
func (s *Session) Get(key uint64) (uint64, bool) {
	return s.h.Lookup(key)
}

// Delete removes key, reporting whether it was present.
func (s *Session) Delete(key uint64) bool {
	return s.h.Delete(key)
}

// PutBatch stores every pair in kvs, observably equivalent to calling Put
// for each pair in order, but executed through the batch pipeline: keys are
// sorted and pairs landing in the same leaf share one traversal, one leaf
// lock and one combined write-back+release doorbell, cutting round trips
// and lock traffic on bulk writes. Duplicate keys apply in submission order
// (the last value wins). Key 0 is reserved and panics.
func (s *Session) PutBatch(kvs []KV) {
	s.h.InsertBatch(kvs)
}

// GetBatch returns, for each key, the stored value and whether it was
// present — observably equivalent to calling Get per key, but reading each
// target leaf once for all the keys it covers.
func (s *Session) GetBatch(keys []uint64) (values []uint64, found []bool) {
	return s.h.LookupBatch(keys)
}

// DeleteBatch removes every key, reporting per key whether it was present —
// observably equivalent to calling Delete per key. Deletes of absent keys
// cost no write-back. Key 0 is reserved and panics.
func (s *Session) DeleteBatch(keys []uint64) (found []bool) {
	return s.h.DeleteBatch(keys)
}

// Scan returns up to span pairs with key >= from in ascending key order.
// Like the paper's range query (§4.4), a scan is not atomic with concurrent
// writes: each leaf is read consistently, but the scan as a whole is not a
// snapshot.
func (s *Session) Scan(from uint64, span int) []KV {
	if span <= 0 {
		return nil
	}
	return s.h.Range(from, span)
}

// VirtualNow returns the session's virtual clock in nanoseconds — the time
// at which its most recent operation completed on the simulated fabric.
// Dividing operation counts by makespans of these clocks gives the
// throughput numbers the benchmarks report.
func (s *Session) VirtualNow() int64 { return s.h.C.Now() }

// Stats returns the session's accumulated measurements.
func (s *Session) Stats() SessionStats {
	r := s.h.Rec
	m := &s.h.C.M
	return SessionStats{
		Lookups:      r.Ops[stats.OpLookup],
		Inserts:      r.Ops[stats.OpInsert],
		Deletes:      r.Ops[stats.OpDelete],
		Scans:        r.Ops[stats.OpRange],
		RoundTrips:   m.RoundTrips,
		WriteBytes:   m.WriteBytes,
		CASFailures:  m.CASFailures,
		CacheHits:    r.CacheHits,
		CacheMisses:  r.CacheMisses,
		Handovers:    r.Handovers,
		P50LatencyNS: r.AllLatency.Percentile(50),
		P99LatencyNS: r.AllLatency.Percentile(99),

		Batches:         r.Batches,
		BatchedOps:      r.BatchedOps,
		BatchLeafGroups: r.BatchLeafGroups,
		DoorbellBatches: m.DoorbellBatches,
		DoorbellOps:     m.DoorbellOps,
	}
}

// SessionStats summarizes one session's activity. Latencies are in virtual
// nanoseconds over all completed operations.
type SessionStats struct {
	Lookups, Inserts, Deletes, Scans int64

	// RoundTrips counts network round trips; a doorbell-batched post of
	// dependent writes counts once (§4.5).
	RoundTrips int64
	// WriteBytes totals RDMA_WRITE payload bytes — the write-amplification
	// metric of Figure 14(c).
	WriteBytes int64
	// CASFailures counts failed remote lock CAS attempts (§3.2.2).
	CASFailures int64

	CacheHits, CacheMisses int64
	// Handovers counts lock acquisitions satisfied by intra-CS handover.
	Handovers int64

	P50LatencyNS, P99LatencyNS int64

	// Batches counts PutBatch/GetBatch/DeleteBatch invocations; BatchedOps
	// the operations they carried (also included in the per-kind counts
	// above). BatchLeafGroups counts the leaf groups those batches formed —
	// BatchedOps/BatchLeafGroups is the traversal-and-lock amortization the
	// pipeline achieved.
	Batches, BatchedOps, BatchLeafGroups int64
	// DoorbellBatches counts multi-command doorbell posts issued by this
	// session's verbs; DoorbellOps the commands they carried (§4.5).
	DoorbellBatches, DoorbellOps int64
}
