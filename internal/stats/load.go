package stats

// MSLoad is one memory server's NIC inbound load over some window — the
// signal the migration picker balances and the elastic benchmark reports.
// The rdma layer counts the verbs; this package only aggregates, so load
// math stays testable without a fabric.
type MSLoad struct {
	MS int
	// Ops is the number of inbound verbs the server's NIC serviced.
	Ops int64
	// ChunkOps breaks Ops down by host-memory chunk (control traffic and
	// on-chip lock traffic appear only in Ops).
	ChunkOps []int64
	// Draining marks a server being scaled in; pickers treat it as having
	// no capacity.
	Draining bool
	// Dead marks a failed server; pickers and skew math exclude it
	// entirely — a corpse is neither a source of load nor a target.
	Dead bool
}

// eligible reports whether a server participates in balance math: live and
// not scaling in.
func (l MSLoad) eligible() bool { return !l.Dead && !l.Draining }

// Sub returns the load delta cur - prev (matched by MS id), the per-window
// view benchmarks and pickers use. Servers present only in cur keep their
// full counts (they joined mid-window).
func SubLoads(cur, prev []MSLoad) []MSLoad {
	byMS := make(map[int]MSLoad, len(prev))
	for _, l := range prev {
		byMS[l.MS] = l
	}
	out := make([]MSLoad, len(cur))
	for i, l := range cur {
		d := l
		if p, ok := byMS[l.MS]; ok {
			d.Ops -= p.Ops
			d.ChunkOps = append([]int64(nil), l.ChunkOps...)
			for j := range d.ChunkOps {
				if j < len(p.ChunkOps) {
					d.ChunkOps[j] -= p.ChunkOps[j]
				}
			}
		}
		out[i] = d
	}
	return out
}

// LoadSkew returns max/mean inbound ops across the eligible (live,
// non-draining) servers — 1.0 is a perfectly balanced cluster, N means one
// server carries the whole load of an N-server cluster. Dead and draining
// servers are excluded from both the mean and the max: counting a corpse's
// zero ops in the mean would inflate the skew of a perfectly balanced
// cluster and make the migration picker chase an imbalance no live server
// can fix. Returns 0 when there is no eligible load.
func LoadSkew(loads []MSLoad) float64 {
	var total, max int64
	n := 0
	for _, l := range loads {
		if !l.eligible() {
			continue
		}
		n++
		total += l.Ops
		if l.Ops > max {
			max = l.Ops
		}
	}
	if total <= 0 || n == 0 {
		return 0
	}
	mean := float64(total) / float64(n)
	return float64(max) / mean
}

// LoadMaxMin returns hottest/coldest inbound ops across the eligible
// servers, with the coldest floored at one op so an idle newcomer reads as
// a huge skew rather than a division by zero. This is the headline
// imbalance metric of the elastic benchmark: before rebalancing onto a
// fresh server it is enormous; after, it approaches 1. Dead and draining
// servers are excluded — an idle corpse is not a rebalancing target.
func LoadMaxMin(loads []MSLoad) float64 {
	var max int64
	min := int64(-1)
	for _, l := range loads {
		if !l.eligible() {
			continue
		}
		if l.Ops > max {
			max = l.Ops
		}
		if min < 0 || l.Ops < min {
			min = l.Ops
		}
	}
	if min < 0 {
		return 0
	}
	if min < 1 {
		min = 1
	}
	return float64(max) / float64(min)
}
