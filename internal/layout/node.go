package layout

import (
	"encoding/binary"
	"hash/crc64"

	"sherman/internal/rdma"
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Node is an in-place view over one node buffer (a client-local copy of
// NodeSize bytes). Leaf and Internal embed it.
type Node struct {
	B []byte
	F Format
}

// NewNodeBuf allocates a zeroed node buffer viewed as a Node.
func NewNodeBuf(f Format) Node { return Node{B: make([]byte, f.NodeSize), F: f} }

// ViewNode wraps an existing buffer (len must equal f.NodeSize).
func ViewNode(f Format, b []byte) Node {
	if len(b) != f.NodeSize {
		panic("layout: buffer size does not match format")
	}
	return Node{B: b, F: f}
}

// Init stamps a fresh node: alive, given level and fences, nil sibling.
func (n Node) Init(level uint8, lower, upper uint64) {
	for i := range n.B {
		n.B[i] = 0
	}
	n.SetAlive(true)
	n.SetLevel(level)
	n.SetLowerFence(lower)
	n.SetUpperFence(upper)
}

// Alive reports the allocation bit (§4.2.4: deallocation clears it; readers
// that fetch a freed node notice and retraverse).
func (n Node) Alive() bool { return n.B[offAlive] == 1 }

// SetAlive sets or clears the allocation bit.
func (n Node) SetAlive(v bool) {
	if v {
		n.B[offAlive] = 1
	} else {
		n.B[offAlive] = 0
	}
}

// Level returns the node's level; leaves are 0.
func (n Node) Level() uint8 { return n.B[offLevel] }

// SetLevel stores the node level.
func (n Node) SetLevel(l uint8) { n.B[offLevel] = l }

// IsLeaf reports whether the node is a leaf.
func (n Node) IsLeaf() bool { return n.Level() == 0 }

// LowerFence returns the inclusive lower bound of keys in this node.
func (n Node) LowerFence() uint64 { return binary.LittleEndian.Uint64(n.B[offLower:]) }

// SetLowerFence stores the lower fence.
func (n Node) SetLowerFence(k uint64) { binary.LittleEndian.PutUint64(n.B[offLower:], k) }

// UpperFence returns the exclusive upper bound (NoUpperBound = +inf).
func (n Node) UpperFence() uint64 { return binary.LittleEndian.Uint64(n.B[offUpper:]) }

// SetUpperFence stores the upper fence.
func (n Node) SetUpperFence(k uint64) { binary.LittleEndian.PutUint64(n.B[offUpper:], k) }

// Sibling returns the right-sibling pointer (B-link).
func (n Node) Sibling() rdma.Addr { return rdma.Addr(binary.LittleEndian.Uint64(n.B[offSib:])) }

// SetSibling stores the right-sibling pointer.
func (n Node) SetSibling(a rdma.Addr) { binary.LittleEndian.PutUint64(n.B[offSib:], uint64(a)) }

// Covers reports whether key falls inside the node's fence interval — the
// cache-validation check of §4.2.3.
func (n Node) Covers(key uint64) bool {
	return key >= n.LowerFence() && (n.UpperFence() == NoUpperBound || key < n.UpperFence())
}

// FNV returns the 4-bit front node version.
func (n Node) FNV() uint8 { return n.B[offFNV] & 0xF }

// RNV returns the 4-bit rear node version (last byte of the node).
func (n Node) RNV() uint8 { return n.B[n.F.NodeSize-1] & 0xF }

// BumpNodeVersions increments FNV and RNV together (called under the node's
// exclusive lock before a whole-node write-back, §4.4).
func (n Node) BumpNodeVersions() {
	v := (n.FNV() + 1) & 0xF
	n.B[offFNV] = v
	n.B[n.F.NodeSize-1] = v
}

// UpdateChecksum recomputes the whole-node CRC64 (Checksum mode). The CRC
// field itself is excluded from coverage.
func (n Node) UpdateChecksum() {
	binary.LittleEndian.PutUint64(n.B[offChecksum:], n.computeChecksum())
}

func (n Node) computeChecksum() uint64 {
	c := crc64.Checksum(n.B[:offChecksum], crcTable)
	return crc64.Update(c, crcTable, n.B[checksumBody:])
}

// Consistent reports whether a lock-free read of this node observed a
// quiescent state: matching node versions in TwoLevel mode, a valid CRC in
// Checksum mode.
func (n Node) Consistent() bool {
	if n.F.Mode == Checksum {
		return binary.LittleEndian.Uint64(n.B[offChecksum:]) == n.computeChecksum()
	}
	return n.FNV() == n.RNV()
}

// key/value primitive codecs ------------------------------------------------

// putKey writes the logical key into a KeySize field (8 LE bytes + zero
// padding — larger key sizes only model wire volume).
func (n Node) putKey(off int, k uint64) {
	binary.LittleEndian.PutUint64(n.B[off:], k)
	for i := off + 8; i < off+n.F.KeySize; i++ {
		n.B[i] = 0
	}
}

func (n Node) getKey(off int) uint64 { return binary.LittleEndian.Uint64(n.B[off:]) }

func (n Node) putU64(off int, v uint64) { binary.LittleEndian.PutUint64(n.B[off:], v) }
func (n Node) getU64(off int) uint64    { return binary.LittleEndian.Uint64(n.B[off:]) }

func (n Node) getU16(off int) int    { return int(binary.LittleEndian.Uint16(n.B[off:])) }
func (n Node) putU16(off int, v int) { binary.LittleEndian.PutUint16(n.B[off:], uint16(v)) }
