// Package rdma simulates the RDMA fabric of a disaggregated-memory cluster:
// memory servers exposing host memory and NIC on-chip device memory, compute
// servers with client threads, and the one-sided verbs (READ, WRITE, CAS,
// FAA, masked CAS) plus doorbell-batched posts and a two-sided RPC path for
// the wimpy memory thread.
//
// Every operation really executes against shared process memory — with 64-byte
// access atomicity, matching cacheline-granular NIC DMA — so lock-free readers
// observe genuine torn data that the index's version/checksum machinery must
// catch. Performance is accounted in virtual time via internal/sim; see
// DESIGN.md §3 for the model.
//
// The verb surface and its value types are defined by internal/transport;
// *Client implements transport.Transport (and transport.VirtualTimer, the
// capability interface carrying the virtual-time hooks). The aliases below
// keep the historical rdma.Addr / rdma.WriteOp spellings working — the
// simulated backend was the only backend for most of this repo's life, and
// half the codebase names these types through it.
package rdma

import "sherman/internal/transport"

// Addr is a 64-bit global pointer into disaggregated memory; see
// transport.Addr.
type Addr = transport.Addr

// NilAddr is the null pointer.
const NilAddr = transport.NilAddr

// DefaultChunkSize is the fixed-length chunk granularity used by memory
// threads when handing memory to compute servers (§4.2.4).
const DefaultChunkSize = transport.DefaultChunkSize

// MakeAddr builds a host-memory address on memory server ms at offset off.
func MakeAddr(ms uint16, off uint64) Addr { return transport.MakeAddr(ms, off) }

// MakeOnChipAddr builds an address into the on-chip device memory of memory
// server ms's NIC.
func MakeOnChipAddr(ms uint16, off uint64) Addr { return transport.MakeOnChipAddr(ms, off) }

// ReadOp names one RDMA_READ target for ReadMulti.
type ReadOp = transport.ReadOp

// WriteOp names one RDMA_WRITE for a doorbell-batched post.
type WriteOp = transport.WriteOp

// Metrics counts verb activity on one client thread.
type Metrics = transport.Metrics
