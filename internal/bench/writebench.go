package bench

import (
	"math/rand/v2"
	"runtime"
	"sync"

	"sherman/internal/rdma"
	"sherman/internal/sim"
	"sherman/internal/stats"
)

// newRand creates a thread-local PRNG.
func newRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
}

// WriteExp is the raw RDMA_WRITE microbenchmark of Figure 3: saturating
// either one memory server's inbound pipeline (many CSs writing to one MS)
// or one compute server's outbound pipeline (one CS writing to many MSs)
// at a given IO size.
type WriteExp struct {
	Name    string
	IOSize  int
	Inbound bool // true: 8 CSs -> 1 MS; false: 1 CS -> 8 MSs
	Threads int
	Ops     int // per thread
	Params  sim.Params
}

// Defaults fills unset fields.
func (e WriteExp) Defaults() WriteExp {
	if e.Threads == 0 {
		e.Threads = 64
	}
	if e.Ops == 0 {
		e.Ops = 4000
	}
	if e.IOSize == 0 {
		e.IOSize = 64
	}
	if e.Params.RTTNS == 0 {
		e.Params = sim.DefaultParams()
	}
	return e
}

// WriteResult is the measured verb throughput.
type WriteResult struct {
	Name   string
	IOSize int
	Mops   float64
}

// RunWrites executes one RDMA_WRITE saturation run.
func RunWrites(e WriteExp) WriteResult {
	e = e.Defaults()
	numMS, numCS := 1, 8
	if !e.Inbound {
		numMS, numCS = 8, 1
	}
	f := rdma.NewFabric(e.Params, numMS, numCS)
	// One private chunk per thread per server keeps targets distinct.
	bases := make([][]uint64, numMS)
	for ms := 0; ms < numMS; ms++ {
		bases[ms] = make([]uint64, e.Threads)
		for th := 0; th < e.Threads; th++ {
			bases[ms][th] = f.Servers()[ms].Grow()
		}
	}

	finish := make([]int64, e.Threads)
	var wg sync.WaitGroup
	for th := 0; th < e.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			c := f.NewClient(th % numCS)
			data := make([]byte, e.IOSize)
			// Saturation benchmarks keep many WRITEs in flight: post
			// unsignaled batches per QP, paying one round trip per batch.
			const batch = 32
			ops := make([]rdma.WriteOp, 0, batch)
			for i := 0; i < e.Ops; i += batch {
				ms := uint16(0)
				if !e.Inbound {
					ms = uint16((i / batch) % numMS)
				}
				ops = ops[:0]
				for j := 0; j < batch && i+j < e.Ops; j++ {
					off := bases[ms][th] + uint64(((i+j)*e.IOSize)%(rdma.DefaultChunkSize-e.IOSize))
					off &^= 63
					ops = append(ops, rdma.WriteOp{Addr: rdma.MakeAddr(ms, off), Data: data})
				}
				c.PostWrites(ops...)
				runtime.Gosched()
			}
			finish[th] = c.Now()
		}(th)
	}
	wg.Wait()
	var makespan int64
	for _, v := range finish {
		if v > makespan {
			makespan = v
		}
	}
	return WriteResult{
		Name:   e.Name,
		IOSize: e.IOSize,
		Mops:   stats.ThroughputMops(int64(e.Threads*e.Ops), makespan),
	}
}
