// Package migrate is the elasticity engine: chunk-granularity live
// migration of tree nodes between memory servers, driven by per-NIC inbound
// load. It turns a static placement into an operable cluster — scale out by
// adding a memory server and rebalancing onto it, scale in by draining one.
//
// The engine orchestrates; the mechanism lives below it. internal/core
// provides the node-level primitives (locked move with a kill-commit,
// parent repointing through the ordinary locked write path, cache
// invalidation), internal/alloc the chunk forwarding map that keeps
// concurrent traversals correct mid-move, and internal/rdma the load
// counters the picker consumes. See DESIGN.md §9 for the protocol and its
// crash-safety argument.
package migrate

import (
	"fmt"
	"sort"

	"sherman/internal/alloc"
	"sherman/internal/core"
	"sherman/internal/rdma"
	"sherman/internal/stats"
)

// Options tunes one engine.
type Options struct {
	// MaxChunks bounds the chunks moved by one Rebalance call (0 = 64).
	MaxChunks int
	// Slack is the max/mean load imbalance Rebalance tolerates before
	// moving anything (0 = 1.15).
	Slack float64
	// Baseline, when non-nil, is a prior load snapshot subtracted from the
	// current counters so the picker sees a recent window instead of the
	// cluster's whole history.
	Baseline []stats.MSLoad
	// Pace, when non-nil, is called between node moves (no lock held) with
	// the engine's current virtual time; benchmark harnesses use it to keep
	// the migrator inside the simulation gate's window.
	Pace func(nowNS int64)
}

func (o Options) maxChunks() int {
	if o.MaxChunks == 0 {
		return 64
	}
	return o.MaxChunks
}

func (o Options) slack() float64 {
	if o.Slack == 0 {
		return 1.15
	}
	return o.Slack
}

// Stats reports one engine run.
type Stats struct {
	// ChunksMoved counts chunks whose nodes were relocated; NodesMoved the
	// nodes, BytesCopied their payload.
	ChunksMoved, NodesMoved int
	BytesCopied             int64
	// Repoints counts parent/root pointers swung to relocated addresses;
	// RepointMisses the moves whose pointer a racing structural change
	// owned (readers keep resolving through forwarding until a recovery
	// sweep repairs them).
	Repoints, RepointMisses int
	// SkippedNodes counts collected nodes found already dead at move time
	// (freed or concurrently migrated).
	SkippedNodes int
	// CacheDropped counts index-cache entries invalidated across compute
	// servers.
	CacheDropped int
	// VirtualNS is the run's span on the migrating thread's virtual clock —
	// the rebalance time a real deployment would observe.
	VirtualNS int64
}

func (s *Stats) add(o Stats) {
	s.ChunksMoved += o.ChunksMoved
	s.NodesMoved += o.NodesMoved
	s.BytesCopied += o.BytesCopied
	s.Repoints += o.Repoints
	s.RepointMisses += o.RepointMisses
	s.SkippedNodes += o.SkippedNodes
	s.CacheDropped += o.CacheDropped
}

// Engine drives migrations for one tree from one compute server's client
// thread. Like a Handle, an Engine is owned by one goroutine; one migration
// runs at a time per cluster (a cluster-wide critical section serializes
// engines so two migrations never relocate the same chunk concurrently).
type Engine struct {
	t   *core.Tree
	h   *core.Handle
	opt Options
}

// New creates an engine over handle h (which determines the compute server
// and virtual clock the migration runs on).
func New(h *core.Handle, opt Options) *Engine {
	return &Engine{t: h.Tree(), h: h, opt: opt}
}

// Loads snapshots the current per-server inbound load.
func Loads(f *rdma.Fabric) []stats.MSLoad {
	servers := f.Servers()
	out := make([]stats.MSLoad, len(servers))
	for i, s := range servers {
		out[i] = stats.MSLoad{
			MS:       i,
			Ops:      s.InboundOps(),
			ChunkOps: s.ChunkOps(),
			Draining: s.Draining(),
			Dead:     s.Dead(),
		}
	}
	return out
}

// Rebalance evens out per-server inbound load: while the hottest server
// carries more than slack × the mean, its hottest chunks move to the
// coldest non-draining server. Returns after the plan is executed (or the
// chunk budget is exhausted); the tree serves throughout.
func (e *Engine) Rebalance() (Stats, error) {
	cl := e.t.Cluster()
	start := e.h.C.Now()
	loads := Loads(cl.F)
	if e.opt.Baseline != nil {
		loads = stats.SubLoads(loads, e.opt.Baseline)
	}
	plan := planRebalance(loads, e.opt.slack(), e.opt.maxChunks())
	var st Stats
	err := e.runPlan(plan, &st)
	st.VirtualNS = e.h.C.Now() - start
	return st, err
}

// DrainServer moves every tree node off memory server ms (marking it
// draining first so allocators stop placing data there) and keeps sweeping
// until a collection pass comes back empty — concurrent writers may carve
// new nodes out of already-migrated chunks until the draining mark
// propagates. The server stays addressable forever (dead originals and the
// forwarding map live on), it just holds no tree data.
func (e *Engine) DrainServer(ms uint16) (Stats, error) {
	cl := e.t.Cluster()
	if int(ms) >= cl.NumMS() {
		return Stats{}, fmt.Errorf("migrate: no memory server %d", ms)
	}
	alive := 0
	for _, s := range cl.F.Servers() {
		if !s.Draining() && !s.Dead() {
			alive++
		}
	}
	if alive <= 1 && !cl.F.Servers()[ms].Draining() {
		return Stats{}, fmt.Errorf("migrate: cannot drain the last memory server")
	}
	start := e.h.C.Now()
	cl.SetDraining(int(ms), true)
	var st Stats
	const maxSweeps = 16
	for sweep := 0; sweep < maxSweeps; sweep++ {
		srv := cl.F.Servers()[ms]
		chunks := len(srv.ChunkOps())
		var plan []move
		for ci := 0; ci < chunks; ci++ {
			ck := alloc.ChunkID{MS: ms, Index: uint64(ci)}
			if ms == 0 && ci == 0 {
				continue // the superblock chunk never migrates
			}
			plan = append(plan, move{chunk: ck})
		}
		before := st.NodesMoved
		if err := e.runPlan(e.assignTargets(plan), &st); err != nil {
			st.VirtualNS = e.h.C.Now() - start
			return st, err
		}
		if st.NodesMoved == before {
			st.VirtualNS = e.h.C.Now() - start
			return st, nil
		}
	}
	st.VirtualNS = e.h.C.Now() - start
	return st, fmt.Errorf("migrate: server %d still receiving nodes after %d sweeps", ms, maxSweeps)
}

// move is one planned chunk relocation.
type move struct {
	chunk alloc.ChunkID
	dst   uint16
}

// planRebalance picks (chunk, target) moves that bring the hottest servers
// toward the mean, using per-chunk inbound counts as the transferable load
// unit.
func planRebalance(loads []stats.MSLoad, slack float64, maxChunks int) []move {
	type srv struct {
		ms       int
		ops      int64
		chunks   []int64 // remaining per-chunk load
		draining bool
		dead     bool
	}
	srvs := make([]*srv, len(loads))
	var total int64
	targets := 0
	for i, l := range loads {
		srvs[i] = &srv{ms: l.MS, ops: l.Ops, chunks: append([]int64(nil), l.ChunkOps...), draining: l.Draining, dead: l.Dead}
		if l.Dead {
			// A corpse is neither a migration source (its memory reads as
			// zeros) nor a target; failover, not migration, owns its chunks.
			continue
		}
		total += l.Ops
		if !l.Draining {
			targets++
		}
	}
	if total == 0 || targets < 2 && !anyDraining(loads) {
		return nil
	}
	mean := float64(total) / float64(targets)
	var plan []move
	for len(plan) < maxChunks {
		// Hottest eligible source: any draining server with load, else the
		// server furthest above the slack band.
		var src *srv
		for _, s := range srvs {
			if s.draining && !s.dead && s.ops > 0 {
				if src == nil || s.ops > src.ops {
					src = s
				}
			}
		}
		if src == nil {
			for _, s := range srvs {
				if !s.draining && !s.dead && float64(s.ops) > slack*mean && (src == nil || s.ops > src.ops) {
					src = s
				}
			}
		}
		if src == nil {
			break
		}
		// Its hottest chunk (skip the superblock chunk on MS 0).
		ci := -1
		for j, ops := range src.chunks {
			if src.ms == 0 && j == 0 {
				continue
			}
			if ops > 0 && (ci < 0 || ops > src.chunks[ci]) {
				ci = j
			}
		}
		if ci < 0 {
			break
		}
		// Coldest live non-draining destination.
		var dst *srv
		for _, s := range srvs {
			if s.draining || s.dead || s.ms == src.ms {
				continue
			}
			if dst == nil || s.ops < dst.ops {
				dst = s
			}
		}
		if dst == nil {
			break
		}
		moved := src.chunks[ci]
		if !src.draining && float64(dst.ops+moved) > float64(src.ops) {
			break // the move would just swap hot and cold
		}
		plan = append(plan, move{chunk: alloc.ChunkID{MS: uint16(src.ms), Index: uint64(ci)}, dst: uint16(dst.ms)})
		src.chunks[ci] = 0
		src.ops -= moved
		dst.ops += moved
	}
	// Deterministic execution order regardless of map/pick order.
	sort.Slice(plan, func(i, j int) bool {
		a, b := plan[i].chunk, plan[j].chunk
		if a.MS != b.MS {
			return a.MS < b.MS
		}
		return a.Index < b.Index
	})
	return plan
}

func anyDraining(loads []stats.MSLoad) bool {
	for _, l := range loads {
		if l.Draining {
			return true
		}
	}
	return false
}

// assignTargets fills in destinations for a drain plan: spread round-robin
// over the non-draining servers, coldest first.
func (e *Engine) assignTargets(plan []move) []move {
	loads := Loads(e.t.Cluster().F)
	var tgts []stats.MSLoad
	for _, l := range loads {
		if !l.Draining && !l.Dead {
			tgts = append(tgts, l)
		}
	}
	if len(tgts) == 0 {
		return nil
	}
	sort.Slice(tgts, func(i, j int) bool { return tgts[i].Ops < tgts[j].Ops })
	for i := range plan {
		plan[i].dst = uint16(tgts[i%len(tgts)].MS)
	}
	return plan
}

// runPlan executes the planned moves under the cluster's migration lock,
// collecting every planned chunk's nodes in one tree walk.
func (e *Engine) runPlan(plan []move, st *Stats) error {
	if len(plan) == 0 {
		return nil
	}
	cl := e.t.Cluster()
	cl.MigrationLock()
	defer cl.MigrationUnlock()
	want := make(map[alloc.ChunkID]bool, len(plan))
	for _, mv := range plan {
		want[mv.chunk] = true
	}
	items := e.h.CollectChunks(want)
	for _, mv := range plan {
		cs, err := e.migrateChunk(mv.chunk, mv.dst, items[mv.chunk])
		st.add(cs)
		if err != nil {
			return err
		}
	}
	return nil
}

// migrateChunk relocates the collected parent-referenced nodes of one
// chunk. See the protocol walkthrough in core/migrate.go and DESIGN.md §9.
func (e *Engine) migrateChunk(ck alloc.ChunkID, dstMS uint16, items []core.ChunkNode) (Stats, error) {
	var st Stats
	cl := e.t.Cluster()
	if len(items) == 0 {
		return st, nil
	}
	// A chunk's forwarding target is fixed forever: the first migration
	// reserves a whole chunk on the destination via one memory-thread RPC,
	// and — because node addresses keep their intra-chunk offsets and the
	// allocator never recycles an offset — stragglers found by later sweeps
	// copy into untouched offsets of that same target, whatever server it
	// sits on. Installing a second target would strand every reference to a
	// first-generation original.
	newBase, reused := cl.Fwd.Reuse(ck, int(e.h.C.CSID()), e.h.C.Epoch())
	if !reused {
		newBase = rdma.MakeAddr(dstMS, e.h.C.GrowChunk(dstMS))
		// The fresh destination chunk bypassed the allocators, so it must
		// register its own replica set before the first node copies in —
		// otherwise every migrated-into chunk would silently lose failover
		// coverage.
		alloc.RegisterPlaced(cl.Rep, e.h.C, alloc.ChunkOf(newBase), cl.ReplicationFactor()-1, e.h.C.GrowChunk)
		cl.Fwd.Install(ck, newBase, int(e.h.C.CSID()), e.h.C.Epoch())
	}
	nodeSize := e.t.Config().Format.NodeSize
	for _, it := range items {
		dst := newBase.Add(it.Addr.Off() % rdma.DefaultChunkSize)
		mv, err := e.h.MoveNode(it.Addr, dst)
		if err != nil {
			st.SkippedNodes++
			continue // already dead: freed or migrated under us
		}
		st.NodesMoved++
		st.BytesCopied += int64(nodeSize)
		if e.h.Repoint(mv, it.Addr, dst) {
			st.Repoints++
		} else {
			st.RepointMisses++
		}
		if e.opt.Pace != nil {
			e.opt.Pace(e.h.C.Now())
		}
	}
	st.ChunksMoved++
	st.CacheDropped += e.t.InvalidateChunk(ck)
	return st, nil
}
