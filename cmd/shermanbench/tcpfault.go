package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sherman"
	"sherman/internal/bench"
)

// runTCPFault is the -exp tcpfault experiment: the replica experiment's
// kill→failover→re-replicate walkthrough over real sockets. Three shermand
// processes serve a factor-2 tree; workers hammer it through a steady
// window, then a kill window in which one server's process is SIGKILLed for
// real (mid-doorbell if one is in flight) while every worker tracks the
// writes it got acks for on a private key stripe; re-replication then
// restores full redundancy on the two survivors, and a read-back pass
// demands every acked write back, exactly once. Throughput is honest Mops
// over the wall clock — real sockets, real failure detection, real repair.
//
// Unlike the sim-side replica experiment the throughput numbers are not
// band-gated (loopback wall time is too noisy across CI hosts); the gate is
// purely semantic — zero lost acked writes, at least one failover, full
// post-repair redundancy, Validate clean.

// Stripe keys mirror internal/bench's replica experiment: far above the
// control key space, one private contiguous range per worker, acked strictly
// in order.
const (
	tfStripeStart = uint64(1) << 32
	tfStripeSpan  = uint64(1) << 20
	tfStripeEvery = 4 // every 4th kill-window op is a tracked write
)

func tfStripeKey(worker int, j int64) uint64 {
	return tfStripeStart + uint64(worker)*tfStripeSpan + uint64(j)
}

// tfValue is the deterministic value a tracked or control key carries, so
// the read-back can verify content, not just presence.
func tfValue(k uint64) uint64 { return k*2654435761 + 1 }

// tcpFaultResult is the outcome runChecks gates on.
type tcpFaultResult struct {
	Victim int

	SteadyMops, KillMops, RecoveredMops float64

	AckedWrites, LostAcked, DupOrPhantom int64

	FailedOver, LostChunks int64
	RepairedChunks         int
	UnderReplicated        int
	RepairWall             time.Duration

	KillErr     error
	ValidateErr error
}

func runTCPFault() (*bench.Table, *tcpFaultResult, error) {
	const (
		numMS    = 3
		numCS    = 2
		workers  = 4
		keySpace = 4096
		preload  = 512

		steadyWindow    = 300 * time.Millisecond
		killWindow      = 700 * time.Millisecond
		killAfter       = 200 * time.Millisecond
		recoveredWindow = 300 * time.Millisecond
	)

	c, err := sherman.NewCluster(sherman.ClusterConfig{
		MemoryServers:     numMS,
		ComputeServers:    numCS,
		Transport:         sherman.TransportTCP,
		ReplicationFactor: 2,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("tcpfault: %w", err)
	}
	defer c.Close()
	tree, err := c.CreateTree(sherman.TreeOptions{})
	if err != nil {
		return nil, nil, err
	}
	var kvs []sherman.KV
	for k := uint64(1); k <= preload; k++ {
		kvs = append(kvs, sherman.KV{Key: k, Value: tfValue(k)})
	}
	if err := tree.Bulkload(kvs); err != nil {
		return nil, nil, err
	}

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	res := &tcpFaultResult{Victim: 1 + rng.Intn(numMS-1)}

	// window runs every worker for the given wall span and returns Mops.
	// When acked is non-nil each worker issues a tracked stripe write as
	// every tfStripeEvery-th op, bumping its counter only after the ack.
	seed := int64(1)
	window := func(span time.Duration, acked []int64) (float64, error) {
		var ops atomic.Int64
		var firstErr error
		var errMu sync.Mutex
		deadline := time.Now().Add(span)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int, seed int64) {
				defer wg.Done()
				s, err := tree.SessionAt(w % numCS)
				if err == nil {
					err = func() error {
						r := rand.New(rand.NewSource(seed))
						for j := int64(0); time.Now().Before(deadline); j++ {
							if acked != nil && j%tfStripeEvery == 0 {
								k := tfStripeKey(w, acked[w])
								if err := s.PutE(k, tfValue(k)); err != nil {
									return err
								}
								acked[w]++
							} else {
								key := uint64(r.Intn(keySpace)) + 1
								switch v := r.Intn(100); {
								case v < 50:
									if err := s.PutE(key, tfValue(key)); err != nil {
										return err
									}
								case v < 80:
									if _, _, err := s.GetE(key); err != nil {
										return err
									}
								default:
									if _, err := s.DeleteE(key); err != nil {
										return err
									}
								}
							}
							ops.Add(1)
						}
						return s.Flush()
					}()
				}
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("tcpfault: worker %d: %w", w, err)
					}
					errMu.Unlock()
				}
			}(w, seed+int64(w))
		}
		wg.Wait()
		seed += workers
		if firstErr != nil {
			return 0, firstErr
		}
		return float64(ops.Load()) / span.Seconds() / 1e6, nil
	}

	// Steady window, factor-2, fault-free.
	if _, err := window(steadyWindow, nil); err != nil { // warmup, discarded
		return nil, res, err
	}
	if res.SteadyMops, err = window(steadyWindow, nil); err != nil {
		return nil, res, err
	}

	// Kill window: SIGKILL the victim's process partway in, workers running.
	acked := make([]int64, workers)
	killTimer := time.AfterFunc(killAfter, func() {
		res.KillErr = c.KillMemoryServer(res.Victim)
	})
	res.KillMops, err = window(killWindow, acked)
	killTimer.Stop()
	if err != nil {
		return nil, res, err
	}
	if res.KillErr != nil {
		return nil, res, fmt.Errorf("tcpfault: killing ms%d: %w", res.Victim, res.KillErr)
	}
	st := c.ReplicationStats()
	res.FailedOver, res.LostChunks = st.Failovers, st.LostChunks
	for _, a := range acked {
		res.AckedWrites += a
	}

	// Repair: re-replicate onto the two survivors until fully redundant.
	repairStart := time.Now()
	for i := 0; ; i++ {
		rst, err := tree.ReReplicate(0)
		if err != nil {
			return nil, res, fmt.Errorf("tcpfault: re-replication: %w", err)
		}
		res.RepairedChunks += rst.ChunksRepaired
		if c.ReplicationStats().UnderReplicated == 0 || i >= 64 {
			break
		}
	}
	res.RepairWall = time.Since(repairStart)
	res.UnderReplicated = c.ReplicationStats().UnderReplicated

	// Read-back: every acked stripe write must be present with its exact
	// value through the promoted replicas, exactly once, and nothing a
	// worker never acked may appear in its stripe.
	check, err := tree.SessionAt(0)
	if err != nil {
		return nil, res, err
	}
	for w := 0; w < workers; w++ {
		cnt := acked[w]
		base := tfStripeKey(w, 0)
		for j := int64(0); j < cnt; j++ {
			k := tfStripeKey(w, j)
			v, ok, err := check.GetE(k)
			if err != nil {
				return nil, res, err
			}
			if !ok || v != tfValue(k) {
				res.LostAcked++
			}
		}
		kvs, err := check.ScanE(base, int(cnt)+8)
		if err != nil {
			return nil, res, err
		}
		for j, kv := range kvs {
			if kv.Key >= base+tfStripeSpan {
				break // next worker's stripe (or beyond)
			}
			if kv.Key >= base+uint64(cnt) {
				res.DupOrPhantom++ // never acked, yet reachable in-stripe
			} else if int64(j) < cnt && kv.Key != base+uint64(j) {
				res.DupOrPhantom++ // a dup displaced the ordered prefix
			}
		}
	}

	// Recovered steady state, then the structural check.
	if res.RecoveredMops, err = window(recoveredWindow, nil); err != nil {
		return nil, res, err
	}
	res.ValidateErr = tree.Validate()

	t := bench.NewTable(fmt.Sprintf("TCP fault: factor-2 over %d shermand processes, ms%d SIGKILLed mid-window", numMS, res.Victim),
		"phase", "Mops", "notes")
	t.Addf("steady (factor 2)", fmt.Sprintf("%.3f", res.SteadyMops), "real sockets, wall-clock Mops")
	t.Addf("kill window", fmt.Sprintf("%.3f", res.KillMops),
		fmt.Sprintf("ms%d SIGKILLed %v in: %d chunks failed over, %d lost", res.Victim, killAfter, res.FailedOver, res.LostChunks))
	t.Addf("repair", "-",
		fmt.Sprintf("%d chunks re-replicated in %v; %d under-replicated left", res.RepairedChunks, res.RepairWall.Round(time.Millisecond), res.UnderReplicated))
	valid := "ok"
	if res.ValidateErr != nil {
		valid = res.ValidateErr.Error()
	}
	t.Addf("recovered", fmt.Sprintf("%.3f", res.RecoveredMops),
		fmt.Sprintf("acked writes %d, lost %d, dup/phantom %d; validate %s",
			res.AckedWrites, res.LostAcked, res.DupOrPhantom, valid))
	t.Note("the victim is a real OS process killed with SIGKILL; failover runs inside the detecting verb")
	t.Note("wall-clock throughput is reported, not band-gated — the gate is zero lost acked writes")
	return t, res, nil
}

// tcpFaultGate is the CI check behind `shermanbench -exp tcpfault -check`:
// the SIGKILLed server must lose zero acknowledged writes (each tracked key
// reachable exactly once), at least one chunk must actually have failed
// over with none lost outright, repair must restore full redundancy on a
// Validate-clean tree, and both fault windows must have made progress.
func tcpFaultGate(r *tcpFaultResult) error {
	if r == nil {
		return fmt.Errorf("tcpfault gate: experiment did not run")
	}
	if r.AckedWrites == 0 {
		return fmt.Errorf("tcpfault gate: kill window acknowledged no tracked writes")
	}
	if r.LostAcked != 0 {
		return fmt.Errorf("tcpfault gate: %d of %d acked writes lost to the failover", r.LostAcked, r.AckedWrites)
	}
	if r.DupOrPhantom != 0 {
		return fmt.Errorf("tcpfault gate: %d stripe keys not reachable exactly once", r.DupOrPhantom)
	}
	if r.FailedOver == 0 {
		return fmt.Errorf("tcpfault gate: the SIGKILL promoted no chunks (victim empty?)")
	}
	if r.LostChunks != 0 {
		return fmt.Errorf("tcpfault gate: %d chunks lost every copy", r.LostChunks)
	}
	if r.UnderReplicated != 0 {
		return fmt.Errorf("tcpfault gate: %d chunks still under-replicated after repair", r.UnderReplicated)
	}
	if r.ValidateErr != nil {
		return fmt.Errorf("tcpfault gate: tree invalid after repair: %w", r.ValidateErr)
	}
	if r.KillMops <= 0 || r.RecoveredMops <= 0 {
		return fmt.Errorf("tcpfault gate: no progress in the kill or recovered window")
	}
	return nil
}
