package bench

import (
	"fmt"

	"sherman/internal/core"
	"sherman/internal/workload"
)

// pipelineDepths is the depth sweep of the latency-hiding experiment.
var pipelineDepths = []int{1, 2, 4, 8}

// pipelineThreadsPerCS keeps the sweep in the latency-bound regime: with the
// full 22 threads/CS the fabric is already near its IOPS bound at depth 1
// and deeper pipelines can only re-divide it. Per-thread speedup — the
// paper's reason for running multiple coroutines per thread — shows at
// modest thread counts.
const pipelineThreadsPerCS = 4

func pipelineExp(s Scale, name string, mix workload.Mix, depth int) TreeExp {
	e := s.treeExp(name, mix, workload.Uniform, core.ShermanConfig())
	e.ThreadsPerCS = pipelineThreadsPerCS
	if s.ThreadsPerCS < pipelineThreadsPerCS {
		e.ThreadsPerCS = s.ThreadsPerCS
	}
	e.PipelineDepth = depth
	return e.Defaults()
}

// PipelineTables reports the pipelined-execution experiment: the depth
// sweep that quantifies latency hiding. Not a paper figure — the paper's
// clients hide latency with coroutines (§5.1.1, 2 coroutines/thread); this
// table measures what the async Op/Result client surface buys per thread.
// When c is non-nil, typed metrics are recorded for the JSON report and
// regression gate.
func PipelineTables(s Scale, c *Collector) []*Table {
	return []*Table{PipelineSweep(s, c)}
}

// PipelineSweep measures per-thread throughput against pipeline depth for
// put-only and get-only uniform workloads. speedup is per-thread throughput
// relative to depth 1; hiding is the measured latency-hiding ratio (summed
// op latencies over the union of their execution intervals); depth-bar is
// the mean outstanding depth the executor actually sustained.
func PipelineSweep(s Scale, c *Collector) *Table {
	t := NewTable("Pipeline: per-thread throughput vs depth (uniform, Sherman)",
		"mix", "depth", "Mops", "Kops/thread", "speedup", "hiding", "depth-bar", "p50(us)", "p99(us)")
	for _, m := range []struct {
		name string
		mix  workload.Mix
	}{{"put-only", workload.WriteOnly}, {"get-only", workload.ReadOnly}} {
		var base float64
		for _, d := range pipelineDepths {
			e := pipelineExp(s, m.name, m.mix, d)
			r := RunTreeN(e, s.runs())
			threads := float64(e.NumCS * e.ThreadsPerCS)
			if threads == 0 {
				threads = 1
			}
			perThread := r.Mops / threads
			if d == 1 {
				base = perThread
			}
			speedup := "-"
			if base > 0 {
				speedup = fmt.Sprintf("%.2fx", perThread/base)
			}
			hiding, depthBar := "-", "-"
			if r.Rec.PipelinedOps > 0 {
				hiding = fmt.Sprintf("%.2f", r.Rec.HidingRatio())
				depthBar = fmt.Sprintf("%.2f", r.Rec.PipelineDepths.Mean())
			}
			t.Add(m.name, fmt.Sprint(d), MopsString(r.Mops),
				fmt.Sprintf("%.1f", perThread*1000), speedup, hiding, depthBar,
				USString(r.P50), USString(r.P99))
			c.Add(Metric{
				Exp:  "pipeline",
				Name: fmt.Sprintf("pipeline/%s/depth=%d", m.name, d),
				Gate: true,
				Mops: r.Mops, KopsPerThread: perThread * 1000,
				P50NS: r.P50, P99NS: r.P99, Hiding: r.Rec.HidingRatio(),
			})
		}
	}
	t.Note("depth=1 is the synchronous client; speedup is per-thread throughput vs depth 1")
	t.Note("hiding = summed op latencies / union of execution intervals (1.0 = serialized)")
	t.Note("p50/p99 are issue-to-completion latencies; pipelining trades per-op latency for throughput")
	return t
}

// PipelineGate is the CI check behind `shermanbench -exp pipeline -check`:
// depth-4 throughput must beat depth-1 for both put- and get-only uniform
// workloads, and the measured hiding ratio at depth 4 must exceed 1.5x. It
// evaluates the metrics the sweep already collected (same thread count at
// every depth, so total Mops compares per-thread throughput) rather than
// re-running the experiments.
func PipelineGate(ms []Metric) error {
	byName := make(map[string]Metric, len(ms))
	for _, m := range ms {
		byName[m.Name] = m
	}
	for _, mix := range []string{"put-only", "get-only"} {
		d1, ok1 := byName[fmt.Sprintf("pipeline/%s/depth=1", mix)]
		d4, ok4 := byName[fmt.Sprintf("pipeline/%s/depth=4", mix)]
		if !ok1 || !ok4 {
			return fmt.Errorf("pipeline gate: %s depth-1/4 metrics missing from the run", mix)
		}
		if d4.Mops <= d1.Mops {
			return fmt.Errorf("pipeline gate: %s depth-4 throughput %.3f Mops not above depth-1 %.3f Mops",
				mix, d4.Mops, d1.Mops)
		}
		if d4.Hiding <= 1.5 {
			return fmt.Errorf("pipeline gate: %s depth-4 hiding ratio %.2f not above 1.5", mix, d4.Hiding)
		}
	}
	return nil
}
