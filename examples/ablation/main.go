// Ablation walkthrough: rebuild Figure 10's experiment interactively with
// the public API, adding Sherman's techniques one at a time on top of the
// FG+ baseline under a skewed write-intensive workload and printing how
// each one moves throughput and tail latency.
//
// This is the example to read when deciding which techniques your own
// index needs: TreeOptions.Advanced exposes exactly these switches.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"sync"

	"sherman"
)

const (
	keys      = 100_000
	workers   = 64
	opsPerWkr = 300
	theta     = 0.99
)

type step struct {
	name string
	adv  sherman.AdvancedOptions
}

func main() {
	// Each step enables one more technique, in the paper's order
	// (Figure 10): FG+ -> +Combine -> +On-Chip -> +Hierarchical -> +2-Level.
	steps := []step{
		{"FG+", sherman.AdvancedOptions{}},
		{"+Combine", sherman.AdvancedOptions{
			CombineCommands: true}},
		{"+On-Chip", sherman.AdvancedOptions{
			CombineCommands: true, OnChipLocks: true}},
		{"+Hierarchical", sherman.AdvancedOptions{
			CombineCommands: true, OnChipLocks: true,
			LocalLockTables: true, WaitQueues: true, Handover: true}},
		{"+2-Level Ver", sherman.AdvancedOptions{
			CombineCommands: true, OnChipLocks: true,
			LocalLockTables: true, WaitQueues: true, Handover: true,
			TwoLevelVersions: true}},
	}

	fmt.Printf("write-intensive skewed workload: %d keys, %d workers, zipf(%.2f)\n\n", keys, workers, theta)
	fmt.Printf("%-14s  %8s  %10s  %10s  %11s  %10s\n",
		"config", "Mops", "p50 (us)", "p99 (us)", "RT/write", "handovers")

	var base float64
	for i, st := range steps {
		mops, p50, p99, rtPerWrite, handovers := run(st)
		marker := ""
		if i == 0 {
			base = mops
		} else if base > 0 {
			marker = fmt.Sprintf("  (%.1fx FG+)", mops/base)
		}
		fmt.Printf("%-14s  %8.2f  %10.1f  %10.1f  %11.2f  %10d%s\n",
			st.name, mops, float64(p50)/1000, float64(p99)/1000,
			rtPerWrite, handovers, marker)
	}

	fmt.Println("\nWhat to look for (paper, Figure 10b):")
	fmt.Println("  +Combine      cuts a round trip per write -> fewer blocked conflicts")
	fmt.Println("  +On-Chip      removes PCIe from lock CAS -> retries get absorbed")
	fmt.Println("  +Hierarchical queues conflicts locally -> remote retries vanish, fairness")
	fmt.Println("  +2-Level Ver  writes one entry, not one node -> bandwidth headroom")
}

func run(st step) (mops float64, p50, p99 int64, rtPerWrite float64, handovers int64) {
	cluster, err := sherman.NewCluster(sherman.ClusterConfig{
		MemoryServers:  4,
		ComputeServers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	adv := st.adv
	tree, err := cluster.CreateTree(sherman.TreeOptions{Advanced: &adv})
	if err != nil {
		log.Fatal(err)
	}
	kvs := make([]sherman.KV, keys)
	for i := range kvs {
		kvs[i] = sherman.KV{Key: uint64(i + 1), Value: uint64(i)}
	}
	if err := tree.Bulkload(kvs); err != nil {
		log.Fatal(err)
	}

	zetan := 0.0
	for i := 1; i <= keys; i++ {
		zetan += 1 / math.Pow(float64(i), theta)
	}

	sessions := make([]*sherman.Session, workers)
	for w := range sessions {
		sessions[w] = tree.Session(w % cluster.ComputeServers())
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := sessions[w]
			rng := rand.New(rand.NewPCG(uint64(w)+1, 0xbeef))
			for i := 0; i < opsPerWkr; i++ {
				k := zipfKey(rng, zetan)
				if i%2 == 0 {
					s.Put(k, uint64(i)) // write-intensive: 50% inserts
				} else {
					s.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()

	var ops, writes, rts int64
	var makespan int64
	for _, s := range sessions {
		st := s.Stats()
		ops += st.Lookups + st.Inserts
		writes += st.Inserts
		rts += st.RoundTrips
		handovers += st.Handovers
		if v := s.VirtualNow(); v > makespan {
			makespan = v
		}
		if st.P50LatencyNS > p50 {
			p50 = st.P50LatencyNS
		}
		if st.P99LatencyNS > p99 {
			p99 = st.P99LatencyNS
		}
	}
	mops = float64(ops) / float64(makespan) * 1e3
	rtPerWrite = float64(rts) / float64(writes)
	return mops, p50, p99, rtPerWrite, handovers
}

// zipfKey draws a scrambled-Zipf key in [1, keys].
func zipfKey(rng *rand.Rand, zetan float64) uint64 {
	u := rng.Float64()
	uz := u * zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, theta):
		rank = 1
	default:
		eta := (1 - math.Pow(2.0/keys, 1-theta)) / (1 - (1+1/math.Pow(2, theta))/zetan)
		rank = uint64(float64(keys) * math.Pow(eta*u-eta+1, 1/(1-theta)))
		if rank >= keys {
			rank = keys - 1
		}
	}
	x := rank
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x%keys + 1
}
