package bench

import (
	"fmt"

	"sherman/internal/core"
	"sherman/internal/hocl"
	"sherman/internal/layout"
	"sherman/internal/workload"
)

// Scale sizes all experiments; the paper's setup (1 B keys, 176-528 client
// threads, minutes of runtime) is scaled down so the whole evaluation runs
// on one machine (DESIGN.md §2). Shapes, not absolute numbers, are the
// reproduction target.
type Scale struct {
	Keys         uint64
	ThreadsPerCS int
	WarmupOps    int
	// MeasureNS is the virtual measurement window for tree and lock
	// experiments.
	MeasureNS int64
	// WriteOps sizes the raw RDMA_WRITE saturation runs of Figure 3.
	WriteOps int
	// Runs averages each tree experiment over this many runs (the paper
	// averages 3 or more, §5.1.3); 0 means 1.
	Runs int
}

func (s Scale) runs() int {
	if s.Runs <= 0 {
		return 1
	}
	return s.Runs
}

// FullScale is the default for cmd/shermanbench.
func FullScale() Scale {
	return Scale{Keys: 2 << 20, ThreadsPerCS: 22, WarmupOps: 300, MeasureNS: 10_000_000, WriteOps: 4000, Runs: 3}
}

// QuickScale keeps `go test -bench` runs short.
func QuickScale() Scale {
	return Scale{Keys: 256 << 10, ThreadsPerCS: 8, WarmupOps: 100, MeasureNS: 3_000_000, WriteOps: 1000}
}

func (s Scale) treeExp(name string, mix workload.Mix, dist workload.Dist, cfg core.Config) TreeExp {
	return TreeExp{
		Name:         name,
		Keys:         s.Keys,
		ThreadsPerCS: s.ThreadsPerCS,
		WarmupOps:    s.WarmupOps,
		MeasureNS:    s.MeasureNS,
		Mix:          mix,
		Dist:         dist,
		Tree:         cfg,
	}
}

// TreeExpScaled builds a tree experiment at the given scale; the root-level
// benchmarks use it to parameterize per-figure runs.
func TreeExpScaled(s Scale, name string, mix workload.Mix, dist workload.Dist, cfg core.Config) TreeExp {
	return s.treeExp(name, mix, dist, cfg)
}

// RunTreeScaled runs one scaled tree experiment.
func RunTreeScaled(s Scale, name string, mix workload.Mix, dist workload.Dist, cfg core.Config) TreeResult {
	return RunTree(s.treeExp(name, mix, dist, cfg))
}

// Level1WorkingSetBytes estimates the memory needed to cache every level-1
// node of a bulkloaded tree with the given key count — the 100% point of
// the Figure 15(c) cache-size sweep.
func Level1WorkingSetBytes(keys uint64, cfg core.Config) int64 {
	leaves := float64(keys) * 0.8 / (float64(cfg.Format.LeafCap) * 0.8)
	l1Nodes := leaves / (float64(cfg.Format.IntCap) * 0.8)
	return int64(l1Nodes * float64(cfg.Format.NodeSize))
}

// Table1 reproduces Table 1: FG+ (the one-sided approach) under read- and
// write-intensive workloads, uniform and skewed.
func Table1(s Scale) *Table {
	t := NewTable("Table 1: one-sided approach (FG+) performance",
		"workload", "dist", "Mops", "p50(us)", "p90(us)", "p99(us)")
	cells := []struct {
		mixName string
		mix     workload.Mix
		dist    workload.Dist
	}{
		{"read-intensive", workload.ReadIntensive, workload.Uniform},
		{"read-intensive", workload.ReadIntensive, workload.Zipfian},
		{"write-intensive", workload.WriteIntensive, workload.Uniform},
		{"write-intensive", workload.WriteIntensive, workload.Zipfian},
	}
	for _, c := range cells {
		r := RunTreeN(s.treeExp("FG+", c.mix, c.dist, core.FGPlusConfig()), s.runs())
		dist := "uniform"
		if c.dist == workload.Zipfian {
			dist = "skew"
		}
		t.Add(c.mixName, dist, MopsString(r.Mops),
			USString(r.P50), USString(r.P90), USString(r.P99))
	}
	t.Note("paper: write-intensive+skew collapses (0.34 Mops, ~20 ms p99)")
	return t
}

// Fig2 reproduces Figure 2: FG-style RDMA exclusive locks under increasing
// contention.
func Fig2(s Scale) *Table {
	t := NewTable("Figure 2: RDMA-based exclusive locks vs contention",
		"theta", "Mops", "p50(us)", "p99(us)")
	for _, theta := range []float64{0, 0.8, 0.9, 0.95, 0.99} {
		r := RunLocks(LockExp{
			Name: fmt.Sprintf("theta=%.2f", theta), Theta: theta,
			NumCS: 7, Mode: hocl.Baseline(), MeasureNS: s.MeasureNS,
		})
		label := fmt.Sprintf("%.2f", theta)
		if theta == 0 {
			label = "uniform"
		}
		t.Add(label, MopsString(r.Mops), USString(r.P50), USString(r.P99))
	}
	t.Note("paper: collapse to ~0.5 Mops with ms-scale p99 at theta=0.99")
	return t
}

// Fig3 reproduces Figure 3: RDMA_WRITE throughput vs IO size, inbound and
// outbound.
func Fig3(s Scale) *Table {
	t := NewTable("Figure 3: RDMA_WRITE throughput vs IO size",
		"size(B)", "inbound(Mops)", "outbound(Mops)")
	for _, size := range []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096} {
		in := RunWrites(WriteExp{IOSize: size, Inbound: true, Ops: s.WriteOps})
		out := RunWrites(WriteExp{IOSize: size, Inbound: false, Ops: s.WriteOps, Threads: 32})
		t.Add(fmt.Sprint(size), MopsString(in.Mops), MopsString(out.Mops))
	}
	t.Note("paper: IOPS-bound (>50 Mops) up to ~128 B, bandwidth-bound beyond")
	return t
}

// Table2 is the qualitative comparison; it has no measurements.
func Table2() *Table {
	t := NewTable("Table 2: RDMA-based distributed tree indexes (qualitative)",
		"index", "read perf", "write perf", "no hw mod", "disagg. memory")
	t.Add("Cell", "Medium", "Medium", "yes", "no")
	t.Add("FaRM-Tree", "High", "High", "yes", "no")
	t.Add("FG", "Medium", "Low", "yes", "yes")
	t.Add("HT-Tree", "High", "High", "no", "yes")
	t.Add("Sherman", "High", "High", "yes", "yes")
	return t
}

// Ablation reproduces Figures 10 (skewed) and 11 (uniform): each technique
// applied on top of FG+, across write-only, write-intensive and
// read-intensive mixes.
func Ablation(s Scale, dist workload.Dist) []*Table {
	figure := "Figure 11 (uniform)"
	if dist == workload.Zipfian {
		figure = "Figure 10 (skewed, theta=0.99)"
	}
	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"write-only", workload.WriteOnly},
		{"write-intensive", workload.WriteIntensive},
		{"read-intensive", workload.ReadIntensive},
	}
	var out []*Table
	for _, m := range mixes {
		t := NewTable(fmt.Sprintf("%s: %s", figure, m.name),
			"config", "Mops", "p50(us)", "p99(us)")
		for _, step := range core.AblationSteps() {
			r := RunTreeN(s.treeExp(step.String(), m.mix, dist, core.AblationConfig(step)), s.runs())
			t.Add(step.String(), MopsString(r.Mops), USString(r.P50), USString(r.P99))
		}
		out = append(out, t)
	}
	return out
}

// Fig12 reproduces Figure 12: range query throughput, range-only and
// range-write, FG+ vs Sherman.
func Fig12(s Scale) *Table {
	t := NewTable("Figure 12: range query performance (skewed ranges)",
		"workload", "span", "FG+(Mops)", "Sherman(Mops)")
	for _, w := range []struct {
		name string
		mix  workload.Mix
	}{{"range-only", workload.RangeOnly}, {"range-write", workload.RangeWrite}} {
		for _, span := range []int{100, 1000} {
			var row [2]float64
			for i, cfg := range []core.Config{core.FGPlusConfig(), core.ShermanConfig()} {
				e := s.treeExp(w.name, w.mix, workload.Zipfian, cfg)
				e.RangeSpan = span
				row[i] = RunTreeN(e, s.runs()).Mops
			}
			t.Add(w.name, fmt.Sprint(span), MopsString(row[0]), MopsString(row[1]))
		}
	}
	t.Note("paper: FG+ edges out Sherman ~2%% at span=100 range-only; Sherman up to 1.8x in range-write")
	return t
}

// Fig13 reproduces Figure 13: throughput scalability with client threads,
// write-intensive, three contention levels.
func Fig13(s Scale) []*Table {
	var out []*Table
	threadCounts := []int{2, 4, 8, 16, 33, 44, 66}
	// The 264-528-thread cells are memory- and wall-clock-heavy (one whole
	// cluster per run); a single run per point keeps the sweep tractable
	// and the curve shape is robust.
	runs := 1
	for _, d := range []struct {
		name  string
		dist  workload.Dist
		theta float64
	}{{"uniform", workload.Uniform, 0.99}, {"skew=0.9", workload.Zipfian, 0.9}, {"skew=0.99", workload.Zipfian, 0.99}} {
		t := NewTable(fmt.Sprintf("Figure 13: scalability, write-intensive, %s", d.name),
			"threads", "FG+(Mops)", "Sherman(Mops)")
		for _, tc := range threadCounts {
			var row [2]float64
			for i, cfg := range []core.Config{core.FGPlusConfig(), core.ShermanConfig()} {
				e := s.treeExp("scal", workload.WriteIntensive, d.dist, cfg)
				e.ThreadsPerCS = tc
				e.Theta = d.theta
				row[i] = RunTreeN(e, runs).Mops
			}
			t.Add(fmt.Sprint(tc*8), MopsString(row[0]), MopsString(row[1]))
		}
		out = append(out, t)
	}
	return out
}

// Fig14 reproduces Figure 14: internal metrics under write-intensive skewed
// load — read retries, write round-trip CDF, and write sizes.
func Fig14(s Scale) []*Table {
	results := map[string]TreeResult{}
	for _, cfg := range []core.Config{core.FGPlusConfig(), core.ShermanConfig()} {
		r := RunTreeN(s.treeExp(cfg.Name(), workload.WriteIntensive, workload.Zipfian, cfg), s.runs())
		results[cfg.Name()] = r
	}
	fg, sh := results["FG+"], results["Sherman"]

	retry := NewTable("Figure 14(a): read-retry counts (fraction of lookups)",
		"retries", "FG+", "Sherman")
	for v := 0; v <= 5; v++ {
		retry.Add(fmt.Sprint(v),
			fmt.Sprintf("%.4f%%", fg.Rec.ReadRetries.Fraction(v)*100),
			fmt.Sprintf("%.4f%%", sh.Rec.ReadRetries.Fraction(v)*100))
	}

	rt := NewTable("Figure 14(b): round trips of write operations",
		"round trips", "FG+", "Sherman")
	for v := 2; v <= 6; v++ {
		rt.Add(fmt.Sprint(v),
			fmt.Sprintf("%.1f%%", fg.Rec.WriteRoundTrips.Fraction(v)*100),
			fmt.Sprintf("%.1f%%", sh.Rec.WriteRoundTrips.Fraction(v)*100))
	}
	rt.Add("p99",
		fmt.Sprint(fg.Rec.WriteRoundTrips.PercentileValue(99)),
		fmt.Sprint(sh.Rec.WriteRoundTrips.PercentileValue(99)))
	rt.Note("paper: 94%% of FG+ writes take 4 RTs; 93.6%% of Sherman writes take 3; 3.6%% take 2 via handover")

	ws := NewTable("Figure 14(c): write sizes of write operations", "system", "distribution")
	ws.Add("FG+", fg.Rec.WriteSizes.String())
	ws.Add("Sherman", sh.Rec.WriteSizes.String())
	ws.Note("paper: Sherman writes back ~17 B unless splitting; FG+ always ~1 KB")
	return []*Table{retry, rt, ws}
}

// Fig15KeySize reproduces Figures 15(a)/(b): throughput vs key size with
// 32-entry nodes, write-intensive.
func Fig15KeySize(s Scale, dist workload.Dist) *Table {
	name := "Figure 15(a): key-size sensitivity (uniform)"
	if dist == workload.Zipfian {
		name = "Figure 15(b): key-size sensitivity (skewed)"
	}
	t := NewTable(name, "key size(B)", "FG+(Mops)", "Sherman(Mops)")
	for _, ks := range []int{16, 32, 64, 128, 256, 512, 1024} {
		var row [2]float64
		for i, base := range []core.Config{core.FGPlusConfig(), core.ShermanConfig()} {
			cfg := base
			cfg.Format = layout.NewFormatFixedCap(cfg.Format.Mode, ks, 32)
			e := s.treeExp("keysize", workload.WriteIntensive, dist, cfg)
			e.Keys = s.Keys / 4 // the paper also shrinks the dataset here
			row[i] = RunTree(e).Mops
		}
		t.Add(fmt.Sprint(ks), MopsString(row[0]), MopsString(row[1]))
	}
	t.Note("paper: both drop with key size; Sherman's edge grows from ~1.17x to ~1.47x (uniform)")
	return t
}

// Fig15Cache reproduces Figure 15(c): throughput and hit ratio vs index
// cache size (uniform write-intensive). Cache sizes are expressed relative
// to the level-1 working set, which the key-space scaling shrinks
// proportionally (DESIGN.md §2).
func Fig15Cache(s Scale) *Table {
	t := NewTable("Figure 15(c): index cache size sensitivity (uniform)",
		"cache(% of L1 set)", "cache(KB)", "Mops", "hit ratio")
	cfg := core.ShermanConfig()
	// Level-1 working set: one node per LeafCap*fill leaves.
	leaves := float64(s.Keys) * 0.8 / (float64(cfg.Format.LeafCap) * 0.8)
	l1Nodes := leaves / (float64(cfg.Format.IntCap) * 0.8)
	wsBytes := int64(l1Nodes * float64(cfg.Format.NodeSize))
	for _, pct := range []int{10, 25, 50, 75, 100, 150} {
		c := cfg
		c.CacheBytes = wsBytes * int64(pct) / 100
		if c.CacheBytes < int64(cfg.Format.NodeSize) {
			c.CacheBytes = int64(cfg.Format.NodeSize)
		}
		e := s.treeExp("cache", workload.WriteIntensive, workload.Uniform, c)
		r := RunTree(e)
		t.Add(fmt.Sprintf("%d%%", pct), fmt.Sprint(c.CacheBytes/1024),
			MopsString(r.Mops), fmt.Sprintf("%.1f%%", r.HitRatio*100))
	}
	t.Note("paper: hit ratio approaches ~98%% as the cache covers the level-1 set; throughput follows")
	return t
}

// Fig16 reproduces Figure 16: the HOCL-internal ablation on the raw lock
// workload (176 threads, 10240 locks, theta=0.99).
func Fig16(s Scale) *Table {
	t := NewTable("Figure 16: HOCL ablation (skewed locks, theta=0.99)",
		"config", "Mops", "p50(us)", "p99(us)", "handovers", "CAS retries")
	steps := []struct {
		name string
		mode hocl.Mode
	}{
		{"Baseline", hocl.Baseline()},
		{"On-Chip", hocl.Mode{OnChip: true}},
		{"Hierarchical", hocl.Mode{OnChip: true, Local: true}},
		{"Wait Queue", hocl.Mode{OnChip: true, Local: true, WaitQueue: true}},
		{"Handover", hocl.Sherman()},
	}
	for _, st := range steps {
		r := RunLocks(LockExp{Name: st.name, Theta: 0.99, Mode: st.mode, MeasureNS: s.MeasureNS})
		t.Add(st.name, MopsString(r.Mops), USString(r.P50), USString(r.P99),
			fmt.Sprint(r.Handovers), fmt.Sprint(r.GlobalRetries))
	}
	t.Note("paper: each step multiplies throughput (2.9x on-chip, 3.9x hierarchical, 2.3x handover)")
	return t
}
