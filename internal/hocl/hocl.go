// Package hocl implements Sherman's hierarchical on-chip lock (§4.3): global
// lock tables (GLTs) stored in the on-chip device memory of memory-server
// NICs, and per-compute-server local lock tables (LLTs) with FIFO wait
// queues and a bounded lock-handover mechanism.
//
// The package also implements every degraded configuration the paper
// ablates (Figure 16 and the +On-Chip / +Hierarchical steps of Figures 10
// and 11): host-memory lock tables, lockless-local spinning, local tables
// without wait queues, and wait queues without handover.
package hocl

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"sherman/internal/rdma"
	"sherman/internal/transport"
)

// DefaultLocksPerMS is the default GLT size. The paper packs 131,072
// 16-bit locks into the 256 KB of ConnectX-5 on-chip memory; the simulator
// defaults lower to keep per-CS local tables small in-process (see
// DESIGN.md §2), and accepts the full value via Config.
const DefaultLocksPerMS = 16384

// DefaultMaxHandover bounds consecutive intra-CS handovers so remote
// compute servers cannot starve (§4.3: MAX_DEPTH = 4).
const DefaultMaxHandover = 4

// Mode selects which parts of HOCL are active; the zero value is the FG-like
// baseline (host-memory locks, global CAS spinning, no local coordination).
type Mode struct {
	// OnChip stores GLTs in NIC on-chip device memory (16-bit masked-CAS
	// locks) instead of host memory (64-bit CAS locks behind PCIe).
	OnChip bool
	// Local enables per-CS local lock tables: a thread acquires the local
	// lock before issuing any remote CAS, eliminating intra-CS retry storms.
	Local bool
	// WaitQueue adds FIFO wait queues to local locks, providing
	// first-come-first-served fairness within a CS. Requires Local.
	WaitQueue bool
	// Handover lets a releasing thread pass the *global* lock directly to
	// the next local waiter, saving that waiter's remote acquisition round
	// trip. Requires WaitQueue.
	Handover bool
}

// Sherman is the full HOCL configuration.
func Sherman() Mode {
	return Mode{OnChip: true, Local: true, WaitQueue: true, Handover: true}
}

// Baseline is the FG-style RDMA spin lock: 64-bit CAS on host memory,
// release by WRITE, no CS-side coordination.
func Baseline() Mode { return Mode{} }

func (m Mode) validate() error {
	if m.WaitQueue && !m.Local {
		return fmt.Errorf("hocl: WaitQueue requires Local")
	}
	if m.Handover && !m.WaitQueue {
		return fmt.Errorf("hocl: Handover requires WaitQueue")
	}
	return nil
}

// Stats aggregates lock activity across all threads of a Manager.
type Stats struct {
	// Acquisitions counts successful lock acquisitions.
	Acquisitions atomic.Int64
	// Handovers counts acquisitions satisfied by intra-CS handover, which
	// skip the remote CAS entirely.
	Handovers atomic.Int64
	// GlobalRetries counts failed remote CAS attempts.
	GlobalRetries atomic.Int64
	// LocalWaits counts acquisitions that had to wait for a local holder.
	LocalWaits atomic.Int64
	// MaxWaiters is the high-water mark of threads queued on one global
	// lock — the depth of the worst convoy (diagnostic for the §3.2.2
	// collapse).
	MaxWaiters atomic.Int64
	// Grants counts lock handoffs to queued waiters; GrantSpinnersSum sums
	// the queue depth at those handoffs (diagnostics: their ratio is the
	// average convoy depth a winner's CAS must traverse).
	Grants           atomic.Int64
	GrantSpinnersSum atomic.Int64

	// LeaseExpiries counts lock slots orphaned by a compute-server crash
	// (holder died while holding the global lock); Reclaims counts the
	// expired-lease reclamations survivors performed — each frees one
	// orphaned slot by CASing the dead holder's stamp out of the lock word
	// after its lease ran out.
	LeaseExpiries atomic.Int64
	Reclaims      atomic.Int64

	// DeadWaiterKills counts queued waiters woken only to find their own
	// compute server dead (they abort without acquiring).
	DeadWaiterKills atomic.Int64
}

func (s *Stats) noteWaiters(n int) {
	v := int64(n)
	for {
		old := s.MaxWaiters.Load()
		if v <= old || s.MaxWaiters.CompareAndSwap(old, v) {
			return
		}
	}
}

// Config sizes a lock manager.
type Config struct {
	Mode Mode
	// LocksPerMS is the GLT size per memory server; 0 means
	// DefaultLocksPerMS.
	LocksPerMS int
	// MaxHandover is the consecutive-handover bound; 0 means
	// DefaultMaxHandover.
	MaxHandover int
}

// Manager owns the global lock tables of every memory server and the local
// lock tables of every compute server.
type Manager struct {
	mode        Mode
	locksPerMS  int
	maxHandover int
	f           *rdma.Fabric // nil for a remote manager

	// virtual selects the acquisition protocol. A virtual manager (built by
	// NewManager over the simulated fabric) serializes each global lock
	// through its gslot so virtual-time ordering holds regardless of
	// goroutine scheduling, and requires clients to implement
	// transport.VirtualTimer. A remote manager (NewRemoteManager) has no
	// slot state at all: mutual exclusion is exactly the physical CAS on the
	// lock word, retried over the real network, with lease expiry measured
	// on the real clock.
	virtual bool

	// gltHostBase[ms] is the host-memory base offset of ms's lock table
	// when !mode.OnChip. On-chip GLTs start at on-chip offset 0.
	gltHostBase []uint64

	lltMu sync.Mutex
	llts  []*localTable // indexed by CS id; nil when !mode.Local

	// waiterPool recycles gwaiters: each waiter receives exactly one grant
	// on every wake path (release handoff, orphan promotion, death kill), so
	// after the receive nothing references it and its one-slot channel is
	// empty again — contended waits then allocate nothing in steady state.
	waiterPool sync.Pool

	// slots[ms*locksPerMS+idx] serializes each global lock in virtual time.
	// Worker goroutines execute at unrelated real-time rates, so a raw
	// real-time CAS race would let a thread whose virtual clock is far in
	// the future snatch a lock from virtually-earlier waiters, dragging the
	// lock's timeline forward and billing laggards phantom retry storms.
	// Instead each slot tracks its holder and grants releases to the
	// virtually-earliest waiter, while the waiters pay — against the NIC
	// pipelines and atomic buckets — for every spin retry real hardware
	// would have issued during their wait (§3.2.2). Real mutual exclusion
	// and faithful virtual-time ordering both hold, independent of
	// goroutine scheduling.
	slots []gslot

	// Stats is safe to read after threads quiesce.
	Stats Stats
}

// gslot is the simulation state of one global lock.
type gslot struct {
	mu       sync.Mutex
	held     bool
	holderCS int        // CS currently holding the lock (valid when held)
	deadCS   int        // holder's CS id + 1 when the holder crashed; 0 = live
	deadV    int64      // lease anchor of the dead holder (valid when deadCS != 0)
	relV     int64      // virtual time of the most recent release
	waiters  []*gwaiter // threads blocked on the held lock

	// Arrival history for convoy-depth estimation. Client goroutines run at
	// unrelated real-time speeds, so at any real instant the queue holds
	// only a few waiters even when — in virtual time — dozens of clients
	// are spinning on this lock (their wait windows overlap the lock's
	// timeline, which runs far ahead of the client population under
	// contention). The virtual convoy depth is therefore estimated from
	// the observed arrival rate: V = queued + rate x (lock lead over the
	// newest arrival).
	arrivals    [16]int64 // ring of recent arrival clocks
	ai          int       // next ring index
	acount      int       // samples recorded (saturates at ring size)
	lastArrival int64     // newest arrival clock seen
}

// noteArrival records a waiter's clock for rate estimation. Caller holds mu.
func (s *gslot) noteArrival(clock int64) {
	s.arrivals[s.ai] = clock
	s.ai = (s.ai + 1) % len(s.arrivals)
	if s.acount < len(s.arrivals) {
		s.acount++
	}
	if clock > s.lastArrival {
		s.lastArrival = clock
	}
}

// convoyDepth estimates how many clients are virtually spinning on the lock
// at virtual time rel, bounded by the client population (each client has at
// most one command in flight). Caller holds mu.
func (s *gslot) convoyDepth(rel int64, maxClients int) int {
	v := len(s.waiters)
	if s.acount == len(s.arrivals) {
		oldest := s.arrivals[s.ai] // ring is full: next slot holds the oldest
		if span := s.lastArrival - oldest; span > 0 {
			rate := float64(s.acount-1) / float64(span) // arrivals per virtual ns
			if lead := rel - s.lastArrival; lead > 0 {
				v += int(rate * float64(lead))
			}
		}
	}
	if maxClients > 0 && v > maxClients {
		v = maxClients
	}
	return v
}

// gwaiter is one thread waiting for a global lock.
type gwaiter struct {
	clock int64      // the waiter's virtual clock at arrival
	cs    int        // the waiter's compute server
	ch    chan grant // receives the releaser's virtual release time
}

// newWaiter takes a recycled gwaiter from the pool (its channel is empty —
// every wake path sends exactly one grant, which the owner received before
// returning it) or builds a fresh one.
func (m *Manager) newWaiter(clock int64, cs int) *gwaiter {
	if v := m.waiterPool.Get(); v != nil {
		w := v.(*gwaiter)
		w.clock, w.cs = clock, cs
		return w
	}
	return &gwaiter{clock: clock, cs: cs, ch: make(chan grant, 1)}
}

// grant is the message a releaser passes to the waiter it wakes.
type grant struct {
	rel int64 // releaser's virtual release time
	// spinners is the number of threads still waiting at handoff. On real
	// hardware every spinner keeps one CAS permanently in flight, so the
	// NIC's atomic unit carries a backlog of ~spinners * service-time that
	// the winner's CAS must traverse before it can observe the released
	// lock (§3.2.2) — the mechanism behind Figure 2's collapse.
	spinners int

	// killed wakes a waiter whose own compute server died: it aborts
	// without acquiring. reclaim wakes a surviving waiter whose lock holder
	// died: ownership of the slot transfers, and the waiter performs the
	// lease-expiry reclamation against the dead holder's stamp (deadCS,
	// lease anchored at deadV).
	killed  bool
	reclaim bool
	deadCS  int
	deadV   int64
}

// NewManager builds the lock tables over fabric f. Host-memory GLTs reserve
// one chunk per memory server at setup time.
func NewManager(f *rdma.Fabric, cfg Config) *Manager {
	if err := cfg.Mode.validate(); err != nil {
		panic(err)
	}
	n := cfg.LocksPerMS
	if n == 0 {
		n = DefaultLocksPerMS
	}
	maxHO := cfg.MaxHandover
	if maxHO == 0 {
		maxHO = DefaultMaxHandover
	}
	m := &Manager{mode: cfg.Mode, locksPerMS: n, maxHandover: maxHO, f: f, virtual: true}
	// Tables are sized for the fabric's memory-server *capacity*, not its
	// current count, so AddServer can attach servers while clients hold and
	// contend locks — the slot array and local tables never move.
	maxMS := f.MaxServers()
	m.gltHostBase = make([]uint64, maxMS)
	for _, s := range f.Servers() {
		m.wireServer(s)
	}
	if cfg.Mode.Local {
		for range f.CSs {
			m.llts = append(m.llts, newLocalTable(maxMS*n))
		}
	}
	m.slots = make([]gslot, maxMS*n)
	// New servers are wired (on-chip capacity check, host GLT chunk) before
	// the fabric publishes them, so no client can lock an address on a
	// server whose table slice is not ready.
	f.OnAddServer(m.wireServer)
	// Failure wiring: a compute-server crash orphans every global lock it
	// holds (marked for lease-expiry reclamation) and strands its queued
	// waiters (woken and aborted); a restart resets the CS's local tables.
	f.Faults.OnDeath(m.noteDeath)
	f.Faults.OnRestart(m.resetCS)
	return m
}

// NewRemoteManager builds a lock manager for a real-network transport with
// numMS memory servers and numCS compute servers. There is no fabric and no
// slot arbitration: the physical lock word is the whole truth, acquired by a
// plain CAS retry loop. onChipSize is each server's on-chip capacity in
// bytes (checked against the GLT when Mode.OnChip); growHost reserves the
// host-memory GLT chunk on one server when !Mode.OnChip.
func NewRemoteManager(cfg Config, numMS, numCS, onChipSize int, growHost func(ms uint16) uint64) *Manager {
	if err := cfg.Mode.validate(); err != nil {
		panic(err)
	}
	n := cfg.LocksPerMS
	if n == 0 {
		n = DefaultLocksPerMS
	}
	maxHO := cfg.MaxHandover
	if maxHO == 0 {
		maxHO = DefaultMaxHandover
	}
	m := &Manager{mode: cfg.Mode, locksPerMS: n, maxHandover: maxHO}
	m.gltHostBase = make([]uint64, numMS)
	if cfg.Mode.OnChip {
		if need := n * 2; need > onChipSize {
			panic(fmt.Sprintf("hocl: %d locks need %d B on-chip, NIC has %d B", n, need, onChipSize))
		}
	} else {
		if n*8 > rdma.DefaultChunkSize {
			panic(fmt.Sprintf("hocl: host GLT of %d locks exceeds one chunk", n))
		}
		for ms := 0; ms < numMS; ms++ {
			m.gltHostBase[ms] = growHost(uint16(ms))
		}
	}
	if cfg.Mode.Local {
		for i := 0; i < numCS; i++ {
			m.llts = append(m.llts, newLocalTable(numMS*n))
		}
	}
	return m
}

// LocksPerMS returns the GLT size per memory server.
func (m *Manager) LocksPerMS() int { return m.locksPerMS }

// wireServer prepares one memory server's share of the lock tables: the
// on-chip capacity check, and — in host mode — the GLT chunk reservation.
// It runs at manager creation for existing servers and from the fabric's
// growth hook for scaled-out ones.
func (m *Manager) wireServer(s *rdma.Server) {
	n := m.locksPerMS
	if m.mode.OnChip {
		if need := n * 2; need > s.OnChipSize() {
			panic(fmt.Sprintf("hocl: %d locks need %d B on-chip, NIC has %d B", n, need, s.OnChipSize()))
		}
		return
	}
	if n*8 > rdma.DefaultChunkSize {
		panic(fmt.Sprintf("hocl: host GLT of %d locks exceeds one chunk", n))
	}
	m.gltHostBase[s.ID] = s.Grow()
}

// index hashes a protected object's address into its GLT slot (§4.3, line 5
// of Figure 6). splitmix64 finalizer — fast and well mixed.
func (m *Manager) index(a rdma.Addr) int {
	x := uint64(a)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(m.locksPerMS))
}

// gltAddr returns the global address of lock slot idx on server ms.
func (m *Manager) gltAddr(ms uint16, idx int) rdma.Addr {
	if m.mode.OnChip {
		return rdma.MakeOnChipAddr(ms, uint64(idx)*2)
	}
	return rdma.MakeAddr(ms, m.gltHostBase[ms]+uint64(idx)*8)
}

// Guard is an acquired lock; pass it back to Unlock.
type Guard struct {
	m         *Manager
	ms        uint16
	idx       int
	slot      int
	gaddr     rdma.Addr
	ll        *localLock
	handedOff bool // acquired via handover: global lock still held by this CS
	reclaimed bool // acquired by stealing a dead holder's expired lease
}

// HandedOver reports whether this acquisition skipped the remote CAS.
func (g Guard) HandedOver() bool { return g.handedOff }

// Reclaimed reports whether this acquisition stole the lock from a crashed
// holder after its lease expired. The caller must treat the protected
// object as suspect — the dead holder may have died between its write-backs
// — and re-validate it (the index layer's post-lock consistency-checked
// read does exactly that).
func (g Guard) Reclaimed() bool { return g.reclaimed }

// SameSlot reports whether the lock protecting the object at a is the very
// GLT slot g holds — the slot hashing of §4.3 maps every object of one
// memory server into a fixed table, so distinct nodes can alias. A holder
// may then modify the object at a under g without a second acquisition;
// batch executors use this to keep one guard across sibling leaves whose
// locks collide instead of paying release + re-acquire at the boundary.
func (m *Manager) SameSlot(g Guard, a rdma.Addr) bool {
	return g.m == m && int(a.MS())*m.locksPerMS+m.index(a) == g.slot
}

// Lock acquires the exclusive lock protecting the object at addr, per the
// HOCL_Lock pseudo-code (Figure 6): local lock first (queueing locally under
// contention), then the remote lock in the GLT unless it was handed over.
func (m *Manager) Lock(c transport.Transport, addr rdma.Addr) Guard {
	idx := m.index(addr)
	return m.LockIdx(c, addr.MS(), idx)
}

// LockIdx acquires GLT slot idx on server ms directly, bypassing hashing.
// The lock microbenchmarks (Figures 2 and 16) use it to place exactly N
// distinct locks.
func (m *Manager) LockIdx(c transport.Transport, ms uint16, idx int) Guard {
	slot := int(ms)*m.locksPerMS + idx
	g := Guard{m: m, ms: ms, idx: idx, slot: slot, gaddr: m.gltAddr(ms, idx)}
	if m.mode.Local {
		ll := m.llt(c).lock(slot)
		g.ll = ll
		g.handedOff = ll.acquire(c, m.mode.WaitQueue, &m.Stats)
		if g.handedOff {
			m.Stats.Handovers.Add(1)
			m.Stats.Acquisitions.Add(1)
			return g
		}
	}
	g.reclaimed = m.acquireGlobal(c, g.gaddr, slot)
	m.Stats.Acquisitions.Add(1)
	return g
}

// llt returns the client's CS-local lock table under the table swap lock
// (restart replaces a dead CS's table wholesale).
func (m *Manager) llt(c transport.Transport) *localTable {
	m.lltMu.Lock()
	defer m.lltMu.Unlock()
	return m.llts[c.CSID()]
}

// acquireGlobal acquires the GLT slot: it claims the slot's simulation state
// (queueing behind the current holder when necessary), pays the spin retries
// real hardware would have issued while the lock was held, and then flips
// the physical lock word from 0 to this CS's identifier (+1 so an id of zero
// is distinguishable from "unlocked") with one RDMA_CAS. When the current
// holder crashed, the caller instead becomes the slot's reclaimer and steals
// the lock after the dead holder's lease expires; the return value reports
// that case.
func (m *Manager) acquireGlobal(c transport.Transport, gaddr rdma.Addr, slot int) (reclaimed bool) {
	if !m.virtual {
		return m.acquireGlobalRemote(c, gaddr)
	}
	vt := c.(transport.VirtualTimer)
	s := &m.slots[slot]
	svc := vt.AtomicSvcNS(gaddr)
	var spinners int
	var rel int64
	s.mu.Lock()
	// The dead-CS sweep (noteDeath) and this queueing decision serialize on
	// s.mu, and the injector marks a CS dead before the sweep runs — so a
	// thread of a dying CS either queues early enough for the sweep to
	// abort it, or observes its own death here and aborts itself. Either
	// way no doomed waiter is ever stranded in the queue.
	if !c.Alive() {
		s.mu.Unlock()
		panic(transport.Crash{CS: int(c.CSID())})
	}
	if s.held {
		if s.deadCS != 0 {
			// Orphaned slot with no reclaimer yet: take over directly.
			deadV := s.deadV
			s.deadCS, s.deadV = 0, 0
			s.holderCS = int(c.CSID())
			s.mu.Unlock()
			m.reclaim(c, gaddr, deadV)
			return true
		}
		// Queue on the slot; the releaser grants to the virtually-earliest
		// waiter and passes its release timestamp along.
		w := m.newWaiter(c.Now(), int(c.CSID()))
		s.waiters = append(s.waiters, w)
		s.noteArrival(w.clock)
		m.Stats.noteWaiters(len(s.waiters))
		s.mu.Unlock()
		g := <-w.ch
		m.waiterPool.Put(w) // single grant received; no one else holds w
		if g.killed {
			m.Stats.DeadWaiterKills.Add(1)
			panic(transport.Crash{CS: int(c.CSID())})
		}
		if !c.Alive() {
			// Granted ownership in the race window between the releaser's
			// handoff and this CS's death sweep (the sweep can no longer see
			// us — we left the queue). Re-orphan the slot so a survivor
			// reclaims it, instead of leaking it held forever. The lease
			// anchor keeps the latest of our clock, the releaser's, and —
			// for an inherited orphan — the original holder's death.
			deathV := g.rel
			if g.deadV > deathV {
				deathV = g.deadV
			}
			if now := c.Now(); now > deathV {
				deathV = now
			}
			m.orphanSlot(slot, int(c.CSID()), deathV)
			panic(transport.Crash{CS: int(c.CSID())})
		}
		if g.reclaim {
			m.reclaim(c, gaddr, g.deadV)
			return true
		}
		rel, spinners = g.rel, g.spinners
		m.Stats.Grants.Add(1)
		m.Stats.GrantSpinnersSum.Add(int64(g.spinners))
	} else {
		rel = s.relV
		s.held = true
		s.holderCS = int(c.CSID())
		s.mu.Unlock()
		// The lock is free in real time, but the previous virtual hold
		// window may extend past our clock; spin through the remainder.
	}
	// Pay the spin retries of the wait: one CAS in flight at all times,
	// each completing only after the convoy's queued commands drain
	// (§3.2.2), so the retry cadence stretches with the convoy.
	backlog := int64(spinners) * svc
	n := vt.ChargeSpin(gaddr, c.Now(), rel, c.Timing().RTTNS+svc+backlog)
	m.Stats.GlobalRetries.Add(int64(n))

	id := uint64(c.CSID()) + 1
	var ok bool
	if m.mode.OnChip {
		_, ok = vt.CAS16Backlog(gaddr, 0, uint16(id), backlog)
	} else {
		_, ok = vt.CASBacklog(gaddr, 0, uint64(id), backlog)
	}
	if !ok {
		panic("hocl: winning CAS failed despite slot serialization")
	}
	return false
}

// acquireGlobalRemote is the real-network acquisition: a plain CAS retry
// loop on the physical lock word, exactly the spin real hardware performs
// (§3.2.2's collapse under contention happens for real here — there is no
// model to bill, the retries themselves are the cost). A stamp that stays
// unchanged for a full lease is treated as a crashed holder's and stolen,
// mirroring the simulator's lease-expiry reclamation on the real clock.
func (m *Manager) acquireGlobalRemote(c transport.Transport, gaddr rdma.Addr) (reclaimed bool) {
	id := uint64(c.CSID()) + 1
	lease := c.Timing().LeaseNS
	var stamp uint64 // last observed holder stamp
	var since int64  // real time the stamp was first observed
	for retries := 0; ; retries++ {
		c.CheckAlive()
		if retries > 0 {
			m.Stats.GlobalRetries.Add(1)
		}
		var prev uint64
		var ok bool
		if m.mode.OnChip {
			p16, ok16 := c.CAS16(gaddr, 0, uint16(id))
			prev, ok = uint64(p16), ok16
		} else {
			prev, ok = c.CAS(gaddr, 0, id)
		}
		if ok {
			return false
		}
		if prev != stamp {
			stamp, since = prev, c.Now()
			continue
		}
		if lease > 0 && stamp != 0 && c.Now()-since > lease {
			// The same holder stamp has survived a full lease with no
			// release: treat the holder as dead and steal the word. A losing
			// steal means another reclaimer (or a late release) moved it —
			// restart the observation window on whatever is there now.
			if m.mode.OnChip {
				_, ok = c.CAS16(gaddr, uint16(stamp), uint16(id))
			} else {
				_, ok = c.CAS(gaddr, stamp, id)
			}
			if ok {
				m.Stats.Reclaims.Add(1)
				return true
			}
			stamp, since = 0, 0
		}
	}
}

// reclaim frees an orphaned GLT slot whose holder crashed: the reclaimer —
// already owner of the slot's simulation state by promotion or takeover —
// spins out the remainder of the dead holder's lease, re-reads the lock
// word, and CASes whatever stamp it finds to its own. The observed stamp is
// not necessarily the last marked holder's: a chain of reclaimers can each
// die before their stealing CAS lands, so the word may carry the stamp of
// any crashed client in the chain — or 0, when a holder died between
// claiming the slot and stamping it. Cluster membership is local knowledge
// (pushed by the management plane), so the re-read plus the slot's
// exclusive simulation ownership guarantee the observed stamp belongs to a
// dead client. Reclamation counts as an acquisition; the caller holds the
// lock when it returns.
func (m *Manager) reclaim(c transport.Transport, gaddr rdma.Addr, deadV int64) {
	vt := c.(transport.VirtualTimer)
	tm := c.Timing()
	svc := vt.AtomicSvcNS(gaddr)
	expiry := deadV + tm.LeaseNS
	// Until the lease runs out the reclaimer is just another spinner.
	n := vt.ChargeSpin(gaddr, c.Now(), expiry, tm.RTTNS+svc)
	m.Stats.GlobalRetries.Add(int64(n))

	// Read-then-CAS, retried: a dead client's final posted verb can still
	// land (it passed its fault check before the crash flag rose) and
	// rewrite the word under our read — one more round trip resolves it.
	id := uint64(c.CSID()) + 1
	for attempt := 0; ; attempt++ {
		var swapped bool
		if m.mode.OnChip {
			var b [2]byte
			c.Read(gaddr, b[:])
			_, swapped = c.CAS16(gaddr, binary.LittleEndian.Uint16(b[:]), uint16(id))
		} else {
			var b [8]byte
			c.Read(gaddr, b[:])
			_, swapped = c.CAS(gaddr, binary.LittleEndian.Uint64(b[:]), id)
		}
		if swapped {
			break
		}
		if attempt >= 8 {
			panic("hocl: reclaim CAS livelocked despite slot serialization")
		}
	}
	m.Stats.Reclaims.Add(1)
}

// orphanSlot marks a slot held by a just-crashed CS for reclamation and
// promotes a surviving waiter if one is queued. It is the per-slot core of
// noteDeath, also invoked by a granted waiter that discovers its own death
// before issuing any verb (the death sweep could not see it: it had already
// left the queue).
func (m *Manager) orphanSlot(slot int, cs int, deathV int64) {
	s := &m.slots[slot]
	s.mu.Lock()
	m.markOrphanLocked(s, cs, deathV)
	w, g := s.promoteLocked()
	s.mu.Unlock()
	if w != nil {
		w.ch <- g
	}
}

// markOrphanLocked records a dead holder on its slot — the single place the
// orphan invariant (deadCS stamp, lease anchor, expiry accounting) is
// written, shared by the death sweep and the granted-then-died path. Caller
// holds s.mu; no-op unless cs actually holds the slot un-orphaned.
func (m *Manager) markOrphanLocked(s *gslot, cs int, deathV int64) {
	if !s.held || s.holderCS != cs || s.deadCS != 0 {
		return
	}
	s.deadCS = cs + 1
	s.deadV = deathV
	m.Stats.LeaseExpiries.Add(1)
}

// popEarliestLocked removes and returns the virtually-earliest waiter, or
// nil when the queue is empty. Caller holds s.mu. Both handoff paths — a
// normal release and an orphan promotion — share this selection so the
// wakeup policy cannot diverge between them.
func (s *gslot) popEarliestLocked() *gwaiter {
	if len(s.waiters) == 0 {
		return nil
	}
	min := 0
	for j, w := range s.waiters {
		if w.clock < s.waiters[min].clock {
			min = j
		}
	}
	w := s.waiters[min]
	s.waiters[min] = s.waiters[len(s.waiters)-1]
	s.waiters = s.waiters[:len(s.waiters)-1]
	return w
}

// promoteLocked hands an orphaned held slot to its earliest waiter, who
// will perform the lease reclamation on its own clock. Caller holds s.mu;
// the returned grant must be sent after unlocking.
func (s *gslot) promoteLocked() (*gwaiter, grant) {
	if !s.held || s.deadCS == 0 {
		return nil, grant{}
	}
	w := s.popEarliestLocked()
	if w == nil {
		return nil, grant{}
	}
	g := grant{reclaim: true, deadCS: s.deadCS - 1, deadV: s.deadV}
	s.deadCS, s.deadV = 0, 0
	s.holderCS = w.cs
	return w, g
}

// noteDeath marks every global lock the dead CS holds for lease-expiry
// reclamation, aborts the dead CS's queued waiters (global and local), and
// promotes the earliest surviving waiter of each orphaned slot to reclaimer.
// It runs synchronously on the crashing thread before its panic unwinds.
func (m *Manager) noteDeath(cs int, deathV int64) {
	for i := range m.slots {
		s := &m.slots[i]
		s.mu.Lock()
		// Abort waiters of the dead CS.
		var doomed []*gwaiter
		keep := s.waiters[:0]
		for _, w := range s.waiters {
			if w.cs == cs {
				doomed = append(doomed, w)
			} else {
				keep = append(keep, w)
			}
		}
		s.waiters = keep
		// Orphan the slot if the dead CS holds it, and hand it to the
		// earliest surviving waiter, which will perform the reclamation on
		// its own clock.
		m.markOrphanLocked(s, cs, deathV)
		reclaimer, g := s.promoteLocked()
		s.mu.Unlock()
		for _, w := range doomed {
			w.ch <- grant{killed: true}
		}
		if reclaimer != nil {
			reclaimer.ch <- g
		}
	}
	if m.mode.Local {
		m.lltMu.Lock()
		t := m.llts[cs]
		m.lltMu.Unlock()
		t.killAll()
	}
}

// resetCS re-initializes a restarted CS's local lock table; the dead
// incarnation's global locks stay orphaned until survivors (including the
// new incarnation) reclaim them lazily.
func (m *Manager) resetCS(cs int) {
	if !m.mode.Local {
		return
	}
	m.lltMu.Lock()
	m.llts[cs] = newLocalTable(m.f.MaxServers() * m.locksPerMS)
	m.lltMu.Unlock()
}

// releaseSlot records the virtual release time and hands the slot to the
// virtually-earliest waiter, if any. The physical lock word was already
// cleared by the caller's release WRITE, so the woken waiter's CAS finds it
// free. cs is the releasing thread's compute server: a releaser whose CS
// was declared dead while its final (already-checked) release verb was in
// flight may find the slot orphaned or already handed to a reclaimer — it
// must then keep its hands off; the reclamation path owns the slot.
func (m *Manager) releaseSlot(slot int, now int64, cs int) {
	s := &m.slots[slot]
	s.mu.Lock()
	if !s.held || s.holderCS != cs {
		// Ownership moved to a reclaimer during the crash race; the
		// physical word is already 0 from our release WRITE and the
		// reclaimer's read-CAS loop absorbs it.
		s.mu.Unlock()
		return
	}
	if s.deadCS != 0 {
		// Marked orphaned, but the release actually completed: the lock is
		// cleanly free. Un-orphan and release normally.
		s.deadCS, s.deadV = 0, 0
	}
	s.relV = now
	if w := s.popEarliestLocked(); w != nil {
		spinners := s.convoyDepth(now, m.f.ClientCount())
		s.holderCS = w.cs
		s.mu.Unlock() // the slot stays held; ownership passes to w
		w.ch <- grant{rel: now, spinners: spinners}
		return
	}
	s.held = false
	s.mu.Unlock()
}

// Release WRITE payloads are all-zero and never mutated — the simulated
// verbs copy their buffers synchronously — so two shared package-level
// buffers serve every unlock in the process, allocation-free.
var (
	zeroOnChip = []byte{0, 0}
	zeroHost   = make([]byte, 8)
)

// releaseOp returns the WRITE command that clears the GLT slot (lock release
// by RDMA_WRITE, which is cheaper than RDMA_FAA — §5.1.2, [68]).
func (m *Manager) releaseOp(gaddr rdma.Addr) rdma.WriteOp {
	if m.mode.OnChip {
		return rdma.WriteOp{Addr: gaddr, Data: zeroOnChip}
	}
	return rdma.WriteOp{Addr: gaddr, Data: zeroHost}
}

// Unlock releases the lock, flushing the caller's pending dependent writes.
//
// When combine is true, the write-backs and (if no handover happens) the
// lock-release WRITE are posted as one doorbell batch on the node's QP — one
// round trip total (§4.5). When combine is false the writes are issued as
// separate signaled commands, each costing a round trip (the FG+ behavior).
//
// All writes in pending must target the same memory server as the lock;
// PostWrites enforces this. Writes to *other* servers (cross-MS split
// siblings) must be issued by the caller before Unlock, as in Figure 7.
func (m *Manager) Unlock(c transport.Transport, g Guard, pending []rdma.WriteOp, combine bool) {
	if g.ll != nil {
		// Decide the handover before flushing, but do not hold the local
		// entry's mutex across the flush: flushing issues fabric verbs, and
		// a verb may abort the thread on a compute-server crash — the death
		// sweep must then be able to lock this entry to kill its waiters.
		// The decision stays valid: waiters cannot leave the queue, and a
		// waiter arriving between the decision and the release simply
		// misses this handover window (it re-acquires the global lock
		// itself, exactly as if it had arrived after the release).
		g.ll.mu.Lock()
		handover := m.mode.Handover && len(g.ll.queue) > 0 && g.ll.depth < int32(m.maxHandover)
		if handover {
			g.ll.depth++
		} else {
			g.ll.depth = 0
		}
		g.ll.mu.Unlock()
		m.flush(c, g, pending, combine, !handover)
		g.ll.mu.Lock()
		g.ll.releaseLocked(c.Now())
		return
	}
	m.flush(c, g, pending, combine, true)
}

// flush issues the dependent writes and, when releaseGlobal is set, the GLT
// clear.
func (m *Manager) flush(c transport.Transport, g Guard, pending []rdma.WriteOp, combine, releaseGlobal bool) {
	if combine {
		ops := pending
		if releaseGlobal {
			ops = append(ops, m.releaseOp(g.gaddr))
		}
		if len(ops) > 0 {
			c.PostWrites(ops...)
		}
	} else {
		for _, op := range pending {
			c.Write(op.Addr, op.Data)
		}
		if releaseGlobal {
			op := m.releaseOp(g.gaddr)
			c.Write(op.Addr, op.Data)
		}
	}
	if releaseGlobal && m.virtual {
		// Remote managers have no slot state: the release WRITE above
		// cleared the physical word, and that is the whole release.
		m.releaseSlot(g.slot, c.Now(), int(c.CSID()))
	}
}
