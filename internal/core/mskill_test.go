package core_test

import (
	"fmt"
	"testing"

	"sherman/internal/cluster"
	core "sherman/internal/core"
	"sherman/internal/layout"
	"sherman/internal/replica"
)

// msKillScenario is one scripted operation run to completion while a memory
// server dies at every one of its fabric verbs in turn. Unlike a
// compute-server crash, the operating client survives: the op must complete,
// its effect and every previously acknowledged write must remain readable
// through the failed-over replicas, and the tree must stay Validate-clean.
type msKillScenario struct {
	name string
	// op mutates (or scans) through h and checks its own result.
	op func(t *testing.T, h *core.Handle)
	// want maps the final expected state: key -> value after op, with
	// deleted keys removed.
	want func(load []uint64) map[uint64]uint64
}

func msKillScenarios() []msKillScenario {
	final := func(load []uint64, mutate func(m map[uint64]uint64)) func([]uint64) map[uint64]uint64 {
		return func(load []uint64) map[uint64]uint64 {
			m := make(map[uint64]uint64, len(load)+2)
			for _, k := range load {
				m[k] = faultVal(k)
			}
			m[faultPrefixKey] = faultPrefixVal
			if mutate != nil {
				mutate(m)
			}
			return m
		}
	}
	return []msKillScenario{
		{
			name: "put-inplace",
			op:   func(t *testing.T, h *core.Handle) { h.Insert(120, 0xbeef) },
			want: final(nil, func(m map[uint64]uint64) { m[120] = 0xbeef }),
		},
		{
			name: "delete-inplace",
			op: func(t *testing.T, h *core.Handle) {
				if !h.Delete(120) {
					t.Fatal("delete reported key 120 absent")
				}
			},
			want: final(nil, func(m map[uint64]uint64) { delete(m, 120) }),
		},
		{
			name: "insert-split",
			op:   func(t *testing.T, h *core.Handle) { h.Insert(121, 0xcafe) },
			want: final(nil, func(m map[uint64]uint64) { m[121] = 0xcafe }),
		},
		{
			name: "scan",
			op: func(t *testing.T, h *core.Handle) {
				kvs := h.Range(1, 200)
				seen := make(map[uint64]uint64, len(kvs))
				for _, kv := range kvs {
					seen[kv.Key] = kv.Value
				}
				// The scan ran concurrently with nothing: it must return
				// exactly the acked contents, dead server or not.
				if len(seen) != 121 { // 120 bulk keys + prefix key
					t.Fatalf("scan returned %d distinct keys, want 121", len(seen))
				}
				for k, v := range seen {
					want := faultVal(k)
					if k == faultPrefixKey {
						want = faultPrefixVal
					}
					if v != want {
						t.Fatalf("scan key %d = %#x, want %#x", k, v, want)
					}
				}
			},
			want: final(nil, nil),
		},
	}
}

// buildMSKillTree builds a 3-MS cluster replicated at factor 2 and bulkloads
// the shared 120-key data set (BulkFill 1.0, so the split scenario splits).
func buildMSKillTree(cfg core.Config) (*cluster.Cluster, *core.Tree, []uint64) {
	cl := cluster.New(cluster.Config{NumMS: 3, NumCS: 2, ReplicationFactor: 2})
	c := cfg
	c.BulkFill = 1.0
	tr := core.New(cl, c)
	load := make([]uint64, 120)
	for i := range load {
		load[i] = uint64(2 * (i + 1))
	}
	kvs := make([]layout.KV, len(load))
	for i, k := range load {
		kvs[i] = layout.KV{Key: k, Value: faultVal(k)}
	}
	tr.Bulkload(kvs)
	return cl, tr, load
}

// TestMSKillAtEveryVerb is the replication property test: for every scripted
// operation, every layout x combine configuration, every killable memory
// server, and every fabric-verb index of the operation, the server's death
// injected at that verb must be survivable with zero lost acked writes — the
// operation completes on the live compute server, every bulkloaded and
// prefix write stays readable through the promoted replicas, Validate
// passes, and a re-replication sweep restores full redundancy.
func TestMSKillAtEveryVerb(t *testing.T) {
	for _, cfg := range faultConfigs() {
		for _, sc := range msKillScenarios() {
			t.Run(faultCfgName(cfg)+"/"+sc.name, func(t *testing.T) {
				// Dry run: count the operation's fabric verbs (replication
				// changes the count, so count with it enabled).
				cl, tr, load := buildMSKillTree(cfg)
				h := tr.NewHandle(1, 1)
				h.Insert(faultPrefixKey, faultPrefixVal)
				v0 := cl.Faults().Verbs(1)
				sc.op(t, h)
				verbs := int(cl.Faults().Verbs(1) - v0)
				if verbs < 1 { // a cache-warm scan needs just one ReadMulti
					t.Fatalf("implausible verb count %d", verbs)
				}
				if err := tr.Validate(); err != nil {
					t.Fatalf("dry run left invalid tree: %v", err)
				}

				for victim := 1; victim <= 2; victim++ {
					for i := 1; i <= verbs; i++ {
						cl, tr, load = buildMSKillTree(cfg)
						h = tr.NewHandle(1, 1)
						h.Insert(faultPrefixKey, faultPrefixVal)
						cl.Faults().KillMSAtCSVerb(victim, 1, int64(i))
						sc.op(t, h) // must complete: only a memory server died

						tag := fmt.Sprintf("ms%d/verb %d/%d", victim, i, verbs)
						if cl.MSAlive(victim) {
							t.Fatalf("%s: armed kill never fired", tag)
						}
						if cl.Rep.Lost() != 0 {
							t.Fatalf("%s: %d chunks lost outright", tag, cl.Rep.Lost())
						}
						if err := tr.Validate(); err != nil {
							t.Fatalf("%s: validate: %v", tag, err)
						}
						checkMSKillState(t, tag, tr, sc.want(load))

						// A repair sweep from the surviving CS restores full
						// redundancy; the tree stays intact throughout.
						rh := tr.NewHandle(0, 2)
						rh.SetClock(cl.Faults().LatestVerbV())
						st, err := replica.New(rh, replica.Options{MaxChunks: 1 << 20}).ReReplicate()
						if err != nil {
							t.Fatalf("%s: re-replicate: %v", tag, err)
						}
						if n := len(cl.Rep.UnderReplicated(2)); n != 0 {
							t.Fatalf("%s: %d chunks still under-replicated after sweep (%+v)", tag, n, st)
						}
						if err := tr.Validate(); err != nil {
							t.Fatalf("%s: post-repair validate: %v", tag, err)
						}
						checkMSKillState(t, tag+"/repaired", tr, sc.want(load))
					}
				}
			})
		}
	}
}

// checkMSKillState verifies the tree's readable contents match want exactly,
// via point lookups from a fresh handle on the surviving compute server.
func checkMSKillState(t *testing.T, tag string, tr *core.Tree, want map[uint64]uint64) {
	t.Helper()
	h := tr.NewHandle(0, 99)
	h.SetClock(tr.Cluster().Faults().LatestVerbV())
	for k, wantV := range want {
		if got, ok := h.Lookup(k); !ok || got != wantV {
			t.Fatalf("%s: key %d = (%#x,%v), want (%#x,true)", tag, k, got, ok, wantV)
		}
	}
	// Deleted keys must stay deleted (the delete scenario removes 120).
	if _, present := want[120]; !present {
		if got, ok := h.Lookup(120); ok {
			t.Fatalf("%s: deleted key 120 resurrected as %#x", tag, got)
		}
	}
}
