package core

import (
	"sherman/internal/layout"
	"sherman/internal/stats"
)

// Op is one client operation in the unified model: every data-path request —
// point lookup, insert/update, delete, range scan — is the same value type,
// so mixed streams flow through one planner (Exec) and one async executor
// (Async) instead of per-kind entry points.
type Op struct {
	Kind stats.OpKind
	Key  uint64
	// Value is the OpInsert payload.
	Value uint64
	// Span bounds an OpRange result.
	Span int
}

// OpResult is the outcome of one Op. Lookups fill Value/Found; deletes fill
// Found; range scans fill KVs.
type OpResult struct {
	Value uint64
	Found bool
	KVs   []layout.KV
}
