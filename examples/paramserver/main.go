// Parameter server: the write-intensive, highly skewed workload the paper's
// introduction motivates (§1, §3.1 cite parameter servers [41] among the
// write-heavy datacenter applications).
//
// A distributed training job keeps model parameters in a shared index.
// Workers repeatedly push gradient updates — writes against a small set of
// hot parameters (embedding tables, shared layers follow a Zipfian
// popularity) — and periodically pull parameters back. This is exactly the
// regime where the one-sided baseline collapses (Table 1: 0.34 Mops, ~20 ms
// p99) and Sherman holds an order of magnitude more throughput.
//
// The example runs the same push/pull workload against both engines and
// prints the comparison.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"sync"

	"sherman"
)

const (
	numParams    = 200_000 // model parameters (index keys)
	workers      = 64      // trainer threads across all compute servers
	pushesPerEpc = 400     // updates per worker per epoch
	pullEvery    = 10      // one pull per N pushes
	zipfTheta    = 0.99    // hot-parameter skew (paper's default skewness)
)

func main() {
	fmt.Printf("parameter server: %d params, %d workers, zipf(%.2f) hot keys\n\n",
		numParams, workers, zipfTheta)
	fmt.Printf("%-8s  %10s  %12s  %12s  %14s\n",
		"engine", "Mops", "p50 (us)", "p99 (us)", "bytes/update")

	for _, opts := range []sherman.TreeOptions{
		sherman.FGPlusTreeOptions(),
		sherman.DefaultTreeOptions(),
	} {
		run(opts)
	}

	fmt.Println("\nThe FG+ baseline serializes hot-parameter updates behind host-memory")
	fmt.Println("lock retries and writes back whole 1 KB nodes; Sherman combines the")
	fmt.Println("write-back with the lock release, queues conflicting updates locally,")
	fmt.Println("and writes back one ~18 B entry per update.")
}

func run(opts sherman.TreeOptions) {
	cluster, err := sherman.NewCluster(sherman.ClusterConfig{
		MemoryServers:  4,
		ComputeServers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := cluster.CreateTree(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Initialize all parameters to version 0.
	kvs := make([]sherman.KV, numParams)
	for i := range kvs {
		kvs[i] = sherman.KV{Key: uint64(i + 1), Value: 0}
	}
	if err := tree.Bulkload(kvs); err != nil {
		log.Fatal(err)
	}

	// Precompute each worker's parameter-access sequence: Zipf ranks
	// scattered over the key space (YCSB's scrambled-Zipfian construction).
	zipf := newZipf(numParams, zipfTheta)

	sessions := make([]*sherman.Session, workers)
	for w := range sessions {
		sessions[w] = tree.Session(w % cluster.ComputeServers())
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := sessions[w]
			rng := rand.New(rand.NewPCG(uint64(w)+1, 0xfeed))
			for i := 0; i < pushesPerEpc; i++ {
				param := zipf.key(rng)
				// Push: read-modify-write of the parameter version. The
				// index's node lock makes the update atomic.
				s.Put(param, uint64(i))
				if i%pullEvery == 0 {
					if _, ok := s.Get(param); !ok {
						log.Fatalf("parameter %d vanished", param)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Aggregate per-session stats: throughput is ops over the slowest
	// worker's virtual clock (the experiment makespan).
	var ops, writeBytes, writes int64
	var makespan int64
	var p50, p99 int64
	for _, s := range sessions {
		st := s.Stats()
		ops += st.Lookups + st.Inserts
		writes += st.Inserts
		writeBytes += st.WriteBytes
		if v := s.VirtualNow(); v > makespan {
			makespan = v
		}
		if st.P50LatencyNS > p50 {
			p50 = st.P50LatencyNS
		}
		if st.P99LatencyNS > p99 {
			p99 = st.P99LatencyNS
		}
	}
	mops := float64(ops) / float64(makespan) * 1e3
	fmt.Printf("%-8s  %10.2f  %12.1f  %12.1f  %14.1f\n",
		opts.Engine, mops, float64(p50)/1000, float64(p99)/1000,
		float64(writeBytes)/float64(writes))

	if err := tree.Validate(); err != nil {
		log.Fatalf("%s: tree invariants violated: %v", opts.Engine, err)
	}
}

// zipf draws Zipf-distributed ranks and scrambles them over the key space.
type zipf struct {
	n     uint64
	theta float64
	zetan float64
	eta   float64
	alpha float64
	half  float64
}

func newZipf(n uint64, theta float64) *zipf {
	z := &zipf{n: n, theta: theta}
	for i := uint64(1); i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), theta)
	}
	z.half = 1 + 1/math.Pow(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.half/z.zetan)
	return z
}

func (z *zipf) key(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < z.half:
		rank = 1
	default:
		rank = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		if rank >= z.n {
			rank = z.n - 1
		}
	}
	// splitmix64 scramble so hot keys scatter across leaves.
	x := rank
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x%z.n + 1
}
