package sherman

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestEMethods covers the error-returning synchronous API: the happy path,
// the reserved-key rejection, and the post-crash ErrSessionDead contract
// that replaces the legacy methods' panics.
func TestEMethods(t *testing.T) {
	c := testCluster(t)
	tree := testTree(t, c, TreeOptions{})
	s, err := tree.SessionAt(0)
	if err != nil {
		t.Fatal(err)
	}

	if err := s.PutE(7, 70); err != nil {
		t.Fatalf("PutE: %v", err)
	}
	if v, ok, err := s.GetE(7); err != nil || !ok || v != 70 {
		t.Fatalf("GetE(7) = %d, %v, %v", v, ok, err)
	}
	if _, ok, err := s.GetE(8); err != nil || ok {
		t.Fatalf("GetE(8) = present (err %v), want absent", err)
	}
	if err := s.PutE(9, 90); err != nil {
		t.Fatal(err)
	}
	kvs, err := s.ScanE(1, 10)
	if err != nil || len(kvs) != 2 || kvs[0].Key != 7 || kvs[1].Key != 9 {
		t.Fatalf("ScanE = %v, %v", kvs, err)
	}
	if found, err := s.DeleteE(7); err != nil || !found {
		t.Fatalf("DeleteE(7) = %v, %v", found, err)
	}
	if found, err := s.DeleteE(7); err != nil || found {
		t.Fatalf("DeleteE(7) again = %v, %v", found, err)
	}

	if err := s.PutE(0, 1); !errors.Is(err, ErrReservedKey) {
		t.Fatalf("PutE(0) err = %v, want ErrReservedKey", err)
	}
	if _, err := s.DeleteE(0); !errors.Is(err, ErrReservedKey) {
		t.Fatalf("DeleteE(0) err = %v, want ErrReservedKey", err)
	}

	// A crashed compute server turns every E-method into ErrSessionDead —
	// no panics.
	if err := c.KillComputeServer(0); err != nil {
		t.Fatal(err)
	}
	if err := s.PutE(5, 50); !errors.Is(err, ErrSessionDead) {
		t.Fatalf("PutE after crash err = %v, want ErrSessionDead", err)
	}
	if _, _, err := s.GetE(5); !errors.Is(err, ErrSessionDead) {
		t.Fatalf("GetE after crash err = %v, want ErrSessionDead", err)
	}
	if _, err := s.DeleteE(5); !errors.Is(err, ErrSessionDead) {
		t.Fatalf("DeleteE after crash err = %v, want ErrSessionDead", err)
	}
	if _, err := s.ScanE(1, 4); !errors.Is(err, ErrSessionDead) {
		t.Fatalf("ScanE after crash err = %v, want ErrSessionDead", err)
	}
}

// TestCursorErr checks both ends of the Cursor.Err contract: nil after a
// clean exhaustion, ErrSessionDead after the session's compute server dies
// mid-iteration — with Next ending the iteration instead of panicking.
func TestCursorErr(t *testing.T) {
	c := testCluster(t)
	tree := testTree(t, c, TreeOptions{})
	s, err := tree.SessionAt(0)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 100; k++ {
		if err := s.PutE(k, k*3); err != nil {
			t.Fatal(err)
		}
	}

	cur := s.Cursor(1)
	n := 0
	for _, ok := cur.Next(); ok; _, ok = cur.Next() {
		n++
	}
	if n != 100 || cur.Err() != nil {
		t.Fatalf("clean cursor: %d pairs, err %v", n, cur.Err())
	}

	cur = s.Cursor(1)
	if _, ok := cur.Next(); !ok {
		t.Fatal("first Next failed")
	}
	if err := c.KillComputeServer(0); err != nil {
		t.Fatal(err)
	}
	// Drain the already-buffered leaf; the next refill must fail cleanly.
	for _, ok := cur.Next(); ok; _, ok = cur.Next() {
	}
	if !errors.Is(cur.Err(), ErrSessionDead) {
		t.Fatalf("cursor err after crash = %v, want ErrSessionDead", cur.Err())
	}
}

// TestFabricParamsValidation checks the typed config rejections: a negative
// fabric field names itself in ErrBadFabricParams, any fabric override on
// TCP is rejected (a real network's timing is not tunable), and the
// sim-only features are refused up front with ErrSimOnly.
func TestFabricParamsValidation(t *testing.T) {
	_, err := NewCluster(ClusterConfig{
		MemoryServers: 1, ComputeServers: 1,
		Fabric: FabricParams{RTTNS: -1},
	})
	if !errors.Is(err, ErrBadFabricParams) || !strings.Contains(err.Error(), "RTTNS") {
		t.Fatalf("negative RTTNS err = %v, want ErrBadFabricParams naming RTTNS", err)
	}
	_, err = NewCluster(ClusterConfig{
		MemoryServers: 1, ComputeServers: 1,
		Fabric: FabricParams{AtomicBuckets: -5},
	})
	if !errors.Is(err, ErrBadFabricParams) || !strings.Contains(err.Error(), "AtomicBuckets") {
		t.Fatalf("negative AtomicBuckets err = %v", err)
	}

	_, err = NewCluster(ClusterConfig{
		MemoryServers: 1, ComputeServers: 1, Transport: TransportTCP,
		Fabric: FabricParams{RTTNS: 2000},
	})
	if !errors.Is(err, ErrBadFabricParams) || !strings.Contains(err.Error(), "RTTNS") {
		t.Fatalf("fabric override on tcp err = %v, want ErrBadFabricParams naming RTTNS", err)
	}
	// Replication on TCP is real now (§13); only its bounds are rejected.
	_, err = NewCluster(ClusterConfig{
		MemoryServers: 2, ComputeServers: 1, Transport: TransportTCP,
		ReplicationFactor: 5,
	})
	if err == nil || !strings.Contains(err.Error(), "ReplicationFactor") {
		t.Fatalf("oversized factor on tcp err = %v, want ReplicationFactor range error", err)
	}
	_, err = NewCluster(ClusterConfig{
		Transport: TransportTCP, ComputeServers: 1,
		Endpoints:         []string{"127.0.0.1:1", "127.0.0.1:2"},
		ReplicationFactor: 3,
	})
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("factor > servers on tcp err = %v, want exceeds error", err)
	}
	_, err = NewCluster(ClusterConfig{
		MemoryServers: 2, ComputeServers: 1, Transport: TransportTCP,
		MaxMemoryServers: 4,
	})
	if !errors.Is(err, ErrSimOnly) {
		t.Fatalf("scale-out headroom on tcp err = %v, want ErrSimOnly", err)
	}
	if _, err = NewCluster(ClusterConfig{MemoryServers: 1, ComputeServers: 1, Transport: "infiniband"}); err == nil {
		t.Fatal("unknown transport accepted")
	}
}

// TestKillMemoryServerZeroRejected pins the superblock single-point
// contract: memory server 0 holds the superblock and cannot be killed
// (DESIGN.md §12).
func TestKillMemoryServerZeroRejected(t *testing.T) {
	c := testCluster(t)
	if err := c.KillMemoryServer(0); err == nil || !strings.Contains(err.Error(), "superblock") {
		t.Fatalf("KillMemoryServer(0) err = %v, want superblock rejection", err)
	}
	if err := c.KillMemoryServer(-1); err == nil {
		t.Fatal("KillMemoryServer(-1) accepted")
	}
}

// TestTCPDifferential runs the random-stream oracle against a tree over the
// TCP transport with two real shermand memory-server processes — the test
// half of the `shermanbench -exp tcp` gate, at test-sized op counts. It
// exercises launch, the wire protocol, doorbell coalescing, pipelined
// sessions and teardown end to end.
func TestTCPDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and builds cmd/shermand")
	}
	c, err := NewCluster(ClusterConfig{
		MemoryServers:  2,
		ComputeServers: 2,
		Transport:      TransportTCP,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tree, err := c.CreateTree(TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const (
		opsPerDepth = 3000
		keySpace    = 1024
		scanSpan    = 16
	)
	oracle := make(map[uint64]uint64, keySpace)
	var kvs []KV
	for k := uint64(1); k <= 256; k++ {
		kvs = append(kvs, KV{Key: k, Value: k * 7})
		oracle[k] = k * 7
	}
	if err := tree.Bulkload(kvs); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	for _, depth := range []int{1, 4, 8} {
		s, err := tree.SessionAt(depth%c.ComputeServers(), PipelineDepth(depth))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < opsPerDepth; i++ {
			key := uint64(rng.Intn(keySpace)) + 1
			switch r := rng.Intn(100); {
			case r < 45:
				v := rng.Uint64() | 1
				if err := s.PutE(key, v); err != nil {
					t.Fatalf("depth %d op %d: PutE: %v", depth, i, err)
				}
				oracle[key] = v
			case r < 75:
				v, ok, err := s.GetE(key)
				if err != nil {
					t.Fatalf("depth %d op %d: GetE: %v", depth, i, err)
				}
				ov, ook := oracle[key]
				if ok != ook || (ok && v != ov) {
					t.Fatalf("depth %d op %d: GetE(%d) = %d,%v; oracle %d,%v", depth, i, key, v, ok, ov, ook)
				}
			case r < 90:
				found, err := s.DeleteE(key)
				if err != nil {
					t.Fatalf("depth %d op %d: DeleteE: %v", depth, i, err)
				}
				if _, ook := oracle[key]; found != ook {
					t.Fatalf("depth %d op %d: DeleteE(%d) = %v; oracle %v", depth, i, key, found, ook)
				}
				delete(oracle, key)
			default:
				got, err := s.ScanE(key, scanSpan)
				if err != nil {
					t.Fatalf("depth %d op %d: ScanE: %v", depth, i, err)
				}
				var keys []uint64
				for k := range oracle {
					if k >= key {
						keys = append(keys, k)
					}
				}
				sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
				if len(keys) > scanSpan {
					keys = keys[:scanSpan]
				}
				if len(got) != len(keys) {
					t.Fatalf("depth %d op %d: ScanE(%d) %d pairs, oracle %d", depth, i, key, len(got), len(keys))
				}
				for j, k := range keys {
					if got[j].Key != k || got[j].Value != oracle[k] {
						t.Fatalf("depth %d op %d: ScanE(%d)[%d] = %v, oracle {%d %d}", depth, i, key, j, got[j], k, oracle[k])
					}
				}
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Streamed futures: a full window of Submits held open at once, each
	// verified against the oracle captured at submit time (the pipeline
	// preserves per-key order, so the submit-time state is what each op
	// observes).
	{
		s, err := tree.SessionAt(0, PipelineDepth(8))
		if err != nil {
			t.Fatal(err)
		}
		type expect struct {
			fut   *Future
			kind  OpKind
			key   uint64
			val   uint64
			found bool
		}
		var window []expect
		drain := func() {
			for _, e := range window {
				r := e.fut.Wait()
				if r.Err != nil {
					t.Fatalf("streamed %v(%d): %v", e.kind, e.key, r.Err)
				}
				switch e.kind {
				case OpGet:
					if r.Found != e.found || (r.Found && r.Value != e.val) {
						t.Fatalf("streamed Get(%d) = %d,%v; submit-time oracle %d,%v",
							e.key, r.Value, r.Found, e.val, e.found)
					}
				case OpDelete:
					if r.Found != e.found {
						t.Fatalf("streamed Delete(%d) = %v; submit-time oracle %v", e.key, r.Found, e.found)
					}
				}
			}
			window = window[:0]
		}
		for i := 0; i < 2000; i++ {
			key := uint64(rng.Intn(keySpace)) + 1
			switch r := rng.Intn(100); {
			case r < 50:
				v := rng.Uint64() | 1
				window = append(window, expect{fut: s.Submit(PutOp(key, v)), kind: OpPut, key: key})
				oracle[key] = v
			case r < 85:
				ov, ok := oracle[key]
				window = append(window, expect{fut: s.Submit(GetOp(key)), kind: OpGet, key: key, val: ov, found: ok})
			default:
				_, ok := oracle[key]
				window = append(window, expect{fut: s.Submit(DeleteOp(key)), kind: OpDelete, key: key, found: ok})
				delete(oracle, key)
			}
			if len(window) >= 64 {
				drain()
			}
		}
		drain()
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Concurrent sessions: two depth-8 sessions on different compute servers
	// drive disjoint key ranges through the shared multiplexed connections
	// at once; each verifies against its own oracle.
	{
		var wg sync.WaitGroup
		errs := make(chan error, 2)
		for w := 0; w < 2; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				s, err := tree.SessionAt(w, PipelineDepth(8))
				if err != nil {
					errs <- err
					return
				}
				base := uint64(10_000 + w*10_000)
				local := make(map[uint64]uint64)
				lr := rand.New(rand.NewSource(int64(100 + w)))
				for i := 0; i < 1500; i++ {
					key := base + uint64(lr.Intn(512)) + 1
					switch r := lr.Intn(100); {
					case r < 50:
						v := lr.Uint64() | 1
						if err := s.PutE(key, v); err != nil {
							errs <- err
							return
						}
						local[key] = v
					case r < 85:
						v, ok, err := s.GetE(key)
						if err != nil {
							errs <- err
							return
						}
						ov, ook := local[key]
						if ok != ook || (ok && v != ov) {
							errs <- fmt.Errorf("worker %d: Get(%d) = %d,%v; oracle %d,%v", w, key, v, ok, ov, ook)
							return
						}
					default:
						found, err := s.DeleteE(key)
						if err != nil {
							errs <- err
							return
						}
						if _, ook := local[key]; found != ook {
							errs <- fmt.Errorf("worker %d: Delete(%d) = %v; oracle %v", w, key, found, ook)
							return
						}
						delete(local, key)
					}
				}
				if err := s.Flush(); err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}

	// The Stats opcode surfaces per-server load over TCP.
	loads := c.MemoryServerLoads()
	if len(loads) != 2 {
		t.Fatalf("MemoryServerLoads over tcp = %d servers, want 2", len(loads))
	}
	var totalOps int64
	for _, l := range loads {
		if l.Dead || l.Draining {
			t.Fatalf("unexpected load state %+v", l)
		}
		totalOps += l.InboundOps
	}
	if totalOps == 0 {
		t.Fatal("MemoryServerLoads over tcp reported zero inbound ops")
	}
	if skew := LoadSkew(loads); skew < 1 {
		t.Fatalf("LoadSkew over tcp = %v, want >= 1", skew)
	}

	// Sim-only surfaces must refuse cleanly on this cluster.
	if err := c.KillComputeServer(0); !errors.Is(err, ErrSimOnly) {
		t.Fatalf("KillComputeServer on tcp err = %v, want ErrSimOnly", err)
	}
	if _, err := c.AddMemoryServer(); !errors.Is(err, ErrSimOnly) {
		t.Fatalf("AddMemoryServer on tcp err = %v, want ErrSimOnly", err)
	}
	if _, err := tree.Rebalance(0); !errors.Is(err, ErrSimOnly) {
		t.Fatalf("Rebalance on tcp err = %v, want ErrSimOnly", err)
	}
}
