// Command shermanbench regenerates every table and figure of the paper's
// evaluation (§5) on the simulated fabric, plus the repo's own batch,
// pipeline and fault experiments. Results print as aligned text tables;
// EXPERIMENTS.md records a captured run against the paper's numbers.
//
// Usage:
//
//	shermanbench -exp all
//	shermanbench -exp fig10 -keys 4194304 -ops 2000 -threads 22
//	shermanbench -exp batch,pipeline,faults -quick -json BENCH.json -baseline bench/baseline.json
//
// Experiments: table1 table2 fig2 fig3 fig10 fig11 fig12 fig13 fig14
// fig15a fig15b fig15c fig16 extras ycsb batch pipeline faults elastic
// cache alloc replica tcp tcpfault tcppipe all quick (tcp, tcpfault and
// tcppipe spawn real shermand processes and are not part of all)
//
// Machine-readable output and CI gating:
//
//	-json PATH            write the run's structured Report (tables + typed
//	                      metrics) to PATH — the BENCH_*.json artifact
//	-baseline PATH        after the run, fail (exit 1) when a batch or
//	                      pipeline metric regressed more than -tolerance
//	                      against the committed baseline report
//	-write-baseline PATH  write the fresh metrics as the new baseline
//	-tolerance F          regression band (default 0.15 = 15%)
//
// -check adds experiment-specific hard assertions: with -exp pipeline, the
// latency-hiding smoke (depth-4 beats depth-1); with -exp faults, the
// crash-recovery smoke (a compute server killed mid-write leaves a
// reclaimable lock, and the tree validates after recovery); with -exp
// elastic, the scale-out gate (adding a memory server mid-run at least
// halves the per-MS inbound-load skew and steady-state throughput reaches
// 95% of a cluster provisioned at the larger size up front); with -exp
// cache, the unified-cache gate (speculative leaf-direct reads cut round
// trips per op well below cache-off, speculation validates >= 90% of the
// time, and the multi-level cache beats the flat level-1-only baseline at
// the same constrained budget); with -exp alloc, the zero-allocation gate
// (steady-state cached gets and puts measure zero heap allocations per
// operation against hard per-probe budgets); with -exp replica, the
// replication gate (a memory server killed mid-window loses zero acked
// writes — each tracked key reachable exactly once after failover and
// re-replication — and factor-2 steady-state throughput stays within 90%
// of the unreplicated control); with -exp tcpfault, the TCP fault gate (a
// real shermand process SIGKILLed mid-window over the TCP transport loses
// zero acked writes, at least one chunk fails over, and re-replication
// restores full redundancy on the survivors); with -exp tcppipe, the
// pipelining gate (depth-8 pipelined read verbs over real sockets reach at
// least 3x the depth-1 throughput — the multiplexed connections genuinely
// keep the window in flight — and the matched-scale sim-vs-TCP session
// rows are present).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"sherman/internal/bench"
	"sherman/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1,table2,fig2,fig3,fig10,fig11,fig12,fig13,fig14,fig15a,fig15b,fig15c,fig16,extras,ycsb,batch,pipeline,faults,elastic,cache,alloc,replica,tcp,tcpfault,tcppipe,all,quick; tcp, tcpfault and tcppipe spawn real shermand processes and are not part of all)")
		keys     = flag.Uint64("keys", 0, "key-space size (0 = scale default)")
		windowMS = flag.Int("window", 0, "virtual measurement window in ms (0 = scale default)")
		warmup   = flag.Int("warmup", 0, "warmup ops per thread (0 = scale default)")
		threads  = flag.Int("threads", 0, "client threads per compute server (0 = scale default)")
		quick    = flag.Bool("quick", false, "use the quick (CI-sized) scale")
		runs     = flag.Int("runs", 0, "average each tree experiment over this many runs (0 = scale default)")
		check    = flag.Bool("check", false, "run the hard assertions of the selected experiments (pipeline, faults)")
		jsonOut  = flag.String("json", "", "write the structured run report to this path")
		baseline = flag.String("baseline", "", "regression-gate the run against this committed baseline report")
		writeBas = flag.String("write-baseline", "", "write the fresh metrics as the new baseline report")
		tol      = flag.Float64("tolerance", 0.15, "regression tolerance band (fraction of baseline Mops)")
	)
	flag.Parse()

	s := bench.FullScale()
	if *quick || *exp == "quick" {
		s = bench.QuickScale()
	}
	if *keys != 0 {
		s.Keys = *keys
	}
	if *windowMS != 0 {
		s.MeasureNS = int64(*windowMS) * 1_000_000
	}
	if *warmup != 0 {
		s.WarmupOps = *warmup
	}
	if *threads != 0 {
		s.ThreadsPerCS = *threads
	}
	if *runs != 0 {
		s.Runs = *runs
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" || *exp == "quick" {
		ids = []string{"table1", "table2", "fig2", "fig3", "fig10", "fig11",
			"fig12", "fig13", "fig14", "fig15a", "fig15b", "fig15c", "fig16",
			"batch", "pipeline", "faults", "elastic", "cache", "alloc", "replica"}
	}
	fmt.Printf("# shermanbench: keys=%d threads/CS=%d window=%dms GOMAXPROCS=%d\n\n",
		s.Keys, s.ThreadsPerCS, s.MeasureNS/1_000_000, runtime.GOMAXPROCS(0))

	report := bench.NewReport(*exp, *quick || *exp == "quick", s)
	col := &bench.Collector{}
	var churn *bench.FaultResult
	var elastic *bench.ElasticResult
	var cacheRes *bench.CacheResult
	var replicaRes *bench.ReplicaResult
	var tcpFaultRes *tcpFaultResult
	var tcpPipeRes *tcpPipeResult
	for _, id := range ids {
		run(strings.TrimSpace(id), s, col, report, &churn, &elastic, &cacheRes, &replicaRes, &tcpFaultRes, &tcpPipeRes)
	}
	report.Metrics = col.Metrics

	if *jsonOut != "" {
		if err := report.Write(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d metrics, %d tables)\n", *jsonOut, len(report.Metrics), len(report.Tables))
	}
	if *writeBas != "" {
		// The baseline keeps only the typed metrics: it is a comparison
		// anchor, not an archive.
		base := *report
		base.Tables = nil
		if err := base.Write(*writeBas); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote baseline %s (%d metrics)\n", *writeBas, len(base.Metrics))
	}

	failed := false
	if *baseline != "" {
		base, err := bench.LoadReport(*baseline)
		if err == nil {
			err = bench.CheckRegression(base, report, *tol)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		} else {
			fmt.Printf("regression gate: within %.0f%% of %s\n", *tol*100, *baseline)
		}
	}
	if *check {
		if err := runChecks(ids, s, col, churn, elastic, cacheRes, replicaRes, tcpFaultRes, tcpPipeRes); err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runChecks executes the hard assertions of the selected experiments,
// evaluating the results this invocation already produced (the pipeline
// sweep's metrics, the fault churn's rounds) rather than re-running them.
func runChecks(ids []string, s bench.Scale, col *bench.Collector, churn *bench.FaultResult, elastic *bench.ElasticResult, cacheRes *bench.CacheResult, replicaRes *bench.ReplicaResult, tcpFaultRes *tcpFaultResult, tcpPipeRes *tcpPipeResult) error {
	for _, id := range ids {
		switch strings.TrimSpace(id) {
		case "pipeline":
			if err := bench.PipelineGate(col.Metrics); err != nil {
				return err
			}
			fmt.Println("pipeline gate: depth-4 beats depth-1 for put and get (hiding > 1.5x)")
		case "faults":
			if err := bench.FaultGate(s, churn); err != nil {
				return err
			}
			fmt.Println("fault gate: mid-write crash reclaimed and recovered; churn rounds validate")
		case "elastic":
			if err := bench.ElasticGate(elastic); err != nil {
				return err
			}
			fmt.Println("elastic gate: skew halved after scale-out; steady state within 95% of the provisioned control")
		case "cache":
			if err := bench.CacheGate(cacheRes); err != nil {
				return err
			}
			fmt.Println("cache gate: leaf-direct speculation cuts RT/op vs cache-off; unified multi-level beats flat level-1-only")
		case "alloc":
			if err := bench.AllocGate(col.Metrics); err != nil {
				return err
			}
			fmt.Println("alloc gate: steady-state hot paths within hard budgets (cached get and put at 0 allocs/op)")
		case "replica":
			if err := bench.ReplicaGate(replicaRes); err != nil {
				return err
			}
			fmt.Println("replica gate: zero acked writes lost to the mid-window MS kill, all reachable exactly once; factor-2 steady state within 90% of control")
		case "tcpfault":
			if err := tcpFaultGate(tcpFaultRes); err != nil {
				return err
			}
			fmt.Println("tcpfault gate: zero acked writes lost to the SIGKILLed shermand, all reachable exactly once; failover real, redundancy restored")
		case "tcppipe":
			if err := tcpPipeGate(tcpPipeRes); err != nil {
				return err
			}
			fmt.Printf("tcppipe gate: depth-8 pipelined read verbs %.2fx depth-1 over real sockets (>= 3x), matched-scale sim-vs-TCP rows present\n",
				tcpPipeRes.VerbMops[8]/tcpPipeRes.VerbMops[1])
		}
	}
	return nil
}

func run(id string, s bench.Scale, col *bench.Collector, report *bench.Report, churn **bench.FaultResult, elastic **bench.ElasticResult, cacheRes **bench.CacheResult, replicaRes **bench.ReplicaResult, tcpFaultRes **tcpFaultResult, tcpPipeRes **tcpPipeResult) {
	start := time.Now()
	var tables []*bench.Table
	switch id {
	case "table1":
		tables = []*bench.Table{bench.Table1(s)}
	case "table2":
		tables = []*bench.Table{bench.Table2()}
	case "fig2":
		tables = []*bench.Table{bench.Fig2(s)}
	case "fig3":
		tables = []*bench.Table{bench.Fig3(s)}
	case "fig10":
		tables = bench.Ablation(s, workload.Zipfian)
	case "fig11":
		tables = bench.Ablation(s, workload.Uniform)
	case "fig12":
		tables = []*bench.Table{bench.Fig12(s)}
	case "fig13":
		tables = bench.Fig13(s)
	case "fig14":
		tables = bench.Fig14(s)
	case "fig15a":
		tables = []*bench.Table{bench.Fig15KeySize(s, workload.Uniform)}
	case "fig15b":
		tables = []*bench.Table{bench.Fig15KeySize(s, workload.Zipfian)}
	case "fig15c":
		tables = []*bench.Table{bench.Fig15Cache(s)}
	case "fig16":
		tables = []*bench.Table{bench.Fig16(s)}
	case "extras":
		tables = bench.Extras(s)
	case "ycsb":
		tables = []*bench.Table{bench.YCSBSuite(s)}
	case "batch":
		tables = bench.BatchTables(s, col)
	case "pipeline":
		tables = bench.PipelineTables(s, col)
	case "faults":
		t, r := bench.FaultChurn(s, col)
		tables = []*bench.Table{t}
		*churn = &r
	case "elastic":
		t, r := bench.Elastic(s, col)
		tables = []*bench.Table{t}
		*elastic = &r
	case "cache":
		t, r := bench.CacheSweep(s, col)
		tables = []*bench.Table{t}
		*cacheRes = r
	case "alloc":
		tables = bench.AllocTables(s, col)
	case "replica":
		t, r := bench.Replica(s, col)
		tables = []*bench.Table{t}
		*replicaRes = r
	case "tcp":
		// The differential is its own hard gate: any oracle mismatch (or a
		// failed launch) fails the run regardless of -check.
		t, err := runTCPDifferential()
		if t != nil {
			tables = []*bench.Table{t}
		}
		if err != nil {
			for _, t := range tables {
				fmt.Println(t)
			}
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "tcpfault":
		// A run error (failed launch, worker verb error) fails regardless of
		// -check; the semantic gate itself runs under -check.
		t, r, err := runTCPFault()
		if t != nil {
			tables = []*bench.Table{t}
		}
		*tcpFaultRes = r
		if err != nil {
			for _, t := range tables {
				fmt.Println(t)
			}
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "tcppipe":
		// A run error (failed launch, worker verb error) fails regardless of
		// -check; the scaling gate itself runs under -check.
		ts, r, err := runTCPPipe(col)
		tables = ts
		*tcpPipeRes = r
		if err != nil {
			for _, t := range tables {
				fmt.Println(t)
			}
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
		os.Exit(2)
	}
	for _, t := range tables {
		fmt.Println(t)
		report.Tables = append(report.Tables, t.ToJSON())
	}
	fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
}
