package migrate_test

import (
	"testing"

	"sherman/internal/alloc"
	"sherman/internal/cluster"
	"sherman/internal/core"
	"sherman/internal/migrate"
	"sherman/internal/sim"
	"sherman/internal/stats"
	"sherman/internal/testutil"
)

// buildMigrTree builds a deterministic 2-MS cluster whose tree stripes
// across both servers, so draining ms1 is a real multi-node migration.
func buildMigrTree(t *testing.T, cfg core.Config, keys int) (*cluster.Cluster, *core.Tree) {
	t.Helper()
	cl := cluster.New(cluster.Config{NumMS: 2, NumCS: 2, MaxMS: 4})
	tr := core.New(cl, cfg)
	testutil.Bulk(t, tr, keys)
	return cl, tr
}

// checkExactContents asserts every bulkloaded key is reachable exactly
// once: a full scan must return each key one time in order (a duplicated
// parent edge would surface as a repeated key), and the structural stats
// must count exactly the loaded entries.
func checkExactContents(t *testing.T, tr *core.Tree, keys int, when string) {
	t.Helper()
	h := tr.NewHandle(0, 99)
	rows := h.Range(1, keys+16)
	if len(rows) != keys {
		t.Fatalf("%s: scan returned %d rows, want %d", when, len(rows), keys)
	}
	for i, kv := range rows {
		want := uint64(i + 1)
		if kv.Key != want || kv.Value != testutil.BulkValue(want) {
			t.Fatalf("%s: row %d = %+v, want key %d", when, i, kv, want)
		}
	}
	if st := tr.Stats(); st.Entries != keys {
		t.Fatalf("%s: tree holds %d entries, want %d", when, st.Entries, keys)
	}
}

// runCrashing runs fn, reporting whether it aborted with a compute-server
// crash.
func runCrashing(fn func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := sim.IsCrash(r); ok {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	fn()
	return false
}

// TestMigrationCrashAtEveryVerb is the crash property test of the
// migration protocol: a compute server driving a drain of memory server 1
// is killed at every fabric-verb index of the migration in turn. After
// each crash a survivor runs the structural recovery sweep, and the tree
// must hold every key exactly once, pass Validate, and have drained the
// dead migrator's forwarding entries.
func TestMigrationCrashAtEveryVerb(t *testing.T) {
	const keys = 90
	for _, cfg := range testutil.Configs() {
		t.Run(cfg.Name(), func(t *testing.T) {
			// Dry run: count the migration's fabric verbs.
			cl, tr := buildMigrTree(t, cfg, keys)
			victim := tr.NewHandle(1, 1)
			v0 := cl.Faults().Verbs(1)
			if _, err := migrate.New(victim, migrate.Options{}).DrainServer(1); err != nil {
				t.Fatal(err)
			}
			verbs := int(cl.Faults().Verbs(1) - v0)
			if verbs < 10 {
				t.Fatalf("implausible migration verb count %d", verbs)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("dry run left invalid tree: %v", err)
			}
			checkExactContents(t, tr, keys, "dry run")
			t.Logf("%s: migration spans %d verbs", cfg.Name(), verbs)

			step := 1
			if testing.Short() {
				step = 7
			}
			for i := 1; i <= verbs; i += step {
				cl, tr = buildMigrTree(t, cfg, keys)
				victim = tr.NewHandle(1, 1)
				cl.Faults().KillAtVerb(1, int64(i))
				if !runCrashing(func() {
					_, err := migrate.New(victim, migrate.Options{}).DrainServer(1)
					if err != nil {
						t.Errorf("verb %d: drain error instead of crash: %v", i, err)
					}
				}) {
					t.Fatalf("verb %d/%d: migrator survived its armed kill", i, verbs)
				}

				// Before recovery the tree must already serve every key —
				// forwarding keeps killed nodes reachable in one hop.
				surv := tr.NewHandle(0, 2)
				surv.SetClock(victim.C.Now())
				for k := uint64(1); k <= keys; k += 13 {
					if v, ok := surv.Lookup(k); !ok || v != testutil.BulkValue(k) {
						t.Fatalf("verb %d: pre-recovery Lookup(%d) = (%d,%v)", i, k, v, ok)
					}
				}

				repairs, complete := surv.RecoverStructure()
				if !complete {
					t.Fatalf("verb %d: recovery pass budget exhausted (%d repairs)", i, repairs)
				}
				if drained := tr.DrainDeadForwarding(); cl.Fwd.Len() != 0 {
					t.Fatalf("verb %d: %d forwarding entries linger after draining %d",
						i, cl.Fwd.Len(), drained)
				}
				if err := tr.Validate(); err != nil {
					t.Fatalf("verb %d/%d: post-recovery validate: %v", i, verbs, err)
				}
				checkExactContents(t, tr, keys, "post-recovery")
			}
		})
	}
}

// TestDrainThenOperate drains a server and keeps writing through it: the
// drained server must take no new data while every existing key stays
// reachable, and a second drain of the (already empty) server is a no-op.
func TestDrainThenOperate(t *testing.T) {
	for _, cfg := range testutil.Configs() {
		t.Run(cfg.Name(), func(t *testing.T) {
			cl, tr := buildMigrTree(t, cfg, 500)
			h := tr.NewHandle(0, 0)
			e := migrate.New(h, migrate.Options{})
			st, err := e.DrainServer(1)
			if err != nil {
				t.Fatal(err)
			}
			if st.NodesMoved == 0 || st.ChunksMoved == 0 {
				t.Fatalf("drain moved nothing: %+v", st)
			}
			if st.Repoints == 0 {
				t.Fatalf("drain repointed nothing: %+v", st)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			// No tree node lives on ms1 anymore.
			srv := cl.F.Servers()[1]
			for ci := range srv.ChunkOps() {
				if items := h.CollectChunk(alloc.ChunkID{MS: 1, Index: uint64(ci)}); len(items) != 0 {
					t.Fatalf("chunk %d still holds %d reachable nodes", ci, len(items))
				}
			}
			// Growth keeps working and lands elsewhere.
			for k := uint64(10_000); k < 11_500; k++ {
				h.Insert(k, k)
			}
			if _, err := e.DrainServer(1); err != nil {
				t.Fatalf("re-drain of empty server: %v", err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPlanRebalanceTargetsColdServer checks the picker end to end: a tree
// big enough to span several chunks sits entirely on one server; after a
// second (idle) server joins, Rebalance must move hot chunks onto it until
// fresh traffic splits across both. Chunk granularity bounds how finely
// load can split, so the assertion is a band, not perfection.
func TestPlanRebalanceTargetsColdServer(t *testing.T) {
	const keys = 800_000 // ~3 chunks of 256 B nodes
	cl := cluster.New(cluster.Config{NumMS: 1, NumCS: 1, MaxMS: 2})
	cfg := testutil.Configs()[0]
	tr := core.New(cl, cfg)
	testutil.Bulk(t, tr, keys)
	h := tr.NewHandle(0, 0)
	for k := uint64(1); k <= keys; k += 17 {
		h.Lookup(k)
	}
	if _, err := cl.F.AddServer(); err != nil {
		t.Fatal(err)
	}
	before := migrate.Loads(cl.F)
	if skew := stats.LoadMaxMin(before); skew < 2 {
		t.Fatalf("pre-rebalance max/min skew %.1f, want large", skew)
	}
	st, err := migrate.New(h, migrate.Options{}).Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunksMoved == 0 || st.NodesMoved == 0 {
		t.Fatalf("rebalance moved nothing: %+v", st)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fresh traffic must now split across both servers: the hottest one may
	// keep more (whole chunks move, load splits at chunk granularity), but
	// the cold server must carry a real share.
	prev := migrate.Loads(cl.F)
	h2 := tr.NewHandle(0, 1)
	for k := uint64(1); k <= keys; k += 13 {
		h2.Lookup(k)
	}
	window := stats.SubLoads(migrate.Loads(cl.F), prev)
	if skew := stats.LoadMaxMin(window); skew > 4 {
		t.Fatalf("post-rebalance window max/min skew %.2f, want near 1 (loads %+v)", skew, window)
	}
}
