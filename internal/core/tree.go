package core

import (
	"fmt"

	"sherman/internal/alloc"
	"sherman/internal/cache"
	"sherman/internal/hocl"
	"sherman/internal/layout"
	"sherman/internal/rdma"
)

// Tree is one distributed B+Tree living in a cluster's disaggregated memory.
// All methods on Tree itself are setup-time; concurrent index operations go
// through per-thread Handles.
type Tree struct {
	cl  Backend
	cfg Config

	locks *hocl.Manager

	// Per compute server: the unified multi-level index cache (§4.2.3
	// generalized — pinned top levels plus the budgeted lower levels).
	caches []*cache.Cache
}

// New creates an empty tree (a single empty leaf as root) in the cluster.
func New(cl Backend, cfg Config) *Tree {
	t := &Tree{cl: cl, cfg: cfg}
	t.locks = cl.NewLockManager(hocl.Config{Mode: cfg.Locks, LocksPerMS: cfg.LocksPerMS})
	for i := 0; i < cl.NumCS(); i++ {
		t.caches = append(t.caches, newCSCache(cfg))
	}
	// Failed-over chunks must stop steering cached traversals into the dead
	// server; the promotion listener purges them through the same O(affected)
	// per-chunk invalidation migration uses.
	cl.OnChunkInvalidate(func(ck alloc.ChunkID) { t.InvalidateChunk(ck) })
	// Empty tree: one leaf covering the whole key space.
	b := cl.NewBulk()
	rootAddr := b.Alloc(cfg.Format.NodeSize)
	leaf := layout.NewLeaf(cfg.Format, 0, layout.NoUpperBound)
	if cfg.Format.Mode == layout.Checksum {
		leaf.UpdateChecksum()
	}
	cl.RawWrite(rootAddr, leaf.B)
	cl.SetRoot(rootAddr, 0)
	return t
}

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

// LockStats exposes HOCL counters for reports.
func (t *Tree) LockStats() *hocl.Stats { return &t.locks.Stats }

// Cache returns compute server cs's index cache (for hit-ratio reports).
func (t *Tree) Cache(cs int) *cache.Cache { return t.caches[cs] }

// newCSCache builds one compute server's index cache per the config.
func newCSCache(cfg Config) *cache.Cache {
	cacheBytes := cfg.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = 64 << 20
	}
	return cache.New(cache.Config{
		MaxBytes: cacheBytes,
		NodeSize: cfg.Format.NodeSize,
		Levels:   cfg.CacheLevels,
	})
}

// Bulkload replaces the tree contents with the given key-value pairs, which
// must be sorted by strictly increasing key with no key 0. Leaves are packed
// to the configured fill factor (80% in the paper, §5.1.3) and spread across
// memory servers chunk by chunk. Call before starting client threads.
func (t *Tree) Bulkload(kvs []layout.KV) {
	for i := range kvs {
		if kvs[i].Key == 0 {
			panic("core: key 0 is reserved")
		}
		if i > 0 && kvs[i].Key <= kvs[i-1].Key {
			panic(fmt.Sprintf("core: bulkload keys not strictly sorted at %d", i))
		}
	}
	f := t.cfg.Format
	b := t.cl.NewBulk()

	perLeaf := int(float64(f.LeafCap) * t.cfg.bulkFill())
	if perLeaf < 1 {
		perLeaf = 1
	}
	if perLeaf > f.LeafCap {
		perLeaf = f.LeafCap
	}

	// Build the leaf level.
	var leafAddrs []rdma.Addr
	var bounds []uint64 // lower fence of each leaf
	nLeaves := (len(kvs) + perLeaf - 1) / perLeaf
	if nLeaves == 0 {
		nLeaves = 1
	}
	for i := 0; i < nLeaves; i++ {
		leafAddrs = append(leafAddrs, b.Alloc(f.NodeSize))
	}
	for i := 0; i < nLeaves; i++ {
		lo := i * perLeaf
		hi := lo + perLeaf
		if hi > len(kvs) {
			hi = len(kvs)
		}
		var lower, upper uint64 = 0, layout.NoUpperBound
		if i > 0 {
			lower = kvs[lo].Key
		}
		if hi < len(kvs) {
			upper = kvs[hi].Key
		}
		leaf := layout.NewLeaf(f, lower, upper)
		if i+1 < nLeaves {
			leaf.SetSibling(leafAddrs[i+1])
		}
		leaf.SetEntries(kvs[lo:hi])
		if f.Mode == layout.Checksum {
			leaf.UpdateChecksum()
		}
		t.cl.RawWrite(leafAddrs[i], leaf.B)
		bounds = append(bounds, lower)
	}

	// Build internal levels bottom-up until a single root remains.
	level := uint8(0)
	addrs, lowers := leafAddrs, bounds
	perInt := int(float64(f.IntCap) * t.cfg.bulkFill())
	if perInt < 2 {
		perInt = 2
	}
	for len(addrs) > 1 {
		level++
		var upAddrs []rdma.Addr
		var upLowers []uint64
		n := (len(addrs) + perInt - 1) / perInt
		newAddrs := make([]rdma.Addr, n)
		for i := range newAddrs {
			newAddrs[i] = b.Alloc(f.NodeSize)
		}
		for i := 0; i < n; i++ {
			lo := i * perInt
			hi := lo + perInt
			if hi > len(addrs) {
				hi = len(addrs)
			}
			var lower, upper uint64 = 0, layout.NoUpperBound
			if i > 0 {
				lower = lowers[lo]
			}
			if hi < len(addrs) {
				upper = lowers[hi]
			}
			node := layout.NewInternal(f, level, lower, upper)
			if i+1 < n {
				node.SetSibling(newAddrs[i+1])
			}
			node.SetLeftmost(addrs[lo])
			seps := make([]layout.Sep, 0, hi-lo-1)
			for j := lo + 1; j < hi; j++ {
				seps = append(seps, layout.Sep{Key: lowers[j], Child: addrs[j]})
			}
			node.SetSeparators(seps)
			if f.Mode == layout.Checksum {
				node.UpdateChecksum()
			}
			t.cl.RawWrite(newAddrs[i], node.B)
			upAddrs = append(upAddrs, newAddrs[i])
			upLowers = append(upLowers, lower)
		}
		addrs, lowers = upAddrs, upLowers
	}
	t.cl.SetRoot(addrs[0], level)
}

// Validate walks the whole tree with raw reads and checks structural
// invariants: fence nesting, sorted separators and (in Checksum mode)
// sorted leaves, sibling linkage, level consistency, and that every
// bulkloaded/inserted key is reachable. Intended for tests; not concurrent
// safe with writers.
func (t *Tree) Validate() error {
	rootAddr, level := t.rawRoot()
	return t.validateNode(rootAddr, level, 0, layout.NoUpperBound)
}

func (t *Tree) rawRoot() (rdma.Addr, uint8) {
	var buf [16]byte
	t.cl.RawRead(rdma.MakeAddr(0, 0), buf[:])
	root := rdma.Addr(le64(buf[0:]))
	// The superblock's level field is only a hint (the pointer CAS and the
	// hint write are separate verbs; a client can crash between them): the
	// node's own level field is authoritative.
	nb := make([]byte, t.cfg.Format.NodeSize)
	t.cl.RawRead(root, nb)
	return root, layout.ViewNode(t.cfg.Format, nb).Level()
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func (t *Tree) validateNode(a rdma.Addr, level uint8, lower, upper uint64) error {
	f := t.cfg.Format
	buf := make([]byte, f.NodeSize)
	t.cl.RawRead(a, buf)
	n := layout.ViewNode(f, buf)
	if !n.Alive() {
		return fmt.Errorf("node %v is freed but reachable", a)
	}
	if n.Level() != level {
		return fmt.Errorf("node %v level %d, want %d", a, n.Level(), level)
	}
	if n.LowerFence() != lower || n.UpperFence() != upper {
		return fmt.Errorf("node %v fences [%d,%d), want [%d,%d)", a, n.LowerFence(), n.UpperFence(), lower, upper)
	}
	if level == 0 {
		leaf := layout.AsLeaf(n)
		for _, kv := range leaf.Entries() {
			if !(kv.Key >= lower && (upper == layout.NoUpperBound || kv.Key < upper)) {
				return fmt.Errorf("leaf %v key %d outside [%d,%d)", a, kv.Key, lower, upper)
			}
		}
		return nil
	}
	in := layout.AsInternal(n)
	seps := in.Separators()
	prev := lower
	for i, s := range seps {
		if s.Key <= prev {
			return fmt.Errorf("internal %v separators unsorted at %d", a, i)
		}
		prev = s.Key
	}
	childLower := lower
	childUpper := upper
	if len(seps) > 0 {
		childUpper = seps[0].Key
	}
	if err := t.validateNode(in.Leftmost(), level-1, childLower, childUpper); err != nil {
		return err
	}
	for i, s := range seps {
		cu := upper
		if i+1 < len(seps) {
			cu = seps[i+1].Key
		}
		if err := t.validateNode(s.Child, level-1, s.Key, cu); err != nil {
			return err
		}
	}
	return nil
}
