package stats

// OpKind distinguishes index operation classes in recorders. The paper calls
// lookup and range query "read operations" and insert (including updates)
// and delete "write operations" (§1 footnote 1).
type OpKind int

// Operation classes.
const (
	OpLookup OpKind = iota
	OpInsert
	OpDelete
	OpRange
	numOpKinds
)

// NumOpKinds is the number of operation classes, for per-kind count arrays.
const NumOpKinds = int(numOpKinds)

// String names the operation class.
func (k OpKind) String() string {
	switch k {
	case OpLookup:
		return "lookup"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpRange:
		return "range"
	default:
		return "unknown"
	}
}

// IsWrite reports whether the class is a write operation in the paper's
// terminology.
func (k OpKind) IsWrite() bool { return k == OpInsert || k == OpDelete }

// MaxCacheLevel is the highest tree level the per-level cache-hit counters
// distinguish; hits at deeper levels fold into the top bucket.
const MaxCacheLevel = 8

// CacheLevelIdx maps a tree level to its CacheLevelHits bucket.
func CacheLevelIdx(level uint8) int {
	if int(level) > MaxCacheLevel {
		return MaxCacheLevel
	}
	return int(level)
}

// Recorder collects one thread's measurements; it is not safe for concurrent
// use. Merge recorders after the worker goroutines finish.
type Recorder struct {
	// Latency holds per-class operation latencies (virtual ns).
	Latency [numOpKinds]*Hist
	// AllLatency aggregates every operation, matching the paper's combined
	// latency plots.
	AllLatency *Hist

	// Ops counts operations per class.
	Ops [numOpKinds]int64

	// WriteRoundTrips is the round-trip count distribution of write
	// operations (Figure 14(b)).
	WriteRoundTrips *Counter
	// WriteSizes is the total-bytes-written distribution of write
	// operations (Figure 14(c)).
	WriteSizes *SizeHist
	// ReadRetries is the per-lookup retry-count distribution (Figure 14(a)).
	ReadRetries *Counter

	// Batches counts batch-API invocations; BatchedOps the operations they
	// carried (those operations are also counted in Ops by kind).
	Batches    int64
	BatchedOps int64
	// BatchSizes is the ops-per-batch distribution; BatchRoundTrips the
	// round-trips-per-batch distribution. Sum(BatchRoundTrips)/BatchedOps
	// is the amortized round trips per batched operation.
	BatchSizes      *Counter
	BatchRoundTrips *Counter
	// BatchLeafGroups counts the leaf groups batch executors formed — one
	// leaf lock acquisition (write batches) or one leaf read (read batches)
	// per group. BatchChainedLeaves counts sibling leaves processed under a
	// reused guard without a fresh acquisition (lock-slot aliasing).
	BatchLeafGroups    int64
	BatchChainedLeaves int64

	// PipelinedOps counts operations issued through the async executor at
	// depth > 1; PipelineDepths is the outstanding-depth distribution
	// observed at each issue (including the op being issued).
	PipelinedOps   int64
	PipelineDepths *Counter
	// PipelineOpNS sums issue-to-completion latencies of pipelined
	// operations; PipelineBusyNS is the union length of their execution
	// intervals — the virtual time the pipeline spent doing anything.
	// Their ratio is the latency-hiding factor: how many serialized
	// operation-latencies the pipeline packed into each unit of busy time
	// (1.0 means no overlap).
	PipelineOpNS   int64
	PipelineBusyNS int64

	// RoundTrips totals network round trips attributed to this recorder's
	// window (the harness fills it with the measured-phase delta of the
	// client's verb counter).
	RoundTrips int64

	// CacheHits / CacheMisses count leaf-locate index-cache outcomes
	// (Figure 15(c)): a hit is a level-1 entry answering a leaf location —
	// the speculative leaf-direct jump.
	CacheHits   int64
	CacheMisses int64

	// CacheLevelHits breaks cache usefulness down by the tree level of the
	// entry that answered: index 1 counts leaf-direct jumps, higher indexes
	// count descents resumed at that level instead of the root (levels
	// beyond MaxCacheLevel fold into the top bucket).
	CacheLevelHits [MaxCacheLevel + 1]int64

	// SpecReads counts leaf reads issued speculatively from a cached
	// level-1 parent; SpecFails counts those whose validation failed and
	// fell back to a top-down descent. 1 - SpecFails/SpecReads is the
	// speculation success rate.
	SpecReads int64
	SpecFails int64

	// CacheInvalidations counts cache entries this thread dropped for
	// staleness: failed speculative validations (poisoned path suffixes),
	// dead nodes observed mid-descent, and reclaimed-lock repairs.
	CacheInvalidations int64

	// Handovers counts lock acquisitions satisfied by handover.
	Handovers int64

	// Reclaims counts lock acquisitions that stole an orphaned lock from a
	// crashed holder after its lease expired; SplitRepairs counts the
	// parent-separator (and root) repairs this thread's recovery sweeps
	// performed to complete splits a dead client left half-done.
	Reclaims     int64
	SplitRepairs int64

	// ForwardHops counts traversal redirections through the chunk
	// forwarding map — reads that landed on a migrated node and chased its
	// one-hop forwarding entry to the relocated copy.
	ForwardHops int64

	// ReplicaWrites counts mirror WRITEs this thread posted to replica
	// chunks — the write-amplification numerator of the replica benchmark.
	ReplicaWrites int64
	// ReplicaLagMaxNS is the worst bounded-lag sample observed: how far a
	// replica's mirror doorbell completed after the primary's commit (0 when
	// every mirror landed before its ack).
	ReplicaLagMaxNS int64
	// Failovers counts chunk promotions (replica became primary after a
	// memory-server death) attributed to this recorder's window.
	Failovers int64
	// ReReplications counts chunks the background re-replicator restored to
	// full replication factor.
	ReReplications int64

	// FinishV is the thread's virtual clock when it finished its share of
	// the workload; the experiment makespan is the max across threads.
	FinishV int64
	// StartV is the thread's virtual clock at workload start.
	StartV int64
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	r := &Recorder{
		AllLatency:      NewHist(),
		WriteRoundTrips: NewCounter(1 << 12),
		WriteSizes:      NewSizeHist(),
		ReadRetries:     NewCounter(64),
		BatchSizes:      NewCounter(1 << 10),
		BatchRoundTrips: NewCounter(1 << 12),
		PipelineDepths:  NewCounter(1 << 10),
	}
	for i := range r.Latency {
		r.Latency[i] = NewHist()
	}
	return r
}

// RecordOp stores one finished operation.
func (r *Recorder) RecordOp(kind OpKind, latencyNS int64) {
	r.Latency[kind].Record(latencyNS)
	r.AllLatency.Record(latencyNS)
	r.Ops[kind]++
}

// RecordBatch stores one finished batch of n same-kind operations,
// attributing the batch latency to each operation amortized (a batch of n
// completes n operations in latencyNS total, so each effectively costs the
// mean — the per-op number a batched client observes).
func (r *Recorder) RecordBatch(kind OpKind, n int, latencyNS, roundTrips int64) {
	if n <= 0 {
		return
	}
	per := latencyNS / int64(n)
	for i := 0; i < n; i++ {
		r.Latency[kind].Record(per)
		r.AllLatency.Record(per)
	}
	r.Ops[kind] += int64(n)
	r.Batches++
	r.BatchedOps += int64(n)
	r.BatchSizes.Record(n)
	r.BatchRoundTrips.Record(int(roundTrips))
}

// RecordMixedBatch stores one finished mixed-op batch: counts[k] operations
// of each class, completing in latencyNS total over roundTrips round trips.
// Like RecordBatch, the batch latency is attributed to each operation
// amortized — the per-op number a batched client observes.
func (r *Recorder) RecordMixedBatch(counts [NumOpKinds]int64, latencyNS, roundTrips int64) {
	var n int64
	for _, c := range counts {
		n += c
	}
	if n <= 0 {
		return
	}
	per := latencyNS / n
	for k, c := range counts {
		for i := int64(0); i < c; i++ {
			r.Latency[k].Record(per)
			r.AllLatency.Record(per)
		}
		r.Ops[k] += c
	}
	r.Batches++
	r.BatchedOps += n
	r.BatchSizes.Record(int(n))
	r.BatchRoundTrips.Record(int(roundTrips))
}

// RecordPipelineOp stores one operation issued through the async executor:
// the outstanding depth observed at issue, its execution latency, and its
// contribution to the pipeline's busy-interval union (busyNS <= opNS; the
// difference is the latency the pipeline hid under siblings).
func (r *Recorder) RecordPipelineOp(depth int, opNS, busyNS int64) {
	r.PipelinedOps++
	r.PipelineDepths.Record(depth)
	r.PipelineOpNS += opNS
	r.PipelineBusyNS += busyNS
}

// HidingRatio returns the pipeline's latency-hiding factor: summed operation
// latencies over the union of their execution intervals. 1.0 means fully
// serialized (no overlap); depth-D pipelines approach D until the NIC
// pipelines or lock conflicts bound them. 0 means nothing was pipelined.
func (r *Recorder) HidingRatio() float64 {
	if r.PipelineBusyNS <= 0 {
		return 0
	}
	return float64(r.PipelineOpNS) / float64(r.PipelineBusyNS)
}

// Merge folds other into r.
func (r *Recorder) Merge(other *Recorder) {
	if other == nil {
		return
	}
	for i := range r.Latency {
		r.Latency[i].Merge(other.Latency[i])
		r.Ops[i] += other.Ops[i]
	}
	r.AllLatency.Merge(other.AllLatency)
	r.WriteRoundTrips.Merge(other.WriteRoundTrips)
	r.WriteSizes.Merge(other.WriteSizes)
	r.ReadRetries.Merge(other.ReadRetries)
	r.Batches += other.Batches
	r.BatchedOps += other.BatchedOps
	r.BatchSizes.Merge(other.BatchSizes)
	r.BatchRoundTrips.Merge(other.BatchRoundTrips)
	r.BatchLeafGroups += other.BatchLeafGroups
	r.BatchChainedLeaves += other.BatchChainedLeaves
	r.PipelinedOps += other.PipelinedOps
	r.PipelineDepths.Merge(other.PipelineDepths)
	r.PipelineOpNS += other.PipelineOpNS
	r.PipelineBusyNS += other.PipelineBusyNS
	r.RoundTrips += other.RoundTrips
	r.CacheHits += other.CacheHits
	r.CacheMisses += other.CacheMisses
	for i := range r.CacheLevelHits {
		r.CacheLevelHits[i] += other.CacheLevelHits[i]
	}
	r.SpecReads += other.SpecReads
	r.SpecFails += other.SpecFails
	r.CacheInvalidations += other.CacheInvalidations
	r.Handovers += other.Handovers
	r.Reclaims += other.Reclaims
	r.SplitRepairs += other.SplitRepairs
	r.ForwardHops += other.ForwardHops
	r.ReplicaWrites += other.ReplicaWrites
	if other.ReplicaLagMaxNS > r.ReplicaLagMaxNS {
		r.ReplicaLagMaxNS = other.ReplicaLagMaxNS
	}
	r.Failovers += other.Failovers
	r.ReReplications += other.ReReplications
	if other.FinishV > r.FinishV {
		r.FinishV = other.FinishV
	}
}

// TotalOps returns the number of operations across all classes.
func (r *Recorder) TotalOps() int64 {
	var n int64
	for _, v := range r.Ops {
		n += v
	}
	return n
}

// SpecSuccessRate returns the fraction of speculative leaf-direct reads
// that validated on the first try (0 when none were issued).
func (r *Recorder) SpecSuccessRate() float64 {
	if r.SpecReads == 0 {
		return 0
	}
	return 1 - float64(r.SpecFails)/float64(r.SpecReads)
}

// HitRatio returns the index-cache hit ratio in [0,1].
func (r *Recorder) HitRatio() float64 {
	tot := r.CacheHits + r.CacheMisses
	if tot == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(tot)
}

// ThroughputMops converts an op count and a virtual makespan to millions of
// operations per second.
func ThroughputMops(ops int64, makespanNS int64) float64 {
	if makespanNS <= 0 {
		return 0
	}
	return float64(ops) / float64(makespanNS) * 1e3
}
