// Command shermanbench regenerates every table and figure of the paper's
// evaluation (§5) on the simulated fabric. Results print as aligned text
// tables; EXPERIMENTS.md records a captured run against the paper's numbers.
//
// Usage:
//
//	shermanbench -exp all
//	shermanbench -exp fig10 -keys 4194304 -ops 2000 -threads 22
//
// Experiments: table1 table2 fig2 fig3 fig10 fig11 fig12 fig13 fig14
// fig15a fig15b fig15c fig16 extras ycsb batch pipeline all quick
//
// -check (with -exp pipeline) additionally verifies that depth-4 pipelined
// execution beats depth-1 per-thread throughput and exits non-zero
// otherwise — the CI latency-hiding smoke.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"sherman/internal/bench"
	"sherman/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1,table2,fig2,fig3,fig10,fig11,fig12,fig13,fig14,fig15a,fig15b,fig15c,fig16,extras,ycsb,batch,pipeline,all,quick)")
		keys     = flag.Uint64("keys", 0, "key-space size (0 = scale default)")
		windowMS = flag.Int("window", 0, "virtual measurement window in ms (0 = scale default)")
		warmup   = flag.Int("warmup", 0, "warmup ops per thread (0 = scale default)")
		threads  = flag.Int("threads", 0, "client threads per compute server (0 = scale default)")
		quick    = flag.Bool("quick", false, "use the quick (CI-sized) scale")
		check    = flag.Bool("check", false, "with -exp pipeline: fail unless depth-4 beats depth-1 per-thread throughput")
	)
	flag.Parse()

	s := bench.FullScale()
	if *quick || *exp == "quick" {
		s = bench.QuickScale()
	}
	if *keys != 0 {
		s.Keys = *keys
	}
	if *windowMS != 0 {
		s.MeasureNS = int64(*windowMS) * 1_000_000
	}
	if *warmup != 0 {
		s.WarmupOps = *warmup
	}
	if *threads != 0 {
		s.ThreadsPerCS = *threads
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" || *exp == "quick" {
		ids = []string{"table1", "table2", "fig2", "fig3", "fig10", "fig11",
			"fig12", "fig13", "fig14", "fig15a", "fig15b", "fig15c", "fig16", "batch", "pipeline"}
	}
	fmt.Printf("# shermanbench: keys=%d threads/CS=%d window=%dms GOMAXPROCS=%d\n\n",
		s.Keys, s.ThreadsPerCS, s.MeasureNS/1_000_000, runtime.GOMAXPROCS(0))
	for _, id := range ids {
		run(strings.TrimSpace(id), s)
	}
	if *check {
		if err := bench.PipelineGate(s); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("pipeline gate: depth-4 beats depth-1 for put and get (hiding > 1.5x)")
	}
}

func run(id string, s bench.Scale) {
	start := time.Now()
	var tables []*bench.Table
	switch id {
	case "table1":
		tables = []*bench.Table{bench.Table1(s)}
	case "table2":
		tables = []*bench.Table{bench.Table2()}
	case "fig2":
		tables = []*bench.Table{bench.Fig2(s)}
	case "fig3":
		tables = []*bench.Table{bench.Fig3(s)}
	case "fig10":
		tables = bench.Ablation(s, workload.Zipfian)
	case "fig11":
		tables = bench.Ablation(s, workload.Uniform)
	case "fig12":
		tables = []*bench.Table{bench.Fig12(s)}
	case "fig13":
		tables = bench.Fig13(s)
	case "fig14":
		tables = bench.Fig14(s)
	case "fig15a":
		tables = []*bench.Table{bench.Fig15KeySize(s, workload.Uniform)}
	case "fig15b":
		tables = []*bench.Table{bench.Fig15KeySize(s, workload.Zipfian)}
	case "fig15c":
		tables = []*bench.Table{bench.Fig15Cache(s)}
	case "fig16":
		tables = []*bench.Table{bench.Fig16(s)}
	case "extras":
		tables = bench.Extras(s)
	case "ycsb":
		tables = []*bench.Table{bench.YCSBSuite(s)}
	case "batch":
		tables = bench.BatchTables(s)
	case "pipeline":
		tables = bench.PipelineTables(s)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
		os.Exit(2)
	}
	for _, t := range tables {
		fmt.Println(t)
	}
	fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
}
