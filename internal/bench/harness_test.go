package bench

import (
	"testing"

	"sherman/internal/core"
	"sherman/internal/hocl"
	"sherman/internal/workload"
)

// tinyExp is a minimal tree experiment that still exercises the full
// warmup/align/measure pipeline.
func tinyExp(mix workload.Mix, dist workload.Dist, cfg core.Config) TreeExp {
	return TreeExp{
		Name:         "tiny",
		NumMS:        2,
		NumCS:        2,
		ThreadsPerCS: 4,
		Keys:         32 << 10,
		WarmupOps:    50,
		MeasureNS:    1_000_000,
		Mix:          mix,
		Dist:         dist,
		Tree:         cfg,
	}
}

func TestRunTreeBasics(t *testing.T) {
	r := RunTree(tinyExp(workload.WriteIntensive, workload.Uniform, core.ShermanConfig()))
	if r.Mops <= 0 {
		t.Fatalf("throughput = %v", r.Mops)
	}
	if r.P50 <= 0 || r.P99 < r.P50 {
		t.Fatalf("latencies: p50=%d p99=%d", r.P50, r.P99)
	}
	if r.Rec.TotalOps() == 0 {
		t.Fatal("no operations recorded")
	}
	// Ops must roughly fill the window: ops * p50 <= threads * window, with
	// wide slack for tails.
	maxOps := int64(8) * 1_000_000 / r.P50 * 2
	if got := r.Rec.TotalOps(); got > maxOps {
		t.Errorf("ops %d exceed the window's plausible capacity %d", got, maxOps)
	}
}

func TestRunTreeMixRouting(t *testing.T) {
	r := RunTree(tinyExp(workload.RangeWrite, workload.Uniform, core.ShermanConfig()))
	if r.Rec.Ops[2] != 0 { // no deletes in this mix
		t.Errorf("deletes recorded for a range-write mix")
	}
	scans := r.Rec.Ops[3]
	inserts := r.Rec.Ops[1]
	if scans == 0 || inserts == 0 {
		t.Fatalf("mix not routed: %d scans, %d inserts", scans, inserts)
	}
	ratio := float64(scans) / float64(scans+inserts)
	if ratio < 0.2 || ratio > 0.8 {
		t.Errorf("scan share %.2f far from the configured 50%%", ratio)
	}
}

func TestRunTreeNAverages(t *testing.T) {
	e := tinyExp(workload.ReadIntensive, workload.Uniform, core.ShermanConfig())
	r := RunTreeN(e, 2)
	if r.Mops <= 0 || r.Rec == nil {
		t.Fatalf("averaged result: %+v", r)
	}
	one := RunTreeN(e, 1)
	if one.Mops <= 0 {
		t.Fatal("single-run result empty")
	}
}

func TestRunLocksBasics(t *testing.T) {
	r := RunLocks(LockExp{
		Name: "tiny", NumCS: 2, ThreadsPerCS: 4, Locks: 64,
		Theta: 0.99, Mode: hocl.Sherman(),
		WarmupOps: 20, MeasureNS: 500_000,
	})
	if r.Mops <= 0 {
		t.Fatalf("lock throughput = %v", r.Mops)
	}
	if r.Handovers == 0 {
		t.Error("no handovers under skewed same-CS contention")
	}
}

func TestRunWritesShape(t *testing.T) {
	small := RunWrites(WriteExp{IOSize: 64, Inbound: true, Ops: 500, Threads: 16})
	big := RunWrites(WriteExp{IOSize: 4096, Inbound: true, Ops: 500, Threads: 16})
	if small.Mops <= 0 || big.Mops <= 0 {
		t.Fatalf("throughputs: %v / %v", small.Mops, big.Mops)
	}
	// Figure 3's shape: small IO is IOPS-bound, large IO bandwidth-bound,
	// so 64 B must sustain far more ops than 4 KB.
	if small.Mops < big.Mops*4 {
		t.Errorf("64B %.1f Mops vs 4KB %.1f Mops: bandwidth bound not visible",
			small.Mops, big.Mops)
	}
}

func TestLevel1WorkingSetBytes(t *testing.T) {
	cfg := core.ShermanConfig()
	ws := Level1WorkingSetBytes(2<<20, cfg)
	if ws <= 0 {
		t.Fatalf("working set = %d", ws)
	}
	// ~2M keys / 51 per leaf / 55 per L1 node * 1 KB ≈ 700-900 KB.
	if ws < 100<<10 || ws > 4<<20 {
		t.Errorf("working set %d bytes implausible", ws)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("test", "a", "bb")
	tb.Add("1", "2")
	tb.Addf(3, "four")
	tb.Note("note %d", 7)
	s := tb.String()
	for _, want := range []string{"test", "a", "bb", "1", "2", "3", "four", "# note 7"} {
		if !contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestBulkValueNonZero(t *testing.T) {
	for k := uint64(1); k < 1000; k++ {
		if bulkValue(k) == 0 {
			t.Fatalf("bulkValue(%d) = 0", k)
		}
	}
}

// TestWindowScalesOps: doubling the measurement window should roughly
// double completed operations at fixed load.
func TestWindowScalesOps(t *testing.T) {
	e := tinyExp(workload.ReadIntensive, workload.Uniform, core.ShermanConfig())
	short := RunTree(e)
	e.MeasureNS *= 2
	long := RunTree(e)
	ratio := float64(long.Rec.TotalOps()) / float64(short.Rec.TotalOps())
	if ratio < 1.4 || ratio > 2.8 {
		t.Errorf("2x window gave %.2fx ops", ratio)
	}
}

// TestRPCBaselineCeiling: the RPC index's write throughput must be pinned
// near the memory threads' aggregate service rate and must not grow with
// client count, while Sherman's does (the Table 2 claim).
func TestRPCBaselineCeiling(t *testing.T) {
	s := Scale{MeasureNS: 1_000_000}
	few := runRPCWrites(2, s)  // 16 clients
	many := runRPCWrites(8, s) // 64 clients
	// 8 MSs x 1 op / 2000 ns = 4 Mops hard ceiling.
	if many > 4.4 {
		t.Errorf("RPC writes reached %.2f Mops, above the 4 Mops memory-thread ceiling", many)
	}
	if many > few*2 {
		t.Errorf("RPC writes scaled %.2f -> %.2f Mops with 4x clients; should saturate", few, many)
	}
}
