package rdma

import (
	"fmt"
	"runtime"

	"sherman/internal/sim"
)

// yield makes every verb a real scheduling point. A verb spans microseconds
// of virtual time, so other client goroutines must get real CPU time inside
// it — otherwise critical sections (lock, read, write-back, release) would
// execute atomically in real time and lock conflicts could never be
// observed, no matter the contention.
func yield() { runtime.Gosched() }

// Client is one client thread's view of the fabric: a set of RC queue pairs
// (one per memory server, modeled implicitly), a virtual clock, and verb
// counters. A Client is owned by exactly one goroutine.
type Client struct {
	F  *Fabric
	CS *ComputeServer

	// Clk is the thread's virtual clock. Higher layers read it to timestamp
	// operations; verbs advance it.
	Clk sim.Clock

	// M accumulates verb-level metrics; the index layer snapshots the Op*
	// fields around each index operation.
	M Metrics

	// epoch is the compute server's incarnation at client creation; a
	// restart bumps it, so clients of a crashed-then-restarted CS stay dead.
	epoch int64
}

// NewClient creates a client thread context on compute server cs.
func (f *Fabric) NewClient(cs int) *Client {
	if cs < 0 || cs >= len(f.CSs) {
		panic(fmt.Sprintf("rdma: no compute server %d", cs))
	}
	f.clients.Add(1)
	return &Client{F: f, CS: f.CSs[cs], epoch: f.Faults.Epoch(cs)}
}

// Epoch returns the CS incarnation this client was created under.
func (c *Client) Epoch() int64 { return c.epoch }

// Alive reports whether this client may still issue verbs (its CS has not
// crashed since the client was created).
func (c *Client) Alive() bool { return c.F.Faults.Alive(int(c.CS.ID), c.epoch) }

// CheckAlive panics with sim.Crash when the client's compute server has
// failed. Verbs check implicitly; lock managers call it from verb-free spin
// and queue paths so a doomed thread cannot linger (or block peers) there.
func (c *Client) CheckAlive() {
	if !c.Alive() {
		panic(sim.Crash{CS: int(c.CS.ID)})
	}
}

// checkVerb gates one fabric verb on the injector: it aborts the thread when
// the CS is dead (or this verb triggers an armed kill), stalls the clock
// through a partition, and applies degradation delay. Called at verb entry,
// before any memory effect, so the crashing verb is never applied.
func (c *Client) checkVerb() {
	start, delay, ok := c.F.Faults.OnVerb(int(c.CS.ID), c.epoch, c.Clk.Now())
	if !ok {
		panic(sim.Crash{CS: int(c.CS.ID)})
	}
	c.Clk.AdvanceTo(start)
	c.Clk.Advance(delay)
}

// Now returns the thread's current virtual time.
func (c *Client) Now() int64 { return c.Clk.Now() }

// Step charges d nanoseconds of CS-local compute time.
func (c *Client) Step(d int64) { c.Clk.Advance(d) }

// OnTimeline runs fn with the client's clock repositioned to start and
// returns the virtual time at which fn's work completed, restoring the
// clock afterwards. It is the issue/complete split of the pipelined client:
// an async executor runs each outstanding operation on its own lane
// timeline, so a verb's round-trip latency overlaps its siblings' instead
// of serializing on the thread clock. The issue-side costs still serialize
// faithfully — every verb charges the shared CS outbound and MS inbound
// Resources at its lane's issue time regardless of which timeline it runs
// on, so one client's overlapping verbs contend for the NIC pipelines
// exactly as a real coroutine client's posted work requests do. Lane
// timelines stay within an operation latency of each other, well inside
// the Resource layer's out-of-order credit window (sim.CreditCapNS).
func (c *Client) OnTimeline(start int64, fn func()) (end int64) {
	saved := c.Clk.Now()
	c.Clk.Set(start)
	fn()
	end = c.Clk.Now()
	c.Clk.Set(saved)
	return end
}

func (c *Client) roundTrip() {
	c.M.RoundTrips++
	c.M.OpRoundTrips++
}

// Read fetches len(buf) bytes at a via RDMA_READ: one round trip, with the
// response payload charged at the memory server's NIC.
func (c *Client) Read(a Addr, buf []byte) {
	c.checkVerb()
	p := c.F.P
	srv := c.F.Server(a)
	t := c.CS.Outbound.Acquire(c.Clk.Now(), p.OutboundMinNS)
	t = srv.Inbound.Acquire(t, p.PayloadNS(len(buf), p.InboundMinNS))
	srv.NoteInbound(a, 1)
	srv.copyOut(a, buf)
	c.Clk.AdvanceTo(t + p.RTTNS)
	c.roundTrip()
	c.M.Reads++
	yield()
}

// ReadMulti issues the given reads in parallel (one command per target, all
// posted back-to-back) and returns when the slowest completes; this is how
// range queries fetch several leaves in one round-trip time (§4.4).
func (c *Client) ReadMulti(reqs []ReadOp) {
	if len(reqs) == 0 {
		return
	}
	c.checkVerb()
	p := c.F.P
	var done int64
	t := c.Clk.Now()
	for _, r := range reqs {
		t = c.CS.Outbound.Acquire(t, p.OutboundMinNS)
		srv := c.F.Server(r.Addr)
		fin := srv.Inbound.Acquire(t, p.PayloadNS(len(r.Buf), p.InboundMinNS))
		srv.NoteInbound(r.Addr, 1)
		srv.copyOut(r.Addr, r.Buf)
		if fin > done {
			done = fin
		}
	}
	c.Clk.AdvanceTo(done + p.RTTNS)
	c.roundTrip()
	c.M.Reads += int64(len(reqs))
	if len(reqs) > 1 {
		c.M.DoorbellBatches++
		c.M.DoorbellOps += int64(len(reqs))
	}
	yield()
}

// Write stores data at a via a single signaled RDMA_WRITE: one round trip.
func (c *Client) Write(a Addr, data []byte) {
	c.PostWrites(WriteOp{Addr: a, Data: data})
}

// PostWrites posts the given WRITE commands on one queue pair in order, with
// only the last command signaled: the NIC at the receiver executes them in
// posting order (RC in-order delivery, §4.5), so dependent writes — node
// write-back then lock release — complete in one round trip. All targets
// must live on the same memory server, since an RC QP connects exactly one
// pair of NICs.
func (c *Client) PostWrites(ops ...WriteOp) {
	if len(ops) == 0 {
		return
	}
	c.checkVerb()
	p := c.F.P
	srv := c.F.Server(ops[0].Addr)
	for _, op := range ops[1:] {
		if op.Addr.MS() != srv.ID {
			panic(fmt.Sprintf("rdma: combined post spans servers ms%d and ms%d", srv.ID, op.Addr.MS()))
		}
	}
	t := c.Clk.Now()
	for _, op := range ops {
		t = c.CS.Outbound.Acquire(t, p.PayloadNS(len(op.Data), p.OutboundMinNS))
	}
	for _, op := range ops {
		t = srv.Inbound.Acquire(t, p.PayloadNS(len(op.Data), p.InboundMinNS))
		srv.NoteInbound(op.Addr, 1)
		srv.copyIn(op.Addr, op.Data)
		c.M.WriteBytes += int64(len(op.Data))
		c.M.OpWriteBytes += int64(len(op.Data))
		c.M.Writes++
	}
	c.Clk.AdvanceTo(t + p.RTTNS)
	c.roundTrip()
	if len(ops) > 1 {
		c.M.DoorbellBatches++
		c.M.DoorbellOps += int64(len(ops))
	}
	yield()
}

func (c *Client) atomicTiming(a Addr, backlogNS int64) int64 {
	c.checkVerb()
	p := c.F.P
	srv := c.F.Server(a)
	conflictSvc, unitSvc := p.HostAtomicNS, p.HostAtomicUnitNS
	if a.OnChip() {
		conflictSvc, unitSvc = p.OnChipAtomicNS, p.OnChipAtomicUnitNS
	}
	t := c.CS.Outbound.Acquire(c.Clk.Now(), p.OutboundMinNS)
	t = srv.Inbound.Acquire(t, p.InboundMinNS)
	srv.NoteInbound(a, 1)
	// Commands already sitting in the NIC's internal queue ahead of ours
	// (e.g. one in-flight CAS per concurrent lock spinner) serialize first
	// (§3.2.2).
	t += backlogNS
	// The NIC's single atomic pipeline bounds aggregate atomic throughput;
	// the per-address bucket serializes conflicting commands on top.
	t = srv.AtomicUnit.Acquire(t, unitSvc)
	t = srv.bucketFor(a).Acquire(t, conflictSvc)
	c.roundTrip()
	c.M.Atomics++
	return t + p.RTTNS
}

// AtomicSvcNS returns the total in-NIC service time of one atomic command
// targeting a — pipeline occupancy plus conflict serialization (§3.2.2,
// §4.3). Lock managers use it to size handoff backlogs.
func (c *Client) AtomicSvcNS(a Addr) int64 {
	if a.OnChip() {
		return c.F.P.OnChipAtomicNS + c.F.P.OnChipAtomicUnitNS
	}
	return c.F.P.HostAtomicNS + c.F.P.HostAtomicUnitNS
}

// CAS executes RDMA_CAS on the 8-byte word at a, returning the previous
// value and whether the swap happened. Host-memory targets pay the in-NIC
// PCIe-transaction cost serialized per atomic bucket (§3.2.2); on-chip
// targets do not (§4.3).
func (c *Client) CAS(a Addr, old, new uint64) (uint64, bool) {
	return c.CASBacklog(a, old, new, 0)
}

// CASBacklog is CAS whose command must first traverse backlogNS of service
// time already queued in the target NIC's atomic unit — the in-flight
// commands of concurrent spinners (§3.2.2). Lock managers use it to model
// handoff latency under heavy contention.
func (c *Client) CASBacklog(a Addr, old, new uint64, backlogNS int64) (uint64, bool) {
	fin := c.atomicTiming(a, backlogNS)
	var swapped bool
	prev := c.F.Server(a).atomic64(a, func(cur uint64) (uint64, bool) {
		swapped = cur == old
		return new, swapped
	})
	c.Clk.AdvanceTo(fin)
	if !swapped {
		c.M.CASFailures++
	}
	yield()
	return prev, swapped
}

// CAS16 executes a masked RDMA_CAS confined to the 16-bit field at a (which
// must be 2-aligned within its 8-byte word). Masked CAS is the "enhanced
// atomic" verb Sherman uses to pack 131,072 locks into 256 KB of on-chip
// memory (§4.3).
func (c *Client) CAS16(a Addr, old, new uint16) (uint16, bool) {
	return c.CAS16Backlog(a, old, new, 0)
}

// CAS16Backlog is CAS16 behind backlogNS of queued atomic service time; see
// CASBacklog.
func (c *Client) CAS16Backlog(a Addr, old, new uint16, backlogNS int64) (uint16, bool) {
	if a.Off()%2 != 0 {
		panic(fmt.Sprintf("rdma: unaligned CAS16 at %v", a))
	}
	word := Addr(uint64(a) &^ 7)
	shift := (a.Off() % 8) * 8
	mask := uint64(0xffff) << shift
	fin := c.atomicTiming(word, backlogNS)
	var swapped bool
	prev := c.F.Server(word).atomic64(word, func(cur uint64) (uint64, bool) {
		swapped = (cur&mask)>>shift == uint64(old)
		return cur&^mask | uint64(new)<<shift, swapped
	})
	c.Clk.AdvanceTo(fin)
	if !swapped {
		c.M.CASFailures++
	}
	yield()
	return uint16((prev & mask) >> shift), swapped
}

// FAA executes RDMA_FAA on the 8-byte word at a and returns the previous
// value.
func (c *Client) FAA(a Addr, delta uint64) uint64 {
	fin := c.atomicTiming(a, 0)
	prev := c.F.Server(a).atomic64(a, func(cur uint64) (uint64, bool) {
		return cur + delta, true
	})
	c.Clk.AdvanceTo(fin)
	yield()
	return prev
}

// ChargeAtomic accounts the cost of one atomic command — NIC pipelines,
// atomic-bucket serialization, a round trip, a failure count — without
// executing a memory operation. Lock implementations use it to bill spin
// retries that are implied by virtual time rather than observed in real
// time (see hocl).
func (c *Client) ChargeAtomic(a Addr) {
	fin := c.atomicTiming(a, 0)
	c.Clk.AdvanceTo(fin)
	c.M.CASFailures++
	yield()
}

// maxSpinCharges bounds the work of one ChargeSpin call in real time; waits
// long enough to hit it are already far into the collapse regime, where
// undercounting the tail of the storm changes nothing observable.
const maxSpinCharges = 1 << 14

// ChargeSpin models a failed-CAS polling loop across the virtual window
// [from, to): the spinner keeps exactly one CAS in flight at all times,
// re-posting as each completion arrives, so retries land at the given
// cadence — the storm-inflated completion time of one retry (round trip
// plus the NIC's atomic queue, which the lock manager estimates from the
// convoy depth). Every retry consumes sender and receiver IOPS and a round
// trip; this is the §3.2.2 retry traffic that squanders NIC resources. The
// caller's clock lands on `to`. Returns the number of retries charged.
//
// The retries' occupancy of the target's atomic unit is deliberately not
// booked here: a closed loop of spinners keeps the atomic queue at
// convoy-depth x service-time, and the lock manager bills exactly that
// bound to the winning CAS (CASBacklog). Booking open-loop charges as well
// would double-count the storm and grow the queue without bound.
func (c *Client) ChargeSpin(a Addr, from, to, cadence int64) int {
	c.checkVerb()
	p := c.F.P
	srv := c.F.Server(a)
	if cadence <= 0 {
		cadence = p.RTTNS
	}
	n := 0
	for t := from; t+cadence < to && n < maxSpinCharges; t += cadence {
		c.CS.Outbound.Acquire(t, p.OutboundMinNS)
		srv.Inbound.Acquire(t, p.InboundMinNS)
		n++
	}
	srv.NoteInbound(a, int64(n))
	c.M.Atomics += int64(n)
	c.M.CASFailures += int64(n)
	c.M.RoundTrips += int64(n)
	c.M.OpRoundTrips += int64(n)
	c.Clk.AdvanceTo(to)
	if n > 0 {
		yield()
	}
	return n
}

// Call performs a two-sided RPC to memory server ms's memory thread: request
// and response messages plus the handler's service time on the wimpy CPU.
// fn runs the real server-side logic (e.g. chunk allocation) exactly once.
func (c *Client) Call(ms uint16, fn func()) {
	c.checkVerb()
	p := c.F.P
	srv := c.F.Servers()[ms]
	t := c.CS.Outbound.Acquire(c.Clk.Now(), p.OutboundMinNS)
	t = srv.Inbound.Acquire(t, p.InboundMinNS)
	srv.NoteRPC()
	t = srv.CPU.Acquire(t, p.MemThreadRPCNS)
	fn()
	c.Clk.AdvanceTo(t + p.RTTNS)
	c.roundTrip()
	c.M.RPCs++
	yield()
}
