package bench

import (
	"sherman/internal/core"
	"sherman/internal/workload"
)

// YCSBSuite runs the six standard YCSB core workloads against both engines
// — the benchmark a library user would reach for first. Not a paper figure
// (the paper uses its own mixes, Table 3), but built from the same
// harness.
func YCSBSuite(s Scale) *Table {
	t := NewTable("YCSB core workloads (zipfian 0.99)",
		"workload", "FG+(Mops)", "Sherman(Mops)", "Sherman p99(us)")
	for _, w := range workload.AllYCSB() {
		var mops [2]float64
		var p99 int64
		for i, cfg := range []core.Config{core.FGPlusConfig(), core.ShermanConfig()} {
			wcfg := workload.YCSBConfig(w, s.Keys)
			e := s.treeExp(w.String(), wcfg.Mix, workload.Zipfian, cfg)
			e.Workload = &wcfg
			r := RunTreeN(e, s.runs())
			mops[i] = r.Mops
			p99 = r.P99
		}
		t.Add(w.String(), MopsString(mops[0]), MopsString(mops[1]), USString(p99))
	}
	t.Note("A=50/50 update, B=95/5, C=read-only, D=read-latest, E=short scans, F=read-modify-write")
	return t
}
