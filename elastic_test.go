package sherman

import (
	"errors"
	"sync"
	"testing"

	"sherman/internal/testutil"
)

// elasticTree builds a 1-MS cluster with a bulkloaded tree — the most
// skewed possible placement, everything behind one NIC. The tree rides the
// shared harness's Validate-on-exit via testTree.
func elasticTree(t *testing.T, nodeSize int) (*Cluster, *Tree) {
	t.Helper()
	c, err := NewCluster(ClusterConfig{MemoryServers: 1, ComputeServers: 2, MaxMemoryServers: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr := testTree(t, c, TreeOptions{NodeSize: nodeSize})
	kvs := make([]KV, 2000)
	for i := range kvs {
		kvs[i] = KV{Key: uint64(i + 1), Value: uint64(i)*3 + 7}
	}
	if err := tr.Bulkload(kvs); err != nil {
		t.Fatal(err)
	}
	return c, tr
}

func TestAddMemoryServerAndRebalance(t *testing.T) {
	c, tr := elasticTree(t, 256)
	s := tr.Session(0)

	// Generate load so the picker has a signal.
	for k := uint64(1); k <= 2000; k += 3 {
		s.Get(k)
	}
	ms, err := c.AddMemoryServer()
	if err != nil {
		t.Fatal(err)
	}
	if ms != 1 || c.MemoryServers() != 2 {
		t.Fatalf("AddMemoryServer = %d, MemoryServers = %d; want 1, 2", ms, c.MemoryServers())
	}

	st, err := tr.Rebalance(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunksMoved == 0 || st.NodesMoved == 0 {
		t.Fatalf("rebalance moved nothing: %+v", st)
	}
	if st.Repoints == 0 {
		t.Fatalf("rebalance repointed nothing: %+v", st)
	}
	if st.VirtualNS <= 0 {
		t.Fatalf("rebalance took %d virtual ns", st.VirtualNS)
	}

	// The tree must be fully intact through both sessions (old and fresh).
	for k := uint64(1); k <= 2000; k++ {
		if v, ok := s.Get(k); !ok || v != (k-1)*3+7 {
			t.Fatalf("post-rebalance Get(%d) = (%d,%v)", k, v, ok)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate after rebalance: %v", err)
	}

	// New writes spread across both servers now.
	loads0 := c.MemoryServerLoads()
	if len(loads0) != 2 {
		t.Fatalf("loads = %+v", loads0)
	}
	s2 := tr.Session(1)
	for k := uint64(5000); k < 7000; k++ {
		s2.Put(k, k)
	}
	loads := c.MemoryServerLoads()
	if loads[1].InboundOps-loads0[1].InboundOps == 0 {
		t.Fatal("new server took no traffic after rebalance")
	}
}

func TestDrainMemoryServer(t *testing.T) {
	c, err := NewCluster(ClusterConfig{MemoryServers: 2, ComputeServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := testTree(t, c, TreeOptions{NodeSize: 256})
	kvs := make([]KV, 1500)
	for i := range kvs {
		kvs[i] = KV{Key: uint64(i + 1), Value: uint64(i + 1)}
	}
	if err := tr.Bulkload(kvs); err != nil {
		t.Fatal(err)
	}
	s := tr.Session(0)
	s.Get(1)

	st, err := c.DrainMemoryServer(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.NodesMoved == 0 {
		t.Fatalf("drain moved nothing: %+v", st)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate after drain: %v", err)
	}
	for k := uint64(1); k <= 1500; k++ {
		if v, ok := s.Get(k); !ok || v != k {
			t.Fatalf("post-drain Get(%d) = (%d,%v)", k, v, ok)
		}
	}
	// Writes after the drain must not land on the drained server.
	before := c.MemoryServerLoads()[1].InboundOps
	for k := uint64(10_000); k < 12_000; k++ {
		s.Put(k, k)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	loads := c.MemoryServerLoads()
	if !loads[1].Draining {
		t.Fatal("drained server not marked draining")
	}
	// Chasing tolerance: stale sibling pointers may still touch ms1, but
	// the write path must not allocate there — growth should be minimal
	// compared to the 2000 puts.
	if grew := loads[1].InboundOps - before; grew > 500 {
		t.Fatalf("drained server still serving heavy traffic: %d inbound ops", grew)
	}

	// Draining the last live server must fail.
	if _, err := c.DrainMemoryServer(0, 0); err == nil {
		t.Fatal("draining the last memory server succeeded")
	}
}

// TestRebalanceDuringConcurrentSessions migrates while writers and readers
// churn — the live half of "usable while sessions run" — with the op mix
// drawn from the harness's seeded streams.
func TestRebalanceDuringConcurrentSessions(t *testing.T) {
	testutil.RunSeeds(t, 2, func(t *testing.T, seed uint64) {
		c, tr := elasticTree(t, 256)

		const workers = 4
		refs := make([]map[uint64]uint64, workers)
		var wg sync.WaitGroup
		startMigr := make(chan struct{})
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s, err := tr.SessionAt(w%c.ComputeServers(), PipelineDepth(1+w%4))
				if err != nil {
					t.Error(err)
					return
				}
				rng := testutil.RNG(seed<<8 | uint64(w))
				ref := make(map[uint64]uint64)
				base := uint64(w)*100_000 + 10_000
				for i := uint64(0); i < 600; i++ {
					if w == 0 && i == 100 {
						close(startMigr)
					}
					k := base + rng.Uint64N(300)
					switch rng.Uint64N(7) {
					case 0:
						s.Submit(DeleteOp(k))
						delete(ref, k)
					case 1:
						r := s.Submit(GetOp(k)).Wait()
						want, ok := ref[k]
						if r.Found != ok || (ok && r.Value != want) {
							t.Errorf("worker %d: Get(%d) = (%d,%v), want (%d,%v)", w, k, r.Value, r.Found, want, ok)
							return
						}
					default:
						v := rng.Uint64() | 1
						s.Submit(PutOp(k, v))
						ref[k] = v
					}
				}
				if err := s.Flush(); err != nil {
					t.Error(err)
				}
				refs[w] = ref
			}(w)
		}

		<-startMigr
		if _, err := c.AddMemoryServer(); err != nil {
			t.Error(err)
		}
		if _, err := tr.Rebalance(1); err != nil {
			t.Error(err)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}

		s := tr.Session(0)
		for w, ref := range refs {
			for k, v := range ref {
				if got, ok := s.Get(k); !ok || got != v {
					t.Fatalf("worker %d key %d = (%d,%v), want (%d,true)", w, k, got, ok, v)
				}
			}
		}
		// Bulkloaded keys survived too.
		for k := uint64(1); k <= 2000; k += 37 {
			if v, ok := s.Get(k); !ok || v != (k-1)*3+7 {
				t.Fatalf("bulk key %d = (%d,%v)", k, v, ok)
			}
		}
	})
}

func TestElasticValidation(t *testing.T) {
	c, tr := elasticTree(t, 256)
	if _, err := tr.Rebalance(-1); !errors.Is(err, ErrBadComputeServer) {
		t.Fatalf("Rebalance(-1): %v", err)
	}
	if _, err := c.DrainMemoryServer(9, 0); err == nil {
		t.Fatal("DrainMemoryServer(9) succeeded")
	}
	// Capacity cap: 4 total were declared.
	for i := 0; i < 3; i++ {
		if _, err := c.AddMemoryServer(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AddMemoryServer(); err == nil {
		t.Fatal("AddMemoryServer beyond MaxMemoryServers succeeded")
	}
	if _, err := NewCluster(ClusterConfig{MemoryServers: 2, ComputeServers: 1, MaxMemoryServers: 1}); err == nil {
		t.Fatal("MaxMemoryServers < MemoryServers accepted")
	}
}
