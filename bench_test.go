package sherman

// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark runs the corresponding experiment driver once per
// b.N at a CI-friendly scale and reports the headline virtual-time metrics
// (Mops, p50/p99 microseconds) via b.ReportMetric, so `go test -bench`
// output can be compared directly against the paper's numbers. Full-scale
// runs (176 threads, 2M keys) go through cmd/shermanbench; EXPERIMENTS.md
// records a captured full-scale run against the paper.

import (
	"fmt"
	"testing"

	"sherman/internal/bench"
	"sherman/internal/core"
	"sherman/internal/hocl"
	"sherman/internal/layout"
	"sherman/internal/workload"
)

func benchScale() bench.Scale { return bench.QuickScale() }

func reportTree(b *testing.B, r bench.TreeResult) {
	b.ReportMetric(r.Mops, "Mops")
	b.ReportMetric(float64(r.P50)/1000, "p50us")
	b.ReportMetric(float64(r.P99)/1000, "p99us")
}

// BenchmarkTable1 reproduces Table 1: the one-sided baseline (FG+) under
// read- and write-intensive workloads, uniform and skewed. The paper's
// headline: the write-intensive skewed cell collapses.
func BenchmarkTable1(b *testing.B) {
	s := benchScale()
	cells := []struct {
		name string
		mix  workload.Mix
		dist workload.Dist
	}{
		{"read-intensive/uniform", workload.ReadIntensive, workload.Uniform},
		{"read-intensive/skew", workload.ReadIntensive, workload.Zipfian},
		{"write-intensive/uniform", workload.WriteIntensive, workload.Uniform},
		{"write-intensive/skew", workload.WriteIntensive, workload.Zipfian},
	}
	for _, c := range cells {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := bench.RunTreeScaled(s, "FG+", c.mix, c.dist, core.FGPlusConfig())
				reportTree(b, r)
			}
		})
	}
}

// BenchmarkFig2 reproduces Figure 2: FG-style RDMA exclusive locks vs
// contention degree; throughput collapses and tail latency explodes as
// skew rises.
func BenchmarkFig2(b *testing.B) {
	s := benchScale()
	for _, theta := range []float64{0, 0.8, 0.9, 0.95, 0.99} {
		name := fmt.Sprintf("theta=%.2f", theta)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := bench.RunLocks(bench.LockExp{
					Name: name, Theta: theta, NumCS: 7,
					Mode: hocl.Baseline(), MeasureNS: s.MeasureNS,
				})
				b.ReportMetric(r.Mops, "Mops")
				b.ReportMetric(float64(r.P99)/1000, "p99us")
			}
		})
	}
}

// BenchmarkFig3 reproduces Figure 3: raw RDMA_WRITE throughput vs IO size,
// inbound (8 CSs -> 1 MS) and outbound (1 CS -> 8 MSs).
func BenchmarkFig3(b *testing.B) {
	s := benchScale()
	for _, size := range []int{16, 64, 256, 1024, 4096} {
		for _, dir := range []struct {
			name    string
			inbound bool
		}{{"inbound", true}, {"outbound", false}} {
			b.Run(fmt.Sprintf("%s/%dB", dir.name, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := bench.RunWrites(bench.WriteExp{
						IOSize: size, Inbound: dir.inbound, Ops: s.WriteOps,
					})
					b.ReportMetric(r.Mops, "Mops")
				}
			})
		}
	}
}

// BenchmarkFig10 reproduces Figure 10: the cumulative ablation under skewed
// (theta=0.99) workloads — FG+, +Combine, +On-Chip, +Hierarchical,
// +2-Level Ver — for the write-intensive mix (panels a and c are separate
// benchmarks below to keep runtimes sane).
func BenchmarkFig10(b *testing.B) {
	s := benchScale()
	for _, step := range core.AblationSteps() {
		b.Run(step.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := bench.RunTreeScaled(s, step.String(), workload.WriteIntensive,
					workload.Zipfian, core.AblationConfig(step))
				reportTree(b, r)
			}
		})
	}
}

// BenchmarkFig10WriteOnly is Figure 10(a): the same ablation, write-only.
func BenchmarkFig10WriteOnly(b *testing.B) {
	s := benchScale()
	for _, step := range []core.AblationStep{core.StepFGPlus, core.StepTwoLevelVer} {
		b.Run(step.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := bench.RunTreeScaled(s, step.String(), workload.WriteOnly,
					workload.Zipfian, core.AblationConfig(step))
				reportTree(b, r)
			}
		})
	}
}

// BenchmarkFig11 reproduces Figure 11: the ablation under uniform
// workloads, where the gap is small (the techniques target contention).
func BenchmarkFig11(b *testing.B) {
	s := benchScale()
	for _, step := range []core.AblationStep{core.StepFGPlus, core.StepTwoLevelVer} {
		b.Run(step.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := bench.RunTreeScaled(s, step.String(), workload.WriteIntensive,
					workload.Uniform, core.AblationConfig(step))
				reportTree(b, r)
			}
		})
	}
}

// BenchmarkFig12 reproduces Figure 12: range query throughput, range-only
// and range-write, FG+ vs Sherman at spans 100 and 1000.
func BenchmarkFig12(b *testing.B) {
	s := benchScale()
	for _, w := range []struct {
		name string
		mix  workload.Mix
	}{{"range-only", workload.RangeOnly}, {"range-write", workload.RangeWrite}} {
		for _, span := range []int{100, 1000} {
			for _, cfg := range []core.Config{core.FGPlusConfig(), core.ShermanConfig()} {
				b.Run(fmt.Sprintf("%s/span=%d/%s", w.name, span, cfg.Name()), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						e := bench.TreeExpScaled(s, w.name, w.mix, workload.Zipfian, cfg)
						e.RangeSpan = span
						r := bench.RunTree(e)
						reportTree(b, r)
					}
				})
			}
		}
	}
}

// BenchmarkFig13 reproduces Figure 13: write-intensive throughput as client
// threads scale, at three contention levels.
func BenchmarkFig13(b *testing.B) {
	s := benchScale()
	for _, d := range []struct {
		name  string
		dist  workload.Dist
		theta float64
	}{{"uniform", workload.Uniform, 0.99}, {"skew=0.99", workload.Zipfian, 0.99}} {
		for _, tpc := range []int{2, 8, 22} {
			for _, cfg := range []core.Config{core.FGPlusConfig(), core.ShermanConfig()} {
				b.Run(fmt.Sprintf("%s/threads=%d/%s", d.name, tpc*8, cfg.Name()), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						e := bench.TreeExpScaled(s, "scal", workload.WriteIntensive, d.dist, cfg)
						e.ThreadsPerCS = tpc
						e.Theta = d.theta
						r := bench.RunTree(e)
						reportTree(b, r)
					}
				})
			}
		}
	}
}

// BenchmarkFig14 reproduces Figure 14: internal metrics under
// write-intensive skewed load — per-write round trips and write sizes.
func BenchmarkFig14(b *testing.B) {
	s := benchScale()
	for _, cfg := range []core.Config{core.FGPlusConfig(), core.ShermanConfig()} {
		b.Run(cfg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := bench.RunTreeScaled(s, cfg.Name(), workload.WriteIntensive,
					workload.Zipfian, cfg)
				b.ReportMetric(float64(r.Rec.WriteRoundTrips.PercentileValue(50)), "rt-p50")
				b.ReportMetric(float64(r.Rec.WriteRoundTrips.PercentileValue(99)), "rt-p99")
				b.ReportMetric(r.Mops, "Mops")
			}
		})
	}
}

// BenchmarkFig15KeySize reproduces Figures 15(a)/(b): throughput vs key
// size with 32-entry nodes.
func BenchmarkFig15KeySize(b *testing.B) {
	s := benchScale()
	for _, ks := range []int{16, 128, 1024} {
		for _, base := range []core.Config{core.FGPlusConfig(), core.ShermanConfig()} {
			cfg := base
			cfg.Format = layout.NewFormatFixedCap(cfg.Format.Mode, ks, 32)
			b.Run(fmt.Sprintf("key=%dB/%s", ks, base.Name()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					e := bench.TreeExpScaled(s, "keysize", workload.WriteIntensive, workload.Uniform, cfg)
					e.Keys = s.Keys / 4
					r := bench.RunTree(e)
					reportTree(b, r)
				}
			})
		}
	}
}

// BenchmarkFig15Cache reproduces Figure 15(c): throughput and hit ratio vs
// index-cache size.
func BenchmarkFig15Cache(b *testing.B) {
	s := benchScale()
	cfg := core.ShermanConfig()
	for _, pct := range []int{10, 50, 100} {
		b.Run(fmt.Sprintf("cache=%d%%", pct), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := cfg
				c.CacheBytes = bench.Level1WorkingSetBytes(s.Keys, cfg) * int64(pct) / 100
				if c.CacheBytes < int64(cfg.Format.NodeSize) {
					c.CacheBytes = int64(cfg.Format.NodeSize)
				}
				e := bench.TreeExpScaled(s, "cache", workload.WriteIntensive, workload.Uniform, c)
				r := bench.RunTree(e)
				b.ReportMetric(r.Mops, "Mops")
				b.ReportMetric(r.HitRatio*100, "hit%")
			}
		})
	}
}

// BenchmarkFig16 reproduces Figure 16: the HOCL-internal ablation on the
// raw lock workload.
func BenchmarkFig16(b *testing.B) {
	s := benchScale()
	steps := []struct {
		name string
		mode hocl.Mode
	}{
		{"Baseline", hocl.Baseline()},
		{"On-Chip", hocl.Mode{OnChip: true}},
		{"Hierarchical", hocl.Mode{OnChip: true, Local: true}},
		{"WaitQueue", hocl.Mode{OnChip: true, Local: true, WaitQueue: true}},
		{"Handover", hocl.Sherman()},
	}
	for _, st := range steps {
		b.Run(st.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := bench.RunLocks(bench.LockExp{
					Name: st.name, Theta: 0.99, Mode: st.mode, MeasureNS: s.MeasureNS,
				})
				b.ReportMetric(r.Mops, "Mops")
				b.ReportMetric(float64(r.P99)/1000, "p99us")
			}
		})
	}
}

// BenchmarkPublicAPIPut measures the public API overhead on a plain
// single-session insert stream (not a paper figure; a conventional Go
// microbenchmark for library users).
func BenchmarkPublicAPIPut(b *testing.B) {
	c, err := NewCluster(ClusterConfig{MemoryServers: 2, ComputeServers: 1})
	if err != nil {
		b.Fatal(err)
	}
	tree, err := c.CreateTree(DefaultTreeOptions())
	if err != nil {
		b.Fatal(err)
	}
	s := tree.Session(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(uint64(i)+1, uint64(i))
	}
}

// BenchmarkPublicAPIGet measures lookups against a preloaded tree.
func BenchmarkPublicAPIGet(b *testing.B) {
	c, err := NewCluster(ClusterConfig{MemoryServers: 2, ComputeServers: 1})
	if err != nil {
		b.Fatal(err)
	}
	tree, err := c.CreateTree(DefaultTreeOptions())
	if err != nil {
		b.Fatal(err)
	}
	kvs := make([]KV, 100_000)
	for i := range kvs {
		kvs[i] = KV{Key: uint64(i + 1), Value: uint64(i)}
	}
	if err := tree.Bulkload(kvs); err != nil {
		b.Fatal(err)
	}
	s := tree.Session(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(uint64(i%100_000) + 1)
	}
}
