// Maintenance: inspect a tree's structure and reclaim delete-driven
// fragmentation with offline compaction.
//
// Sherman, like the paper's released code, never merges leaves on the hot
// path — deletes clear entries in place (§4.4), so a delete-heavy tenant
// slowly dilutes leaf occupancy. Tree.Stats surfaces that; Tree.Compact
// rebuilds the tree at the bulkload fill factor, freeing old nodes through
// the §4.2.4 free bit.
package main

import (
	"fmt"
	"log"

	"sherman"
)

func main() {
	cluster, err := sherman.NewCluster(sherman.ClusterConfig{
		MemoryServers:  2,
		ComputeServers: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := cluster.CreateTree(sherman.DefaultTreeOptions())
	if err != nil {
		log.Fatal(err)
	}

	// A session-lifecycle-style workload: bulk ingest, then expire 90%.
	const n = 200_000
	kvs := make([]sherman.KV, n)
	for i := range kvs {
		kvs[i] = sherman.KV{Key: uint64(i + 1), Value: uint64(i)}
	}
	if err := tree.Bulkload(kvs); err != nil {
		log.Fatal(err)
	}
	s := tree.Session(0)
	for k := uint64(1); k <= n; k++ {
		if k%10 != 0 {
			s.Delete(k)
		}
	}

	report := func(when string) sherman.TreeStats {
		st := tree.Stats()
		fmt.Printf("%-16s height=%d nodes=%d entries=%d meanFill=%4.1f%% minFill=%4.1f%% footprint=%5.1f MB\n",
			when, st.Height, st.InternalNodes+st.LeafNodes, st.Entries,
			st.LeafFill*100, st.MinLeafFill*100, float64(st.BytesUsed)/(1<<20))
		return st
	}

	before := report("fragmented:")
	res := tree.Compact()
	after := report("compacted:")

	fmt.Printf("\ncompact kept %d entries, %d -> %d nodes, reclaimed %.1f MB\n",
		res.EntriesKept, res.NodesBefore, res.NodesAfter,
		float64(res.BytesReclaimed)/(1<<20))

	if err := tree.Validate(); err != nil {
		log.Fatalf("invariants violated after compaction: %v", err)
	}
	// Fresh sessions read through the rebuilt tree.
	s2 := tree.Session(1)
	if v, ok := s2.Get(10); !ok || v != 9 {
		log.Fatalf("survivor lookup failed: (%d,%v)", v, ok)
	}
	fmt.Printf("fill recovered from %.1f%% to %.1f%%; survivors intact\n",
		before.LeafFill*100, after.LeafFill*100)
}
