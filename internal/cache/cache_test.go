package cache

import (
	"fmt"
	"sync"
	"testing"

	"sherman/internal/layout"
	"sherman/internal/rdma"
)

var testFormat = layout.DefaultFormat(layout.TwoLevel)

// mkNode builds a level-1 internal node copy covering [lower, upper).
func mkNode(lower, upper uint64) layout.Internal {
	n := layout.NewInternal(testFormat, 1, lower, upper)
	n.SetLeftmost(rdma.MakeAddr(0, lower+64))
	return n
}

func addr(i uint64) rdma.Addr { return rdma.MakeAddr(0, 0x10000+i*1024) }

func TestLookupHitAndMiss(t *testing.T) {
	c := New(1<<20, testFormat.NodeSize)
	c.Insert(addr(1), mkNode(100, 200))
	c.Insert(addr(2), mkNode(200, 300))

	for _, tc := range []struct {
		key  uint64
		want rdma.Addr
		hit  bool
	}{
		{100, addr(1), true},
		{150, addr(1), true},
		{199, addr(1), true},
		{200, addr(2), true},
		{299, addr(2), true},
		{99, 0, false},  // below every cached range
		{300, 0, false}, // above every cached range
	} {
		e := c.Lookup(tc.key)
		if tc.hit {
			if e == nil {
				t.Errorf("Lookup(%d) = miss, want hit on %v", tc.key, tc.want)
				continue
			}
			if e.Addr != tc.want {
				t.Errorf("Lookup(%d) = %v, want %v", tc.key, e.Addr, tc.want)
			}
		} else if e != nil {
			t.Errorf("Lookup(%d) = hit on %v, want miss", tc.key, e.Addr)
		}
	}
	if c.Hits() == 0 || c.Misses() == 0 {
		t.Errorf("counters: hits=%d misses=%d, both should be nonzero", c.Hits(), c.Misses())
	}
}

// TestLookupGapMiss: a key between two cached nodes' ranges (not covered by
// the floor node's fences) must miss rather than steer wrongly.
func TestLookupGapMiss(t *testing.T) {
	c := New(1<<20, testFormat.NodeSize)
	c.Insert(addr(1), mkNode(100, 200))
	c.Insert(addr(3), mkNode(500, 600))
	if e := c.Lookup(350); e != nil {
		t.Errorf("Lookup(350) in coverage gap = hit on %v, want miss", e.Addr)
	}
}

func TestInsertReplacesSameFence(t *testing.T) {
	c := New(1<<20, testFormat.NodeSize)
	c.Insert(addr(1), mkNode(100, 200))
	// A split shrank the node: replace the copy at the same lower fence.
	c.Insert(addr(1), mkNode(100, 150))
	e := c.Lookup(160)
	if e != nil {
		t.Errorf("Lookup(160) after shrink = hit on %v, want miss", e.Addr)
	}
	if got := c.Len(); got != 1 {
		t.Errorf("Len = %d, want 1 (replaced, not duplicated)", got)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(1<<20, testFormat.NodeSize)
	c.Insert(addr(1), mkNode(100, 200))
	e := c.Lookup(150)
	if e == nil {
		t.Fatal("expected hit")
	}
	c.Invalidate(e)
	if got := c.Lookup(150); got != nil {
		t.Errorf("Lookup after Invalidate = hit on %v, want miss", got.Addr)
	}
	c.Invalidate(e)   // double-invalidate is a no-op
	c.Invalidate(nil) // nil is a no-op
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

// TestEvictionBound: the cache never exceeds its entry limit, and evicts the
// least-recently-used of sampled pairs.
func TestEvictionBound(t *testing.T) {
	nodeSize := testFormat.NodeSize
	limit := 8
	c := New(int64(limit*nodeSize), nodeSize)
	for i := uint64(0); i < 64; i++ {
		c.Insert(addr(i), mkNode(i*100, (i+1)*100))
		if c.Len() > limit {
			t.Fatalf("cache grew to %d entries, limit %d", c.Len(), limit)
		}
	}
	if c.Evictions() == 0 {
		t.Error("expected evictions")
	}
}

// TestEvictionPrefersCold: power-of-two-choices evicts the older of two
// sampled entries, so recently used entries must survive eviction pressure
// statistically more often than stale ones. (Retention is probabilistic,
// not absolute — the comparison is the paper's design, §4.2.3 [48].)
func TestEvictionPrefersCold(t *testing.T) {
	nodeSize := testFormat.NodeSize
	const limit = 32
	c := New(int64(limit*nodeSize), nodeSize)
	// Fill the cache: entries 0..15 go stale, 16..31 stay hot.
	for i := uint64(0); i < limit; i++ {
		c.Insert(addr(i), mkNode(i*100, (i+1)*100))
	}
	for round := 0; round < 10; round++ {
		for i := uint64(16); i < limit; i++ {
			c.Lookup(i*100 + 50)
		}
	}
	// Apply eviction pressure: 16 fresh inserts displace 16 entries.
	for i := uint64(limit); i < limit+16; i++ {
		c.Insert(addr(i), mkNode(i*100, (i+1)*100))
	}
	staleLeft, hotLeft := 0, 0
	for i := uint64(0); i < 16; i++ {
		if e := c.Lookup(i*100 + 50); e != nil && e.Addr == addr(i) {
			staleLeft++
		}
	}
	for i := uint64(16); i < limit; i++ {
		if e := c.Lookup(i*100 + 50); e != nil && e.Addr == addr(i) {
			hotLeft++
		}
	}
	if hotLeft <= staleLeft {
		t.Errorf("hot survivors %d <= stale survivors %d; eviction ignores recency", hotLeft, staleLeft)
	}
}

// TestConcurrentMixed hammers the cache from many goroutines; correctness
// here is "no crashes, no wrong-range results, bounded size".
func TestConcurrentMixed(t *testing.T) {
	nodeSize := testFormat.NodeSize
	c := New(int64(64*nodeSize), nodeSize)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := uint64((w*131 + i*17) % 6400)
				switch i % 3 {
				case 0:
					lo := k / 100 * 100
					c.Insert(addr(lo/100), mkNode(lo, lo+100))
				case 1:
					if e := c.Lookup(k); e != nil && !e.N.Covers(k) {
						t.Errorf("Lookup(%d) returned node [%d,%d)", k, e.N.LowerFence(), e.N.UpperFence())
						return
					}
				case 2:
					if e := c.Lookup(k); e != nil {
						c.Invalidate(e)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > c.Limit() {
		t.Errorf("size %d exceeds limit %d", c.Len(), c.Limit())
	}
}

func TestTopCache(t *testing.T) {
	tc := NewTop()
	if r, _ := tc.Root(); !r.IsNil() {
		t.Fatal("fresh top cache has a root")
	}
	root := addr(100)
	tc.SetRoot(root, 3)
	if r, lvl := tc.Root(); r != root || lvl != 3 {
		t.Fatalf("Root = (%v,%d), want (%v,3)", r, lvl, root)
	}

	// Nodes at the top two levels are cached; lower levels are not.
	top := layout.NewInternal(testFormat, 3, 0, layout.NoUpperBound)
	second := layout.NewInternal(testFormat, 2, 0, 500)
	low := layout.NewInternal(testFormat, 1, 0, 100)
	tc.Put(addr(100), top)
	tc.Put(addr(101), second)
	tc.Put(addr(102), low)
	if _, ok := tc.Get(addr(100)); !ok {
		t.Error("root-level node not cached")
	}
	if _, ok := tc.Get(addr(101)); !ok {
		t.Error("level root-1 node not cached")
	}
	if _, ok := tc.Get(addr(102)); ok {
		t.Error("level-1 node cached in the top cache")
	}

	tc.Drop(addr(101))
	if _, ok := tc.Get(addr(101)); ok {
		t.Error("Drop did not remove the node")
	}

	// A root change flushes stale top nodes.
	tc.SetRoot(addr(200), 4)
	if _, ok := tc.Get(addr(100)); ok {
		t.Error("old top node survived a root change")
	}
}

func TestCacheStatsCounters(t *testing.T) {
	c := New(1<<20, testFormat.NodeSize)
	c.Insert(addr(1), mkNode(0, 100))
	c.Lookup(50)
	c.Lookup(5000)
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestTinyCache(t *testing.T) {
	// A cache smaller than one node still holds one entry (limit clamps).
	c := New(1, testFormat.NodeSize)
	if c.Limit() != 1 {
		t.Fatalf("limit = %d, want 1", c.Limit())
	}
	c.Insert(addr(1), mkNode(0, 100))
	c.Insert(addr(2), mkNode(100, 200))
	if c.Len() > 1 {
		t.Errorf("tiny cache holds %d entries", c.Len())
	}
}

func ExampleIndexCache() {
	c := New(1<<20, testFormat.NodeSize)
	c.Insert(rdma.MakeAddr(0, 0x8000), mkNode(1000, 2000))
	if e := c.Lookup(1500); e != nil {
		fmt.Println("hit:", e.N.LowerFence(), e.N.UpperFence())
	}
	// Output: hit: 1000 2000
}

func TestTopCacheFlushKeepsRoot(t *testing.T) {
	tc := NewTop()
	root := addr(7)
	tc.SetRoot(root, 2)
	top := layout.NewInternal(testFormat, 2, 0, layout.NoUpperBound)
	tc.Put(addr(7), top)
	tc.Flush()
	if _, ok := tc.Get(addr(7)); ok {
		t.Error("Flush kept a node copy")
	}
	if r, lvl := tc.Root(); r != root || lvl != 2 {
		t.Errorf("Flush dropped the root: (%v,%d)", r, lvl)
	}
}
