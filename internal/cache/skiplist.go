// Package cache implements the compute-server-side index cache (§4.2.3):
// copies of level-1 internal nodes (the parents of leaves) kept in a
// concurrent skiplist with lock-free search, evicted by power-of-two-choices
// on least-recent use, plus the always-cached top two tree levels.
//
// The cache needs no coherence protocol: internal nodes only carry location
// information, and every fetched node is validated against its fence keys
// and level — a stale cache entry steers the client to a node whose fences
// reject the key, which invalidates the entry and retraverses (§4.2.3).
package cache

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
)

const maxHeight = 16

// slNode is one skiplist tower. Readers traverse next pointers with atomic
// loads only; inserts and unlinks serialize on the list mutex (misses and
// evictions are rare compared to hits, which is the case the structure is
// optimized for).
type slNode struct {
	key   uint64
	entry atomic.Pointer[Entry]
	next  []atomic.Pointer[slNode]
}

// skiplist maps lower-fence keys to cache entries, supporting a
// predecessor-or-equal query without locks.
type skiplist struct {
	head *slNode
	mu   sync.Mutex
	rnd  rand.Source // guarded by mu
	size atomic.Int64
}

func newSkiplist() *skiplist {
	head := &slNode{next: make([]atomic.Pointer[slNode], maxHeight)}
	return &skiplist{head: head, rnd: rand.NewPCG(0xcafe, 0xf00d)}
}

// seek returns the last node with key <= target (key < target when strict;
// the result may be the head) and, when preds is non-nil, fills the
// predecessor at every level for insertion/unlinking.
func (s *skiplist) seek(target uint64, strict bool, preds []*slNode) *slNode {
	x := s.head
	for lvl := maxHeight - 1; lvl >= 0; lvl-- {
		for {
			nxt := x.next[lvl].Load()
			if nxt == nil || nxt.key > target || (strict && nxt.key == target) {
				break
			}
			x = nxt
		}
		if preds != nil {
			preds[lvl] = x
		}
	}
	return x
}

// floor returns the live entry with the greatest key <= target, skipping
// entries that were marked dead but not yet unlinked.
func (s *skiplist) floor(target uint64) *Entry {
	x := s.seek(target, false, nil)
	for x != s.head {
		if e := x.entry.Load(); e != nil && !e.dead.Load() {
			return e
		}
		// Dead node: step strictly back with a fresh seek below its key.
		x = s.seek(x.key, true, nil)
	}
	return nil
}

// insert adds or replaces the entry at e.key (the node's lower fence).
// It returns the entry that was displaced, if any.
func (s *skiplist) insert(e *Entry) *Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	preds := make([]*slNode, maxHeight)
	x := s.seek(e.key, false, preds)
	if x != s.head && x.key == e.key {
		old := x.entry.Swap(e)
		e.node = x
		if old != nil && !old.dead.Swap(true) {
			return old
		}
		return nil
	}
	h := 1
	r := s.rnd.Uint64()
	for h < maxHeight && r&1 == 1 {
		h++
		r >>= 1
	}
	n := &slNode{key: e.key, next: make([]atomic.Pointer[slNode], h)}
	n.entry.Store(e)
	e.node = n
	for lvl := 0; lvl < h; lvl++ {
		n.next[lvl].Store(preds[lvl].next[lvl].Load())
		preds[lvl].next[lvl].Store(n)
	}
	s.size.Add(1)
	return nil
}

// remove marks e dead and unlinks its tower.
func (s *skiplist) remove(e *Entry) {
	e.dead.Store(true)
	s.mu.Lock()
	defer s.mu.Unlock()
	n := e.node
	if n == nil || n.entry.Load() != e {
		return // already replaced by a newer entry for the same fence
	}
	preds := make([]*slNode, maxHeight)
	s.seek(n.key, true, preds)
	for lvl := 0; lvl < len(n.next); lvl++ {
		if preds[lvl].next[lvl].Load() == n {
			preds[lvl].next[lvl].Store(n.next[lvl].Load())
		}
	}
	n.entry.Store(nil)
	s.size.Add(-1)
}
