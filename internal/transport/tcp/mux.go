package tcp

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWindow is the per-server outstanding-request window: how many
// tagged frames one muxConn keeps in flight before issue blocks. It bounds
// server-side buffering and is the backpressure of the pipelined executor;
// 64 comfortably exceeds any single session's depth times its verb fan-out.
const defaultWindow = 64

// muxSlot is one tagged completion slot. Its tag is its index in the mux's
// slot table; a slot cycles free → inflight → delivered → free, and its
// resp buffer is reused across cycles so the steady path allocates nothing.
type muxSlot struct {
	// ready carries the single completion signal; err/reject/resp are valid
	// for the awaiter once it receives (channel delivery orders the writes).
	ready chan struct{}

	// inflight guards exactly-once delivery: whoever CASes true→false owns
	// the completion (the reader with a response, or the failure sweep).
	inflight atomic.Bool

	err    bool   // connection died; apply dead-memory semantics
	reject bool   // server answered statusErr; resp holds the message
	resp   []byte // response payload, valid until release
}

// deliver completes the slot exactly once.
func (s *muxSlot) deliver(err bool) {
	if s.inflight.CompareAndSwap(true, false) {
		s.err = err
		s.ready <- struct{}{}
	}
}

// muxConn is the multiplexed connection to one memory server, shared by
// every client thread of the cluster. Senders acquire a tagged slot (the
// bounded window), append their frame to a shared write buffer, and block
// on the slot; a writer goroutine coalesces whatever accumulated into
// single flushes, and a reader goroutine demuxes responses by tag back to
// the waiting slots. Responses may return in any order — that is the whole
// point: requests to different chunks proceed through the server's striped
// locks concurrently.
//
// Failure is terminal (a dead server stays dead, as in v1): fail closes the
// socket, the reader sweeps every in-flight slot with err, and later issues
// self-complete with err. Verbs observing err call Cluster.markDead, which
// runs failover promotion before the death is published — the mux itself
// never touches the cluster, keeping the markDead→fail call acyclic.
type muxConn struct {
	ms int
	c  net.Conn

	slots []muxSlot
	free  chan uint32 // free slot indices; capacity = window

	wmu  sync.Mutex
	wbuf []byte        // frames queued for the writer, coalesced per flush
	wake chan struct{} // capacity 1; nudges the writer, never closed

	closed    atomic.Bool
	dead      chan struct{} // closed by fail; stops the writer
	closeOnce sync.Once
}

// dialMux connects to endpoint and starts the writer and reader goroutines.
func dialMux(ms int, endpoint string, window int) (*muxConn, error) {
	if window <= 0 {
		window = defaultWindow
	}
	c, err := net.DialTimeout("tcp", endpoint, dialTimeout)
	if err != nil {
		return nil, err
	}
	m := &muxConn{
		ms:    ms,
		c:     c,
		slots: make([]muxSlot, window),
		free:  make(chan uint32, window),
		wake:  make(chan struct{}, 1),
		dead:  make(chan struct{}),
	}
	for i := range m.slots {
		m.slots[i].ready = make(chan struct{}, 1)
		m.free <- uint32(i)
	}
	go m.writeLoop()
	go m.readLoop()
	return m, nil
}

// fail makes the mux terminally dead: no new frames go out, the socket
// closes (kicking the reader out of any blocking read — a SIGSTOPped server
// holds its sockets open without answering), and the writer stops. The
// reader performs the in-flight sweep itself after its loop exits, so slot
// buffers are never written concurrently with delivery.
func (m *muxConn) fail() {
	m.closeOnce.Do(func() {
		m.closed.Store(true)
		m.c.Close()
		close(m.dead)
	})
}

// issue acquires a slot from the window (blocking while the window is
// full — the backpressure), queues one frame for the writer and returns the
// slot's tag. The payload is copied at enqueue, so the caller's scratch is
// reusable immediately. On a dead mux the slot self-completes with err.
func (m *muxConn) issue(op byte, payload []byte) uint32 {
	tag := <-m.free
	s := &m.slots[tag]
	s.err, s.reject = false, false
	s.inflight.Store(true)
	if m.closed.Load() {
		// The request never goes out. Complete it here: the reader's sweep
		// may already be done, but if it is running it CAS-races us safely.
		s.deliver(true)
		return tag
	}
	m.wmu.Lock()
	m.wbuf = appendFrame(m.wbuf, tag, op, payload)
	m.wmu.Unlock()
	select {
	case m.wake <- struct{}{}:
	default:
	}
	return tag
}

// await blocks until tag's response arrives. ok=false means the connection
// died; the caller applies dead-memory semantics and marks the server dead.
// The returned payload aliases the slot's buffer — parse or copy it before
// release. A statusErr response is a protocol bug (out-of-range access, bad
// opcode) and panics in the awaiting goroutine, matching the simulator's
// treatment of verb misuse.
func (m *muxConn) await(tag uint32) ([]byte, bool) {
	s := &m.slots[tag]
	<-s.ready
	if s.err {
		return nil, false
	}
	if s.reject {
		panic("tcp: server rejected request: " + string(s.resp))
	}
	return s.resp, true
}

// release returns tag's slot to the window. The slot's response buffer is
// invalid afterwards.
func (m *muxConn) release(tag uint32) { m.free <- tag }

// roundTrip is the synchronous convenience: issue, await, hand the response
// to parse (which must copy anything it keeps), release.
func (m *muxConn) roundTrip(op byte, payload []byte, parse func(resp []byte)) bool {
	tag := m.issue(op, payload)
	resp, ok := m.await(tag)
	if ok && parse != nil {
		parse(resp)
	}
	m.release(tag)
	return ok
}

// writeLoop flushes queued frames. Every pass swaps the shared buffer for a
// private one under the mutex — O(1) — then writes the whole batch with a
// single Write: frames issued by concurrent senders while a flush is on the
// wire coalesce into the next one (the writev-style batching that makes N
// in-flight verbs cost far fewer syscalls than N).
func (m *muxConn) writeLoop() {
	var local []byte
	for {
		select {
		case <-m.dead:
			return
		case <-m.wake:
		}
		// Yield before swapping — and keep yielding while the buffer is
		// still growing: senders mid-issue get to append their frames, so a
		// burst coalesces into one Write instead of trickling out a frame
		// per syscall (which otherwise dominates pipelined throughput; a
		// loopback write runs the whole TCP stack inline). A lone sender
		// pays one no-op yield; a pipelined wave gathers until quiescent.
		runtime.Gosched()
		m.wmu.Lock()
		n := len(m.wbuf)
		m.wmu.Unlock()
		// A completion batch wakes several senders whose next frames scatter
		// across all muxes, so this mux may see growth only every few yields;
		// tolerate a couple of quiet rounds before flushing. Idle yields are
		// near-free (there is real work on the runnable queue whenever the
		// burst is still unwinding).
		for i, stale := 0, 0; n > 0 && i < 24 && stale < 3; i++ {
			runtime.Gosched()
			m.wmu.Lock()
			grown := len(m.wbuf)
			m.wmu.Unlock()
			if grown == n {
				stale++
			} else {
				stale = 0
				n = grown
			}
		}
		m.wmu.Lock()
		local, m.wbuf = m.wbuf, local[:0]
		m.wmu.Unlock()
		if len(local) == 0 {
			continue
		}
		if _, err := m.c.Write(local); err != nil {
			m.c.Close() // the reader errors out and runs the failure sweep
			return
		}
	}
}

// readLoop demuxes response frames to their slots until the connection
// dies, then fails the mux and sweeps every in-flight slot. A response
// whose tag is out of range or not in flight means the stream is
// desynchronized; the only safe move is to kill the connection.
func (m *muxConn) readLoop() {
	defer func() {
		m.fail()
		for i := range m.slots {
			m.slots[i].deliver(true)
		}
	}()
	r := bufio.NewReader(m.c)
	// Header scratch lives outside the loop: through the io.Reader
	// interface a loop-local would escape and cost one heap allocation
	// per response frame.
	var hdr [frameHeader]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n < 5 || n > maxFrame {
			return
		}
		tag := binary.LittleEndian.Uint32(hdr[4:8])
		status := hdr[8]
		if tag >= uint32(len(m.slots)) {
			return
		}
		s := &m.slots[tag]
		if !s.inflight.Load() {
			return
		}
		// The payload lands directly in the slot's reusable buffer: the
		// awaiter is parked on ready until deliver, so nobody reads it while
		// we fill it, and the steady path allocates nothing once warm.
		plen := int(n) - 5
		if cap(s.resp) < plen {
			s.resp = make([]byte, plen)
		}
		s.resp = s.resp[:plen]
		if plen > 0 {
			if _, err := io.ReadFull(r, s.resp); err != nil {
				return
			}
		}
		s.reject = status != statusOK
		s.deliver(false)
	}
}
