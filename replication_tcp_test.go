package sherman

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestTCPCrashMatrix is the real-process counterpart of the replication
// gate: a factor-2 tree over three shermand processes, a victim SIGKILLed at
// a randomized point in the op stream, and a read-back that demands every
// acknowledged write back — exactly once, with its exact value — after
// failover and re-replication. Each round randomizes the kill point and the
// victim so the matrix covers kills during bulk-loaded reads, fresh-chunk
// writes and splits; the seed is logged for reproduction.
func TestTCPCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and builds cmd/shermand")
	}
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %d", seed)

	const rounds = 2
	for round := 0; round < rounds; round++ {
		round := round
		victim := 1 + rng.Intn(2)
		killAt := 200 + rng.Intn(1200)
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			c, err := NewCluster(ClusterConfig{
				MemoryServers:     3,
				ComputeServers:    1,
				Transport:         TransportTCP,
				ReplicationFactor: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			tree, err := c.CreateTree(TreeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			var kvs []KV
			for k := uint64(1); k <= 256; k++ {
				kvs = append(kvs, KV{Key: k, Value: k * 13})
			}
			if err := tree.Bulkload(kvs); err != nil {
				t.Fatal(err)
			}

			s, err := tree.SessionAt(0)
			if err != nil {
				t.Fatal(err)
			}
			const ops = 2000
			const keySpace = 4096
			// oracle is the full expected state: bulk load plus every
			// acknowledged mutation, in order.
			oracle := make(map[uint64]uint64, ops)
			for _, kv := range kvs {
				oracle[kv.Key] = kv.Value
			}
			t.Logf("killing ms%d at op %d", victim, killAt)
			for i := 0; i < ops; i++ {
				if i == killAt {
					if err := c.KillMemoryServer(victim); err != nil {
						t.Fatal(err)
					}
				}
				// Mostly inserts of fresh keys so the stream allocates chunks
				// and splits nodes before, during and after the death.
				key := uint64(rng.Intn(keySpace)) + 1
				switch {
				case rng.Intn(100) < 70:
					v := uint64(i)*1000003 + 1
					if err := s.PutE(key, v); err != nil {
						t.Fatalf("op %d: PutE: %v", i, err)
					}
					oracle[key] = v
				case rng.Intn(2) == 0:
					if _, err := s.DeleteE(key); err != nil {
						t.Fatalf("op %d: DeleteE: %v", i, err)
					}
					delete(oracle, key)
				default:
					if _, _, err := s.GetE(key); err != nil {
						t.Fatalf("op %d: GetE: %v", i, err)
					}
				}
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			if got := c.ReplicationStats(); got.Failovers == 0 || got.LostChunks != 0 {
				t.Fatalf("replication stats after kill: %+v (want failovers > 0, no lost chunks)", got)
			}

			// Repair to full redundancy, then read back every acked write.
			for i := 0; c.ReplicationStats().UnderReplicated > 0; i++ {
				if _, err := tree.ReReplicate(0); err != nil {
					t.Fatal(err)
				}
				if i > 64 {
					t.Fatalf("%d chunks still under-replicated after 64 sweeps", c.ReplicationStats().UnderReplicated)
				}
			}
			for k, want := range oracle {
				v, ok, err := s.GetE(k)
				if err != nil {
					t.Fatal(err)
				}
				if !ok || v != want {
					t.Errorf("acked key %d = %d,%v; want %d,true", k, v, ok, want)
				}
			}
			// Deleted and never-written keys must stay absent: a promoted
			// replica resurrecting a deleted key would show up here.
			for probe := 0; probe < 256; probe++ {
				k := uint64(rng.Intn(keySpace)) + 1
				if _, present := oracle[k]; present {
					continue
				}
				if _, ok, err := s.GetE(k); err != nil {
					t.Fatal(err)
				} else if ok {
					t.Errorf("key %d reachable but never acked (or deleted)", k)
				}
			}
			if err := tree.Validate(); err != nil {
				t.Fatalf("tree invalid after crash + repair: %v", err)
			}
		})
	}
}
