package sherman

import (
	"fmt"

	"sherman/internal/replica"
	"sherman/internal/sim"
)

// This file is the public face of the replication subsystem: chunk-granular
// redundancy that survives memory-server death with zero lost acknowledged
// writes. Enable it with ClusterConfig.ReplicationFactor; the mechanism
// lives in internal/alloc (placement, replica map), internal/core (the
// mirror engine riding on doorbell batches) and internal/replica (the
// background re-replicator); DESIGN.md §12 documents it.

// ReReplicate sweeps the tree's under-replicated chunks — those that lost a
// copy to a memory-server death, or never got their full complement on a
// small cluster — and rebuilds each missing copy on the coldest eligible
// server, driving the repair traffic from compute server via. Hottest
// chunks regain redundancy first. Safe while sessions run: each chunk is
// registered as a mirror target before its backfill starts, so no
// concurrent write is lost. One call repairs a bounded batch; call again
// until ChunksRepaired is zero to restore full redundancy. Returns
// ErrSessionDead when via crashes mid-sweep. With replication disabled it
// is a no-op.
func (t *Tree) ReReplicate(via int) (ReReplicationStats, error) {
	if via < 0 || via >= t.c.ComputeServers() {
		return ReReplicationStats{}, fmt.Errorf("%w: %d not in [0,%d)", ErrBadComputeServer, via, t.c.ComputeServers())
	}
	if !t.c.ComputeServerAlive(via) {
		return ReReplicationStats{}, fmt.Errorf("%w: re-replication must run on a live compute server", ErrSessionDead)
	}
	var st replica.Stats
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := sim.IsCrash(r); ok {
					err = ErrSessionDead
					return
				}
				panic(r)
			}
		}()
		h := t.tr.NewHandle(via, int(sessionSeq.Add(1)))
		// Anchor the clock at the cluster's latest verb time so VirtualNS
		// measures the repair, not the cluster's age (see Tree.Recover).
		t.c.anchorClock(h)
		st, err = replica.New(h, replica.Options{}).ReReplicate()
		return err
	}()
	return ReReplicationStats{
		ChunksRepaired:  st.ChunksRepaired,
		SlotsCopied:     st.SlotsCopied,
		SkippedNoTarget: st.SkippedNoTarget,
		VirtualNS:       st.VirtualNS,
	}, err
}

// ReReplicationStats reports one ReReplicate sweep.
type ReReplicationStats struct {
	// ChunksRepaired counts chunks brought back to full replication;
	// SlotsCopied the non-empty node slots their backfills copied.
	ChunksRepaired, SlotsCopied int
	// SkippedNoTarget counts under-replicated chunks left as-is because no
	// live, non-draining server could host another copy.
	SkippedNoTarget int
	// VirtualNS is the sweep's span on the driving thread's virtual clock —
	// the repair time a real deployment would observe.
	VirtualNS int64
}

// ReplicationStats snapshots the cluster's replication state.
func (c *Cluster) ReplicationStats() ReplicationStats {
	rf, failovers := 1, int64(0)
	if c.cl != nil {
		rf, failovers = c.cl.ReplicationFactor(), c.cl.Failovers()
	} else {
		rf, failovers = c.tc.ReplicationFactor(), c.tc.Failovers()
		if rf == 0 {
			rf = 1
		}
	}
	st := ReplicationStats{
		ReplicationFactor: rf,
		Failovers:         failovers,
	}
	if rep := c.be.Replicas(); rep != nil {
		st.RegisteredChunks = rep.Len()
		st.Promotions = rep.Promotions()
		st.DroppedReplicas = rep.DroppedReplicas()
		st.LostChunks = rep.Lost()
		st.UnderReplicated = len(rep.UnderReplicated(rf))
	}
	return st
}

// ReplicationStats summarizes the replication subsystem since the cluster
// started.
type ReplicationStats struct {
	// ReplicationFactor echoes the configured copies per chunk (0/1 = off).
	ReplicationFactor int
	// RegisteredChunks is the number of primary chunks currently tracked.
	RegisteredChunks int
	// UnderReplicated is the number of chunks currently holding fewer
	// complete copies than the factor requires; ReReplicate drains it.
	UnderReplicated int
	// Failovers counts memory-server deaths the cluster failed over.
	Failovers int64
	// Promotions counts replica chunks promoted to primary by failovers;
	// DroppedReplicas counts replica copies lost when their host died.
	Promotions, DroppedReplicas int64
	// LostChunks counts chunks whose primary died with no replica to
	// promote — data loss, always zero when the factor is at least 2 and
	// re-replication keeps up with failures.
	LostChunks int64
}
