package layout

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"sherman/internal/rdma"
)

// TestLeafModelProperty drives a random op sequence against a leaf and a
// map model in both modes; contents must agree after every step.
func TestLeafModelProperty(t *testing.T) {
	for _, mode := range []Mode{TwoLevel, Checksum} {
		mode := mode
		fn := func(seed uint64, opsRaw uint8) bool {
			f := NewFormat(mode, 8, 512)
			l := NewLeaf(f, 0, NoUpperBound)
			model := map[uint64]uint64{}
			rng := rand.New(rand.NewPCG(seed, 77))
			ops := int(opsRaw)%200 + 20
			for i := 0; i < ops; i++ {
				k := rng.Uint64N(30) + 1
				switch rng.Uint64N(3) {
				case 0: // delete
					if mode == TwoLevel {
						if idx, ok := l.Find(k); ok {
							l.ClearEntry(idx)
						}
					} else {
						l.DeleteSorted(k)
					}
					delete(model, k)
				default: // upsert, skipped when full and absent
					v := rng.Uint64() | 1
					if mode == TwoLevel {
						idx, ok := l.Find(k)
						if !ok {
							idx = l.FindFree()
						}
						if idx < 0 {
							continue
						}
						l.SetEntry(idx, k, v)
					} else if !l.InsertSorted(k, v) {
						continue
					}
					model[k] = v
				}
				// Compare contents.
				if l.Count() != len(model) {
					return false
				}
				for k, v := range model {
					idx, ok := l.Find(k)
					if !ok || l.Value(idx) != v {
						return false
					}
				}
			}
			// Entries() must be the sorted model.
			got := l.Entries()
			want := make([]KV, 0, len(model))
			for k, v := range model {
				want = append(want, KV{k, v})
			}
			sort.Slice(want, func(i, j int) bool { return want[i].Key < want[j].Key })
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(fn, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("mode %v: %v", mode, err)
		}
	}
}

// TestInternalModelProperty checks ChildFor against a reference routing
// table after random separator inserts.
func TestInternalModelProperty(t *testing.T) {
	fn := func(seed uint64) bool {
		f := DefaultFormat(TwoLevel)
		n := NewInternal(f, 1, 0, NoUpperBound)
		leftmost := rdma.MakeAddr(0, 64)
		n.SetLeftmost(leftmost)
		rng := rand.New(rand.NewPCG(seed, 13))

		seps := map[uint64]rdma.Addr{}
		for i := 0; i < 40; i++ {
			k := rng.Uint64N(10_000) + 1
			child := rdma.MakeAddr(0, uint64(0x1000+i*64))
			if !n.Insert(k, child) {
				break
			}
			seps[k] = child
		}
		keys := make([]uint64, 0, len(seps))
		for k := range seps {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

		for probe := 0; probe < 100; probe++ {
			k := rng.Uint64N(11_000)
			want := leftmost
			for _, sk := range keys {
				if sk <= k {
					want = seps[sk]
				} else {
					break
				}
			}
			if got, _ := n.ChildFor(k); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestInternalSplitProperty: after SplitInto, routing across both halves
// must equal routing in the original node.
func TestInternalSplitProperty(t *testing.T) {
	fn := func(seed uint64) bool {
		f := NewFormat(TwoLevel, 8, 512)
		n := NewInternal(f, 2, 100, 90_000)
		n.SetLeftmost(rdma.MakeAddr(0, 64))
		rng := rand.New(rand.NewPCG(seed, 99))
		for i := 0; ; i++ {
			k := rng.Uint64N(80_000) + 101
			if !n.Insert(k, rdma.MakeAddr(0, uint64(0x1000+i*64))) {
				break
			}
		}
		// Reference routing before the split.
		type route struct {
			key   uint64
			child rdma.Addr
		}
		var ref []route
		for p := 0; p < 200; p++ {
			k := rng.Uint64N(89_900) + 100
			c, _ := n.ChildFor(k)
			ref = append(ref, route{k, c})
		}

		rightAddr := rdma.MakeAddr(1, 0x8000)
		right := NewInternal(f, 2, 0, NoUpperBound)
		sep := n.SplitInto(right, rightAddr)

		if n.UpperFence() != sep || right.LowerFence() != sep {
			return false
		}
		if n.Sibling() != rightAddr {
			return false
		}
		for _, r := range ref {
			var got rdma.Addr
			if r.key < sep {
				got, _ = n.ChildFor(r.key)
			} else {
				got, _ = right.ChildFor(r.key)
			}
			if got != r.child {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestConsistencyCatchesAnySingleFlip: in checksum mode, flipping any one
// byte of a node (except inside the checksum's own field, which corrupts
// the stored sum instead) must fail verification.
func TestConsistencyCatchesAnySingleFlip(t *testing.T) {
	f := NewFormat(Checksum, 8, 256)
	l := NewLeaf(f, 0, NoUpperBound)
	for i := 0; i < 5; i++ {
		l.InsertSorted(uint64(i+1)*7, uint64(i))
	}
	l.UpdateChecksum()
	for off := 0; off < f.NodeSize; off++ {
		l.B[off] ^= 0x5a
		if l.Consistent() {
			t.Fatalf("byte flip at %d undetected", off)
		}
		l.B[off] ^= 0x5a
	}
	if !l.Consistent() {
		t.Fatal("restored node fails verification")
	}
}

// TestTwoLevelEntryFlipDetection: flipping bytes inside one entry is caught
// by that entry's version pair whenever the flip does not touch both
// versions identically — the fine-grained check of §4.4.
func TestTwoLevelEntryFlipDetection(t *testing.T) {
	f := NewFormat(TwoLevel, 8, 256)
	l := NewLeaf(f, 0, NoUpperBound)
	l.SetEntry(0, 42, 99)
	off, size := l.EntrySpan(0)
	// Tear the entry: bump FEV only (a half-applied write).
	l.B[off] = (l.B[off] + 1) & 0xF
	if l.EntryConsistent(0) {
		t.Fatal("front-version tear undetected")
	}
	// Repair and tear the rear instead.
	l.B[off] = l.B[off+size-1]
	if !l.EntryConsistent(0) {
		t.Fatal("repair failed")
	}
	l.B[off+size-1] = (l.B[off+size-1] + 3) & 0xF
	if l.EntryConsistent(0) {
		t.Fatal("rear-version tear undetected")
	}
}

// TestFixedCapFormats: the fixed-capacity constructor yields exactly the
// requested entries for every key size and stays line-aligned.
func TestFixedCapFormats(t *testing.T) {
	for _, mode := range []Mode{TwoLevel, Checksum} {
		for _, ks := range []int{8, 16, 64, 256, 1024} {
			f := NewFormatFixedCap(mode, ks, 32)
			if f.LeafCap != 32 {
				t.Errorf("mode %v key %d: leaf cap %d", mode, ks, f.LeafCap)
			}
			if f.NodeSize%64 != 0 {
				t.Errorf("mode %v key %d: node size %d not line-aligned", mode, ks, f.NodeSize)
			}
			// All 32 slots must be writable without overlapping the trailer.
			l := NewLeaf(f, 0, NoUpperBound)
			for i := 0; i < 32; i++ {
				if mode == TwoLevel {
					l.SetEntry(i, uint64(i+1), 1)
				} else {
					l.InsertSorted(uint64(i+1), 1)
				}
			}
			if l.Count() != 32 {
				t.Errorf("mode %v key %d: stored %d entries", mode, ks, l.Count())
			}
			if mode == TwoLevel {
				l.BumpNodeVersions()
				if !l.Consistent() {
					t.Errorf("mode %v key %d: node versions landed inside an entry", mode, ks)
				}
			}
		}
	}
}
