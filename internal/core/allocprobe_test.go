package core_test

import (
	"testing"

	"sherman/internal/cluster"
	"sherman/internal/core"
	"sherman/internal/layout"
	"sherman/internal/stats"
)

func setupProbe(b *testing.B, depth int) (*core.Handle, *core.Async) {
	b.Helper()
	cl := cluster.New(cluster.Config{NumMS: 2, NumCS: 1})
	cfg := core.ShermanConfig()
	cfg.Format = layout.NewFormat(layout.TwoLevel, 8, 256)
	cfg.LocksPerMS = 1024
	tr := core.New(cl, cfg)
	kvs := make([]layout.KV, 4096)
	for i := range kvs {
		k := uint64(i + 1)
		kvs[i] = layout.KV{Key: k, Value: k * 3}
	}
	tr.Bulkload(kvs)
	h := tr.NewHandle(0, 0)
	as := h.NewAsync(depth)
	// warm the cache
	for i := 0; i < 4096; i++ {
		h.Lookup(uint64(i + 1))
	}
	return h, as
}

func BenchmarkProbeGetCached(b *testing.B) {
	h, _ := setupProbe(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Lookup(uint64(i%4096 + 1))
	}
}

func BenchmarkProbeGetPipelined(b *testing.B) {
	_, as := setupProbe(b, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		as.Submit(core.Op{Kind: stats.OpLookup, Key: uint64(i%4096 + 1)})
	}
	as.Flush()
}

func BenchmarkProbePutSteady(b *testing.B) {
	h, _ := setupProbe(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Insert(uint64(i%4096+1), uint64(i))
	}
}

func BenchmarkProbePutPipelined(b *testing.B) {
	_, as := setupProbe(b, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		as.Submit(core.Op{Kind: stats.OpInsert, Key: uint64(i%4096 + 1), Value: uint64(i)})
	}
	as.Flush()
}

func BenchmarkProbeExecMixed(b *testing.B) {
	_, as := setupProbe(b, 4)
	ops := make([]core.Op, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ops {
			k := uint64((i*16+j)%4096 + 1)
			if j%2 == 0 {
				ops[j] = core.Op{Kind: stats.OpLookup, Key: k}
			} else {
				ops[j] = core.Op{Kind: stats.OpInsert, Key: k, Value: k}
			}
		}
		as.Exec(ops)
	}
}
