module sherman

go 1.24
