// Elastic: scale the memory side of a running cluster out and back in,
// with live chunk migration moving the data while sessions keep serving.
//
// The cluster starts with a single memory server carrying the whole tree
// — the most skewed placement possible. A second server joins online
// (AddMemoryServer), Tree.Rebalance migrates the hottest chunks onto it
// under the ordinary node locks (readers that land on a just-moved node
// chase a one-hop forwarding entry), and finally DrainMemoryServer
// empties the original server again. See DESIGN.md §9 for the protocol.
package main

import (
	"fmt"
	"log"

	"sherman"
)

func main() {
	cluster, err := sherman.NewCluster(sherman.ClusterConfig{
		MemoryServers:    1,
		ComputeServers:   2,
		MaxMemoryServers: 4, // scale-out capacity is declared at creation
	})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := cluster.CreateTree(sherman.DefaultTreeOptions())
	if err != nil {
		log.Fatal(err)
	}

	const n = 300_000
	kvs := make([]sherman.KV, n)
	for i := range kvs {
		kvs[i] = sherman.KV{Key: uint64(i + 1), Value: uint64(i) * 3}
	}
	if err := tree.Bulkload(kvs); err != nil {
		log.Fatal(err)
	}

	// Generate read traffic so the load picker has a signal.
	s := tree.Session(0)
	for k := uint64(1); k <= n; k += 7 {
		s.Get(k)
	}
	report := func(when string) {
		fmt.Printf("%-18s", when)
		for _, l := range cluster.MemoryServerLoads() {
			state := ""
			if l.Draining {
				state = " (draining)"
			}
			fmt.Printf("  ms%d=%dk ops%s", l.MS, l.InboundOps/1000, state)
		}
		fmt.Printf("  skew=%.2f\n", sherman.LoadSkew(cluster.MemoryServerLoads()))
	}
	report("one server")

	// Scale out: a second memory server joins the running cluster.
	ms, err := cluster.AddMemoryServer()
	if err != nil {
		log.Fatal(err)
	}
	st, err := tree.Rebalance(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebalance: moved %d nodes in %d chunks to ms%d, repointed %d parents, %.2f ms virtual\n",
		st.NodesMoved, st.ChunksMoved, ms, st.Repoints, float64(st.VirtualNS)/1e6)

	// Fresh traffic now spreads; sessions were never interrupted.
	s2 := tree.Session(1)
	for k := uint64(1); k <= n; k += 7 {
		if v, ok := s2.Get(k); !ok || v != (k-1)*3 {
			log.Fatalf("Get(%d) = (%d,%v) after rebalance", k, v, ok)
		}
	}
	report("after rebalance")

	// Scale back in: drain the newcomer; the tree survives intact.
	if st, err = cluster.DrainMemoryServer(ms, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drain: moved %d nodes off ms%d\n", st.NodesMoved, ms)
	if err := tree.Validate(); err != nil {
		log.Fatal(err)
	}
	for k := uint64(1); k <= n; k += 997 {
		if v, ok := s2.Get(k); !ok || v != (k-1)*3 {
			log.Fatalf("Get(%d) = (%d,%v) after drain", k, v, ok)
		}
	}
	report("after drain")
	fmt.Println("tree validates; sessions served throughout")
}
