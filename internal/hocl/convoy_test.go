package hocl

import (
	"sync"
	"testing"
)

func TestConvoyDepthQueueOnly(t *testing.T) {
	var s gslot
	s.waiters = []*gwaiter{{}, {}, {}}
	// Without a full arrival ring, the estimate is just the queue length.
	if got := s.convoyDepth(1_000_000, 100); got != 3 {
		t.Errorf("depth = %d, want 3 (queue only)", got)
	}
}

func TestConvoyDepthRateExtrapolation(t *testing.T) {
	var s gslot
	// One arrival every 1000 ns fills the ring.
	for i := 0; i < len(s.arrivals); i++ {
		s.noteArrival(int64(i) * 1000)
	}
	s.waiters = []*gwaiter{{}}
	// The lock's timeline leads the newest arrival by 10_000 ns: ten more
	// clients will virtually arrive inside that window.
	got := s.convoyDepth(s.lastArrival+10_000, 1000)
	if got < 9 || got > 13 {
		t.Errorf("depth = %d, want ~11 (1 queued + ~10 extrapolated)", got)
	}
}

func TestConvoyDepthCappedAtPopulation(t *testing.T) {
	var s gslot
	for i := 0; i < len(s.arrivals); i++ {
		s.noteArrival(int64(i) * 10) // very fast arrivals
	}
	got := s.convoyDepth(s.lastArrival+1_000_000, 42)
	if got != 42 {
		t.Errorf("depth = %d, want the population cap 42", got)
	}
	// No cap when maxClients is zero (unknown population).
	if got := s.convoyDepth(s.lastArrival+1_000, 0); got <= 42 {
		t.Errorf("uncapped depth = %d, want > 42", got)
	}
}

func TestConvoyDepthNoLead(t *testing.T) {
	var s gslot
	for i := 0; i < len(s.arrivals); i++ {
		s.noteArrival(int64(i) * 1000)
	}
	// Release time at or before the newest arrival: no extrapolation.
	if got := s.convoyDepth(s.lastArrival, 100); got != 0 {
		t.Errorf("depth = %d, want 0", got)
	}
}

func TestNoteArrivalRing(t *testing.T) {
	var s gslot
	for i := 0; i < 100; i++ {
		s.noteArrival(int64(i))
	}
	if s.acount != len(s.arrivals) {
		t.Errorf("acount = %d, want ring size %d", s.acount, len(s.arrivals))
	}
	if s.lastArrival != 99 {
		t.Errorf("lastArrival = %d, want 99", s.lastArrival)
	}
	// Out-of-order arrival must not move lastArrival backwards.
	s.noteArrival(50)
	if s.lastArrival != 99 {
		t.Errorf("lastArrival after stale arrival = %d, want 99", s.lastArrival)
	}
}

// TestLocalLockRelVPropagation: a thread acquiring a free local lock
// inherits the previous holder's virtual release time.
func TestLocalLockRelVPropagation(t *testing.T) {
	f := testFabric(t, 1, 1)
	m := NewManager(f, Config{Mode: Sherman(), LocksPerMS: 8})
	c1 := f.NewClient(0)
	g := m.LockIdx(c1, 0, 0)
	c1.Step(5000)
	m.Unlock(c1, g, nil, true)
	rel := c1.Now()

	// A second thread with a clock in the past acquires later (real time):
	// its clock must advance to at least the previous release.
	c2 := f.NewClient(0)
	g2 := m.LockIdx(c2, 0, 0)
	if c2.Now() < rel {
		t.Errorf("second holder's clock %d is inside the previous hold (release %d)", c2.Now(), rel)
	}
	m.Unlock(c2, g2, nil, true)
}

// TestGlobalRetriesCounted: a waiter that must wait accrues retry counts.
func TestGlobalRetriesCounted(t *testing.T) {
	f := testFabric(t, 1, 2)
	m := NewManager(f, Config{Mode: Baseline(), LocksPerMS: 8})

	c1 := f.NewClient(0)
	g := m.LockIdx(c1, 0, 0)
	c1.Step(200_000) // long hold

	done := make(chan struct{})
	go func() {
		defer close(done)
		c2 := f.NewClient(1)
		g2 := m.LockIdx(c2, 0, 0) // blocks until release, then spins virtually
		m.Unlock(c2, g2, nil, true)
	}()
	m.Unlock(c1, g, nil, true)
	<-done
	if m.Stats.GlobalRetries.Load() == 0 {
		t.Error("no retries recorded for a 200 us wait")
	}
}

// TestCrossCSContention: threads on different compute servers contend on
// one lock; exclusion and progress must hold with local tables enabled
// (each CS has its own LLT, the global slot arbitrates between them).
func TestCrossCSContention(t *testing.T) {
	f := testFabric(t, 1, 4)
	m := NewManager(f, Config{Mode: Sherman(), LocksPerMS: 4})
	var counter int64
	var wg sync.WaitGroup
	const threads, ops = 8, 250
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			c := f.NewClient(th % 4)
			for i := 0; i < ops; i++ {
				g := m.LockIdx(c, 0, 1)
				counter++
				m.Unlock(c, g, nil, true)
			}
		}(th)
	}
	wg.Wait()
	if counter != threads*ops {
		t.Errorf("counter = %d, want %d", counter, threads*ops)
	}
}
