package transport

import "fmt"

// Addr is a 64-bit global pointer into disaggregated memory, matching the
// paper's pointer format (§4.2.1): a 16-bit memory-server identifier and a
// 48-bit offset within that server. The top bit of the MS field is borrowed
// to address NIC on-chip device memory (used only for lock tables, never for
// tree nodes, so it can never be confused with a tree pointer).
//
// The zero Addr is the nil pointer; offset 0 of MS 0 holds the cluster
// superblock and is never handed out by the allocator.
type Addr uint64

const (
	onChipBit  = uint64(1) << 63
	offsetMask = (uint64(1) << 48) - 1
)

// NilAddr is the null pointer.
const NilAddr Addr = 0

// DefaultChunkSize is the fixed-length chunk granularity used by memory
// threads when handing memory to compute servers (§4.2.4).
const DefaultChunkSize = 8 << 20

// MakeAddr builds a host-memory address on memory server ms at offset off.
func MakeAddr(ms uint16, off uint64) Addr {
	if off&^offsetMask != 0 {
		panic(fmt.Sprintf("transport: offset %#x exceeds 48 bits", off))
	}
	if ms&0x8000 != 0 {
		panic(fmt.Sprintf("transport: ms id %d exceeds 15 bits", ms))
	}
	return Addr(uint64(ms)<<48 | off)
}

// MakeOnChipAddr builds an address into the on-chip device memory of memory
// server ms's NIC.
func MakeOnChipAddr(ms uint16, off uint64) Addr {
	return Addr(uint64(MakeAddr(ms, off)) | onChipBit)
}

// MS returns the memory-server identifier.
func (a Addr) MS() uint16 { return uint16(uint64(a)>>48) &^ 0x8000 }

// Off returns the 48-bit offset within the server (or within the NIC's
// on-chip memory for on-chip addresses).
func (a Addr) Off() uint64 { return uint64(a) & offsetMask }

// OnChip reports whether the address targets NIC on-chip device memory.
func (a Addr) OnChip() bool { return uint64(a)&onChipBit != 0 }

// IsNil reports whether the address is the null pointer.
func (a Addr) IsNil() bool { return a == NilAddr }

// Add returns the address displaced by d bytes within the same server and
// memory space.
func (a Addr) Add(d uint64) Addr {
	if a.IsNil() {
		panic("transport: Add on nil address")
	}
	return Addr(uint64(a) + d)
}

// String formats the address for diagnostics.
func (a Addr) String() string {
	if a.IsNil() {
		return "nil"
	}
	space := "mem"
	if a.OnChip() {
		space = "chip"
	}
	return fmt.Sprintf("ms%d/%s+%#x", a.MS(), space, a.Off())
}

// ReadOp names one RDMA_READ target for ReadMulti.
type ReadOp struct {
	Addr Addr
	Buf  []byte
}

// WriteOp names one RDMA_WRITE for a doorbell-batched post.
type WriteOp struct {
	Addr Addr
	Data []byte
}

// Metrics counts verb activity on one client thread. All fields are owned by
// the client's goroutine; aggregate across threads only after they finish.
type Metrics struct {
	// RoundTrips counts network round trips; a doorbell-batched post of
	// several dependent WRITEs counts once (that is the point of command
	// combination, §4.5).
	RoundTrips int64
	// OpRoundTrips counts round trips since the last BeginOp.
	OpRoundTrips int64

	// WriteBytes totals payload bytes sent by WRITE verbs; OpWriteBytes
	// since the last BeginOp.
	WriteBytes   int64
	OpWriteBytes int64

	Reads   int64
	Writes  int64
	Atomics int64
	RPCs    int64

	// DoorbellBatches counts multi-command doorbell posts (a PostWrites of
	// several WRITEs or a ReadMulti of several READs); DoorbellOps totals
	// the commands those posts carried. Their ratio is the doorbell
	// amortization the combination and batching layers achieve (§4.5).
	DoorbellBatches int64
	DoorbellOps     int64

	// CASFailures counts remote compare-and-swap attempts that did not
	// swap — the retry traffic that squanders NIC IOPS (§3.2.2).
	CASFailures int64
}

// BeginOp resets the per-operation counters.
func (m *Metrics) BeginOp() {
	m.OpRoundTrips = 0
	m.OpWriteBytes = 0
}
