package core

import (
	"fmt"

	"sherman/internal/cache"
	"sherman/internal/hocl"
	"sherman/internal/layout"
	"sherman/internal/rdma"
	"sherman/internal/stats"
)

// This file is the shared node-I/O + traversal layer: every data path —
// point lookups, locked writes, parent-separator insertion, range scans and
// the batch executors — resolves tree nodes through the two loops below
// instead of carrying its own copy of the move-right / stale-steering /
// lock-coupling logic. The loops encode the B-link protocol of §4.2:
// a traversal may land left of its key after concurrent splits (follow the
// sibling chain right), on a freed or repurposed node (recover from stale
// steering), and — for writes — must hold at most one node lock at any time
// (unlock the current node before locking its sibling, §4.3 [52]).
//
// Both loops are cache-first against the unified multi-level index cache:
// a traversal resumes at the deepest cached point of the key's path — a
// level-1 hit issues the leaf read immediately (the speculative leaf-direct
// jump), a level-2 hit restarts one read above the leaves, and so on up to
// the pinned top levels. Every jump is speculative: the fetched node is
// validated (liveness, level, fence keys), and a failure invalidates the
// poisoned path suffix and falls back to a top-down descent. The same
// validate-or-fall-back mechanism absorbs forwarding chases of migrated
// nodes (core.ErrMoved's read-side analogue).

// intent selects how seek interacts with the target node.
type intent int

const (
	// intentRead seeks lock-free: the node is fetched with a consistency-
	// validated read (version pair or checksum) and returned unlocked.
	intentRead intent = iota
	// intentWrite seeks under lock coupling: the target is locked before
	// the validating read, and moving right releases the current lock
	// before acquiring the sibling's.
	intentWrite
)

// seekResult is the node a seek landed on. The guard is the held lock for
// intentWrite seeks and the zero Guard for intentRead.
type seekResult struct {
	addr rdma.Addr
	n    layout.Node
	g    hocl.Guard
}

// specFail records a cached steering entry that failed validation: the
// entry is dropped along with the covering entries above it on the key's
// path (the poisoned suffix — whatever installed the stale child likely
// installed its stale parents too), and the traversal falls back to a
// top-down descent. level is the seek's target level: only a leaf seek
// steered by a level-1 entry counts as a failed speculative leaf-direct
// read (matching where SpecReads are counted), so SpecSuccessRate stays a
// true ratio.
func (h *Handle) specFail(key uint64, level uint8, ce *cache.Entry) {
	if level == 0 && ce.Level() == 1 {
		h.Rec.SpecFails++
	}
	h.Rec.CacheInvalidations += int64(h.cache.InvalidatePath(key, ce))
}

// seek drives the shared move-right / stale-steering loop at one level of
// the tree: starting from the steering hint addr (with ce the index-cache
// entry that produced it, nil otherwise), it locks (for intentWrite) and
// reads the node, validates liveness, level and fences, and either returns
// the covering node, follows the B-link sibling chain right, or recovers
// from stale steering.
//
// Stale recovery differs by level: level-0 seeks re-traverse from the root
// internally and always make progress, while level>0 seeks return ok=false
// so the caller can re-resolve its target from a fresh root (the parent
// level of a split is not known to the descent helper). ok=false at level 0
// happens only for read seeks whose sibling walk ran off the right edge —
// the key cannot exist. A level-0 write seek finding a finite upper fence
// with no sibling panics: the write-back protocol never produces that
// state, so it is structural corruption, not staleness.
//
// retries, when non-nil, accumulates consistency-check re-reads (the
// Figure 14(a) metric). hops, when non-nil, is the caller's sibling-hop
// budget — one logical operation keeps one counter across its seeks so the
// stale-top-cache flush heuristic (noteSiblingHop) sees the whole walk.
func (h *Handle) seek(key uint64, level uint8, in intent, addr rdma.Addr, ce *cache.Entry, buf []byte, retries, hops *int) (seekResult, bool) {
	var localHops int
	if hops == nil {
		hops = &localHops
	}
	for {
		var g hocl.Guard
		if in == intentWrite {
			g = h.t.locks.Lock(h.C, addr)
			if g.HandedOver() {
				h.Rec.Handovers++
			}
			if g.Reclaimed() {
				// The previous holder crashed mid-operation; the validating
				// read below re-establishes the node's consistency (the
				// two-level version pair or checksum) before any write. Any
				// cached copy of the node predates the crash repair: drop it
				// by address — O(1), no scan.
				h.Rec.Reclaims++
				if h.cache.InvalidateAddr(addr) {
					h.Rec.CacheInvalidations++
				}
			}
		}
		n, r := h.readNode(addr, buf)
		if retries != nil {
			*retries += r
		}
		if !n.Alive() || n.Level() != level || key < n.LowerFence() {
			// Stale steering: the node was freed, repurposed at another
			// level, migrated, or lies right of the key.
			if in == intentWrite {
				h.unlockWrite(g, nil)
			}
			if ce != nil {
				h.specFail(key, level, ce)
				ce = nil
			}
			if !n.Alive() {
				if fwd, ok := h.chase(addr); ok {
					// The node migrated: retry at its relocated address.
					// One hop suffices unless that data has since migrated
					// again (each round of this loop then chases one more
					// chunk generation); a dead un-forwarded copy falls
					// through to the normal stale handling below.
					addr = fwd
					continue
				}
			}
			if level > 0 {
				return seekResult{}, false
			}
			addr, ce = h.traverseToLeaf(key)
			continue
		}
		if n.UpperFence() != layout.NoUpperBound && key >= n.UpperFence() {
			sib := n.Sibling()
			if in == intentWrite {
				h.unlockWrite(g, nil)
			}
			if sib.IsNil() {
				if level == 0 && in == intentWrite {
					panic(fmt.Sprintf("core: rightmost leaf %v has finite upper fence", addr))
				}
				return seekResult{}, false
			}
			h.noteSiblingHop(hops)
			addr = sib
			// The steered node validated (alive, right level, covering
			// lower fence) — the speculation succeeded; the entry is merely
			// outdated about where the key's range ends, which the B-link
			// walk absorbs. A later dead sibling is not a speculation
			// failure, so drop the handle here.
			ce = nil
			continue
		}
		return seekResult{addr: addr, n: n, g: g}, true
	}
}

// descend walks internal levels down to the target level, following sibling
// pointers when a node's fences exclude the key and restarting from a fresh
// root when steering proves stale. It is cache-first: each round resumes at
// the deepest cached point of the key's path below the root (pinned top
// entries included), so a warm cache skips the upper levels entirely; the
// jump is validated at the next read, and a failure invalidates the
// poisoned path suffix and retries once cache-free. Internal nodes read on
// the way are offered to the cache (admission-gated by level). descend
// returns the address of the level `target` node whose fence range covered
// the key at read time; the caller re-validates under its own intent via
// seek. When the cached entry sat directly above the target, the returned
// address is its child pointer, taken on faith with no validating read —
// the entry is returned as the steering handle so the caller's seek can
// invalidate it (via specFail) if the speculation proves stale; a nil
// entry means the address came from a validated read.
func (h *Handle) descend(key uint64, target uint8) (rdma.Addr, *cache.Entry) {
	root, rootLvl := h.cache.Root()
	if root.IsNil() || rootLvl < target {
		root, rootLvl = h.refreshRoot()
	}
	useCache := true
	for {
		addr, lvl := root, rootLvl
		var jumped *cache.Entry
		if useCache && rootLvl > target {
			if e := h.cache.Deepest(key, target+1, rootLvl); e != nil {
				// Resume below the deepest cached node of the path: consume
				// the local copy (no verbs) and jump to its child.
				h.C.Step(h.tm.LocalStepNS)
				h.Rec.CacheLevelHits[stats.CacheLevelIdx(e.Level())]++
				if target == 0 && e.Level() == 1 {
					// The jump hands the caller a leaf address straight from
					// a cached level-1 parent: a speculative leaf-direct
					// read, same as locateLeaf's Lookup path.
					h.Rec.SpecReads++
				}
				child, _ := e.N.ChildFor(key)
				addr, lvl = child, e.Level()-1
				jumped = e
			}
		}
		ok := true
		for lvl > target {
			n, _ := h.readNode(addr, h.nodeBuf)
			if !n.Alive() || n.Level() != lvl || key < n.LowerFence() {
				// Freed, repurposed or migrated node, or we are left of its
				// range: chase a migrated node to its new home; otherwise
				// the steering was stale — invalidate the cached path that
				// produced it and restart from a fresh root.
				if !n.Alive() {
					if h.cache.InvalidateAddr(addr) {
						h.Rec.CacheInvalidations++
					}
					if fwd, chased := h.chase(addr); chased {
						addr = fwd
						continue
					}
				}
				if jumped != nil {
					h.specFail(key, lvl, jumped)
					useCache = false
				}
				ok = false
				break
			}
			if n.UpperFence() != layout.NoUpperBound && key >= n.UpperFence() {
				// Move right along the B-link chain (level unchanged).
				sib := n.Sibling()
				if sib.IsNil() {
					ok = false
					break
				}
				addr = sib
				continue
			}
			h.cacheInternal(addr, n, rootLvl)
			child, _ := layout.AsInternal(n).ChildFor(key)
			addr = child
			lvl--
			// This validated covering read vindicates the cached jump: the
			// entry steered correctly, so a failure deeper down is a fresh
			// race, not the entry's fault — it must be neither invalidated
			// nor returned as the steering handle.
			jumped = nil
		}
		if ok {
			return addr, jumped
		}
		root, rootLvl = h.refreshRoot()
		if jumped == nil {
			// The failure came from a fresh read, not a cache jump: the
			// next round may use the cache again (the refreshed root moved
			// the traversal past the race).
			useCache = true
		}
	}
}

// traverseToLeaf resolves the leaf-level address covering key by a
// (cache-resumed) descent; the returned entry, when non-nil, is the cached
// parent whose unvalidated child pointer the address is.
func (h *Handle) traverseToLeaf(key uint64) (rdma.Addr, *cache.Entry) {
	return h.descend(key, 0)
}

// locateLeaf resolves the leaf that should contain key. A level-1 cache hit
// is the speculative leaf-direct jump (§4.2.3): the leaf read is issued
// immediately from the cached parent, skipping the descent entirely; seek
// validates it and falls back through specFail when the speculation was
// stale. On a level-1 miss the descent still resumes at the deepest cached
// ancestor. The returned cache entry (nil on miss) lets the caller
// invalidate stale steering.
func (h *Handle) locateLeaf(key uint64) (rdma.Addr, *cache.Entry) {
	h.C.Step(h.tm.LocalStepNS)
	if e := h.cache.Lookup(key, 1); e != nil {
		h.Rec.CacheHits++
		h.Rec.CacheLevelHits[stats.CacheLevelIdx(1)]++
		h.Rec.SpecReads++
		child, _ := e.N.ChildFor(key)
		return child, e
	}
	h.Rec.CacheMisses++
	return h.traverseToLeaf(key)
}

// locateInternal finds the internal node at the target level covering key:
// a cache hit at exactly that level answers locally, anything else resumes
// the descent at the deepest cached ancestor.
func (h *Handle) locateInternal(key uint64, level uint8) (rdma.Addr, *cache.Entry) {
	if e := h.cache.Lookup(key, level); e != nil {
		h.Rec.CacheLevelHits[stats.CacheLevelIdx(level)]++
		return e.Addr, e
	}
	return h.descend(key, level)
}

// lockLeafForWrite locks and reads the leaf that must hold key, handling
// stale steering and B-link move-right under lock coupling (unlock current,
// lock sibling — Sherman holds at most one node lock at a time, §4.3 [52]).
func (h *Handle) lockLeafForWrite(key uint64) (rdma.Addr, hocl.Guard, layout.Leaf) {
	addr, ce := h.locateLeaf(key)
	r, _ := h.seek(key, 0, intentWrite, addr, ce, h.leafBuf, nil, nil)
	return r.addr, r.g, layout.AsLeaf(r.n)
}
