// Quickstart: bring up a simulated disaggregated-memory cluster, create a
// Sherman tree, and exercise the basic API — puts, gets, deletes, scans —
// from a few concurrent client threads.
package main

import (
	"fmt"
	"log"
	"sync"

	"sherman"
)

func main() {
	// A small cluster: 2 memory servers hosting the tree, 2 compute servers
	// running our client threads (the paper's testbed uses 8 + 8).
	cluster, err := sherman.NewCluster(sherman.ClusterConfig{
		MemoryServers:  2,
		ComputeServers: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	tree, err := cluster.CreateTree(sherman.DefaultTreeOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Bulkload a sorted initial dataset (keys 1..1000). Bulkload packs
	// leaves 80% full, like the paper's setup, leaving room for inserts.
	kvs := make([]sherman.KV, 1000)
	for i := range kvs {
		kvs[i] = sherman.KV{Key: uint64(i + 1), Value: uint64(i+1) * 10}
	}
	if err := tree.Bulkload(kvs); err != nil {
		log.Fatal(err)
	}

	// Single-session basics.
	s := tree.Session(0)
	if v, ok := s.Get(42); ok {
		fmt.Printf("Get(42)        = %d\n", v)
	}
	s.Put(42, 4242) // update in place
	s.Put(5000, 1)  // insert a new key
	if v, ok := s.Get(42); ok {
		fmt.Printf("after Put(42)  = %d\n", v)
	}
	if s.Delete(7) {
		fmt.Println("Delete(7)      = ok")
	}
	if _, ok := s.Get(7); !ok {
		fmt.Println("Get(7)         = not found (deleted)")
	}

	// Range scan: 5 pairs starting at key 40.
	fmt.Println("Scan(40, 5):")
	for _, kv := range s.Scan(40, 5) {
		fmt.Printf("  %4d -> %d\n", kv.Key, kv.Value)
	}

	// Iterating a longer range is easier with a Cursor, which refills
	// leaf-at-a-time under the hood instead of hand-rolled
	// resume-from-last-key loops.
	count, sum := 0, uint64(0)
	for cur := s.Cursor(900); ; {
		kv, ok := cur.Next()
		if !ok || kv.Key > 950 {
			break
		}
		count++
		sum += kv.Value
	}
	fmt.Printf("Cursor(900..950): %d rows, value sum %d\n", count, sum)

	// The async Op/Result API pipelines operations: a session opened with
	// PipelineDepth(4) keeps up to 4 operations in flight, overlapping
	// their round trips the way the paper's clients run multiple
	// coroutines per thread. Submit returns a Future; results are
	// observably equivalent to sequential execution (same-key operations
	// never reorder).
	ps, err := tree.SessionAt(0, sherman.PipelineDepth(4))
	if err != nil {
		log.Fatal(err)
	}
	var futures []*sherman.Future
	for i := uint64(0); i < 8; i++ {
		futures = append(futures, ps.Submit(sherman.PutOp(20_000+i, i*i)))
	}
	futures = append(futures, ps.Submit(sherman.GetOp(20_003))) // sees the put above
	for _, f := range futures {
		if r := f.Wait(); r.Err != nil {
			log.Fatal(r.Err)
		}
	}
	if r := futures[len(futures)-1].Wait(); r.Value != 9 {
		log.Fatalf("pipelined get = %d, want 9", r.Value)
	}
	ps.Flush()
	st := ps.Stats()
	fmt.Printf("pipelined session: %d ops, latency hiding %.1fx\n",
		st.PipelinedOps, st.LatencyHidingRatio)

	// Exec applies a mixed batch — puts, gets, deletes, scans in one call —
	// through the batch planner, with typed errors instead of panics.
	results := ps.Exec([]sherman.Op{
		sherman.PutOp(500, 1),
		sherman.GetOp(500),
		sherman.DeleteOp(501),
		sherman.PutOp(0, 1), // invalid: key 0 is reserved
	})
	fmt.Printf("Exec: get=%d deleted=%v err=%v\n",
		results[1].Value, results[2].Found, results[3].Err)

	// Concurrent sessions: one per goroutine, spread across both compute
	// servers. Sessions on the same tree coordinate through the index's own
	// RDMA locking, exactly as the paper's client threads do.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := tree.Session(w % cluster.ComputeServers())
			base := uint64(10_000 + w*1000)
			for i := uint64(0); i < 200; i++ {
				sess.Put(base+i, i)
			}
			for i := uint64(0); i < 200; i++ {
				if v, ok := sess.Get(base + i); !ok || v != i {
					log.Fatalf("worker %d: Get(%d) = %d,%v; want %d", w, base+i, v, ok, i)
				}
			}
		}(w)
	}
	wg.Wait()

	if err := tree.Validate(); err != nil {
		log.Fatalf("tree invariants violated: %v", err)
	}

	ls := tree.LockStats()
	fmt.Printf("\nconcurrent phase ok: 1600 inserts + 1600 lookups across 8 sessions\n")
	fmt.Printf("lock stats: %d acquisitions, %d handovers, %d failed remote CAS\n",
		ls.Acquisitions, ls.Handovers, ls.GlobalRetries)
	fmt.Printf("memory in use across MSs: %d MB\n", cluster.MemoryUsage()>>20)
}
