package bench

import (
	"fmt"
	"testing"

	"sherman/internal/core"
	"sherman/internal/workload"
)

// TestDiagFGCollapse inspects the FG+ baseline under full-scale skewed
// write-intensive load: hot-lock convoy depth, retry volume, atomic-unit
// utilization. Run with -run TestDiagFGCollapse -v.
func TestDiagFGCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	e := TreeExp{
		Name: "FG+", Keys: 2 << 20, ThreadsPerCS: 22,
		WarmupOps: 300, MeasureNS: 10_000_000,
		Mix: workload.WriteIntensive, Dist: workload.Zipfian,
		Tree: core.FGPlusConfig(),
	}
	r := RunTree(e)
	fmt.Printf("Mops=%.2f p50=%d p99=%d\n", r.Mops, r.P50, r.P99)
	fmt.Printf("grants=%d avgSpinnersAtGrant=%.1f\n", r.LockGrants,
		float64(r.LockGrantSpinners)/float64(max64(r.LockGrants, 1)))
	fmt.Printf("rt/write p50=%d p99=%d\n",
		r.Rec.WriteRoundTrips.PercentileValue(50), r.Rec.WriteRoundTrips.PercentileValue(99))
	fmt.Printf("lock stats: %+v maxWaiters=%d retries=%d acq=%d\n",
		r.Handovers, r.LockMaxWaiters, r.LockRetries, r.LockAcquisitions)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
