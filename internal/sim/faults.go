package sim

import (
	"fmt"
	"sync"
)

// Crash is the panic value raised when a client thread of a failed compute
// server touches the fabric. The one-sided design makes the *client* the unit
// of failure (no memory-server CPU participates in the data path), so a
// compute-server crash is modeled as every one of its threads aborting at its
// next fabric verb: verbs issued before the crash point are fully applied,
// the crashing verb and everything after it have no effect. Higher layers
// (the session API, the bench harness) recover the panic at the thread
// boundary and surface a typed error.
type Crash struct {
	// CS is the failed compute server.
	CS int
}

// Error makes a Crash usable as an error value after recovery.
func (c Crash) Error() string { return fmt.Sprintf("sim: compute server %d crashed", c.CS) }

// IsCrash reports whether a recovered panic value is a compute-server crash.
func IsCrash(v any) (Crash, bool) {
	c, ok := v.(Crash)
	return c, ok
}

// Faults is the deterministic fault injector of one fabric. All client
// threads consult it at every fabric verb; faults are armed by verb index or
// by virtual time, so a given schedule reproduces exactly on a
// single-threaded victim (and up to goroutine interleaving on a
// multi-threaded one).
//
// The zero-cost path (no fault armed, CS alive) is a single atomic-free
// mutex-guarded counter bump per verb; the simulator's verbs already
// serialize on resource mutexes far hotter than this one.
type Faults struct {
	mu        sync.Mutex
	cs        []csFault
	onDeath   []func(cs int, deathV int64)
	onRestart []func(cs int)

	// lifecycle serializes a death (flag + listener sweep) against
	// restarts: without it, a restart racing an in-flight death sweep
	// could revive the server — and admit new-incarnation lock holders —
	// while the sweep is still orphaning slots it attributes to the dead
	// incarnation, letting it steal a live holder's lock.
	lifecycle sync.Mutex
}

// csFault is the fault state of one compute server.
type csFault struct {
	verbs     int64 // fabric verbs issued by this CS since creation
	killAtN   int64 // kill when verbs reaches this count (0 = disarmed)
	killAtV   int64 // kill at the first verb at/after this virtual time (0 = disarmed)
	dead      bool
	deathV    int64 // lease anchor: latest virtual time the CS could have issued a verb
	epoch     int64 // bumped by Restart; clients of older epochs stay dead
	degradeNS int64 // extra per-verb issue delay (degraded NIC)
	healAtV   int64 // partition: verbs before this virtual time stall until it
}

// NewFaults creates the injector for numCS compute servers, with no faults
// armed.
func NewFaults(numCS int) *Faults {
	return &Faults{cs: make([]csFault, numCS)}
}

// OnDeath registers a listener invoked synchronously (on the crashing
// thread, before it unwinds) when a compute server dies. Lock managers use
// it to mark orphaned lock slots and wake doomed waiters.
func (f *Faults) OnDeath(fn func(cs int, deathV int64)) {
	f.mu.Lock()
	f.onDeath = append(f.onDeath, fn)
	f.mu.Unlock()
}

// OnRestart registers a listener invoked when a compute server restarts.
func (f *Faults) OnRestart(fn func(cs int)) {
	f.mu.Lock()
	f.onRestart = append(f.onRestart, fn)
	f.mu.Unlock()
}

// KillAtVerb arms a crash at the CS's n-th fabric verb counted from now
// (n >= 1: the very next verb). The property tests sweep n across every verb
// of an operation.
func (f *Faults) KillAtVerb(cs int, n int64) {
	f.mu.Lock()
	f.cs[cs].killAtN = f.cs[cs].verbs + n
	f.mu.Unlock()
}

// KillAtTime arms a crash at the CS's first fabric verb at or after virtual
// time v. The fault benchmark uses it to land kills mid-window.
func (f *Faults) KillAtTime(cs int, v int64) {
	f.mu.Lock()
	f.cs[cs].killAtV = v
	f.mu.Unlock()
}

// Kill fails the CS immediately: its threads abort at their next fabric
// verb. nowV seeds the lease anchor (use the caller's best bound on the CS's
// clocks; the injector keeps the max of it and every verb time it has seen).
// Kill returns only after the death listeners (the lock managers' orphan
// sweeps) have completed.
func (f *Faults) Kill(cs int, nowV int64) {
	f.kill(cs, -1, nowV)
}

// kill marks the CS dead and runs the death listeners under the lifecycle
// lock. epoch >= 0 restricts the kill to that incarnation (armed kills must
// not fire on a restarted server they raced); -1 kills unconditionally.
func (f *Faults) kill(cs int, epoch int64, nowV int64) {
	f.lifecycle.Lock()
	defer f.lifecycle.Unlock()
	f.mu.Lock()
	s := &f.cs[cs]
	if s.dead || (epoch >= 0 && s.epoch != epoch) {
		f.mu.Unlock()
		return
	}
	s.dead = true
	s.killAtN, s.killAtV = 0, 0
	if nowV > s.deathV {
		s.deathV = nowV
	}
	deathV := s.deathV
	listeners := f.onDeath // header copy; registration appends never mutate it
	f.mu.Unlock()
	for _, fn := range listeners {
		fn(cs, deathV)
	}
}

// Restart revives the CS under a new epoch. Clients created before the
// restart stay dead (their epoch no longer matches); the caller creates
// fresh ones. Restart listeners (lock managers resetting the CS's local
// tables) run synchronously, and the lifecycle lock orders the whole
// restart after any in-flight death sweep — no new-incarnation client can
// acquire anything while a sweep still attributes the server's locks to
// the dead incarnation.
func (f *Faults) Restart(cs int) {
	f.lifecycle.Lock()
	defer f.lifecycle.Unlock()
	f.mu.Lock()
	s := &f.cs[cs]
	s.dead = false
	s.deathV = 0
	s.killAtN, s.killAtV = 0, 0
	s.degradeNS, s.healAtV = 0, 0
	s.epoch++
	listeners := f.onRestart // header copy
	f.mu.Unlock()
	for _, fn := range listeners {
		fn(cs)
	}
}

// Degrade adds extraNS of issue delay to every subsequent verb of the CS — a
// NIC running hot or a flaky link retransmitting.
func (f *Faults) Degrade(cs int, extraNS int64) {
	f.mu.Lock()
	f.cs[cs].degradeNS = extraNS
	f.mu.Unlock()
}

// Partition stalls every verb the CS issues before virtual time healV until
// that time — a transient network partition that heals.
func (f *Faults) Partition(cs int, healV int64) {
	f.mu.Lock()
	f.cs[cs].healAtV = healV
	f.mu.Unlock()
}

// Epoch returns the CS's current incarnation.
func (f *Faults) Epoch(cs int) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cs[cs].epoch
}

// Dead reports whether the CS is currently failed.
func (f *Faults) Dead(cs int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cs[cs].dead
}

// DeathTime returns the failed CS's lease anchor — the latest virtual time
// at which it could have issued a verb (0 if alive).
func (f *Faults) DeathTime(cs int) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.cs[cs].dead {
		return 0
	}
	return f.cs[cs].deathV
}

// Alive reports whether a client of the given epoch on cs may issue verbs.
func (f *Faults) Alive(cs int, epoch int64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := &f.cs[cs]
	return !s.dead && s.epoch == epoch
}

// Verbs returns the CS's fabric-verb count (for arming verb-indexed kills
// relative to the present).
func (f *Faults) Verbs(cs int) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cs[cs].verbs
}

// LatestVerbV returns the latest virtual time any compute server has
// issued a verb at — a cluster-wide clock bound. Recovery anchors fresh
// client clocks here so measured recovery latency excludes catch-up
// through prior virtual activity.
func (f *Faults) LatestVerbV() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var max int64
	for i := range f.cs {
		if f.cs[i].deathV > max {
			max = f.cs[i].deathV
		}
	}
	return max
}

// OnVerb accounts one fabric verb issued by a client of the given epoch at
// virtual time nowV. It returns the virtual time the verb may start (>= nowV
// under partition) plus any degradation delay; ok=false means the client is
// dead (stale epoch, killed, or this very verb triggered an armed kill) and
// must abort by panicking with Crash — the verb has no effect.
func (f *Faults) OnVerb(cs int, epoch int64, nowV int64) (startV, delayNS int64, ok bool) {
	f.mu.Lock()
	s := &f.cs[cs]
	if s.dead || s.epoch != epoch {
		f.mu.Unlock()
		return 0, 0, false
	}
	s.verbs++
	if nowV > s.deathV {
		s.deathV = nowV // track the lease anchor while alive
	}
	if (s.killAtN != 0 && s.verbs >= s.killAtN) || (s.killAtV != 0 && nowV >= s.killAtV) {
		f.mu.Unlock()
		// The sweep runs under the lifecycle lock, pinned to this
		// incarnation (a racing Restart makes it a no-op; the thread still
		// aborts — its epoch is stale either way).
		f.kill(cs, epoch, nowV)
		return 0, 0, false
	}
	startV = nowV
	if s.healAtV > startV {
		startV = s.healAtV
	}
	delayNS = s.degradeNS
	f.mu.Unlock()
	return startV, delayNS, true
}
