package main

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"sherman"
	"sherman/internal/bench"
)

// runTCPDifferential is the -exp tcp smoke: it launches two real shermand
// memory-server processes, runs the same deterministic operation stream
// through a tree over the TCP transport at pipeline depths 1 and 4, and
// checks every result against an in-memory oracle. Any mismatch is an
// error — the gate that the Transport redesign carried the protocol onto a
// real network intact.
func runTCPDifferential() (*bench.Table, error) {
	const (
		opsPerDepth = 10_000
		keySpace    = 4096
		preload     = 512
		batch       = 8
		scanSpan    = 16
	)

	c, err := sherman.NewCluster(sherman.ClusterConfig{
		MemoryServers:  2,
		ComputeServers: 2,
		Transport:      sherman.TransportTCP,
	})
	if err != nil {
		return nil, fmt.Errorf("tcp differential: %w", err)
	}
	defer c.Close()
	tree, err := c.CreateTree(sherman.TreeOptions{})
	if err != nil {
		return nil, err
	}

	oracle := make(map[uint64]uint64, keySpace)
	var kvs []sherman.KV
	for k := uint64(1); k <= preload; k++ {
		v := k * 11
		kvs = append(kvs, sherman.KV{Key: k, Value: v})
		oracle[k] = v
	}
	if err := tree.Bulkload(kvs); err != nil {
		return nil, err
	}

	t := bench.NewTable("TCP differential: tree over 2 shermand processes vs oracle",
		"depth", "ops", "mismatches", "RT/op", "wall")
	rng := rand.New(rand.NewSource(42))
	for _, depth := range []int{1, 4} {
		sess, err := tree.SessionAt(depth%c.ComputeServers(), sherman.PipelineDepth(depth))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		mismatches := 0
		for done := 0; done < opsPerDepth; done += batch {
			ops := make([]sherman.Op, 0, batch)
			for len(ops) < batch && done+len(ops) < opsPerDepth {
				key := uint64(rng.Intn(keySpace)) + 1
				switch r := rng.Intn(100); {
				case r < 45:
					ops = append(ops, sherman.PutOp(key, rng.Uint64()|1))
				case r < 75:
					ops = append(ops, sherman.GetOp(key))
				case r < 90:
					ops = append(ops, sherman.DeleteOp(key))
				default:
					ops = append(ops, sherman.ScanOp(key, scanSpan))
				}
			}
			results := sess.Exec(ops)
			for i, op := range ops {
				if err := results[i].Err; err != nil {
					return nil, fmt.Errorf("tcp differential: depth %d op %d: %w", depth, done+i, err)
				}
				if !oracleCheck(oracle, op, results[i], scanSpan) {
					mismatches++
				}
			}
		}
		if err := sess.Flush(); err != nil {
			return nil, err
		}
		st := sess.Stats()
		t.Addf(depth, opsPerDepth, mismatches,
			fmt.Sprintf("%.1f", float64(st.RoundTrips)/float64(opsPerDepth)),
			time.Since(start).Round(time.Millisecond))
		if mismatches > 0 {
			return t, fmt.Errorf("tcp differential: %d mismatches at depth %d", mismatches, depth)
		}
	}
	t.Note("10k ops per depth, zero mismatches required; servers are real OS processes on loopback")
	return t, nil
}

// oracleCheck applies op to the oracle map and reports whether the tree's
// result agrees.
func oracleCheck(oracle map[uint64]uint64, op sherman.Op, res sherman.Result, scanSpan int) bool {
	switch op.Kind {
	case sherman.OpPut:
		oracle[op.Key] = op.Value
		return true
	case sherman.OpGet:
		v, ok := oracle[op.Key]
		return res.Found == ok && (!ok || res.Value == v)
	case sherman.OpDelete:
		_, ok := oracle[op.Key]
		delete(oracle, op.Key)
		return res.Found == ok
	case sherman.OpScan:
		var keys []uint64
		for k := range oracle {
			if k >= op.Key {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		if len(keys) > scanSpan {
			keys = keys[:scanSpan]
		}
		if len(res.KVs) != len(keys) {
			return false
		}
		for i, k := range keys {
			if res.KVs[i].Key != k || res.KVs[i].Value != oracle[k] {
				return false
			}
		}
		return true
	}
	return false
}
