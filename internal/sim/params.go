// Package sim provides the virtual-time core of the disaggregated-memory
// simulator: calibrated timing parameters, contended hardware resources, and
// per-thread virtual clocks.
//
// Client threads are ordinary goroutines that really execute operations
// against shared simulated memory; sim only accounts for *when* those
// operations would complete on the paper's hardware (100 Gbps ConnectX-5
// RDMA NICs). Each contended hardware unit — a NIC's inbound processing
// pipeline, an in-NIC atomic bucket, a memory server's wimpy CPU — is a
// Resource whose logical clock advances as threads charge service time to
// it. Queueing delay under contention emerges from the max() in
// Resource.Acquire rather than from an event queue, which lets the simulator
// run at full native speed with real Go concurrency.
package sim

// Params holds the calibrated timing constants of the simulated fabric. The
// defaults model the paper's testbed: 100 Gbps Mellanox ConnectX-5 NICs with
// ~2 microsecond one-sided round trips (SIGMOD'22 §5.1.1, Figures 2 and 3).
type Params struct {
	// RTTNS is the base network round-trip time for a one-sided verb, in
	// virtual nanoseconds. The paper reports <= 2 us for commodity NICs.
	RTTNS int64

	// InboundMinNS is the per-command processing floor at the receiving
	// (memory-server) NIC. Together with NSPerByte it reproduces Figure 3:
	// RDMA_WRITE throughput is IOPS-bound (~100 Mops) below ~128 B and
	// bandwidth-bound above.
	InboundMinNS int64

	// OutboundMinNS is the per-command processing floor at the sending
	// (compute-server) NIC. Outbound IOPS is lower than inbound on
	// ConnectX-5 (~60 Mops), per Figure 3.
	OutboundMinNS int64

	// NSPerByte is the wire/DMA cost per payload byte. 100 Gbps = 12.5 GB/s
	// = 0.08 ns per byte.
	NSPerByte float64

	// HostAtomicNS is the conflict service time of one RDMA_ATOMIC command
	// whose target lives in host memory. Each such command performs two
	// PCIe transactions inside the NIC (§3.2.2), serialized per atomic
	// bucket, capping a hot bucket near 2 Mops.
	HostAtomicNS int64

	// OnChipAtomicNS is the per-bucket conflict service time of one
	// RDMA_ATOMIC command whose target lives in NIC on-chip device memory:
	// no PCIe transactions, so conflicting commands still serialize but
	// roughly 5x faster (§4.3).
	OnChipAtomicNS int64

	// HostAtomicUnitNS is the per-command occupancy of the NIC's shared
	// atomic processing pipeline for host-memory targets. Non-conflicting
	// host atomics pipeline their PCIe transactions, so a ConnectX-5
	// sustains tens of Mops in aggregate; the pipeline still bounds the
	// total, so a hot-lock retry storm steals capacity from unrelated
	// locks on the same memory server (§3.2.2).
	HostAtomicUnitNS int64

	// OnChipAtomicUnitNS is the pipeline occupancy for on-chip targets:
	// with no PCIe transactions the NIC sustains ~110 Mops in aggregate
	// (§4.3).
	OnChipAtomicUnitNS int64

	// AtomicBuckets is the number of internal NIC buckets used for atomic
	// concurrency control; commands whose destination addresses share the
	// bucket bits serialize (§3.2.2; the paper cites e.g. 4096 buckets keyed
	// by the 12 LSBs).
	AtomicBuckets int

	// OnChipMemBytes is the device-memory capacity exposed by each NIC
	// (256 KB on ConnectX-5, §4.3).
	OnChipMemBytes int

	// MemThreadRPCNS is the memory-server-side service time of one chunk
	// allocation RPC handled by the wimpy memory thread (§4.2.4).
	MemThreadRPCNS int64

	// LocalStepNS approximates one CS-local compute step (searching a cached
	// node, scanning a fetched node, etc.).
	LocalStepNS int64

	// LocalSpinNS is the virtual cost of one failed local-lock polling
	// iteration inside a compute server.
	LocalSpinNS int64

	// WraparoundGuardNS is the read-duration threshold above which a
	// lock-free read must be retried because 4-bit versions may have wrapped
	// (§4.4: 8 us = 2^4 x 0.5 us).
	WraparoundGuardNS int64

	// PipelineIssueNS is the client-side cost of issuing one pipelined
	// operation: posting its first work request and switching to the next
	// logical coroutine. It is what a pipelined client still pays per
	// operation after latency hiding removes the round trips, and it bounds
	// the throughput a single thread can reach at large pipeline depths.
	// Synchronous (depth-1) clients never pay it.
	PipelineIssueNS int64

	// LeaseNS is the liveness-lease duration of a compute server: a lock
	// whose holder has been dead for LeaseNS may be reclaimed by a survivor
	// (CAS from the dead holder's stamp). It must exceed the worker-clock
	// skew bound (the bench gate's slack x window) so a straggling thread of
	// a dying CS can never issue a verb after a survivor has reclaimed one
	// of its locks.
	LeaseNS int64
}

// DefaultParams returns the fabric parameters calibrated to the paper's
// testbed (§5.1.1 and the microbenchmarks in Figures 2 and 3).
func DefaultParams() Params {
	return Params{
		RTTNS:              2000,
		InboundMinNS:       10,
		OutboundMinNS:      16,
		NSPerByte:          0.08,
		HostAtomicNS:       500,
		OnChipAtomicNS:     100,
		HostAtomicUnitNS:   20, // ~50 Mops aggregate host atomics per NIC (ConnectX-5)
		OnChipAtomicUnitNS: 9,  // ~110 Mops aggregate on-chip atomics (§4.3)
		AtomicBuckets:      4096,
		OnChipMemBytes:     256 << 10,
		MemThreadRPCNS:     2000,
		LocalStepNS:        50,
		LocalSpinNS:        100,
		WraparoundGuardNS:  8000,
		PipelineIssueNS:    150,    // post WR + coroutine switch, well under one RTT
		LeaseNS:            50_000, // > bench gate skew (2 x 20 us), << measurement windows
	}
}

// PayloadNS returns the size-dependent service time of moving n payload
// bytes through a NIC with the given per-command floor.
func (p Params) PayloadNS(n int, floor int64) int64 {
	t := int64(float64(n) * p.NSPerByte)
	if t < floor {
		return floor
	}
	return t
}

// Validate reports whether the parameters are internally consistent.
func (p Params) Validate() error {
	switch {
	case p.RTTNS <= 0:
		return errParam("RTTNS must be positive")
	case p.NSPerByte <= 0:
		return errParam("NSPerByte must be positive")
	case p.AtomicBuckets <= 0:
		return errParam("AtomicBuckets must be positive")
	case p.OnChipMemBytes <= 0:
		return errParam("OnChipMemBytes must be positive")
	case p.HostAtomicNS < p.OnChipAtomicNS:
		return errParam("HostAtomicNS must be >= OnChipAtomicNS (PCIe cost)")
	case p.HostAtomicUnitNS < p.OnChipAtomicUnitNS:
		return errParam("HostAtomicUnitNS must be >= OnChipAtomicUnitNS (PCIe cost)")
	case p.LeaseNS < 0:
		return errParam("LeaseNS must be non-negative")
	}
	return nil
}

type errParam string

func (e errParam) Error() string { return "sim: invalid params: " + string(e) }
