package rdma

import (
	"fmt"
	"sync/atomic"

	"sherman/internal/sim"
)

// Fabric wires a set of memory servers and compute servers together over a
// simulated RDMA network with the timing model in sim.Params.
type Fabric struct {
	P       sim.Params
	Servers []*Server
	CSs     []*ComputeServer

	// Faults is the fabric's deterministic fault injector. Every verb of
	// every client consults it; a dead compute server's clients abort with
	// sim.Crash at their next verb.
	Faults *sim.Faults

	clients atomic.Int64
}

// ClientCount returns the number of client threads created on the fabric —
// the physical bound on how many commands can be in flight from distinct
// spinners at once.
func (f *Fabric) ClientCount() int { return int(f.clients.Load()) }

// ComputeServer is one compute node: many client threads, a local cache and
// lock tables (owned by higher layers), and an RDMA NIC whose outbound
// pipeline is shared by all of its threads.
type ComputeServer struct {
	// ID identifies the compute server; it is also the value written into
	// global locks by RDMA_CAS (§4.3), offset by one so that 0 can mean
	// "unlocked".
	ID uint16

	// Outbound models the NIC's outbound command-processing pipeline.
	Outbound sim.Resource
}

// NewFabric builds a fabric with numMS memory servers and numCS compute
// servers. Params are validated once here.
func NewFabric(p sim.Params, numMS, numCS int) *Fabric {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if numMS <= 0 || numCS <= 0 {
		panic(fmt.Sprintf("rdma: need at least one MS and one CS (got %d, %d)", numMS, numCS))
	}
	f := &Fabric{P: p, Faults: sim.NewFaults(numCS)}
	for i := 0; i < numMS; i++ {
		f.Servers = append(f.Servers, newServer(uint16(i), p))
	}
	for i := 0; i < numCS; i++ {
		f.CSs = append(f.CSs, &ComputeServer{ID: uint16(i)})
	}
	return f
}

// Server returns the memory server addressed by a.
func (f *Fabric) Server(a Addr) *Server {
	ms := a.MS()
	if int(ms) >= len(f.Servers) {
		panic(fmt.Sprintf("rdma: address %v names unknown memory server", a))
	}
	return f.Servers[ms]
}

// ResetTime rewinds every resource clock in the fabric to zero. Call only
// between experiments, with no client threads running.
func (f *Fabric) ResetTime() {
	for _, s := range f.Servers {
		s.ResetTime()
	}
	for _, cs := range f.CSs {
		cs.Outbound.Reset()
	}
}
