package core

import (
	"cmp"
	"slices"

	"sherman/internal/hocl"
	"sherman/internal/layout"
	"sherman/internal/rdma"
	"sherman/internal/stats"
)

// This file is the mixed-operation batch planner on top of the shared
// node-I/O layer (nodeio.go). Exec takes one stream of Ops — lookups,
// inserts, deletes and scans interleaved — sorts the point operations of
// each scan-delimited segment by key (stable, so same-key operations keep
// submission order), and walks the resulting leaf groups: consecutive
// operations covered by one leaf share one traversal and, when any of them
// writes, one lock acquisition and one combined write-backs+release
// doorbell (§4.5), where sequential execution pays a traversal, a lock and
// a doorbell per operation. Read-only groups are served from a single
// lock-free validated read, exactly like the sequential lookup path. When
// the right sibling's lock hashes onto the very GLT slot the executor
// already holds, the guard is reused across the leaf boundary (hocl.
// SameSlot). The per-kind batch entry points (InsertBatch, LookupBatch,
// DeleteBatch) are thin wrappers over Exec.
//
// Equivalence argument: operations on different keys commute for both final
// state and per-op results, and operations on the same key land adjacently
// in the stable sort, still in submission order — a lookup sees exactly the
// writes submitted before it. Scans are not reordered: each executes at its
// position between fully-applied point segments.

// planOp pairs one planned point operation with its position in the
// caller's slice so results map back to submission order.
type planOp struct {
	kind       stats.OpKind
	key, value uint64
	pos        int
}

// sortPlanOps orders ops by key, stable in submission order, so the
// executor visits each leaf exactly once per segment and same-key
// operations apply in the order the caller issued them (last Put wins,
// lookups see prior writes — like the sequential path). slices.
// SortStableFunc sorts in place (block-swap symmerge), where sort.
// SliceStable paid a reflection-built swapper allocation per call — the
// single largest allocation source of the batch hot path.
func sortPlanOps(ops []planOp) {
	slices.SortStableFunc(ops, func(a, b planOp) int { return cmp.Compare(a.key, b.key) })
}

// leafCovers reports whether key falls inside the node's fence range.
func leafCovers(n layout.Node, key uint64) bool {
	return key >= n.LowerFence() && (n.UpperFence() == layout.NoUpperBound || key < n.UpperFence())
}

// pace yields to the harness's clock gate between leaf groups (no lock is
// held at these points, so blocking in real time is safe).
func (h *Handle) pace() {
	if h.Pace != nil {
		h.Pace(h.C.Now())
	}
}

// appendCopiedWrite queues one write-back with a private copy of data:
// batch executors defer their writes until the group's single doorbell
// post, by which time the shared node buffer may hold a different node. The
// copy lives in the handle's arena — valid until the next operation resets
// it, which is after the group's doorbell flushed.
func (h *Handle) appendCopiedWrite(ops []rdma.WriteOp, a rdma.Addr, data []byte) []rdma.WriteOp {
	cp := h.arena.bytes(len(data))
	copy(cp, data)
	return append(ops, rdma.WriteOp{Addr: a, Data: cp})
}

// opCounts tallies ops per kind, excluding scans (which record
// individually), and returns the point-op total.
func opCounts(ops []Op) (counts [stats.NumOpKinds]int64, points int64) {
	for _, op := range ops {
		if op.Kind != stats.OpRange {
			counts[op.Kind]++
			points++
		}
	}
	return counts, points
}

// Exec applies a mixed batch of operations, observably equivalent to
// executing them sequentially in submission order, and returns one result
// per operation. Point operations sharing a leaf share one traversal, one
// lock acquisition (when any writes) and one combined doorbell. Key 0 is
// reserved for inserts and deletes and panics; callers wanting typed errors
// validate first (the session layer does).
func (h *Handle) Exec(ops []Op) []OpResult {
	if len(ops) == 0 {
		return nil
	}
	results := make([]OpResult, len(ops))
	h.ExecInto(ops, results)
	return results
}

// ExecInto is Exec writing its results into the caller's slice (len must
// equal len(ops)) — the allocation-free variant for callers that recycle a
// results buffer across batches.
func (h *Handle) ExecInto(ops []Op, results []OpResult) {
	if len(ops) == 0 {
		return
	}
	if len(results) != len(ops) {
		panic("core: ExecInto results length mismatch")
	}
	clear(results) // a recycled buffer must not leak stale slots (not-found lookups never write theirs)
	h.m.BeginOp()
	t0 := h.C.Now()
	scanNS := h.execOps(ops, nil, results)
	if counts, points := opCounts(ops); points > 0 {
		// Scans record their own latency in execScan; exclude their time
		// from the window amortized over the point operations.
		lat := h.C.Now() - t0 - scanNS
		if lat < 0 {
			lat = 0
		}
		h.Rec.RecordMixedBatch(counts, lat, h.m.OpRoundTrips)
	}
}

// execOps drives the planned walk and returns the virtual time the stream's
// scans consumed (so callers can exclude it from point-op accounting). When
// a is non-nil each unit — a leaf group or a scan — runs on one of the
// async executor's lane timelines, so units' round trips overlap; with a
// nil executor everything runs on the handle's own clock.
func (h *Handle) execOps(ops []Op, a *Async, results []OpResult) (scanNS int64) {
	i := 0
	for i < len(ops) {
		if ops[i].Kind == stats.OpRange {
			scanNS += h.execScan(a, ops[i], &results[i])
			i++
			continue
		}
		// One scan-delimited segment of point operations: the planner may
		// reorder across keys but a scan must observe exactly the writes
		// submitted before it, so segments never span a scan.
		j := i
		for j < len(ops) && ops[j].Kind != stats.OpRange {
			j++
		}
		seg := h.seg[:0]
		for k := i; k < j; k++ {
			op := ops[k]
			if op.Kind != stats.OpLookup && op.Key == 0 {
				panic("core: key 0 is reserved")
			}
			seg = append(seg, planOp{kind: op.Kind, key: op.Key, value: op.Value, pos: k})
		}
		h.seg = seg[:0] // retain growth; consumed before the next segment
		sortPlanOps(seg)
		h.execSegment(a, seg, results)
		i = j
	}
	return scanNS
}

// execScan runs one range query at its position in the stream, returning
// the virtual time it consumed.
func (h *Handle) execScan(a *Async, op Op, res *OpResult) int64 {
	if op.Span <= 0 {
		return 0
	}
	h.ex.op, h.ex.res = op, res
	if a != nil {
		a.scanUnit(h.ex.scanFn)
	} else {
		h.execScanBody()
	}
	h.ex.res = nil // don't pin the caller's results past the unit
	return h.ex.elapsed
}

// execScanBody is the scan unit framed by h.ex (bound once as h.ex.scanFn).
func (h *Handle) execScanBody() {
	t0 := h.C.Now()
	h.ex.res.KVs = h.rangeInner(h.ex.op.Key, h.ex.op.Span)
	h.ex.elapsed = h.C.Now() - t0
	h.Rec.RecordOp(stats.OpRange, h.ex.elapsed)
}

// execSegment walks one sorted point-op segment leaf group by leaf group. A
// group led by a lookup is served lock-free; a group led by a write locks
// the leaf and consumes every covered operation of any kind, lookups
// included (they read the locked image, which already reflects the group's
// earlier writes). When a read group stops at a covered write (same leaf),
// the following write unit is floored at the read unit's completion — a
// real pipelined client must not let the write's round trips complete
// under a read of the leaf it clobbers.
func (h *Handle) execSegment(a *Async, ops []planOp, results []OpResult) {
	i := 0
	var readDone int64
	for i < len(ops) {
		h.pace()
		if ops[i].kind == stats.OpLookup {
			i, readDone = h.execReadGroup(a, ops, i, results)
		} else {
			i = h.execWriteGroup(a, ops, i, results, readDone)
			readDone = 0
		}
	}
}

// execReadGroup serves consecutive lookups from one lock-free validated
// leaf read, stopping at the leaf's fence or at the first write operation
// (which starts a locked group on the same leaf, so a lookup sorted after
// a same-key write still observes it). Returns the index of the first
// unconsumed op and, when the group stopped at a covered write, the read
// unit's completion horizon (the floor for that write's unit).
func (h *Handle) execReadGroup(a *Async, ops []planOp, start int, results []OpResult) (int, int64) {
	h.ex.ops, h.ex.results, h.ex.i = ops, results, start
	h.ex.sameLeafWrite = false
	var done int64
	if a == nil {
		h.execReadGroupBody()
	} else {
		done = a.readUnit(h.ex.readFn)
	}
	if !h.ex.sameLeafWrite {
		done = 0
	}
	h.ex.ops, h.ex.results = nil, nil
	return h.ex.i, done
}

// execReadGroupBody is the read unit framed by h.ex (bound once as
// h.ex.readFn).
func (h *Handle) execReadGroupBody() {
	ops, results, i := h.ex.ops, h.ex.results, h.ex.i
	retries := 0
	addr, ce := h.locateLeaf(ops[i].key)
	r, ok := h.seek(ops[i].key, 0, intentRead, addr, ce, h.leafBuf, &retries, nil)
	if !ok {
		h.Rec.ReadRetries.Record(retries)
		h.ex.i = i + 1 // ran off the right edge: the key cannot exist
		return
	}
	h.Rec.BatchLeafGroups++
	leaf := layout.AsLeaf(r.n)
	h.C.Step(h.tm.LocalStepNS) // scan the (unsorted) leaf locally

	// Keys whose entry-level check fails re-read via the sequential
	// path (§4.4) — after the group (the walk shares one leaf buffer),
	// but before any later group may write to their keys.
	var torn []planOp
	for i < len(ops) && ops[i].kind == stats.OpLookup && leafCovers(r.n, ops[i].key) {
		op := ops[i]
		if slot, hit := leaf.Find(op.key); hit {
			if h.t.cfg.Format.Mode == layout.TwoLevel && !leaf.EntryConsistent(slot) {
				torn = append(torn, op)
			} else {
				results[op.pos] = OpResult{Value: leaf.Value(slot), Found: true}
			}
		}
		// Every lookup the group serves shares its validated read, so
		// each records the group's retry count — keeping the per-lookup
		// retry distribution (Figure 14a) comparable to the sequential
		// path. Torn entries record again via their lookupInner re-read.
		h.Rec.ReadRetries.Record(retries)
		i++
	}
	// Evaluated before the torn re-reads below clobber the shared
	// leaf buffer r.n views.
	h.ex.sameLeafWrite = i < len(ops) && leafCovers(r.n, ops[i].key)
	h.ex.i = i
	for _, op := range torn {
		v, found := h.lookupInner(op.key)
		results[op.pos] = OpResult{Value: v, Found: found}
	}
}

// execWriteGroup locks the leaf covering ops[start] and applies every
// consecutive covered operation — inserts and deletes mutate the locked
// image and queue entry write-backs, lookups read it — then releases with
// one combined write-backs+release doorbell. The group chains into aliased
// siblings where the lock slot allows, and ends early when a split consumes
// the guard. floor, when nonzero, bounds how early the unit may start on a
// lane timeline (a preceding read unit of the same leaf). Returns the
// index of the first unconsumed op.
func (h *Handle) execWriteGroup(a *Async, ops []planOp, start int, results []OpResult, floor int64) int {
	h.ex.ops, h.ex.results, h.ex.start = ops, results, start
	if a != nil {
		a.writeUnit(floor, h.ex.writeFn)
	} else {
		h.execWriteGroupBody()
	}
	h.ex.ops, h.ex.results = nil, nil
	return h.ex.i
}

// execWriteGroupBody is the locked write unit framed by h.ex (bound once as
// h.ex.writeFn).
func (h *Handle) execWriteGroupBody() {
	f := h.t.cfg.Format
	ops, results, start := h.ex.ops, h.ex.results, h.ex.start
	var i int
redo:
	h.arena.reset()
	i = start
	{
		addr, g, leaf := h.lockLeafForWrite(ops[i].key)
		h.Rec.BatchLeafGroups++
		pending := h.takeWops()
	group:
		for {
			h.C.Step(h.tm.LocalStepNS)
			dirty := false
			for i < len(ops) && leafCovers(leaf.Node, ops[i].key) {
				op := ops[i]
				split := false
				switch op.kind {
				case stats.OpLookup:
					// Served from the locked image: exclusion means no torn
					// entries, and the image reflects the group's earlier
					// writes, preserving submission order on the key.
					if slot, hit := leaf.Find(op.key); hit {
						results[op.pos] = OpResult{Value: leaf.Value(slot), Found: true}
					}
				case stats.OpDelete:
					if f.Mode == layout.TwoLevel {
						if slot, hit := leaf.Find(op.key); hit {
							leaf.ClearEntry(slot)
							off, sz := leaf.EntrySpan(slot)
							pending = h.appendCopiedWrite(pending, addr.Add(uint64(off)), leaf.B[off:off+sz])
							results[op.pos].Found = true
						}
					} else if leaf.DeleteSorted(op.key) {
						results[op.pos].Found = true
						dirty = true
					}
				case stats.OpInsert:
					// A full leaf splits: the split writes whole nodes,
					// carrying every entry already applied to the local
					// image, and earlier queued writes ride along in the
					// same doorbell ahead of the split's write-backs.
					if f.Mode == layout.TwoLevel {
						slot, found := leaf.Find(op.key)
						if !found {
							slot = leaf.FindFree()
						}
						if found || slot >= 0 {
							leaf.SetEntry(slot, op.key, op.value)
							off, sz := leaf.EntrySpan(slot)
							pending = h.appendCopiedWrite(pending, addr.Add(uint64(off)), leaf.B[off:off+sz])
						} else {
							h.splitLeaf(addr, g, leaf, op.key, op.value, pending)
							split = true
						}
					} else if leaf.InsertSorted(op.key, op.value) {
						dirty = true
					} else {
						h.splitLeaf(addr, g, leaf, op.key, op.value, pending)
						split = true
					}
				}
				i++
				if split {
					break group // the split released the guard
				}
			}
			if f.Mode == layout.Checksum && dirty {
				leaf.UpdateChecksum()
				pending = h.appendCopiedWrite(pending, addr, leaf.B)
			}
			if i < len(ops) {
				if sib, sibLeaf, ok := h.chainToSibling(g, leaf, ops[i].key); ok {
					addr, leaf = sib, sibLeaf
					continue group
				}
			}
			pending = growForRelease(pending)
			h.unlockWrite(g, pending)
			h.keepWops(pending)
			break
		}
		if h.takeRedo() {
			// A failover swallowed the group's doorbell (or a split's): no
			// write became durable and nothing acked, so re-run the whole
			// group against the promoted chunk; results recompute identically.
			goto redo
		}
	}
	h.ex.i = i
}

// chainToSibling attempts to continue a locked group into the right sibling
// without releasing the guard: possible when the next operation's key lives
// in the sibling and the sibling's lock hashes onto the GLT slot the guard
// already holds (§4.3's table hashing aliases distinct nodes, and a held
// slot excludes writers from every node it covers). The sibling is read
// into the shared leaf buffer, so the caller's queued writes must already
// be private copies — appendCopiedWrite guarantees that.
func (h *Handle) chainToSibling(g hocl.Guard, leaf layout.Leaf, nextKey uint64) (rdma.Addr, layout.Leaf, bool) {
	sib := leaf.Sibling()
	if sib.IsNil() || !h.t.locks.SameSlot(g, sib) {
		return rdma.NilAddr, layout.Leaf{}, false
	}
	n, _ := h.readNode(sib, h.leafBuf)
	if !n.Alive() || !n.IsLeaf() || !leafCovers(n, nextKey) {
		return rdma.NilAddr, layout.Leaf{}, false
	}
	h.Rec.BatchChainedLeaves++
	return sib, layout.AsLeaf(n), true
}

// --- legacy per-kind batch entry points, now thin wrappers over Exec ------

// InsertBatch stores every pair in kvs, observably equivalent to calling
// Insert for each pair in submission order. Keys sharing a leaf share one
// traversal, one lock acquisition and one combined write-back+release
// doorbell. Key 0 is reserved and panics.
func (h *Handle) InsertBatch(kvs []layout.KV) {
	ops := make([]Op, len(kvs))
	for i, kv := range kvs {
		if kv.Key == 0 {
			panic("core: key 0 is reserved")
		}
		ops[i] = Op{Kind: stats.OpInsert, Key: kv.Key, Value: kv.Value}
	}
	h.Exec(ops)
}

// DeleteBatch removes every key, reporting per key (in submission order)
// whether it was present — observably equivalent to calling Delete for
// each key in order. Absent keys cost no write-back. Key 0 panics.
func (h *Handle) DeleteBatch(keys []uint64) []bool {
	ops := make([]Op, len(keys))
	for i, k := range keys {
		if k == 0 {
			panic("core: key 0 is reserved")
		}
		ops[i] = Op{Kind: stats.OpDelete, Key: k}
	}
	res := h.Exec(ops)
	found := make([]bool, len(keys))
	for i := range res {
		found[i] = res[i].Found
	}
	return found
}

// LookupBatch returns the value stored under each key, in submission
// order — observably equivalent to calling Lookup per key, but reading
// each target leaf once for all the keys it covers.
func (h *Handle) LookupBatch(keys []uint64) (values []uint64, found []bool) {
	ops := make([]Op, len(keys))
	for i, k := range keys {
		ops[i] = Op{Kind: stats.OpLookup, Key: k}
	}
	res := h.Exec(ops)
	values = make([]uint64, len(keys))
	found = make([]bool, len(keys))
	for i := range res {
		values[i], found[i] = res[i].Value, res[i].Found
	}
	return values, found
}
