package hocl

import (
	"sync"
	"testing"

	"sherman/internal/rdma"
	"sherman/internal/sim"
)

func testFabric(t *testing.T, numMS, numCS int) *rdma.Fabric {
	t.Helper()
	return rdma.NewFabric(sim.DefaultParams(), numMS, numCS)
}

func allModes() []struct {
	name string
	mode Mode
} {
	return []struct {
		name string
		mode Mode
	}{
		{"baseline", Baseline()},
		{"onchip", Mode{OnChip: true}},
		{"local", Mode{OnChip: true, Local: true}},
		{"waitqueue", Mode{OnChip: true, Local: true, WaitQueue: true}},
		{"sherman", Sherman()},
		{"host-hierarchical", Mode{Local: true, WaitQueue: true, Handover: true}},
	}
}

// TestMutualExclusion hammers a handful of locks from many goroutines across
// several compute servers and checks that a plain counter protected by each
// lock never tears, in every mode.
func TestMutualExclusion(t *testing.T) {
	for _, tc := range allModes() {
		t.Run(tc.name, func(t *testing.T) {
			const (
				numCS    = 4
				threads  = 16
				locks    = 3
				opsPerTh = 200
			)
			f := testFabric(t, 2, numCS)
			m := NewManager(f, Config{Mode: tc.mode, LocksPerMS: 64})

			counters := make([]int64, locks) // protected by the locks
			shadow := make([]int64, locks)   // same increments, for comparison
			var shadowMu sync.Mutex

			var wg sync.WaitGroup
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(th int) {
					defer wg.Done()
					c := f.NewClient(th % numCS)
					for i := 0; i < opsPerTh; i++ {
						idx := (th + i) % locks
						g := m.LockIdx(c, 0, idx)
						// Unprotected read-modify-write: only mutual
						// exclusion keeps it exact.
						v := counters[idx]
						c.Step(10)
						counters[idx] = v + 1
						m.Unlock(c, g, nil, true)
						shadowMu.Lock()
						shadow[idx]++
						shadowMu.Unlock()
					}
				}(th)
			}
			wg.Wait()
			for i := range counters {
				if counters[i] != shadow[i] {
					t.Errorf("lock %d: counter %d, want %d (lost updates)", i, counters[i], shadow[i])
				}
			}
			if got := m.Stats.Acquisitions.Load(); got != int64(threads*opsPerTh) {
				t.Errorf("acquisitions = %d, want %d", got, threads*opsPerTh)
			}
		})
	}
}

// TestVirtualHoldWindowsDisjoint verifies the core virtual-time property of
// the lock simulation: consecutive holders of one lock occupy disjoint
// virtual windows — each holder's acquisition time is at least the previous
// holder's release time.
func TestVirtualHoldWindowsDisjoint(t *testing.T) {
	for _, tc := range allModes() {
		t.Run(tc.name, func(t *testing.T) {
			const (
				numCS   = 4
				threads = 12
				ops     = 150
			)
			f := testFabric(t, 1, numCS)
			m := NewManager(f, Config{Mode: tc.mode, LocksPerMS: 16})

			type window struct{ acq, rel int64 }
			var mu sync.Mutex
			var windows []window

			var wg sync.WaitGroup
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(th int) {
					defer wg.Done()
					c := f.NewClient(th % numCS)
					for i := 0; i < ops; i++ {
						g := m.LockIdx(c, 0, 0)
						acq := c.Now()
						c.Step(100)
						rel := c.Now()
						// Record while still holding, so the slice order is
						// the real acquisition order.
						mu.Lock()
						windows = append(windows, window{acq, rel})
						mu.Unlock()
						m.Unlock(c, g, nil, true)
					}
				}(th)
			}
			wg.Wait()

			for i := 1; i < len(windows); i++ {
				if windows[i].acq < windows[i-1].rel {
					t.Fatalf("window %d acquired at %d inside previous hold (released %d)",
						i, windows[i].acq, windows[i-1].rel)
				}
			}
		})
	}
}

// TestHandoverBounded checks that consecutive handovers never exceed
// MaxHandover, so remote compute servers cannot be starved (§4.3).
func TestHandoverBounded(t *testing.T) {
	const maxHO = 4
	f := testFabric(t, 1, 2)
	m := NewManager(f, Config{Mode: Sherman(), LocksPerMS: 16, MaxHandover: maxHO})

	// All threads on CS 0 pound one lock; a lone CS-1 thread must still get
	// in. Track the longest run of consecutive handovers.
	var mu sync.Mutex
	run, maxRun := 0, 0
	var wg sync.WaitGroup
	for th := 0; th < 8; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			cs := 0
			if th == 7 {
				cs = 1
			}
			c := f.NewClient(cs)
			for i := 0; i < 300; i++ {
				g := m.LockIdx(c, 0, 0)
				mu.Lock()
				if g.HandedOver() {
					run++
					if run > maxRun {
						maxRun = run
					}
				} else {
					run = 0
				}
				mu.Unlock()
				c.Step(50)
				m.Unlock(c, g, nil, true)
			}
		}(th)
	}
	wg.Wait()
	if maxRun > maxHO {
		t.Errorf("observed %d consecutive handovers, bound is %d", maxRun, maxHO)
	}
	if m.Stats.Handovers.Load() == 0 {
		t.Error("expected some handovers under same-CS contention")
	}
}

// TestHandoverSkipsRemoteCAS verifies handover saves the remote acquisition:
// handed-over acquisitions do not issue an RDMA_CAS.
func TestHandoverSkipsRemoteCAS(t *testing.T) {
	f := testFabric(t, 1, 1)
	m := NewManager(f, Config{Mode: Sherman(), LocksPerMS: 16})

	const threads, ops = 6, 200
	atomicsBefore := int64(0)
	clients := make([]*rdma.Client, threads)
	for i := range clients {
		clients[i] = f.NewClient(0)
	}
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			c := clients[th]
			for i := 0; i < ops; i++ {
				g := m.LockIdx(c, 0, 0)
				c.Step(20)
				m.Unlock(c, g, nil, true)
			}
		}(th)
	}
	wg.Wait()

	var atomics int64
	for _, c := range clients {
		atomics += c.M.Atomics
	}
	handovers := m.Stats.Handovers.Load()
	total := int64(threads * ops)
	// Every acquisition except handovers issues exactly one successful CAS;
	// retries add more, so atomics >= CAS successes = total - handovers.
	if atomics-atomicsBefore < total-handovers {
		t.Errorf("atomics = %d, want >= %d (total %d - handovers %d)",
			atomics, total-handovers, total, handovers)
	}
	if handovers == 0 {
		t.Error("expected handovers with all threads on one CS")
	}
	// And handovers must genuinely skip CAS: with heavy same-CS contention
	// the per-acquisition atomic rate must be visibly below 1.
	if float64(atomics)/float64(total) > 1.5 {
		t.Errorf("atomics per acquisition = %.2f, suspiciously high", float64(atomics)/float64(total))
	}
}

// TestLockIndexDeterministic checks the address hash is stable and in range.
func TestLockIndexDeterministic(t *testing.T) {
	f := testFabric(t, 2, 1)
	m := NewManager(f, Config{Mode: Sherman(), LocksPerMS: 128})
	a := rdma.MakeAddr(1, 0x12340)
	i1 := m.index(a)
	i2 := m.index(a)
	if i1 != i2 {
		t.Fatalf("index not deterministic: %d vs %d", i1, i2)
	}
	if i1 < 0 || i1 >= 128 {
		t.Fatalf("index %d out of range [0,128)", i1)
	}
	// Different addresses should mostly hash differently.
	same := 0
	for off := uint64(0); off < 1024; off += 64 {
		if m.index(rdma.MakeAddr(0, 1<<20+off)) == i1 {
			same++
		}
	}
	if same > 3 {
		t.Errorf("suspicious hash clustering: %d/16 collisions with one slot", same)
	}
}

// TestModeValidation rejects inconsistent modes.
func TestModeValidation(t *testing.T) {
	bad := []Mode{
		{WaitQueue: true},                 // WaitQueue without Local
		{Handover: true},                  // Handover without WaitQueue
		{Local: true, Handover: true},     // Handover without WaitQueue
		{WaitQueue: true, Handover: true}, // still missing Local
	}
	for _, mode := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewManager(%+v) did not panic", mode)
				}
			}()
			f := testFabric(t, 1, 1)
			NewManager(f, Config{Mode: mode})
		}()
	}
}

// TestOnChipCapacity ensures lock tables that exceed NIC device memory are
// rejected rather than silently truncated.
func TestOnChipCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized on-chip GLT did not panic")
		}
	}()
	p := sim.DefaultParams()
	p.OnChipMemBytes = 1024 // room for 512 locks only
	f := rdma.NewFabric(p, 1, 1)
	NewManager(f, Config{Mode: Mode{OnChip: true}, LocksPerMS: 1024})
}

// TestPhysicalLockWord checks the GLT word is physically set while held and
// cleared after release, for host and on-chip tables.
func TestPhysicalLockWord(t *testing.T) {
	for _, onChip := range []bool{false, true} {
		name := "host"
		if onChip {
			name = "onchip"
		}
		t.Run(name, func(t *testing.T) {
			f := testFabric(t, 1, 1)
			m := NewManager(f, Config{Mode: Mode{OnChip: onChip}, LocksPerMS: 16})
			c := f.NewClient(0)
			g := m.LockIdx(c, 0, 3)

			read := func() uint64 {
				var buf [8]byte
				if onChip {
					// Read the containing word from device memory via verb.
					w := rdma.MakeOnChipAddr(0, (3*2)&^7)
					c.Read(w, buf[:])
					shift := ((3 * 2) % 8) * 8
					return (le64(buf[:]) >> shift) & 0xffff
				}
				f.Servers()[0].ReadAt(m.gltHostBase[0]+3*8, buf[:])
				return le64(buf[:])
			}
			if got := read(); got != uint64(c.CS.ID)+1 {
				t.Errorf("held lock word = %d, want %d", got, c.CS.ID+1)
			}
			m.Unlock(c, g, nil, true)
			if got := read(); got != 0 {
				t.Errorf("released lock word = %d, want 0", got)
			}
		})
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// TestWaitQueueFIFO verifies the local wait queue grants in FIFO order
// within one compute server.
func TestWaitQueueFIFO(t *testing.T) {
	f := testFabric(t, 1, 1)
	m := NewManager(f, Config{Mode: Mode{OnChip: true, Local: true, WaitQueue: true}, LocksPerMS: 8})

	// Thread 0 takes the lock and holds it until all others are queued.
	c0 := f.NewClient(0)
	g0 := m.LockIdx(c0, 0, 0)

	const waiters = 5
	var mu sync.Mutex
	var grantOrder []int
	queued := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := f.NewClient(0)
			queued <- i // approximately: the queue push happens inside LockIdx
			g := m.LockIdx(c, 0, 0)
			mu.Lock()
			grantOrder = append(grantOrder, i)
			mu.Unlock()
			m.Unlock(c, g, nil, true)
		}(i)
	}
	// Wait until all waiters have at least started.
	for i := 0; i < waiters; i++ {
		<-queued
	}
	m.Unlock(c0, g0, nil, true)
	wg.Wait()

	if len(grantOrder) != waiters {
		t.Fatalf("granted %d times, want %d", len(grantOrder), waiters)
	}
	// FIFO over the *local queue* order, which is the order LockIdx pushed;
	// goroutine start order approximates it, so we only assert that every
	// waiter got the lock exactly once (no lost or duplicated grants).
	seen := map[int]bool{}
	for _, id := range grantOrder {
		if seen[id] {
			t.Fatalf("waiter %d granted twice", id)
		}
		seen[id] = true
	}
}
