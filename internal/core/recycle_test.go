package core_test

import (
	"testing"

	core "sherman/internal/core"
	"sherman/internal/layout"
	"sherman/internal/stats"
	"sherman/internal/testutil"
)

// This file is the pooled-lifecycle property suite of the zero-allocation
// hot path: mixed Submit/ExecInto streams at every pipeline depth 1-8, per
// matrix cell, driven through deliberately recycled op and result buffers —
// the exact reuse pattern the arena/pool conversion enables — checked
// operation-by-operation against the model map. Even depths run with
// Config.Poison, so a result that aliases recycled scratch is clobbered to
// 0xDB garbage and fails the comparison deterministically instead of
// passing by luck; the suite runs under -race in CI.

// TestPooledStreamsMatchModel drives one mixed stream per (cell, depth)
// through a recycled batch scratch: the same ops slice and results slice
// back every ExecInto call, interleaved with pipelined Submits, and every
// result — including scan rows retained across later batches — must match
// the model.
func TestPooledStreamsMatchModel(t *testing.T) {
	testutil.RunMatrix(t, func(t *testing.T, ax testutil.Axes) {
		for depth := 1; depth <= 8; depth++ {
			cfg := ax.Config(0)
			// Alternate poison across depths so both modes run in every
			// cell: odd depths exercise plain recycling, even depths make
			// any reuse-after-release read 0xDB garbage.
			cfg.Poison = depth%2 == 0
			tr := testutil.NewTree(t, testutil.NewCluster(t, 2, 1), cfg)
			h := tr.NewHandle(0, 0)
			as := h.NewAsync(depth)
			model := testutil.NewModel()
			seed := uint64(depth) * 13
			if ax.TwoLevel {
				seed += 3
			}
			if ax.Combine {
				seed += 7
			}
			rng := testutil.RNG(seed + 1)

			const keySpace = 160
			randOp := func() core.Op {
				k := rng.Uint64N(keySpace) + 1
				switch rng.Uint64N(10) {
				case 0, 1, 2, 3:
					return core.Op{Kind: stats.OpInsert, Key: k, Value: rng.Uint64() | 1}
				case 4:
					return core.Op{Kind: stats.OpDelete, Key: rng.Uint64N(2*keySpace) + 1}
				case 5:
					return core.Op{Kind: stats.OpRange, Key: k, Span: int(rng.Uint64N(10)) + 1}
				default:
					return core.Op{Kind: stats.OpLookup, Key: k}
				}
			}
			apply := func(op core.Op) core.OpResult {
				var want core.OpResult
				switch op.Kind {
				case stats.OpInsert:
					model.Put(op.Key, op.Value)
				case stats.OpDelete:
					want.Found = model.Delete(op.Key)
				case stats.OpRange:
					want.KVs = model.Scan(op.Key, op.Span)
				default:
					want.Value, want.Found = model.Get(op.Key)
				}
				return want
			}
			check := func(ctx string, op core.Op, got, want core.OpResult) {
				t.Helper()
				if got.Found != want.Found || got.Value != want.Value || len(got.KVs) != len(want.KVs) {
					t.Fatalf("depth %d %s %+v = (%d,%v,%d rows), model (%d,%v,%d rows)",
						depth, ctx, op, got.Value, got.Found, len(got.KVs), want.Value, want.Found, len(want.KVs))
				}
				for j := range want.KVs {
					if got.KVs[j] != want.KVs[j] {
						t.Fatalf("depth %d %s %+v row %d = %+v, model %+v", depth, ctx, op, j, got.KVs[j], want.KVs[j])
					}
				}
			}

			// The recycled scratch: one ops slice and one results slice back
			// every batch of the stream, exactly like the harness's
			// per-worker batchScratch.
			ops := make([]core.Op, 0, 24)
			results := make([]core.OpResult, 24)
			// retained holds scan results kept alive across later batches,
			// with deep copies of their expected rows: if any later
			// operation's recycling aliased the returned rows, the final
			// comparison catches the clobber.
			type retainedScan struct {
				got  []layout.KV
				want []layout.KV
			}
			var retained []retainedScan

			for round := 0; round < 30; round++ {
				// A burst of pipelined Submits; results check immediately
				// (real execution is sequential, so the model is exact at
				// submit time).
				for j := rng.Uint64N(6); j > 0; j-- {
					op := randOp()
					want := apply(op)
					got, _ := as.Submit(op)
					check("Submit", op, got, want)
					if op.Kind == stats.OpRange && len(got.KVs) > 0 && len(retained) < 16 {
						retained = append(retained, retainedScan{
							got:  got.KVs,
							want: append([]layout.KV(nil), want.KVs...),
						})
					}
				}
				// One mixed batch through the recycled scratch.
				ops = ops[:0]
				for j := rng.Uint64N(20) + 1; j > 0; j-- {
					ops = append(ops, randOp())
				}
				res := results[:len(ops)]
				as.ExecInto(ops, res)
				for j, op := range ops {
					check("ExecInto", op, res[j], apply(op))
				}
			}
			as.Flush()

			// Retained scan rows must have survived every later batch's
			// recycling untouched.
			for i, r := range retained {
				for j := range r.want {
					if r.got[j] != r.want[j] {
						t.Fatalf("depth %d retained scan %d row %d clobbered to %+v, was %+v",
							depth, i, j, r.got[j], r.want[j])
					}
				}
			}

			// Final sweep: tree contents == model contents.
			for k := uint64(1); k <= 2*keySpace; k++ {
				wv, wok := model.Get(k)
				gv, gok := h.Lookup(k)
				if wok != gok || (wok && wv != gv) {
					t.Fatalf("depth %d final key %d = (%d,%v), model (%d,%v)", depth, k, gv, gok, wv, wok)
				}
			}
		}
	})
}
