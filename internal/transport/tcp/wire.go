// Package tcp is the real-network transport: memory servers are OS
// processes (cmd/shermand) serving chunks, locks and atomics over a
// length-prefixed binary protocol, and clients implement
// transport.Transport over per-server pooled connections with real clocks.
//
// Wire protocol. Every message is one frame:
//
//	[u32 length][u8 opcode][payload]
//
// little-endian, where length covers the opcode byte plus the payload.
// Requests carry an operation opcode; responses reuse the opcode slot as a
// status byte (statusOK with a result payload, statusErr with a UTF-8
// message). One request frame gets exactly one response frame, in order, so
// a doorbell batch of dependent writes coalesces into a single WriteBatch
// frame — one network round trip, the §4.5 batching mapped onto TCP.
//
// The server applies each frame under one store-wide mutex, which makes a
// WriteBatch atomic and totally orders conflicting atomics — strictly
// stronger than RDMA's per-verb atomicity, and therefore a safe home for
// the same tree protocol (every interleaving the TCP transport can produce,
// the RDMA fabric can produce too; not vice versa).
package tcp

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Request opcodes.
const (
	opPing       byte = 1 // () -> u32 onChipSize, u64 serverNowNS (clock epoch)
	opRead       byte = 2 // addr u64, n u32 -> n bytes
	opReadBatch  byte = 3 // count u32, (addr u64, n u32)* -> concatenated bytes
	opWriteBatch byte = 4 // count u32, (addr u64, n u32, data)* applied in order -> ()
	opCAS        byte = 5 // addr u64, old u64, new u64 -> prev u64, swapped u8
	opCAS16      byte = 6 // addr u64, old u16, new u16 -> prev u16, swapped u8
	opFAA        byte = 7 // addr u64, delta u64 -> old u64
	opGrow       byte = 8 // () -> base u64
	opShutdown   byte = 9 // () -> (), then the server exits
)

// Response status bytes (the opcode slot of a response frame).
const (
	statusOK  byte = 0
	statusErr byte = 1
)

// maxFrame bounds a frame's length field: one chunk plus batching slack.
// A reader that sees a bigger length is desynchronized (or under attack)
// and errors out instead of allocating unboundedly.
const maxFrame = 64 << 20

// writeFrame emits one frame. payload may be nil.
func writeFrame(w io.Writer, op byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(1+len(payload)))
	hdr[4] = op
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame, returning its opcode (or status) byte and
// payload. A torn or truncated frame — the peer died mid-write — surfaces
// as io.ErrUnexpectedEOF; a length outside (0, maxFrame] as a framing
// error.
func readFrame(r io.Reader) (op byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("tcp: bad frame length %d", n)
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	op = hdr[4]
	if n > 1 {
		payload = make([]byte, n-1)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, err
		}
	}
	return op, payload, nil
}

// appendU64/appendU32 are the payload builders shared by client and server.
func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// payloadReader decodes a request/response payload field by field.
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (p *payloadReader) u64() uint64 {
	if p.err != nil || p.off+8 > len(p.b) {
		p.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(p.b[p.off:])
	p.off += 8
	return v
}

func (p *payloadReader) u32() uint32 {
	if p.err != nil || p.off+4 > len(p.b) {
		p.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(p.b[p.off:])
	p.off += 4
	return v
}

func (p *payloadReader) u16() uint16 {
	if p.err != nil || p.off+2 > len(p.b) {
		p.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(p.b[p.off:])
	p.off += 2
	return v
}

func (p *payloadReader) u8() uint8 {
	if p.err != nil || p.off+1 > len(p.b) {
		p.fail()
		return 0
	}
	v := p.b[p.off]
	p.off++
	return v
}

func (p *payloadReader) bytes(n int) []byte {
	if p.err != nil || n < 0 || p.off+n > len(p.b) {
		p.fail()
		return nil
	}
	v := p.b[p.off : p.off+n]
	p.off += n
	return v
}

func (p *payloadReader) fail() {
	if p.err == nil {
		p.err = fmt.Errorf("tcp: short payload (%d bytes, need more at offset %d)", len(p.b), p.off)
	}
}
