package bench

import (
	"fmt"
	"testing"
	"time"

	"sherman/internal/core"
	"sherman/internal/workload"
)

// TestDiagAblation prints detailed internals for each ablation step under the
// skewed write-intensive workload. Run with -run TestDiagAblation -v.
func TestDiagAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	s := QuickScale()
	for _, step := range core.AblationSteps() {
		t0 := time.Now()
		r := RunTree(s.treeExp(step.String(), workload.WriteIntensive, workload.Zipfian, core.AblationConfig(step)))
		fmt.Printf("%-14s Mops=%6.2f p50=%7d p99=%9d rt/wr(p50/p99)=%d/%d handovers=%d wall=%v\n",
			step.String(), r.Mops, r.P50, r.P99,
			r.Rec.WriteRoundTrips.PercentileValue(50),
			r.Rec.WriteRoundTrips.PercentileValue(99),
			r.Handovers, time.Since(t0).Round(time.Millisecond))
	}
}
