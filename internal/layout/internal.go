package layout

import (
	"sort"

	"sherman/internal/rdma"
)

// Internal views a node buffer as an internal (index) node: a sorted array
// of separator keys and child pointers plus a leftmost child. Internal nodes
// keep the standard sorted layout in both modes — they are modified far less
// often than leaves (§4.4), so Sherman leaves their format conventional and
// protects them with node-level versions (or the CRC in Checksum mode).
//
// Semantics: child[leftmost] covers [lowerFence, key0); child[i] covers
// [key_i, key_{i+1}); the last child covers [key_last, upperFence).
type Internal struct{ Node }

// AsInternal views the node as an internal node.
func AsInternal(n Node) Internal { return Internal{n} }

// NewInternal allocates and initializes a fresh internal node.
func NewInternal(f Format, level uint8, lower, upper uint64) Internal {
	if level == 0 {
		panic("layout: internal node cannot be level 0")
	}
	n := Internal{NewNodeBuf(f)}
	n.Init(level, lower, upper)
	return n
}

// NewInternalIn initializes a fresh internal node in the caller's buffer
// (len must equal f.NodeSize) — the allocation-free variant for arena-backed
// callers.
func NewInternalIn(f Format, buf []byte, level uint8, lower, upper uint64) Internal {
	if level == 0 {
		panic("layout: internal node cannot be level 0")
	}
	n := Internal{ViewNode(f, buf)}
	n.Init(level, lower, upper)
	return n
}

func (n Internal) countOff() int {
	if n.F.Mode == Checksum {
		return offCountCksum
	}
	return offCountTL
}

// Count returns the number of separator keys.
func (n Internal) Count() int { return n.getU16(n.countOff()) }

func (n Internal) setCount(c int) { n.putU16(n.countOff(), c) }

// Leftmost returns the child covering keys below the first separator.
func (n Internal) Leftmost() rdma.Addr { return rdma.Addr(n.getU64(n.countOff() + 2)) }

// SetLeftmost stores the leftmost child pointer.
func (n Internal) SetLeftmost(a rdma.Addr) { n.putU64(n.countOff()+2, uint64(a)) }

// KeyAt returns separator key i.
func (n Internal) KeyAt(i int) uint64 { return n.getKey(n.F.intEntryOff(i)) }

// ChildAt returns the child pointer paired with separator key i.
func (n Internal) ChildAt(i int) rdma.Addr {
	return rdma.Addr(n.getU64(n.F.intEntryOff(i) + n.F.KeySize))
}

// setAt stores separator i.
func (n Internal) setAt(i int, key uint64, child rdma.Addr) {
	off := n.F.intEntryOff(i)
	n.putKey(off, key)
	n.putU64(off+n.F.KeySize, uint64(child))
}

// SetChild rewrites the child pointer at the index ChildFor returned: -1 is
// the leftmost child, i >= 0 the i-th separator's child. The migration
// engine uses it to repoint a parent at a relocated node.
func (n Internal) SetChild(i int, a rdma.Addr) {
	if i < 0 {
		n.SetLeftmost(a)
		return
	}
	n.putU64(n.F.intEntryOff(i)+n.F.KeySize, uint64(a))
}

// ChildFor returns the child to descend into for key, plus the index of the
// separator chosen (-1 for leftmost).
func (n Internal) ChildFor(key uint64) (rdma.Addr, int) {
	cnt := n.Count()
	// First separator strictly greater than key; descend left of it.
	i := sort.Search(cnt, func(i int) bool { return n.KeyAt(i) > key })
	if i == 0 {
		return n.Leftmost(), -1
	}
	return n.ChildAt(i - 1), i - 1
}

// ChildrenFrom returns the children covering keys >= key within this node's
// range, in key order. Range queries use it to fetch several target leaves
// with parallel RDMA_READs (§4.4).
func (n Internal) ChildrenFrom(key uint64) []rdma.Addr {
	return n.AppendChildrenFrom(nil, key)
}

// AppendChildrenFrom appends the children covering keys >= key onto dst and
// returns the extended slice — the allocation-free variant for callers that
// recycle a scratch buffer.
func (n Internal) AppendChildrenFrom(dst []rdma.Addr, key uint64) []rdma.Addr {
	cnt := n.Count()
	_, i := n.ChildFor(key)
	if i < 0 {
		dst = append(dst, n.Leftmost())
		i = 0
	} else {
		dst = append(dst, n.ChildAt(i))
		i++
	}
	for ; i < cnt; i++ {
		dst = append(dst, n.ChildAt(i))
	}
	return dst
}

// Full reports whether no separator slot remains.
func (n Internal) Full() bool { return n.Count() >= n.F.IntCap }

// Insert adds (key, child) keeping separators sorted. Returns false when the
// node is full; duplicate keys overwrite the child pointer (idempotent
// retry of a parent update).
func (n Internal) Insert(key uint64, child rdma.Addr) bool {
	cnt := n.Count()
	i := sort.Search(cnt, func(i int) bool { return n.KeyAt(i) >= key })
	if i < cnt && n.KeyAt(i) == key {
		n.setAt(i, key, child)
		return true
	}
	if cnt >= n.F.IntCap {
		return false
	}
	start := n.F.intEntryOff(i)
	end := n.F.intEntryOff(cnt)
	copy(n.B[start+n.F.IntEntSize:end+n.F.IntEntSize], n.B[start:end])
	n.setAt(i, key, child)
	n.setCount(cnt + 1)
	return true
}

// Separators returns all (key, child) pairs in order.
func (n Internal) Separators() []Sep {
	cnt := n.Count()
	out := make([]Sep, cnt)
	for i := 0; i < cnt; i++ {
		out[i] = Sep{Key: n.KeyAt(i), Child: n.ChildAt(i)}
	}
	return out
}

// Sep is one separator of an internal node.
type Sep struct {
	Key   uint64
	Child rdma.Addr
}

// SetSeparators rewrites the node's separator array.
func (n Internal) SetSeparators(seps []Sep) {
	if len(seps) > n.F.IntCap {
		panic("layout: too many separators")
	}
	lo := n.F.intEntryOff(0)
	hi := n.F.intEntryOff(n.F.IntCap)
	for i := lo; i < hi; i++ {
		n.B[i] = 0
	}
	for i, s := range seps {
		n.setAt(i, s.Key, s.Child)
	}
	n.setCount(len(seps))
}

// SplitInto moves the upper half of n's separators into right and returns
// the separator key to push up. right must be freshly initialized with n's
// level. Fences and sibling pointers are fixed up here; the caller persists
// both nodes and the parent update.
func (n Internal) SplitInto(right Internal, rightAddr rdma.Addr) (sepKey uint64) {
	seps := n.Separators()
	mid := len(seps) / 2
	sepKey = seps[mid].Key
	// Right node: covers [sepKey, n.upper); its leftmost child is the child
	// of the median separator.
	right.SetLevel(n.Level())
	right.SetLowerFence(sepKey)
	right.SetUpperFence(n.UpperFence())
	right.SetSibling(n.Sibling())
	right.SetLeftmost(seps[mid].Child)
	right.SetSeparators(seps[mid+1:])
	// Left keeps [lower, sepKey).
	n.SetSeparators(seps[:mid])
	n.SetUpperFence(sepKey)
	n.SetSibling(rightAddr)
	return sepKey
}
