package tcp

import (
	"fmt"
	"net"
	"sync"
	"time"

	"sherman/internal/transport"
)

// OnChipBytes is the NIC device-memory capacity each shermand exposes,
// matching the simulator's ConnectX-5 default (256 KB). Client and server
// agree on it via the Ping handshake.
const OnChipBytes = 256 << 10

const chunkSize = transport.DefaultChunkSize

// serverStart anchors this server process's monotonic clock. Ping responses
// carry nanoseconds since this instant so every client process can anchor
// lease arithmetic to the same origin (the server's), not its own — lease
// stamps written by one client process must be comparable in another.
var serverStart = time.Now()

// store is one memory server's memory: host chunks handed out by Grow plus
// the fixed on-chip region. One mutex serializes every frame — see the
// package comment for why that is a sound (strictly stronger) model of the
// RDMA fabric's atomicity.
type store struct {
	mu     sync.Mutex
	chunks [][]byte
	onChip []byte
}

func newStore() *store {
	return &store{onChip: make([]byte, OnChipBytes)}
}

// slice locates [off, off+n) in the addressed memory space. Tree nodes and
// lock words never straddle a chunk boundary (the allocator carves aligned
// blocks out of aligned chunks), so a region crossing one is a protocol
// error, not a case to support. Caller holds mu.
func (s *store) slice(addr transport.Addr, n int) ([]byte, error) {
	off := addr.Off()
	if addr.OnChip() {
		if off+uint64(n) > uint64(len(s.onChip)) {
			return nil, fmt.Errorf("on-chip access [%#x,+%d) exceeds %d B", off, n, len(s.onChip))
		}
		return s.onChip[off : off+uint64(n)], nil
	}
	ci := off / chunkSize
	if ci >= uint64(len(s.chunks)) {
		return nil, fmt.Errorf("access [%#x,+%d) beyond grown memory (%d chunks)", off, n, len(s.chunks))
	}
	co := off % chunkSize
	if co+uint64(n) > chunkSize {
		return nil, fmt.Errorf("access [%#x,+%d) straddles a chunk boundary", off, n)
	}
	return s.chunks[ci][co : co+uint64(n)], nil
}

func (s *store) grow() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	base := uint64(len(s.chunks)) * chunkSize
	s.chunks = append(s.chunks, make([]byte, chunkSize))
	return base
}

// Server is one memory-server process's serving half: the store plus an
// accept loop. cmd/shermand wraps it; tests can also run it in-process.
type Server struct {
	st *store
	ln net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	shutdown chan struct{}
	once     sync.Once
}

// NewServer creates a server listening on addr ("host:0" picks a free
// port). Call Serve to start accepting and Addr for the bound address.
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Server{
		st:       newStore(),
		ln:       ln,
		conns:    make(map[net.Conn]struct{}),
		shutdown: make(chan struct{}),
	}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Done is closed when a Shutdown frame arrives or Close is called.
func (s *Server) Done() <-chan struct{} { return s.shutdown }

// Close stops the server: the listener closes, open connections drop.
func (s *Server) Close() {
	s.once.Do(func() { close(s.shutdown) })
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// Serve accepts connections until Close (or a Shutdown frame). It returns
// nil on orderly shutdown.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.shutdown:
				return nil
			default:
				return err
			}
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		op, payload, err := readFrame(conn)
		if err != nil {
			return // peer hung up (or died mid-frame); its state is already durable
		}
		resp, err := s.handle(op, payload)
		if err != nil {
			if werr := writeFrame(conn, statusErr, []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		if err := writeFrame(conn, statusOK, resp); err != nil {
			return
		}
		if op == opShutdown {
			s.Close()
			return
		}
	}
}

// handle applies one request frame and returns the response payload.
func (s *Server) handle(op byte, payload []byte) ([]byte, error) {
	p := &payloadReader{b: payload}
	st := s.st
	switch op {
	case opPing:
		resp := appendU32(nil, OnChipBytes)
		return appendU64(resp, uint64(time.Since(serverStart).Nanoseconds())), nil

	case opRead:
		a := transport.Addr(p.u64())
		n := int(p.u32())
		if p.err != nil {
			return nil, p.err
		}
		st.mu.Lock()
		src, err := st.slice(a, n)
		if err != nil {
			st.mu.Unlock()
			return nil, err
		}
		out := make([]byte, n)
		copy(out, src)
		st.mu.Unlock()
		return out, nil

	case opReadBatch:
		count := int(p.u32())
		if p.err != nil {
			return nil, p.err
		}
		type req struct {
			a transport.Addr
			n int
		}
		reqs := make([]req, count)
		total := 0
		for i := range reqs {
			reqs[i].a = transport.Addr(p.u64())
			reqs[i].n = int(p.u32())
			total += reqs[i].n
		}
		if p.err != nil {
			return nil, p.err
		}
		out := make([]byte, 0, total)
		st.mu.Lock()
		for _, r := range reqs {
			src, err := st.slice(r.a, r.n)
			if err != nil {
				st.mu.Unlock()
				return nil, err
			}
			out = append(out, src...)
		}
		st.mu.Unlock()
		return out, nil

	case opWriteBatch:
		count := int(p.u32())
		st.mu.Lock()
		defer st.mu.Unlock()
		for i := 0; i < count; i++ {
			a := transport.Addr(p.u64())
			n := int(p.u32())
			data := p.bytes(n)
			if p.err != nil {
				return nil, p.err
			}
			dst, err := st.slice(a, n)
			if err != nil {
				return nil, err
			}
			copy(dst, data)
		}
		return nil, p.err

	case opCAS:
		a := transport.Addr(p.u64())
		old, new := p.u64(), p.u64()
		if p.err != nil {
			return nil, p.err
		}
		st.mu.Lock()
		defer st.mu.Unlock()
		w, err := st.slice(a, 8)
		if err != nil {
			return nil, err
		}
		prev := leU64(w)
		swapped := byte(0)
		if prev == old {
			putU64(w, new)
			swapped = 1
		}
		return append(appendU64(nil, prev), swapped), nil

	case opCAS16:
		a := transport.Addr(p.u64())
		old, new := p.u16(), p.u16()
		if p.err != nil {
			return nil, p.err
		}
		st.mu.Lock()
		defer st.mu.Unlock()
		w, err := st.slice(a, 2)
		if err != nil {
			return nil, err
		}
		prev := uint16(w[0]) | uint16(w[1])<<8
		swapped := byte(0)
		if prev == old {
			w[0], w[1] = byte(new), byte(new>>8)
			swapped = 1
		}
		return []byte{byte(prev), byte(prev >> 8), swapped}, nil

	case opFAA:
		a := transport.Addr(p.u64())
		delta := p.u64()
		if p.err != nil {
			return nil, p.err
		}
		st.mu.Lock()
		defer st.mu.Unlock()
		w, err := st.slice(a, 8)
		if err != nil {
			return nil, err
		}
		prev := leU64(w)
		putU64(w, prev+delta)
		return appendU64(nil, prev), nil

	case opGrow:
		return appendU64(nil, st.grow()), nil

	case opShutdown:
		return nil, nil

	default:
		return nil, fmt.Errorf("tcp: unknown opcode %d", op)
	}
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putU64(b []byte, v uint64) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}
