package core

import (
	"sherman/internal/alloc"
	"sherman/internal/rdma"
)

// This file is the write-side mirror engine of chunk-granularity replication
// (DESIGN.md §12). Every primary write a handle issues — the write-backs and
// kill bits riding a release doorbell, and the cross-MS writes that cannot —
// is first duplicated onto the replica chunks of the target's chunk, posted
// as combined per-server doorbells on a detached timeline (the mirrors do
// not lengthen the operation's critical path; rdma.Client.OnTimeline). The
// mirror is issued BEFORE the primary commit, so at any instant every
// replica holds a superset of the acked writes of its chunk: a memory
// server can die at any verb boundary and no acked write is lost.
//
// The engine is allocation-free in steady state: replica ops and their
// watermark cells accumulate in handle-owned scratch slices, per-chunk
// targets land in a handle-owned TargetSet, and the doorbell thunk handed to
// OnTimeline is bound once at handle creation.

// mirror duplicates ops onto the replica chunks of their targets and posts
// the copies as per-server doorbells on a detached timeline. No-op when the
// cluster does not replicate, and skips on-chip targets (lock words) and
// unreplicated chunks. Call before committing ops to their primaries.
func (h *Handle) mirror(ops []rdma.WriteOp) {
	if !h.replicated || len(ops) == 0 {
		return
	}
	wops, marks := h.repWops[:0], h.repMarks[:0]
	for _, op := range ops {
		if op.Addr.OnChip() {
			continue
		}
		if !h.rep.Targets(alloc.ChunkOf(op.Addr), &h.repTargets) {
			// In a replicated cluster every primary chunk is registered, so a
			// miss means a failover re-keyed this chunk between the caller's
			// validating read and now: its server is dead, the primary write
			// will be discarded, and mirroring is impossible. Flag the op for
			// redo — it has not acked yet, and the retry will chase the
			// forwarding entry to the promoted chunk.
			if !h.t.cl.MSAlive(int(alloc.ChunkOf(op.Addr).MS)) {
				h.redo = true
			}
			continue
		}
		inner := op.Addr.Off() % rdma.DefaultChunkSize
		for i := 0; i < h.repTargets.N; i++ {
			wops = append(wops, rdma.WriteOp{Addr: h.repTargets.Bases[i].Add(inner), Data: op.Data})
			marks = append(marks, h.repTargets.Watermark(i))
		}
	}
	h.repWops, h.repMarks = wops, marks
	if len(wops) > 0 {
		h.postMirrors()
	}
	h.repWops, h.repMarks = wops[:0], marks[:0]
}

// postMirrors partitions the accumulated replica ops into per-server groups
// (stably, preserving program order within each server) and posts each group
// as one combined doorbell starting at the current virtual time — replica
// servers absorb the mirrors in parallel with the primary commit the caller
// issues next. Each posted op's replica watermark advances to the doorbell's
// completion time.
func (h *Handle) postMirrors() {
	if h.vt == nil && h.av != nil {
		h.postMirrorsAsync()
		return
	}
	start := h.C.Now()
	posted := 0
	for posted < len(h.repWops) {
		ms := h.repWops[posted].Addr.MS()
		hi := posted + 1
		for i := hi; i < len(h.repWops); i++ {
			if h.repWops[i].Addr.MS() != ms {
				continue
			}
			// Rotate [hi, i] right by one, keeping same-server op order.
			op, mk := h.repWops[i], h.repMarks[i]
			copy(h.repWops[hi+1:i+1], h.repWops[hi:i])
			copy(h.repMarks[hi+1:i+1], h.repMarks[hi:i])
			h.repWops[hi], h.repMarks[hi] = op, mk
			hi++
		}
		h.repLo, h.repHi = posted, hi
		end := h.onTimeline(start, h.mirrorFn)
		for i := posted; i < hi; i++ {
			alloc.NoteWatermark(h.repMarks[i], end)
		}
		if end > h.mirrorEndV {
			h.mirrorEndV = end
		}
		posted = hi
	}
	h.Rec.ReplicaWrites += int64(len(h.repWops))
}

// postMirrorGroup posts the current per-server group; it is the thunk
// OnTimeline runs on the detached mirror timeline (bound once in NewHandle).
func (h *Handle) postMirrorGroup() {
	h.C.PostWrites(h.repWops[h.repLo:h.repHi]...)
}

// postMirrorsAsync is postMirrors on a real asynchronous transport: there is
// no detached timeline to hide the mirrors on, but the transport can hold
// every per-server doorbell in flight at once, so all groups are issued
// before any is awaited and the replica servers genuinely absorb them in
// parallel. The superset invariant holds as on the simulator — every mirror
// completes here, before the caller issues the primary commit.
func (h *Handle) postMirrorsAsync() {
	h.repPends = h.repPends[:0]
	posted := 0
	for posted < len(h.repWops) {
		ms := h.repWops[posted].Addr.MS()
		hi := posted + 1
		for i := hi; i < len(h.repWops); i++ {
			if h.repWops[i].Addr.MS() != ms {
				continue
			}
			// Rotate [hi, i] right by one, keeping same-server op order.
			op, mk := h.repWops[i], h.repMarks[i]
			copy(h.repWops[hi+1:i+1], h.repWops[hi:i])
			copy(h.repMarks[hi+1:i+1], h.repMarks[hi:i])
			h.repWops[hi], h.repMarks[hi] = op, mk
			hi++
		}
		h.repPends = append(h.repPends, h.av.PostWritesAsync(h.repWops[posted:hi]...))
		posted = hi
	}
	for _, p := range h.repPends {
		h.av.Await(p)
	}
	end := h.C.Now()
	for i := range h.repMarks {
		alloc.NoteWatermark(h.repMarks[i], end)
	}
	if end > h.mirrorEndV {
		h.mirrorEndV = end
	}
	h.Rec.ReplicaWrites += int64(len(h.repWops))
}

// noteMirrorLag samples how far the latest mirror doorbell's completion
// trails the primary commit the handle just finished — the bounded-lag
// metric of the replica experiment. Call after the commit doorbell.
func (h *Handle) noteMirrorLag() {
	if h.mirrorEndV == 0 {
		return
	}
	if lag := h.mirrorEndV - h.C.Now(); lag > h.Rec.ReplicaLagMaxNS {
		h.Rec.ReplicaLagMaxNS = lag
	}
	h.mirrorEndV = 0
}

// writeMirrored is h.C.Write plus replica mirroring, for the cross-server
// writes that cannot ride a release doorbell (split halves landing on
// another MS, new roots, root-race deallocations, migration copies). All
// call sites target fresh, never-published slots, so no other writer
// contends — but a re-replication CopyChunk scanning the slot's chunk might:
// its raw slot read could tear against this write and then overwrite the
// completed mirror with the torn image. Taking the slot's node lock — the
// same lock CopyChunk holds per slot — serializes the two, and only when
// the cluster replicates (the unreplicated path matches the seed verb for
// verb). The caller may already hold another node's lock; that pair cannot
// deadlock, because CopyChunk never holds more than one lock and nobody
// else ever locks an unpublished slot.
func (h *Handle) writeMirrored(a rdma.Addr, data []byte) {
	if !h.replicated {
		h.C.Write(a, data)
		return
	}
	g := h.t.locks.Lock(h.C, h.slotBase(a))
	h.oneWop[0] = rdma.WriteOp{Addr: a, Data: data}
	h.mirror(h.oneWop[:])
	h.C.Write(a, data)
	h.unlockWrite(g, nil)
}

// takeRedo consumes the redo flag: true means the last commit's chunk was
// lost to a failover mid-operation and the caller must retry the mutation
// through the promoted chunk before acknowledging it.
func (h *Handle) takeRedo() bool {
	r := h.redo
	h.redo = false
	return r
}

// slotBase returns the node-slot base address containing a — the lock key
// shared by writers of unpublished slots and CopyChunk (a free-bit write
// targets an interior offset but must serialize under its node's slot).
func (h *Handle) slotBase(a rdma.Addr) rdma.Addr {
	inner := a.Off() % rdma.DefaultChunkSize
	slot := inner - inner%uint64(h.t.cfg.Format.NodeSize)
	return alloc.ChunkOf(a).ChunkBase().Add(slot)
}
