package tcp

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"testing"
)

// TestFrameRoundTrip encodes frames of assorted opcodes and payload sizes
// and decodes them back, including several frames back to back on one
// stream (the pipelining case).
func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0xAB},
		bytes.Repeat([]byte{0x5A}, 1024),
		bytes.Repeat([]byte{0xFF}, 1<<20),
	}
	var buf bytes.Buffer
	for i, p := range payloads {
		op := byte(i + 1)
		if err := writeFrame(&buf, op, p); err != nil {
			t.Fatalf("writeFrame(op=%d, %d bytes): %v", op, len(p), err)
		}
	}
	for i, p := range payloads {
		op, got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame #%d: %v", i, err)
		}
		if op != byte(i+1) {
			t.Fatalf("readFrame #%d: opcode %d, want %d", i, op, i+1)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("readFrame #%d: payload %d bytes, want %d", i, len(got), len(p))
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("stream not fully consumed: %d bytes left", buf.Len())
	}
}

// TestFrameTorn truncates an encoded frame at every possible byte boundary:
// a cut inside the length header must surface as EOF or ErrUnexpectedEOF
// (the reader read nothing usable), and a cut after it as ErrUnexpectedEOF —
// the peer died mid-frame, never a silent short payload.
func TestFrameTorn(t *testing.T) {
	var full bytes.Buffer
	if err := writeFrame(&full, opCAS, bytes.Repeat([]byte{7}, 24)); err != nil {
		t.Fatal(err)
	}
	whole := full.Bytes()
	for cut := 0; cut < len(whole); cut++ {
		_, _, err := readFrame(bytes.NewReader(whole[:cut]))
		if err == nil {
			t.Fatalf("cut at %d of %d: no error", cut, len(whole))
		}
		if cut <= 4 {
			if err != io.EOF && err != io.ErrUnexpectedEOF {
				t.Fatalf("cut at %d (inside header): err = %v", cut, err)
			}
			continue
		}
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d (inside body): err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestFrameBadLength rejects zero and oversized length fields instead of
// blocking on (or allocating for) a desynchronized stream.
func TestFrameBadLength(t *testing.T) {
	for _, n := range []uint32{0, maxFrame + 1, 1 << 31} {
		raw := appendU32(nil, n)
		raw = append(raw, opPing)
		if _, _, err := readFrame(bytes.NewReader(raw)); err == nil {
			t.Fatalf("length %d: no error", n)
		}
	}
}

// TestPayloadReaderShortRead checks that every accessor fails cleanly past
// the end of the payload and that the error sticks.
func TestPayloadReaderShortRead(t *testing.T) {
	b := appendU64(nil, 0xDEADBEEF)
	b = appendU32(b, 42)

	p := payloadReader{b: b}
	if v := p.u64(); v != 0xDEADBEEF || p.err != nil {
		t.Fatalf("u64 = %#x, err %v", v, p.err)
	}
	if v := p.u32(); v != 42 || p.err != nil {
		t.Fatalf("u32 = %d, err %v", v, p.err)
	}
	if v := p.u16(); v != 0 || p.err == nil {
		t.Fatalf("u16 past end = %d, err %v — want 0 and an error", v, p.err)
	}
	first := p.err
	if v := p.u8(); v != 0 || p.err != first {
		t.Fatalf("error did not stick: u8 = %d, err %v", v, p.err)
	}
	if v := p.bytes(8); v != nil {
		t.Fatalf("bytes past end = %v, want nil", v)
	}

	// A negative count must fail, not panic or wrap.
	q := payloadReader{b: b}
	if v := q.bytes(-1); v != nil || q.err == nil {
		t.Fatalf("bytes(-1) = %v, err %v", v, q.err)
	}
}

// TestServerFrames drives one in-process Server over a real socket with raw
// frames: ping, write/read round trip, batches, atomics, on-chip addressing
// and the error path, verifying each response payload byte for byte.
func TestServerFrames(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	mc := &msConn{c: conn, r: bufio.NewReader(conn)}

	req := func(op byte, payload []byte) []byte {
		t.Helper()
		if err := writeFrame(mc.c, op, payload); err != nil {
			t.Fatalf("op %d: write: %v", op, err)
		}
		status, resp, err := readFrame(mc.r)
		if err != nil {
			t.Fatalf("op %d: read: %v", op, err)
		}
		if status != statusOK {
			t.Fatalf("op %d: status %d, payload %q", op, status, resp)
		}
		return resp
	}

	// Ping reports the on-chip size.
	resp := req(opPing, nil)
	p := payloadReader{b: resp}
	if got := p.u32(); got != OnChipBytes || p.err != nil {
		t.Fatalf("ping: on-chip %d, want %d (err %v)", got, OnChipBytes, p.err)
	}

	// Grow a chunk, write into it, read it back.
	p = payloadReader{b: req(opGrow, nil)}
	base := p.u64()
	if p.err != nil {
		t.Fatalf("grow: %v", p.err)
	}
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	w := appendU32(nil, 1)
	w = appendU64(w, base+16)
	w = appendU32(w, uint32(len(data)))
	w = append(w, data...)
	req(opWriteBatch, w)

	r := appendU64(nil, base+16)
	r = appendU32(r, uint32(len(data)))
	if got := req(opRead, r); !bytes.Equal(got, data) {
		t.Fatalf("read back %v, want %v", got, data)
	}

	// ReadBatch returns the concatenation in request order.
	rb := appendU32(nil, 2)
	rb = appendU64(rb, base+16)
	rb = appendU32(rb, 4)
	rb = appendU64(rb, base+20)
	rb = appendU32(rb, 4)
	if got := req(opReadBatch, rb); !bytes.Equal(got, data) {
		t.Fatalf("read batch %v, want %v", got, data)
	}

	// CAS: success then failure, previous value reported both ways.
	cas := func(addr, old, new uint64) (uint64, bool) {
		c := appendU64(nil, addr)
		c = appendU64(c, old)
		c = appendU64(c, new)
		p := payloadReader{b: req(opCAS, c)}
		prev, swapped := p.u64(), p.u8()
		if p.err != nil {
			t.Fatalf("cas: %v", p.err)
		}
		return prev, swapped != 0
	}
	if prev, ok := cas(base, 0, 99); !ok || prev != 0 {
		t.Fatalf("cas(0->99) = %d, %v", prev, ok)
	}
	if prev, ok := cas(base, 0, 7); ok || prev != 99 {
		t.Fatalf("cas(0->7) on 99 = %d, %v", prev, ok)
	}

	// FAA returns the old value and adds.
	f := appendU64(nil, base)
	f = appendU64(f, 1)
	p = payloadReader{b: req(opFAA, f)}
	if old := p.u64(); old != 99 || p.err != nil {
		t.Fatalf("faa old = %d (err %v), want 99", old, p.err)
	}

	// CAS16 against on-chip device memory (top address bit).
	onChip := uint64(1) << 63
	c16 := appendU64(nil, onChip+2)
	c16 = append(c16, 0, 0)       // old u16
	c16 = append(c16, 0x34, 0x12) // new u16
	p = payloadReader{b: req(opCAS16, c16)}
	prev16, swapped := p.u16(), p.u8()
	if p.err != nil || prev16 != 0 || swapped == 0 {
		t.Fatalf("cas16 = prev %#x swapped %d (err %v)", prev16, swapped, p.err)
	}

	// A read beyond grown memory is an error frame, and the connection
	// stays usable afterwards.
	bad := appendU64(nil, uint64(1)<<40)
	bad = appendU32(bad, 8)
	if err := writeFrame(mc.c, opRead, bad); err != nil {
		t.Fatal(err)
	}
	status, msg, err := readFrame(mc.r)
	if err != nil {
		t.Fatal(err)
	}
	if status != statusErr || len(msg) == 0 {
		t.Fatalf("out-of-range read: status %d, msg %q", status, msg)
	}
	req(opPing, nil) // still alive
}
