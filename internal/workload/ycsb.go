package workload

import "fmt"

// The six canonical YCSB core workloads [20], expressed in this package's
// terms. The paper's evaluation uses custom read/write ratios (Table 3);
// these standard presets are provided for library users benchmarking their
// own deployments.
//
//	A  update heavy   50% read / 50% update, zipfian
//	B  read mostly    95% read /  5% update, zipfian
//	C  read only     100% read,              zipfian
//	D  read latest    95% read /  5% insert, latest-biased reads
//	E  short ranges   95% scan /  5% insert, zipfian, spans ~50
//	F  read-mod-write 50% read / 50% RMW,    zipfian
type YCSB byte

// YCSB workload identifiers.
const (
	YCSBA YCSB = 'A'
	YCSBB YCSB = 'B'
	YCSBC YCSB = 'C'
	YCSBD YCSB = 'D'
	YCSBE YCSB = 'E'
	YCSBF YCSB = 'F'
)

// String names the workload ("YCSB-A").
func (w YCSB) String() string { return fmt.Sprintf("YCSB-%c", byte(w)) }

// YCSBConfig returns the workload configuration for one of the six core
// workloads over the given key space.
//
// Two presets need semantics beyond the paper's five mixes:
//   - D draws read keys from the most recently inserted region ("latest");
//     here the freshest keys are the unloaded tail that inserts fill, so D
//     biases lookups there via the Latest flag.
//   - F's read-modify-write is expressed as the ReadModifyWrite flag, which
//     makes Insert operations semantically "read the key, then update it";
//     drivers should issue a Lookup followed by an Insert for those ops
//     (bench and examples do).
func YCSBConfig(w YCSB, keys uint64) Config {
	base := func(mix Mix) Config {
		c := DefaultConfig(mix, Zipfian, keys)
		c.UpdateFraction = 1 // YCSB updates target existing keys
		return c
	}
	switch w {
	case YCSBA:
		return base(Mix{LookupPct: 50, InsertPct: 50})
	case YCSBB:
		return base(Mix{LookupPct: 95, InsertPct: 5})
	case YCSBC:
		return base(Mix{LookupPct: 100})
	case YCSBD:
		c := base(Mix{LookupPct: 95, InsertPct: 5})
		c.UpdateFraction = 0 // D's inserts are new records
		c.Latest = true
		return c
	case YCSBE:
		c := base(Mix{RangePct: 95, InsertPct: 5})
		c.UpdateFraction = 0 // E's inserts are new records
		c.RangeSpan = 50
		return c
	case YCSBF:
		c := base(Mix{LookupPct: 50, InsertPct: 50})
		c.ReadModifyWrite = true
		return c
	default:
		panic(fmt.Sprintf("workload: unknown YCSB workload %q", byte(w)))
	}
}

// AllYCSB lists the six core workloads in order.
func AllYCSB() []YCSB { return []YCSB{YCSBA, YCSBB, YCSBC, YCSBD, YCSBE, YCSBF} }
