// Failover: crash a compute server mid-workload, watch survivors reclaim
// its locks, recover the tree structure, and bring the server back.
//
// The one-sided design makes the client the unit of failure — no
// memory-server CPU participates in the data path — so everything a dead
// compute server leaves behind lives in the lock and session layers: held
// HOCL locks (freed by lease-expiry reclamation, DESIGN.md §8), half-done
// splits (completed by Tree.Recover), and sessions whose calls now report
// ErrSessionDead.
package main

import (
	"errors"
	"fmt"
	"log"

	"sherman"
)

func main() {
	cluster, err := sherman.NewCluster(sherman.ClusterConfig{
		MemoryServers:  2,
		ComputeServers: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	tree, err := cluster.CreateTree(sherman.DefaultTreeOptions())
	if err != nil {
		log.Fatal(err)
	}
	const n = 100_000
	kvs := make([]sherman.KV, n)
	for i := range kvs {
		kvs[i] = sherman.KV{Key: uint64(i + 1), Value: uint64(i)}
	}
	if err := tree.Bulkload(kvs); err != nil {
		log.Fatal(err)
	}

	// A client on CS 1 acknowledges some writes...
	doomed, err := tree.SessionAt(1)
	if err != nil {
		log.Fatal(err)
	}
	for k := uint64(1); k <= 100; k++ {
		doomed.Put(k, k*1000)
	}

	// ...then its compute server dies in the middle of the next write: the
	// fourth fabric operation of a warm put is the commit doorbell, so the
	// crash lands with the leaf's lock held and the write un-applied.
	if err := cluster.ScheduleCrash(1, 4); err != nil {
		log.Fatal(err)
	}
	if r := doomed.Submit(sherman.PutOp(50, 1)).Wait(); errors.Is(r.Err, sherman.ErrSessionDead) {
		fmt.Println("dead session reports:", r.Err)
	}

	// Survivors keep serving, and the acked writes are durable. A write
	// that needs a lock the dead server held waits out the liveness lease
	// and reclaims it.
	surv, err := tree.SessionAt(0)
	if err != nil {
		log.Fatal(err)
	}
	if v, ok := surv.Get(50); ok {
		fmt.Printf("acked write survived: key 50 = %d\n", v)
	}
	surv.Put(50, 42) // same leaf range the dead client wrote
	ls := tree.LockStats()
	fmt.Printf("lease expiries: %d, reclaims: %d\n", ls.LeaseExpiries, ls.Reclaims)
	if ls.Reclaims == 0 {
		// Keeps the example honest: if the put's verb count ever shifts,
		// the scheduled crash stops landing mid-write and this demo no
		// longer shows what it claims to.
		log.Fatal("crash did not land with the lock held; adjust ScheduleCrash's verb index")
	}

	// Complete any splits the dead client left half-done, then validate.
	rs, err := tree.Recover(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: %d split repairs in %.1f us virtual\n",
		rs.SplitRepairs, float64(rs.VirtualNS)/1000)
	if err := tree.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tree validates after recovery")

	// Restart the server: old sessions stay dead, new ones work.
	if err := cluster.RestartComputeServer(1); err != nil {
		log.Fatal(err)
	}
	fresh, err := tree.SessionAt(1)
	if err != nil {
		log.Fatal(err)
	}
	fresh.Put(7, 777)
	if v, ok := fresh.Get(7); ok {
		fmt.Printf("restarted server serving again: key 7 = %d\n", v)
	}
}
