package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// This file is the machine-readable side of the harness: experiments record
// typed Metrics into a Collector alongside the human-readable tables, the
// whole run serializes as one Report (the BENCH_*.json CI artifact that
// seeds the repo's benchmark trajectory), and CheckRegression gates fresh
// quick-scale numbers against a committed baseline.

// ReportSchema versions the JSON layout; bump on breaking changes.
const ReportSchema = 1

// Metric is one typed benchmark data point. Name is the stable row key the
// regression gate joins on — keep it deterministic across runs (config
// names, depths, batch sizes; never timestamps or addresses).
type Metric struct {
	Exp  string `json:"exp"`
	Name string `json:"name"`

	// Gate marks the metric as stable enough for the regression gate.
	// Excluded rows (fault-churn rounds, the dense hot-table batch cells
	// whose convoy equilibria are bistable) still land in the report for
	// trajectory tracking but never fail CI.
	Gate bool `json:"gate,omitempty"`

	Mops          float64 `json:"mops"`
	KopsPerThread float64 `json:"kops_per_thread,omitempty"`
	P50NS         int64   `json:"p50_ns,omitempty"`
	P99NS         int64   `json:"p99_ns,omitempty"`
	RTPerOp       float64 `json:"rt_per_op,omitempty"`
	LockAcqPerOp  float64 `json:"lock_acq_per_op,omitempty"`
	Hiding        float64 `json:"hiding,omitempty"`
	Reclaims      int64   `json:"reclaims,omitempty"`
	RecoveryNS    int64   `json:"recovery_ns,omitempty"`
	// Skew is the per-MS inbound-load imbalance (hottest/coldest) of an
	// elastic experiment's window.
	Skew float64 `json:"skew,omitempty"`
	// HitRatio, SpecRate, InvalPerOp and Evictions are the cache
	// experiment's leaf-direct hit ratio, speculative-validation success
	// rate, staleness invalidations per operation, and budget-pressure
	// eviction total.
	HitRatio   float64 `json:"hit_ratio,omitempty"`
	SpecRate   float64 `json:"spec_rate,omitempty"`
	InvalPerOp float64 `json:"inval_per_op,omitempty"`
	Evictions  int64   `json:"evictions,omitempty"`

	// HasAlloc marks a heap-profile row (alloc/* metrics): AllocsPerOp and
	// BytesPerOp are runtime.ReadMemStats deltas per operation and
	// GCPauseFrac the GC pause share of the probe's wall time. Zero is a
	// meaningful value here (the whole point is measuring zero), so the
	// marker distinguishes a measured 0 from an absent field. Alloc rows
	// carry Mops 0: the throughput gate skips them and the alloc gate (in
	// CheckRegression and the CLI's hard AllocGate) picks them up instead.
	HasAlloc    bool    `json:"has_alloc,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	GCPauseFrac float64 `json:"gc_pause_frac,omitempty"`
}

// Collector accumulates the typed metrics of one harness invocation. A nil
// Collector discards everything, so table builders record unconditionally.
type Collector struct {
	Metrics []Metric
}

// Add records one metric; no-op on a nil collector.
func (c *Collector) Add(m Metric) {
	if c != nil {
		c.Metrics = append(c.Metrics, m)
	}
}

// TableJSON is the structured form of one rendered table.
type TableJSON struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// ToJSON converts the table to its structured form.
func (t *Table) ToJSON() TableJSON {
	return TableJSON{Title: t.Title, Header: t.Header, Rows: t.Rows, Notes: t.Notes}
}

// Report is one full harness run in machine-readable form.
type Report struct {
	Schema       int    `json:"schema"`
	Exp          string `json:"exp"`
	Quick        bool   `json:"quick"`
	Keys         uint64 `json:"keys"`
	ThreadsPerCS int    `json:"threads_per_cs"`
	WindowMS     int64  `json:"window_ms"`

	Metrics []Metric    `json:"metrics"`
	Tables  []TableJSON `json:"tables,omitempty"`
}

// NewReport seeds a report with the run's scale parameters.
func NewReport(exp string, quick bool, s Scale) *Report {
	return &Report{
		Schema:       ReportSchema,
		Exp:          exp,
		Quick:        quick,
		Keys:         s.Keys,
		ThreadsPerCS: s.ThreadsPerCS,
		WindowMS:     s.MeasureNS / 1_000_000,
	}
}

// Write serializes the report to path, indented for diffability.
func (r *Report) Write(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadReport reads a report (e.g. the committed regression baseline).
func LoadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &r, nil
}

// CheckRegression compares a fresh run against a committed baseline:
// every gate-marked baseline row that also appears in the fresh run must be
// within the tolerance band — fresh Mops no worse than (1-tol) of baseline.
// The runs must be at the same scale (metric names carry no scale
// component, so cross-scale joins would compare incommensurable numbers).
// Baseline rows absent from the fresh run are skipped (the invocation may
// run fewer experiments), but matching nothing at all is an error so a
// renamed row cannot silently disable the gate.
func CheckRegression(base, fresh *Report, tol float64) error {
	if base.Keys != fresh.Keys || base.ThreadsPerCS != fresh.ThreadsPerCS || base.WindowMS != fresh.WindowMS {
		return fmt.Errorf("bench: regression gate scale mismatch: baseline keys=%d threads=%d window=%dms, run keys=%d threads=%d window=%dms — rerun with the baseline's scale flags or refresh the baseline",
			base.Keys, base.ThreadsPerCS, base.WindowMS, fresh.Keys, fresh.ThreadsPerCS, fresh.WindowMS)
	}
	freshByName := make(map[string]Metric, len(fresh.Metrics))
	for _, m := range fresh.Metrics {
		freshByName[m.Name] = m
	}
	matched := 0
	var failures []string
	for _, b := range base.Metrics {
		if !b.Gate {
			continue
		}
		f, ok := freshByName[b.Name]
		if b.HasAlloc {
			// Alloc rows gate upward: more allocations per op than the
			// baseline band allows is the regression. The +0.01 absolute
			// slack keeps a measured-zero baseline from failing on any
			// nonzero noise smaller than one alloc per hundred ops.
			if !ok {
				continue
			}
			matched++
			if f.AllocsPerOp > b.AllocsPerOp*(1+tol)+0.01 {
				failures = append(failures, fmt.Sprintf("%s: %.3f allocs/op vs baseline %.3f",
					b.Name, f.AllocsPerOp, b.AllocsPerOp))
			}
			continue
		}
		if b.Mops <= 0 {
			continue
		}
		if !ok {
			continue
		}
		matched++
		if f.Mops < b.Mops*(1-tol) {
			failures = append(failures, fmt.Sprintf("%s: %.3f Mops vs baseline %.3f (-%.1f%%)",
				b.Name, f.Mops, b.Mops, (1-f.Mops/b.Mops)*100))
		}
	}
	if matched == 0 {
		return fmt.Errorf("bench: regression gate matched no baseline rows (baseline stale or run misconfigured)")
	}
	if len(failures) > 0 {
		msg := fmt.Sprintf("bench: %d of %d gated metrics regressed more than %.0f%%:", len(failures), matched, tol*100)
		for _, f := range failures {
			msg += "\n  " + f
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}
