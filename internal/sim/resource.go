package sim

import "sync"

// Resource models one contended hardware unit — a NIC processing pipeline,
// one in-NIC atomic bucket, a memory thread core — as a service clock with
// idle-credit backfill.
//
// Threads charge service time against the resource at their own virtual
// "now". Because worker goroutines execute at unrelated real-time rates,
// arrivals reach the resource out of virtual-time order; a naive
// max(now, clock) rule would make one thread's virtual future queue every
// lagging thread behind phantom work, serializing the simulation. Instead
// the resource tracks how much of its past was actually busy: a request
// arriving "in the past" (now < clock) is backfilled into recorded idle
// capacity when any exists, and queues at the clock only when the resource
// has been genuinely saturated. Saturated resources therefore produce real
// queueing delay (hot atomic buckets, NIC pipelines at full IOPS) while idle
// resources never penalize out-of-order arrivals.
type Resource struct {
	mu     sync.Mutex
	clock  int64 // virtual time up to which committed work extends
	busy   int64 // total service committed since time 0
	credit int64 // recent idle capacity claimable by out-of-order arrivals
}

// CreditCapNS bounds how much recorded idle capacity an out-of-order arrival
// can claim. Worker pacing (Gate) keeps thread clocks within a few tens of
// microseconds of each other, so idle time older than that can never belong
// to a legitimately concurrent request; capping the credit prevents a burst
// from borrowing capacity out of the distant past.
const CreditCapNS = 50_000

// Acquire charges service virtual-nanoseconds starting no earlier than now
// and returns the virtual completion time. The caller's clock should advance
// to at least the returned value (plus any propagation latency).
func (r *Resource) Acquire(now, service int64) int64 {
	if service < 0 {
		service = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.busy += service
	if now >= r.clock {
		// The resource is idle at the caller's time: start immediately and
		// bank the idle gap (up to the cap) for out-of-order laggards.
		r.credit += now - r.clock
		if r.credit > CreditCapNS {
			r.credit = CreditCapNS
		}
		r.clock = now + service
		return r.clock
	}
	if r.credit >= service {
		// Out-of-order arrival, but the resource had recent spare capacity:
		// backfill without moving the committed horizon.
		r.credit -= service
		return now + service
	}
	// Genuinely saturated: queue at the committed horizon.
	r.clock += service
	return r.clock
}

// Peek returns the resource's committed-work horizon.
func (r *Resource) Peek() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.clock
}

// Utilization returns the fraction of virtual time the resource has been
// busy (0 when unused).
func (r *Resource) Utilization() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.clock == 0 {
		return 0
	}
	u := float64(r.busy) / float64(r.clock)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset rewinds the resource between experiments; never call with threads
// running.
func (r *Resource) Reset() {
	r.mu.Lock()
	r.clock, r.busy, r.credit = 0, 0, 0
	r.mu.Unlock()
}

// Clock is a per-thread virtual clock. It is owned by exactly one goroutine
// and therefore needs no synchronization for its own advancement; other
// goroutines may observe it only through explicit copies (e.g. the release
// timestamps handed through local lock queues).
type Clock struct {
	now int64
}

// Now returns the thread's current virtual time in nanoseconds.
func (c *Clock) Now() int64 { return c.now }

// Advance moves the clock forward by d nanoseconds (d may be zero; negative
// values are ignored so that stale resource estimates can never move a
// thread backwards).
func (c *Clock) Advance(d int64) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock to t if t is later than the current time. It is
// used when a thread inherits a completion or release timestamp from a
// resource or another thread.
func (c *Clock) AdvanceTo(t int64) {
	if t > c.now {
		c.now = t
	}
}

// Set forces the clock to t. Used when (re)initializing worker threads at a
// common experiment start time.
func (c *Clock) Set(t int64) { c.now = t }
