package sim

// Lanes tracks the completion horizons of N logical coroutines ("lanes")
// multiplexed over one client thread — the virtual-time half of the
// pipelined client's issue/complete split.
//
// A synchronous client serializes on its own clock: every verb starts after
// the previous one's round trip completed. A pipelined client instead keeps
// up to N operations outstanding; each runs on its own lane timeline, so its
// round trips overlap the siblings' and only the issue-side costs — doorbell
// posts and NIC pipeline occupancy, which the shared Resources charge at
// issue time — serialize. Lanes holds one completion horizon per coroutine:
// the scheduler starts the next operation on the earliest-free lane, and
// waits (in virtual time) for that lane's horizon when all N are busy,
// exactly like a coroutine scheduler that regains control at the next
// completion event.
//
// Lanes is owned by one goroutine (the session it times) and needs no
// synchronization.
type Lanes struct {
	done []int64
}

// NewLanes creates n lanes (n is clamped to >= 1), all idle at time 0.
func NewLanes(n int) *Lanes {
	if n < 1 {
		n = 1
	}
	return &Lanes{done: make([]int64, n)}
}

// N returns the number of lanes — the pipeline depth.
func (l *Lanes) N() int { return len(l.done) }

// Min returns the earliest-free lane and its completion horizon; ties pick
// the lowest index so assignment is deterministic.
func (l *Lanes) Min() (lane int, done int64) {
	lane = 0
	for i, d := range l.done {
		if d < l.done[lane] {
			lane = i
		}
	}
	return lane, l.done[lane]
}

// Max returns the latest completion horizon across all lanes — the virtual
// time at which the whole pipeline has drained.
func (l *Lanes) Max() int64 {
	var m int64
	for _, d := range l.done {
		if d > m {
			m = d
		}
	}
	return m
}

// Set records lane's new completion horizon.
func (l *Lanes) Set(lane int, done int64) { l.done[lane] = done }

// Busy counts lanes whose work completes after now — the outstanding depth
// a scheduler at virtual time now observes.
func (l *Lanes) Busy(now int64) int {
	n := 0
	for _, d := range l.done {
		if d > now {
			n++
		}
	}
	return n
}
