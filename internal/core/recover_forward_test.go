package core_test

// Regression tests for the REDO sweep's handling of forwarded addresses: a
// migration that crashed after killing a node but before repointing its
// parent (or the superblock root pointer) leaves the tree serving through
// the forwarding map. RecoverStructure must follow the one hop, repair the
// stale pointer through the locked write path, and leave the tree
// Validate-clean so the orphaned forwarding entries can drain.

import (
	"testing"

	"sherman/internal/alloc"
	core "sherman/internal/core"
	"sherman/internal/rdma"
	"sherman/internal/testutil"
)

// moveWithoutRepoint reproduces the crash state: the node at src is moved
// to a fresh chunk on dstMS — forwarding installed, original killed — but
// the parent pointer is left stale, exactly as if the migrating compute
// server died between the kill write and the repoint. The forwarding entry
// is recorded as owned by (dead) compute server owner.
func moveWithoutRepoint(t *testing.T, h *core.Handle, src rdma.Addr, dstMS uint16, owner int) rdma.Addr {
	t.Helper()
	cl := h.Tree().Cluster()
	newBase := rdma.MakeAddr(dstMS, h.C.GrowChunk(dstMS))
	ck := alloc.ChunkOf(src)
	cl.Fwd.Install(ck, newBase, owner, cl.Faults().Epoch(owner))
	dst := newBase.Add(src.Off() % rdma.DefaultChunkSize)
	if _, err := h.MoveNode(src, dst); err != nil {
		t.Fatalf("MoveNode(%v): %v", src, err)
	}
	return dst
}

func forwardTestTree(t *testing.T, cfg core.Config) (*core.Tree, *core.Handle) {
	t.Helper()
	cl := testutil.NewCluster(t, 2, 2)
	tr := testutil.NewTree(t, cl, cfg)
	testutil.Bulk(t, tr, 300)
	return tr, tr.NewHandle(0, 0)
}

// TestRecoverRepairsForwardedChild: a leaf killed-and-forwarded with a
// stale parent pointer must be repaired by the REDO sweep — follow the
// hop, rewrite the parent — after which the dead owner's forwarding
// entries drain and the tree validates.
func TestRecoverRepairsForwardedChild(t *testing.T) {
	testutil.RunConfigs(t, func(t *testing.T, cfg core.Config) {
		tr, h := forwardTestTree(t, cfg)
		cl := tr.Cluster()

		// Any non-root node of memory server 1 works as the victim (chunk 0
		// may be the host-mode lock table; scan a few).
		var items []core.ChunkNode
		for ci := uint64(0); ci < 4 && len(items) == 0; ci++ {
			items = h.CollectChunk(alloc.ChunkID{MS: 1, Index: ci})
		}
		if len(items) == 0 {
			t.Fatal("no nodes on ms1")
		}
		victim := items[len(items)-1] // last = deepest (parents sort first)
		moveWithoutRepoint(t, h, victim.Addr, 0, 1)
		cl.Kill(1, 0) // the "migrator" dies; its forwarding entry is orphaned

		// The tree still serves through the forwarding hop.
		probe := victim.LowerFence + 1
		if _, ok := h.Lookup(probe); !ok {
			t.Fatalf("key %d unreachable through forwarding", probe)
		}
		if h.Rec.ForwardHops == 0 {
			t.Fatal("lookup did not chase the forwarding entry")
		}

		// Validate (raw pointer walk) sees the stale parent: that is the
		// regression state the sweep must repair.
		if err := tr.Validate(); err == nil {
			t.Fatal("stale parent pointer not visible to Validate; test setup is wrong")
		}

		repairs, complete := h.RecoverStructure()
		if !complete {
			t.Fatal("recovery pass budget exhausted")
		}
		if repairs == 0 {
			t.Fatal("sweep repaired nothing")
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("validate after recovery: %v", err)
		}
		if n := tr.DrainDeadForwarding(); n != 1 {
			t.Fatalf("drained %d forwarding entries, want 1", n)
		}
		if cl.Fwd.Len() != 0 {
			t.Fatalf("%d forwarding entries linger", cl.Fwd.Len())
		}
		// And the data is still exactly there, now without hops.
		h2 := tr.NewHandle(0, 1)
		if v, ok := h2.Lookup(probe); !ok || v != testutil.BulkValue(probe) {
			t.Fatalf("post-repair Lookup(%d) = (%d,%v)", probe, v, ok)
		}
	})
}

// TestRecoverRepairsForwardedRoot: the root itself killed-and-forwarded
// with a stale superblock pointer — the sweep must CAS the superblock to
// the relocated copy instead of rescanning the dead root forever.
func TestRecoverRepairsForwardedRoot(t *testing.T) {
	testutil.RunConfigs(t, func(t *testing.T, cfg core.Config) {
		tr, h := forwardTestTree(t, cfg)
		cl := tr.Cluster()

		// Resolve the root's address via a fresh descent: CollectChunk on
		// the root's chunk lists parents first, so item 0 of the chunk
		// holding the highest-level node is the root.
		var rootItem *core.ChunkNode
		for ms := uint16(0); ms < 2 && rootItem == nil; ms++ {
			for ci := uint64(0); ci < 4 && rootItem == nil; ci++ {
				items := h.CollectChunk(alloc.ChunkID{MS: ms, Index: ci})
				for i := range items {
					if rootItem == nil || items[i].Level > rootItem.Level {
						rootItem = &items[i]
					}
				}
			}
		}
		if rootItem == nil {
			t.Fatal("root not found")
		}
		moveWithoutRepoint(t, h, rootItem.Addr, 0, 1)
		cl.Kill(1, 0)

		if _, ok := h.Lookup(5); !ok {
			t.Fatal("key 5 unreachable through forwarded root")
		}

		repairs, complete := h.RecoverStructure()
		if !complete {
			t.Fatal("recovery pass budget exhausted")
		}
		if repairs == 0 {
			t.Fatal("sweep did not repair the superblock pointer")
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("validate after recovery: %v", err)
		}
		tr.DrainDeadForwarding()
		if cl.Fwd.Len() != 0 {
			t.Fatalf("%d forwarding entries linger", cl.Fwd.Len())
		}
	})
}
