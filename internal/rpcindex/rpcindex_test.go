package rpcindex

import (
	"sync"
	"testing"

	"sherman/internal/rdma"
	"sherman/internal/sim"
)

func testIndex() *Index {
	return New(rdma.NewFabric(sim.DefaultParams(), 4, 2))
}

func TestPutGetDelete(t *testing.T) {
	ix := testIndex()
	h := ix.NewHandle(0)
	for k := uint64(1); k <= 1000; k++ {
		h.Put(k, k*2)
	}
	for k := uint64(1); k <= 1000; k++ {
		if v, ok := h.Get(k); !ok || v != k*2 {
			t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
		}
	}
	if ix.Len() != 1000 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if !h.Delete(500) || h.Delete(500) {
		t.Fatal("delete semantics wrong")
	}
	if _, ok := h.Get(500); ok {
		t.Fatal("deleted key found")
	}
	if _, ok := h.Get(99999); ok {
		t.Fatal("absent key found")
	}
}

func TestConcurrentClients(t *testing.T) {
	ix := testIndex()
	const threads, ops = 8, 500
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			h := ix.NewHandle(th % 2)
			base := uint64(th) * 1_000_000
			for i := uint64(1); i <= ops; i++ {
				h.Put(base+i, i)
			}
			for i := uint64(1); i <= ops; i++ {
				if v, ok := h.Get(base + i); !ok || v != i {
					t.Errorf("thread %d: Get(%d) = (%d,%v)", th, base+i, v, ok)
					return
				}
			}
		}(th)
	}
	wg.Wait()
	if ix.Len() != threads*ops {
		t.Fatalf("Len = %d, want %d", ix.Len(), threads*ops)
	}
}

// TestWritesBillMemoryThread: every Put must consume the home server's
// wimpy CPU — the §3.1 bottleneck this package exists to demonstrate.
func TestWritesBillMemoryThread(t *testing.T) {
	ix := testIndex()
	h := ix.NewHandle(0)
	for k := uint64(1); k <= 100; k++ {
		h.Put(k, k)
	}
	var busy int64
	for _, s := range ix.f.Servers() {
		busy += s.CPU.Peek()
	}
	if busy == 0 {
		t.Fatal("no CPU time billed to memory threads")
	}
	if h.C.M.RPCs != 100 {
		t.Fatalf("RPCs = %d, want 100", h.C.M.RPCs)
	}
}

// TestReadsAreOneSided: Gets must not touch the memory thread.
func TestReadsAreOneSided(t *testing.T) {
	ix := testIndex()
	h := ix.NewHandle(0)
	h.Put(1, 1)
	rpcsAfterPut := h.C.M.RPCs
	for i := 0; i < 50; i++ {
		h.Get(1)
	}
	if h.C.M.RPCs != rpcsAfterPut {
		t.Fatalf("reads issued %d RPCs", h.C.M.RPCs-rpcsAfterPut)
	}
	if h.C.M.Reads != 50 {
		t.Fatalf("reads = %d, want 50", h.C.M.Reads)
	}
}

// TestWimpyCPUCeiling: aggregate write throughput saturates near
// numMS / MemThreadRPCNS regardless of client count — the reason RPC
// indexes cannot ride disaggregated memory (§3.1, Table 2).
func TestWimpyCPUCeiling(t *testing.T) {
	p := sim.DefaultParams()
	f := rdma.NewFabric(p, 2, 4)
	ix := New(f)

	const threads, ops = 16, 400
	finish := make([]int64, threads)
	var wg sync.WaitGroup
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			h := ix.NewHandle(th % 4)
			base := uint64(th) * 1_000_000
			for i := uint64(1); i <= ops; i++ {
				h.Put(base+i, i)
			}
			finish[th] = h.C.Now()
		}(th)
	}
	wg.Wait()
	var makespan int64
	for _, v := range finish {
		if v > makespan {
			makespan = v
		}
	}
	total := int64(threads * ops)
	// 2 MSs x 1 RPC per MemThreadRPCNS is the hard ceiling.
	floor := total * p.MemThreadRPCNS / 2
	if makespan < floor {
		t.Errorf("%d writes finished in %d ns, beating the %d ns CPU ceiling", total, makespan, floor)
	}
}
